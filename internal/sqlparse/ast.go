package sqlparse

import "bdbms/internal/value"

// Statement is any parsed A-SQL statement.
type Statement interface{ stmt() }

// --- expressions -----------------------------------------------------------------

// Expr is a scalar or boolean expression.
type Expr interface{ expr() }

// ColumnExpr references a column, optionally qualified with a table name.
// Annotation pseudo-columns use Table == "ANN" (e.g. ANN.VALUE, ANN.TABLE,
// ANN.AUTHOR) inside AWHERE / AHAVING / FILTER conditions.
type ColumnExpr struct {
	Table  string
	Column string
}

// LiteralExpr is a constant value.
type LiteralExpr struct {
	Value value.Value
}

// BinaryExpr is a binary operation: comparisons, AND, OR, LIKE, arithmetic.
type BinaryExpr struct {
	Op    string // =, <>, <, <=, >, >=, AND, OR, LIKE, +, -, *, /
	Left  Expr
	Right Expr
}

// UnaryExpr is NOT <expr> or - <expr>.
type UnaryExpr struct {
	Op   string // NOT, -
	Expr Expr
}

// IsNullExpr is <expr> IS [NOT] NULL.
type IsNullExpr struct {
	Expr   Expr
	Negate bool
}

// AggregateExpr is COUNT/SUM/AVG/MIN/MAX over a column (or * for COUNT).
type AggregateExpr struct {
	Func   string // COUNT, SUM, AVG, MIN, MAX
	Column *ColumnExpr
	Star   bool
}

// PlaceholderExpr is a positional `?` parameter marker. Placeholders are
// numbered left to right within one statement, starting at 0; the executor
// substitutes the bound argument with the matching index at evaluation time,
// so a prepared statement is parsed (and, for SELECT, planned) once and
// re-bound per execution.
type PlaceholderExpr struct {
	Index int
}

func (*ColumnExpr) expr()      {}
func (*LiteralExpr) expr()     {}
func (*BinaryExpr) expr()      {}
func (*UnaryExpr) expr()       {}
func (*IsNullExpr) expr()      {}
func (*AggregateExpr) expr()   {}
func (*PlaceholderExpr) expr() {}

// --- SELECT ---------------------------------------------------------------------

// SelectItem is one projection item, optionally with a PROMOTE list (the
// A-SQL operator that copies annotations from other columns onto this one).
type SelectItem struct {
	// Star selects every column of every FROM table.
	Star bool
	// Expr is the projected expression (nil when Star).
	Expr Expr
	// Alias renames the output column.
	Alias string
	// Promote lists columns whose annotations are copied onto this item.
	Promote []ColumnExpr
}

// TableRef is one FROM entry with its optional ANNOTATION clause and alias.
type TableRef struct {
	Table string
	Alias string
	// Annotations lists the annotation tables to propagate from this table
	// (the A-SQL ANNOTATION(S1, S2, ...) operator). Empty means none;
	// a single entry "*" means all annotation tables.
	Annotations []string
}

// OrderItem is one ORDER BY entry.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// SetOp combines two SELECTs.
type SetOp string

// Set operations.
const (
	SetNone      SetOp = ""
	SetUnion     SetOp = "UNION"
	SetIntersect SetOp = "INTERSECT"
	SetExcept    SetOp = "EXCEPT"
)

// SelectStmt is the A-SQL SELECT of Figure 7.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     []TableRef
	Where    Expr
	// AWhere filters tuples by a condition over their annotations.
	AWhere  Expr
	GroupBy []ColumnExpr
	Having  Expr
	// AHaving filters groups by a condition over their annotations.
	AHaving Expr
	// Filter drops annotations (not tuples) that fail the condition.
	Filter  Expr
	OrderBy []OrderItem
	Limit   int // -1 when absent
	// Compound set operation with another SELECT.
	SetOp    SetOp
	SetRight *SelectStmt
}

func (*SelectStmt) stmt() {}

// --- DML ------------------------------------------------------------------------

// InsertStmt is INSERT INTO t [(cols)] VALUES (...), (...).
type InsertStmt struct {
	Table   string
	Columns []string
	Rows    [][]Expr
}

// UpdateStmt is UPDATE t SET col = expr, ... [WHERE cond].
type UpdateStmt struct {
	Table string
	Set   []SetClause
	Where Expr
}

// SetClause is one col = expr assignment.
type SetClause struct {
	Column string
	Value  Expr
}

// DeleteStmt is DELETE FROM t [WHERE cond].
type DeleteStmt struct {
	Table string
	Where Expr
}

func (*InsertStmt) stmt() {}
func (*UpdateStmt) stmt() {}
func (*DeleteStmt) stmt() {}

// --- DDL ------------------------------------------------------------------------

// ColumnDef is one column definition in CREATE TABLE.
type ColumnDef struct {
	Name       string
	Type       value.Type
	NotNull    bool
	PrimaryKey bool
}

// CreateTableStmt is CREATE TABLE t (col TYPE ..., ...).
type CreateTableStmt struct {
	Table   string
	Columns []ColumnDef
}

// DropTableStmt is DROP TABLE t.
type DropTableStmt struct {
	Table string
}

// CreateIndexStmt is CREATE INDEX ON t (col).
type CreateIndexStmt struct {
	Table  string
	Column string
}

func (*CreateTableStmt) stmt() {}
func (*DropTableStmt) stmt()   {}
func (*CreateIndexStmt) stmt() {}

// --- annotation commands (Figures 4 and 6) -----------------------------------------

// CreateAnnotationTableStmt is CREATE ANNOTATION TABLE ann ON user [CATEGORY 'c'].
type CreateAnnotationTableStmt struct {
	Name      string
	UserTable string
	Category  string
}

// DropAnnotationTableStmt is DROP ANNOTATION TABLE ann ON user.
type DropAnnotationTableStmt struct {
	Name      string
	UserTable string
}

// AddAnnotationStmt is ADD ANNOTATION TO t.ann [, t.ann2] VALUE 'body' ON (SELECT ...).
type AddAnnotationStmt struct {
	// Targets name the annotation tables (qualified as UserTable.AnnTable).
	Targets []AnnotationTarget
	Body    string
	// On selects the data the annotation attaches to.
	On *SelectStmt
}

// AnnotationTarget is a qualified annotation table name.
type AnnotationTarget struct {
	UserTable string
	AnnTable  string
}

// ArchiveAnnotationStmt is ARCHIVE ANNOTATION FROM t.ann [BETWEEN 't1' AND 't2'] ON (SELECT ...).
type ArchiveAnnotationStmt struct {
	Targets []AnnotationTarget
	From    string // RFC3339 or "2006-01-02 15:04:05" timestamps; "" = unbounded
	To      string
	On      *SelectStmt
	// Restore flips the command to RESTORE ANNOTATION.
	Restore bool
}

func (*CreateAnnotationTableStmt) stmt() {}
func (*DropAnnotationTableStmt) stmt()   {}
func (*AddAnnotationStmt) stmt()         {}
func (*ArchiveAnnotationStmt) stmt()     {}

// --- authorization commands (Figure 11) ---------------------------------------------

// StartContentApprovalStmt is START CONTENT APPROVAL ON t [COLUMNS (c1, c2)] APPROVED BY user.
type StartContentApprovalStmt struct {
	Table    string
	Columns  []string
	Approver string
}

// StopContentApprovalStmt is STOP CONTENT APPROVAL ON t [COLUMNS (c1, c2)].
type StopContentApprovalStmt struct {
	Table   string
	Columns []string
}

// GrantStmt is GRANT priv[, priv] ON t TO principal.
type GrantStmt struct {
	Privileges []string
	Table      string
	Principal  string
	// Revoke flips the command to REVOKE ... FROM principal.
	Revoke bool
}

// ApproveStmt is APPROVE OPERATION n  /  DISAPPROVE OPERATION n.
type ApproveStmt struct {
	OpID       int64
	Disapprove bool
}

// ShowPendingStmt is SHOW PENDING OPERATIONS [FOR t].
type ShowPendingStmt struct {
	Table string
}

func (*StartContentApprovalStmt) stmt() {}
func (*StopContentApprovalStmt) stmt()  {}
func (*GrantStmt) stmt()                {}
func (*ApproveStmt) stmt()              {}
func (*ShowPendingStmt) stmt()          {}

// --- transaction control ------------------------------------------------------------

// BeginStmt is BEGIN [TRANSACTION | WORK]: it opens an explicit multi-
// statement transaction on the session.
type BeginStmt struct{}

// CommitStmt is COMMIT [TRANSACTION | WORK].
type CommitStmt struct{}

// RollbackStmt is ROLLBACK [TRANSACTION | WORK] [TO [SAVEPOINT] name]. An
// empty Savepoint rolls back (and ends) the whole transaction; a named one
// reverts only the statements executed after that savepoint and keeps the
// transaction open.
type RollbackStmt struct {
	Savepoint string
}

// SavepointStmt is SAVEPOINT name.
type SavepointStmt struct {
	Name string
}

func (*BeginStmt) stmt()     {}
func (*CommitStmt) stmt()    {}
func (*RollbackStmt) stmt()  {}
func (*SavepointStmt) stmt() {}

// ExplainStmt is EXPLAIN <statement>: it renders the execution plan of its
// target without executing it. Like the transaction-control words, EXPLAIN
// is an unreserved identifier recognized only at statement-dispatch
// position, so columns may carry the name.
type ExplainStmt struct {
	Target Statement
}

func (*ExplainStmt) stmt() {}

// IsTxControl reports whether the statement is transaction control
// (BEGIN/COMMIT/ROLLBACK/SAVEPOINT) rather than a query or mutation. The
// executor routes these to the session's transaction state instead of the
// statement dispatcher.
func IsTxControl(stmt Statement) bool {
	switch stmt.(type) {
	case *BeginStmt, *CommitStmt, *RollbackStmt, *SavepointStmt:
		return true
	default:
		return false
	}
}

// --- placeholder inspection --------------------------------------------------------

// CountPlaceholders returns the number of `?` parameter markers in the
// statement. The executor uses it to type-check the argument list of a
// prepared statement before binding.
func CountPlaceholders(stmt Statement) int {
	n := 0
	WalkExprs(stmt, func(e Expr) {
		if _, ok := e.(*PlaceholderExpr); ok {
			n++
		}
	})
	return n
}

// WalkExprs visits every expression node reachable from the statement,
// including expressions of nested SELECTs (set operands, annotation command
// targets).
func WalkExprs(stmt Statement, fn func(Expr)) {
	switch st := stmt.(type) {
	case nil:
	case *SelectStmt:
		walkSelectExprs(st, fn)
	case *InsertStmt:
		for _, row := range st.Rows {
			for _, e := range row {
				WalkExpr(e, fn)
			}
		}
	case *UpdateStmt:
		for _, set := range st.Set {
			WalkExpr(set.Value, fn)
		}
		WalkExpr(st.Where, fn)
	case *DeleteStmt:
		WalkExpr(st.Where, fn)
	case *AddAnnotationStmt:
		if st.On != nil {
			walkSelectExprs(st.On, fn)
		}
	case *ArchiveAnnotationStmt:
		if st.On != nil {
			walkSelectExprs(st.On, fn)
		}
	case *ExplainStmt:
		WalkExprs(st.Target, fn)
	}
}

func walkSelectExprs(st *SelectStmt, fn func(Expr)) {
	if st == nil {
		return
	}
	for _, item := range st.Items {
		WalkExpr(item.Expr, fn)
	}
	WalkExpr(st.Where, fn)
	WalkExpr(st.AWhere, fn)
	WalkExpr(st.Having, fn)
	WalkExpr(st.AHaving, fn)
	WalkExpr(st.Filter, fn)
	for _, o := range st.OrderBy {
		WalkExpr(o.Expr, fn)
	}
	walkSelectExprs(st.SetRight, fn)
}

// WalkExpr visits e and every sub-expression reachable from it. It is the
// single expression walker shared by placeholder counting and the planner's
// placeholder detection, so adding a new Expr node only requires extending
// one switch.
func WalkExpr(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch ex := e.(type) {
	case *BinaryExpr:
		WalkExpr(ex.Left, fn)
		WalkExpr(ex.Right, fn)
	case *UnaryExpr:
		WalkExpr(ex.Expr, fn)
	case *IsNullExpr:
		WalkExpr(ex.Expr, fn)
	}
}
