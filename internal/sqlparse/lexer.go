// Package sqlparse implements the lexer, AST and recursive-descent parser for
// A-SQL, bdbms's extension of SQL (Sections 3 and 6 of the paper). On top of
// a conventional SQL subset it supports the annotation DDL and DML commands
// (CREATE/DROP ANNOTATION TABLE, ADD/ARCHIVE/RESTORE ANNOTATION), the
// annotation-aware SELECT operators (ANNOTATION, PROMOTE, AWHERE, AHAVING,
// FILTER) and the content-based approval commands (START/STOP CONTENT
// APPROVAL).
package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind classifies lexer tokens.
type TokenKind int

// Token kinds.
const (
	TokenEOF TokenKind = iota
	TokenIdent
	TokenKeyword
	TokenNumber
	TokenString
	TokenSymbol
)

// Token is one lexical token.
type Token struct {
	Kind TokenKind
	Text string
	Pos  int
}

// keywords recognised by the lexer (upper case).
var keywords = map[string]bool{
	"SELECT": true, "DISTINCT": true, "FROM": true, "WHERE": true, "GROUP": true,
	"BY": true, "HAVING": true, "ORDER": true, "LIMIT": true, "AS": true,
	"INSERT": true, "INTO": true, "VALUES": true, "UPDATE": true, "SET": true,
	"DELETE": true, "CREATE": true, "DROP": true, "TABLE": true, "INDEX": true,
	"PRIMARY": true, "KEY": true, "NOT": true, "NULL": true, "AND": true,
	"OR": true, "LIKE": true, "IN": true, "BETWEEN": true, "IS": true,
	"INTERSECT": true, "UNION": true, "EXCEPT": true, "ALL": true,
	"ANNOTATION": true, "ADD": true, "TO": true, "VALUE": true, "ON": true,
	"ARCHIVE": true, "RESTORE": true, "PROMOTE": true, "AWHERE": true,
	"AHAVING": true, "FILTER": true, "START": true, "STOP": true, "CONTENT": true,
	"APPROVAL": true, "COLUMNS": true, "APPROVED": true, "GRANT": true,
	"REVOKE": true, "ASC": true, "DESC": true, "COUNT": true, "SUM": true,
	"AVG": true, "MIN": true, "MAX": true, "TRUE": true, "FALSE": true,
	"CATEGORY": true, "APPROVE": true, "DISAPPROVE": true, "OPERATION": true,
	"PENDING": true, "SHOW": true, "OPERATIONS": true, "FOR": true,
}

// The transaction-control words (BEGIN, COMMIT, ROLLBACK, SAVEPOINT, and
// the TRANSACTION/WORK noise words) are deliberately NOT reserved: they
// only matter at statement-dispatch position, and reserving them would
// break expressions over pre-existing columns named, say, Work or
// Transaction. The parser matches them case-insensitively by text.

// Lexer splits an A-SQL statement into tokens.
type Lexer struct {
	input string
	pos   int
}

// NewLexer returns a lexer over input.
func NewLexer(input string) *Lexer { return &Lexer{input: input} }

// Tokenize returns all tokens of the input, ending with an EOF token.
func Tokenize(input string) ([]Token, error) {
	lx := NewLexer(input)
	var out []Token
	for {
		tok, err := lx.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, tok)
		if tok.Kind == TokenEOF {
			return out, nil
		}
	}
}

// Next returns the next token.
func (lx *Lexer) Next() (Token, error) {
	lx.skipSpaceAndComments()
	if lx.pos >= len(lx.input) {
		return Token{Kind: TokenEOF, Pos: lx.pos}, nil
	}
	start := lx.pos
	ch := lx.input[lx.pos]
	switch {
	case ch == '\'':
		return lx.lexString()
	case unicode.IsDigit(rune(ch)) || (ch == '.' && lx.pos+1 < len(lx.input) && unicode.IsDigit(rune(lx.input[lx.pos+1]))):
		return lx.lexNumber()
	case isIdentStart(ch):
		return lx.lexIdent()
	default:
		// Multi-character symbols first.
		for _, sym := range []string{"<=", ">=", "<>", "!=", "=", "<", ">", "(", ")", ",", ".", "*", "+", "-", "/", ";", "?"} {
			if strings.HasPrefix(lx.input[lx.pos:], sym) {
				lx.pos += len(sym)
				return Token{Kind: TokenSymbol, Text: sym, Pos: start}, nil
			}
		}
		return Token{}, fmt.Errorf("sqlparse: unexpected character %q at position %d", ch, lx.pos)
	}
}

func (lx *Lexer) skipSpaceAndComments() {
	for lx.pos < len(lx.input) {
		ch := lx.input[lx.pos]
		if ch == ' ' || ch == '\t' || ch == '\n' || ch == '\r' {
			lx.pos++
			continue
		}
		if ch == '-' && lx.pos+1 < len(lx.input) && lx.input[lx.pos+1] == '-' {
			for lx.pos < len(lx.input) && lx.input[lx.pos] != '\n' {
				lx.pos++
			}
			continue
		}
		return
	}
}

func isIdentStart(ch byte) bool {
	return ch == '_' || unicode.IsLetter(rune(ch))
}

func isIdentPart(ch byte) bool {
	return ch == '_' || unicode.IsLetter(rune(ch)) || unicode.IsDigit(rune(ch))
}

func (lx *Lexer) lexIdent() (Token, error) {
	start := lx.pos
	for lx.pos < len(lx.input) && isIdentPart(lx.input[lx.pos]) {
		lx.pos++
	}
	text := lx.input[start:lx.pos]
	if keywords[strings.ToUpper(text)] {
		return Token{Kind: TokenKeyword, Text: strings.ToUpper(text), Pos: start}, nil
	}
	return Token{Kind: TokenIdent, Text: text, Pos: start}, nil
}

func (lx *Lexer) lexNumber() (Token, error) {
	start := lx.pos
	seenDot := false
	for lx.pos < len(lx.input) {
		ch := lx.input[lx.pos]
		if unicode.IsDigit(rune(ch)) {
			lx.pos++
			continue
		}
		if ch == '.' && !seenDot {
			seenDot = true
			lx.pos++
			continue
		}
		if ch == 'e' || ch == 'E' {
			if lx.pos+1 < len(lx.input) && (unicode.IsDigit(rune(lx.input[lx.pos+1])) || lx.input[lx.pos+1] == '-') {
				lx.pos += 2
				continue
			}
		}
		break
	}
	return Token{Kind: TokenNumber, Text: lx.input[start:lx.pos], Pos: start}, nil
}

func (lx *Lexer) lexString() (Token, error) {
	start := lx.pos
	lx.pos++ // opening quote
	var sb strings.Builder
	for lx.pos < len(lx.input) {
		ch := lx.input[lx.pos]
		if ch == '\'' {
			if lx.pos+1 < len(lx.input) && lx.input[lx.pos+1] == '\'' {
				sb.WriteByte('\'')
				lx.pos += 2
				continue
			}
			lx.pos++
			return Token{Kind: TokenString, Text: sb.String(), Pos: start}, nil
		}
		sb.WriteByte(ch)
		lx.pos++
	}
	return Token{}, fmt.Errorf("sqlparse: unterminated string starting at position %d", start)
}
