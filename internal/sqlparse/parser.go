package sqlparse

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"bdbms/internal/value"
)

// ErrSyntax is wrapped by all parse errors.
var ErrSyntax = errors.New("sqlparse: syntax error")

// Parser is a recursive-descent parser over a token stream.
type Parser struct {
	toks []Token
	pos  int
	// placeholders numbers `?` markers left to right within one statement.
	placeholders int
}

// Parse parses a single A-SQL statement (a trailing semicolon is allowed).
func Parse(input string) (Statement, error) {
	stmts, err := ParseAll(input)
	if err != nil {
		return nil, err
	}
	if len(stmts) == 0 {
		return nil, fmt.Errorf("%w: empty statement", ErrSyntax)
	}
	if len(stmts) > 1 {
		return nil, fmt.Errorf("%w: expected a single statement, got %d", ErrSyntax, len(stmts))
	}
	return stmts[0], nil
}

// SplitStatements splits a semicolon-separated script into the source text
// of each statement, using the lexer so string-literal and comment rules can
// never diverge from the parser's. The returned fragments do not include the
// terminating semicolon. When the script fails to tokenize it is returned as
// a single fragment, so the error surfaces where the statement executes.
func SplitStatements(input string) []string {
	toks, err := Tokenize(input)
	if err != nil {
		return []string{input}
	}
	var out []string
	start := 0
	sawToken := false
	emit := func(end int) {
		// Fragments holding no tokens (blank or comment-only segments) are
		// skipped: they lex clean but Parse would reject them as empty.
		if !sawToken {
			return
		}
		if stmt := strings.TrimSpace(input[start:end]); stmt != "" {
			out = append(out, stmt)
		}
	}
	for _, tok := range toks {
		switch {
		case tok.Kind == TokenSymbol && tok.Text == ";":
			emit(tok.Pos)
			start = tok.Pos + 1
			sawToken = false
		case tok.Kind == TokenEOF:
			emit(len(input))
		default:
			sawToken = true
		}
	}
	return out
}

// ParseAll parses a semicolon-separated sequence of statements.
func ParseAll(input string) ([]Statement, error) {
	toks, err := Tokenize(input)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	var out []Statement
	for {
		for p.matchSymbol(";") {
		}
		if p.peek().Kind == TokenEOF {
			return out, nil
		}
		stmt, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		out = append(out, stmt)
		if !p.matchSymbol(";") && p.peek().Kind != TokenEOF {
			return nil, p.errorf("expected ';' or end of input, found %q", p.peek().Text)
		}
	}
}

func (p *Parser) peek() Token { return p.toks[p.pos] }

func (p *Parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != TokenEOF {
		p.pos++
	}
	return t
}

func (p *Parser) errorf(format string, args ...interface{}) error {
	return fmt.Errorf("%w: %s (near position %d)", ErrSyntax, fmt.Sprintf(format, args...), p.peek().Pos)
}

func (p *Parser) matchKeyword(kw string) bool {
	if p.peek().Kind == TokenKeyword && p.peek().Text == kw {
		p.next()
		return true
	}
	return false
}

func (p *Parser) peekKeyword(kw string) bool {
	return p.peek().Kind == TokenKeyword && p.peek().Text == kw
}

func (p *Parser) expectKeyword(kw string) error {
	if !p.matchKeyword(kw) {
		return p.errorf("expected %s, found %q", kw, p.peek().Text)
	}
	return nil
}

func (p *Parser) matchSymbol(sym string) bool {
	if p.peek().Kind == TokenSymbol && p.peek().Text == sym {
		p.next()
		return true
	}
	return false
}

func (p *Parser) expectSymbol(sym string) error {
	if !p.matchSymbol(sym) {
		return p.errorf("expected %q, found %q", sym, p.peek().Text)
	}
	return nil
}

// expectIdent consumes an identifier (keywords that double as names, like
// VALUE or KEY, are accepted too).
func (p *Parser) expectIdent() (string, error) {
	t := p.peek()
	if t.Kind == TokenIdent || t.Kind == TokenKeyword {
		p.next()
		return t.Text, nil
	}
	return "", p.errorf("expected identifier, found %q", t.Text)
}

func (p *Parser) parseStatement() (Statement, error) {
	p.placeholders = 0
	t := p.peek()
	if t.Kind != TokenKeyword {
		// Transaction-control words are unreserved identifiers (so columns
		// may carry those names); they are recognized only here, at
		// statement-dispatch position.
		if t.Kind == TokenIdent {
			switch strings.ToUpper(t.Text) {
			case "BEGIN", "COMMIT", "ROLLBACK", "SAVEPOINT":
				return p.parseTxControl()
			case "EXPLAIN":
				return p.parseExplain()
			}
		}
		return nil, p.errorf("expected a statement keyword, found %q", t.Text)
	}
	switch t.Text {
	case "BEGIN", "COMMIT", "ROLLBACK", "SAVEPOINT":
		// Unreachable while these stay unreserved; kept so reserving them
		// later cannot silently drop transaction control.
		return p.parseTxControl()
	case "SELECT":
		return p.parseSelect()
	case "INSERT":
		return p.parseInsert()
	case "UPDATE":
		return p.parseUpdate()
	case "DELETE":
		return p.parseDelete()
	case "CREATE":
		return p.parseCreate()
	case "DROP":
		return p.parseDrop()
	case "ADD":
		return p.parseAddAnnotation()
	case "ARCHIVE", "RESTORE":
		return p.parseArchiveRestore()
	case "START":
		return p.parseStartApproval()
	case "STOP":
		return p.parseStopApproval()
	case "GRANT", "REVOKE":
		return p.parseGrantRevoke()
	case "APPROVE", "DISAPPROVE":
		return p.parseApprove()
	case "SHOW":
		return p.parseShow()
	default:
		return nil, p.errorf("unsupported statement %q", t.Text)
	}
}

// --- transaction control ---------------------------------------------------------

// matchWord consumes the next token when it is the given word — keyword or
// bare identifier — compared case-insensitively. The transaction-control
// vocabulary is matched this way because it is not reserved by the lexer.
func (p *Parser) matchWord(word string) bool {
	t := p.peek()
	if (t.Kind == TokenKeyword || t.Kind == TokenIdent) && strings.EqualFold(t.Text, word) {
		p.next()
		return true
	}
	return false
}

// parseExplain parses EXPLAIN <statement>. The recursive parseStatement
// call resets the placeholder counter, which is correct: CountPlaceholders
// walks into the target, so an EXPLAIN binds exactly the arguments its
// target would.
func (p *Parser) parseExplain() (Statement, error) {
	p.next() // EXPLAIN
	target, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	return &ExplainStmt{Target: target}, nil
}

// parseTxControl parses BEGIN / COMMIT / ROLLBACK [TO [SAVEPOINT] name] /
// SAVEPOINT name, with the optional TRANSACTION or WORK noise word.
func (p *Parser) parseTxControl() (Statement, error) {
	switch {
	case p.matchWord("BEGIN"):
		p.matchTxNoise()
		return &BeginStmt{}, nil
	case p.matchWord("COMMIT"):
		p.matchTxNoise()
		return &CommitStmt{}, nil
	case p.matchWord("ROLLBACK"):
		p.matchTxNoise()
		stmt := &RollbackStmt{}
		if p.matchKeyword("TO") {
			p.matchWord("SAVEPOINT")
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			stmt.Savepoint = name
		}
		return stmt, nil
	case p.matchWord("SAVEPOINT"):
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &SavepointStmt{Name: name}, nil
	default:
		return nil, p.errorf("expected transaction statement, found %q", p.peek().Text)
	}
}

// matchTxNoise consumes the optional TRANSACTION / WORK noise word.
func (p *Parser) matchTxNoise() {
	if !p.matchWord("TRANSACTION") {
		p.matchWord("WORK")
	}
}

// --- SELECT ---------------------------------------------------------------------

func (p *Parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{Limit: -1}
	stmt.Distinct = p.matchKeyword("DISTINCT")

	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		stmt.Items = append(stmt.Items, *item)
		if !p.matchSymbol(",") {
			break
		}
	}

	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	for {
		ref, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		stmt.From = append(stmt.From, *ref)
		if !p.matchSymbol(",") {
			break
		}
	}

	var err error
	if p.matchKeyword("WHERE") {
		if stmt.Where, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	if p.matchKeyword("AWHERE") {
		if stmt.AWhere, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	if p.matchKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			col, err := p.parseColumnRef()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, *col)
			if !p.matchSymbol(",") {
				break
			}
		}
		if p.matchKeyword("HAVING") {
			if stmt.Having, err = p.parseExpr(); err != nil {
				return nil, err
			}
		}
		if p.matchKeyword("AHAVING") {
			if stmt.AHaving, err = p.parseExpr(); err != nil {
				return nil, err
			}
		}
	}
	if p.matchKeyword("FILTER") {
		if stmt.Filter, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	if p.matchKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.matchKeyword("DESC") {
				item.Desc = true
			} else {
				p.matchKeyword("ASC")
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if !p.matchSymbol(",") {
				break
			}
		}
	}
	if p.matchKeyword("LIMIT") {
		t := p.next()
		if t.Kind != TokenNumber {
			return nil, p.errorf("expected a number after LIMIT, found %q", t.Text)
		}
		n, convErr := strconv.Atoi(t.Text)
		if convErr != nil {
			return nil, p.errorf("bad LIMIT %q", t.Text)
		}
		stmt.Limit = n
	}

	for _, op := range []SetOp{SetUnion, SetIntersect, SetExcept} {
		if p.peekKeyword(string(op)) {
			p.next()
			p.matchKeyword("ALL")
			right, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			stmt.SetOp = op
			stmt.SetRight = right
			break
		}
	}
	return stmt, nil
}

func (p *Parser) parseSelectItem() (*SelectItem, error) {
	if p.matchSymbol("*") {
		return &SelectItem{Star: true}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	item := &SelectItem{Expr: e}
	if p.matchKeyword("PROMOTE") {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		for {
			col, err := p.parseColumnRef()
			if err != nil {
				return nil, err
			}
			item.Promote = append(item.Promote, *col)
			if !p.matchSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
	}
	if p.matchKeyword("AS") {
		alias, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		item.Alias = alias
	} else if p.peek().Kind == TokenIdent {
		item.Alias = p.next().Text
	}
	return item, nil
}

func (p *Parser) parseTableRef() (*TableRef, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	ref := &TableRef{Table: name}
	if p.matchKeyword("ANNOTATION") {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		if p.matchSymbol("*") {
			ref.Annotations = []string{"*"}
		} else {
			for {
				ann, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				ref.Annotations = append(ref.Annotations, ann)
				if !p.matchSymbol(",") {
					break
				}
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
	}
	if p.matchKeyword("AS") {
		alias, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		ref.Alias = alias
	} else if p.peek().Kind == TokenIdent {
		ref.Alias = p.next().Text
	}
	return ref, nil
}

func (p *Parser) parseColumnRef() (*ColumnExpr, error) {
	first, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	col := &ColumnExpr{Column: first}
	if p.matchSymbol(".") {
		second, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		col.Table = first
		col.Column = second
	}
	return col, nil
}

// --- expressions -------------------------------------------------------------------

func (p *Parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.matchKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "OR", Left: left, Right: right}
	}
	return left, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.matchKeyword("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "AND", Left: left, Right: right}
	}
	return left, nil
}

func (p *Parser) parseNot() (Expr, error) {
	if p.matchKeyword("NOT") {
		inner, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", Expr: inner}, nil
	}
	return p.parseComparison()
}

func (p *Parser) parseComparison() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if p.matchKeyword("IS") {
		negate := p.matchKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &IsNullExpr{Expr: left, Negate: negate}, nil
	}
	if p.matchKeyword("LIKE") {
		right, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{Op: "LIKE", Left: left, Right: right}, nil
	}
	for _, op := range []string{"<=", ">=", "<>", "!=", "=", "<", ">"} {
		if p.peek().Kind == TokenSymbol && p.peek().Text == op {
			p.next()
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			norm := op
			if norm == "!=" {
				norm = "<>"
			}
			return &BinaryExpr{Op: norm, Left: left, Right: right}, nil
		}
	}
	return left, nil
}

func (p *Parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.matchSymbol("+"):
			right, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: "+", Left: left, Right: right}
		case p.matchSymbol("-"):
			right, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: "-", Left: left, Right: right}
		default:
			return left, nil
		}
	}
}

func (p *Parser) parseMultiplicative() (Expr, error) {
	left, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.matchSymbol("*"):
			right, err := p.parsePrimary()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: "*", Left: left, Right: right}
		case p.matchSymbol("/"):
			right, err := p.parsePrimary()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: "/", Left: left, Right: right}
		default:
			return left, nil
		}
	}
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch {
	case t.Kind == TokenNumber:
		p.next()
		if strings.ContainsAny(t.Text, ".eE") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, p.errorf("bad number %q", t.Text)
			}
			return &LiteralExpr{Value: value.NewFloat(f)}, nil
		}
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad number %q", t.Text)
		}
		return &LiteralExpr{Value: value.NewInt(n)}, nil
	case t.Kind == TokenString:
		p.next()
		return &LiteralExpr{Value: value.NewText(t.Text)}, nil
	case t.Kind == TokenSymbol && t.Text == "(":
		p.next()
		inner, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return inner, nil
	case t.Kind == TokenSymbol && t.Text == "-":
		p.next()
		inner, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "-", Expr: inner}, nil
	case t.Kind == TokenSymbol && t.Text == "?":
		p.next()
		idx := p.placeholders
		p.placeholders++
		return &PlaceholderExpr{Index: idx}, nil
	case t.Kind == TokenKeyword && (t.Text == "COUNT" || t.Text == "SUM" || t.Text == "AVG" || t.Text == "MIN" || t.Text == "MAX"):
		p.next()
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		agg := &AggregateExpr{Func: t.Text}
		if p.matchSymbol("*") {
			agg.Star = true
		} else {
			col, err := p.parseColumnRef()
			if err != nil {
				return nil, err
			}
			agg.Column = col
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return agg, nil
	case t.Kind == TokenKeyword && t.Text == "NULL":
		p.next()
		return &LiteralExpr{Value: value.NewNull()}, nil
	case t.Kind == TokenKeyword && t.Text == "TRUE":
		p.next()
		return &LiteralExpr{Value: value.NewBool(true)}, nil
	case t.Kind == TokenKeyword && t.Text == "FALSE":
		p.next()
		return &LiteralExpr{Value: value.NewBool(false)}, nil
	case t.Kind == TokenIdent || (t.Kind == TokenKeyword && t.Text == "ANNOTATION") || (t.Kind == TokenKeyword && t.Text == "VALUE"):
		return p.parseColumnRef()
	default:
		return nil, p.errorf("unexpected token %q in expression", t.Text)
	}
}

// --- DML ------------------------------------------------------------------------

func (p *Parser) parseInsert() (Statement, error) {
	if err := p.expectKeyword("INSERT"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	stmt := &InsertStmt{Table: table}
	if p.matchSymbol("(") {
		for {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			stmt.Columns = append(stmt.Columns, col)
			if !p.matchSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.matchSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		stmt.Rows = append(stmt.Rows, row)
		if !p.matchSymbol(",") {
			break
		}
	}
	return stmt, nil
}

func (p *Parser) parseUpdate() (Statement, error) {
	if err := p.expectKeyword("UPDATE"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	stmt := &UpdateStmt{Table: table}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Set = append(stmt.Set, SetClause{Column: col, Value: e})
		if !p.matchSymbol(",") {
			break
		}
	}
	if p.matchKeyword("WHERE") {
		if stmt.Where, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	return stmt, nil
}

func (p *Parser) parseDelete() (Statement, error) {
	if err := p.expectKeyword("DELETE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	stmt := &DeleteStmt{Table: table}
	if p.matchKeyword("WHERE") {
		if stmt.Where, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	return stmt, nil
}

// --- DDL ------------------------------------------------------------------------

func (p *Parser) parseCreate() (Statement, error) {
	if err := p.expectKeyword("CREATE"); err != nil {
		return nil, err
	}
	switch {
	case p.matchKeyword("TABLE"):
		return p.parseCreateTable()
	case p.matchKeyword("ANNOTATION"):
		if err := p.expectKeyword("TABLE"); err != nil {
			return nil, err
		}
		return p.parseCreateAnnotationTable()
	case p.matchKeyword("INDEX"):
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		table, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return &CreateIndexStmt{Table: table, Column: col}, nil
	default:
		return nil, p.errorf("expected TABLE, ANNOTATION TABLE or INDEX after CREATE")
	}
}

func (p *Parser) parseCreateTable() (Statement, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	stmt := &CreateTableStmt{Table: name}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	for {
		colName, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		typeName, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		typ, err := value.ParseType(typeName)
		if err != nil {
			return nil, p.errorf("unknown type %q", typeName)
		}
		def := ColumnDef{Name: colName, Type: typ}
		for {
			if p.matchKeyword("NOT") {
				if err := p.expectKeyword("NULL"); err != nil {
					return nil, err
				}
				def.NotNull = true
				continue
			}
			if p.matchKeyword("PRIMARY") {
				if err := p.expectKeyword("KEY"); err != nil {
					return nil, err
				}
				def.PrimaryKey = true
				def.NotNull = true
				continue
			}
			break
		}
		stmt.Columns = append(stmt.Columns, def)
		if !p.matchSymbol(",") {
			break
		}
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return stmt, nil
}

func (p *Parser) parseCreateAnnotationTable() (Statement, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	userTable, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	stmt := &CreateAnnotationTableStmt{Name: name, UserTable: userTable}
	if p.matchKeyword("CATEGORY") {
		t := p.next()
		if t.Kind != TokenString && t.Kind != TokenIdent {
			return nil, p.errorf("expected a category after CATEGORY")
		}
		stmt.Category = t.Text
	}
	return stmt, nil
}

func (p *Parser) parseDrop() (Statement, error) {
	if err := p.expectKeyword("DROP"); err != nil {
		return nil, err
	}
	switch {
	case p.matchKeyword("TABLE"):
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &DropTableStmt{Table: name}, nil
	case p.matchKeyword("ANNOTATION"):
		if err := p.expectKeyword("TABLE"); err != nil {
			return nil, err
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		userTable, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &DropAnnotationTableStmt{Name: name, UserTable: userTable}, nil
	default:
		return nil, p.errorf("expected TABLE or ANNOTATION TABLE after DROP")
	}
}

// --- annotation commands -------------------------------------------------------------

func (p *Parser) parseAnnotationTargets() ([]AnnotationTarget, error) {
	var out []AnnotationTarget
	for {
		userTable, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("."); err != nil {
			return nil, err
		}
		annTable, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		out = append(out, AnnotationTarget{UserTable: userTable, AnnTable: annTable})
		if !p.matchSymbol(",") {
			return out, nil
		}
	}
}

func (p *Parser) parseParenSelect() (*SelectStmt, error) {
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	sel, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return sel, nil
}

func (p *Parser) parseAddAnnotation() (Statement, error) {
	if err := p.expectKeyword("ADD"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("ANNOTATION"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("TO"); err != nil {
		return nil, err
	}
	targets, err := p.parseAnnotationTargets()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("VALUE"); err != nil {
		return nil, err
	}
	body := p.next()
	if body.Kind != TokenString {
		return nil, p.errorf("expected a string annotation body, found %q", body.Text)
	}
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	sel, err := p.parseParenSelect()
	if err != nil {
		return nil, err
	}
	return &AddAnnotationStmt{Targets: targets, Body: body.Text, On: sel}, nil
}

func (p *Parser) parseArchiveRestore() (Statement, error) {
	restore := false
	if p.matchKeyword("RESTORE") {
		restore = true
	} else if err := p.expectKeyword("ARCHIVE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("ANNOTATION"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	targets, err := p.parseAnnotationTargets()
	if err != nil {
		return nil, err
	}
	stmt := &ArchiveAnnotationStmt{Targets: targets, Restore: restore}
	if p.matchKeyword("BETWEEN") {
		from := p.next()
		if from.Kind != TokenString {
			return nil, p.errorf("expected a timestamp string after BETWEEN")
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		to := p.next()
		if to.Kind != TokenString {
			return nil, p.errorf("expected a timestamp string after AND")
		}
		stmt.From, stmt.To = from.Text, to.Text
	}
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	if stmt.On, err = p.parseParenSelect(); err != nil {
		return nil, err
	}
	return stmt, nil
}

// --- authorization commands -----------------------------------------------------------

func (p *Parser) parseColumnsClause() ([]string, error) {
	if !p.matchKeyword("COLUMNS") {
		return nil, nil
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	var cols []string
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		cols = append(cols, col)
		if !p.matchSymbol(",") {
			break
		}
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return cols, nil
}

func (p *Parser) parseStartApproval() (Statement, error) {
	if err := p.expectKeyword("START"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("CONTENT"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("APPROVAL"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	cols, err := p.parseColumnsClause()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("APPROVED"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("BY"); err != nil {
		return nil, err
	}
	approver, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	return &StartContentApprovalStmt{Table: table, Columns: cols, Approver: approver}, nil
}

func (p *Parser) parseStopApproval() (Statement, error) {
	if err := p.expectKeyword("STOP"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("CONTENT"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("APPROVAL"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	cols, err := p.parseColumnsClause()
	if err != nil {
		return nil, err
	}
	return &StopContentApprovalStmt{Table: table, Columns: cols}, nil
}

func (p *Parser) parseGrantRevoke() (Statement, error) {
	revoke := false
	if p.matchKeyword("REVOKE") {
		revoke = true
	} else if err := p.expectKeyword("GRANT"); err != nil {
		return nil, err
	}
	stmt := &GrantStmt{Revoke: revoke}
	for {
		t := p.next()
		if t.Kind != TokenKeyword && t.Kind != TokenIdent {
			return nil, p.errorf("expected a privilege, found %q", t.Text)
		}
		stmt.Privileges = append(stmt.Privileges, strings.ToUpper(t.Text))
		if !p.matchSymbol(",") {
			break
		}
	}
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	stmt.Table = table
	if revoke {
		if err := p.expectKeyword("FROM"); err != nil {
			return nil, err
		}
	} else {
		if err := p.expectKeyword("TO"); err != nil {
			return nil, err
		}
	}
	principal, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	stmt.Principal = principal
	return stmt, nil
}

func (p *Parser) parseApprove() (Statement, error) {
	disapprove := false
	if p.matchKeyword("DISAPPROVE") {
		disapprove = true
	} else if err := p.expectKeyword("APPROVE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("OPERATION"); err != nil {
		return nil, err
	}
	t := p.next()
	if t.Kind != TokenNumber {
		return nil, p.errorf("expected an operation id, found %q", t.Text)
	}
	id, err := strconv.ParseInt(t.Text, 10, 64)
	if err != nil {
		return nil, p.errorf("bad operation id %q", t.Text)
	}
	return &ApproveStmt{OpID: id, Disapprove: disapprove}, nil
}

func (p *Parser) parseShow() (Statement, error) {
	if err := p.expectKeyword("SHOW"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("PENDING"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("OPERATIONS"); err != nil {
		return nil, err
	}
	stmt := &ShowPendingStmt{}
	if p.matchKeyword("FOR") {
		table, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		stmt.Table = table
	}
	return stmt, nil
}
