package sqlparse

import (
	"errors"
	"fmt"
	"testing"

	"bdbms/internal/value"
)

func mustParse(t *testing.T, sql string) Statement {
	t.Helper()
	stmt, err := Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	return stmt
}

func TestLexerBasics(t *testing.T) {
	toks, err := Tokenize("SELECT GID, 3.14 FROM t WHERE name = 'it''s' -- comment\n AND x >= 2")
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[TokenKind]int{}
	for _, tok := range toks {
		kinds[tok.Kind]++
	}
	if kinds[TokenKeyword] < 4 || kinds[TokenString] != 1 || kinds[TokenNumber] != 2 {
		t.Errorf("token mix wrong: %v", kinds)
	}
	var str Token
	for _, tok := range toks {
		if tok.Kind == TokenString {
			str = tok
		}
	}
	if str.Text != "it's" {
		t.Errorf("escaped string = %q", str.Text)
	}
	if _, err := Tokenize("SELECT 'unterminated"); err == nil {
		t.Error("unterminated string should fail")
	}
	if _, err := Tokenize("SELECT @"); err == nil {
		t.Error("bad character should fail")
	}
}

func TestParseSimpleSelect(t *testing.T) {
	stmt := mustParse(t, "SELECT GID, GName FROM DB1_Gene WHERE GID = 'JW0080'").(*SelectStmt)
	if len(stmt.Items) != 2 || stmt.Items[0].Expr.(*ColumnExpr).Column != "GID" {
		t.Errorf("items = %+v", stmt.Items)
	}
	if len(stmt.From) != 1 || stmt.From[0].Table != "DB1_Gene" {
		t.Errorf("from = %+v", stmt.From)
	}
	where, ok := stmt.Where.(*BinaryExpr)
	if !ok || where.Op != "=" {
		t.Fatalf("where = %+v", stmt.Where)
	}
	if where.Right.(*LiteralExpr).Value.Text() != "JW0080" {
		t.Error("literal wrong")
	}
	if stmt.Limit != -1 || stmt.Distinct {
		t.Error("defaults wrong")
	}
}

func TestParseSelectStarDistinctOrderLimit(t *testing.T) {
	stmt := mustParse(t, "SELECT DISTINCT * FROM Gene ORDER BY GID DESC, GName LIMIT 10").(*SelectStmt)
	if !stmt.Distinct || !stmt.Items[0].Star {
		t.Error("distinct/star wrong")
	}
	if len(stmt.OrderBy) != 2 || !stmt.OrderBy[0].Desc || stmt.OrderBy[1].Desc {
		t.Errorf("order by = %+v", stmt.OrderBy)
	}
	if stmt.Limit != 10 {
		t.Errorf("limit = %d", stmt.Limit)
	}
}

func TestParseASQLSelectFigure7(t *testing.T) {
	sql := `SELECT G.GID PROMOTE (G.GSequence, G.GName), G.GName
	        FROM DB1_Gene ANNOTATION(GAnnotation, Provenance) G, DB2_Gene ANNOTATION(*) H
	        WHERE G.GID = H.GID
	        AWHERE ANN.VALUE LIKE '%RegulonDB%'
	        GROUP BY G.GID, G.GName
	        HAVING COUNT(*) > 1
	        AHAVING ANN.AUTHOR = 'admin'
	        FILTER ANN.TABLE = 'GAnnotation'`
	stmt := mustParse(t, sql).(*SelectStmt)
	if len(stmt.Items) != 2 {
		t.Fatalf("items = %d", len(stmt.Items))
	}
	if len(stmt.Items[0].Promote) != 2 || stmt.Items[0].Promote[0].Column != "GSequence" {
		t.Errorf("promote = %+v", stmt.Items[0].Promote)
	}
	if len(stmt.From) != 2 {
		t.Fatalf("from = %+v", stmt.From)
	}
	if len(stmt.From[0].Annotations) != 2 || stmt.From[0].Annotations[0] != "GAnnotation" {
		t.Errorf("annotations = %v", stmt.From[0].Annotations)
	}
	if len(stmt.From[1].Annotations) != 1 || stmt.From[1].Annotations[0] != "*" {
		t.Errorf("annotations * = %v", stmt.From[1].Annotations)
	}
	if stmt.From[0].Alias != "G" || stmt.From[1].Alias != "H" {
		t.Errorf("aliases = %+v", stmt.From)
	}
	if stmt.AWhere == nil || stmt.AHaving == nil || stmt.Filter == nil {
		t.Error("annotation clauses missing")
	}
	aw := stmt.AWhere.(*BinaryExpr)
	if aw.Op != "LIKE" || aw.Left.(*ColumnExpr).Table != "ANN" {
		t.Errorf("awhere = %+v", aw)
	}
	if len(stmt.GroupBy) != 2 || stmt.Having == nil {
		t.Error("group by / having missing")
	}
	hv := stmt.Having.(*BinaryExpr)
	if hv.Left.(*AggregateExpr).Func != "COUNT" || !hv.Left.(*AggregateExpr).Star {
		t.Errorf("having = %+v", hv.Left)
	}
}

func TestParseSetOperations(t *testing.T) {
	sql := `SELECT GID, GName, GSequence FROM DB1_Gene
	        INTERSECT
	        SELECT GID, GName, GSequence FROM DB2_Gene`
	stmt := mustParse(t, sql).(*SelectStmt)
	if stmt.SetOp != SetIntersect || stmt.SetRight == nil {
		t.Fatalf("set op = %v", stmt.SetOp)
	}
	if stmt.SetRight.From[0].Table != "DB2_Gene" {
		t.Error("right side wrong")
	}
	u := mustParse(t, "SELECT a FROM t UNION ALL SELECT a FROM s").(*SelectStmt)
	if u.SetOp != SetUnion {
		t.Error("union wrong")
	}
	e := mustParse(t, "SELECT a FROM t EXCEPT SELECT a FROM s").(*SelectStmt)
	if e.SetOp != SetExcept {
		t.Error("except wrong")
	}
}

func TestParseExpressions(t *testing.T) {
	stmt := mustParse(t, "SELECT a FROM t WHERE NOT (x < 3 AND y >= 2.5) OR z <> 'q' AND w IS NOT NULL").(*SelectStmt)
	or, ok := stmt.Where.(*BinaryExpr)
	if !ok || or.Op != "OR" {
		t.Fatalf("top op = %+v", stmt.Where)
	}
	if _, ok := or.Left.(*UnaryExpr); !ok {
		t.Errorf("left should be NOT, got %T", or.Left)
	}
	and := or.Right.(*BinaryExpr)
	if and.Op != "AND" {
		t.Errorf("right = %+v", and)
	}
	if _, ok := and.Right.(*IsNullExpr); !ok {
		t.Errorf("IS NOT NULL = %T", and.Right)
	}
	arith := mustParse(t, "SELECT a FROM t WHERE a + 2 * 3 = 7 AND -b = 1").(*SelectStmt)
	top := arith.Where.(*BinaryExpr)
	eq := top.Left.(*BinaryExpr)
	plus := eq.Left.(*BinaryExpr)
	if plus.Op != "+" || plus.Right.(*BinaryExpr).Op != "*" {
		t.Error("precedence wrong")
	}
	lit := mustParse(t, "SELECT a FROM t WHERE b = NULL OR c = TRUE OR d = FALSE").(*SelectStmt)
	if lit.Where == nil {
		t.Error("literals failed")
	}
}

func TestParseInsertUpdateDelete(t *testing.T) {
	ins := mustParse(t, "INSERT INTO Gene (GID, GName, GSequence) VALUES ('JW0080', 'mraW', 'ATG'), ('JW0082', 'ftsI', 'CCC')").(*InsertStmt)
	if ins.Table != "Gene" || len(ins.Columns) != 3 || len(ins.Rows) != 2 || len(ins.Rows[0]) != 3 {
		t.Errorf("insert = %+v", ins)
	}
	ins2 := mustParse(t, "INSERT INTO Gene VALUES ('JW0080', 'mraW', 'ATG')").(*InsertStmt)
	if ins2.Columns != nil || len(ins2.Rows) != 1 {
		t.Errorf("insert2 = %+v", ins2)
	}
	upd := mustParse(t, "UPDATE Gene SET GSequence = 'ATGCC', GName = 'x' WHERE GID = 'JW0080'").(*UpdateStmt)
	if upd.Table != "Gene" || len(upd.Set) != 2 || upd.Where == nil {
		t.Errorf("update = %+v", upd)
	}
	del := mustParse(t, "DELETE FROM Gene WHERE GID = 'JW0080'").(*DeleteStmt)
	if del.Table != "Gene" || del.Where == nil {
		t.Errorf("delete = %+v", del)
	}
	delAll := mustParse(t, "DELETE FROM Gene").(*DeleteStmt)
	if delAll.Where != nil {
		t.Error("delete-all should have nil where")
	}
}

func TestParseCreateDropTableIndex(t *testing.T) {
	ct := mustParse(t, "CREATE TABLE Gene (GID TEXT NOT NULL PRIMARY KEY, GName TEXT, GSequence SEQUENCE, Score FLOAT)").(*CreateTableStmt)
	if ct.Table != "Gene" || len(ct.Columns) != 4 {
		t.Fatalf("create table = %+v", ct)
	}
	if !ct.Columns[0].PrimaryKey || !ct.Columns[0].NotNull || ct.Columns[0].Type != value.Text {
		t.Errorf("pk column = %+v", ct.Columns[0])
	}
	if ct.Columns[2].Type != value.Sequence || ct.Columns[3].Type != value.Float {
		t.Error("column types wrong")
	}
	if _, err := Parse("CREATE TABLE t (a BLOB)"); err == nil {
		t.Error("unknown type should fail")
	}
	dt := mustParse(t, "DROP TABLE Gene").(*DropTableStmt)
	if dt.Table != "Gene" {
		t.Error("drop table wrong")
	}
	ci := mustParse(t, "CREATE INDEX ON Gene (GName)").(*CreateIndexStmt)
	if ci.Table != "Gene" || ci.Column != "GName" {
		t.Error("create index wrong")
	}
}

func TestParseAnnotationDDL(t *testing.T) {
	ca := mustParse(t, "CREATE ANNOTATION TABLE GAnnotation ON DB2_Gene CATEGORY 'comment'").(*CreateAnnotationTableStmt)
	if ca.Name != "GAnnotation" || ca.UserTable != "DB2_Gene" || ca.Category != "comment" {
		t.Errorf("create annotation table = %+v", ca)
	}
	ca2 := mustParse(t, "CREATE ANNOTATION TABLE Prov ON Gene").(*CreateAnnotationTableStmt)
	if ca2.Category != "" {
		t.Error("optional category")
	}
	da := mustParse(t, "DROP ANNOTATION TABLE GAnnotation ON DB2_Gene").(*DropAnnotationTableStmt)
	if da.Name != "GAnnotation" || da.UserTable != "DB2_Gene" {
		t.Errorf("drop annotation table = %+v", da)
	}
}

func TestParseAddAnnotationPaperExample(t *testing.T) {
	sql := `ADD ANNOTATION
	        TO DB2_Gene.GAnnotation
	        VALUE '<Annotation>obtained from GenoBase</Annotation>'
	        ON (SELECT G.GSequence FROM DB2_Gene G)`
	stmt := mustParse(t, sql).(*AddAnnotationStmt)
	if len(stmt.Targets) != 1 || stmt.Targets[0].UserTable != "DB2_Gene" || stmt.Targets[0].AnnTable != "GAnnotation" {
		t.Errorf("targets = %+v", stmt.Targets)
	}
	if stmt.Body != "<Annotation>obtained from GenoBase</Annotation>" {
		t.Errorf("body = %q", stmt.Body)
	}
	if stmt.On == nil || stmt.On.From[0].Table != "DB2_Gene" {
		t.Error("ON select missing")
	}
	// Tuple-granularity example with a WHERE clause.
	sql2 := `ADD ANNOTATION TO DB2_Gene.GAnnotation
	         VALUE '<Annotation>This gene has an unknown function</Annotation>'
	         ON (SELECT * FROM DB2_Gene G WHERE GID = 'JW0080')`
	stmt2 := mustParse(t, sql2).(*AddAnnotationStmt)
	if !stmt2.On.Items[0].Star || stmt2.On.Where == nil {
		t.Error("tuple-level ON select wrong")
	}
}

func TestParseArchiveRestore(t *testing.T) {
	sql := `ARCHIVE ANNOTATION FROM Gene.GAnnotation
	        BETWEEN '2026-01-01' AND '2026-06-01'
	        ON (SELECT * FROM Gene)`
	stmt := mustParse(t, sql).(*ArchiveAnnotationStmt)
	if stmt.Restore || stmt.From != "2026-01-01" || stmt.To != "2026-06-01" {
		t.Errorf("archive = %+v", stmt)
	}
	rst := mustParse(t, "RESTORE ANNOTATION FROM Gene.GAnnotation ON (SELECT * FROM Gene)").(*ArchiveAnnotationStmt)
	if !rst.Restore || rst.From != "" {
		t.Errorf("restore = %+v", rst)
	}
}

func TestParseContentApproval(t *testing.T) {
	start := mustParse(t, "START CONTENT APPROVAL ON Gene COLUMNS (GSequence, GName) APPROVED BY labadmin").(*StartContentApprovalStmt)
	if start.Table != "Gene" || len(start.Columns) != 2 || start.Approver != "labadmin" {
		t.Errorf("start = %+v", start)
	}
	startAll := mustParse(t, "START CONTENT APPROVAL ON Gene APPROVED BY labadmin").(*StartContentApprovalStmt)
	if startAll.Columns != nil {
		t.Error("no columns clause")
	}
	stop := mustParse(t, "STOP CONTENT APPROVAL ON Gene COLUMNS (GSequence)").(*StopContentApprovalStmt)
	if stop.Table != "Gene" || len(stop.Columns) != 1 {
		t.Errorf("stop = %+v", stop)
	}
}

func TestParseGrantRevokeApproveShow(t *testing.T) {
	g := mustParse(t, "GRANT SELECT, INSERT ON Gene TO labmembers").(*GrantStmt)
	if g.Revoke || len(g.Privileges) != 2 || g.Privileges[1] != "INSERT" || g.Principal != "labmembers" {
		t.Errorf("grant = %+v", g)
	}
	r := mustParse(t, "REVOKE ALL ON Gene FROM mallory").(*GrantStmt)
	if !r.Revoke || r.Privileges[0] != "ALL" {
		t.Errorf("revoke = %+v", r)
	}
	a := mustParse(t, "APPROVE OPERATION 7").(*ApproveStmt)
	if a.Disapprove || a.OpID != 7 {
		t.Errorf("approve = %+v", a)
	}
	d := mustParse(t, "DISAPPROVE OPERATION 9").(*ApproveStmt)
	if !d.Disapprove || d.OpID != 9 {
		t.Errorf("disapprove = %+v", d)
	}
	s := mustParse(t, "SHOW PENDING OPERATIONS FOR Gene").(*ShowPendingStmt)
	if s.Table != "Gene" {
		t.Errorf("show = %+v", s)
	}
	sAll := mustParse(t, "SHOW PENDING OPERATIONS").(*ShowPendingStmt)
	if sAll.Table != "" {
		t.Error("show all wrong")
	}
}

func TestParseAllMultipleStatements(t *testing.T) {
	stmts, err := ParseAll("CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT a FROM t;")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("got %d statements", len(stmts))
	}
	if _, err := ParseAll(""); err != nil {
		t.Errorf("empty input: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"SELECT a FROM",
		"FOO BAR",
		"INSERT Gene VALUES (1)",
		"UPDATE Gene GSequence = 'x'",
		"CREATE Gene",
		"DROP Gene",
		"ADD ANNOTATION TO Gene VALUE 'x' ON (SELECT * FROM Gene)", // missing .ann
		"ADD ANNOTATION TO Gene.Ann VALUE ON (SELECT * FROM Gene)",
		"START CONTENT APPROVAL ON Gene",
		"GRANT ON Gene TO x",
		"APPROVE OPERATION xyz",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t LIMIT abc",
		"SELECT a FROM t; garbage",
		"CREATE TABLE t (a INT", // missing close paren
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) should fail", sql)
		} else if !errors.Is(err, ErrSyntax) && sql != "" {
			// Tokenizer errors are acceptable too; just require an error.
			_ = err
		}
	}
	if _, err := Parse("SELECT a FROM t; SELECT b FROM t"); err == nil {
		t.Error("Parse should reject multiple statements")
	}
}

func TestPlaceholders(t *testing.T) {
	stmt, err := Parse(`SELECT GID FROM Gene WHERE GID = ? AND Score > ?`)
	if err != nil {
		t.Fatal(err)
	}
	if n := CountPlaceholders(stmt); n != 2 {
		t.Errorf("CountPlaceholders = %d, want 2", n)
	}
	sel := stmt.(*SelectStmt)
	var idxs []int
	WalkExprs(sel, func(e Expr) {
		if ph, ok := e.(*PlaceholderExpr); ok {
			idxs = append(idxs, ph.Index)
		}
	})
	if len(idxs) != 2 || idxs[0] != 0 || idxs[1] != 1 {
		t.Errorf("placeholder indexes = %v, want [0 1]", idxs)
	}

	for _, tc := range []struct {
		sql  string
		want int
	}{
		{`INSERT INTO Gene VALUES (?, ?), (?, ?)`, 4},
		{`UPDATE Gene SET GName = ? WHERE GID = ?`, 2},
		{`DELETE FROM Gene WHERE GID = ?`, 1},
		{`SELECT * FROM Gene WHERE Score = ? + 1`, 1},
		{`SELECT * FROM Gene WHERE GID = ? UNION SELECT * FROM Gene WHERE GID = ?`, 2},
		{`SELECT * FROM Gene ANNOTATION(A) AWHERE ANN.VALUE LIKE ?`, 1},
		{`ADD ANNOTATION TO Gene.A VALUE 'x' ON (SELECT * FROM Gene WHERE GID = ?)`, 1},
		{`SELECT * FROM Gene`, 0},
	} {
		stmt, err := Parse(tc.sql)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.sql, err)
			continue
		}
		if n := CountPlaceholders(stmt); n != tc.want {
			t.Errorf("CountPlaceholders(%q) = %d, want %d", tc.sql, n, tc.want)
		}
	}
}

// TestPlaceholderNumberingResetsPerStatement ensures `?` indexes restart at
// zero for each statement of a script.
func TestPlaceholderNumberingResetsPerStatement(t *testing.T) {
	stmts, err := ParseAll(`SELECT a FROM t WHERE a = ?; SELECT b FROM t WHERE b = ?`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 2 {
		t.Fatalf("parsed %d statements", len(stmts))
	}
	for i, stmt := range stmts {
		WalkExprs(stmt, func(e Expr) {
			if ph, ok := e.(*PlaceholderExpr); ok && ph.Index != 0 {
				t.Errorf("statement %d placeholder index = %d, want 0", i, ph.Index)
			}
		})
	}
}

// TestSplitStatements verifies lexer-backed script splitting: semicolons
// inside string literals and line comments do not split.
func TestSplitStatements(t *testing.T) {
	got := SplitStatements("SELECT a FROM t; -- trailing; comment\nINSERT INTO t VALUES ('x;y');\n\nSELECT b FROM t")
	want := []string{
		"SELECT a FROM t",
		"-- trailing; comment\nINSERT INTO t VALUES ('x;y')",
		"SELECT b FROM t",
	}
	if len(got) != len(want) {
		t.Fatalf("split into %d statements: %q", len(got), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("statement %d = %q, want %q", i, got[i], want[i])
		}
	}
	if got := SplitStatements("  ;; ;"); len(got) != 0 {
		t.Errorf("empty script split = %q", got)
	}
	// Comment-only fragments (no tokens) must be skipped, not emitted as
	// statements Parse would reject — every fragment must ParseAll-cleanly.
	script := "CREATE TABLE T (A INT);\nINSERT INTO T VALUES (1);\n-- done\n"
	frags := SplitStatements(script)
	if len(frags) != 2 {
		t.Fatalf("trailing comment split = %q", frags)
	}
	for _, f := range frags {
		if _, err := Parse(f); err != nil {
			t.Errorf("fragment %q does not parse: %v", f, err)
		}
	}
	if got := SplitStatements("SELECT a FROM t; -- note\n; SELECT b FROM t"); len(got) != 2 {
		t.Errorf("comment-only middle fragment split = %q", got)
	}
	// Untokenizable input comes back whole so execution surfaces the error.
	if got := SplitStatements("SELECT 'unterminated"); len(got) != 1 {
		t.Errorf("bad script split = %q", got)
	}
}

func TestParseTransactionControl(t *testing.T) {
	cases := []struct {
		sql  string
		want Statement
	}{
		{`BEGIN`, &BeginStmt{}},
		{`BEGIN TRANSACTION`, &BeginStmt{}},
		{`begin work`, &BeginStmt{}},
		{`COMMIT`, &CommitStmt{}},
		{`COMMIT WORK`, &CommitStmt{}},
		{`ROLLBACK`, &RollbackStmt{}},
		{`ROLLBACK TRANSACTION`, &RollbackStmt{}},
		{`ROLLBACK TO SAVEPOINT sp1`, &RollbackStmt{Savepoint: "sp1"}},
		{`ROLLBACK TO sp1`, &RollbackStmt{Savepoint: "sp1"}},
		{`SAVEPOINT before_update`, &SavepointStmt{Name: "before_update"}},
	}
	for _, tc := range cases {
		got, err := Parse(tc.sql)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.sql, err)
			continue
		}
		if fmt.Sprintf("%#v", got) != fmt.Sprintf("%#v", tc.want) {
			t.Errorf("Parse(%q) = %#v, want %#v", tc.sql, got, tc.want)
		}
		if !IsTxControl(got) {
			t.Errorf("IsTxControl(%q) = false", tc.sql)
		}
	}
	if IsTxControl(&SelectStmt{}) {
		t.Error("IsTxControl(SELECT) = true")
	}
	// A savepoint name is required.
	for _, bad := range []string{`SAVEPOINT`, `ROLLBACK TO SAVEPOINT`, `ROLLBACK TO`} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded, want syntax error", bad)
		}
	}
	// Scripts mix transaction control with ordinary statements.
	stmts, err := ParseAll(`BEGIN; INSERT INTO T VALUES (1); ROLLBACK TO SAVEPOINT s; COMMIT;`)
	if err != nil {
		t.Fatalf("ParseAll: %v", err)
	}
	if len(stmts) != 4 {
		t.Fatalf("ParseAll returned %d statements, want 4", len(stmts))
	}
}

func TestTxWordsRemainValidIdentifiers(t *testing.T) {
	// The transaction vocabulary is not reserved: pre-existing schemas with
	// columns (or tables) named Work, Transaction, Savepoint, Begin, Commit
	// or Rollback must stay creatable AND queryable.
	for _, sql := range []string{
		`CREATE TABLE Jobs (Work TEXT, Transaction INT, Savepoint TEXT)`,
		`SELECT Work, Transaction FROM Jobs WHERE Work = 'x' AND Transaction > 1`,
		`UPDATE Jobs SET Work = 'y' WHERE Savepoint IS NOT NULL`,
		`SELECT Begin, Commit FROM Rollback WHERE Begin = Commit`,
		`INSERT INTO Jobs (Work, Transaction) VALUES ('a', 1)`,
	} {
		if _, err := Parse(sql); err != nil {
			t.Errorf("Parse(%q): %v", sql, err)
		}
	}
	// And a statement-position BEGIN still starts a transaction.
	if stmt := mustParse(t, `begin`); !IsTxControl(stmt) {
		t.Error("statement-position begin not recognized as transaction control")
	}
}
