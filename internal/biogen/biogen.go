// Package biogen generates the synthetic biological workloads used by the
// examples, tests and benchmarks. It substitutes for the proprietary E. coli
// and protein-structure datasets the paper's prototype was driven by: what the
// experiments need is data with the right shape (alphabets, run-length
// distributions, table layouts of Figures 2-3 and 9, annotation mixes), not
// the real sequences.
//
// All generators are deterministic given a seed, so experiments are
// reproducible run to run.
package biogen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Gene mirrors the DB1_Gene / DB2_Gene tables of Figures 2-3: an identifier,
// a short name and a DNA sequence.
type Gene struct {
	ID       string
	Name     string
	Sequence string
}

// Protein mirrors the Protein table of Figure 9: a name, the gene it derives
// from, its primary sequence and a functional annotation.
type Protein struct {
	Name     string
	GeneID   string
	Sequence string
	Function string
}

// MatchRecord mirrors the GeneMatching table of Figure 9(b): two gene
// sequences and the BLAST-like E-value relating them.
type MatchRecord struct {
	Gene1  string
	Gene2  string
	Evalue float64
}

// Generator produces deterministic synthetic biological data.
type Generator struct {
	rng *rand.Rand
}

// New returns a generator seeded with seed.
func New(seed int64) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed))}
}

var (
	dnaAlphabet       = []byte("ACGT")
	proteinAlphabet   = []byte("ACDEFGHIKLMNPQRSTVWY")
	secondaryAlphabet = []byte("HEL")
	geneNamePrefixes  = []string{"mra", "yab", "fts", "fru", "isp", "cai", "fix", "thr", "dna", "rec", "lac", "ara", "trp", "gal", "pur"}
	geneNameSuffixes  = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
	functions         = []string{
		"Hypothetical protein", "Cell wall formation", "Exhibitor",
		"Methyltransferase activity", "DNA repair", "Transcription regulator",
		"Membrane transporter", "Kinase activity", "Ribosomal protein",
		"Oxidoreductase",
	}
)

// DNASequence returns a uniform random DNA sequence of length n.
func (g *Generator) DNASequence(n int) string {
	return g.randomString(dnaAlphabet, n)
}

// ProteinSequence returns a random protein primary sequence of length n,
// always starting with methionine (M) like real translated proteins.
func (g *Generator) ProteinSequence(n int) string {
	if n <= 0 {
		return ""
	}
	s := g.randomString(proteinAlphabet, n-1)
	return "M" + s
}

// SecondaryStructure returns a protein secondary-structure string of length
// roughly n over the alphabet {H, E, L} with geometrically distributed run
// lengths of the given mean. Long runs are what make RLE compression (and the
// SBC-tree) effective — this mirrors the example in Figure 12.
func (g *Generator) SecondaryStructure(n int, meanRunLen float64) string {
	if n <= 0 {
		return ""
	}
	if meanRunLen < 1 {
		meanRunLen = 1
	}
	var b strings.Builder
	b.Grow(n)
	prev := byte(0)
	for b.Len() < n {
		ch := secondaryAlphabet[g.rng.Intn(len(secondaryAlphabet))]
		if ch == prev {
			continue
		}
		prev = ch
		run := 1 + int(g.rng.ExpFloat64()*(meanRunLen-1))
		if run > n-b.Len() {
			run = n - b.Len()
		}
		for i := 0; i < run; i++ {
			b.WriteByte(ch)
		}
	}
	return b.String()
}

func (g *Generator) randomString(alphabet []byte, n int) string {
	if n <= 0 {
		return ""
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = alphabet[g.rng.Intn(len(alphabet))]
	}
	return string(b)
}

// GeneID returns the i-th synthetic gene identifier in the JWnnnn style used
// by the paper's figures.
func GeneID(i int) string { return fmt.Sprintf("JW%04d", i) }

// GeneName returns a plausible short gene name for index i.
func (g *Generator) GeneName(i int) string {
	prefix := geneNamePrefixes[i%len(geneNamePrefixes)]
	suffix := geneNameSuffixes[(i/len(geneNamePrefixes))%len(geneNameSuffixes)]
	return prefix + string(suffix)
}

// Genes generates n genes with sequences of the given length.
func (g *Generator) Genes(n, seqLen int) []Gene {
	out := make([]Gene, n)
	for i := range out {
		out[i] = Gene{
			ID:       GeneID(i),
			Name:     g.GeneName(i),
			Sequence: g.DNASequence(seqLen),
		}
	}
	return out
}

// ProteinsFor derives one protein per gene, simulating the prediction tool P
// of Figure 9(a): the protein sequence is a deterministic translation of the
// gene sequence and the function is drawn from a fixed vocabulary.
func (g *Generator) ProteinsFor(genes []Gene) []Protein {
	out := make([]Protein, len(genes))
	for i, gene := range genes {
		out[i] = Protein{
			Name:     "p" + gene.Name,
			GeneID:   gene.ID,
			Sequence: Translate(gene.Sequence),
			Function: functions[i%len(functions)],
		}
	}
	return out
}

// Translate deterministically maps a DNA sequence to a protein-like sequence
// (codon by codon). It stands in for the paper's "prediction tool P": it is
// executable by the database and non-invertible (many codons map to the same
// amino acid).
func Translate(dna string) string {
	if len(dna) < 3 {
		return "M"
	}
	var b strings.Builder
	b.Grow(len(dna)/3 + 1)
	b.WriteByte('M')
	for i := 0; i+3 <= len(dna); i += 3 {
		idx := 0
		for j := 0; j < 3; j++ {
			idx = idx*4 + dnaIndex(dna[i+j])
		}
		b.WriteByte(proteinAlphabet[idx%len(proteinAlphabet)])
	}
	return b.String()
}

func dnaIndex(c byte) int {
	switch c {
	case 'A':
		return 0
	case 'C':
		return 1
	case 'G':
		return 2
	default:
		return 3
	}
}

// SecondaryStructures generates n secondary-structure sequences whose lengths
// are uniform in [minLen, maxLen] with the given mean run length.
func (g *Generator) SecondaryStructures(n, minLen, maxLen int, meanRunLen float64) []string {
	out := make([]string, n)
	for i := range out {
		length := minLen
		if maxLen > minLen {
			length += g.rng.Intn(maxLen - minLen + 1)
		}
		out[i] = g.SecondaryStructure(length, meanRunLen)
	}
	return out
}

// Similarity computes a BLAST-like similarity between two sequences: the
// fraction of shared k-mers (k=4). It is deterministic, cheap and monotone in
// sequence similarity, which is all the dependency-tracking experiments need
// from "BLAST-2.2.15".
func Similarity(a, b string) float64 {
	const k = 4
	if len(a) < k || len(b) < k {
		if a == b {
			return 1
		}
		return 0
	}
	kmers := make(map[string]struct{}, len(a))
	for i := 0; i+k <= len(a); i++ {
		kmers[a[i:i+k]] = struct{}{}
	}
	shared := 0
	total := 0
	for i := 0; i+k <= len(b); i++ {
		total++
		if _, ok := kmers[b[i:i+k]]; ok {
			shared++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(shared) / float64(total)
}

// EValue converts a similarity score into a BLAST-style E-value: highly
// similar pairs get tiny E-values. The mapping is monotone and deterministic.
func EValue(similarity float64, length int) float64 {
	if similarity <= 0 {
		return 10
	}
	exponent := similarity * float64(length) / 8
	if exponent > 300 {
		exponent = 300
	}
	ev := 1.0
	for i := 0; i < int(exponent); i++ {
		ev /= 10
	}
	return ev
}

// Matches builds a GeneMatching-style table relating the first n genes
// pairwise (i, i+1), as in Figure 9(b).
func (g *Generator) Matches(genes []Gene, n int) []MatchRecord {
	if n > len(genes)-1 {
		n = len(genes) - 1
	}
	out := make([]MatchRecord, 0, n)
	for i := 0; i < n; i++ {
		a, b := genes[i], genes[i+1]
		sim := Similarity(a.Sequence, b.Sequence)
		out = append(out, MatchRecord{
			Gene1:  a.Sequence,
			Gene2:  b.Sequence,
			Evalue: EValue(sim, len(a.Sequence)),
		})
	}
	return out
}

// AnnotationText returns the i-th synthetic annotation body, cycling through
// phrasing similar to the paper's A1..A3 / B1..B5 annotations.
func (g *Generator) AnnotationText(i int) string {
	templates := []string{
		"These genes were obtained from RegulonDB",
		"These genes are published in study %d",
		"Involved in methyltransferase activity",
		"Curated by user admin",
		"possibly split by frameshift",
		"obtained from GenoBase",
		"pseudogene",
		"This gene has an unknown function",
		"Verified by lab experiment %d",
		"Imported by integration tool run %d",
	}
	tmpl := templates[i%len(templates)]
	if strings.Contains(tmpl, "%d") {
		return fmt.Sprintf(tmpl, i)
	}
	return tmpl
}

// Points generates n 2-D points in [0, scale) x [0, scale), used as the
// multidimensional workload (protein feature vectors) for experiment E4.
func (g *Generator) Points(n int, scale float64) [][2]float64 {
	out := make([][2]float64, n)
	for i := range out {
		out[i] = [2]float64{g.rng.Float64() * scale, g.rng.Float64() * scale}
	}
	return out
}

// Keywords generates n keyword strings over the protein alphabet with lengths
// in [3, maxLen], used for the trie / prefix-match workload of E4.
func (g *Generator) Keywords(n, maxLen int) []string {
	if maxLen < 3 {
		maxLen = 3
	}
	out := make([]string, n)
	for i := range out {
		out[i] = g.randomString(proteinAlphabet, 3+g.rng.Intn(maxLen-2))
	}
	return out
}
