package biogen

import (
	"strings"
	"testing"

	"bdbms/internal/rle"
)

func TestDNASequence(t *testing.T) {
	g := New(1)
	s := g.DNASequence(500)
	if len(s) != 500 {
		t.Fatalf("len = %d", len(s))
	}
	for i := 0; i < len(s); i++ {
		if !strings.ContainsRune("ACGT", rune(s[i])) {
			t.Fatalf("bad character %c", s[i])
		}
	}
	if g.DNASequence(0) != "" {
		t.Error("zero length should be empty")
	}
}

func TestDeterminism(t *testing.T) {
	a := New(42).DNASequence(100)
	b := New(42).DNASequence(100)
	if a != b {
		t.Error("same seed must give same sequence")
	}
	c := New(43).DNASequence(100)
	if a == c {
		t.Error("different seeds should differ")
	}
}

func TestProteinSequence(t *testing.T) {
	g := New(2)
	p := g.ProteinSequence(50)
	if len(p) != 50 || p[0] != 'M' {
		t.Fatalf("protein = %q", p)
	}
	if g.ProteinSequence(0) != "" {
		t.Error("zero length protein")
	}
}

func TestSecondaryStructureRuns(t *testing.T) {
	g := New(3)
	s := g.SecondaryStructure(2000, 12)
	if len(s) != 2000 {
		t.Fatalf("len = %d", len(s))
	}
	for i := 0; i < len(s); i++ {
		if s[i] != 'H' && s[i] != 'E' && s[i] != 'L' {
			t.Fatalf("bad char %c", s[i])
		}
	}
	seq := rle.Encode(s)
	avgRun := float64(seq.Len()) / float64(seq.NumRuns())
	if avgRun < 4 {
		t.Errorf("mean run length %.1f too short for meanRunLen=12", avgRun)
	}
	if g.SecondaryStructure(0, 10) != "" {
		t.Error("zero length structure")
	}
	if len(g.SecondaryStructure(10, 0)) != 10 {
		t.Error("meanRunLen floor failed")
	}
}

func TestGeneIDsAndNames(t *testing.T) {
	if GeneID(80) != "JW0080" {
		t.Errorf("GeneID(80) = %s", GeneID(80))
	}
	g := New(4)
	names := map[string]bool{}
	for i := 0; i < 50; i++ {
		names[g.GeneName(i)] = true
	}
	if len(names) < 30 {
		t.Errorf("gene names not diverse enough: %d distinct", len(names))
	}
}

func TestGenesAndProteins(t *testing.T) {
	g := New(5)
	genes := g.Genes(10, 120)
	if len(genes) != 10 {
		t.Fatal("wrong gene count")
	}
	for i, gene := range genes {
		if gene.ID != GeneID(i) || len(gene.Sequence) != 120 {
			t.Errorf("gene %d malformed: %+v", i, gene)
		}
	}
	prots := g.ProteinsFor(genes)
	if len(prots) != 10 {
		t.Fatal("wrong protein count")
	}
	for i, p := range prots {
		if p.GeneID != genes[i].ID {
			t.Errorf("protein %d not linked to gene", i)
		}
		if p.Sequence != Translate(genes[i].Sequence) {
			t.Errorf("protein %d sequence is not the translation", i)
		}
		if p.Function == "" {
			t.Errorf("protein %d missing function", i)
		}
	}
}

func TestTranslateDeterministicNonInvertible(t *testing.T) {
	a := Translate("ATGCATGCA")
	b := Translate("ATGCATGCA")
	if a != b {
		t.Error("translate must be deterministic")
	}
	if a[0] != 'M' {
		t.Error("translation starts with M")
	}
	if Translate("AT") != "M" {
		t.Error("short sequence translates to M")
	}
	// Changing the gene changes the protein (dependency propagation premise).
	if Translate("ATGCATGCA") == Translate("TTTTTTTTT") {
		t.Error("different genes should usually give different proteins")
	}
}

func TestSimilarityAndEValue(t *testing.T) {
	s := New(6).DNASequence(200)
	if Similarity(s, s) != 1 {
		t.Error("self similarity must be 1")
	}
	other := New(7).DNASequence(200)
	sim := Similarity(s, other)
	if sim < 0 || sim > 1 {
		t.Errorf("similarity out of range: %f", sim)
	}
	if Similarity("AB", "AB") != 1 || Similarity("AB", "CD") != 0 {
		t.Error("short-sequence similarity wrong")
	}
	if EValue(1, 200) >= EValue(0.1, 200) {
		t.Error("higher similarity must give lower E-value")
	}
	if EValue(0, 200) != 10 {
		t.Error("zero similarity E-value should be 10")
	}
	if EValue(1, 100000) <= 0 {
		t.Error("E-value must stay positive")
	}
}

func TestMatches(t *testing.T) {
	g := New(8)
	genes := g.Genes(5, 100)
	m := g.Matches(genes, 10)
	if len(m) != 4 {
		t.Fatalf("matches = %d, want 4 (clamped)", len(m))
	}
	for _, rec := range m {
		if rec.Evalue <= 0 {
			t.Error("evalue must be positive")
		}
	}
}

func TestAnnotationText(t *testing.T) {
	g := New(9)
	seen := map[string]bool{}
	for i := 0; i < 20; i++ {
		txt := g.AnnotationText(i)
		if txt == "" {
			t.Fatal("empty annotation")
		}
		seen[txt] = true
	}
	if len(seen) < 8 {
		t.Errorf("annotation texts not diverse: %d", len(seen))
	}
}

func TestPointsAndKeywords(t *testing.T) {
	g := New(10)
	pts := g.Points(100, 50)
	if len(pts) != 100 {
		t.Fatal("wrong point count")
	}
	for _, p := range pts {
		if p[0] < 0 || p[0] >= 50 || p[1] < 0 || p[1] >= 50 {
			t.Fatalf("point out of range: %v", p)
		}
	}
	kws := g.Keywords(100, 10)
	if len(kws) != 100 {
		t.Fatal("wrong keyword count")
	}
	for _, k := range kws {
		if len(k) < 3 || len(k) > 10 {
			t.Fatalf("keyword length out of range: %q", k)
		}
	}
	short := g.Keywords(5, 1)
	for _, k := range short {
		if len(k) != 3 {
			t.Errorf("maxLen floor failed: %q", k)
		}
	}
}

func TestSecondaryStructureCompressesWell(t *testing.T) {
	// The premise of experiment E1: secondary structures with long runs give
	// roughly an order of magnitude compression.
	g := New(11)
	structures := g.SecondaryStructures(20, 500, 1000, 15)
	totalRatio := 0.0
	for _, s := range structures {
		totalRatio += rle.Encode(s).CompressionRatio()
	}
	avg := totalRatio / float64(len(structures))
	if avg < 2 {
		t.Errorf("average compression ratio %.2f; expected well above 2", avg)
	}
}
