package buffer

import (
	"testing"

	"bdbms/internal/pager"
)

func newPool(t *testing.T, capacity, pages int) (*Pool, *pager.MemPager, []pager.PageID) {
	t.Helper()
	p := pager.NewMem()
	pool := New(p, capacity)
	ids := make([]pager.PageID, pages)
	for i := range ids {
		id, err := p.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	return pool, p, ids
}

func TestFetchHitMiss(t *testing.T) {
	pool, _, ids := newPool(t, 4, 2)
	if _, err := pool.Fetch(ids[0]); err != nil {
		t.Fatal(err)
	}
	if err := pool.Unpin(ids[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Fetch(ids[0]); err != nil {
		t.Fatal(err)
	}
	st := pool.Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Errorf("stats = %+v, want 1 miss 1 hit", st)
	}
}

func TestDirtyWriteBackOnEviction(t *testing.T) {
	pool, p, ids := newPool(t, 1, 2)
	data, err := pool.Fetch(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	data[0] = 0xAB
	pool.MarkDirty(ids[0])
	if err := pool.Unpin(ids[0]); err != nil {
		t.Fatal(err)
	}
	// Fetching a second page in a capacity-1 pool evicts and writes back page 0.
	if _, err := pool.Fetch(ids[1]); err != nil {
		t.Fatal(err)
	}
	got, err := p.Read(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0xAB {
		t.Error("dirty page was not written back on eviction")
	}
	st := pool.Stats()
	if st.Evictions != 1 || st.WriteBacks != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestPoolFullWhenAllPinned(t *testing.T) {
	pool, _, ids := newPool(t, 1, 2)
	if _, err := pool.Fetch(ids[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Fetch(ids[1]); err != ErrPoolFull {
		t.Fatalf("expected ErrPoolFull, got %v", err)
	}
}

func TestUnpinErrors(t *testing.T) {
	pool, _, ids := newPool(t, 2, 1)
	if err := pool.Unpin(ids[0]); err != ErrNotPinned {
		t.Fatalf("unpin of non-resident page: %v", err)
	}
	if _, err := pool.Fetch(ids[0]); err != nil {
		t.Fatal(err)
	}
	if err := pool.Unpin(ids[0]); err != nil {
		t.Fatal(err)
	}
	if err := pool.Unpin(ids[0]); err != ErrNotPinned {
		t.Fatalf("double unpin: %v", err)
	}
}

func TestFlushAll(t *testing.T) {
	pool, p, ids := newPool(t, 4, 3)
	for _, id := range ids {
		data, err := pool.Fetch(id)
		if err != nil {
			t.Fatal(err)
		}
		data[1] = byte(id) + 1
		pool.MarkDirty(id)
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		got, err := p.Read(id)
		if err != nil {
			t.Fatal(err)
		}
		if got[1] != byte(id)+1 {
			t.Errorf("page %d not flushed", id)
		}
	}
}

func TestLRUOrder(t *testing.T) {
	pool, _, ids := newPool(t, 2, 3)
	fetchUnpin := func(id pager.PageID) {
		if _, err := pool.Fetch(id); err != nil {
			t.Fatal(err)
		}
		if err := pool.Unpin(id); err != nil {
			t.Fatal(err)
		}
	}
	fetchUnpin(ids[0])
	fetchUnpin(ids[1])
	fetchUnpin(ids[0]) // 0 becomes most recently used
	fetchUnpin(ids[2]) // should evict 1, not 0
	st := pool.Stats()
	fetchUnpin(ids[0])
	st2 := pool.Stats()
	if st2.Hits != st.Hits+1 {
		t.Error("page 0 should have stayed resident (LRU evicted the wrong page)")
	}
}

func TestAllocateThroughPool(t *testing.T) {
	p := pager.NewMem()
	pool := New(p, 2)
	id, data, err := pool.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != pager.PageSize {
		t.Fatalf("allocated buffer %d bytes", len(data))
	}
	if err := pool.Unpin(id); err != nil {
		t.Fatal(err)
	}
	if pool.Resident() != 1 {
		t.Errorf("resident = %d", pool.Resident())
	}
}

func TestCapacityFloor(t *testing.T) {
	p := pager.NewMem()
	pool := New(p, 0)
	if pool.Capacity() != 1 {
		t.Errorf("capacity floor = %d, want 1", pool.Capacity())
	}
}
