// Package buffer implements a fixed-capacity buffer pool over a pager with
// LRU replacement, pin counting and dirty-page write-back. The pool is what
// turns logical page requests from the heap and the access methods into the
// physical I/Os counted by the pager (experiment E2's sensitivity sweep varies
// the pool capacity).
package buffer

import (
	"container/list"
	"errors"
	"fmt"
	"sync"

	"bdbms/internal/pager"
)

// Errors returned by the pool.
var (
	// ErrPoolFull is returned when every frame is pinned and a new page is requested.
	ErrPoolFull = errors.New("buffer: all frames pinned")
	// ErrNotPinned is returned when unpinning a page that is not resident or not pinned.
	ErrNotPinned = errors.New("buffer: page not pinned")
)

// Stats summarises pool behaviour.
type Stats struct {
	// Hits counts requests served from the pool.
	Hits uint64
	// Misses counts requests that required a pager read.
	Misses uint64
	// Evictions counts pages evicted to make room.
	Evictions uint64
	// WriteBacks counts dirty pages flushed to the pager.
	WriteBacks uint64
}

type frame struct {
	id    pager.PageID
	data  []byte
	pins  int
	dirty bool
	elem  *list.Element // position in the LRU list when unpinned
}

// Pool is an LRU buffer pool. All methods are safe for concurrent use.
type Pool struct {
	mu       sync.Mutex
	pgr      pager.Pager
	capacity int
	frames   map[pager.PageID]*frame
	lru      *list.List // of pager.PageID, front = most recently used
	stats    Stats
}

// New creates a pool of the given capacity (in pages) over p.
// Capacity must be at least 1.
func New(p pager.Pager, capacity int) *Pool {
	if capacity < 1 {
		capacity = 1
	}
	return &Pool{
		pgr:      p,
		capacity: capacity,
		frames:   make(map[pager.PageID]*frame),
		lru:      list.New(),
	}
}

// Capacity returns the pool capacity in pages.
func (b *Pool) Capacity() int { return b.capacity }

// Stats returns a snapshot of the pool counters.
func (b *Pool) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

// Allocate creates a new page via the pager and returns it pinned with a
// zeroed buffer.
func (b *Pool) Allocate() (pager.PageID, []byte, error) {
	id, err := b.pgr.Allocate()
	if err != nil {
		return pager.InvalidPageID, nil, err
	}
	data, err := b.Fetch(id)
	if err != nil {
		return pager.InvalidPageID, nil, err
	}
	return id, data, nil
}

// Fetch pins page id and returns its in-pool buffer. Callers may mutate the
// buffer; they must call MarkDirty to have the change written back, and
// Unpin when done.
func (b *Pool) Fetch(id pager.PageID) ([]byte, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if fr, ok := b.frames[id]; ok {
		b.stats.Hits++
		fr.pins++
		if fr.elem != nil {
			b.lru.Remove(fr.elem)
			fr.elem = nil
		}
		return fr.data, nil
	}
	b.stats.Misses++
	if err := b.ensureRoomLocked(); err != nil {
		return nil, err
	}
	data, err := b.pgr.Read(id)
	if err != nil {
		return nil, err
	}
	fr := &frame{id: id, data: data, pins: 1}
	b.frames[id] = fr
	return fr.data, nil
}

// ensureRoomLocked evicts the least recently used unpinned page if the pool
// is at capacity. The caller must hold the mutex.
func (b *Pool) ensureRoomLocked() error {
	if len(b.frames) < b.capacity {
		return nil
	}
	el := b.lru.Back()
	if el == nil {
		return ErrPoolFull
	}
	victimID := el.Value.(pager.PageID)
	victim := b.frames[victimID]
	if victim.dirty {
		if err := b.pgr.Write(victim.id, victim.data); err != nil {
			// The in-pool buffer is now the only trustworthy copy of the
			// victim (the disk may hold a half-persisted frame), so it must
			// stay resident and dirty: evicting would let a later Fetch
			// resurrect the stale on-disk version. Fall back to evicting
			// the least recently used clean frame so reads keep working on
			// a disk that rejects writes; only when every unpinned frame is
			// dirty does the fetch fail.
			for cl := el.Prev(); cl != nil; cl = cl.Prev() {
				cleanID := cl.Value.(pager.PageID)
				if clean := b.frames[cleanID]; !clean.dirty {
					b.lru.Remove(cl)
					delete(b.frames, cleanID)
					b.stats.Evictions++
					return nil
				}
			}
			return fmt.Errorf("buffer: evict write-back: %w", err)
		}
		b.stats.WriteBacks++
	}
	b.lru.Remove(el)
	delete(b.frames, victimID)
	b.stats.Evictions++
	return nil
}

// MarkDirty records that the pinned page id was modified.
func (b *Pool) MarkDirty(id pager.PageID) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if fr, ok := b.frames[id]; ok {
		fr.dirty = true
	}
}

// Unpin releases one pin on page id. When the pin count reaches zero the page
// becomes evictable.
func (b *Pool) Unpin(id pager.PageID) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	fr, ok := b.frames[id]
	if !ok || fr.pins == 0 {
		return ErrNotPinned
	}
	fr.pins--
	if fr.pins == 0 {
		fr.elem = b.lru.PushFront(id)
	}
	return nil
}

// FlushAll writes every dirty resident page back to the pager. Pages remain
// resident and keep their pin counts.
func (b *Pool) FlushAll() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, fr := range b.frames {
		if !fr.dirty {
			continue
		}
		if err := b.pgr.Write(fr.id, fr.data); err != nil {
			return fmt.Errorf("buffer: flush page %d: %w", fr.id, err)
		}
		fr.dirty = false
		b.stats.WriteBacks++
	}
	return nil
}

// Resident returns the number of pages currently in the pool.
func (b *Pool) Resident() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.frames)
}
