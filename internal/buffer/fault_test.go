package buffer

import (
	"errors"
	"testing"

	"bdbms/internal/pager"
)

// dirtyPage allocates a page through the pool, stamps a marker byte into
// it, marks it dirty and unpins it.
func dirtyPage(t *testing.T, pool *Pool, marker byte) pager.PageID {
	t.Helper()
	id, data, err := pool.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	data[0] = marker
	pool.MarkDirty(id)
	if err := pool.Unpin(id); err != nil {
		t.Fatal(err)
	}
	return id
}

// TestEvictionWriteBackFailureFallsBackToCleanFrame: when the LRU victim is
// dirty and its write-back fails, the pool must keep that frame resident
// and dirty (the in-pool copy is the only trustworthy one) and instead
// evict a clean frame so the fetch still succeeds.
func TestEvictionWriteBackFailureFallsBackToCleanFrame(t *testing.T) {
	inner := pager.NewMem()
	fp := pager.NewFaultPager(inner)
	pool := New(fp, 2)

	// Unpin order makes the dirty page the LRU victim: it is unpinned
	// first, the clean page after it.
	dirty := dirtyPage(t, pool, 0xAA)
	clean, _, err := pool.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if err := pool.Unpin(clean); err != nil {
		t.Fatal(err)
	}

	fp.FailWriteAfter(0, pager.ErrInjectedENOSPC)
	third, err := fp.Allocate() // allocation is not a Write; only write-back is faulted
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Fetch(third); err != nil {
		t.Fatalf("fetch with failing write-back should fall back to a clean victim: %v", err)
	}
	if err := pool.Unpin(third); err != nil {
		t.Fatal(err)
	}

	// The dirty page must still be resident with its in-pool content.
	got, err := pool.Fetch(dirty)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0xAA {
		t.Fatalf("dirty page served stale content %#x after failed write-back", got[0])
	}
	if err := pool.Unpin(dirty); err != nil {
		t.Fatal(err)
	}

	// Once the disk recovers, the dirty bit must still be set so the page
	// reaches the pager.
	fp.FailWriteAfter(-1, nil)
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	persisted, err := inner.Read(dirty)
	if err != nil {
		t.Fatal(err)
	}
	if persisted[0] != 0xAA {
		t.Fatal("dirty bit lost: page never written back after the fault cleared")
	}
}

// TestEvictionWriteBackFailureAllDirty: with every unpinned frame dirty and
// the disk rejecting writes, the fetch must fail with the write error — and
// every dirty frame must stay resident so no half-persisted page can ever
// be re-read from disk.
func TestEvictionWriteBackFailureAllDirty(t *testing.T) {
	inner := pager.NewMem()
	fp := pager.NewFaultPager(inner)
	pool := New(fp, 2)

	d1 := dirtyPage(t, pool, 0x01)
	d2 := dirtyPage(t, pool, 0x02)

	fp.FailWriteAfter(0, pager.ErrInjectedEIO)
	third, err := fp.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Fetch(third); !errors.Is(err, pager.ErrInjectedEIO) {
		t.Fatalf("fetch = %v, want the write-back EIO", err)
	}
	if pool.Resident() != 2 {
		t.Fatalf("resident = %d after failed eviction, want 2 (victim must not be dropped)", pool.Resident())
	}

	// Retried statements read the in-pool copies, never a stale disk page.
	for id, marker := range map[pager.PageID]byte{d1: 0x01, d2: 0x02} {
		got, err := pool.Fetch(id)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != marker {
			t.Fatalf("page %d served %#x, want %#x", id, got[0], marker)
		}
		if err := pool.Unpin(id); err != nil {
			t.Fatal(err)
		}
	}

	// After the fault clears, both pages flush and the engine is healthy.
	fp.FailWriteAfter(-1, nil)
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	for id, marker := range map[pager.PageID]byte{d1: 0x01, d2: 0x02} {
		persisted, err := inner.Read(id)
		if err != nil {
			t.Fatal(err)
		}
		if persisted[0] != marker {
			t.Fatalf("page %d lost its dirty bit: disk has %#x, want %#x", id, persisted[0], marker)
		}
	}
}
