package annotation

import (
	"errors"
	"testing"
	"time"

	"bdbms/internal/catalog"
	"bdbms/internal/value"
)

// stubResolver is a TableResolver for tests.
type stubResolver struct {
	cols map[string]int
	rows map[string]int64
}

func (s stubResolver) ColumnCount(table string) (int, error) { return s.cols[table], nil }
func (s stubResolver) MaxRowID(table string) (int64, error)  { return s.rows[table], nil }

func newTestManager(t *testing.T, opts ...Option) *Manager {
	t.Helper()
	cat := catalog.New()
	if err := cat.CreateTable(&catalog.Schema{
		Name: "DB2_Gene",
		Columns: []catalog.Column{
			{Name: "GID", Type: value.Text},
			{Name: "GName", Type: value.Text},
			{Name: "GSequence", Type: value.Sequence},
		},
	}); err != nil {
		t.Fatal(err)
	}
	res := stubResolver{cols: map[string]int{"DB2_Gene": 3}, rows: map[string]int64{"DB2_Gene": 5}}
	m := NewManager(cat, res, opts...)
	if err := m.CreateAnnotationTable("DB2_Gene", "GAnnotation", "comment", false); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRegionBasics(t *testing.T) {
	r := Region{Table: "T", ColStart: 1, ColEnd: 2, RowStart: 3, RowEnd: 5}
	if !r.Covers(4, 2) || r.Covers(2, 2) || r.Covers(4, 0) {
		t.Error("Covers wrong")
	}
	if r.CellCount() != 6 {
		t.Errorf("CellCount = %d", r.CellCount())
	}
	if (Region{ColStart: 2, ColEnd: 1, RowStart: 1, RowEnd: 1}).CellCount() != 0 {
		t.Error("inverted region should cover 0 cells")
	}
	if r.String() == "" {
		t.Error("String empty")
	}
}

func TestRegionHelpers(t *testing.T) {
	if CellRegion("T", 7, 2).CellCount() != 1 {
		t.Error("CellRegion")
	}
	if RowRegion("T", 7, 3).CellCount() != 3 {
		t.Error("RowRegion")
	}
	if RowsRegion("T", 2, 4, 3).CellCount() != 9 {
		t.Error("RowsRegion")
	}
	if ColumnRegion("T", 1, 10).CellCount() != 10 {
		t.Error("ColumnRegion")
	}
	if TableRegion("T", 3, 10).CellCount() != 30 {
		t.Error("TableRegion")
	}
}

func TestRegionsForRowsCollapsesRuns(t *testing.T) {
	regs := RegionsForRows("T", []int64{5, 1, 2, 3, 7, 8, 3}, 0, 2)
	if len(regs) != 3 {
		t.Fatalf("regions = %v", regs)
	}
	if regs[0].RowStart != 1 || regs[0].RowEnd != 3 {
		t.Errorf("first run = %v", regs[0])
	}
	if regs[1].RowStart != 5 || regs[1].RowEnd != 5 {
		t.Errorf("second run = %v", regs[1])
	}
	if regs[2].RowStart != 7 || regs[2].RowEnd != 8 {
		t.Errorf("third run = %v", regs[2])
	}
	if RegionsForRows("T", nil, 0, 1) != nil {
		t.Error("empty rows should give nil")
	}
}

func TestAddAndRetrieve(t *testing.T) {
	m := newTestManager(t)
	// B3: annotate the entire GSequence column (column index 2, rows 1..5).
	b3, err := m.Add("DB2_Gene", "GAnnotation",
		"<Annotation>obtained from GenoBase</Annotation>", "curator",
		[]Region{ColumnRegion("DB2_Gene", 2, 5)})
	if err != nil {
		t.Fatal(err)
	}
	// B5: annotate the entire first tuple.
	b5, err := m.Add("DB2_Gene", "GAnnotation",
		"<Annotation>This gene has an unknown function</Annotation>", "curator",
		[]Region{RowRegion("DB2_Gene", 1, 3)})
	if err != nil {
		t.Fatal(err)
	}
	if b3.ID == b5.ID {
		t.Error("IDs must be unique")
	}
	if m.Count("DB2_Gene") != 2 {
		t.Errorf("Count = %d", m.Count("DB2_Gene"))
	}
	if got := m.Get(b3.ID); got == nil || got.PlainBody() != "obtained from GenoBase" {
		t.Errorf("Get/PlainBody = %+v", got)
	}
	if m.Get(999) != nil {
		t.Error("missing ID should be nil")
	}

	// Cell (row 1, col 2) is covered by both; (row 3, col 2) only by B3;
	// (row 1, col 0) only by B5; (row 3, col 0) by none.
	if got := m.ForCell("DB2_Gene", 1, 2, Filter{}); len(got) != 2 {
		t.Errorf("cell(1,2) annotations = %d", len(got))
	}
	if got := m.ForCell("DB2_Gene", 3, 2, Filter{}); len(got) != 1 || got[0].ID != b3.ID {
		t.Errorf("cell(3,2) = %v", got)
	}
	if got := m.ForCell("DB2_Gene", 1, 0, Filter{}); len(got) != 1 || got[0].ID != b5.ID {
		t.Errorf("cell(1,0) = %v", got)
	}
	if got := m.ForCell("DB2_Gene", 3, 0, Filter{}); len(got) != 0 {
		t.Errorf("cell(3,0) = %v", got)
	}
	if got := m.ForRow("DB2_Gene", 3, Filter{}); len(got) != 1 {
		t.Errorf("row 3 = %v", got)
	}
	if got := m.ForTable("DB2_Gene", Filter{}); len(got) != 2 {
		t.Errorf("table = %v", got)
	}
}

func TestAddValidation(t *testing.T) {
	m := newTestManager(t)
	if _, err := m.Add("DB2_Gene", "Missing", "x", "u", []Region{CellRegion("DB2_Gene", 1, 0)}); !errors.Is(err, ErrNoAnnotationTable) {
		t.Errorf("missing annotation table: %v", err)
	}
	if _, err := m.Add("DB2_Gene", "GAnnotation", "x", "u", nil); !errors.Is(err, ErrEmptyRegion) {
		t.Errorf("empty regions: %v", err)
	}
	bad := Region{Table: "DB2_Gene", ColStart: 2, ColEnd: 1, RowStart: 1, RowEnd: 1}
	if _, err := m.Add("DB2_Gene", "GAnnotation", "x", "u", []Region{bad}); !errors.Is(err, ErrEmptyRegion) {
		t.Errorf("degenerate region: %v", err)
	}
}

func TestSystemManagedTables(t *testing.T) {
	m := newTestManager(t)
	if err := m.CreateAnnotationTable("DB2_Gene", "GProvenance", "provenance", true); err != nil {
		t.Fatal(err)
	}
	reg := []Region{CellRegion("DB2_Gene", 1, 0)}
	if _, err := m.Add("DB2_Gene", "GProvenance", "x", "alice", reg); !errors.Is(err, ErrSystemManaged) {
		t.Errorf("end-user write to provenance: %v", err)
	}
	if _, err := m.Add("DB2_Gene", "GProvenance", "x", "system:integrator", reg); err != nil {
		t.Errorf("system write to provenance: %v", err)
	}
}

func TestFilterByAnnTableAuthorArchived(t *testing.T) {
	m := newTestManager(t)
	if err := m.CreateAnnotationTable("DB2_Gene", "Lineage", "provenance", false); err != nil {
		t.Fatal(err)
	}
	reg := []Region{CellRegion("DB2_Gene", 1, 1)}
	m.Add("DB2_Gene", "GAnnotation", "comment 1", "alice", reg)
	m.Add("DB2_Gene", "Lineage", "from RegulonDB", "bob", reg)

	if got := m.ForCell("DB2_Gene", 1, 1, Filter{AnnTables: []string{"Lineage"}}); len(got) != 1 || got[0].Author != "bob" {
		t.Errorf("ann table filter = %v", got)
	}
	if got := m.ForCell("DB2_Gene", 1, 1, Filter{Author: "alice"}); len(got) != 1 || got[0].AnnTable != "GAnnotation" {
		t.Errorf("author filter = %v", got)
	}
	if got := m.ForCell("DB2_Gene", 1, 1, Filter{}); len(got) != 2 {
		t.Errorf("no filter = %v", got)
	}
}

func TestArchiveRestore(t *testing.T) {
	now := time.Date(2026, 6, 16, 0, 0, 0, 0, time.UTC)
	clock := func() time.Time { return now }
	m := newTestManager(t, WithClock(clock))
	reg := []Region{CellRegion("DB2_Gene", 1, 1)}
	a, _ := m.Add("DB2_Gene", "GAnnotation", "old annotation", "u", reg)
	now = now.Add(time.Hour)
	b, _ := m.Add("DB2_Gene", "GAnnotation", "new annotation", "u", reg)

	// Archive only annotations created in the first half hour.
	n, err := m.Archive("DB2_Gene", []string{"GAnnotation"},
		TimeRange{To: a.CreatedAt.Add(time.Minute)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("archived %d, want 1", n)
	}
	if !m.Get(a.ID).Archived || m.Get(b.ID).Archived {
		t.Error("wrong annotation archived")
	}
	// Archived annotations are hidden unless requested.
	if got := m.ForCell("DB2_Gene", 1, 1, Filter{}); len(got) != 1 || got[0].ID != b.ID {
		t.Errorf("visible after archive = %v", got)
	}
	if got := m.ForCell("DB2_Gene", 1, 1, Filter{IncludeArchived: true}); len(got) != 2 {
		t.Errorf("with archived = %v", got)
	}
	// Restore by region.
	n, err = m.Restore("DB2_Gene", nil, TimeRange{}, []Region{CellRegion("DB2_Gene", 1, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("restored %d, want 1", n)
	}
	if m.Get(a.ID).Archived {
		t.Error("annotation should be restored")
	}
	// Archiving an already-archived annotation is not double counted.
	m.Archive("DB2_Gene", nil, TimeRange{}, nil)
	if n, _ := m.Archive("DB2_Gene", nil, TimeRange{}, nil); n != 0 {
		t.Errorf("re-archive counted %d", n)
	}
}

func TestDropAnnotationTableRemovesAnnotations(t *testing.T) {
	m := newTestManager(t)
	m.CreateAnnotationTable("DB2_Gene", "Lineage", "provenance", false)
	reg := []Region{CellRegion("DB2_Gene", 1, 1)}
	m.Add("DB2_Gene", "GAnnotation", "keep", "u", reg)
	m.Add("DB2_Gene", "Lineage", "drop me", "u", reg)
	if err := m.DropAnnotationTable("DB2_Gene", "Lineage"); err != nil {
		t.Fatal(err)
	}
	if err := m.DropAnnotationTable("DB2_Gene", "Lineage"); err == nil {
		t.Error("double drop should fail")
	}
	got := m.ForCell("DB2_Gene", 1, 1, Filter{IncludeArchived: true})
	if len(got) != 1 || got[0].AnnTable != "GAnnotation" {
		t.Errorf("after drop = %v", got)
	}
	if m.Count("DB2_Gene") != 1 {
		t.Errorf("Count = %d", m.Count("DB2_Gene"))
	}
}

func TestStorageSchemesAgreeAndDifferInSize(t *testing.T) {
	// The rectangle and per-cell stores must return the same annotations for
	// any cell, but the rectangle store uses far fewer records for
	// coarse-granularity annotations (E5).
	buildManager := func(s Store) *Manager {
		cat := catalog.New()
		cat.CreateTable(&catalog.Schema{Name: "G", Columns: []catalog.Column{
			{Name: "a", Type: value.Text}, {Name: "b", Type: value.Text}, {Name: "c", Type: value.Text},
		}})
		m := NewManager(cat, stubResolver{cols: map[string]int{"G": 3}, rows: map[string]int64{"G": 100}}, WithStore(s))
		m.CreateAnnotationTable("G", "Ann", "comment", false)
		return m
	}
	rect := buildManager(NewRectStore())
	cell := buildManager(NewCellStore())
	add := func(m *Manager) {
		m.Add("G", "Ann", "column annotation", "u", []Region{ColumnRegion("G", 1, 100)})
		m.Add("G", "Ann", "row annotation", "u", []Region{RowRegion("G", 42, 3)})
		m.Add("G", "Ann", "cell annotation", "u", []Region{CellRegion("G", 7, 0)})
	}
	add(rect)
	add(cell)

	for _, probe := range []struct {
		row int64
		col int
	}{{42, 1}, {42, 0}, {7, 0}, {7, 1}, {100, 1}, {100, 0}} {
		a := rect.ForCell("G", probe.row, probe.col, Filter{})
		b := cell.ForCell("G", probe.row, probe.col, Filter{})
		if len(a) != len(b) {
			t.Errorf("cell (%d,%d): rect %d vs cell %d annotations", probe.row, probe.col, len(a), len(b))
		}
	}
	if rect.StorageRecords() != 3 {
		t.Errorf("rect records = %d, want 3", rect.StorageRecords())
	}
	if cell.StorageRecords() != 100+3+1 {
		t.Errorf("cell records = %d, want 104", cell.StorageRecords())
	}
	if rect.StoreName() != "rectangle" || cell.StoreName() != "cell" {
		t.Error("store names wrong")
	}
}

func TestCellStoreRemove(t *testing.T) {
	s := NewCellStore()
	a := &Annotation{ID: 1, Regions: []Region{RowsRegion("T", 1, 3, 2)}}
	s.Add(a)
	if s.RecordCount() != 6 {
		t.Fatalf("records = %d", s.RecordCount())
	}
	s.Remove(a)
	if s.RecordCount() != 0 {
		t.Errorf("records after remove = %d", s.RecordCount())
	}
	if ids := s.IDsForCell("T", 1, 0); len(ids) != 0 {
		t.Errorf("ids after remove = %v", ids)
	}
	if ids := s.IDsForRegion(RowsRegion("T", 1, 3, 2)); len(ids) != 0 {
		t.Errorf("region ids after remove = %v", ids)
	}
}

func TestAnnotationCoversCellAndPlainBody(t *testing.T) {
	a := &Annotation{
		Body:    "  <Annotation>pseudogene</Annotation> ",
		Regions: []Region{CellRegion("T", 3, 1), CellRegion("T", 9, 2)},
	}
	if !a.CoversCell(3, 1) || !a.CoversCell(9, 2) || a.CoversCell(3, 2) {
		t.Error("CoversCell wrong")
	}
	if a.PlainBody() != "pseudogene" {
		t.Errorf("PlainBody = %q", a.PlainBody())
	}
}
