// Package annotation implements bdbms's annotation manager (Section 3 of the
// paper): annotations and provenance treated as first-class objects, attached
// to data at multiple granularities (table, column, tuple, cell), stored in
// named annotation tables per user relation, archived and restored over time
// ranges, and retrieved efficiently for propagation through A-SQL queries.
//
// Two storage schemes are provided, mirroring the design discussion around
// Figure 5:
//
//   - RectStore (the default) stores each annotation as a small set of
//     rectangles in (column, RowID) space, indexed by an R-tree. An
//     annotation over an entire column or a contiguous range of tuples is a
//     single record regardless of how many cells it covers.
//   - CellStore is the naive per-cell scheme of Figure 3: one record per
//     covered cell, like adding an Ann_X column next to every data column.
//
// Experiment E5 compares the two.
package annotation

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"bdbms/internal/catalog"
	"bdbms/internal/rtree"
	"bdbms/internal/undo"
	"bdbms/internal/wal"
)

// Errors returned by the annotation manager.
var (
	// ErrNoAnnotationTable is returned when adding to an annotation table that
	// was never created with CREATE ANNOTATION TABLE.
	ErrNoAnnotationTable = errors.New("annotation: annotation table does not exist")
	// ErrEmptyRegion is returned when adding an annotation with no region.
	ErrEmptyRegion = errors.New("annotation: empty region set")
	// ErrSystemManaged is returned when a non-system caller writes to a
	// system-managed annotation table (provenance, Section 4).
	ErrSystemManaged = errors.New("annotation: annotation table is system managed")
)

// Region is a rectangle of cells in a user table: columns [ColStart, ColEnd]
// by rows [RowStart, RowEnd], both inclusive. Column coordinates are ordinal
// positions in the table schema; row coordinates are storage RowIDs.
type Region struct {
	Table    string
	ColStart int
	ColEnd   int
	RowStart int64
	RowEnd   int64
}

// Covers reports whether the region covers the cell (rowID, col).
func (r Region) Covers(rowID int64, col int) bool {
	return col >= r.ColStart && col <= r.ColEnd && rowID >= r.RowStart && rowID <= r.RowEnd
}

// CellCount returns the number of cells the region covers.
func (r Region) CellCount() int64 {
	cols := int64(r.ColEnd - r.ColStart + 1)
	rows := r.RowEnd - r.RowStart + 1
	if cols <= 0 || rows <= 0 {
		return 0
	}
	return cols * rows
}

// String renders the region for diagnostics.
func (r Region) String() string {
	return fmt.Sprintf("%s[cols %d-%d, rows %d-%d]", r.Table, r.ColStart, r.ColEnd, r.RowStart, r.RowEnd)
}

// Annotation is one annotation record with the regions it covers.
type Annotation struct {
	// ID is the annotation's unique identifier.
	ID int64
	// AnnTable is the annotation table (category) the annotation belongs to.
	AnnTable string
	// UserTable is the user table the annotation is attached to.
	UserTable string
	// Body is the annotation value; by convention an XML fragment
	// ("<Annotation>...</Annotation>").
	Body string
	// Author is the user or program that added the annotation.
	Author string
	// CreatedAt is the timestamp assigned when the annotation was added.
	CreatedAt time.Time
	// Archived marks annotations hidden from propagation (Section 3.3).
	Archived bool
	// ArchivedAt is when the annotation was last archived.
	ArchivedAt time.Time
	// Regions are the rectangles of cells the annotation covers.
	Regions []Region
}

// CoversCell reports whether any region of the annotation covers the cell.
func (a *Annotation) CoversCell(rowID int64, col int) bool {
	for _, r := range a.Regions {
		if r.Covers(rowID, col) {
			return true
		}
	}
	return false
}

// PlainBody returns the body with a single enclosing <Annotation> element
// stripped, for display.
func (a *Annotation) PlainBody() string {
	s := strings.TrimSpace(a.Body)
	s = strings.TrimPrefix(s, "<Annotation>")
	s = strings.TrimSuffix(s, "</Annotation>")
	return strings.TrimSpace(s)
}

// Store is the pluggable annotation storage scheme.
type Store interface {
	// Name identifies the scheme ("rectangle" or "cell").
	Name() string
	// Add registers the annotation's regions.
	Add(a *Annotation)
	// Remove unregisters the annotation (used by DROP ANNOTATION TABLE).
	Remove(a *Annotation)
	// IDsForCell returns the IDs of annotations covering the cell.
	IDsForCell(table string, rowID int64, col int) []int64
	// IDsForRegion returns the IDs of annotations intersecting the region.
	IDsForRegion(reg Region) []int64
	// RecordCount returns the number of physical records the scheme stores,
	// the storage measure of experiment E5.
	RecordCount() int
}

// --- rectangle store ----------------------------------------------------------

// RectStore stores one record per (annotation, region) rectangle, indexed by
// an R-tree per user table (Figure 5).
type RectStore struct {
	mu    sync.RWMutex
	trees map[string]*rtree.Tree
	count int
}

// NewRectStore returns an empty rectangle-based store.
func NewRectStore() *RectStore {
	return &RectStore{trees: make(map[string]*rtree.Tree)}
}

// Name implements Store.
func (s *RectStore) Name() string { return "rectangle" }

func regionRect(r Region) rtree.Rect {
	return rtree.Rect{
		MinX: float64(r.ColStart), MaxX: float64(r.ColEnd),
		MinY: float64(r.RowStart), MaxY: float64(r.RowEnd),
	}
}

// Add implements Store.
func (s *RectStore) Add(a *Annotation) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range a.Regions {
		key := strings.ToLower(r.Table)
		tree, ok := s.trees[key]
		if !ok {
			tree = rtree.New()
			s.trees[key] = tree
		}
		if err := tree.Insert(regionRect(r), a.ID); err == nil {
			s.count++
		}
	}
}

// Remove implements Store.
func (s *RectStore) Remove(a *Annotation) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range a.Regions {
		tree, ok := s.trees[strings.ToLower(r.Table)]
		if !ok {
			continue
		}
		if tree.Delete(regionRect(r), func(data interface{}) bool { return data.(int64) == a.ID }) {
			s.count--
		}
	}
}

// IDsForCell implements Store.
func (s *RectStore) IDsForCell(table string, rowID int64, col int) []int64 {
	s.mu.RLock()
	tree, ok := s.trees[strings.ToLower(table)]
	s.mu.RUnlock()
	if !ok {
		return nil
	}
	var out []int64
	tree.Search(rtree.NewPoint(float64(col), float64(rowID)), func(it rtree.Item) bool {
		out = append(out, it.Data.(int64))
		return true
	})
	return dedupe(out)
}

// IDsForRegion implements Store.
func (s *RectStore) IDsForRegion(reg Region) []int64 {
	s.mu.RLock()
	tree, ok := s.trees[strings.ToLower(reg.Table)]
	s.mu.RUnlock()
	if !ok {
		return nil
	}
	var out []int64
	tree.Search(regionRect(reg), func(it rtree.Item) bool {
		out = append(out, it.Data.(int64))
		return true
	})
	return dedupe(out)
}

// RecordCount implements Store.
func (s *RectStore) RecordCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.count
}

// --- per-cell store -----------------------------------------------------------

type cellKey struct {
	table string
	row   int64
	col   int
}

// CellStore is the naive scheme of Figure 3: one record per covered cell.
type CellStore struct {
	mu    sync.RWMutex
	cells map[cellKey][]int64
	count int
}

// NewCellStore returns an empty per-cell store.
func NewCellStore() *CellStore {
	return &CellStore{cells: make(map[cellKey][]int64)}
}

// Name implements Store.
func (s *CellStore) Name() string { return "cell" }

// Add implements Store.
func (s *CellStore) Add(a *Annotation) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range a.Regions {
		table := strings.ToLower(r.Table)
		for row := r.RowStart; row <= r.RowEnd; row++ {
			for col := r.ColStart; col <= r.ColEnd; col++ {
				k := cellKey{table: table, row: row, col: col}
				s.cells[k] = append(s.cells[k], a.ID)
				s.count++
			}
		}
	}
}

// Remove implements Store.
func (s *CellStore) Remove(a *Annotation) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range a.Regions {
		table := strings.ToLower(r.Table)
		for row := r.RowStart; row <= r.RowEnd; row++ {
			for col := r.ColStart; col <= r.ColEnd; col++ {
				k := cellKey{table: table, row: row, col: col}
				ids := s.cells[k]
				for i, id := range ids {
					if id == a.ID {
						s.cells[k] = append(ids[:i], ids[i+1:]...)
						s.count--
						break
					}
				}
				if len(s.cells[k]) == 0 {
					delete(s.cells, k)
				}
			}
		}
	}
}

// IDsForCell implements Store.
func (s *CellStore) IDsForCell(table string, rowID int64, col int) []int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ids := s.cells[cellKey{table: strings.ToLower(table), row: rowID, col: col}]
	return dedupe(append([]int64(nil), ids...))
}

// IDsForRegion implements Store.
func (s *CellStore) IDsForRegion(reg Region) []int64 {
	var out []int64
	s.mu.RLock()
	for k, ids := range s.cells {
		if k.table != strings.ToLower(reg.Table) {
			continue
		}
		if reg.Covers(k.row, k.col) {
			out = append(out, ids...)
		}
	}
	s.mu.RUnlock()
	return dedupe(out)
}

// RecordCount implements Store.
func (s *CellStore) RecordCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.count
}

func dedupe(ids []int64) []int64 {
	if len(ids) <= 1 {
		return ids
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := ids[:1]
	for _, id := range ids[1:] {
		if id != out[len(out)-1] {
			out = append(out, id)
		}
	}
	return out
}

// --- manager -------------------------------------------------------------------

// TableResolver supplies the schema facts the manager needs about user tables.
// *storage.Engine satisfies it via an adapter in the core package; tests can
// provide a stub.
type TableResolver interface {
	// ColumnCount returns the number of columns of the user table.
	ColumnCount(table string) (int, error)
	// MaxRowID returns the largest RowID currently assigned in the table
	// (0 when the table is empty).
	MaxRowID(table string) (int64, error)
}

// Logger is where the manager appends its logical WAL records. *wal.Log
// satisfies it; a nil logger disables logging (memory-only databases, and
// recovery while annotation mutations are replayed from the log).
type Logger interface {
	Append(kind wal.Kind, table string, payload []byte) (uint64, error)
}

// Manager is the annotation manager.
type Manager struct {
	mu        sync.RWMutex
	cat       *catalog.Catalog
	resolver  TableResolver
	store     Store
	logger    Logger
	undo      *undo.Log
	nextID    int64
	byID      map[int64]*Annotation
	byTable   map[string][]int64 // user table -> annotation IDs
	clock     func() time.Time
	systemTag string // author prefix treated as "the system" for system-managed tables
}

// Option customises manager construction.
type Option func(*Manager)

// WithStore selects the storage scheme (default: RectStore).
func WithStore(s Store) Option { return func(m *Manager) { m.store = s } }

// WithClock overrides the time source (tests).
func WithClock(clock func() time.Time) Option { return func(m *Manager) { m.clock = clock } }

// WithSystemTag sets the author prefix allowed to write system-managed
// annotation tables (default "system").
func WithSystemTag(tag string) Option { return func(m *Manager) { m.systemTag = tag } }

// NewManager builds an annotation manager over the given catalog and table
// resolver.
func NewManager(cat *catalog.Catalog, resolver TableResolver, opts ...Option) *Manager {
	m := &Manager{
		cat:       cat,
		resolver:  resolver,
		store:     NewRectStore(),
		nextID:    1,
		byID:      make(map[int64]*Annotation),
		byTable:   make(map[string][]int64),
		clock:     time.Now,
		systemTag: "system",
	}
	for _, o := range opts {
		o(m)
	}
	return m
}

// StoreName returns the active storage scheme name.
func (m *Manager) StoreName() string { return m.store.Name() }

// SetLogger wires the manager to a WAL. Recovery constructs the manager
// without one, replays logged mutations, then installs the log so new
// mutations are recorded.
func (m *Manager) SetLogger(l Logger) { m.logger = l }

// SetUndo installs (or, with nil, clears) the open transaction's undo log:
// while installed, every annotation mutation pushes a compensating closure.
// Like the storage engine's hook, it is only touched under the engine-wide
// exclusive statement lock.
func (m *Manager) SetUndo(u *undo.Log) { m.undo = u }

// pushUndo records a compensating action when a transaction is open.
func (m *Manager) pushUndo(fn func() error) {
	if m.undo != nil {
		m.undo.Push(fn)
	}
}

// logOp appends one logical record when a logger is wired.
func (m *Manager) logOp(kind wal.Kind, table string, payload []byte) error {
	if m.logger == nil {
		return nil
	}
	_, err := m.logger.Append(kind, table, payload)
	return err
}

// CreateAnnotationTable implements CREATE ANNOTATION TABLE (Figure 4).
func (m *Manager) CreateAnnotationTable(userTable, name, category string, systemManaged bool) error {
	def := &catalog.AnnotationTable{
		Name:          name,
		UserTable:     userTable,
		Category:      category,
		SystemManaged: systemManaged,
	}
	if err := m.cat.CreateAnnotationTable(def); err != nil {
		return err
	}
	payload, err := json.Marshal(def)
	if err == nil {
		err = m.logOp(wal.KindCreateAnnTable, userTable, payload)
	}
	if err != nil {
		_ = m.cat.DropAnnotationTable(userTable, name)
		return err
	}
	m.pushUndo(func() error {
		err := m.cat.DropAnnotationTable(userTable, name)
		if errors.Is(err, catalog.ErrAnnotationTableNotFound) {
			return nil
		}
		return err
	})
	return nil
}

// DropAnnotationTable implements DROP ANNOTATION TABLE: the definition and
// every annotation stored in it are removed.
func (m *Manager) DropAnnotationTable(userTable, name string) error {
	def, err := m.cat.AnnotationTable(userTable, name)
	if err != nil {
		return err
	}
	payload, err := json.Marshal(&catalog.AnnotationTable{Name: name, UserTable: userTable})
	if err != nil {
		return err
	}
	// Before-image for the undo log: the definition plus every annotation
	// the drop is about to delete.
	var dropped []*Annotation
	if m.undo != nil {
		m.mu.RLock()
		for _, id := range m.byTable[strings.ToLower(userTable)] {
			if a := m.byID[id]; a != nil && strings.EqualFold(a.AnnTable, name) {
				dropped = append(dropped, a)
			}
		}
		m.mu.RUnlock()
	}
	if err := m.logOp(wal.KindDropAnnTable, userTable, payload); err != nil {
		return err
	}
	if err := m.applyDropAnnotationTable(userTable, name); err != nil {
		return err
	}
	defCopy := *def
	m.pushUndo(func() error {
		if err := m.RecoverCreateAnnotationTable(&defCopy); err != nil {
			return err
		}
		for _, a := range dropped {
			m.RecoverAnnotation(a)
		}
		return nil
	})
	return nil
}

// applyDropAnnotationTable removes the definition and the stored annotations
// without logging.
func (m *Manager) applyDropAnnotationTable(userTable, name string) error {
	if err := m.cat.DropAnnotationTable(userTable, name); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	key := strings.ToLower(userTable)
	kept := m.byTable[key][:0]
	for _, id := range m.byTable[key] {
		a := m.byID[id]
		if strings.EqualFold(a.AnnTable, name) {
			m.store.Remove(a)
			delete(m.byID, id)
			continue
		}
		kept = append(kept, id)
	}
	m.byTable[key] = kept
	return nil
}

// Add implements ADD ANNOTATION (Figure 6a): body is stored in the named
// annotation table, attached to the given regions.
func (m *Manager) Add(userTable, annTable, body, author string, regions []Region) (*Annotation, error) {
	def, err := m.cat.AnnotationTable(userTable, annTable)
	if err != nil {
		return nil, fmt.Errorf("%w: %s on %s", ErrNoAnnotationTable, annTable, userTable)
	}
	if def.SystemManaged && !strings.HasPrefix(strings.ToLower(author), m.systemTag) {
		return nil, fmt.Errorf("%w: %s (author %q)", ErrSystemManaged, annTable, author)
	}
	if len(regions) == 0 {
		return nil, ErrEmptyRegion
	}
	for i := range regions {
		if regions[i].Table == "" {
			regions[i].Table = userTable
		}
		if regions[i].CellCount() <= 0 {
			return nil, fmt.Errorf("%w: region %s covers no cells", ErrEmptyRegion, regions[i])
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	a := &Annotation{
		ID:        m.nextID,
		AnnTable:  def.Name,
		UserTable: userTable,
		Body:      body,
		Author:    author,
		CreatedAt: m.clock(),
		Regions:   regions,
	}
	// Write-ahead order: the fully-assigned annotation (ID, author, creation
	// time, regions) is logged before the in-memory apply, so replay can
	// reconstruct it byte for byte.
	payload, err := json.Marshal(a)
	if err != nil {
		return nil, fmt.Errorf("annotation: encode: %w", err)
	}
	if err := m.logOp(wal.KindAnnotation, userTable, payload); err != nil {
		return nil, err
	}
	m.applyAdd(a)
	m.pushUndo(func() error { m.RecoverRemove(a.ID); return nil })
	return a, nil
}

// RecoverRemove deletes a stored annotation by ID — the undo of Add. An
// absent ID is tolerated.
func (m *Manager) RecoverRemove(id int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	a, ok := m.byID[id]
	if !ok {
		return
	}
	m.store.Remove(a)
	delete(m.byID, id)
	key := strings.ToLower(a.UserTable)
	kept := m.byTable[key][:0]
	for _, other := range m.byTable[key] {
		if other != id {
			kept = append(kept, other)
		}
	}
	m.byTable[key] = kept
}

// applyAdd registers an annotation in the maps and the storage scheme. The
// caller must hold m.mu.
func (m *Manager) applyAdd(a *Annotation) {
	if a.ID >= m.nextID {
		m.nextID = a.ID + 1
	}
	m.byID[a.ID] = a
	key := strings.ToLower(a.UserTable)
	m.byTable[key] = append(m.byTable[key], a.ID)
	m.store.Add(a)
}

// Get returns the annotation with the given ID, or nil.
func (m *Manager) Get(id int64) *Annotation {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.byID[id]
}

// Count returns the number of annotations attached to a user table
// (archived included).
func (m *Manager) Count(userTable string) int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.byTable[strings.ToLower(userTable)])
}

// StorageRecords returns the number of physical records in the storage
// scheme (E5's storage measure).
func (m *Manager) StorageRecords() int { return m.store.RecordCount() }

// Filter restricts which annotations are retrieved.
type Filter struct {
	// AnnTables restricts to the named annotation tables; empty means all.
	AnnTables []string
	// IncludeArchived includes archived annotations when true.
	IncludeArchived bool
	// Author restricts to annotations by the given author ("" means any).
	Author string
}

func (f Filter) wantsTable(name string) bool {
	if len(f.AnnTables) == 0 {
		return true
	}
	for _, t := range f.AnnTables {
		if strings.EqualFold(t, name) {
			return true
		}
	}
	return false
}

func (f Filter) matches(a *Annotation) bool {
	if !f.wantsTable(a.AnnTable) {
		return false
	}
	if a.Archived && !f.IncludeArchived {
		return false
	}
	if f.Author != "" && !strings.EqualFold(f.Author, a.Author) {
		return false
	}
	return true
}

// ForCell returns the annotations covering cell (rowID, col) of the user
// table, filtered by f, sorted by ID.
func (m *Manager) ForCell(userTable string, rowID int64, col int, f Filter) []*Annotation {
	ids := m.store.IDsForCell(userTable, rowID, col)
	return m.resolve(ids, f)
}

// ForRow returns the annotations covering any cell of the given row.
func (m *Manager) ForRow(userTable string, rowID int64, f Filter) []*Annotation {
	numCols, err := m.resolver.ColumnCount(userTable)
	if err != nil || numCols == 0 {
		numCols = 1
	}
	ids := m.store.IDsForRegion(Region{
		Table: userTable, ColStart: 0, ColEnd: numCols - 1, RowStart: rowID, RowEnd: rowID,
	})
	return m.resolve(ids, f)
}

// ForRegion returns the annotations intersecting the region.
func (m *Manager) ForRegion(reg Region, f Filter) []*Annotation {
	return m.resolve(m.store.IDsForRegion(reg), f)
}

// ForTable returns every annotation attached to the user table, filtered by f.
func (m *Manager) ForTable(userTable string, f Filter) []*Annotation {
	m.mu.RLock()
	ids := append([]int64(nil), m.byTable[strings.ToLower(userTable)]...)
	m.mu.RUnlock()
	return m.resolve(ids, f)
}

func (m *Manager) resolve(ids []int64, f Filter) []*Annotation {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []*Annotation
	for _, id := range ids {
		a, ok := m.byID[id]
		if !ok || !f.matches(a) {
			continue
		}
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// TimeRange bounds ARCHIVE/RESTORE ANNOTATION to annotations created between
// From and To (zero values mean unbounded).
type TimeRange struct {
	From time.Time
	To   time.Time
}

func (tr TimeRange) contains(t time.Time) bool {
	if !tr.From.IsZero() && t.Before(tr.From) {
		return false
	}
	if !tr.To.IsZero() && t.After(tr.To) {
		return false
	}
	return true
}

// Archive implements ARCHIVE ANNOTATION (Figure 6b): annotations in the named
// annotation tables, created within tr, attached to cells intersecting any of
// the regions (nil regions means the whole table) are marked archived.
// It returns the number of annotations archived.
func (m *Manager) Archive(userTable string, annTables []string, tr TimeRange, regions []Region) (int, error) {
	return m.setArchived(userTable, annTables, tr, regions, true)
}

// Restore implements RESTORE ANNOTATION (Figure 6c), the inverse of Archive.
func (m *Manager) Restore(userTable string, annTables []string, tr TimeRange, regions []Region) (int, error) {
	return m.setArchived(userTable, annTables, tr, regions, false)
}

func (m *Manager) setArchived(userTable string, annTables []string, tr TimeRange, regions []Region, archived bool) (int, error) {
	f := Filter{AnnTables: annTables, IncludeArchived: true}
	var candidates []*Annotation
	if len(regions) == 0 {
		candidates = m.ForTable(userTable, f)
	} else {
		seen := map[int64]bool{}
		for _, reg := range regions {
			if reg.Table == "" {
				reg.Table = userTable
			}
			for _, a := range m.ForRegion(reg, f) {
				if !seen[a.ID] {
					seen[a.ID] = true
					candidates = append(candidates, a)
				}
			}
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.clock()
	var changed []int64
	for _, a := range candidates {
		if !tr.contains(a.CreatedAt) || a.Archived == archived {
			continue
		}
		changed = append(changed, a.ID)
	}
	if len(changed) == 0 {
		return 0, nil
	}
	// Log the resolved ID set (not the region/time query): replay must flip
	// exactly the annotations the original command flipped, independent of
	// replay-time clocks. Write-ahead order — a failed append leaves the
	// in-memory state untouched and surfaces the error.
	payload, err := json.Marshal(archiveRecord{IDs: changed, Archived: archived, At: now})
	if err == nil {
		err = m.logOp(wal.KindAnnArchive, userTable, payload)
	}
	if err != nil {
		return 0, err
	}
	// Before-image for the undo log: the archived flag and timestamp of each
	// flipped annotation (every candidate in changed flips, by construction).
	var before []archiveSnap
	if m.undo != nil {
		for _, id := range changed {
			if a := m.byID[id]; a != nil {
				before = append(before, archiveSnap{id: id, archived: a.Archived, at: a.ArchivedAt})
			}
		}
	}
	m.applyArchive(changed, archived, now)
	m.pushUndo(func() error {
		m.mu.Lock()
		defer m.mu.Unlock()
		for _, s := range before {
			if a, ok := m.byID[s.id]; ok {
				a.Archived = s.archived
				a.ArchivedAt = s.at
			}
		}
		return nil
	})
	return len(changed), nil
}

// archiveSnap is the per-annotation before-image of an ARCHIVE/RESTORE.
type archiveSnap struct {
	id       int64
	archived bool
	at       time.Time
}

// archiveRecord is the WAL payload of one ARCHIVE/RESTORE ANNOTATION.
type archiveRecord struct {
	IDs      []int64   `json:"ids"`
	Archived bool      `json:"archived"`
	At       time.Time `json:"at"`
}

// applyArchive flips the archived flag of the given annotations. The caller
// must hold m.mu.
func (m *Manager) applyArchive(ids []int64, archived bool, at time.Time) {
	for _, id := range ids {
		a, ok := m.byID[id]
		if !ok {
			continue
		}
		a.Archived = archived
		if archived {
			a.ArchivedAt = at
		}
	}
}

// --- durability ---------------------------------------------------------------

// DecodeAnnotationPayload parses the WAL payload of a KindAnnotation record.
func DecodeAnnotationPayload(payload []byte) (*Annotation, error) {
	var a Annotation
	if err := json.Unmarshal(payload, &a); err != nil {
		return nil, fmt.Errorf("annotation: decode WAL payload: %w", err)
	}
	return &a, nil
}

// DecodeArchivePayload parses the WAL payload of a KindAnnArchive record.
func DecodeArchivePayload(payload []byte) (ids []int64, archived bool, at time.Time, err error) {
	var rec archiveRecord
	if err := json.Unmarshal(payload, &rec); err != nil {
		return nil, false, time.Time{}, fmt.Errorf("annotation: decode archive payload: %w", err)
	}
	return rec.IDs, rec.Archived, rec.At, nil
}

// Snapshot returns a deep copy of every annotation (archived included) plus
// the next annotation ID, the state a checkpoint persists.
func (m *Manager) Snapshot() ([]*Annotation, int64) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]*Annotation, 0, len(m.byID))
	for _, a := range m.byID {
		cp := *a
		cp.Regions = append([]Region(nil), a.Regions...)
		out = append(out, &cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, m.nextID
}

// RestoreSnapshot loads a checkpointed annotation set into an empty manager.
func (m *Manager) RestoreSnapshot(anns []*Annotation, nextID int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, a := range anns {
		m.applyAdd(a)
	}
	if nextID > m.nextID {
		m.nextID = nextID
	}
}

// RecoverAnnotation replays a logged ADD ANNOTATION: the annotation is
// installed with its original ID, author and timestamps. Replaying an ID
// that is already present (a checkpoint raced the crash) is a no-op.
func (m *Manager) RecoverAnnotation(a *Annotation) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.byID[a.ID]; ok {
		return
	}
	m.applyAdd(a)
}

// RecoverArchive replays a logged ARCHIVE/RESTORE state change.
func (m *Manager) RecoverArchive(ids []int64, archived bool, at time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.applyArchive(ids, archived, at)
}

// RecoverCreateAnnotationTable replays CREATE ANNOTATION TABLE, tolerating
// an existing definition.
func (m *Manager) RecoverCreateAnnotationTable(def *catalog.AnnotationTable) error {
	err := m.cat.CreateAnnotationTable(def)
	if errors.Is(err, catalog.ErrAnnotationTableExists) {
		return nil
	}
	return err
}

// RecoverDropAnnotationTable replays DROP ANNOTATION TABLE, tolerating an
// absent definition.
func (m *Manager) RecoverDropAnnotationTable(userTable, name string) error {
	err := m.applyDropAnnotationTable(userTable, name)
	if errors.Is(err, catalog.ErrAnnotationTableNotFound) {
		return nil
	}
	return err
}

// --- region helpers -------------------------------------------------------------

// CellRegion builds a region covering a single cell.
func CellRegion(table string, rowID int64, col int) Region {
	return Region{Table: table, ColStart: col, ColEnd: col, RowStart: rowID, RowEnd: rowID}
}

// RowRegion builds a region covering an entire row (all numCols columns).
func RowRegion(table string, rowID int64, numCols int) Region {
	return Region{Table: table, ColStart: 0, ColEnd: numCols - 1, RowStart: rowID, RowEnd: rowID}
}

// RowsRegion builds a region covering all columns of rows [from, to].
func RowsRegion(table string, from, to int64, numCols int) Region {
	return Region{Table: table, ColStart: 0, ColEnd: numCols - 1, RowStart: from, RowEnd: to}
}

// ColumnRegion builds a region covering column col of rows [1, maxRowID].
func ColumnRegion(table string, col int, maxRowID int64) Region {
	return Region{Table: table, ColStart: col, ColEnd: col, RowStart: 1, RowEnd: maxRowID}
}

// TableRegion builds a region covering the whole table as it exists now.
func TableRegion(table string, numCols int, maxRowID int64) Region {
	return Region{Table: table, ColStart: 0, ColEnd: numCols - 1, RowStart: 1, RowEnd: maxRowID}
}

// RegionsForRows builds minimal rectangle regions covering the given columns
// of the given (possibly non-contiguous) RowIDs: consecutive runs of RowIDs
// collapse into single rectangles, which is how the ADD ANNOTATION command
// turns a SELECT result into compact regions.
func RegionsForRows(table string, rowIDs []int64, colStart, colEnd int) []Region {
	if len(rowIDs) == 0 {
		return nil
	}
	ids := append([]int64(nil), rowIDs...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var out []Region
	runStart, prev := ids[0], ids[0]
	flush := func(end int64) {
		out = append(out, Region{
			Table: table, ColStart: colStart, ColEnd: colEnd, RowStart: runStart, RowEnd: end,
		})
	}
	for _, id := range ids[1:] {
		if id == prev { // duplicate
			continue
		}
		if id == prev+1 {
			prev = id
			continue
		}
		flush(prev)
		runStart, prev = id, id
	}
	flush(prev)
	return out
}
