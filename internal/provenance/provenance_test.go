package provenance

import (
	"errors"
	"strings"
	"testing"
	"time"

	"bdbms/internal/annotation"
	"bdbms/internal/catalog"
	"bdbms/internal/value"
)

type stubResolver struct{}

func (stubResolver) ColumnCount(string) (int, error) { return 3, nil }
func (stubResolver) MaxRowID(string) (int64, error)  { return 10, nil }

func newManagers(t *testing.T) (*annotation.Manager, *Manager) {
	t.Helper()
	cat := catalog.New()
	if err := cat.CreateTable(&catalog.Schema{Name: "Gene", Columns: []catalog.Column{
		{Name: "GID", Type: value.Text},
		{Name: "GName", Type: value.Text},
		{Name: "GSequence", Type: value.Sequence},
	}}); err != nil {
		t.Fatal(err)
	}
	am := annotation.NewManager(cat, stubResolver{})
	pm := NewManager(am)
	pm.RegisterAgent("loader")
	return am, pm
}

func TestRecordValidateAndEncode(t *testing.T) {
	good := Record{Source: "RegulonDB", Action: ActionCopy, Time: time.Now()}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	body, err := good.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(body, "<Provenance>") || !strings.Contains(body, "RegulonDB") {
		t.Errorf("encoded body = %s", body)
	}
	decoded, err := Decode(body)
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Source != "RegulonDB" || decoded.Action != ActionCopy {
		t.Errorf("decoded = %+v", decoded)
	}

	bad := Record{Action: "teleport", Source: "X"}
	if err := bad.Validate(); !errors.Is(err, ErrInvalidRecord) {
		t.Errorf("bad action: %v", err)
	}
	empty := Record{Action: ActionCopy}
	if err := empty.Validate(); !errors.Is(err, ErrInvalidRecord) {
		t.Errorf("missing source/program: %v", err)
	}
	if _, err := Decode("not xml at all <"); !errors.Is(err, ErrInvalidRecord) {
		t.Errorf("decode garbage: %v", err)
	}
	if _, err := bad.Encode(); err == nil {
		t.Error("encoding invalid record should fail")
	}
}

func TestAttachRequiresAgent(t *testing.T) {
	_, pm := newManagers(t)
	rec := Record{Source: "GenoBase", Action: ActionCopy}
	regions := []annotation.Region{annotation.ColumnRegion("Gene", 2, 10)}
	if _, err := pm.Attach("randomuser", "Gene", rec, regions); !errors.Is(err, ErrUnauthorizedAgent) {
		t.Errorf("unregistered agent: %v", err)
	}
	entry, err := pm.Attach("loader", "Gene", rec, regions)
	if err != nil {
		t.Fatal(err)
	}
	if entry.Record.Agent != "loader" || entry.Record.Time.IsZero() {
		t.Errorf("entry record not completed: %+v", entry.Record)
	}
	if entry.Annotation.AnnTable != TableName {
		t.Errorf("stored in %s", entry.Annotation.AnnTable)
	}
	pm.UnregisterAgent("loader")
	if _, err := pm.Attach("loader", "Gene", rec, regions); !errors.Is(err, ErrUnauthorizedAgent) {
		t.Errorf("after unregister: %v", err)
	}
	if pm.IsAgent("loader") {
		t.Error("IsAgent after unregister")
	}
}

func TestAttachValidatesRecord(t *testing.T) {
	_, pm := newManagers(t)
	bad := Record{Action: ActionCopy} // no source/program
	if _, err := pm.Attach("loader", "Gene", bad, []annotation.Region{annotation.CellRegion("Gene", 1, 0)}); err == nil {
		t.Error("invalid record should fail")
	}
}

func TestEndUsersCannotWriteProvenanceDirectly(t *testing.T) {
	am, pm := newManagers(t)
	// Ensure the provenance table exists, then try to write it as a plain user
	// through the annotation manager.
	rec := Record{Source: "S1", Action: ActionCopy}
	if _, err := pm.Attach("loader", "Gene", rec, []annotation.Region{annotation.CellRegion("Gene", 1, 0)}); err != nil {
		t.Fatal(err)
	}
	_, err := am.Add("Gene", TableName, "<Provenance>forged</Provenance>", "mallory",
		[]annotation.Region{annotation.CellRegion("Gene", 1, 0)})
	if !errors.Is(err, annotation.ErrSystemManaged) {
		t.Errorf("end-user provenance write: %v", err)
	}
}

func TestSourceAtMultipleGranularities(t *testing.T) {
	_, pm := newManagers(t)
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

	// Figure 8: data copied from S2, later a column overwritten by S3, one
	// value updated by program P1.
	att := func(rec Record, regions ...annotation.Region) {
		t.Helper()
		if _, err := pm.Attach("loader", "Gene", rec, regions); err != nil {
			t.Fatal(err)
		}
	}
	att(Record{Source: "S2", Action: ActionCopy, Time: base},
		annotation.RowsRegion("Gene", 1, 10, 3))
	att(Record{Source: "S3", Action: ActionOverwrite, Time: base.Add(48 * time.Hour)},
		annotation.ColumnRegion("Gene", 2, 10))
	att(Record{Program: "P1", Action: ActionUpdate, Time: base.Add(72 * time.Hour)},
		annotation.CellRegion("Gene", 5, 2))

	// At T = base+1h, everything still comes from S2.
	e, err := pm.SourceAt("Gene", 5, 2, base.Add(time.Hour))
	if err != nil || e.Record.Source != "S2" {
		t.Fatalf("T1: %+v %v", e.Record, err)
	}
	// At T = base+50h, column 2 comes from S3.
	e, err = pm.SourceAt("Gene", 5, 2, base.Add(50*time.Hour))
	if err != nil || e.Record.Source != "S3" {
		t.Fatalf("T2: %+v %v", e.Record, err)
	}
	// At T = base+100h, cell (5,2) was updated by P1.
	e, err = pm.SourceAt("Gene", 5, 2, base.Add(100*time.Hour))
	if err != nil || e.Record.Program != "P1" {
		t.Fatalf("T3: %+v %v", e.Record, err)
	}
	// A different cell in column 2 is still S3.
	e, err = pm.SourceAt("Gene", 3, 2, base.Add(100*time.Hour))
	if err != nil || e.Record.Source != "S3" {
		t.Fatalf("other cell: %+v %v", e.Record, err)
	}
	// Column 0 was never overwritten: still S2.
	e, err = pm.SourceAt("Gene", 3, 0, base.Add(100*time.Hour))
	if err != nil || e.Record.Source != "S2" {
		t.Fatalf("col 0: %+v %v", e.Record, err)
	}
	// Before any provenance: not found.
	if _, err := pm.SourceAt("Gene", 3, 0, base.Add(-time.Hour)); !errors.Is(err, ErrNotFound) {
		t.Errorf("before history: %v", err)
	}

	// Sources aggregates the distinct origins of the cell.
	srcs := pm.Sources("Gene", 5, 2)
	if len(srcs) != 3 {
		t.Errorf("Sources = %v", srcs)
	}
	if rows := pm.ForRow("Gene", 5); len(rows) != 3 {
		t.Errorf("ForRow = %d entries", len(rows))
	}
}

func TestEnsureTableIdempotent(t *testing.T) {
	_, pm := newManagers(t)
	if err := pm.EnsureTable("Gene"); err != nil {
		t.Fatal(err)
	}
	if err := pm.EnsureTable("Gene"); err != nil {
		t.Errorf("second EnsureTable: %v", err)
	}
}
