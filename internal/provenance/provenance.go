// Package provenance implements bdbms's provenance management (Section 4 of
// the paper). Provenance is treated as a special kind of annotation: records
// follow a well-defined structure (serialised as XML), they are attached to
// data at any granularity through the annotation manager's region model, and
// only registered system agents (integration tools, loaders) may insert them —
// end users can only query and propagate them.
package provenance

import (
	"encoding/xml"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"bdbms/internal/annotation"
	"bdbms/internal/catalog"
	"bdbms/internal/undo"
	"bdbms/internal/wal"
)

// TableName is the reserved annotation table that holds provenance records
// for every user table.
const TableName = "Provenance"

// Action enumerates how a value reached the database (Figure 8).
type Action string

// Provenance actions.
const (
	// ActionCopy records a value copied from an external source database.
	ActionCopy Action = "copy"
	// ActionInsert records a locally inserted value.
	ActionInsert Action = "local-insert"
	// ActionUpdate records a value updated by a program.
	ActionUpdate Action = "update"
	// ActionOverwrite records a value overwritten by a newer source.
	ActionOverwrite Action = "overwrite"
	// ActionDerive records a value derived by an analysis procedure.
	ActionDerive Action = "derive"
)

// Record is one structured provenance entry.
type Record struct {
	XMLName xml.Name `xml:"Provenance"`
	// Source is the originating database or dataset (e.g. "RegulonDB").
	Source string `xml:"Source,omitempty"`
	// Program is the tool that produced or moved the value (e.g. "BLAST-2.2.15").
	Program string `xml:"Program,omitempty"`
	// Action describes how the value arrived.
	Action Action `xml:"Action"`
	// Agent is the system agent that inserted the provenance record.
	Agent string `xml:"Agent"`
	// Time is when the data operation happened.
	Time time.Time `xml:"Time"`
	// Detail carries free-form extra information.
	Detail string `xml:"Detail,omitempty"`
}

// Errors returned by the provenance manager.
var (
	// ErrUnauthorizedAgent is returned when an unregistered agent writes provenance.
	ErrUnauthorizedAgent = errors.New("provenance: agent not authorized")
	// ErrInvalidRecord is returned when a record fails schema validation.
	ErrInvalidRecord = errors.New("provenance: invalid record")
	// ErrNotFound is returned when no provenance covers the requested cell/time.
	ErrNotFound = errors.New("provenance: no provenance record found")
)

// Validate enforces the provenance schema: an action is required, and at
// least one of Source or Program must be set.
func (r Record) Validate() error {
	switch r.Action {
	case ActionCopy, ActionInsert, ActionUpdate, ActionOverwrite, ActionDerive:
	default:
		return fmt.Errorf("%w: unknown action %q", ErrInvalidRecord, r.Action)
	}
	if r.Source == "" && r.Program == "" {
		return fmt.Errorf("%w: record needs a Source or a Program", ErrInvalidRecord)
	}
	return nil
}

// MarshalXML is provided by encoding/xml; Encode renders the record as the
// annotation body stored in the annotation manager.
func (r Record) Encode() (string, error) {
	if err := r.Validate(); err != nil {
		return "", err
	}
	data, err := xml.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", fmt.Errorf("provenance: encode: %w", err)
	}
	return string(data), nil
}

// Decode parses a provenance record from an annotation body.
func Decode(body string) (Record, error) {
	var r Record
	if err := xml.Unmarshal([]byte(body), &r); err != nil {
		return Record{}, fmt.Errorf("%w: %v", ErrInvalidRecord, err)
	}
	return r, nil
}

// Entry is a provenance record together with the annotation that stores it.
type Entry struct {
	Record     Record
	Annotation *annotation.Annotation
}

// Manager is the provenance manager, layered on the annotation manager.
type Manager struct {
	mu     sync.RWMutex
	ann    *annotation.Manager
	agents map[string]bool
	logger annotation.Logger
	undo   *undo.Log
	clock  func() time.Time
}

// NewManager builds a provenance manager over the annotation manager.
func NewManager(ann *annotation.Manager) *Manager {
	return &Manager{
		ann:    ann,
		agents: make(map[string]bool),
		clock:  time.Now,
	}
}

// SetClock overrides the time source (tests).
func (m *Manager) SetClock(clock func() time.Time) { m.clock = clock }

// SetLogger wires the manager to a WAL so agent (de)registrations survive a
// reopen. Provenance records themselves are annotations and are made durable
// by the annotation manager.
func (m *Manager) SetLogger(l annotation.Logger) { m.logger = l }

// SetUndo installs (or, with nil, clears) the open transaction's undo log;
// agent (de)registrations then push their inverse. Only touched under the
// engine-wide exclusive statement lock. Provenance attachments are
// annotations and are covered by the annotation manager's hook.
func (m *Manager) SetUndo(u *undo.Log) { m.undo = u }

// logAgent appends one agent-registry record when a logger is wired. The
// payload is "+name" for registration and "-name" for revocation.
func (m *Manager) logAgent(name string, register bool) error {
	if m.logger == nil {
		return nil
	}
	op := "-"
	if register {
		op = "+"
	}
	_, err := m.logger.Append(wal.KindProvAgent, "", []byte(op+strings.ToLower(name)))
	return err
}

// DecodeAgentPayload parses the WAL payload of a KindProvAgent record.
func DecodeAgentPayload(payload []byte) (name string, register bool, err error) {
	s := string(payload)
	if len(s) < 2 || (s[0] != '+' && s[0] != '-') {
		return "", false, fmt.Errorf("provenance: bad agent payload %q", s)
	}
	return s[1:], s[0] == '+', nil
}

// RegisterAgent authorizes a system agent (integration tool, loader) to
// insert provenance records. The registration is logged before it applies
// (write-ahead order); on a log failure nothing changes and the error is
// returned. Empty names are rejected — an agent must be nameable, and the
// WAL payload format requires at least one character.
func (m *Manager) RegisterAgent(name string) error {
	if strings.TrimSpace(name) == "" {
		return fmt.Errorf("%w: empty agent name", ErrInvalidRecord)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.agents[strings.ToLower(name)] {
		return nil
	}
	if err := m.logAgent(name, true); err != nil {
		return err
	}
	m.agents[strings.ToLower(name)] = true
	if m.undo != nil {
		m.undo.Push(func() error { m.RecoverAgent(name, false); return nil })
	}
	return nil
}

// UnregisterAgent revokes an agent's authorization.
func (m *Manager) UnregisterAgent(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.agents[strings.ToLower(name)] {
		return nil
	}
	if err := m.logAgent(name, false); err != nil {
		return err
	}
	delete(m.agents, strings.ToLower(name))
	if m.undo != nil {
		m.undo.Push(func() error { m.RecoverAgent(name, true); return nil })
	}
	return nil
}

// Agents returns the registered agent names, sorted — the state a checkpoint
// persists.
func (m *Manager) Agents() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.agents))
	for name := range m.agents {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// RecoverAgent replays a logged agent-registry transition.
func (m *Manager) RecoverAgent(name string, register bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if register {
		m.agents[strings.ToLower(name)] = true
	} else {
		delete(m.agents, strings.ToLower(name))
	}
}

// IsAgent reports whether name is a registered agent.
func (m *Manager) IsAgent(name string) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.agents[strings.ToLower(name)]
}

// EnsureTable creates the reserved provenance annotation table for the user
// table when it does not yet exist.
func (m *Manager) EnsureTable(userTable string) error {
	err := m.ann.CreateAnnotationTable(userTable, TableName, "provenance", true)
	if errors.Is(err, catalog.ErrAnnotationTableExists) {
		return nil
	}
	return err
}

// Attach records provenance for the given regions of a user table. Only
// registered agents may call it; the record's Agent and Time fields are
// filled in by the manager.
func (m *Manager) Attach(agent, userTable string, rec Record, regions []annotation.Region) (*Entry, error) {
	if !m.IsAgent(agent) {
		return nil, fmt.Errorf("%w: %q", ErrUnauthorizedAgent, agent)
	}
	rec.Agent = agent
	if rec.Time.IsZero() {
		rec.Time = m.clock().UTC()
	}
	body, err := rec.Encode()
	if err != nil {
		return nil, err
	}
	if err := m.EnsureTable(userTable); err != nil {
		return nil, err
	}
	a, err := m.ann.Add(userTable, TableName, body, "system:"+agent, regions)
	if err != nil {
		return nil, err
	}
	return &Entry{Record: rec, Annotation: a}, nil
}

// ForCell returns every provenance entry covering the cell, oldest first.
func (m *Manager) ForCell(userTable string, rowID int64, col int) []Entry {
	anns := m.ann.ForCell(userTable, rowID, col, annotation.Filter{AnnTables: []string{TableName}})
	return decodeAll(anns)
}

// ForRow returns every provenance entry covering any cell of the row.
func (m *Manager) ForRow(userTable string, rowID int64) []Entry {
	anns := m.ann.ForRow(userTable, rowID, annotation.Filter{AnnTables: []string{TableName}})
	return decodeAll(anns)
}

func decodeAll(anns []*annotation.Annotation) []Entry {
	var out []Entry
	for _, a := range anns {
		rec, err := Decode(a.Body)
		if err != nil {
			continue
		}
		out = append(out, Entry{Record: rec, Annotation: a})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Record.Time.Before(out[j].Record.Time) })
	return out
}

// SourceAt answers Figure 8's question "what is the source of this value at
// time T?": the most recent provenance entry covering the cell whose
// operation time is not after at.
func (m *Manager) SourceAt(userTable string, rowID int64, col int, at time.Time) (Entry, error) {
	entries := m.ForCell(userTable, rowID, col)
	var best *Entry
	for i := range entries {
		if entries[i].Record.Time.After(at) {
			continue
		}
		if best == nil || entries[i].Record.Time.After(best.Record.Time) {
			best = &entries[i]
		}
	}
	if best == nil {
		return Entry{}, fmt.Errorf("%w: %s row %d col %d at %s", ErrNotFound, userTable, rowID, col, at)
	}
	return *best, nil
}

// Sources returns the distinct Source names contributing to the cell over its
// whole history ("where do these values come from?" in Figure 8).
func (m *Manager) Sources(userTable string, rowID int64, col int) []string {
	seen := map[string]bool{}
	var out []string
	for _, e := range m.ForCell(userTable, rowID, col) {
		src := e.Record.Source
		if src == "" {
			src = e.Record.Program
		}
		if src == "" || seen[src] {
			continue
		}
		seen[src] = true
		out = append(out, src)
	}
	sort.Strings(out)
	return out
}
