package heap

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"bdbms/internal/buffer"
	"bdbms/internal/pager"
)

func newFile(t *testing.T) (*File, *pager.MemPager, *buffer.Pool) {
	t.Helper()
	p := pager.NewMem()
	pool := buffer.New(p, 16)
	return New(pool), p, pool
}

func TestInsertGet(t *testing.T) {
	f, _, _ := newFile(t)
	rid, err := f.Insert([]byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.Get(rid)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Errorf("got %q", got)
	}
	if f.Count() != 1 {
		t.Errorf("count = %d", f.Count())
	}
}

func TestManyInsertsAcrossPages(t *testing.T) {
	f, p, _ := newFile(t)
	const n = 2000
	rids := make([]RID, n)
	for i := 0; i < n; i++ {
		rec := []byte(fmt.Sprintf("record-%06d-%s", i, string(make([]byte, 100))))
		rid, err := f.Insert(rec)
		if err != nil {
			t.Fatal(err)
		}
		rids[i] = rid
	}
	if p.NumPages() < 2 {
		t.Fatal("expected the heap to span multiple pages")
	}
	for i, rid := range rids {
		rec, err := f.Get(rid)
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		if !bytes.HasPrefix(rec, []byte(fmt.Sprintf("record-%06d", i))) {
			t.Fatalf("record %d corrupted", i)
		}
	}
	if f.Count() != n {
		t.Errorf("count = %d", f.Count())
	}
}

func TestDelete(t *testing.T) {
	f, _, _ := newFile(t)
	rid, _ := f.Insert([]byte("x"))
	if err := f.Delete(rid); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Get(rid); err == nil {
		t.Error("deleted record still readable")
	}
	if err := f.Delete(rid); err == nil {
		t.Error("double delete should fail")
	}
	if f.Count() != 0 {
		t.Errorf("count = %d", f.Count())
	}
	if err := f.Delete(RID{Page: rid.Page, Slot: 99}); err == nil {
		t.Error("bad slot should fail")
	}
}

func TestUpdateInPlaceAndRelocate(t *testing.T) {
	f, _, _ := newFile(t)
	rid, _ := f.Insert([]byte("aaaaaaaaaa"))
	// Smaller record: in place.
	nrid, err := f.Update(rid, []byte("bb"))
	if err != nil {
		t.Fatal(err)
	}
	if nrid != rid {
		t.Error("small update should stay in place")
	}
	got, _ := f.Get(rid)
	if string(got) != "bb" {
		t.Errorf("got %q", got)
	}
	// Larger record: relocated.
	big := bytes.Repeat([]byte("z"), 200)
	nrid, err = f.Update(rid, big)
	if err != nil {
		t.Fatal(err)
	}
	got, err = f.Get(nrid)
	if err != nil || !bytes.Equal(got, big) {
		t.Fatalf("relocated record wrong: %v", err)
	}
	if _, err := f.Get(rid); nrid != rid && err == nil {
		t.Error("old rid should be dead after relocation")
	}
	if f.Count() != 1 {
		t.Errorf("count = %d", f.Count())
	}
	if _, err := f.Update(RID{Page: nrid.Page, Slot: 99}, []byte("x")); err == nil {
		t.Error("updating bad slot should fail")
	}
}

func TestRecordTooLarge(t *testing.T) {
	f, _, _ := newFile(t)
	if _, err := f.Insert(make([]byte, MaxRecordSize+1)); err == nil {
		t.Error("oversized insert should fail")
	}
	rid, _ := f.Insert([]byte("ok"))
	if _, err := f.Update(rid, make([]byte, MaxRecordSize+1)); err == nil {
		t.Error("oversized update should fail")
	}
	// A maximum-size record must fit.
	if _, err := f.Insert(make([]byte, MaxRecordSize)); err != nil {
		t.Errorf("max-size insert failed: %v", err)
	}
}

func TestScan(t *testing.T) {
	f, _, _ := newFile(t)
	want := map[string]bool{}
	var deleteRID RID
	for i := 0; i < 500; i++ {
		rec := fmt.Sprintf("rec-%d", i)
		rid, err := f.Insert([]byte(rec))
		if err != nil {
			t.Fatal(err)
		}
		if i == 250 {
			deleteRID = rid
		} else {
			want[rec] = true
		}
	}
	if err := f.Delete(deleteRID); err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	err := f.Scan(func(rid RID, rec []byte) bool {
		got[string(rec)] = true
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("scan saw %d records, want %d", len(got), len(want))
	}
	// Early termination.
	count := 0
	f.Scan(func(RID, []byte) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Errorf("early stop visited %d", count)
	}
}

func TestOpenRecoversFromPages(t *testing.T) {
	p := pager.NewMem()
	pool := buffer.New(p, 16)
	f := New(pool)
	for i := 0; i < 300; i++ {
		if _, err := f.Insert([]byte(fmt.Sprintf("row %d with some padding to force pages", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	reopened, err := Open(buffer.New(p, 16), f.Pages())
	if err != nil {
		t.Fatal(err)
	}
	if reopened.Count() != 300 {
		t.Fatalf("reopened count = %d", reopened.Count())
	}
}

func TestRandomizedWorkload(t *testing.T) {
	f, _, _ := newFile(t)
	rng := rand.New(rand.NewSource(5))
	live := map[RID][]byte{}
	for op := 0; op < 3000; op++ {
		switch rng.Intn(4) {
		case 0, 1: // insert
			rec := make([]byte, 1+rng.Intn(300))
			rng.Read(rec)
			rid, err := f.Insert(rec)
			if err != nil {
				t.Fatal(err)
			}
			live[rid] = append([]byte(nil), rec...)
		case 2: // delete
			for rid := range live {
				if err := f.Delete(rid); err != nil {
					t.Fatal(err)
				}
				delete(live, rid)
				break
			}
		case 3: // update
			for rid, old := range live {
				rec := make([]byte, 1+rng.Intn(300))
				rng.Read(rec)
				nrid, err := f.Update(rid, rec)
				if err != nil {
					t.Fatal(err)
				}
				_ = old
				delete(live, rid)
				live[nrid] = append([]byte(nil), rec...)
				break
			}
		}
	}
	if f.Count() != len(live) {
		t.Fatalf("count %d, want %d", f.Count(), len(live))
	}
	for rid, want := range live {
		got, err := f.Get(rid)
		if err != nil {
			t.Fatalf("get %s: %v", rid, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("record %s corrupted", rid)
		}
	}
}

// corruptFirstPage fetches the file's first page and lets fn mangle it in
// place, simulating a structurally malformed page that slipped past lower
// layers.
func corruptFirstPage(t *testing.T, f *File, pool *buffer.Pool, fn func(data []byte)) {
	t.Helper()
	id := f.pages[0]
	data, err := pool.Fetch(id)
	if err != nil {
		t.Fatal(err)
	}
	fn(data)
	pool.MarkDirty(id)
	if err := pool.Unpin(id); err != nil {
		t.Fatal(err)
	}
}

func TestScanRejectsMalformedPage(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(data []byte)
	}{
		{"slot-directory-overruns-records", func(data []byte) {
			// Claim more slots than fit below freeStart.
			writeHeader(data, pageHeader{numSlots: 5000, freeStart: readHeader(data).freeStart})
		}},
		{"record-extent-past-page-end", func(data []byte) {
			offset, _ := readSlot(data, 0)
			writeSlot(data, 0, offset, 0xFFFF)
		}},
		{"record-inside-slot-directory", func(data []byte) {
			writeSlot(data, 0, 1, 2)
		}},
		{"slots-on-unformatted-page", func(data []byte) {
			writeHeader(data, pageHeader{numSlots: 3, freeStart: 0})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f, _, pool := newFile(t)
			rid, err := f.Insert([]byte("victim-record"))
			if err != nil {
				t.Fatal(err)
			}
			corruptFirstPage(t, f, pool, tc.corrupt)
			err = f.Scan(func(RID, []byte) bool { return true })
			if !errors.Is(err, ErrPageCorrupt) {
				t.Errorf("Scan: got %v, want ErrPageCorrupt", err)
			}
			// Point reads on the mangled slot must also refuse (the two
			// header-level cases leave slot 0 intact, which is fine: Get
			// may succeed there, so only check the slot-level cases).
			if tc.name == "record-extent-past-page-end" || tc.name == "record-inside-slot-directory" {
				if _, err := f.Get(rid); !errors.Is(err, ErrPageCorrupt) {
					t.Errorf("Get: got %v, want ErrPageCorrupt", err)
				}
				if err := f.Delete(rid); !errors.Is(err, ErrPageCorrupt) {
					t.Errorf("Delete: got %v, want ErrPageCorrupt", err)
				}
				if _, err := f.Update(rid, []byte("x")); !errors.Is(err, ErrPageCorrupt) {
					t.Errorf("Update: got %v, want ErrPageCorrupt", err)
				}
			}
		})
	}
}

func TestOpenRejectsMalformedPage(t *testing.T) {
	f, _, pool := newFile(t)
	if _, err := f.Insert([]byte("victim-record")); err != nil {
		t.Fatal(err)
	}
	corruptFirstPage(t, f, pool, func(data []byte) {
		offset, _ := readSlot(data, 0)
		writeSlot(data, 0, offset, 0xFFFF)
	})
	if _, err := Open(pool, f.Pages()); !errors.Is(err, ErrPageCorrupt) {
		t.Errorf("Open: got %v, want ErrPageCorrupt", err)
	}
}
