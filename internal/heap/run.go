package heap

// Run files are the sequential spill streams behind the executor's external
// operators (merge sort runs, hash-aggregation partitions). Unlike the
// slotted heap File, a run is append-only and read front to back, and its
// records may span page boundaries — so a spilled row is not limited by
// MaxRecordSize. Several runs can grow interleaved on one pager (the grouper
// writes all of its partitions at once): each page carries a next-page
// pointer, so a run is a private chain through the shared spill file.
//
// Page layout (little-endian):
//
//	[0:8)  next page ID (InvalidPageID on the last page of the run)
//	[8:..) payload bytes
//
// The payload is a byte stream of uvarint-length-prefixed records. A writer
// buffers exactly one page; a reader does the same, so the memory cost of an
// open run is one page regardless of its length.

import (
	"encoding/binary"
	"errors"
	"fmt"

	"bdbms/internal/pager"
)

const runHeaderSize = 8

// ErrRunExhausted is returned by RunReader.Next after the last record.
var ErrRunExhausted = errors.New("heap: run exhausted")

// Run identifies a finished spill run on its pager.
type Run struct {
	// Head is the first page of the run (InvalidPageID for an empty run).
	Head pager.PageID
	// Records is the number of records the run holds.
	Records uint64
}

// RunWriter appends records to a new run. It buffers one page; Finish flushes
// the tail page and returns the Run handle for reading.
type RunWriter struct {
	pgr     pager.Pager
	page    []byte
	id      pager.PageID
	off     int
	head    pager.PageID
	records uint64
	started bool
	done    bool
}

// NewRunWriter starts an empty run on pgr.
func NewRunWriter(pgr pager.Pager) *RunWriter {
	return &RunWriter{pgr: pgr, head: pager.InvalidPageID}
}

// Append adds one record to the run.
func (w *RunWriter) Append(rec []byte) error {
	if w.done {
		return errors.New("heap: append to finished run")
	}
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(rec)))
	if err := w.write(hdr[:n]); err != nil {
		return err
	}
	if err := w.write(rec); err != nil {
		return err
	}
	w.records++
	return nil
}

// write copies b into the run's byte stream, chaining new pages as needed.
func (w *RunWriter) write(b []byte) error {
	for len(b) > 0 {
		if !w.started {
			id, err := w.pgr.Allocate()
			if err != nil {
				return err
			}
			w.started = true
			w.head, w.id = id, id
			w.page = make([]byte, pager.PageSize)
			w.resetPage()
		}
		if w.off == pager.PageSize {
			next, err := w.pgr.Allocate()
			if err != nil {
				return err
			}
			binary.LittleEndian.PutUint64(w.page[0:8], uint64(next))
			if err := w.pgr.Write(w.id, w.page); err != nil {
				return err
			}
			w.id = next
			w.resetPage()
		}
		n := copy(w.page[w.off:], b)
		w.off += n
		b = b[n:]
	}
	return nil
}

func (w *RunWriter) resetPage() {
	for i := range w.page {
		w.page[i] = 0
	}
	binary.LittleEndian.PutUint64(w.page[0:8], uint64(pager.InvalidPageID))
	w.off = runHeaderSize
}

// Records returns the number of records appended so far.
func (w *RunWriter) Records() uint64 { return w.records }

// Finish flushes the tail page and seals the run.
func (w *RunWriter) Finish() (Run, error) {
	if w.done {
		return Run{}, errors.New("heap: run finished twice")
	}
	w.done = true
	if !w.started {
		return Run{Head: pager.InvalidPageID}, nil
	}
	if err := w.pgr.Write(w.id, w.page); err != nil {
		return Run{}, err
	}
	w.page = nil
	return Run{Head: w.head, Records: w.records}, nil
}

// RunReader streams a finished run's records front to back.
type RunReader struct {
	pgr       pager.Pager
	page      []byte
	next      pager.PageID
	off       int
	remaining uint64
	buf       []byte
}

// NewRunReader opens a run for reading.
func NewRunReader(pgr pager.Pager, r Run) *RunReader {
	return &RunReader{pgr: pgr, next: r.Head, off: pager.PageSize, remaining: r.Records}
}

// readByte returns the next payload byte, following the page chain.
func (r *RunReader) readByte() (byte, error) {
	if r.off == pager.PageSize {
		if r.next == pager.InvalidPageID {
			return 0, fmt.Errorf("heap: run truncated: %w", ErrRunExhausted)
		}
		page, err := r.pgr.Read(r.next)
		if err != nil {
			return 0, err
		}
		r.page = page
		r.next = pager.PageID(binary.LittleEndian.Uint64(page[0:8]))
		r.off = runHeaderSize
	}
	b := r.page[r.off]
	r.off++
	return b, nil
}

// Next returns the next record, or ok == false after the last one. The
// returned slice is owned by the caller (it is re-sliced from an internal
// buffer that is only overwritten by the following Next call).
func (r *RunReader) Next() ([]byte, bool, error) {
	if r.remaining == 0 {
		return nil, false, nil
	}
	r.remaining--
	var n uint64
	for shift := uint(0); ; shift += 7 {
		if shift >= 64 {
			return nil, false, errors.New("heap: run record length overflow")
		}
		b, err := r.readByte()
		if err != nil {
			return nil, false, err
		}
		n |= uint64(b&0x7f) << shift
		if b&0x80 == 0 {
			break
		}
	}
	if uint64(cap(r.buf)) < n {
		r.buf = make([]byte, n)
	}
	rec := r.buf[:n]
	filled := 0
	for filled < int(n) {
		if r.off == pager.PageSize {
			// Advance to the next page in the chain, then copy in bulk.
			b, err := r.readByte()
			if err != nil {
				return nil, false, err
			}
			rec[filled] = b
			filled++
			continue
		}
		c := copy(rec[filled:], r.page[r.off:])
		r.off += c
		filled += c
	}
	return rec, true, nil
}
