package heap

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"bdbms/internal/pager"
)

// drainRun reads every record of a run.
func drainRun(t *testing.T, pgr pager.Pager, r Run) [][]byte {
	t.Helper()
	rd := NewRunReader(pgr, r)
	var out [][]byte
	for {
		rec, ok, err := rd.Next()
		if err != nil {
			t.Fatalf("run read: %v", err)
		}
		if !ok {
			return out
		}
		out = append(out, append([]byte(nil), rec...))
	}
}

func TestRunRoundTrip(t *testing.T) {
	pgr := pager.NewMem()
	w := NewRunWriter(pgr)
	var want [][]byte
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		// Sizes from empty through several-pages-long, so records regularly
		// straddle page boundaries.
		n := r.Intn(3 * pager.PageSize / 2)
		if i%7 == 0 {
			n = 0
		}
		rec := make([]byte, n)
		for j := range rec {
			rec[j] = byte(r.Intn(256))
		}
		want = append(want, rec)
		if err := w.Append(rec); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	run, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if run.Records != 500 {
		t.Fatalf("records = %d", run.Records)
	}
	got := drainRun(t, pgr, run)
	if len(got) != len(want) {
		t.Fatalf("read %d records, wrote %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d differs: %d vs %d bytes", i, len(got[i]), len(want[i]))
		}
	}
}

func TestRunEmpty(t *testing.T) {
	pgr := pager.NewMem()
	w := NewRunWriter(pgr)
	run, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if run.Head != pager.InvalidPageID || run.Records != 0 {
		t.Fatalf("empty run = %+v", run)
	}
	if got := drainRun(t, pgr, run); len(got) != 0 {
		t.Fatalf("empty run yielded %d records", len(got))
	}
}

// TestRunsInterleaved grows several runs on one pager concurrently (the
// grouper's partition-spill pattern) and checks the page chains stay private.
func TestRunsInterleaved(t *testing.T) {
	pgr := pager.NewMem()
	const nRuns = 5
	writers := make([]*RunWriter, nRuns)
	want := make([][][]byte, nRuns)
	for i := range writers {
		writers[i] = NewRunWriter(pgr)
	}
	for i := 0; i < 400; i++ {
		w := i % nRuns
		rec := []byte(fmt.Sprintf("run-%d-record-%04d-%s", w, i, string(make([]byte, i%700))))
		want[w] = append(want[w], rec)
		if err := writers[w].Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	for i, w := range writers {
		run, err := w.Finish()
		if err != nil {
			t.Fatal(err)
		}
		got := drainRun(t, pgr, run)
		if len(got) != len(want[i]) {
			t.Fatalf("run %d: %d records, want %d", i, len(got), len(want[i]))
		}
		for j := range got {
			if !bytes.Equal(got[j], want[i][j]) {
				t.Fatalf("run %d record %d differs", i, j)
			}
		}
	}
}

func TestRunOnTempFilePager(t *testing.T) {
	pgr, err := pager.OpenTemp(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	w := NewRunWriter(pgr)
	for i := 0; i < 50; i++ {
		if err := w.Append([]byte(fmt.Sprintf("record %d", i))); err != nil {
			t.Fatal(err)
		}
	}
	run, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	got := drainRun(t, pgr, run)
	if len(got) != 50 || string(got[49]) != "record 49" {
		t.Fatalf("temp-file run = %d records", len(got))
	}
	if err := pgr.Close(); err != nil {
		t.Fatal(err)
	}
}
