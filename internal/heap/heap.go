// Package heap implements slotted-page heap files over the buffer pool. A
// heap file stores variable-length records addressed by RID (page, slot);
// tables in the storage engine keep their encoded rows here.
//
// Page layout (all integers little-endian):
//
//	[0:2)  numSlots   uint16
//	[2:4)  freeStart  uint16  -- offset where record space begins (grows down)
//	[4:..) slot directory, 4 bytes per slot: offset uint16, length uint16
//	...    free space
//	...    record data packed at the end of the page
//
// A slot with length 0 is a tombstone (deleted record).
package heap

import (
	"encoding/binary"
	"errors"
	"fmt"

	"bdbms/internal/buffer"
	"bdbms/internal/pager"
)

const (
	headerSize = 4
	slotSize   = 4
)

// MaxRecordSize is the largest record a heap file accepts: it must fit in a
// single page alongside the header and one slot.
const MaxRecordSize = pager.PageSize - headerSize - slotSize

// RID identifies a record within a heap file.
type RID struct {
	Page pager.PageID
	Slot uint16
}

// String renders the RID for diagnostics.
func (r RID) String() string { return fmt.Sprintf("(%d,%d)", r.Page, r.Slot) }

// Errors returned by heap files.
var (
	// ErrRecordTooLarge is returned when a record exceeds MaxRecordSize.
	ErrRecordTooLarge = errors.New("heap: record too large")
	// ErrNotFound is returned when a RID does not reference a live record.
	ErrNotFound = errors.New("heap: record not found")
	// ErrPageCorrupt is returned when a page's slotted structure is
	// malformed: a slot directory overrunning the record space, or a record
	// extent outside the page. The pager's checksums catch disk-level rot
	// before it gets here; this guards the logical layout, so garbage can
	// never be handed up as a record (or panic a scan).
	ErrPageCorrupt = errors.New("heap: page structure corrupt")
)

// File is a heap file: an ordered list of pages managed through a buffer pool.
type File struct {
	pool  *buffer.Pool
	pages []pager.PageID
	count int // live records
}

// New creates an empty heap file on the given pool.
func New(pool *buffer.Pool) *File {
	return &File{pool: pool}
}

// Open re-attaches a heap file to the pages it previously used (in page
// order). The record count is recomputed by scanning.
func Open(pool *buffer.Pool, pages []pager.PageID) (*File, error) {
	f := &File{pool: pool, pages: append([]pager.PageID(nil), pages...)}
	count := 0
	err := f.Scan(func(RID, []byte) bool {
		count++
		return true
	})
	if err != nil {
		return nil, err
	}
	f.count = count
	return f, nil
}

// Pages returns the page IDs backing this heap file, in order.
func (f *File) Pages() []pager.PageID {
	return append([]pager.PageID(nil), f.pages...)
}

// Count returns the number of live records.
func (f *File) Count() int { return f.count }

type pageHeader struct {
	numSlots  uint16
	freeStart uint16
}

func readHeader(p []byte) pageHeader {
	return pageHeader{
		numSlots:  binary.LittleEndian.Uint16(p[0:2]),
		freeStart: binary.LittleEndian.Uint16(p[2:4]),
	}
}

func writeHeader(p []byte, h pageHeader) {
	binary.LittleEndian.PutUint16(p[0:2], h.numSlots)
	binary.LittleEndian.PutUint16(p[2:4], h.freeStart)
}

func readSlot(p []byte, i uint16) (offset, length uint16) {
	base := headerSize + int(i)*slotSize
	return binary.LittleEndian.Uint16(p[base : base+2]), binary.LittleEndian.Uint16(p[base+2 : base+4])
}

func writeSlot(p []byte, i uint16, offset, length uint16) {
	base := headerSize + int(i)*slotSize
	binary.LittleEndian.PutUint16(p[base:base+2], offset)
	binary.LittleEndian.PutUint16(p[base+2:base+4], length)
}

// checkPage validates the slotted-page invariants: the slot directory and
// the record space must not overlap, and every live slot must reference an
// extent inside the page at or above freeStart.
func checkPage(id pager.PageID, data []byte) error {
	h := readHeader(data)
	if h.freeStart == 0 {
		if h.numSlots != 0 {
			return fmt.Errorf("%w: page %d: %d slots on an unformatted page", ErrPageCorrupt, id, h.numSlots)
		}
		return nil
	}
	if int(h.freeStart) > pager.PageSize || headerSize+int(h.numSlots)*slotSize > int(h.freeStart) {
		return fmt.Errorf("%w: page %d: %d slots with record space starting at %d", ErrPageCorrupt, id, h.numSlots, h.freeStart)
	}
	for s := uint16(0); s < h.numSlots; s++ {
		offset, length := readSlot(data, s)
		if length == 0 {
			continue
		}
		if int(offset) < int(h.freeStart) || int(offset)+int(length) > pager.PageSize {
			return fmt.Errorf("%w: page %d slot %d: record [%d:%d) outside the record space", ErrPageCorrupt, id, s, offset, int(offset)+int(length))
		}
	}
	return nil
}

// checkSlot bounds-checks one slot's extent (the cheap per-access guard;
// Scan and Open run the full checkPage).
func checkSlot(id pager.PageID, s uint16, offset, length uint16) error {
	if int(offset)+int(length) > pager.PageSize || int(offset) < headerSize {
		return fmt.Errorf("%w: page %d slot %d: record [%d:%d) outside the page", ErrPageCorrupt, id, s, offset, int(offset)+int(length))
	}
	return nil
}

// freeSpace returns the free bytes between the slot directory and record data.
func freeSpace(h pageHeader) int {
	if h.freeStart == 0 {
		// Fresh page: record space starts at the end.
		return pager.PageSize - headerSize
	}
	return int(h.freeStart) - headerSize - int(h.numSlots)*slotSize
}

// Insert appends a record and returns its RID.
func (f *File) Insert(record []byte) (RID, error) {
	if len(record) > MaxRecordSize {
		return RID{}, fmt.Errorf("%w: %d bytes", ErrRecordTooLarge, len(record))
	}
	need := len(record) + slotSize
	// Try the last page first (append-mostly workloads), then earlier pages.
	order := make([]int, 0, len(f.pages))
	for i := len(f.pages) - 1; i >= 0; i-- {
		order = append(order, i)
	}
	for _, idx := range order {
		rid, ok, err := f.tryInsert(f.pages[idx], record, need)
		if err != nil {
			return RID{}, err
		}
		if ok {
			f.count++
			return rid, nil
		}
		// Only probe a couple of pages before extending the file, to keep
		// inserts O(1) amortised.
		if len(order) > 2 && idx == order[1] {
			break
		}
	}
	id, data, err := f.pool.Allocate()
	if err != nil {
		return RID{}, err
	}
	writeHeader(data, pageHeader{numSlots: 0, freeStart: pager.PageSize})
	f.pool.MarkDirty(id)
	if err := f.pool.Unpin(id); err != nil {
		return RID{}, err
	}
	f.pages = append(f.pages, id)
	rid, ok, err := f.tryInsert(id, record, need)
	if err != nil {
		return RID{}, err
	}
	if !ok {
		return RID{}, errors.New("heap: fresh page cannot hold record")
	}
	f.count++
	return rid, nil
}

func (f *File) tryInsert(id pager.PageID, record []byte, need int) (RID, bool, error) {
	data, err := f.pool.Fetch(id)
	if err != nil {
		return RID{}, false, err
	}
	defer f.pool.Unpin(id)
	h := readHeader(data)
	if h.freeStart == 0 {
		h.freeStart = pager.PageSize
	}
	if freeSpace(h) < need {
		return RID{}, false, nil
	}
	offset := h.freeStart - uint16(len(record))
	copy(data[offset:], record)
	slot := h.numSlots
	writeSlot(data, slot, offset, uint16(len(record)))
	h.numSlots++
	h.freeStart = offset
	writeHeader(data, h)
	f.pool.MarkDirty(id)
	return RID{Page: id, Slot: slot}, true, nil
}

// Get returns the record at rid.
func (f *File) Get(rid RID) ([]byte, error) {
	data, err := f.pool.Fetch(rid.Page)
	if err != nil {
		return nil, err
	}
	defer f.pool.Unpin(rid.Page)
	h := readHeader(data)
	if rid.Slot >= h.numSlots {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, rid)
	}
	offset, length := readSlot(data, rid.Slot)
	if length == 0 {
		return nil, fmt.Errorf("%w: %s (deleted)", ErrNotFound, rid)
	}
	if err := checkSlot(rid.Page, rid.Slot, offset, length); err != nil {
		return nil, err
	}
	out := make([]byte, length)
	copy(out, data[offset:int(offset)+int(length)])
	return out, nil
}

// Delete tombstones the record at rid.
func (f *File) Delete(rid RID) error {
	data, err := f.pool.Fetch(rid.Page)
	if err != nil {
		return err
	}
	defer f.pool.Unpin(rid.Page)
	h := readHeader(data)
	if rid.Slot >= h.numSlots {
		return fmt.Errorf("%w: %s", ErrNotFound, rid)
	}
	offset, length := readSlot(data, rid.Slot)
	if length == 0 {
		return fmt.Errorf("%w: %s (already deleted)", ErrNotFound, rid)
	}
	if err := checkSlot(rid.Page, rid.Slot, offset, length); err != nil {
		return err
	}
	writeSlot(data, rid.Slot, offset, 0)
	f.pool.MarkDirty(rid.Page)
	f.count--
	return nil
}

// Update replaces the record at rid. When the new record still fits in the
// original slot it is updated in place and the same RID is returned;
// otherwise the old record is deleted and the new one inserted elsewhere,
// returning the new RID.
func (f *File) Update(rid RID, record []byte) (RID, error) {
	if len(record) > MaxRecordSize {
		return RID{}, fmt.Errorf("%w: %d bytes", ErrRecordTooLarge, len(record))
	}
	data, err := f.pool.Fetch(rid.Page)
	if err != nil {
		return RID{}, err
	}
	h := readHeader(data)
	if rid.Slot >= h.numSlots {
		f.pool.Unpin(rid.Page)
		return RID{}, fmt.Errorf("%w: %s", ErrNotFound, rid)
	}
	offset, length := readSlot(data, rid.Slot)
	if length == 0 {
		f.pool.Unpin(rid.Page)
		return RID{}, fmt.Errorf("%w: %s (deleted)", ErrNotFound, rid)
	}
	if err := checkSlot(rid.Page, rid.Slot, offset, length); err != nil {
		f.pool.Unpin(rid.Page)
		return RID{}, err
	}
	if len(record) <= int(length) {
		copy(data[offset:], record)
		writeSlot(data, rid.Slot, offset, uint16(len(record)))
		f.pool.MarkDirty(rid.Page)
		f.pool.Unpin(rid.Page)
		return rid, nil
	}
	f.pool.Unpin(rid.Page)
	if err := f.Delete(rid); err != nil {
		return RID{}, err
	}
	return f.Insert(record)
}

// Scan calls fn for every live record in file order. Iteration stops early
// when fn returns false.
func (f *File) Scan(fn func(rid RID, record []byte) bool) error {
	for _, id := range f.pages {
		data, err := f.pool.Fetch(id)
		if err != nil {
			return err
		}
		if err := checkPage(id, data); err != nil {
			f.pool.Unpin(id)
			return err
		}
		h := readHeader(data)
		stop := false
		for s := uint16(0); s < h.numSlots; s++ {
			offset, length := readSlot(data, s)
			if length == 0 {
				continue
			}
			rec := make([]byte, length)
			copy(rec, data[offset:int(offset)+int(length)])
			if !fn(RID{Page: id, Slot: s}, rec) {
				stop = true
				break
			}
		}
		if err := f.pool.Unpin(id); err != nil {
			return err
		}
		if stop {
			return nil
		}
	}
	return nil
}
