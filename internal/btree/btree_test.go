package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func key(i int) []byte { return []byte(fmt.Sprintf("key-%06d", i)) }
func val(i int) []byte { return []byte(fmt.Sprintf("val-%d", i)) }

func TestInsertGet(t *testing.T) {
	tr := New(8)
	const n = 1000
	for i := 0; i < n; i++ {
		tr.Insert(key(i), val(i))
	}
	if tr.Len() != n || tr.NumKeys() != n {
		t.Fatalf("Len=%d NumKeys=%d, want %d", tr.Len(), tr.NumKeys(), n)
	}
	for i := 0; i < n; i++ {
		vs := tr.Get(key(i))
		if len(vs) != 1 || !bytes.Equal(vs[0], val(i)) {
			t.Fatalf("Get(%s) = %q", key(i), vs)
		}
	}
	if tr.Get([]byte("absent")) != nil {
		t.Error("absent key should return nil")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateKeys(t *testing.T) {
	tr := New(8)
	k := []byte("gene-JW0080")
	tr.Insert(k, []byte("a"))
	tr.Insert(k, []byte("b"))
	tr.Insert(k, []byte("c"))
	vs := tr.Get(k)
	if len(vs) != 3 {
		t.Fatalf("got %d values, want 3", len(vs))
	}
	if tr.NumKeys() != 1 || tr.Len() != 3 {
		t.Errorf("NumKeys=%d Len=%d", tr.NumKeys(), tr.Len())
	}
}

func TestDelete(t *testing.T) {
	tr := New(8)
	for i := 0; i < 100; i++ {
		tr.Insert(key(i), val(i))
	}
	if err := tr.Delete(key(50), val(50)); err != nil {
		t.Fatal(err)
	}
	if tr.Get(key(50)) != nil {
		t.Error("deleted key still present")
	}
	if err := tr.Delete(key(50), val(50)); err != ErrNotFound {
		t.Errorf("double delete: %v", err)
	}
	if tr.Len() != 99 {
		t.Errorf("Len = %d", tr.Len())
	}

	// Delete one of several values.
	k := []byte("multi")
	tr.Insert(k, []byte("x"))
	tr.Insert(k, []byte("y"))
	if err := tr.Delete(k, []byte("x")); err != nil {
		t.Fatal(err)
	}
	vs := tr.Get(k)
	if len(vs) != 1 || !bytes.Equal(vs[0], []byte("y")) {
		t.Errorf("remaining values = %q", vs)
	}
	// Delete all values under a key with nil value.
	if err := tr.Delete(k, nil); err != nil {
		t.Fatal(err)
	}
	if tr.Get(k) != nil {
		t.Error("key should be gone after nil-value delete")
	}
	if err := tr.Delete([]byte("nope"), nil); err != ErrNotFound {
		t.Errorf("delete absent: %v", err)
	}
}

func TestAscendRange(t *testing.T) {
	tr := New(6)
	for i := 0; i < 200; i++ {
		tr.Insert(key(i), val(i))
	}
	var got []string
	tr.AscendRange(key(10), key(20), func(k []byte, _ [][]byte) bool {
		got = append(got, string(k))
		return true
	})
	if len(got) != 10 {
		t.Fatalf("range [10,20) returned %d keys", len(got))
	}
	if got[0] != string(key(10)) || got[9] != string(key(19)) {
		t.Errorf("range bounds wrong: %v", got)
	}
	if !sort.StringsAreSorted(got) {
		t.Error("range not sorted")
	}

	// Early termination.
	count := 0
	tr.AscendRange(nil, nil, func(k []byte, _ [][]byte) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Errorf("early termination visited %d", count)
	}
}

func TestAscendPrefix(t *testing.T) {
	tr := New(8)
	words := []string{"HHH", "HHL", "HLE", "LEE", "LLL", "HH", "H"}
	for _, w := range words {
		tr.Insert([]byte(w), []byte("v"))
	}
	var got []string
	tr.AscendPrefix([]byte("HH"), func(k []byte, _ [][]byte) bool {
		got = append(got, string(k))
		return true
	})
	want := []string{"HH", "HHH", "HHL"}
	if len(got) != len(want) {
		t.Fatalf("prefix scan = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("prefix scan[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestEntriesSortedAndComplete(t *testing.T) {
	tr := New(5)
	perm := rand.New(rand.NewSource(1)).Perm(500)
	for _, i := range perm {
		tr.Insert(key(i), val(i))
	}
	entries := tr.Entries()
	if len(entries) != 500 {
		t.Fatalf("entries = %d", len(entries))
	}
	for i := 1; i < len(entries); i++ {
		if bytes.Compare(entries[i-1].Key, entries[i].Key) >= 0 {
			t.Fatal("entries not sorted")
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRankOf(t *testing.T) {
	tr := New(8)
	for i := 0; i < 50; i++ {
		tr.Insert(key(i), val(i))
	}
	if r := tr.RankOf(key(0)); r != 0 {
		t.Errorf("RankOf(first) = %d", r)
	}
	if r := tr.RankOf(key(25)); r != 25 {
		t.Errorf("RankOf(25) = %d", r)
	}
	if r := tr.RankOf([]byte("zzz")); r != 50 {
		t.Errorf("RankOf(max) = %d", r)
	}
}

func TestHeightGrowsLogarithmically(t *testing.T) {
	tr := New(8)
	for i := 0; i < 5000; i++ {
		tr.Insert(key(i), nil)
	}
	h := tr.Height()
	if h < 3 || h > 7 {
		t.Errorf("height = %d for 5000 keys at order 8", h)
	}
}

func TestStatsAndPages(t *testing.T) {
	tr := New(8)
	for i := 0; i < 100; i++ {
		tr.Insert(key(i), val(i))
	}
	st := tr.Stats()
	if st.NodeReads == 0 || st.NodeWrites == 0 || st.Splits == 0 {
		t.Errorf("stats not tracked: %+v", st)
	}
	tr.ResetStats()
	if tr.Stats() != (IOStats{}) {
		t.Error("ResetStats failed")
	}
	if tr.EstimatePages(4096) < 1 {
		t.Error("EstimatePages must be >= 1")
	}
	if tr.KeyBytes() == 0 {
		t.Error("KeyBytes not tracked")
	}
	empty := New(4)
	if empty.EstimatePages(0) != 1 {
		t.Error("empty tree occupies one page")
	}
}

func TestMinimumOrder(t *testing.T) {
	tr := New(1)
	for i := 0; i < 100; i++ {
		tr.Insert(key(i), nil)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

// Property: tree contents match a reference map under random inserts/deletes.
func TestQuickAgainstReferenceMap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := New(8)
	ref := map[string]int{}
	for op := 0; op < 5000; op++ {
		k := fmt.Sprintf("k%03d", rng.Intn(300))
		if rng.Intn(3) != 0 {
			tr.Insert([]byte(k), []byte("v"))
			ref[k]++
		} else if ref[k] > 0 {
			if err := tr.Delete([]byte(k), []byte("v")); err != nil {
				t.Fatalf("delete %s: %v", k, err)
			}
			ref[k]--
			if ref[k] == 0 {
				delete(ref, k)
			}
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for k, n := range ref {
		vs := tr.Get([]byte(k))
		if len(vs) != n {
			t.Fatalf("key %s: tree has %d values, reference %d", k, len(vs), n)
		}
		total += n
	}
	if tr.Len() != total {
		t.Fatalf("Len = %d, reference %d", tr.Len(), total)
	}
}

// Property: ascending iteration yields sorted keys for arbitrary key sets.
func TestQuickSortedIteration(t *testing.T) {
	f := func(keys []string) bool {
		tr := New(6)
		for _, k := range keys {
			tr.Insert([]byte(k), nil)
		}
		prev := []byte(nil)
		ok := true
		tr.Ascend(func(k []byte, _ [][]byte) bool {
			if prev != nil && bytes.Compare(prev, k) >= 0 {
				ok = false
				return false
			}
			prev = append(prev[:0], k...)
			return true
		})
		return ok && tr.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
