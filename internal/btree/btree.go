// Package btree implements an order-configurable B+-tree over byte-string
// keys. It is the workhorse index of bdbms: secondary indexes on table
// columns, the suffix layer of the String B-tree baseline and of the SBC-tree
// are all instances of this tree.
//
// Keys are compared bytewise (callers use value.EncodeKey or their own
// order-preserving encodings). Duplicate keys are allowed; each key maps to a
// list of values. Node accesses are counted so experiments can report
// simulated I/Os: descending one level costs one read, writing or splitting a
// node costs one write.
package btree

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
)

// DefaultOrder is the default maximum number of keys per node. With 4 KB
// pages and ~64-byte keys this is a realistic fan-out.
const DefaultOrder = 64

// ErrNotFound is returned by Delete when the (key, value) pair is absent.
var ErrNotFound = errors.New("btree: key not found")

// IOStats counts simulated node I/Os.
type IOStats struct {
	// NodeReads counts node visits during descents and scans.
	NodeReads uint64
	// NodeWrites counts node modifications (inserts, deletes, splits).
	NodeWrites uint64
	// Splits counts node splits.
	Splits uint64
}

// Entry is a key with its values, as returned by scans.
type Entry struct {
	Key    []byte
	Values [][]byte
}

type node struct {
	leaf     bool
	keys     [][]byte
	vals     [][][]byte // leaf only: vals[i] are the values for keys[i]
	children []*node    // internal only: len(children) == len(keys)+1
	next     *node      // leaf only: right sibling for range scans
}

// Tree is a B+-tree. It is not safe for concurrent mutation; the storage
// engine serialises writers per table.
type Tree struct {
	root  *node
	order int
	size  int // number of (key,value) pairs
	keys  int // number of distinct keys
	bytes int // total bytes of keys and values stored (for storage accounting)
	// stats counters are atomic: read-only tree operations (Get, scans) are
	// issued concurrently by parallel SELECT sessions and still count their
	// simulated I/Os.
	stats ioCounters
}

// ioCounters is the internal atomic representation of IOStats.
type ioCounters struct {
	nodeReads  atomic.Uint64
	nodeWrites atomic.Uint64
	splits     atomic.Uint64
}

// New creates an empty tree with the given order (maximum keys per node).
// Orders below 4 are raised to 4.
func New(order int) *Tree {
	if order < 4 {
		order = 4
	}
	return &Tree{root: &node{leaf: true}, order: order}
}

// Len returns the number of (key, value) pairs stored.
func (t *Tree) Len() int { return t.size }

// NumKeys returns the number of distinct keys stored.
func (t *Tree) NumKeys() int { return t.keys }

// KeyBytes returns the total number of key and value bytes stored, the
// storage-footprint measure used by experiment E1.
func (t *Tree) KeyBytes() int { return t.bytes }

// Stats returns a snapshot of the simulated I/O counters.
func (t *Tree) Stats() IOStats {
	return IOStats{
		NodeReads:  t.stats.nodeReads.Load(),
		NodeWrites: t.stats.nodeWrites.Load(),
		Splits:     t.stats.splits.Load(),
	}
}

// ResetStats zeroes the simulated I/O counters.
func (t *Tree) ResetStats() {
	t.stats.nodeReads.Store(0)
	t.stats.nodeWrites.Store(0)
	t.stats.splits.Store(0)
}

// Height returns the height of the tree (1 for a single leaf).
func (t *Tree) Height() int {
	h := 1
	n := t.root
	for !n.leaf {
		n = n.children[0]
		h++
	}
	return h
}

// EstimatePages estimates how many fixed-size pages the tree would occupy on
// disk given its stored bytes plus per-entry overhead.
func (t *Tree) EstimatePages(pageSize int) int {
	if pageSize <= 0 {
		pageSize = 4096
	}
	overhead := t.size * 8 // slot + pointer overhead per entry
	total := t.bytes + overhead
	pages := total / pageSize
	if total%pageSize != 0 {
		pages++
	}
	if pages == 0 {
		pages = 1
	}
	return pages
}

// Insert adds value under key. Duplicate (key, value) pairs are stored once
// per call (the tree does not deduplicate values).
func (t *Tree) Insert(key, value []byte) {
	k := append([]byte(nil), key...)
	v := append([]byte(nil), value...)
	median, right := t.insert(t.root, k, v)
	if right != nil {
		newRoot := &node{
			leaf:     false,
			keys:     [][]byte{median},
			children: []*node{t.root, right},
		}
		t.root = newRoot
		t.stats.nodeWrites.Add(1)
	}
}

func (t *Tree) insert(n *node, key, value []byte) (median []byte, right *node) {
	t.stats.nodeReads.Add(1)
	if n.leaf {
		idx := sort.Search(len(n.keys), func(i int) bool { return bytes.Compare(n.keys[i], key) >= 0 })
		if idx < len(n.keys) && bytes.Equal(n.keys[idx], key) {
			n.vals[idx] = append(n.vals[idx], value)
		} else {
			n.keys = append(n.keys, nil)
			copy(n.keys[idx+1:], n.keys[idx:])
			n.keys[idx] = key
			n.vals = append(n.vals, nil)
			copy(n.vals[idx+1:], n.vals[idx:])
			n.vals[idx] = [][]byte{value}
			t.keys++
		}
		t.size++
		t.bytes += len(key) + len(value)
		t.stats.nodeWrites.Add(1)
		if len(n.keys) > t.order {
			return t.splitLeaf(n)
		}
		return nil, nil
	}
	idx := sort.Search(len(n.keys), func(i int) bool { return bytes.Compare(n.keys[i], key) > 0 })
	median, right = t.insert(n.children[idx], key, value)
	if right == nil {
		return nil, nil
	}
	n.keys = append(n.keys, nil)
	copy(n.keys[idx+1:], n.keys[idx:])
	n.keys[idx] = median
	n.children = append(n.children, nil)
	copy(n.children[idx+2:], n.children[idx+1:])
	n.children[idx+1] = right
	t.stats.nodeWrites.Add(1)
	if len(n.keys) > t.order {
		return t.splitInternal(n)
	}
	return nil, nil
}

func (t *Tree) splitLeaf(n *node) ([]byte, *node) {
	mid := len(n.keys) / 2
	right := &node{
		leaf: true,
		keys: append([][]byte(nil), n.keys[mid:]...),
		vals: append([][][]byte(nil), n.vals[mid:]...),
		next: n.next,
	}
	n.keys = n.keys[:mid]
	n.vals = n.vals[:mid]
	n.next = right
	t.stats.splits.Add(1)
	t.stats.nodeWrites.Add(2)
	return right.keys[0], right
}

func (t *Tree) splitInternal(n *node) ([]byte, *node) {
	mid := len(n.keys) / 2
	median := n.keys[mid]
	right := &node{
		leaf:     false,
		keys:     append([][]byte(nil), n.keys[mid+1:]...),
		children: append([]*node(nil), n.children[mid+1:]...),
	}
	n.keys = n.keys[:mid]
	n.children = n.children[:mid+1]
	t.stats.splits.Add(1)
	t.stats.nodeWrites.Add(2)
	return median, right
}

// Get returns all values stored under key, or nil when absent.
func (t *Tree) Get(key []byte) [][]byte {
	n := t.root
	for {
		t.stats.nodeReads.Add(1)
		if n.leaf {
			idx := sort.Search(len(n.keys), func(i int) bool { return bytes.Compare(n.keys[i], key) >= 0 })
			if idx < len(n.keys) && bytes.Equal(n.keys[idx], key) {
				out := make([][]byte, len(n.vals[idx]))
				copy(out, n.vals[idx])
				return out
			}
			return nil
		}
		idx := sort.Search(len(n.keys), func(i int) bool { return bytes.Compare(n.keys[i], key) > 0 })
		n = n.children[idx]
	}
}

// Contains reports whether key is present.
func (t *Tree) Contains(key []byte) bool { return t.Get(key) != nil }

// Delete removes one occurrence of (key, value) from the tree. When value is
// nil all values under key are removed. Underflowed nodes are not rebalanced
// (deletes are rare in the bdbms workloads; space is reclaimed on rebuild),
// but the reported size and byte counts stay exact.
func (t *Tree) Delete(key, value []byte) error {
	n := t.root
	for {
		t.stats.nodeReads.Add(1)
		if n.leaf {
			idx := sort.Search(len(n.keys), func(i int) bool { return bytes.Compare(n.keys[i], key) >= 0 })
			if idx >= len(n.keys) || !bytes.Equal(n.keys[idx], key) {
				return ErrNotFound
			}
			if value == nil {
				for _, v := range n.vals[idx] {
					t.bytes -= len(key) + len(v)
				}
				t.size -= len(n.vals[idx])
				n.keys = append(n.keys[:idx], n.keys[idx+1:]...)
				n.vals = append(n.vals[:idx], n.vals[idx+1:]...)
				t.keys--
				t.stats.nodeWrites.Add(1)
				return nil
			}
			for i, v := range n.vals[idx] {
				if bytes.Equal(v, value) {
					n.vals[idx] = append(n.vals[idx][:i], n.vals[idx][i+1:]...)
					t.size--
					t.bytes -= len(key) + len(v)
					if len(n.vals[idx]) == 0 {
						n.keys = append(n.keys[:idx], n.keys[idx+1:]...)
						n.vals = append(n.vals[:idx], n.vals[idx+1:]...)
						t.keys--
					}
					t.stats.nodeWrites.Add(1)
					return nil
				}
			}
			return ErrNotFound
		}
		idx := sort.Search(len(n.keys), func(i int) bool { return bytes.Compare(n.keys[i], key) > 0 })
		n = n.children[idx]
	}
}

// findLeaf descends to the leaf that would contain key, returning the leaf and
// the index of the first key >= key within it (possibly == len(keys)).
func (t *Tree) findLeaf(key []byte) (*node, int) {
	n := t.root
	for !n.leaf {
		t.stats.nodeReads.Add(1)
		idx := sort.Search(len(n.keys), func(i int) bool { return bytes.Compare(n.keys[i], key) > 0 })
		n = n.children[idx]
	}
	t.stats.nodeReads.Add(1)
	idx := sort.Search(len(n.keys), func(i int) bool { return bytes.Compare(n.keys[i], key) >= 0 })
	return n, idx
}

// AscendRange calls fn for every entry with start <= key < end, in key order.
// A nil end means "to the last key". Iteration stops early when fn returns
// false.
func (t *Tree) AscendRange(start, end []byte, fn func(key []byte, values [][]byte) bool) {
	n, idx := t.findLeaf(start)
	for n != nil {
		for ; idx < len(n.keys); idx++ {
			if end != nil && bytes.Compare(n.keys[idx], end) >= 0 {
				return
			}
			if !fn(n.keys[idx], n.vals[idx]) {
				return
			}
		}
		n = n.next
		if n != nil {
			t.stats.nodeReads.Add(1)
		}
		idx = 0
	}
}

// AscendPrefix calls fn for every entry whose key has the given prefix.
func (t *Tree) AscendPrefix(prefix []byte, fn func(key []byte, values [][]byte) bool) {
	t.AscendRange(prefix, nil, func(key []byte, values [][]byte) bool {
		if !bytes.HasPrefix(key, prefix) {
			return false
		}
		return fn(key, values)
	})
}

// Ascend calls fn for every entry in key order.
func (t *Tree) Ascend(fn func(key []byte, values [][]byte) bool) {
	t.AscendRange(nil, nil, fn)
}

// Entries returns all entries in key order; intended for tests and small trees.
func (t *Tree) Entries() []Entry {
	var out []Entry
	t.Ascend(func(key []byte, values [][]byte) bool {
		vs := make([][]byte, len(values))
		copy(vs, values)
		out = append(out, Entry{Key: append([]byte(nil), key...), Values: vs})
		return true
	})
	return out
}

// RankOf returns the number of distinct keys strictly less than key. Combined
// with AscendRange this gives the positional ("3-sided") queries the SBC-tree
// needs.
func (t *Tree) RankOf(key []byte) int {
	rank := 0
	t.Ascend(func(k []byte, _ [][]byte) bool {
		if bytes.Compare(k, key) < 0 {
			rank++
			return true
		}
		return false
	})
	return rank
}

// Validate checks the structural invariants of the tree (key ordering inside
// nodes, separator correctness, leaf chaining) and returns an error describing
// the first violation. It is used by property-based tests.
func (t *Tree) Validate() error {
	var prevLeafKey []byte
	var walk func(n *node, lo, hi []byte) error
	walk = func(n *node, lo, hi []byte) error {
		for i := 1; i < len(n.keys); i++ {
			if bytes.Compare(n.keys[i-1], n.keys[i]) >= 0 {
				return fmt.Errorf("btree: keys out of order in node: %q >= %q", n.keys[i-1], n.keys[i])
			}
		}
		for _, k := range n.keys {
			if lo != nil && bytes.Compare(k, lo) < 0 {
				return fmt.Errorf("btree: key %q below lower bound %q", k, lo)
			}
			if hi != nil && bytes.Compare(k, hi) >= 0 && !n.leaf {
				return fmt.Errorf("btree: separator %q above upper bound %q", k, hi)
			}
		}
		if n.leaf {
			for _, k := range n.keys {
				if prevLeafKey != nil && bytes.Compare(prevLeafKey, k) >= 0 {
					return fmt.Errorf("btree: leaf chain out of order: %q >= %q", prevLeafKey, k)
				}
				prevLeafKey = k
			}
			return nil
		}
		if len(n.children) != len(n.keys)+1 {
			return fmt.Errorf("btree: internal node with %d keys has %d children", len(n.keys), len(n.children))
		}
		for i, c := range n.children {
			var childLo, childHi []byte
			if i > 0 {
				childLo = n.keys[i-1]
			} else {
				childLo = lo
			}
			if i < len(n.keys) {
				childHi = n.keys[i]
			} else {
				childHi = hi
			}
			if err := walk(c, childLo, childHi); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(t.root, nil, nil)
}
