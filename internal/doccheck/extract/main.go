// Command extract writes every fenced Go snippet of the given markdown
// files into its own package directory (out/snippetNNN/main.go), so the CI
// docs job can run gofmt and go vet over the documented code inside the
// module. The output directory is recreated from scratch on every run.
//
// Usage: go run ./internal/doccheck/extract -out docs-snippets-tmp README.md docs/*.md
//
// The output directory must not start with "." or "_" — the Go tool ignores
// such directories, and the whole point is vetting the snippets as packages.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"bdbms/internal/doccheck"
)

func main() {
	out := flag.String("out", "docs-snippets-tmp", "output directory (recreated)")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "extract: no markdown files given")
		os.Exit(2)
	}
	if err := os.RemoveAll(*out); err != nil {
		fmt.Fprintln(os.Stderr, "extract:", err)
		os.Exit(1)
	}
	n := 0
	for _, file := range flag.Args() {
		snippets, err := doccheck.Snippets(file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "extract:", err)
			os.Exit(1)
		}
		for _, s := range snippets {
			if s.Lang != "go" {
				continue
			}
			dir := filepath.Join(*out, fmt.Sprintf("snippet%03d", n))
			if err := os.MkdirAll(dir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "extract:", err)
				os.Exit(1)
			}
			path := filepath.Join(dir, "main.go")
			if err := os.WriteFile(path, []byte(s.Body), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "extract:", err)
				os.Exit(1)
			}
			fmt.Printf("%s <- %s:%d\n", path, s.File, s.Line)
			n++
		}
	}
	if n == 0 {
		fmt.Fprintln(os.Stderr, "extract: no Go snippets found")
		os.Exit(1)
	}
}
