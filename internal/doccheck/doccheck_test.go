package doccheck

import (
	"os"
	"path/filepath"
	"testing"
)

// repoRoot locates the repository root from this package's directory.
const repoRoot = "../.."

// docFiles returns README.md plus every markdown file under docs/.
func docFiles(t *testing.T) []string {
	t.Helper()
	files := []string{filepath.Join(repoRoot, "README.md")}
	matches, err := filepath.Glob(filepath.Join(repoRoot, "docs", "*.md"))
	if err != nil {
		t.Fatal(err)
	}
	return append(files, matches...)
}

// TestDocsLinks fails on any relative markdown link pointing at a missing
// file.
func TestDocsLinks(t *testing.T) {
	for _, file := range docFiles(t) {
		links, err := RelativeLinks(file)
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		for _, l := range links {
			target := filepath.Join(filepath.Dir(file), l.Target)
			if _, err := os.Stat(target); err != nil {
				t.Errorf("%s:%d: broken link %q (%v)", l.File, l.Line, l.Target, err)
			}
		}
	}
}

// TestDocsGoSnippets requires every fenced Go block in the docs to parse as
// a complete source file and be gofmt-clean. (CI additionally extracts the
// snippets and runs go vet on them inside the module.)
func TestDocsGoSnippets(t *testing.T) {
	total := 0
	for _, file := range docFiles(t) {
		snippets, err := Snippets(file)
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		for _, s := range snippets {
			if s.Lang != "go" {
				continue
			}
			total++
			if err := CheckGoSnippet(s.Body); err != nil {
				t.Errorf("%s:%d: %v", s.File, s.Line, err)
			}
		}
	}
	if total == 0 {
		t.Error("no Go snippets found in the docs; extraction is broken")
	}
}

// TestDocsSQLBlocksPresent guards the executable-SQL contract: docs/SQL.md
// must contain both runnable and must-fail SQL blocks for docs_sql_test.go
// (repository root) to execute.
func TestDocsSQLBlocksPresent(t *testing.T) {
	snippets, err := Snippets(filepath.Join(repoRoot, "docs", "SQL.md"))
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, s := range snippets {
		counts[s.Lang]++
	}
	if counts["sql"] < 5 {
		t.Errorf("docs/SQL.md has %d sql blocks, want a full reference", counts["sql"])
	}
	if counts["sql-error"] == 0 {
		t.Error("docs/SQL.md has no sql-error blocks; the rejection examples are gone")
	}
}
