// Package doccheck keeps the documentation honest: it extracts fenced code
// blocks and relative links from the repository's markdown files so tests
// can execute the documented SQL, compile-check the documented Go, and fail
// the build on a dead link. The docs job in CI additionally extracts the Go
// snippets to disk (see the extract subcommand) and runs gofmt and go vet
// over them.
package doccheck

import (
	"bufio"
	"fmt"
	"go/format"
	"go/parser"
	"go/token"
	"os"
	"regexp"
	"strings"
)

// Snippet is one fenced code block of a markdown file.
type Snippet struct {
	// File is the markdown file the snippet came from.
	File string
	// Line is the 1-based line of the opening fence.
	Line int
	// Lang is the fence info string (e.g. "go", "sql", "sql-error").
	Lang string
	// Body is the block content without the fences.
	Body string
}

// Snippets returns every fenced code block of the markdown file, in order.
func Snippets(path string) ([]Snippet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []Snippet
	var cur *Snippet
	var body strings.Builder
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if strings.HasPrefix(text, "```") {
			if cur == nil {
				cur = &Snippet{File: path, Line: line, Lang: strings.TrimSpace(strings.TrimPrefix(text, "```"))}
				body.Reset()
			} else {
				cur.Body = body.String()
				out = append(out, *cur)
				cur = nil
			}
			continue
		}
		if cur != nil {
			body.WriteString(text)
			body.WriteByte('\n')
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if cur != nil {
		return nil, fmt.Errorf("%s:%d: unclosed code fence", path, cur.Line)
	}
	return out, nil
}

// Link is one markdown link target.
type Link struct {
	File   string
	Line   int
	Target string
}

var linkRe = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// RelativeLinks returns the file-relative link targets of a markdown file
// (external URLs and pure in-page anchors are skipped, and a target's own
// anchor suffix is stripped).
func RelativeLinks(path string) ([]Link, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []Link
	inFence := false
	for i, text := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(text, "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range linkRe.FindAllStringSubmatch(text, -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			if idx := strings.IndexByte(target, '#'); idx >= 0 {
				target = target[:idx]
			}
			if target == "" {
				continue
			}
			out = append(out, Link{File: path, Line: i + 1, Target: target})
		}
	}
	return out, nil
}

// CheckGoSnippet parses src as a complete Go source file and verifies it is
// gofmt-clean; the returned error carries the parse or formatting problem.
func CheckGoSnippet(src string) error {
	fset := token.NewFileSet()
	if _, err := parser.ParseFile(fset, "snippet.go", src, parser.ParseComments); err != nil {
		return err
	}
	formatted, err := format.Source([]byte(src))
	if err != nil {
		return err
	}
	if string(formatted) != src {
		return fmt.Errorf("snippet is not gofmt-clean")
	}
	return nil
}
