// Package rle implements run-length encoding of biological sequences and the
// operations bdbms needs to work on the compressed form without
// decompressing it (Section 7.2 of the paper, Figure 12).
//
// A run-length encoded sequence is a list of (character, count) runs. Protein
// secondary structures (H/E/L alphabets with long tandem repeats) compress by
// roughly an order of magnitude; gene sequences compress far less. The SBC-tree
// (internal/sbctree) indexes these runs directly.
package rle

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Run is a single (character, length) run.
type Run struct {
	// Char is the repeated character.
	Char byte
	// Len is the number of consecutive occurrences; always >= 1.
	Len int
}

// Sequence is a run-length encoded string.
type Sequence struct {
	runs []Run
	// n is the decompressed length, maintained incrementally.
	n int
}

// Errors returned by the rle package.
var (
	// ErrOutOfRange is returned by positional operations past the end of the
	// decompressed sequence.
	ErrOutOfRange = errors.New("rle: position out of range")
	// ErrBadFormat is returned when parsing a malformed textual RLE string.
	ErrBadFormat = errors.New("rle: bad compressed format")
)

// Encode compresses s into its run-length representation.
func Encode(s string) *Sequence {
	seq := &Sequence{}
	if len(s) == 0 {
		return seq
	}
	cur := s[0]
	count := 1
	for i := 1; i < len(s); i++ {
		if s[i] == cur {
			count++
			continue
		}
		seq.runs = append(seq.runs, Run{Char: cur, Len: count})
		cur = s[i]
		count = 1
	}
	seq.runs = append(seq.runs, Run{Char: cur, Len: count})
	seq.n = len(s)
	return seq
}

// FromRuns builds a sequence directly from runs. Adjacent runs with the same
// character are merged and zero/negative-length runs rejected.
func FromRuns(runs []Run) (*Sequence, error) {
	seq := &Sequence{}
	for _, r := range runs {
		if r.Len <= 0 {
			return nil, fmt.Errorf("%w: run length %d", ErrBadFormat, r.Len)
		}
		seq.appendRun(r)
	}
	return seq, nil
}

func (s *Sequence) appendRun(r Run) {
	if len(s.runs) > 0 && s.runs[len(s.runs)-1].Char == r.Char {
		s.runs[len(s.runs)-1].Len += r.Len
	} else {
		s.runs = append(s.runs, r)
	}
	s.n += r.Len
}

// Decode returns the original, decompressed string.
func (s *Sequence) Decode() string {
	var b strings.Builder
	b.Grow(s.n)
	for _, r := range s.runs {
		for i := 0; i < r.Len; i++ {
			b.WriteByte(r.Char)
		}
	}
	return b.String()
}

// AppendDecoded appends the decompressed bytes to dst and returns the
// extended slice. It is the vector-decode entry point of the columnar scan
// path: callers expand a compressed per-column byte vector (dictionary codes,
// validity flags) into a reusable buffer without a string allocation per
// chunk.
func (s *Sequence) AppendDecoded(dst []byte) []byte {
	if cap(dst)-len(dst) < s.n {
		grown := make([]byte, len(dst), len(dst)+s.n)
		copy(grown, dst)
		dst = grown
	}
	for _, r := range s.runs {
		for i := 0; i < r.Len; i++ {
			dst = append(dst, r.Char)
		}
	}
	return dst
}

// Len returns the decompressed length.
func (s *Sequence) Len() int { return s.n }

// NumRuns returns the number of runs, i.e. the compressed length in runs.
func (s *Sequence) NumRuns() int { return len(s.runs) }

// Runs returns a copy of the underlying runs.
func (s *Sequence) Runs() []Run {
	out := make([]Run, len(s.runs))
	copy(out, s.runs)
	return out
}

// Run returns the i-th run.
func (s *Sequence) Run(i int) Run { return s.runs[i] }

// CompressedSize returns the storage footprint of the compressed form in
// bytes, assuming one byte for the character and a varint-ish 4 bytes for the
// count (the accounting the storage-reduction experiment E1 uses).
func (s *Sequence) CompressedSize() int { return len(s.runs) * 5 }

// CompressionRatio returns decompressed length / compressed size. A ratio of
// 10 means an order-of-magnitude reduction.
func (s *Sequence) CompressionRatio() float64 {
	cs := s.CompressedSize()
	if cs == 0 {
		return 1
	}
	return float64(s.n) / float64(cs)
}

// CharAt returns the character at decompressed position i without
// decompressing the sequence (O(runs) scan).
func (s *Sequence) CharAt(i int) (byte, error) {
	if i < 0 || i >= s.n {
		return 0, ErrOutOfRange
	}
	pos := 0
	for _, r := range s.runs {
		if i < pos+r.Len {
			return r.Char, nil
		}
		pos += r.Len
	}
	return 0, ErrOutOfRange
}

// Substring extracts the decompressed substring [start, start+length) while
// only touching the runs that overlap it.
func (s *Sequence) Substring(start, length int) (string, error) {
	if start < 0 || length < 0 || start+length > s.n {
		return "", ErrOutOfRange
	}
	if length == 0 {
		return "", nil
	}
	var b strings.Builder
	b.Grow(length)
	pos := 0
	remaining := length
	for _, r := range s.runs {
		end := pos + r.Len
		if end <= start {
			pos = end
			continue
		}
		from := 0
		if start > pos {
			from = start - pos
		}
		take := r.Len - from
		if take > remaining {
			take = remaining
		}
		for i := 0; i < take; i++ {
			b.WriteByte(r.Char)
		}
		remaining -= take
		if remaining == 0 {
			break
		}
		pos = end
	}
	return b.String(), nil
}

// RunAtPosition returns the index of the run covering decompressed position i
// and the offset of that run's first character.
func (s *Sequence) RunAtPosition(i int) (runIdx, runStart int, err error) {
	if i < 0 || i >= s.n {
		return 0, 0, ErrOutOfRange
	}
	pos := 0
	for idx, r := range s.runs {
		if i < pos+r.Len {
			return idx, pos, nil
		}
		pos += r.Len
	}
	return 0, 0, ErrOutOfRange
}

// Suffix returns a new Sequence representing the suffix starting at run
// boundary runIdx. The SBC-tree only indexes run-boundary suffixes.
func (s *Sequence) Suffix(runIdx int) *Sequence {
	if runIdx < 0 || runIdx >= len(s.runs) {
		return &Sequence{}
	}
	out := &Sequence{}
	for _, r := range s.runs[runIdx:] {
		out.appendRun(r)
	}
	return out
}

// ContainsSubstring reports whether pattern occurs in the decompressed
// sequence, computed directly over the runs. It is the reference
// (non-indexed) matcher used to validate SBC-tree results.
func (s *Sequence) ContainsSubstring(pattern string) bool {
	return s.IndexOf(pattern) >= 0
}

// IndexOf returns the first decompressed position where pattern occurs, or -1.
// It operates over the run representation: the pattern is itself run-length
// encoded and aligned against the sequence's runs.
func (s *Sequence) IndexOf(pattern string) int {
	if len(pattern) == 0 {
		return 0
	}
	p := Encode(pattern)
	if p.n > s.n {
		return -1
	}
	// Single-run pattern: any run of the same char with length >= pattern len.
	if len(p.runs) == 1 {
		pos := 0
		for _, r := range s.runs {
			if r.Char == p.runs[0].Char && r.Len >= p.runs[0].Len {
				return pos
			}
			pos += r.Len
		}
		return -1
	}
	// Multi-run pattern: the first pattern run must be a suffix of a sequence
	// run, inner runs must match exactly, and the last pattern run must be a
	// prefix of a sequence run.
	first, last := p.runs[0], p.runs[len(p.runs)-1]
	inner := p.runs[1 : len(p.runs)-1]
	pos := 0
	for i := 0; i+len(p.runs) <= len(s.runs)+0; i++ {
		if i+len(p.runs) > len(s.runs) {
			break
		}
		r0 := s.runs[i]
		ok := r0.Char == first.Char && r0.Len >= first.Len
		if ok {
			for j, ir := range inner {
				sr := s.runs[i+1+j]
				if sr.Char != ir.Char || sr.Len != ir.Len {
					ok = false
					break
				}
			}
		}
		if ok {
			lr := s.runs[i+len(p.runs)-1]
			if lr.Char != last.Char || lr.Len < last.Len {
				ok = false
			}
		}
		if ok {
			return pos + r0.Len - first.Len
		}
		pos += r0.Len
	}
	return -1
}

// HasPrefix reports whether the decompressed sequence starts with pattern,
// computed over runs.
func (s *Sequence) HasPrefix(pattern string) bool {
	if len(pattern) == 0 {
		return true
	}
	p := Encode(pattern)
	if p.n > s.n || len(p.runs) > len(s.runs) {
		return false
	}
	for i, pr := range p.runs {
		sr := s.runs[i]
		if sr.Char != pr.Char {
			return false
		}
		last := i == len(p.runs)-1
		if last {
			if sr.Len < pr.Len {
				return false
			}
		} else if sr.Len != pr.Len {
			return false
		}
	}
	return true
}

// String renders the compressed form in the paper's textual notation,
// e.g. "L3E7H22E6" (Figure 12).
func (s *Sequence) String() string {
	var b strings.Builder
	for _, r := range s.runs {
		b.WriteByte(r.Char)
		b.WriteString(strconv.Itoa(r.Len))
	}
	return b.String()
}

// Parse parses the textual notation produced by String (e.g. "L3E7H22").
func Parse(text string) (*Sequence, error) {
	seq := &Sequence{}
	i := 0
	for i < len(text) {
		ch := text[i]
		if ch >= '0' && ch <= '9' {
			return nil, fmt.Errorf("%w: expected run character at %d", ErrBadFormat, i)
		}
		i++
		j := i
		for j < len(text) && text[j] >= '0' && text[j] <= '9' {
			j++
		}
		if j == i {
			return nil, fmt.Errorf("%w: missing run length at %d", ErrBadFormat, i)
		}
		n, err := strconv.Atoi(text[i:j])
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("%w: bad run length %q", ErrBadFormat, text[i:j])
		}
		seq.appendRun(Run{Char: ch, Len: n})
		i = j
	}
	return seq, nil
}

// Equal reports whether two compressed sequences decode to the same string.
func (s *Sequence) Equal(o *Sequence) bool {
	if s.n != o.n || len(s.runs) != len(o.runs) {
		return false
	}
	for i := range s.runs {
		if s.runs[i] != o.runs[i] {
			return false
		}
	}
	return true
}

// Concat returns the concatenation of s and o as a new compressed sequence.
func (s *Sequence) Concat(o *Sequence) *Sequence {
	out := &Sequence{}
	for _, r := range s.runs {
		out.appendRun(r)
	}
	for _, r := range o.runs {
		out.appendRun(r)
	}
	return out
}

// CompareCompressed lexicographically compares the decompressed strings of a
// and b without materialising them.
func CompareCompressed(a, b *Sequence) int {
	ai, bi := 0, 0 // run indexes
	ao, bo := 0, 0 // offsets within current runs
	for ai < len(a.runs) && bi < len(b.runs) {
		ra, rb := a.runs[ai], b.runs[bi]
		if ra.Char != rb.Char {
			if ra.Char < rb.Char {
				return -1
			}
			return 1
		}
		remA, remB := ra.Len-ao, rb.Len-bo
		step := remA
		if remB < step {
			step = remB
		}
		ao += step
		bo += step
		if ao == ra.Len {
			ai++
			ao = 0
		}
		if bo == rb.Len {
			bi++
			bo = 0
		}
	}
	switch {
	case ai < len(a.runs):
		return 1
	case bi < len(b.runs):
		return -1
	default:
		return 0
	}
}
