package rle

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestEncodeDecodeRoundTripFuzz is the audit gate for reusing this package as
// the columnar-chunk compression backend: the storage layer round-trips
// arbitrary byte vectors (dictionary codes, validity flags) through
// Encode/AppendDecoded, so any latent encoding bug here would become a silent
// storage bug there. It drives random strings across alphabet sizes from 1
// (one giant run) to 250 (almost no runs), including empty input.
func TestEncodeDecodeRoundTripFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	alphabets := []int{1, 2, 3, 8, 250}
	for iter := 0; iter < 2000; iter++ {
		n := rng.Intn(300)
		alpha := alphabets[rng.Intn(len(alphabets))]
		raw := make([]byte, n)
		for i := range raw {
			raw[i] = byte('A' + rng.Intn(alpha))
		}
		s := string(raw)
		enc := Encode(s)
		if got := enc.Decode(); got != s {
			t.Fatalf("iter %d: Decode(Encode(x)) = %q, want %q", iter, got, s)
		}
		if got := enc.AppendDecoded(nil); !bytes.Equal(got, raw) && !(len(got) == 0 && n == 0) {
			t.Fatalf("iter %d: AppendDecoded(Encode(x)) = %q, want %q", iter, got, raw)
		}
		// Appending to a non-empty prefix must leave the prefix intact.
		prefix := []byte("xyz")
		if got := enc.AppendDecoded(prefix); string(got) != "xyz"+s {
			t.Fatalf("iter %d: AppendDecoded with prefix = %q, want %q", iter, got, "xyz"+s)
		}
		if enc.Len() != n {
			t.Fatalf("iter %d: Len = %d, want %d", iter, enc.Len(), n)
		}
		// Structural invariants: no adjacent runs share a character, lengths
		// are positive and sum to the input length.
		total := 0
		for i := 0; i < enc.NumRuns(); i++ {
			r := enc.Run(i)
			if r.Len <= 0 {
				t.Fatalf("iter %d: run %d has length %d", iter, i, r.Len)
			}
			if i > 0 && enc.Run(i-1).Char == r.Char {
				t.Fatalf("iter %d: adjacent runs %d,%d share char %q", iter, i-1, i, r.Char)
			}
			total += r.Len
		}
		if total != n {
			t.Fatalf("iter %d: run lengths sum to %d, want %d", iter, total, n)
		}
		// FromRuns over the extracted runs rebuilds an identical sequence.
		rebuilt, err := FromRuns(enc.Runs())
		if err != nil {
			t.Fatalf("iter %d: FromRuns: %v", iter, err)
		}
		if got := rebuilt.Decode(); got != s {
			t.Fatalf("iter %d: FromRuns round trip = %q, want %q", iter, got, s)
		}
	}
}
