package rle

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []string{"", "A", "AAAA", "ABAB", "LLLEEEEEEEHHHH", "HHHHHHHHHHLL", "ATGCATGC"}
	for _, c := range cases {
		seq := Encode(c)
		if got := seq.Decode(); got != c {
			t.Errorf("Decode(Encode(%q)) = %q", c, got)
		}
		if seq.Len() != len(c) {
			t.Errorf("Len(%q) = %d, want %d", c, seq.Len(), len(c))
		}
	}
}

func TestEncodeRunStructure(t *testing.T) {
	seq := Encode("LLLEEEEEEEHHHHHHHHHHHHHHHHHHHHHH")
	want := []Run{{'L', 3}, {'E', 7}, {'H', 22}}
	got := seq.Runs()
	if len(got) != len(want) {
		t.Fatalf("runs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("run %d = %v, want %v", i, got[i], want[i])
		}
	}
	if seq.String() != "L3E7H22" {
		t.Errorf("String() = %q, want L3E7H22", seq.String())
	}
}

func TestParse(t *testing.T) {
	seq, err := Parse("L3E7H22")
	if err != nil {
		t.Fatal(err)
	}
	if seq.Decode() != "LLLEEEEEEEHHHHHHHHHHHHHHHHHHHHHH" {
		t.Errorf("parsed decode = %q", seq.Decode())
	}
	for _, bad := range []string{"3L", "L", "LE3", "L0"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestFromRuns(t *testing.T) {
	seq, err := FromRuns([]Run{{'A', 2}, {'A', 3}, {'B', 1}})
	if err != nil {
		t.Fatal(err)
	}
	if seq.NumRuns() != 2 || seq.Decode() != "AAAAAB" {
		t.Errorf("merge failed: %v %q", seq.Runs(), seq.Decode())
	}
	if _, err := FromRuns([]Run{{'A', 0}}); err == nil {
		t.Error("zero-length run should fail")
	}
}

func TestCharAt(t *testing.T) {
	s := "LLLEEEEEEEHHHH"
	seq := Encode(s)
	for i := 0; i < len(s); i++ {
		c, err := seq.CharAt(i)
		if err != nil || c != s[i] {
			t.Fatalf("CharAt(%d) = %c, %v; want %c", i, c, err, s[i])
		}
	}
	if _, err := seq.CharAt(-1); err == nil {
		t.Error("CharAt(-1) should fail")
	}
	if _, err := seq.CharAt(len(s)); err == nil {
		t.Error("CharAt(len) should fail")
	}
}

func TestSubstring(t *testing.T) {
	s := "LLLEEEEEEEHHHHHHLLEE"
	seq := Encode(s)
	for start := 0; start <= len(s); start++ {
		for length := 0; start+length <= len(s); length++ {
			got, err := seq.Substring(start, length)
			if err != nil {
				t.Fatalf("Substring(%d,%d): %v", start, length, err)
			}
			if got != s[start:start+length] {
				t.Fatalf("Substring(%d,%d) = %q, want %q", start, length, got, s[start:start+length])
			}
		}
	}
	if _, err := seq.Substring(1, len(s)); err == nil {
		t.Error("out of range substring should fail")
	}
}

func TestRunAtPosition(t *testing.T) {
	seq := Encode("LLLEEH")
	idx, start, err := seq.RunAtPosition(4)
	if err != nil || idx != 1 || start != 3 {
		t.Fatalf("RunAtPosition(4) = %d,%d,%v", idx, start, err)
	}
	if _, _, err := seq.RunAtPosition(100); err == nil {
		t.Error("out of range should fail")
	}
}

func TestSuffix(t *testing.T) {
	seq := Encode("LLLEEEHH")
	suf := seq.Suffix(1)
	if suf.Decode() != "EEEHH" {
		t.Errorf("Suffix(1) = %q", suf.Decode())
	}
	if seq.Suffix(99).Len() != 0 {
		t.Error("out-of-range suffix should be empty")
	}
}

func TestIndexOfAndContains(t *testing.T) {
	s := "LLLEEEEEEEHHHHHHHHHHHHHHHHHHHHHHEEEEEELLEEELHHHH"
	seq := Encode(s)
	patterns := []string{"LLL", "EEEH", "HHLL", "LEEEL", "EEEEEELL", "LLLE", "H", "HHHHHHHHHH"}
	for _, p := range patterns {
		want := strings.Index(s, p)
		got := seq.IndexOf(p)
		if got != want {
			t.Errorf("IndexOf(%q) = %d, want %d", p, got, want)
		}
		if seq.ContainsSubstring(p) != (want >= 0) {
			t.Errorf("Contains(%q) mismatch", p)
		}
	}
	if seq.IndexOf("XYZ") != -1 {
		t.Error("absent pattern should give -1")
	}
	if seq.IndexOf("") != 0 {
		t.Error("empty pattern matches at 0")
	}
}

func TestHasPrefix(t *testing.T) {
	seq := Encode("LLLEEEHH")
	for _, p := range []string{"", "L", "LL", "LLL", "LLLE", "LLLEEE", "LLLEEEH"} {
		if !seq.HasPrefix(p) {
			t.Errorf("HasPrefix(%q) should be true", p)
		}
	}
	for _, p := range []string{"E", "LLLL", "LLLEEEE", "LLLEEEHHH", "LLLH"} {
		if seq.HasPrefix(p) {
			t.Errorf("HasPrefix(%q) should be false", p)
		}
	}
}

func TestCompressionRatioSecondaryStructure(t *testing.T) {
	// Long-run secondary structures should compress well (E1's premise).
	var b strings.Builder
	rng := rand.New(rand.NewSource(7))
	letters := []byte{'H', 'E', 'L'}
	for i := 0; i < 100; i++ {
		ch := letters[rng.Intn(3)]
		n := 10 + rng.Intn(30)
		for j := 0; j < n; j++ {
			b.WriteByte(ch)
		}
	}
	seq := Encode(b.String())
	if seq.CompressionRatio() < 2 {
		t.Errorf("secondary structure should compress: ratio %.2f", seq.CompressionRatio())
	}
	if seq.CompressedSize() != seq.NumRuns()*5 {
		t.Error("compressed size accounting changed unexpectedly")
	}
}

func TestEqualConcat(t *testing.T) {
	a := Encode("LLLEE")
	b := Encode("LLLEE")
	c := Encode("LLLEEE")
	if !a.Equal(b) || a.Equal(c) {
		t.Error("Equal misbehaves")
	}
	cat := Encode("LLL").Concat(Encode("LLEE"))
	if cat.Decode() != "LLLLLEE" || cat.NumRuns() != 2 {
		t.Errorf("Concat = %q runs=%d", cat.Decode(), cat.NumRuns())
	}
}

func TestCompareCompressed(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"AAB", "AAB", 0},
		{"AAB", "AAC", -1},
		{"AAC", "AAB", 1},
		{"AA", "AAB", -1},
		{"AAB", "AA", 1},
		{"", "", 0},
		{"", "A", -1},
		{"HHHL", "HHHH", 1},
	}
	for _, c := range cases {
		got := CompareCompressed(Encode(c.a), Encode(c.b))
		if got != c.want {
			t.Errorf("CompareCompressed(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// randomStructure builds a random H/E/L string for property tests.
func randomStructure(rng *rand.Rand, maxLen int) string {
	letters := []byte{'H', 'E', 'L'}
	n := rng.Intn(maxLen)
	b := make([]byte, n)
	for i := range b {
		b[i] = letters[rng.Intn(3)]
	}
	return string(b)
}

func TestQuickRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func() bool {
		s := randomStructure(rng, 300)
		return Encode(s).Decode() == s
	}
	for i := 0; i < 300; i++ {
		if !f() {
			t.Fatal("round trip failed")
		}
	}
}

func TestQuickIndexOfMatchesStrings(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 300; i++ {
		s := randomStructure(rng, 200)
		p := randomStructure(rng, 6)
		seq := Encode(s)
		if got, want := seq.IndexOf(p), strings.Index(s, p); got != want {
			t.Fatalf("IndexOf(%q in %q) = %d, want %d", p, s, got, want)
		}
	}
}

func TestQuickCompareMatchesStringCompare(t *testing.T) {
	f := func(a, b string) bool {
		ca, cb := Encode(a), Encode(b)
		got := CompareCompressed(ca, cb)
		want := strings.Compare(a, b)
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickParseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		s := randomStructure(rng, 150)
		if s == "" {
			continue
		}
		seq := Encode(s)
		parsed, err := Parse(seq.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", seq.String(), err)
		}
		if !parsed.Equal(seq) {
			t.Fatalf("parse round trip failed for %q", s)
		}
	}
}
