package pager

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"
)

func TestFaultPagerTransparentWhenDisarmed(t *testing.T) {
	fp := NewFaultPager(NewMem())
	testPagerBasics(t, fp)
}

func TestFaultPagerWriteFaults(t *testing.T) {
	inner := NewMem()
	fp := NewFaultPager(inner)
	id, err := fp.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	good := bytes.Repeat([]byte{1}, PageSize)
	bad := bytes.Repeat([]byte{2}, PageSize)

	fp.FailWriteAfter(1, ErrInjectedENOSPC)
	if err := fp.Write(id, good); err != nil {
		t.Fatalf("write within budget: %v", err)
	}
	if err := fp.Write(id, bad); !errors.Is(err, ErrInjectedENOSPC) {
		t.Fatalf("write past budget = %v, want ENOSPC", err)
	}
	// The fault is sticky until disarmed, like a full disk.
	if err := fp.Write(id, bad); !errors.Is(err, ErrInjectedENOSPC) {
		t.Fatalf("second faulted write = %v, want ENOSPC", err)
	}
	// The failed write must not have reached the inner pager.
	got, err := inner.Read(id)
	if err != nil || !bytes.Equal(got, good) {
		t.Fatalf("inner page changed by failed write: %v", err)
	}
	fp.FailWriteAfter(-1, nil)
	if err := fp.Write(id, bad); err != nil {
		t.Fatalf("write after disarm: %v", err)
	}
}

func TestFaultPagerTornWrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	inner, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer inner.Close()
	fp := NewFaultPager(inner)
	id, err := fp.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if err := fp.Write(id, bytes.Repeat([]byte{1}, PageSize)); err != nil {
		t.Fatal(err)
	}

	fp.TearWriteAfter(0, PageSize/2)
	if err := fp.Write(id, bytes.Repeat([]byte{2}, PageSize)); !errors.Is(err, ErrInjectedEIO) {
		t.Fatalf("torn write = %v, want EIO", err)
	}
	// The frame on disk is half new, half old, under a checksum for the
	// full new page: reading it must report corruption, not garbage.
	if _, err := inner.Read(id); !errors.Is(err, ErrPageCorrupt) {
		t.Fatalf("torn frame read = %v, want ErrPageCorrupt", err)
	}
}

func TestFaultPagerSyncPoisoning(t *testing.T) {
	fp := NewFaultPager(NewMem())
	if err := fp.Sync(); err != nil {
		t.Fatalf("healthy sync: %v", err)
	}
	fp.FailSyncAfter(0)
	if err := fp.Sync(); !errors.Is(err, ErrInjectedSyncFailure) {
		t.Fatalf("armed sync = %v, want injected failure", err)
	}
	fp.FailSyncAfter(-1) // disarming must NOT clear the poison
	if err := fp.Sync(); !errors.Is(err, ErrSyncPoisoned) {
		t.Fatalf("post-failure sync = %v, want ErrSyncPoisoned", err)
	}
}

func TestFaultPagerLoseUnsynced(t *testing.T) {
	inner := NewMem()
	fp := NewFaultPager(inner)
	fp.TrackUnsynced()

	id, err := fp.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	synced := bytes.Repeat([]byte{1}, PageSize)
	if err := fp.Write(id, synced); err != nil {
		t.Fatal(err)
	}
	if err := fp.Sync(); err != nil {
		t.Fatal(err)
	}

	// Post-sync writes: one update and one fresh page.
	if err := fp.Write(id, bytes.Repeat([]byte{2}, PageSize)); err != nil {
		t.Fatal(err)
	}
	id2, err := fp.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if err := fp.Write(id2, bytes.Repeat([]byte{3}, PageSize)); err != nil {
		t.Fatal(err)
	}

	if err := fp.LoseUnsynced(); err != nil {
		t.Fatal(err)
	}
	got, err := inner.Read(id)
	if err != nil || !bytes.Equal(got, synced) {
		t.Fatalf("page %d not rewound to synced content: %v", id, err)
	}
	got2, err := inner.Read(id2)
	if err != nil || !bytes.Equal(got2, make([]byte, PageSize)) {
		t.Fatalf("post-sync page %d not rewound to zero: %v", id2, err)
	}
}

func TestFaultPagerAllocateFault(t *testing.T) {
	fp := NewFaultPager(NewMem())
	fp.FailAllocateAfter(1, ErrInjectedENOSPC)
	if _, err := fp.Allocate(); err != nil {
		t.Fatal(err)
	}
	if _, err := fp.Allocate(); !errors.Is(err, ErrInjectedENOSPC) {
		t.Fatalf("allocate past budget = %v, want ENOSPC", err)
	}
}
