package pager

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// writePages opens a file pager at path, allocates n pages with
// recognizable content, closes it and returns the payloads.
func writePages(t *testing.T, path string, n int) [][]byte {
	t.Helper()
	p, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	payloads := make([][]byte, n)
	for i := 0; i < n; i++ {
		id, err := p.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		data := bytes.Repeat([]byte{byte(i + 1)}, PageSize)
		if err := p.Write(id, data); err != nil {
			t.Fatal(err)
		}
		payloads[i] = data
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	return payloads
}

func TestReadDetectsBitFlip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	writePages(t, path, 3)

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte in page 1.
	raw[FrameOffset(1)+PageHeaderSize+100] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	p, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := p.Read(0); err != nil {
		t.Errorf("untouched page 0 unreadable: %v", err)
	}
	_, err = p.Read(1)
	if !errors.Is(err, ErrPageCorrupt) {
		t.Fatalf("bit flip not detected: err = %v", err)
	}
	var cp *CorruptPageError
	if !errors.As(err, &cp) {
		t.Fatalf("error is not a *CorruptPageError: %v", err)
	}
	if cp.Page != 1 || cp.Path != path {
		t.Errorf("CorruptPageError = %+v, want page 1 of %s", cp, path)
	}
	if _, err := p.Read(2); err != nil {
		t.Errorf("untouched page 2 unreadable: %v", err)
	}
}

func TestReadDetectsHeaderCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	writePages(t, path, 1)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[FrameOffset(0)+5] ^= 0x01 // flip a bit inside the stored page ID
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := p.Read(0); !errors.Is(err, ErrPageCorrupt) {
		t.Fatalf("header corruption not detected: err = %v", err)
	}
}

// TestReadDetectsMisdirectedWrite swaps two intact frames: each one has a
// valid checksum, but the page-ID stamp catches the misdirection.
func TestReadDetectsMisdirectedWrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	writePages(t, path, 2)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	f0 := append([]byte(nil), raw[FrameOffset(0):FrameOffset(1)]...)
	f1 := append([]byte(nil), raw[FrameOffset(1):FrameOffset(2)]...)
	copy(raw[FrameOffset(0):], f1)
	copy(raw[FrameOffset(1):], f0)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for id := PageID(0); id < 2; id++ {
		_, err := p.Read(id)
		if !errors.Is(err, ErrPageCorrupt) {
			t.Errorf("swapped page %d not detected: err = %v", id, err)
		}
	}
}

// TestTornTrailingFrameDropped: a crash mid-append leaves a partial final
// frame; the pager must round the page count down rather than serve it.
func TestTornTrailingFrameDropped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	writePages(t, path, 2)
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-PageFrameSize/2); err != nil {
		t.Fatal(err)
	}
	p, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if n := p.NumPages(); n != 1 {
		t.Fatalf("NumPages = %d after torn tail, want 1", n)
	}
	if _, err := p.Read(0); err != nil {
		t.Errorf("intact page 0 unreadable: %v", err)
	}
}

// TestLegacyFileUpgrade: a file written in the pre-checksum layout (raw
// 4096-byte pages at offset 0) must open transparently, serve its pages,
// and be rewritten into the version-1 format.
func TestLegacyFileUpgrade(t *testing.T) {
	path := filepath.Join(t.TempDir(), "legacy.db")
	legacy := make([]byte, 3*PageSize)
	for i := 0; i < 3; i++ {
		for j := 0; j < PageSize; j++ {
			legacy[i*PageSize+j] = byte(i + 10)
		}
	}
	if err := os.WriteFile(path, legacy, 0o644); err != nil {
		t.Fatal(err)
	}

	p, err := OpenFile(path)
	if err != nil {
		t.Fatalf("legacy open: %v", err)
	}
	if n := p.NumPages(); n != 3 {
		t.Fatalf("NumPages = %d, want 3", n)
	}
	for id := PageID(0); id < 3; id++ {
		got, err := p.Read(id)
		if err != nil {
			t.Fatalf("read upgraded page %d: %v", id, err)
		}
		if got[0] != byte(id+10) || got[PageSize-1] != byte(id+10) {
			t.Errorf("page %d content lost in upgrade", id)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	// The file is now in the checksummed format.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw[:len(fileMagic)], fileMagic[:]) {
		t.Fatal("upgraded file is missing the format magic")
	}
	if want := FileHeaderSize + 3*int64(PageFrameSize); int64(len(raw)) != want {
		t.Errorf("upgraded file is %d bytes, want %d", len(raw), want)
	}
	// No upgrade temp file left behind.
	if _, err := os.Stat(path + ".upgrade"); !os.IsNotExist(err) {
		t.Errorf("upgrade temp file left behind: %v", err)
	}

	// Second open takes the fast path and still serves the data.
	p2, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	got, err := p2.Read(2)
	if err != nil || got[0] != 12 {
		t.Fatalf("second open read: %v %v", got[0], err)
	}
}

func TestCorruptFileHeaderRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	writePages(t, path, 1)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[9] ^= 0xFF // page-size field: header checksum no longer matches
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(path); !errors.Is(err, ErrPageCorrupt) {
		t.Fatalf("corrupt file header not rejected: err = %v", err)
	}
}

// TestSyncPoisoning: after one failed fsync the pager must never again
// report durability. Real fsync failures are hard to produce, so the test
// closes the underlying descriptor out from under the pager.
func TestSyncPoisoning(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	p, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Allocate(); err != nil {
		t.Fatal(err)
	}
	if err := p.Sync(); err != nil {
		t.Fatalf("healthy sync: %v", err)
	}
	p.f.Close() // sabotage: the next fsync fails with EBADF
	if err := p.Sync(); err == nil {
		t.Fatal("sync on closed descriptor should fail")
	} else if errors.Is(err, ErrSyncPoisoned) {
		t.Fatalf("first failure should surface the real error, got %v", err)
	}
	// Even though fsync would now "succeed" is moot — the pager is poisoned.
	if err := p.Sync(); !errors.Is(err, ErrSyncPoisoned) {
		t.Fatalf("second sync = %v, want ErrSyncPoisoned", err)
	}
	p.mu.Lock()
	p.closed = true // avoid double-close panic paths in Close
	p.mu.Unlock()
}
