// Package pager provides the lowest storage layer of bdbms: fixed-size pages
// identified by PageID, backed either by a file on disk or by memory. Every
// read and write is counted, because the paper's access-method claims (E2:
// "up to 30% reduction in I/Os for insertion") are expressed in page I/Os.
package pager

import (
	"errors"
	"fmt"
	"os"
	"sync"
)

// PageSize is the default page size in bytes, matching common DBMS practice.
const PageSize = 4096

// PageID identifies a page within a pager. IDs are dense and start at 0.
type PageID uint64

// InvalidPageID is a sentinel for "no page".
const InvalidPageID = PageID(^uint64(0))

// Errors returned by pagers.
var (
	// ErrPageNotFound is returned when reading a page that was never allocated.
	ErrPageNotFound = errors.New("pager: page not found")
	// ErrClosed is returned when using a pager after Close.
	ErrClosed = errors.New("pager: closed")
)

// Stats counts physical page accesses.
type Stats struct {
	// Reads is the number of page reads served by the backing store.
	Reads uint64
	// Writes is the number of page writes to the backing store.
	Writes uint64
	// Allocs is the number of pages allocated.
	Allocs uint64
}

// Pager is the page-storage abstraction used by the heap, the WAL and the
// disk-resident access methods.
type Pager interface {
	// Allocate reserves a new zeroed page and returns its ID.
	Allocate() (PageID, error)
	// Read copies the content of page id into a fresh buffer of PageSize bytes.
	Read(id PageID) ([]byte, error)
	// Write replaces the content of page id. The buffer must be PageSize long.
	Write(id PageID, data []byte) error
	// NumPages returns the number of allocated pages.
	NumPages() uint64
	// Stats returns a snapshot of the I/O counters.
	Stats() Stats
	// ResetStats zeroes the I/O counters (used between benchmark phases).
	ResetStats()
	// Sync forces written pages to stable storage (no-op for memory pagers).
	Sync() error
	// Close releases resources.
	Close() error
}

// --- in-memory pager --------------------------------------------------------

// MemPager is a Pager backed by process memory. It is the default substrate
// for tests, examples and benchmarks: I/O counts are still tracked so the
// experiments can report "simulated I/Os".
type MemPager struct {
	mu     sync.Mutex
	pages  [][]byte
	stats  Stats
	closed bool
}

// NewMem returns an empty in-memory pager.
func NewMem() *MemPager { return &MemPager{} }

// Allocate implements Pager.
func (p *MemPager) Allocate() (PageID, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return InvalidPageID, ErrClosed
	}
	p.pages = append(p.pages, make([]byte, PageSize))
	p.stats.Allocs++
	return PageID(len(p.pages) - 1), nil
}

// Read implements Pager.
func (p *MemPager) Read(id PageID) ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, ErrClosed
	}
	if int(id) >= len(p.pages) {
		return nil, fmt.Errorf("%w: %d", ErrPageNotFound, id)
	}
	p.stats.Reads++
	out := make([]byte, PageSize)
	copy(out, p.pages[id])
	return out, nil
}

// Write implements Pager.
func (p *MemPager) Write(id PageID, data []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	if int(id) >= len(p.pages) {
		return fmt.Errorf("%w: %d", ErrPageNotFound, id)
	}
	if len(data) != PageSize {
		return fmt.Errorf("pager: write of %d bytes, want %d", len(data), PageSize)
	}
	p.stats.Writes++
	copy(p.pages[id], data)
	return nil
}

// NumPages implements Pager.
func (p *MemPager) NumPages() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return uint64(len(p.pages))
}

// Stats implements Pager.
func (p *MemPager) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// ResetStats implements Pager.
func (p *MemPager) ResetStats() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats = Stats{}
}

// Sync implements Pager; memory pages have no stable storage to reach.
func (p *MemPager) Sync() error { return nil }

// Close implements Pager.
func (p *MemPager) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
	p.pages = nil
	return nil
}

// --- file pager --------------------------------------------------------------

// FilePager is a Pager backed by a single file; page i lives at offset
// i*PageSize. It provides durability for the CLI and the persistence tests.
type FilePager struct {
	mu     sync.Mutex
	f      *os.File
	n      uint64
	stats  Stats
	closed bool
	// removePath, when set, is deleted on Close: OpenTemp pagers own their
	// backing file and clean it up when the spill is done.
	removePath string
}

// OpenFile opens (or creates) a file-backed pager at path.
func OpenFile(path string) (*FilePager, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pager: open %s: %w", path, err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("pager: stat %s: %w", path, err)
	}
	return &FilePager{f: f, n: uint64(info.Size()) / PageSize}, nil
}

// OpenTemp creates a pager over a fresh temporary file in dir (the system
// temp directory when dir is empty). The file is private to this pager and
// is deleted on Close — it is the spill surface used by the executor's
// external sort and hash-aggregation operators, which need scratch space
// that never outlives the query.
func OpenTemp(dir string) (*FilePager, error) {
	f, err := os.CreateTemp(dir, "bdbms-spill-*.tmp")
	if err != nil {
		return nil, fmt.Errorf("pager: open temp spill file: %w", err)
	}
	return &FilePager{f: f, removePath: f.Name()}, nil
}

// Allocate implements Pager.
func (p *FilePager) Allocate() (PageID, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return InvalidPageID, ErrClosed
	}
	id := PageID(p.n)
	zero := make([]byte, PageSize)
	if _, err := p.f.WriteAt(zero, int64(id)*PageSize); err != nil {
		return InvalidPageID, fmt.Errorf("pager: allocate: %w", err)
	}
	p.n++
	p.stats.Allocs++
	return id, nil
}

// Read implements Pager.
func (p *FilePager) Read(id PageID) ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, ErrClosed
	}
	if uint64(id) >= p.n {
		return nil, fmt.Errorf("%w: %d", ErrPageNotFound, id)
	}
	buf := make([]byte, PageSize)
	if _, err := p.f.ReadAt(buf, int64(id)*PageSize); err != nil {
		return nil, fmt.Errorf("pager: read page %d: %w", id, err)
	}
	p.stats.Reads++
	return buf, nil
}

// Write implements Pager.
func (p *FilePager) Write(id PageID, data []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	if uint64(id) >= p.n {
		return fmt.Errorf("%w: %d", ErrPageNotFound, id)
	}
	if len(data) != PageSize {
		return fmt.Errorf("pager: write of %d bytes, want %d", len(data), PageSize)
	}
	if _, err := p.f.WriteAt(data, int64(id)*PageSize); err != nil {
		return fmt.Errorf("pager: write page %d: %w", id, err)
	}
	p.stats.Writes++
	return nil
}

// NumPages implements Pager.
func (p *FilePager) NumPages() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.n
}

// Stats implements Pager.
func (p *FilePager) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// ResetStats implements Pager.
func (p *FilePager) ResetStats() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats = Stats{}
}

// Sync implements Pager, flushing the backing file to stable storage.
func (p *FilePager) Sync() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	return p.f.Sync()
}

// Close implements Pager. A pager created by OpenTemp also deletes its
// backing file.
func (p *FilePager) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	p.closed = true
	err := p.f.Close()
	if p.removePath != "" {
		if rmErr := os.Remove(p.removePath); err == nil && rmErr != nil {
			err = rmErr
		}
	}
	return err
}
