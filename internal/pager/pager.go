// Package pager provides the lowest storage layer of bdbms: fixed-size pages
// identified by PageID, backed either by a file on disk or by memory. Every
// read and write is counted, because the paper's access-method claims (E2:
// "up to 30% reduction in I/Os for insertion") are expressed in page I/Os.
//
// File-backed pagers store pages in a checksummed on-disk format (format
// version 1): the file starts with a small header identifying the format,
// and every page is written as a frame carrying a CRC32 of its content plus
// the page ID it was written for. Read verifies both, so bit rot, torn
// writes and misdirected writes surface as a *CorruptPageError instead of
// being served as valid data. Files written by older versions of bdbms
// (raw 4096-byte pages, no header) are upgraded in place on open.
package pager

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// PageSize is the logical page size in bytes: the payload every Read returns
// and every Write accepts, matching common DBMS practice.
const PageSize = 4096

// On-disk format (version 1).
const (
	// FormatVersion is the current on-disk page-format version.
	FormatVersion = 1
	// FileHeaderSize is the size of the file header at offset 0.
	FileHeaderSize = 64
	// PageHeaderSize is the per-page frame header: CRC32 (4 bytes),
	// page ID (8 bytes), format version (1 byte), reserved (3 bytes).
	PageHeaderSize = 16
	// PageFrameSize is the on-disk footprint of one page.
	PageFrameSize = PageHeaderSize + PageSize
)

// fileMagic identifies a version-1 bdbms page file.
var fileMagic = [8]byte{'b', 'd', 'b', 'm', 's', 'p', 'g', '1'}

// FrameOffset returns the file offset of page id's frame in the version-1
// format. Exported so fault-injection and corruption tests can reach into a
// data file byte-exactly.
func FrameOffset(id PageID) int64 {
	return FileHeaderSize + int64(id)*PageFrameSize
}

// PageID identifies a page within a pager. IDs are dense and start at 0.
type PageID uint64

// InvalidPageID is a sentinel for "no page".
const InvalidPageID = PageID(^uint64(0))

// Errors returned by pagers.
var (
	// ErrPageNotFound is returned when reading a page that was never allocated.
	ErrPageNotFound = errors.New("pager: page not found")
	// ErrClosed is returned when using a pager after Close.
	ErrClosed = errors.New("pager: closed")
	// ErrPageCorrupt is the sentinel wrapped by every *CorruptPageError;
	// errors.Is(err, ErrPageCorrupt) identifies checksum, page-ID and
	// format violations detected on read.
	ErrPageCorrupt = errors.New("pager: page corrupt")
	// ErrSyncPoisoned marks a pager whose Sync failed at least once. fsync
	// gives no second chances: after a failure the kernel may have dropped
	// the dirty data, so later syncs returning nil would be a lie. The
	// pager stays poisoned until the process re-opens the file.
	ErrSyncPoisoned = errors.New("pager: sync previously failed; durability cannot be trusted")
)

// CorruptPageError reports a page whose on-disk frame failed verification.
// It unwraps to ErrPageCorrupt.
type CorruptPageError struct {
	// Path is the backing file ("" for anonymous temp files).
	Path string
	// Page is the page whose frame failed verification.
	Page PageID
	// Reason says which check failed (checksum, page-ID stamp, version).
	Reason string
}

func (e *CorruptPageError) Error() string {
	return fmt.Sprintf("pager: page %d of %s corrupt: %s", e.Page, e.Path, e.Reason)
}

// Unwrap lets errors.Is(err, ErrPageCorrupt) match.
func (e *CorruptPageError) Unwrap() error { return ErrPageCorrupt }

// Stats counts physical page accesses.
type Stats struct {
	// Reads is the number of page reads served by the backing store.
	Reads uint64
	// Writes is the number of page writes to the backing store.
	Writes uint64
	// Allocs is the number of pages allocated.
	Allocs uint64
}

// Pager is the page-storage abstraction used by the heap, the WAL and the
// disk-resident access methods.
type Pager interface {
	// Allocate reserves a new zeroed page and returns its ID.
	Allocate() (PageID, error)
	// Read copies the content of page id into a fresh buffer of PageSize bytes.
	Read(id PageID) ([]byte, error)
	// Write replaces the content of page id. The buffer must be PageSize long.
	Write(id PageID, data []byte) error
	// NumPages returns the number of allocated pages.
	NumPages() uint64
	// Stats returns a snapshot of the I/O counters.
	Stats() Stats
	// ResetStats zeroes the I/O counters (used between benchmark phases).
	ResetStats()
	// Sync forces written pages to stable storage (no-op for memory pagers).
	Sync() error
	// Close releases resources.
	Close() error
}

// --- in-memory pager --------------------------------------------------------

// MemPager is a Pager backed by process memory. It is the default substrate
// for tests, examples and benchmarks: I/O counts are still tracked so the
// experiments can report "simulated I/Os". Memory cannot rot under us the
// way a disk can, so MemPager carries no checksums.
type MemPager struct {
	mu     sync.Mutex
	pages  [][]byte
	stats  Stats
	closed bool
}

// NewMem returns an empty in-memory pager.
func NewMem() *MemPager { return &MemPager{} }

// Allocate implements Pager.
func (p *MemPager) Allocate() (PageID, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return InvalidPageID, ErrClosed
	}
	p.pages = append(p.pages, make([]byte, PageSize))
	p.stats.Allocs++
	return PageID(len(p.pages) - 1), nil
}

// Read implements Pager.
func (p *MemPager) Read(id PageID) ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, ErrClosed
	}
	if int(id) >= len(p.pages) {
		return nil, fmt.Errorf("%w: %d", ErrPageNotFound, id)
	}
	p.stats.Reads++
	out := make([]byte, PageSize)
	copy(out, p.pages[id])
	return out, nil
}

// Write implements Pager.
func (p *MemPager) Write(id PageID, data []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	if int(id) >= len(p.pages) {
		return fmt.Errorf("%w: %d", ErrPageNotFound, id)
	}
	if len(data) != PageSize {
		return fmt.Errorf("pager: write of %d bytes, want %d", len(data), PageSize)
	}
	p.stats.Writes++
	copy(p.pages[id], data)
	return nil
}

// NumPages implements Pager.
func (p *MemPager) NumPages() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return uint64(len(p.pages))
}

// Stats implements Pager.
func (p *MemPager) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// ResetStats implements Pager.
func (p *MemPager) ResetStats() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats = Stats{}
}

// Sync implements Pager; memory pages have no stable storage to reach.
func (p *MemPager) Sync() error { return nil }

// Close implements Pager.
func (p *MemPager) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
	p.pages = nil
	return nil
}

// --- file pager --------------------------------------------------------------

// FilePager is a Pager backed by a single file in the version-1 checksummed
// format: a FileHeaderSize-byte header, then page i's frame at
// FrameOffset(i). It provides durability for the CLI and the persistence
// tests.
type FilePager struct {
	mu     sync.Mutex
	f      *os.File
	path   string
	n      uint64
	stats  Stats
	closed bool
	// syncErr, once set, poisons every later Sync (see ErrSyncPoisoned).
	syncErr error
	// removePath, when set, is deleted on Close: OpenTemp pagers own their
	// backing file and clean it up when the spill is done.
	removePath string
}

// OpenFile opens (or creates) a file-backed pager at path. A file written
// by a pre-checksum version of bdbms (raw 4096-byte pages) is transparently
// rewritten into the version-1 format via a temp file and an atomic rename
// before being served.
func OpenFile(path string) (*FilePager, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pager: open %s: %w", path, err)
	}
	p, err := initFilePager(f, path)
	if err != nil {
		f.Close()
		return nil, err
	}
	return p, nil
}

// OpenTemp creates a pager over a fresh temporary file in dir (the system
// temp directory when dir is empty). The file is private to this pager and
// is deleted on Close — it is the spill surface used by the executor's
// external sort and hash-aggregation operators, which need scratch space
// that never outlives the query.
func OpenTemp(dir string) (*FilePager, error) {
	f, err := os.CreateTemp(dir, "bdbms-spill-*.tmp")
	if err != nil {
		return nil, fmt.Errorf("pager: open temp spill file: %w", err)
	}
	p, err := initFilePager(f, f.Name())
	if err != nil {
		f.Close()
		os.Remove(f.Name())
		return nil, err
	}
	p.removePath = f.Name()
	return p, nil
}

// initFilePager validates or creates the file header and, when the file
// predates the checksummed format, upgrades it in place.
func initFilePager(f *os.File, path string) (*FilePager, error) {
	info, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("pager: stat %s: %w", path, err)
	}
	size := info.Size()
	if size == 0 {
		if _, err := f.WriteAt(encodeFileHeader(), 0); err != nil {
			return nil, fmt.Errorf("pager: init %s: %w", path, err)
		}
		return &FilePager{f: f, path: path}, nil
	}

	magic := make([]byte, len(fileMagic))
	if _, err := f.ReadAt(magic, 0); err != nil && err != io.EOF && err != io.ErrUnexpectedEOF {
		return nil, fmt.Errorf("pager: read header of %s: %w", path, err)
	}
	if !bytes.Equal(magic, fileMagic[:]) {
		// Distinguish a genuine pre-checksum file (whole raw pages, no
		// header) from a version-1 file whose superblock rotted: a near-miss
		// magic, or a size that does not fit the raw-page layout, means
		// corruption — reinterpreting a framed file as raw pages would feed
		// garbage to every layer above. Fail stop instead of guessing.
		near := 0
		for i := range fileMagic {
			if magic[i] == fileMagic[i] {
				near++
			}
		}
		if near >= len(fileMagic)/2 || size%PageSize != 0 {
			return nil, fmt.Errorf("%w: %s: file header is damaged (magic matches %d/%d bytes)", ErrPageCorrupt, path, near, len(fileMagic))
		}
		// Pre-checksum file: raw 4096-byte pages starting at offset 0.
		upgraded, err := upgradeLegacyFile(f, path, size)
		if err != nil {
			return nil, err
		}
		return upgraded, nil
	}

	header := make([]byte, FileHeaderSize)
	if _, err := f.ReadAt(header, 0); err != nil {
		return nil, fmt.Errorf("pager: %s: truncated file header: %w", path, err)
	}
	if err := checkFileHeader(header, path); err != nil {
		return nil, err
	}
	// A torn final frame (crash mid-append before the page was ever part of
	// durable state) is dropped by rounding the page count down.
	n := uint64(size-FileHeaderSize) / PageFrameSize
	return &FilePager{f: f, path: path, n: n}, nil
}

// encodeFileHeader renders the version-1 file header.
func encodeFileHeader() []byte {
	h := make([]byte, FileHeaderSize)
	copy(h, fileMagic[:])
	h[8] = FormatVersion
	binary.BigEndian.PutUint32(h[9:13], PageSize)
	binary.BigEndian.PutUint32(h[13:17], crc32.ChecksumIEEE(h[:13]))
	return h
}

// checkFileHeader validates a version-1 file header.
func checkFileHeader(h []byte, path string) error {
	if got, want := crc32.ChecksumIEEE(h[:13]), binary.BigEndian.Uint32(h[13:17]); got != want {
		return fmt.Errorf("%w: %s: file header checksum mismatch", ErrPageCorrupt, path)
	}
	if v := h[8]; v != FormatVersion {
		return fmt.Errorf("pager: %s: unsupported page-format version %d (want %d)", path, v, FormatVersion)
	}
	if ps := binary.BigEndian.Uint32(h[9:13]); ps != PageSize {
		return fmt.Errorf("pager: %s: file has page size %d, build uses %d", path, ps, PageSize)
	}
	return nil
}

// upgradeLegacyFile rewrites a pre-checksum data file (raw pages, no
// header) into the version-1 format. The rewrite goes to a sibling temp
// file which is fsynced and atomically renamed over the original, so a
// crash mid-upgrade leaves the legacy file intact.
func upgradeLegacyFile(f *os.File, path string, size int64) (*FilePager, error) {
	n := uint64(size) / PageSize
	tmpPath := path + ".upgrade"
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pager: upgrade %s: %w", path, err)
	}
	fail := func(err error) (*FilePager, error) {
		tmp.Close()
		os.Remove(tmpPath)
		return nil, err
	}
	if _, err := tmp.WriteAt(encodeFileHeader(), 0); err != nil {
		return fail(fmt.Errorf("pager: upgrade %s: %w", path, err))
	}
	page := make([]byte, PageSize)
	for id := uint64(0); id < n; id++ {
		if _, err := f.ReadAt(page, int64(id)*PageSize); err != nil {
			return fail(fmt.Errorf("pager: upgrade %s: read legacy page %d: %w", path, id, err))
		}
		if _, err := tmp.WriteAt(encodeFrame(PageID(id), page), FrameOffset(PageID(id))); err != nil {
			return fail(fmt.Errorf("pager: upgrade %s: write page %d: %w", path, id, err))
		}
	}
	if err := tmp.Sync(); err != nil {
		return fail(fmt.Errorf("pager: upgrade %s: sync: %w", path, err))
	}
	if err := os.Rename(tmpPath, path); err != nil {
		return fail(fmt.Errorf("pager: upgrade %s: %w", path, err))
	}
	syncDir(filepath.Dir(path))
	f.Close()
	tmp.Close()
	nf, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pager: reopen upgraded %s: %w", path, err)
	}
	return &FilePager{f: nf, path: path, n: n}, nil
}

// syncDir fsyncs a directory so a rename inside it is durable. Best-effort:
// some filesystems refuse to fsync directories.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// encodeFrame renders a page frame: header (CRC32, page ID, version) then
// the payload. The CRC covers the page ID, version and reserved bytes as
// well as the payload, so a frame written for one page read back as another
// (a misdirected write) fails verification even if the payload is intact.
func encodeFrame(id PageID, data []byte) []byte {
	frame := make([]byte, PageFrameSize)
	binary.BigEndian.PutUint64(frame[4:12], uint64(id))
	frame[12] = FormatVersion
	copy(frame[PageHeaderSize:], data)
	binary.BigEndian.PutUint32(frame[0:4], crc32.ChecksumIEEE(frame[4:]))
	return frame
}

// verifyFrame checks a frame read for page id and returns its payload.
func verifyFrame(frame []byte, id PageID, path string) ([]byte, error) {
	if got, want := crc32.ChecksumIEEE(frame[4:]), binary.BigEndian.Uint32(frame[0:4]); got != want {
		return nil, &CorruptPageError{Path: path, Page: id, Reason: fmt.Sprintf("checksum mismatch (stored %08x, computed %08x)", want, got)}
	}
	if stored := PageID(binary.BigEndian.Uint64(frame[4:12])); stored != id {
		return nil, &CorruptPageError{Path: path, Page: id, Reason: fmt.Sprintf("frame is stamped for page %d (misdirected write)", stored)}
	}
	if v := frame[12]; v != FormatVersion {
		return nil, &CorruptPageError{Path: path, Page: id, Reason: fmt.Sprintf("unsupported frame version %d", v)}
	}
	return frame[PageHeaderSize:], nil
}

// Path returns the backing file's path.
func (p *FilePager) Path() string { return p.path }

// Allocate implements Pager.
func (p *FilePager) Allocate() (PageID, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return InvalidPageID, ErrClosed
	}
	id := PageID(p.n)
	zero := make([]byte, PageSize)
	if _, err := p.f.WriteAt(encodeFrame(id, zero), FrameOffset(id)); err != nil {
		return InvalidPageID, fmt.Errorf("pager: allocate: %w", err)
	}
	p.n++
	p.stats.Allocs++
	return id, nil
}

// Read implements Pager. The frame's checksum and page-ID stamp are
// verified; violations return a *CorruptPageError wrapping ErrPageCorrupt.
func (p *FilePager) Read(id PageID) ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, ErrClosed
	}
	if uint64(id) >= p.n {
		return nil, fmt.Errorf("%w: %d", ErrPageNotFound, id)
	}
	frame := make([]byte, PageFrameSize)
	if _, err := p.f.ReadAt(frame, FrameOffset(id)); err != nil {
		return nil, fmt.Errorf("pager: read page %d: %w", id, err)
	}
	payload, err := verifyFrame(frame, id, p.path)
	if err != nil {
		return nil, err
	}
	p.stats.Reads++
	return payload, nil
}

// Write implements Pager, stamping the frame header and checksum.
func (p *FilePager) Write(id PageID, data []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	if uint64(id) >= p.n {
		return fmt.Errorf("%w: %d", ErrPageNotFound, id)
	}
	if len(data) != PageSize {
		return fmt.Errorf("pager: write of %d bytes, want %d", len(data), PageSize)
	}
	if _, err := p.f.WriteAt(encodeFrame(id, data), FrameOffset(id)); err != nil {
		return fmt.Errorf("pager: write page %d: %w", id, err)
	}
	p.stats.Writes++
	return nil
}

// tornWrite writes a deliberately torn frame for page id: the header and
// the first keep payload bytes come from data, the rest of the frame keeps
// its previous on-disk content. The checksum in the header covers the full
// new payload, so the resulting frame fails verification — exactly what a
// power cut mid-write leaves behind. Test support for FaultPager.
func (p *FilePager) tornWrite(id PageID, data []byte, keep int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	if uint64(id) >= p.n {
		return fmt.Errorf("%w: %d", ErrPageNotFound, id)
	}
	frame := encodeFrame(id, data)
	if _, err := p.f.WriteAt(frame[:PageHeaderSize+keep], FrameOffset(id)); err != nil {
		return fmt.Errorf("pager: torn write page %d: %w", id, err)
	}
	p.stats.Writes++
	return nil
}

// NumPages implements Pager.
func (p *FilePager) NumPages() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.n
}

// Stats implements Pager.
func (p *FilePager) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// ResetStats implements Pager.
func (p *FilePager) ResetStats() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats = Stats{}
}

// Sync implements Pager, flushing the backing file to stable storage. A
// failed fsync may have dropped dirty pages from the kernel cache, so the
// first failure poisons the pager: every later Sync fails with
// ErrSyncPoisoned instead of pretending the data became durable.
func (p *FilePager) Sync() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	if p.syncErr != nil {
		return fmt.Errorf("%w (first failure: %v)", ErrSyncPoisoned, p.syncErr)
	}
	if err := p.f.Sync(); err != nil {
		p.syncErr = err
		return fmt.Errorf("pager: sync %s: %w", p.path, err)
	}
	return nil
}

// Close implements Pager. A pager created by OpenTemp also deletes its
// backing file.
func (p *FilePager) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	p.closed = true
	err := p.f.Close()
	if p.removePath != "" {
		if rmErr := os.Remove(p.removePath); err == nil && rmErr != nil {
			err = rmErr
		}
	}
	return err
}
