package pager

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func testPagerBasics(t *testing.T, p Pager) {
	t.Helper()
	id0, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	id1, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if id0 == id1 {
		t.Fatal("allocate must return distinct ids")
	}
	if p.NumPages() != 2 {
		t.Fatalf("NumPages = %d, want 2", p.NumPages())
	}

	data := make([]byte, PageSize)
	copy(data, []byte("hello bdbms"))
	if err := p.Write(id1, data); err != nil {
		t.Fatal(err)
	}
	got, err := p.Read(id1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read back mismatch")
	}
	zero, err := p.Read(id0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(zero, make([]byte, PageSize)) {
		t.Fatal("fresh page must be zeroed")
	}

	if _, err := p.Read(PageID(99)); err == nil {
		t.Error("reading unallocated page should fail")
	}
	if err := p.Write(PageID(99), data); err == nil {
		t.Error("writing unallocated page should fail")
	}
	if err := p.Write(id0, []byte("short")); err == nil {
		t.Error("short write should fail")
	}

	st := p.Stats()
	if st.Reads < 2 || st.Writes < 1 || st.Allocs != 2 {
		t.Errorf("stats = %+v", st)
	}
	p.ResetStats()
	if s := p.Stats(); s.Reads != 0 || s.Writes != 0 {
		t.Errorf("ResetStats left %+v", s)
	}
}

func TestMemPager(t *testing.T) {
	p := NewMem()
	testPagerBasics(t, p)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Allocate(); err == nil {
		t.Error("allocate after close should fail")
	}
	if _, err := p.Read(0); err == nil {
		t.Error("read after close should fail")
	}
}

func TestFilePager(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	p, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	testPagerBasics(t, p)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	// Re-open: pages and contents must persist.
	p2, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if p2.NumPages() != 2 {
		t.Fatalf("reopened NumPages = %d, want 2", p2.NumPages())
	}
	got, err := p2.Read(1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(got, []byte("hello bdbms")) {
		t.Error("persisted page content lost")
	}
}

func TestMemPagerIsolation(t *testing.T) {
	p := NewMem()
	id, _ := p.Allocate()
	data := make([]byte, PageSize)
	data[0] = 42
	if err := p.Write(id, data); err != nil {
		t.Fatal(err)
	}
	got, _ := p.Read(id)
	got[0] = 99 // mutating the returned buffer must not affect the store
	again, _ := p.Read(id)
	if again[0] != 42 {
		t.Error("Read must return an isolated copy")
	}
}

func TestOpenTempCleansUp(t *testing.T) {
	dir := t.TempDir()
	p, err := OpenTemp(dir)
	if err != nil {
		t.Fatal(err)
	}
	id, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, PageSize)
	data[7] = 7
	if err := p.Write(id, data); err != nil {
		t.Fatal(err)
	}
	got, err := p.Read(id)
	if err != nil || got[7] != 7 {
		t.Fatalf("read back: %v %v", got[7], err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) != 1 {
		t.Fatalf("spill file missing before Close: %v %v", entries, err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err = os.ReadDir(dir)
	if err != nil || len(entries) != 0 {
		t.Fatalf("spill file not removed on Close: %v %v", entries, err)
	}
}
