package pager

// This file is the fault-injection side of the package: FaultPager wraps
// any Pager and injects the failures a real filesystem produces — EIO,
// ENOSPC, torn writes, fsync failures, and post-fsync data loss — at exact
// operation counts, so tests can drive every write and sync site in the
// engine through every fault class. It lives here rather than in a _test
// file because the fault matrix spans packages: buffer, exec, core and the
// root-level acceptance tests all build harnesses on it.

import (
	"errors"
	"fmt"
	"sync"
)

// Injected fault errors. They mirror the errno a real filesystem would
// return; tests match on them with errors.Is.
var (
	// ErrInjectedEIO stands in for a device-level I/O error.
	ErrInjectedEIO = errors.New("pager: injected I/O error (EIO)")
	// ErrInjectedENOSPC stands in for a full disk.
	ErrInjectedENOSPC = errors.New("pager: injected no space left on device (ENOSPC)")
	// ErrInjectedSyncFailure stands in for a failed fsync.
	ErrInjectedSyncFailure = errors.New("pager: injected fsync failure")
)

// FaultPager wraps an inner Pager and injects storage faults. All fault
// arms use countdown semantics: Fail*After(n, ...) lets n more operations
// of that kind succeed, then every later one fails until the arm is
// cleared. That models the two realistic shapes — a one-off EIO (clear the
// arm after it trips) and a persistently full or dead disk (leave it).
//
// The zero fault configuration is transparent: every call is forwarded to
// the inner pager unchanged.
type FaultPager struct {
	mu    sync.Mutex
	inner Pager

	writeCountdown int // -1: disarmed
	writeErr       error
	tornKeep       int // with a write fault armed: write this many payload bytes before failing

	syncCountdown int // -1: disarmed
	syncPoisoned  error

	allocCountdown int // -1: disarmed
	allocErr       error

	// trackUnsynced, when on, snapshots each page's pre-write content the
	// first time it is written after a successful Sync, so LoseUnsynced can
	// rewind to the last-synced state — the on-disk picture after a crash
	// that loses the page cache.
	trackUnsynced bool
	unsynced      map[PageID][]byte

	// writes and syncs count operations that reached this layer, giving
	// matrix tests a golden count to iterate over.
	writes int
	syncs  int
}

// NewFaultPager wraps inner with all fault arms disarmed.
func NewFaultPager(inner Pager) *FaultPager {
	return &FaultPager{
		inner:          inner,
		writeCountdown: -1,
		syncCountdown:  -1,
		allocCountdown: -1,
	}
}

// FailWriteAfter lets n more writes succeed, then fails every later write
// with err (use ErrInjectedEIO or ErrInjectedENOSPC). n < 0 disarms.
func (p *FaultPager) FailWriteAfter(n int, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.writeCountdown = n
	p.writeErr = err
	p.tornKeep = 0
}

// TearWriteAfter lets n more writes succeed; the next write is torn — the
// first keep payload bytes hit the disk under a header checksummed for the
// full new page, the rest of the frame keeps its old content — and returns
// ErrInjectedEIO, as does every write after it. Requires the inner pager to
// be a *FilePager (tearing needs sub-frame control of the physical file).
func (p *FaultPager) TearWriteAfter(n, keep int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.writeCountdown = n
	p.writeErr = ErrInjectedEIO
	p.tornKeep = keep
}

// FailSyncAfter lets n more syncs succeed, then fails every later Sync
// with ErrInjectedSyncFailure. Like a real pager, a FaultPager whose sync
// failed is poisoned: clearing the arm does not un-fail Sync, because the
// inner pager's dirty data may be gone. n < 0 disarms (but does not clear
// poisoning).
func (p *FaultPager) FailSyncAfter(n int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.syncCountdown = n
}

// FailAllocateAfter lets n more allocations succeed, then fails every later
// Allocate with err. n < 0 disarms.
func (p *FaultPager) FailAllocateAfter(n int, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.allocCountdown = n
	p.allocErr = err
}

// TrackUnsynced starts recording pre-write page images so LoseUnsynced can
// rewind them.
func (p *FaultPager) TrackUnsynced() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.trackUnsynced = true
	p.unsynced = make(map[PageID][]byte)
}

// LoseUnsynced rewinds every page written since the last successful Sync to
// its pre-write content: the state a crash leaves when the kernel never got
// the dirty pages to the platter. Pages allocated since the last sync keep
// their slot (file length is not rewound) but lose any content written into
// them. Requires TrackUnsynced.
func (p *FaultPager) LoseUnsynced() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.trackUnsynced {
		return errors.New("pager: LoseUnsynced without TrackUnsynced")
	}
	for id, old := range p.unsynced {
		if old == nil {
			old = make([]byte, PageSize) // page allocated (zeroed) after the last sync
		}
		if err := p.inner.Write(id, old); err != nil {
			return fmt.Errorf("pager: rewind page %d: %w", id, err)
		}
	}
	p.unsynced = make(map[PageID][]byte)
	return nil
}

// WriteCount returns how many Write calls reached this layer (successful or
// not), for building golden operation counts.
func (p *FaultPager) WriteCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.writes
}

// SyncCount returns how many Sync calls reached this layer.
func (p *FaultPager) SyncCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.syncs
}

// Allocate implements Pager.
func (p *FaultPager) Allocate() (PageID, error) {
	p.mu.Lock()
	if p.allocCountdown == 0 {
		err := p.allocErr
		p.mu.Unlock()
		return InvalidPageID, err
	}
	if p.allocCountdown > 0 {
		p.allocCountdown--
	}
	track := p.trackUnsynced
	p.mu.Unlock()
	id, err := p.inner.Allocate()
	if err == nil && track {
		p.mu.Lock()
		if p.trackUnsynced {
			if _, seen := p.unsynced[id]; !seen {
				p.unsynced[id] = nil // nil marks "was freshly allocated": rewinds to zero
			}
		}
		p.mu.Unlock()
	}
	return id, err
}

// Read implements Pager, passing straight through.
func (p *FaultPager) Read(id PageID) ([]byte, error) { return p.inner.Read(id) }

// Write implements Pager, applying the armed write fault.
func (p *FaultPager) Write(id PageID, data []byte) error {
	p.mu.Lock()
	p.writes++
	fire := p.writeCountdown == 0
	if p.writeCountdown > 0 {
		p.writeCountdown--
	}
	err, tornKeep := p.writeErr, p.tornKeep
	track := p.trackUnsynced
	p.mu.Unlock()

	if track && !fire {
		p.snapshotBeforeWrite(id)
	}
	if fire {
		if tornKeep > 0 {
			if track {
				p.snapshotBeforeWrite(id)
			}
			fp, ok := p.inner.(*FilePager)
			if !ok {
				return fmt.Errorf("pager: torn-write injection needs a *FilePager inner, have %T", p.inner)
			}
			if werr := fp.tornWrite(id, data, tornKeep); werr != nil {
				return werr
			}
		}
		return err
	}
	return p.inner.Write(id, data)
}

// snapshotBeforeWrite records page id's current content once per sync epoch.
func (p *FaultPager) snapshotBeforeWrite(id PageID) {
	p.mu.Lock()
	_, seen := p.unsynced[id]
	p.mu.Unlock()
	if seen {
		return
	}
	old, err := p.inner.Read(id)
	if err != nil {
		return // unreadable (e.g. already corrupt): nothing to rewind to
	}
	p.mu.Lock()
	if p.trackUnsynced {
		if _, dup := p.unsynced[id]; !dup {
			p.unsynced[id] = old
		}
	}
	p.mu.Unlock()
}

// NumPages implements Pager.
func (p *FaultPager) NumPages() uint64 { return p.inner.NumPages() }

// Stats implements Pager.
func (p *FaultPager) Stats() Stats { return p.inner.Stats() }

// ResetStats implements Pager.
func (p *FaultPager) ResetStats() { p.inner.ResetStats() }

// Sync implements Pager, applying the armed sync fault. A FaultPager whose
// Sync has failed once is poisoned exactly like a FilePager: later Syncs
// keep failing (wrapping ErrSyncPoisoned) even after the arm is cleared,
// because nothing can prove the inner pager's lost dirty data came back.
func (p *FaultPager) Sync() error {
	p.mu.Lock()
	p.syncs++
	if p.syncPoisoned != nil {
		err := p.syncPoisoned
		p.mu.Unlock()
		return fmt.Errorf("%w (first failure: %v)", ErrSyncPoisoned, err)
	}
	if p.syncCountdown == 0 {
		p.syncPoisoned = ErrInjectedSyncFailure
		p.mu.Unlock()
		return ErrInjectedSyncFailure
	}
	if p.syncCountdown > 0 {
		p.syncCountdown--
	}
	p.mu.Unlock()
	if err := p.inner.Sync(); err != nil {
		p.mu.Lock()
		p.syncPoisoned = err
		p.mu.Unlock()
		return err
	}
	p.mu.Lock()
	if p.trackUnsynced {
		p.unsynced = make(map[PageID][]byte)
	}
	p.mu.Unlock()
	return nil
}

// Close implements Pager.
func (p *FaultPager) Close() error { return p.inner.Close() }
