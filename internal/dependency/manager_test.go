package dependency

import (
	"errors"
	"fmt"
	"testing"

	"bdbms/internal/biogen"
	"bdbms/internal/catalog"
	"bdbms/internal/storage"
	"bdbms/internal/value"
)

// buildFigure9 builds the Gene / Protein / GeneMatching tables of Figure 9
// and returns the engine plus the populated tables.
func buildFigure9(t *testing.T) (*storage.Engine, *storage.Table, *storage.Table, *storage.Table) {
	t.Helper()
	eng := storage.NewMemoryEngine()
	gene, err := eng.CreateTable(&catalog.Schema{
		Name: "Gene",
		Columns: []catalog.Column{
			{Name: "GID", Type: value.Text, NotNull: true},
			{Name: "GName", Type: value.Text},
			{Name: "GSequence", Type: value.Sequence},
		},
		PrimaryKey: "GID",
	})
	if err != nil {
		t.Fatal(err)
	}
	protein, err := eng.CreateTable(&catalog.Schema{
		Name: "Protein",
		Columns: []catalog.Column{
			{Name: "PName", Type: value.Text},
			{Name: "GID", Type: value.Text},
			{Name: "PSequence", Type: value.Sequence},
			{Name: "PFunction", Type: value.Text},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	matching, err := eng.CreateTable(&catalog.Schema{
		Name: "GeneMatching",
		Columns: []catalog.Column{
			{Name: "Gene1", Type: value.Sequence},
			{Name: "Gene2", Type: value.Sequence},
			{Name: "Evalue", Type: value.Float},
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	gen := biogen.New(7)
	genes := gen.Genes(3, 60)
	names := []string{"mraW", "ftsI", "yabP"}
	for i, g := range genes {
		if _, err := gene.Insert(value.Row{
			value.NewText(g.ID), value.NewText(names[i]), value.NewSequence(g.Sequence),
		}); err != nil {
			t.Fatal(err)
		}
		if _, err := protein.Insert(value.Row{
			value.NewText("p" + names[i]), value.NewText(g.ID),
			value.NewSequence(biogen.Translate(g.Sequence)),
			value.NewText("Hypothetical protein"),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := protein.CreateIndex("GID"); err != nil {
		t.Fatal(err)
	}
	if _, err := matching.Insert(value.Row{
		value.NewSequence(genes[0].Sequence), value.NewSequence(genes[1].Sequence),
		value.NewFloat(biogen.EValue(biogen.Similarity(genes[0].Sequence, genes[1].Sequence), 60)),
	}); err != nil {
		t.Fatal(err)
	}
	return eng, gene, protein, matching
}

// addPaperRules registers rules 1-3 of the paper against the engine.
func addPaperRules(t *testing.T, m *Manager) {
	t.Helper()
	// Rule 1: Gene.GSequence -> Protein.PSequence via executable tool P.
	if _, err := m.AddRule(Rule{
		Sources: []ColumnRef{{Table: "Gene", Column: "GSequence"}},
		Targets: []ColumnRef{{Table: "Protein", Column: "PSequence"}},
		Proc: Procedure{
			Name: "Prediction tool P", Executable: true, Invertible: false,
			Apply: func(in []value.Value) (value.Value, error) {
				if len(in) != 1 {
					return value.Value{}, errors.New("want one input")
				}
				return value.NewSequence(biogen.Translate(in[0].Text())), nil
			},
		},
		Link: &Link{SourceColumn: "GID", TargetColumn: "GID"},
	}); err != nil {
		t.Fatal(err)
	}
	// Rule 2: Protein.PSequence -> Protein.PFunction via non-executable lab experiment.
	if _, err := m.AddRule(Rule{
		Sources: []ColumnRef{{Table: "Protein", Column: "PSequence"}},
		Targets: []ColumnRef{{Table: "Protein", Column: "PFunction"}},
		Proc:    Procedure{Name: "Lab experiment", Executable: false, Invertible: false},
	}); err != nil {
		t.Fatal(err)
	}
	// Rule 3: GeneMatching.Gene1, Gene2 -> Evalue via executable BLAST.
	if _, err := m.AddRule(Rule{
		Sources: []ColumnRef{{Table: "GeneMatching", Column: "Gene1"}, {Table: "GeneMatching", Column: "Gene2"}},
		Targets: []ColumnRef{{Table: "GeneMatching", Column: "Evalue"}},
		Proc: Procedure{
			Name: "BLAST-2.2.15", Executable: true, Invertible: false,
			Apply: func(in []value.Value) (value.Value, error) {
				if len(in) != 2 {
					return value.Value{}, fmt.Errorf("want two inputs, got %d", len(in))
				}
				sim := biogen.Similarity(in[0].Text(), in[1].Text())
				return value.NewFloat(biogen.EValue(sim, len(in[0].Text()))), nil
			},
		},
	}); err != nil {
		t.Fatal(err)
	}
}

func TestAddRuleValidatesColumns(t *testing.T) {
	eng, _, _, _ := buildFigure9(t)
	m := NewManager(eng)
	if _, err := m.AddRule(Rule{
		Sources: []ColumnRef{{Table: "Gene", Column: "Missing"}},
		Targets: []ColumnRef{{Table: "Protein", Column: "PSequence"}},
		Proc:    Procedure{Name: "x"},
	}); err == nil {
		t.Error("unknown source column should fail")
	}
	if _, err := m.AddRule(Rule{
		Sources: []ColumnRef{{Table: "NoTable", Column: "c"}},
		Targets: []ColumnRef{{Table: "Protein", Column: "PSequence"}},
		Proc:    Procedure{Name: "x"},
	}); err == nil {
		t.Error("unknown table should fail")
	}
	if _, err := m.AddRule(Rule{
		Sources: []ColumnRef{{Table: "Gene", Column: "GSequence"}},
		Targets: []ColumnRef{{Table: "Protein", Column: "PSequence"}},
		Proc:    Procedure{Name: "x"},
		Link:    &Link{SourceColumn: "GID", TargetColumn: "Nope"},
	}); err == nil {
		t.Error("unknown link column should fail")
	}
}

func TestCascadeFigure9(t *testing.T) {
	eng, gene, protein, _ := buildFigure9(t)
	m := NewManager(eng)
	addPaperRules(t, m)

	// Modify the first gene's sequence (JW0000, protein row 1).
	oldProtSeq, _ := protein.GetColumn(1, "PSequence")
	newGeneSeq := biogen.New(99).DNASequence(60)
	if err := gene.UpdateColumn(1, "GSequence", value.NewSequence(newGeneSeq)); err != nil {
		t.Fatal(err)
	}
	events, err := m.OnCellModified("Gene", 1, "GSequence")
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("events = %v", events)
	}

	// PSequence was recomputed automatically (executable rule) ...
	gotSeq, _ := protein.GetColumn(1, "PSequence")
	if gotSeq.Text() != biogen.Translate(newGeneSeq) {
		t.Errorf("PSequence not recomputed: %q", gotSeq.Text())
	}
	if gotSeq.Text() == oldProtSeq.Text() {
		t.Error("PSequence should have changed")
	}
	if m.IsOutdated("Protein", 1, "PSequence") {
		t.Error("recomputed cell must not be outdated")
	}
	// ... and PFunction was marked outdated (non-executable lab experiment),
	// exactly the bitmap of Figure 10.
	if !m.IsOutdated("Protein", 1, "PFunction") {
		t.Error("PFunction should be outdated")
	}
	// Other proteins untouched.
	if m.IsOutdated("Protein", 2, "PFunction") || m.IsOutdated("Protein", 2, "PSequence") {
		t.Error("unrelated rows must not be affected")
	}
	// Events recorded both a recomputation and a mark.
	var recomputed, marked int
	for _, e := range m.Events() {
		if e.Recomputed {
			recomputed++
		} else {
			marked++
		}
	}
	if recomputed != 1 || marked != 1 {
		t.Errorf("recomputed=%d marked=%d", recomputed, marked)
	}
	// The outdated-cell report includes Protein.PFunction row 1.
	cells := m.OutdatedCells()
	if len(cells) != 1 || cells[0].Table != "Protein" || cells[0].RowID != 1 {
		t.Errorf("outdated cells = %v", cells)
	}
	bodies := m.OutdatedAnnotationBodies()
	if len(bodies) != 1 {
		t.Fatalf("bodies = %v", bodies)
	}
	for _, body := range bodies {
		if body == "" || !contains(body, "PFunction") {
			t.Errorf("annotation body = %q", body)
		}
	}

	// Revalidation clears the mark (Section 5, "Validating outdated data").
	if err := m.Revalidate("Protein", 1, "PFunction"); err != nil {
		t.Fatal(err)
	}
	if m.IsOutdated("Protein", 1, "PFunction") {
		t.Error("revalidated cell still outdated")
	}
	if err := m.Revalidate("Protein", 1, "Nope"); err == nil {
		t.Error("revalidate of unknown column should fail")
	}
	if err := m.Revalidate("NoTable", 1, "x"); err == nil {
		t.Error("revalidate of unknown table should fail")
	}
}

func TestCascadeExecutableRule3(t *testing.T) {
	eng, _, _, matching := buildFigure9(t)
	m := NewManager(eng)
	addPaperRules(t, m)

	// Changing Gene1 re-evaluates Evalue automatically (Rule 3 is executable).
	oldEval, _ := matching.GetColumn(1, "Evalue")
	if err := matching.UpdateColumn(1, "Gene1", value.NewSequence(biogen.New(5).DNASequence(60))); err != nil {
		t.Fatal(err)
	}
	events, err := m.OnCellModified("GeneMatching", 1, "Gene1")
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || !events[0].Recomputed {
		t.Fatalf("events = %+v", events)
	}
	newEval, _ := matching.GetColumn(1, "Evalue")
	if newEval.Float() == oldEval.Float() {
		t.Log("E-value unchanged (possible but unlikely); still recomputed")
	}
	if m.IsOutdated("GeneMatching", 1, "Evalue") {
		t.Error("recomputed Evalue must not be outdated")
	}
}

func TestCascadeUnknownColumnNoRules(t *testing.T) {
	eng, _, _, _ := buildFigure9(t)
	m := NewManager(eng)
	addPaperRules(t, m)
	events, err := m.OnCellModified("Gene", 1, "GName")
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 0 {
		t.Errorf("no rules reference GName; events = %v", events)
	}
}

func TestManagerBitmapAccessors(t *testing.T) {
	eng, _, _, _ := buildFigure9(t)
	m := NewManager(eng)
	b := m.Bitmap("Protein")
	if b.NumCols() != 4 {
		t.Errorf("bitmap cols = %d", b.NumCols())
	}
	if m.Bitmap("Protein") != b {
		t.Error("Bitmap should be cached per table")
	}
	if m.IsOutdated("NoSuchTable", 1, "x") || m.IsOutdated("Protein", 1, "NoCol") {
		t.Error("unknown table/column should report not outdated")
	}
	// Bitmap for an unknown table still works (degenerate, 1 column).
	if m.Bitmap("Ghost").NumCols() != 1 {
		t.Error("ghost table bitmap")
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		(len(s) > 0 && indexOf(s, sub) >= 0))
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestBitmapAny(t *testing.T) {
	bm := NewBitmap("T", 3)
	if bm.Any() {
		t.Error("fresh bitmap reports Any")
	}
	bm.Set(5, 1)
	if !bm.Any() {
		t.Error("bitmap with a set bit reports !Any")
	}
	bm.Clear(5, 1)
	if bm.Any() {
		t.Error("cleared bitmap still reports Any")
	}
}
