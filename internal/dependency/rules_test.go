package dependency

import (
	"errors"
	"strings"
	"testing"
)

var (
	geneSeq    = ColumnRef{Table: "Gene", Column: "GSequence"}
	protSeq    = ColumnRef{Table: "Protein", Column: "PSequence"}
	protFunc   = ColumnRef{Table: "Protein", Column: "PFunction"}
	matchG1    = ColumnRef{Table: "GeneMatching", Column: "Gene1"}
	matchG2    = ColumnRef{Table: "GeneMatching", Column: "Gene2"}
	matchEval  = ColumnRef{Table: "GeneMatching", Column: "Evalue"}
	predToolP  = Procedure{Name: "Prediction tool P", Executable: true, Invertible: false}
	labExp     = Procedure{Name: "Lab experiment", Executable: false, Invertible: false}
	blastProc  = Procedure{Name: "BLAST-2.2.15", Executable: true, Invertible: false}
	paperRule1 = Rule{Sources: []ColumnRef{geneSeq}, Targets: []ColumnRef{protSeq}, Proc: predToolP}
	paperRule2 = Rule{Sources: []ColumnRef{protSeq}, Targets: []ColumnRef{protFunc}, Proc: labExp}
	paperRule3 = Rule{Sources: []ColumnRef{matchG1, matchG2}, Targets: []ColumnRef{matchEval}, Proc: blastProc}
)

func paperRuleSet(t *testing.T) *RuleSet {
	t.Helper()
	rs := NewRuleSet()
	for _, r := range []Rule{paperRule1, paperRule2, paperRule3} {
		if _, err := rs.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	return rs
}

func TestColumnRef(t *testing.T) {
	if !geneSeq.Equal(ColumnRef{Table: "gene", Column: "gsequence"}) {
		t.Error("Equal should be case-insensitive")
	}
	if geneSeq.String() != "Gene.GSequence" {
		t.Errorf("String = %s", geneSeq.String())
	}
}

func TestAddRuleValidation(t *testing.T) {
	rs := NewRuleSet()
	if _, err := rs.Add(Rule{Targets: []ColumnRef{protSeq}, Proc: predToolP}); !errors.Is(err, ErrInvalidRule) {
		t.Errorf("no sources: %v", err)
	}
	if _, err := rs.Add(Rule{Sources: []ColumnRef{geneSeq}, Proc: predToolP}); !errors.Is(err, ErrInvalidRule) {
		t.Errorf("no targets: %v", err)
	}
	if _, err := rs.Add(Rule{Sources: []ColumnRef{geneSeq}, Targets: []ColumnRef{protSeq}, Proc: Procedure{}}); !errors.Is(err, ErrInvalidRule) {
		t.Errorf("no procedure name: %v", err)
	}
	r, err := rs.Add(paperRule1)
	if err != nil {
		t.Fatal(err)
	}
	if r.ID != 1 {
		t.Errorf("ID = %d", r.ID)
	}
	if r.String() == "" || !strings.Contains(r.String(), "non-invertible") {
		t.Errorf("String = %s", r.String())
	}
}

func TestConflictDetection(t *testing.T) {
	rs := NewRuleSet()
	rs.Add(paperRule1)
	// Same target, different procedure: conflict.
	other := Rule{Sources: []ColumnRef{geneSeq}, Targets: []ColumnRef{protSeq},
		Proc: Procedure{Name: "Other tool", Executable: true}}
	if _, err := rs.Add(other); !errors.Is(err, ErrConflict) {
		t.Errorf("conflict: %v", err)
	}
	// Same target, same procedure name: allowed (e.g. an extra source).
	same := Rule{Sources: []ColumnRef{geneSeq}, Targets: []ColumnRef{protSeq}, Proc: predToolP}
	if _, err := rs.Add(same); err != nil {
		t.Errorf("same procedure should be allowed: %v", err)
	}
}

func TestRulesFromTo(t *testing.T) {
	rs := paperRuleSet(t)
	if got := rs.RulesFrom(geneSeq); len(got) != 1 || got[0].Proc.Name != predToolP.Name {
		t.Errorf("RulesFrom(GSequence) = %v", got)
	}
	if got := rs.RulesTo(protFunc); len(got) != 1 || got[0].Proc.Name != labExp.Name {
		t.Errorf("RulesTo(PFunction) = %v", got)
	}
	if got := rs.RulesFrom(matchEval); len(got) != 0 {
		t.Errorf("RulesFrom(Evalue) = %v", got)
	}
	if len(rs.Rules()) != 3 {
		t.Errorf("Rules() = %d", len(rs.Rules()))
	}
}

func TestAttributeClosure(t *testing.T) {
	rs := paperRuleSet(t)
	closure := rs.AttributeClosure(geneSeq)
	// GSequence+ = {GSequence, PSequence, PFunction}
	if len(closure) != 3 {
		t.Fatalf("closure = %v", closure)
	}
	want := map[string]bool{"gene.gsequence": true, "protein.psequence": true, "protein.pfunction": true}
	for _, c := range closure {
		if !want[c.key()] {
			t.Errorf("unexpected member %s", c)
		}
	}
	// Closure of Gene1 alone does not include Evalue (Rule 3 needs both sources).
	c1 := rs.AttributeClosure(matchG1)
	if len(c1) != 1 {
		t.Errorf("closure(Gene1) = %v", c1)
	}
	c12 := rs.AttributeClosure(matchG1, matchG2)
	if len(c12) != 3 {
		t.Errorf("closure(Gene1,Gene2) = %v", c12)
	}
}

func TestProcedureClosure(t *testing.T) {
	rs := paperRuleSet(t)
	// Everything depending on prediction tool P: PSequence and (transitively) PFunction.
	got := rs.ProcedureClosure("prediction tool p")
	if len(got) != 2 {
		t.Fatalf("procedure closure = %v", got)
	}
	if !got[0].Equal(protFunc) && !got[1].Equal(protFunc) {
		t.Errorf("PFunction missing from closure: %v", got)
	}
	// BLAST's closure is just Evalue.
	got = rs.ProcedureClosure("BLAST-2.2.15")
	if len(got) != 1 || !got[0].Equal(matchEval) {
		t.Errorf("BLAST closure = %v", got)
	}
	if rs.ProcedureClosure("unknown") != nil {
		t.Error("unknown procedure closure should be nil")
	}
}

func TestDeriveRulesPaperRule4(t *testing.T) {
	rs := paperRuleSet(t)
	derived := rs.DeriveRules(3)
	if len(derived) == 0 {
		t.Fatal("expected at least one derived rule")
	}
	var rule4 *Rule
	for i, d := range derived {
		if len(d.Sources) == 1 && d.Sources[0].Equal(geneSeq) &&
			len(d.Targets) == 1 && d.Targets[0].Equal(protFunc) {
			rule4 = &derived[i]
		}
	}
	if rule4 == nil {
		t.Fatalf("Rule 4 (GSequence -> PFunction) not derived: %v", derived)
	}
	// The chain P + lab experiment is non-executable and non-invertible.
	if rule4.Proc.Executable {
		t.Error("derived chain must be non-executable (lab experiment step)")
	}
	if rule4.Proc.Invertible {
		t.Error("derived chain must be non-invertible")
	}
	if !strings.Contains(rule4.Proc.Name, predToolP.Name) || !strings.Contains(rule4.Proc.Name, labExp.Name) {
		t.Errorf("chain name = %q", rule4.Proc.Name)
	}
	if !rule4.Derived {
		t.Error("derived flag not set")
	}
	// Deriving again must not duplicate.
	if again := rs.DeriveRules(3); len(again) != 0 {
		t.Errorf("second derivation added %d rules", len(again))
	}
}

func TestDetectCycles(t *testing.T) {
	rs := paperRuleSet(t)
	if got := rs.DetectCycles(); len(got) != 0 {
		t.Errorf("acyclic graph reported cycle: %v", got)
	}
	// Add PFunction -> GSequence to close a cycle.
	rs.Add(Rule{Sources: []ColumnRef{protFunc}, Targets: []ColumnRef{geneSeq},
		Proc: Procedure{Name: "Back-annotation"}})
	cyc := rs.DetectCycles()
	if len(cyc) < 3 {
		t.Fatalf("cycle members = %v", cyc)
	}
	keys := map[string]bool{}
	for _, c := range cyc {
		keys[c.key()] = true
	}
	for _, want := range []ColumnRef{geneSeq, protSeq, protFunc} {
		if !keys[want.key()] {
			t.Errorf("cycle should include %s", want)
		}
	}
}

func TestBitmapBasics(t *testing.T) {
	b := NewBitmap("Protein", 4)
	if b.Table() != "Protein" || b.NumCols() != 4 {
		t.Error("metadata wrong")
	}
	b.Set(2, 3)
	b.Set(3, 3)
	b.Set(2, 0)
	if !b.IsSet(2, 3) || b.IsSet(1, 3) || b.IsSet(2, 1) {
		t.Error("IsSet wrong")
	}
	if !b.RowOutdated(2) || b.RowOutdated(5) {
		t.Error("RowOutdated wrong")
	}
	if b.Count() != 3 {
		t.Errorf("Count = %d", b.Count())
	}
	cells := b.OutdatedCells()
	if len(cells) != 3 || cells[0] != (Cell{Table: "Protein", RowID: 2, Col: 0}) {
		t.Errorf("cells = %v", cells)
	}
	b.Clear(2, 3)
	if b.IsSet(2, 3) || b.Count() != 2 {
		t.Error("Clear failed")
	}
	b.Clear(2, 0)
	if b.RowOutdated(2) {
		t.Error("row should be clean after clearing all its bits")
	}
	// Out-of-range coordinates are ignored.
	b.Set(1, 99)
	b.Set(1, -1)
	b.Clear(1, 99)
	if b.IsSet(1, 99) || b.Count() != 1 {
		t.Error("out-of-range handling wrong")
	}
	// Zero column count is clamped.
	if NewBitmap("X", 0).NumCols() != 1 {
		t.Error("NumCols clamp failed")
	}
}

func TestBitmapCompression(t *testing.T) {
	// A mostly-zero bitmap (the common case: few outdated cells) compresses
	// far better than its raw form — the premise of using RLE in Figure 10.
	b := NewBitmap("Protein", 4)
	for row := int64(100); row < 110; row++ {
		b.Set(row, 3)
	}
	const maxRow = 10000
	raw := b.RawSize(maxRow)
	compressed := b.CompressedSize(maxRow)
	if raw != 40000 {
		t.Errorf("raw = %d", raw)
	}
	if compressed >= raw/10 {
		t.Errorf("compressed %d not much smaller than raw %d", compressed, raw)
	}
	if b.CompressionRatio(maxRow) < 10 {
		t.Errorf("ratio = %.1f", b.CompressionRatio(maxRow))
	}
	if NewBitmap("Empty", 2).CompressionRatio(0) != 1 {
		t.Error("empty bitmap ratio should be 1")
	}
}
