package dependency

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"

	"bdbms/internal/catalog"
	"bdbms/internal/storage"
	"bdbms/internal/undo"
	"bdbms/internal/value"
	"bdbms/internal/wal"
)

// Event describes what the cascade did to one cell.
type Event struct {
	// Cell is the affected target cell.
	Cell Cell
	// Rule is the rule that linked the modified source to this cell.
	Rule Rule
	// Recomputed is true when the cell was automatically re-evaluated
	// (executable procedure); false when it was only marked outdated.
	Recomputed bool
}

// Logger is where the manager appends outdated-mark WAL records. *wal.Log
// satisfies it; nil disables logging.
type Logger interface {
	Append(kind wal.Kind, table string, payload []byte) (uint64, error)
}

// Manager performs instance-level dependency tracking over a storage engine.
type Manager struct {
	mu      sync.RWMutex
	eng     *storage.Engine
	rules   *RuleSet
	bitmaps map[string]*Bitmap
	logger  Logger
	undo    *undo.Log
	// events accumulates an audit trail of cascade actions.
	events []Event
}

// NewManager builds a dependency manager over the storage engine.
func NewManager(eng *storage.Engine) *Manager {
	return &Manager{
		eng:     eng,
		rules:   NewRuleSet(),
		bitmaps: make(map[string]*Bitmap),
	}
}

// SetLogger wires the manager to a WAL; outdated-bitmap transitions are then
// logged so a reopened database remembers which cells need re-verification.
// Dependency rules themselves are Go values (procedures are function
// pointers) and must be re-registered by the application after reopen.
func (m *Manager) SetLogger(l Logger) { m.logger = l }

// SetUndo installs (or, with nil, clears) the open transaction's undo log;
// bitmap transitions then push their inverse. Only touched under the
// engine-wide exclusive statement lock.
func (m *Manager) SetUndo(u *undo.Log) { m.undo = u }

// markRecord is the WAL payload of one outdated-bitmap transition.
type markRecord struct {
	Table string `json:"table"`
	RowID int64  `json:"row_id"`
	Col   int    `json:"col"`
	Set   bool   `json:"set"`
}

// logMark appends one bitmap transition when a logger is wired. The WAL
// record precedes the in-memory bit flip (write-ahead order).
func (m *Manager) logMark(table string, rowID int64, col int, set bool) error {
	if m.logger == nil {
		return nil
	}
	payload, err := json.Marshal(markRecord{Table: table, RowID: rowID, Col: col, Set: set})
	if err != nil {
		return err
	}
	_, err = m.logger.Append(wal.KindDepMark, table, payload)
	return err
}

// setMark logs and applies one outdated-bitmap transition. Transitions that
// would not change the bit are dropped, keeping the WAL free of no-op
// records. A failed append leaves the bit untouched, so memory never holds
// a mark the log (and therefore a reopened database) would not.
func (m *Manager) setMark(table string, rowID int64, col int, set bool) error {
	b := m.bitmap(table)
	if b.IsSet(rowID, col) == set {
		return nil
	}
	if err := m.logMark(table, rowID, col, set); err != nil {
		return err
	}
	if set {
		b.Set(rowID, col)
	} else {
		b.Clear(rowID, col)
	}
	// setMark only runs on a real transition, so the before-image is the
	// opposite bit.
	if m.undo != nil {
		m.undo.Push(func() error { m.RecoverMark(table, rowID, col, !set); return nil })
	}
	return nil
}

// DecodeMarkPayload parses the WAL payload of a KindDepMark record.
func DecodeMarkPayload(payload []byte) (table string, rowID int64, col int, set bool, err error) {
	var rec markRecord
	if err := json.Unmarshal(payload, &rec); err != nil {
		return "", 0, 0, false, fmt.Errorf("dependency: decode mark payload: %w", err)
	}
	return rec.Table, rec.RowID, rec.Col, rec.Set, nil
}

// RecoverMark replays a logged bitmap transition.
func (m *Manager) RecoverMark(table string, rowID int64, col int, set bool) {
	if set {
		m.bitmap(table).Set(rowID, col)
	} else {
		m.bitmap(table).Clear(rowID, col)
	}
}

// Snapshot returns every outdated cell, the state a checkpoint persists.
func (m *Manager) Snapshot() []Cell { return m.OutdatedCells() }

// RestoreSnapshot loads checkpointed outdated cells into an empty manager.
func (m *Manager) RestoreSnapshot(cells []Cell) {
	for _, c := range cells {
		m.bitmap(c.Table).Set(c.RowID, c.Col)
	}
}

// Rules exposes the underlying rule set for reasoning queries.
func (m *Manager) Rules() *RuleSet { return m.rules }

// AddRule validates column references against the catalog and stores the rule.
func (m *Manager) AddRule(r Rule) (Rule, error) {
	for _, ref := range append(append([]ColumnRef{}, r.Sources...), r.Targets...) {
		tbl, err := m.eng.Table(ref.Table)
		if err != nil {
			return Rule{}, err
		}
		if tbl.Schema().ColumnIndex(ref.Column) < 0 {
			return Rule{}, fmt.Errorf("%w: %s", catalog.ErrColumnNotFound, ref)
		}
	}
	if r.Link != nil {
		for _, tref := range r.Targets {
			tbl, err := m.eng.Table(tref.Table)
			if err != nil {
				return Rule{}, err
			}
			if tbl.Schema().ColumnIndex(r.Link.TargetColumn) < 0 {
				return Rule{}, fmt.Errorf("%w: link target %s.%s", catalog.ErrColumnNotFound, tref.Table, r.Link.TargetColumn)
			}
		}
		for _, sref := range r.Sources {
			tbl, err := m.eng.Table(sref.Table)
			if err != nil {
				return Rule{}, err
			}
			if tbl.Schema().ColumnIndex(r.Link.SourceColumn) < 0 {
				return Rule{}, fmt.Errorf("%w: link source %s.%s", catalog.ErrColumnNotFound, sref.Table, r.Link.SourceColumn)
			}
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rules.Add(r)
}

// bitmap returns (creating if needed) the outdated bitmap of a table.
func (m *Manager) bitmap(table string) *Bitmap {
	key := strings.ToLower(table)
	m.mu.Lock()
	defer m.mu.Unlock()
	if b, ok := m.bitmaps[key]; ok {
		return b
	}
	numCols := 1
	if tbl, err := m.eng.Table(table); err == nil {
		numCols = len(tbl.Schema().Columns)
	}
	b := NewBitmap(table, numCols)
	m.bitmaps[key] = b
	return b
}

// Bitmap returns the outdated bitmap of a table (created on demand).
func (m *Manager) Bitmap(table string) *Bitmap { return m.bitmap(table) }

// IsOutdated reports whether a cell is currently marked outdated.
func (m *Manager) IsOutdated(table string, rowID int64, column string) bool {
	tbl, err := m.eng.Table(table)
	if err != nil {
		return false
	}
	col := tbl.Schema().ColumnIndex(column)
	if col < 0 {
		return false
	}
	return m.bitmap(table).IsSet(rowID, col)
}

// OutdatedCells returns every outdated cell across all tracked tables.
func (m *Manager) OutdatedCells() []Cell {
	m.mu.RLock()
	tables := make([]*Bitmap, 0, len(m.bitmaps))
	for _, b := range m.bitmaps {
		tables = append(tables, b)
	}
	m.mu.RUnlock()
	var out []Cell
	for _, b := range tables {
		out = append(out, b.OutdatedCells()...)
	}
	return out
}

// Events returns the audit trail of cascade actions since construction.
func (m *Manager) Events() []Event {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]Event, len(m.events))
	copy(out, m.events)
	return out
}

// targetRows resolves which rows of the target table correspond to the
// modified source row under the rule's Link (same row when Link is nil and
// the tables match).
func (m *Manager) targetRows(r Rule, sourceTable string, sourceRowID int64, targetTable string) ([]int64, error) {
	if r.Link == nil {
		if strings.EqualFold(sourceTable, targetTable) {
			return []int64{sourceRowID}, nil
		}
		return nil, nil
	}
	srcTbl, err := m.eng.Table(sourceTable)
	if err != nil {
		return nil, err
	}
	linkVal, err := srcTbl.GetColumn(sourceRowID, r.Link.SourceColumn)
	if err != nil {
		return nil, err
	}
	tgtTbl, err := m.eng.Table(targetTable)
	if err != nil {
		return nil, err
	}
	// Use an index when available, otherwise scan.
	if tgtTbl.HasIndex(r.Link.TargetColumn) {
		return tgtTbl.LookupEqual(r.Link.TargetColumn, linkVal)
	}
	colIdx := tgtTbl.Schema().ColumnIndex(r.Link.TargetColumn)
	var out []int64
	err = tgtTbl.Scan(func(rowID int64, row value.Row) bool {
		if row[colIdx].Equal(linkVal) {
			out = append(out, rowID)
		}
		return true
	})
	return out, err
}

// OnCellModified runs the dependency cascade after the cell
// (table, rowID, column) changed. For each rule whose sources include the
// column:
//
//   - executable rules with an Apply function recompute the target cells in
//     place and the cascade continues from the recomputed cells;
//   - non-executable rules (or executable ones without Apply) mark the target
//     cells outdated, and the cascade continues from them so transitive
//     targets are marked too (Figure 9: PFunction is marked when GSequence
//     changes even though PSequence was recomputed).
//
// The returned events describe every affected cell in cascade order.
func (m *Manager) OnCellModified(table string, rowID int64, column string) ([]Event, error) {
	type frame struct {
		table  string
		rowID  int64
		column string
	}
	var events []Event
	visited := map[string]bool{}
	queue := []frame{{table: table, rowID: rowID, column: column}}
	for len(queue) > 0 {
		f := queue[0]
		queue = queue[1:]
		vkey := fmt.Sprintf("%s|%d|%s", strings.ToLower(f.table), f.rowID, strings.ToLower(f.column))
		if visited[vkey] {
			continue
		}
		visited[vkey] = true

		rules := m.rules.RulesFrom(ColumnRef{Table: f.table, Column: f.column})
		for _, r := range rules {
			for _, target := range r.Targets {
				rows, err := m.targetRows(r, f.table, f.rowID, target.Table)
				if err != nil {
					return events, err
				}
				tgtTbl, err := m.eng.Table(target.Table)
				if err != nil {
					return events, err
				}
				colIdx := tgtTbl.Schema().ColumnIndex(target.Column)
				if colIdx < 0 {
					continue
				}
				for _, tRow := range rows {
					ev := Event{
						Cell: Cell{Table: tgtTbl.Name(), RowID: tRow, Col: colIdx},
						Rule: r,
					}
					if r.Proc.Executable && r.Proc.Apply != nil {
						newVal, err := m.recompute(r, f.table, f.rowID, tgtTbl, tRow, target.Column)
						if err != nil {
							return events, err
						}
						ev.Recomputed = true
						_ = newVal
						// A recomputed cell still changed, so its own
						// dependents must be revisited.
					} else if err := m.setMark(tgtTbl.Name(), tRow, colIdx, true); err != nil {
						return events, err
					}
					events = append(events, ev)
					queue = append(queue, frame{table: target.Table, rowID: tRow, column: target.Column})
				}
			}
		}
	}
	m.mu.Lock()
	m.events = append(m.events, events...)
	m.mu.Unlock()
	return events, nil
}

// recompute evaluates the rule's procedure on the current source values and
// writes the result into the target cell.
func (m *Manager) recompute(r Rule, srcTable string, srcRowID int64, tgtTbl *storage.Table, tgtRowID int64, tgtColumn string) (value.Value, error) {
	inputs := make([]value.Value, 0, len(r.Sources))
	for _, s := range r.Sources {
		sTbl, err := m.eng.Table(s.Table)
		if err != nil {
			return value.Value{}, err
		}
		// Source row: the modified row when the source table matches, else the
		// row linked back from the target.
		sRow := srcRowID
		if !strings.EqualFold(s.Table, srcTable) {
			if r.Link == nil {
				continue
			}
			linkVal, err := tgtTbl.GetColumn(tgtRowID, r.Link.TargetColumn)
			if err != nil {
				return value.Value{}, err
			}
			var ids []int64
			if sTbl.HasIndex(r.Link.SourceColumn) {
				ids, err = sTbl.LookupEqual(r.Link.SourceColumn, linkVal)
				if err != nil {
					return value.Value{}, err
				}
			} else {
				colIdx := sTbl.Schema().ColumnIndex(r.Link.SourceColumn)
				err = sTbl.Scan(func(rowID int64, row value.Row) bool {
					if row[colIdx].Equal(linkVal) {
						ids = append(ids, rowID)
					}
					return true
				})
				if err != nil {
					return value.Value{}, err
				}
			}
			if len(ids) == 0 {
				continue
			}
			sRow = ids[0]
		}
		v, err := sTbl.GetColumn(sRow, s.Column)
		if err != nil {
			return value.Value{}, err
		}
		inputs = append(inputs, v)
	}
	newVal, err := r.Proc.Apply(inputs)
	if err != nil {
		return value.Value{}, fmt.Errorf("dependency: procedure %s failed: %w", r.Proc.Name, err)
	}
	if err := tgtTbl.UpdateColumn(tgtRowID, tgtColumn, newVal); err != nil {
		return value.Value{}, err
	}
	// The cell now holds a freshly computed value: clear any stale mark.
	colIdx := tgtTbl.Schema().ColumnIndex(tgtColumn)
	if err := m.setMark(tgtTbl.Name(), tgtRowID, colIdx, false); err != nil {
		return value.Value{}, err
	}
	return newVal, nil
}

// Revalidate clears the outdated mark of a cell after a user verified (and
// possibly corrected) it. The value itself may or may not have changed — the
// paper notes a modification to a gene does not always change the protein.
func (m *Manager) Revalidate(table string, rowID int64, column string) error {
	tbl, err := m.eng.Table(table)
	if err != nil {
		return err
	}
	col := tbl.Schema().ColumnIndex(column)
	if col < 0 {
		return fmt.Errorf("%w: %s.%s", catalog.ErrColumnNotFound, table, column)
	}
	return m.setMark(tbl.Name(), rowID, col, false)
}

// OutdatedAnnotationBodies renders one human-readable warning per outdated
// cell, ready to be attached as annotations to query answers ("the query
// answer may not be correct", Section 5).
func (m *Manager) OutdatedAnnotationBodies() map[Cell]string {
	out := make(map[Cell]string)
	for _, c := range m.OutdatedCells() {
		tbl, err := m.eng.Table(c.Table)
		colName := fmt.Sprintf("col%d", c.Col)
		if err == nil && c.Col < len(tbl.Schema().Columns) {
			colName = tbl.Schema().Columns[c.Col].Name
		}
		out[c] = fmt.Sprintf("<Annotation>OUTDATED: %s.%s of row %d needs re-verification</Annotation>",
			c.Table, colName, c.RowID)
	}
	return out
}
