package dependency

import (
	"sort"
	"strings"
	"sync"

	"bdbms/internal/rle"
)

// Bitmap tracks which cells of one table are outdated (Figure 10 of the
// paper): bit (rowID, column) is set when the cell needs re-verification.
// The in-memory representation is sparse (only rows with at least one set bit
// are materialised); CompressedSize reports what a Run-Length-Encoded
// serialisation of the full bitmap would occupy, the measure of E7.
type Bitmap struct {
	mu      sync.RWMutex
	table   string
	numCols int
	rows    map[int64][]bool
}

// NewBitmap creates a bitmap for a table with numCols columns.
func NewBitmap(table string, numCols int) *Bitmap {
	if numCols < 1 {
		numCols = 1
	}
	return &Bitmap{table: table, numCols: numCols, rows: make(map[int64][]bool)}
}

// Table returns the table this bitmap belongs to.
func (b *Bitmap) Table() string { return b.table }

// NumCols returns the column count of the bitmap.
func (b *Bitmap) NumCols() int { return b.numCols }

// Set marks cell (rowID, col) outdated.
func (b *Bitmap) Set(rowID int64, col int) {
	if col < 0 || col >= b.numCols {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	row, ok := b.rows[rowID]
	if !ok {
		row = make([]bool, b.numCols)
		b.rows[rowID] = row
	}
	row[col] = true
}

// Clear resets cell (rowID, col).
func (b *Bitmap) Clear(rowID int64, col int) {
	if col < 0 || col >= b.numCols {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	row, ok := b.rows[rowID]
	if !ok {
		return
	}
	row[col] = false
	for _, set := range row {
		if set {
			return
		}
	}
	delete(b.rows, rowID)
}

// IsSet reports whether cell (rowID, col) is outdated.
func (b *Bitmap) IsSet(rowID int64, col int) bool {
	if col < 0 || col >= b.numCols {
		return false
	}
	b.mu.RLock()
	defer b.mu.RUnlock()
	row, ok := b.rows[rowID]
	return ok && row[col]
}

// Any reports whether any cell of the table is outdated. Rows with no set
// bits are evicted by Clear, so a non-empty row map means at least one set
// bit; scans use this to skip per-row bitmap probing entirely on clean
// tables.
func (b *Bitmap) Any() bool {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.rows) > 0
}

// RowOutdated reports whether any cell of the row is outdated.
func (b *Bitmap) RowOutdated(rowID int64) bool {
	b.mu.RLock()
	defer b.mu.RUnlock()
	row, ok := b.rows[rowID]
	if !ok {
		return false
	}
	for _, set := range row {
		if set {
			return true
		}
	}
	return false
}

// Count returns the number of outdated cells.
func (b *Bitmap) Count() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	n := 0
	for _, row := range b.rows {
		for _, set := range row {
			if set {
				n++
			}
		}
	}
	return n
}

// OutdatedCells returns every outdated (rowID, col) pair, sorted.
func (b *Bitmap) OutdatedCells() []Cell {
	b.mu.RLock()
	defer b.mu.RUnlock()
	var out []Cell
	for rowID, row := range b.rows {
		for col, set := range row {
			if set {
				out = append(out, Cell{Table: b.table, RowID: rowID, Col: col})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].RowID != out[j].RowID {
			return out[i].RowID < out[j].RowID
		}
		return out[i].Col < out[j].Col
	})
	return out
}

// serialize renders the bitmap row-major as a '0'/'1' string over rows
// [1, maxRowID], the form that is RLE-compressed on disk.
func (b *Bitmap) serialize(maxRowID int64) string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	var sb strings.Builder
	sb.Grow(int(maxRowID) * b.numCols)
	for rowID := int64(1); rowID <= maxRowID; rowID++ {
		row, ok := b.rows[rowID]
		for col := 0; col < b.numCols; col++ {
			if ok && row[col] {
				sb.WriteByte('1')
			} else {
				sb.WriteByte('0')
			}
		}
	}
	return sb.String()
}

// RawSize returns the size in bytes of the uncompressed bitmap covering rows
// [1, maxRowID] at one byte per cell.
func (b *Bitmap) RawSize(maxRowID int64) int {
	return int(maxRowID) * b.numCols
}

// CompressedSize returns the size in bytes of the RLE-compressed bitmap
// covering rows [1, maxRowID].
func (b *Bitmap) CompressedSize(maxRowID int64) int {
	return rle.Encode(b.serialize(maxRowID)).CompressedSize()
}

// CompressionRatio returns RawSize / CompressedSize for rows [1, maxRowID].
func (b *Bitmap) CompressionRatio(maxRowID int64) float64 {
	cs := b.CompressedSize(maxRowID)
	if cs == 0 {
		return 1
	}
	return float64(b.RawSize(maxRowID)) / float64(cs)
}

// Cell identifies one cell of a table.
type Cell struct {
	Table string
	RowID int64
	Col   int
}
