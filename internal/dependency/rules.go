// Package dependency implements bdbms's local dependency tracking (Section 5
// of the paper). It extends functional dependencies to Procedural
// Dependencies: a dependency carries the procedure that derives the target
// from the sources, plus whether that procedure is executable by the database
// and whether it is invertible.
//
// The package provides:
//
//   - a rule store with reasoning: attribute closure, procedure closure,
//     derivation of chained rules (Rule 1 + Rule 2 => Rule 4 in the paper),
//     cycle and conflict detection;
//   - cascade tracking over a storage engine: when a cell changes, targets of
//     executable rules are recomputed automatically, targets of
//     non-executable rules are marked outdated (Figure 9);
//   - outdated bookkeeping as per-table bitmaps, compressible with RLE
//     (Figure 10), plus revalidation.
package dependency

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"bdbms/internal/value"
)

// ColumnRef names a column of a user table.
type ColumnRef struct {
	Table  string
	Column string
}

// String renders the reference as Table.Column.
func (c ColumnRef) String() string { return c.Table + "." + c.Column }

func (c ColumnRef) key() string {
	return strings.ToLower(c.Table) + "." + strings.ToLower(c.Column)
}

// Equal reports case-insensitive equality.
func (c ColumnRef) Equal(o ColumnRef) bool { return c.key() == o.key() }

// Procedure describes the derivation procedure of a rule.
type Procedure struct {
	// Name identifies the procedure ("Prediction tool P", "BLAST-2.2.15",
	// "Lab experiment", or a chain like "P + Lab experiment").
	Name string
	// Executable reports whether the database can run the procedure itself.
	Executable bool
	// Invertible reports whether sources can be recomputed from targets.
	Invertible bool
	// Apply recomputes the target value from the source values. It must be
	// set when Executable is true for automatic re-evaluation to happen.
	Apply func(inputs []value.Value) (value.Value, error)
}

// Rule is one procedural dependency: Sources --Proc--> Targets.
type Rule struct {
	// ID is assigned by the manager when the rule is added.
	ID int
	// Sources are the columns the targets depend on.
	Sources []ColumnRef
	// Targets are the derived columns.
	Targets []ColumnRef
	// Proc is the derivation procedure with its characteristics.
	Proc Procedure
	// Link maps source rows to target rows when the tables differ: target
	// rows are those whose Link.TargetColumn equals the source row's
	// Link.SourceColumn. A nil Link means "same table, same row".
	Link *Link
	// Derived marks rules produced by DeriveRules rather than declared.
	Derived bool
}

// Link is the row-correspondence of a cross-table rule (a foreign-key style
// join: Protein.GID = Gene.GID).
type Link struct {
	SourceColumn string
	TargetColumn string
}

// String renders the rule in the paper's arrow notation.
func (r Rule) String() string {
	src := make([]string, len(r.Sources))
	for i, s := range r.Sources {
		src[i] = s.String()
	}
	dst := make([]string, len(r.Targets))
	for i, t := range r.Targets {
		dst[i] = t.String()
	}
	flags := []string{}
	if r.Proc.Executable {
		flags = append(flags, "executable")
	} else {
		flags = append(flags, "non-executable")
	}
	if r.Proc.Invertible {
		flags = append(flags, "invertible")
	} else {
		flags = append(flags, "non-invertible")
	}
	return fmt.Sprintf("%s --[%s (%s)]--> %s",
		strings.Join(src, ", "), r.Proc.Name, strings.Join(flags, ", "), strings.Join(dst, ", "))
}

// Errors returned by the rule store.
var (
	// ErrInvalidRule is returned when adding a rule without sources or targets.
	ErrInvalidRule = errors.New("dependency: invalid rule")
	// ErrConflict is returned when a rule's target is already derived by a
	// different procedure.
	ErrConflict = errors.New("dependency: conflicting rules for target")
)

// RuleSet stores procedural dependency rules and reasons about them.
type RuleSet struct {
	rules  []Rule
	nextID int
}

// NewRuleSet returns an empty rule set.
func NewRuleSet() *RuleSet { return &RuleSet{nextID: 1} }

// Add validates and stores a rule, returning the stored copy with its ID.
// Adding a rule whose target already has a rule with a different procedure
// returns ErrConflict (the paper calls for conflict detection); pass
// allowConflict to override.
func (rs *RuleSet) Add(r Rule) (Rule, error) {
	if len(r.Sources) == 0 || len(r.Targets) == 0 {
		return Rule{}, fmt.Errorf("%w: needs at least one source and one target", ErrInvalidRule)
	}
	if r.Proc.Name == "" {
		return Rule{}, fmt.Errorf("%w: procedure name required", ErrInvalidRule)
	}
	for _, existing := range rs.rules {
		if existing.Derived {
			continue
		}
		for _, t := range r.Targets {
			for _, et := range existing.Targets {
				if t.Equal(et) && !strings.EqualFold(existing.Proc.Name, r.Proc.Name) {
					return Rule{}, fmt.Errorf("%w: %s derived by both %q and %q",
						ErrConflict, t, existing.Proc.Name, r.Proc.Name)
				}
			}
		}
	}
	r.ID = rs.nextID
	rs.nextID++
	rs.rules = append(rs.rules, r)
	return r, nil
}

// Rules returns all rules (declared and derived) in insertion order.
func (rs *RuleSet) Rules() []Rule {
	out := make([]Rule, len(rs.rules))
	copy(out, rs.rules)
	return out
}

// RulesFrom returns the declared rules having col among their sources.
func (rs *RuleSet) RulesFrom(col ColumnRef) []Rule {
	var out []Rule
	for _, r := range rs.rules {
		if r.Derived {
			continue
		}
		for _, s := range r.Sources {
			if s.Equal(col) {
				out = append(out, r)
				break
			}
		}
	}
	return out
}

// RulesTo returns the declared rules having col among their targets.
func (rs *RuleSet) RulesTo(col ColumnRef) []Rule {
	var out []Rule
	for _, r := range rs.rules {
		if r.Derived {
			continue
		}
		for _, t := range r.Targets {
			if t.Equal(col) {
				out = append(out, r)
				break
			}
		}
	}
	return out
}

// AttributeClosure returns every column transitively derivable from the given
// columns (the closure of an attribute set under the procedural dependencies),
// including the starting columns themselves, sorted by name.
func (rs *RuleSet) AttributeClosure(cols ...ColumnRef) []ColumnRef {
	closure := map[string]ColumnRef{}
	for _, c := range cols {
		closure[c.key()] = c
	}
	changed := true
	for changed {
		changed = false
		for _, r := range rs.rules {
			if r.Derived {
				continue
			}
			allIn := true
			for _, s := range r.Sources {
				if _, ok := closure[s.key()]; !ok {
					allIn = false
					break
				}
			}
			if !allIn {
				continue
			}
			for _, t := range r.Targets {
				if _, ok := closure[t.key()]; !ok {
					closure[t.key()] = t
					changed = true
				}
			}
		}
	}
	return sortedRefs(closure)
}

// ProcedureClosure returns every column that transitively depends on the named
// procedure: the targets of its rules plus everything derivable from them.
// This answers "what must be re-verified if BLAST is upgraded?".
func (rs *RuleSet) ProcedureClosure(procName string) []ColumnRef {
	var seeds []ColumnRef
	for _, r := range rs.rules {
		if r.Derived {
			continue
		}
		if strings.EqualFold(r.Proc.Name, procName) {
			seeds = append(seeds, r.Targets...)
		}
	}
	if len(seeds) == 0 {
		return nil
	}
	closure := map[string]ColumnRef{}
	for _, s := range seeds {
		closure[s.key()] = s
	}
	// Follow rules whose sources include any column already in the closure.
	changed := true
	for changed {
		changed = false
		for _, r := range rs.rules {
			if r.Derived {
				continue
			}
			hit := false
			for _, s := range r.Sources {
				if _, ok := closure[s.key()]; ok {
					hit = true
					break
				}
			}
			if !hit {
				continue
			}
			for _, t := range r.Targets {
				if _, ok := closure[t.key()]; !ok {
					closure[t.key()] = t
					changed = true
				}
			}
		}
	}
	return sortedRefs(closure)
}

func sortedRefs(m map[string]ColumnRef) []ColumnRef {
	out := make([]ColumnRef, 0, len(m))
	for _, c := range m {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key() < out[j].key() })
	return out
}

// DeriveRules composes declared rules into chained rules (the paper's Rule 4:
// Gene.GSequence -> Protein.PFunction via "P, lab experiment"). A derived
// chain is executable only when every step is executable and invertible only
// when every step is invertible. Newly derived rules are stored (marked
// Derived) and returned. Chains longer than maxDepth steps are not explored.
func (rs *RuleSet) DeriveRules(maxDepth int) []Rule {
	if maxDepth < 2 {
		maxDepth = 2
	}
	exists := func(src, dst ColumnRef) bool {
		for _, r := range rs.rules {
			for _, s := range r.Sources {
				for _, t := range r.Targets {
					if s.Equal(src) && t.Equal(dst) {
						return true
					}
				}
			}
		}
		return false
	}
	var derived []Rule
	// Breadth-first composition of declared rules.
	type path struct {
		src   ColumnRef
		dst   ColumnRef
		procs []Procedure
		link  *Link
	}
	var frontier []path
	for _, r := range rs.rules {
		if r.Derived {
			continue
		}
		for _, s := range r.Sources {
			for _, t := range r.Targets {
				frontier = append(frontier, path{src: s, dst: t, procs: []Procedure{r.Proc}, link: r.Link})
			}
		}
	}
	declared := append([]Rule(nil), rs.rules...)
	for depth := 2; depth <= maxDepth; depth++ {
		var next []path
		for _, p := range frontier {
			for _, r := range declared {
				if r.Derived {
					continue
				}
				for _, s := range r.Sources {
					if !s.Equal(p.dst) {
						continue
					}
					for _, t := range r.Targets {
						if t.Equal(p.src) {
							continue // would be a cycle
						}
						np := path{src: p.src, dst: t, procs: append(append([]Procedure(nil), p.procs...), r.Proc), link: p.link}
						next = append(next, np)
						if exists(np.src, np.dst) {
							continue
						}
						names := make([]string, len(np.procs))
						exec, inv := true, true
						for i, pr := range np.procs {
							names[i] = pr.Name
							exec = exec && pr.Executable
							inv = inv && pr.Invertible
						}
						dr := Rule{
							Sources: []ColumnRef{np.src},
							Targets: []ColumnRef{np.dst},
							Proc: Procedure{
								Name:       strings.Join(names, " + "),
								Executable: exec,
								Invertible: inv,
							},
							Link:    np.link,
							Derived: true,
						}
						dr.ID = rs.nextID
						rs.nextID++
						rs.rules = append(rs.rules, dr)
						derived = append(derived, dr)
					}
				}
			}
		}
		frontier = next
	}
	return derived
}

// DetectCycles returns the columns involved in any dependency cycle among the
// declared rules (empty when the dependency graph is acyclic).
func (rs *RuleSet) DetectCycles() []ColumnRef {
	// Build adjacency: source column -> target columns.
	adj := map[string][]ColumnRef{}
	nodes := map[string]ColumnRef{}
	for _, r := range rs.rules {
		if r.Derived {
			continue
		}
		for _, s := range r.Sources {
			nodes[s.key()] = s
			for _, t := range r.Targets {
				nodes[t.key()] = t
				adj[s.key()] = append(adj[s.key()], t)
			}
		}
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	inCycle := map[string]ColumnRef{}
	var stack []string
	var visit func(k string)
	visit = func(k string) {
		color[k] = gray
		stack = append(stack, k)
		for _, t := range adj[k] {
			tk := t.key()
			switch color[tk] {
			case white:
				visit(tk)
			case gray:
				// Found a back edge: everything from tk on the stack is cyclic.
				for i := len(stack) - 1; i >= 0; i-- {
					inCycle[stack[i]] = nodes[stack[i]]
					if stack[i] == tk {
						break
					}
				}
			}
		}
		stack = stack[:len(stack)-1]
		color[k] = black
	}
	for k := range nodes {
		if color[k] == white {
			visit(k)
		}
	}
	return sortedRefs(inCycle)
}
