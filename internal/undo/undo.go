// Package undo implements the in-memory undo log behind bdbms transactions.
//
// Every mutating subsystem — the storage engine (heap rows, indexes, DDL),
// the annotation manager (annotation cells, archive flags, annotation
// tables), the dependency manager (outdated marks), the provenance manager
// (agent registry) and the authorization manager (the approval op log) —
// exposes a SetUndo hook. While a transaction (explicit BEGIN..COMMIT or the
// implicit transaction wrapped around every auto-commit statement) is open,
// each applied mutation pushes a compensating closure capturing its
// before-image. ROLLBACK runs the stack in reverse; ROLLBACK TO SAVEPOINT
// runs and discards only the entries pushed after the savepoint's mark.
//
// The log is purely in-memory: it reverts the live state of the process.
// Crash atomicity is the write-ahead log's job — recovery undoes uncommitted
// transactions from the before-images carried in the WAL records themselves
// (see internal/core). Execution is serialized by the engine-wide statement
// lock, so a Log is only ever touched by one statement at a time and needs
// no locking of its own.
package undo

import "errors"

// Log is the undo stack of one open transaction. The zero value is ready to
// use.
type Log struct {
	entries []func() error
}

// New returns an empty undo log.
func New() *Log { return &Log{} }

// Push records the compensating action of one applied mutation. Actions must
// revert state directly (through the Recover* appliers), never through the
// logging mutators: running the undo log must not grow the WAL or the undo
// log itself.
func (l *Log) Push(fn func() error) { l.entries = append(l.entries, fn) }

// Len returns the number of recorded actions. A savepoint is just a
// remembered Len.
func (l *Log) Len() int { return len(l.entries) }

// Rollback reverts every recorded mutation, newest first, and empties the
// log. All actions run even when one fails; the errors are joined.
func (l *Log) Rollback() error { return l.RollbackTo(0) }

// RollbackTo reverts the mutations recorded after the given mark (a Len
// captured earlier), newest first, and truncates the log back to the mark.
// All actions run even when one fails; the errors are joined.
func (l *Log) RollbackTo(mark int) error {
	if mark < 0 {
		mark = 0
	}
	var errs []error
	for i := len(l.entries) - 1; i >= mark; i-- {
		if err := l.entries[i](); err != nil {
			errs = append(errs, err)
		}
	}
	if mark < len(l.entries) {
		l.entries = l.entries[:mark]
	}
	return errors.Join(errs...)
}

// Reset discards every recorded action without running it (COMMIT).
func (l *Log) Reset() { l.entries = l.entries[:0] }
