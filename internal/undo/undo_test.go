package undo

import (
	"errors"
	"testing"
)

func TestRollbackRunsNewestFirstAndEmpties(t *testing.T) {
	l := New()
	var order []int
	for i := 1; i <= 3; i++ {
		i := i
		l.Push(func() error { order = append(order, i); return nil })
	}
	if l.Len() != 3 {
		t.Fatalf("Len = %d, want 3", l.Len())
	}
	if err := l.Rollback(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 3 || order[1] != 2 || order[2] != 1 {
		t.Fatalf("rollback order = %v, want [3 2 1]", order)
	}
	if l.Len() != 0 {
		t.Fatalf("Len after rollback = %d, want 0", l.Len())
	}
	// Rolling back an empty log is a no-op.
	if err := l.Rollback(); err != nil {
		t.Fatal(err)
	}
}

func TestRollbackToMarkKeepsEarlierEntries(t *testing.T) {
	var l Log // the zero value works
	var order []int
	push := func(i int) { l.Push(func() error { order = append(order, i); return nil }) }
	push(1)
	mark := l.Len()
	push(2)
	push(3)
	if err := l.RollbackTo(mark); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != 3 || order[1] != 2 {
		t.Fatalf("partial rollback ran %v, want [3 2]", order)
	}
	if l.Len() != mark {
		t.Fatalf("Len = %d, want the mark %d", l.Len(), mark)
	}
	// A negative mark clamps to a full rollback.
	if err := l.RollbackTo(-5); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[2] != 1 {
		t.Fatalf("clamped rollback ran %v, want [3 2 1]", order)
	}
}

func TestRollbackJoinsErrorsButRunsEverything(t *testing.T) {
	l := New()
	e1, e2 := errors.New("first"), errors.New("second")
	ran := 0
	l.Push(func() error { ran++; return e1 })
	l.Push(func() error { ran++; return nil })
	l.Push(func() error { ran++; return e2 })
	err := l.Rollback()
	if ran != 3 {
		t.Fatalf("%d actions ran, want all 3 despite errors", ran)
	}
	if !errors.Is(err, e1) || !errors.Is(err, e2) {
		t.Fatalf("joined error %v misses one of the action errors", err)
	}
}

func TestResetDiscardsWithoutRunning(t *testing.T) {
	l := New()
	ran := false
	l.Push(func() error { ran = true; return nil })
	l.Reset()
	if l.Len() != 0 {
		t.Fatalf("Len after Reset = %d", l.Len())
	}
	if ran {
		t.Fatal("Reset ran an action")
	}
}
