package storage

import (
	"errors"
	"sync"
	"testing"
	"time"

	"bdbms/internal/value"
)

// writeFrame brackets fn in a write frame the way exec does: ScopeWAL latched,
// mark opened, fn's mutations version-tracked, frame closed, latch released.
func writeFrame(t *testing.T, e *Engine, fn func()) {
	t.Helper()
	l := e.Locks().NewLocker()
	if err := l.Acquire(ScopeWAL); err != nil {
		t.Fatal(err)
	}
	m := e.BeginWrite()
	fn()
	e.EndWrite(m)
	l.ReleaseAll()
}

func mustInsert(t *testing.T, tbl *Table, row ...string) int64 {
	t.Helper()
	id, err := tbl.Insert(geneRow(row[0], row[1], row[2]))
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestSnapshotSeesPreUpdateImage(t *testing.T) {
	e := NewMemoryEngine()
	tbl, _ := e.CreateTable(geneSchema("Gene"))
	var id int64
	writeFrame(t, e, func() { id = mustInsert(t, tbl, "JW0080", "mraW", "ATG") })

	snap := e.NewSnapshot()
	defer snap.Close()

	writeFrame(t, e, func() {
		if err := tbl.Update(id, geneRow("JW0080", "renamed", "ATG")); err != nil {
			t.Fatal(err)
		}
	})

	row, err := snap.Get(tbl, id)
	if err != nil {
		t.Fatal(err)
	}
	if row[1].Text() != "mraW" {
		t.Errorf("snapshot saw %q, want pre-update image mraW", row[1].Text())
	}
	cur, err := tbl.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if cur[1].Text() != "renamed" {
		t.Errorf("current read saw %q, want renamed", cur[1].Text())
	}
}

func TestSnapshotHidesLaterInsertAndShowsLaterDelete(t *testing.T) {
	e := NewMemoryEngine()
	tbl, _ := e.CreateTable(geneSchema("Gene"))
	var keep, gone int64
	writeFrame(t, e, func() {
		keep = mustInsert(t, tbl, "JW0001", "a", "A")
		gone = mustInsert(t, tbl, "JW0002", "b", "C")
	})

	snap := e.NewSnapshot()
	defer snap.Close()

	var added int64
	writeFrame(t, e, func() {
		added = mustInsert(t, tbl, "JW0003", "c", "G")
		if err := tbl.Delete(gone); err != nil {
			t.Fatal(err)
		}
	})

	if _, err := snap.Get(tbl, added); !errors.Is(err, ErrRowNotFound) {
		t.Errorf("post-snapshot insert visible: err=%v", err)
	}
	if row, err := snap.Get(tbl, gone); err != nil || row[0].Text() != "JW0002" {
		t.Errorf("post-snapshot delete hid the row: row=%v err=%v", row, err)
	}
	ids := snap.RowIDs(tbl)
	want := []int64{keep, gone, added} // added is a candidate; Get filters it
	if len(ids) != len(want) {
		t.Fatalf("RowIDs = %v", ids)
	}
	seen := 0
	for _, id := range ids {
		if _, err := snap.Get(tbl, id); err == nil {
			seen++
		}
	}
	if seen != 2 {
		t.Errorf("snapshot resolves %d rows, want 2 (keep + deleted-after)", seen)
	}
}

func TestSnapshotIgnoresActiveFrame(t *testing.T) {
	e := NewMemoryEngine()
	tbl, _ := e.CreateTable(geneSchema("Gene"))
	var id int64
	writeFrame(t, e, func() { id = mustInsert(t, tbl, "JW0080", "old", "ATG") })

	l := e.Locks().NewLocker()
	if err := l.Acquire(ScopeWAL); err != nil {
		t.Fatal(err)
	}
	m := e.BeginWrite()
	if err := tbl.Update(id, geneRow("JW0080", "dirty", "ATG")); err != nil {
		t.Fatal(err)
	}

	// Entries of the in-flight frame are invisible even though their
	// sequence numbers predate the snapshot's.
	snap := e.NewSnapshot()
	row, err := snap.Get(tbl, id)
	if err != nil {
		t.Fatal(err)
	}
	if row[1].Text() != "old" {
		t.Errorf("snapshot saw in-flight write %q, want old", row[1].Text())
	}
	if err := tbl.Update(id, geneRow("JW0080", "dirty2", "ATG")); err != nil {
		t.Fatal(err)
	}
	e.EndWrite(m)
	l.ReleaseAll()

	// Still the old image after the frame ends: visibility is fixed at
	// snapshot creation.
	if row, _ := snap.Get(tbl, id); row[1].Text() != "old" {
		t.Errorf("snapshot drifted to %q after frame end", row[1].Text())
	}
	snap.Close()

	if row, _ := e.NewSnapshot().Get(tbl, id); row[1].Text() != "dirty2" {
		t.Errorf("fresh snapshot saw %q, want dirty2", row[1].Text())
	}
}

// TestPruneBoundProtectsConcurrentSnapshot is the regression test for a
// visibility tear: Snapshot.Close computes its prune bound under the MVCC
// mutex but applies it after releasing it. In that window a whole write frame
// could begin AND finish, and a snapshot needing its before-images could be
// created; with the bound taken as "no snapshots → prune everything
// finished", the late prune dropped entries the new snapshot required, and it
// read half a committed transaction. The bound is now clamped to the version
// sequence observed under the mutex, so entries of frames that finish later
// always survive. The test drives the exact interleaving deterministically
// through the exported API.
func TestPruneBoundProtectsConcurrentSnapshot(t *testing.T) {
	e := NewMemoryEngine()
	tbl, _ := e.CreateTable(geneSchema("Gene"))
	var a, b int64
	writeFrame(t, e, func() {
		a = mustInsert(t, tbl, "JW0001", "a0", "A")
		b = mustInsert(t, tbl, "JW0002", "b0", "C")
	})

	// Doomed snapshot: its Close is what carries the stale prune bound.
	doomed := e.NewSnapshot()

	// A frame mutates both rows and finishes; a new snapshot is created
	// while that frame is active, so it must read both before-images.
	l := e.Locks().NewLocker()
	if err := l.Acquire(ScopeWAL); err != nil {
		t.Fatal(err)
	}
	m := e.BeginWrite()
	if err := tbl.Update(a, geneRow("JW0001", "a1", "A")); err != nil {
		t.Fatal(err)
	}
	snap := e.NewSnapshot()
	defer snap.Close()
	if err := tbl.Update(b, geneRow("JW0002", "b1", "C")); err != nil {
		t.Fatal(err)
	}
	e.EndWrite(m)
	l.ReleaseAll()

	// The doomed snapshot closes only now: with the unclamped bound this
	// prune would drop the finished frame's entries out from under snap.
	doomed.Close()

	ra, err := snap.Get(tbl, a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := snap.Get(tbl, b)
	if err != nil {
		t.Fatal(err)
	}
	if ra[1].Text() != "a0" || rb[1].Text() != "b0" {
		t.Errorf("snapshot tore: a=%q b=%q, want a0/b0", ra[1].Text(), rb[1].Text())
	}
}

func TestLockerSerializesScopeAndReleases(t *testing.T) {
	e := NewMemoryEngine()
	l1 := e.Locks().NewLocker()
	if err := l1.Acquire("t1", "t2"); err != nil {
		t.Fatal(err)
	}

	got := make(chan error, 1)
	go func() {
		l2 := e.Locks().NewLocker()
		err := l2.Acquire("t2")
		l2.ReleaseAll()
		got <- err
	}()

	select {
	case <-got:
		t.Fatal("second locker acquired a held scope")
	case <-time.After(50 * time.Millisecond):
	}
	l1.ReleaseAll()
	select {
	case err := <-got:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("release did not wake the waiter")
	}
}

func TestLockerDetectsDeadlock(t *testing.T) {
	e := NewMemoryEngine()
	// Two goroutines, each owning one locker (lockers are single-owner like
	// sessions): one takes a then b, the other b then a. At least one must
	// get ErrDeadlock and release, letting the other finish; nothing hangs.
	run := func(first, second string, results chan<- error) {
		l := e.Locks().NewLocker()
		defer l.ReleaseAll()
		if err := l.Acquire(first); err != nil {
			results <- err
			return
		}
		time.Sleep(20 * time.Millisecond) // let both sides take their first scope
		results <- l.Acquire(second)
	}
	results := make(chan error, 2)
	go run("a", "b", results)
	go run("b", "a", results)

	var deadlocks, ok int
	for i := 0; i < 2; i++ {
		select {
		case err := <-results:
			switch {
			case errors.Is(err, ErrDeadlock):
				deadlocks++
			case err == nil:
				ok++
			default:
				t.Fatal(err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("deadlock neither detected nor resolved")
		}
	}
	// Both may lose the race (sleep landed both in the wait loop), but at
	// least one side must have been refused rather than blocked forever.
	if deadlocks < 1 {
		t.Errorf("no ErrDeadlock reported (ok=%d deadlocks=%d)", ok, deadlocks)
	}
}

func TestQuiesceDrainsAndBlocksWriters(t *testing.T) {
	e := NewMemoryEngine()
	locks := e.Locks()

	l := locks.NewLocker()
	if err := l.Acquire("t"); err != nil {
		t.Fatal(err)
	}
	quiesced := make(chan struct{})
	go func() {
		locks.Quiesce()
		close(quiesced)
	}()
	select {
	case <-quiesced:
		t.Fatal("Quiesce returned while a locker held a scope")
	case <-time.After(50 * time.Millisecond):
	}
	l.ReleaseAll()
	select {
	case <-quiesced:
	case <-time.After(5 * time.Second):
		t.Fatal("Quiesce did not complete after release")
	}

	// While quiesced, new writers wait; Resume releases them.
	acquired := make(chan error, 1)
	go func() {
		l2 := locks.NewLocker()
		err := l2.Acquire("t")
		l2.ReleaseAll()
		acquired <- err
	}()
	select {
	case <-acquired:
		t.Fatal("writer acquired a scope during quiesce")
	case <-time.After(50 * time.Millisecond):
	}
	locks.Resume()
	select {
	case err := <-acquired:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Resume did not wake the writer")
	}
}

// TestSnapshotStressTransfer is the storage-level analogue of the root
// package's transfer invariant: one writer moves value between two rows in
// write frames while readers open snapshots and assert the two rows always
// sum to the same total.
func TestSnapshotStressTransfer(t *testing.T) {
	e := NewMemoryEngine()
	tbl, _ := e.CreateTable(intSchema("Acct"))
	var a, b int64
	writeFrame(t, e, func() {
		var err error
		if a, err = tbl.Insert(intRow(1, 100)); err != nil {
			t.Fatal(err)
		}
		if b, err = tbl.Insert(intRow(2, 100)); err != nil {
			t.Fatal(err)
		}
	})

	stop := make(chan struct{})
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			amt := int64(i%7 + 1)
			writeFrame(t, e, func() {
				ra, _ := tbl.Get(a)
				rb, _ := tbl.Get(b)
				if err := tbl.Update(a, intRow(1, ra[1].Int()-amt)); err != nil {
					t.Error(err)
				}
				if err := tbl.Update(b, intRow(2, rb[1].Int()+amt)); err != nil {
					t.Error(err)
				}
			})
		}
	}()

	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 400; i++ {
				snap := e.NewSnapshot()
				ra, err := snap.Get(tbl, a)
				if err != nil {
					t.Error(err)
					snap.Close()
					return
				}
				rb, err := snap.Get(tbl, b)
				if err != nil {
					t.Error(err)
					snap.Close()
					return
				}
				if sum := ra[1].Int() + rb[1].Int(); sum != 200 {
					t.Errorf("torn snapshot: sum=%d want 200", sum)
				}
				snap.Close()
			}
		}()
	}
	done := make(chan struct{})
	go func() { readers.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("stress did not complete")
	}
	close(stop)
	<-writerDone
}

func intRow(id, v int64) value.Row {
	return value.Row{value.NewInt(id), value.NewInt(v)}
}
