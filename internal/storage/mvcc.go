package storage

// Multi-version row visibility: the mechanism that lets SELECT cursors read a
// stable snapshot while writers mutate tables in place.
//
// The heap always holds the CURRENT row images. Every mutation made inside a
// write frame additionally appends a versionEntry — the row's before-image —
// to its table's version list. A Snapshot captures, at creation, the global
// version sequence and the set of write frames still in flight; a version
// entry is invisible to the snapshot exactly when it was created after the
// snapshot (seq > snap.seq) or by a frame the snapshot saw as unfinished.
// Reading a row through a snapshot means: if any invisible entry exists for
// the row, the OLDEST such entry's before-image is what the snapshot sees
// (that is the row as it stood when the snapshot was taken); otherwise the
// current heap image is already the right answer.
//
// Because write frames are serialized by ScopeWAL, the invisible entries of
// any snapshot form a contiguous suffix of each table's version list, and a
// snapshot can fold them into a per-table overlay map incrementally — one
// short read-locked walk per read, no locks held between reads.
//
// Version entries are garbage: once every live snapshot can see an entry's
// frame as finished, the entry's before-image can never be needed again and
// the prefix is pruned (on frame end and snapshot close).

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"bdbms/internal/value"
)

// WriteMark identifies one write frame — an auto-commit statement or an
// explicit transaction — for visibility decisions. endSeq is 0 while the
// frame is in flight and set to its finish sequence when it commits or
// aborts.
type WriteMark struct {
	endSeq atomic.Uint64
}

// versionEntry is one row before-image, appended (under t.mu) by the
// mutation that overwrote it.
type versionEntry struct {
	seq     uint64
	mark    *WriteMark
	rowID   int64
	before  value.Row // the pre-mutation row; nil when existed is false
	existed bool      // false: the row did not exist before (an insert)
}

// BeginWrite opens a write frame: registers a mark in the active set and
// installs it as the engine's current mark so mutations tag their version
// entries with it. Frames are serialized by ScopeWAL, so at most one is
// current at a time; the caller must hold ScopeWAL.
func (e *Engine) BeginWrite() *WriteMark {
	m := &WriteMark{}
	e.mvccMu.Lock()
	e.activeMarks[m] = true
	e.mvccMu.Unlock()
	e.curMark.Store(m)
	return m
}

// EndWrite closes a write frame after its effects (commit) or their undo
// (abort) have been applied to the heap. Snapshots created from here on see
// the current heap state for this frame's rows; older snapshots keep reading
// the retained before-images. Prunes version entries no live snapshot needs.
func (e *Engine) EndWrite(m *WriteMark) {
	if m == nil {
		return
	}
	e.curMark.Store(nil)
	e.mvccMu.Lock()
	m.endSeq.Store(e.verSeq.Add(1))
	delete(e.activeMarks, m)
	bound := e.pruneBoundLocked()
	e.mvccMu.Unlock()
	e.pruneVersions(bound, false)
}

// pruneBoundLocked returns the highest finish sequence whose entries are
// provably unneeded: the smallest sequence any live snapshot pinned, clamped
// to the version sequence as of now. The clamp matters because the bound is
// APPLIED after e.mvccMu is released: in that window a write frame can begin,
// mutate and finish, and a snapshot that needs its before-images can be
// created — the frame's finish sequence postdates this bound, so its entries
// survive a prune using it. Entries at or below the bound are visible to
// every present snapshot (their frames finished at or before the oldest
// snapshot's pin) and to every future one (which pins a sequence at least
// this high). Caller holds e.mvccMu.
func (e *Engine) pruneBoundLocked() uint64 {
	bound := e.verSeq.Load()
	for s := range e.snaps {
		if s.seq < bound {
			bound = s.seq
		}
	}
	return bound
}

// pruneEagerLen is the version-list length below which a routine (frame-end)
// prune is skipped. Pruning takes the table's exclusive lock, and that lock
// is write-preferring: taking it after every frame makes a streaming writer
// stall every concurrent snapshot reader's RLock. Batching reclamation to
// every ~pruneEagerLen entries cuts those exclusive acquisitions by the same
// factor while bounding retained garbage to O(pruneEagerLen) per table.
const pruneEagerLen = 64

// pruneVersions drops, from every table, the leading version entries whose
// frames finished at or before bound — no live or future snapshot can need
// their before-images. Prunable entries are always a prefix: frames
// serialize, so finish sequences increase along each list. force bypasses
// the length throttle: the last snapshot's close must reclaim everything it
// pinned, however little, because no later frame end may come.
func (e *Engine) pruneVersions(bound uint64, force bool) {
	for _, t := range e.Tables() {
		t.pruneVersions(bound, force)
	}
}

func (t *Table) pruneVersions(bound uint64, force bool) {
	if !force {
		t.mu.RLock()
		small := len(t.versions) < pruneEagerLen
		t.mu.RUnlock()
		if small {
			return
		}
	}
	t.mu.Lock()
	n := 0
	for n < len(t.versions) {
		end := t.versions[n].mark.endSeq.Load()
		if end == 0 || end > bound {
			break
		}
		n++
	}
	if n > 0 {
		// Advance into the backing array rather than copying the survivors:
		// prune runs on every frame end and snapshot close, and under an
		// interactive-transaction workload the unprunable tail can be long —
		// an O(tail) copy here turns every reader's snapshot close into a
		// stall. The dead prefix is compacted away only once it outweighs
		// the live tail, keeping both the per-prune cost and the retained
		// garbage O(live) amortized.
		t.versions = t.versions[n:]
		t.versionsBase += uint64(n)
		t.versionsDead += n
		if t.versionsDead > len(t.versions) && t.versionsDead > 256 {
			t.versions = append([]versionEntry(nil), t.versions...)
			t.versionsDead = 0
		}
	}
	t.mu.Unlock()
}

// appendVersion records the before-image of a mutated row. Called with t.mu
// held, by the mutation itself. Outside a write frame (recovery replay, WAL
// rollback appliers, direct storage use in tests) there is no current mark
// and nothing is recorded — no snapshots coexist with those paths.
func (t *Table) appendVersion(rowID int64, before value.Row, existed bool) {
	m := t.engine.curMark.Load()
	if m == nil {
		return
	}
	t.versions = append(t.versions, versionEntry{
		seq:     t.engine.verSeq.Add(1),
		mark:    m,
		rowID:   rowID,
		before:  before,
		existed: existed,
	})
}

// Snapshot is a stable read view of the whole engine: rows read through it
// reflect the committed state at creation time, unaffected by concurrent or
// later writers. Snapshots take no latches; they coordinate with writers
// purely through version entries. A Snapshot is used by one cursor at a
// time but is internally locked, and MUST be closed — an open snapshot pins
// version entries engine-wide.
type Snapshot struct {
	eng    *Engine
	seq    uint64
	active map[*WriteMark]bool

	mu       sync.Mutex
	overlays map[*Table]*tableOverlay
	closed   bool
}

// overlayRow is the snapshot's view of one row that has changed since the
// snapshot was taken.
type overlayRow struct {
	vals    value.Row
	existed bool
}

// tableOverlay folds the invisible suffix of one table's version list into a
// rowID-keyed map, advanced incrementally as the list grows.
type tableOverlay struct {
	init     bool
	mergedTo uint64 // absolute version index merged through (versionsBase frame)
	rows     map[int64]overlayRow
}

// NewSnapshot pins a stable read view of the current committed state.
func (e *Engine) NewSnapshot() *Snapshot {
	s := &Snapshot{eng: e, overlays: make(map[*Table]*tableOverlay)}
	e.mvccMu.Lock()
	s.seq = e.verSeq.Load()
	if len(e.activeMarks) > 0 {
		s.active = make(map[*WriteMark]bool, len(e.activeMarks))
		for m := range e.activeMarks {
			s.active[m] = true
		}
	}
	e.snaps[s] = true
	e.mvccMu.Unlock()
	return s
}

// Close releases the snapshot. Idempotent.
//
// Pruning stays a writer-side job: EndWrite reclaims dead entries after every
// frame, so a closing snapshot prunes only when it is the LAST live one — the
// case where writes may have stopped and whatever the final snapshots pinned
// would otherwise linger until the next frame. Closing while other snapshots
// remain changes no prune bound that matters and skips pruneVersions
// entirely; this keeps reader snapshot closes free of exclusive table locks,
// which would otherwise serialize concurrent point reads against each other
// (the per-table mutex is write-preferring).
func (s *Snapshot) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	e := s.eng
	e.mvccMu.Lock()
	delete(e.snaps, s)
	last := len(e.snaps) == 0
	bound := e.pruneBoundLocked()
	e.mvccMu.Unlock()
	if last {
		e.pruneVersions(bound, true)
	}
}

// invisible reports whether the version entry postdates the snapshot.
func (s *Snapshot) invisible(e *versionEntry) bool {
	return e.seq > s.seq || s.active[e.mark]
}

func (s *Snapshot) overlayFor(t *Table) *tableOverlay {
	ov := s.overlays[t]
	if ov == nil {
		ov = &tableOverlay{rows: make(map[int64]overlayRow)}
		s.overlays[t] = ov
	}
	return ov
}

// mergeLocked advances the overlay over version entries appended since the
// last merge. For each row the OLDEST invisible entry wins: its before-image
// is the row as the snapshot must see it. Caller holds s.mu and t.mu (read).
func (s *Snapshot) mergeLocked(ov *tableOverlay, t *Table) {
	end := t.versionsBase + uint64(len(t.versions))
	var start uint64
	if !ov.init {
		// First touch: the invisible entries form a suffix (frames are
		// serialized); scan back to where it starts.
		i := len(t.versions)
		for i > 0 && s.invisible(&t.versions[i-1]) {
			i--
		}
		start = t.versionsBase + uint64(i)
		ov.init = true
	} else {
		if ov.mergedTo >= end {
			return
		}
		start = ov.mergedTo
		if start < t.versionsBase {
			// Entries pruned from under us were visible to every live
			// snapshot (including this one), so nothing was missed.
			start = t.versionsBase
		}
	}
	for abs := start; abs < end; abs++ {
		e := &t.versions[abs-t.versionsBase]
		if !s.invisible(e) {
			continue
		}
		if _, ok := ov.rows[e.rowID]; !ok {
			var vals value.Row
			if e.before != nil {
				vals = e.before.Clone()
			}
			ov.rows[e.rowID] = overlayRow{vals: vals, existed: e.existed}
		}
	}
	ov.mergedTo = end
}

// Get returns the row as of the snapshot, or ErrRowNotFound when the row did
// not exist then (including rows inserted after the snapshot was taken).
func (s *Snapshot) Get(t *Table, rowID int64) (value.Row, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ov := s.overlayFor(t)
	t.mu.RLock()
	s.mergeLocked(ov, t)
	if r, ok := ov.rows[rowID]; ok {
		t.mu.RUnlock()
		if !r.existed {
			return nil, fmt.Errorf("%w: %s row %d", ErrRowNotFound, t.schema.Name, rowID)
		}
		return r.vals.Clone(), nil
	}
	// Unchanged since the snapshot: the current heap image is the answer.
	rid, ok := t.rowIndex[rowID]
	if !ok {
		t.mu.RUnlock()
		return nil, fmt.Errorf("%w: %s row %d", ErrRowNotFound, t.schema.Name, rowID)
	}
	rec, err := t.file.Get(rid)
	t.mu.RUnlock()
	if err != nil {
		return nil, err
	}
	_, row, err := decodeStored(rec)
	return row, err
}

// RowIDs returns the RowIDs live as of the snapshot, ascending: the current
// rows plus rows that existed at snapshot time but were deleted since.
// RowIDs of post-snapshot inserts are included as candidates — Get resolves
// them to ErrRowNotFound, which scans skip — keeping this a cheap superset.
func (s *Snapshot) RowIDs(t *Table) []int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	ov := s.overlayFor(t)
	t.mu.RLock()
	s.mergeLocked(ov, t)
	ids := make([]int64, 0, len(t.rowIndex)+len(ov.rows))
	for id := range t.rowIndex {
		ids = append(ids, id)
	}
	t.mu.RUnlock()
	for id, r := range ov.rows {
		if r.existed {
			ids = append(ids, id)
		}
	}
	return sortDedupeIDs(ids)
}

// AugmentRowIDs widens an index-probe candidate list with every row the
// snapshot sees differently from the current state. Index trees reflect the
// CURRENT rows, so a probe can miss rows whose snapshot-time values matched
// the probed key but were updated or deleted since; the overlay holds
// exactly those rows. Callers re-evaluate their predicates per row, so a
// superset is safe.
func (s *Snapshot) AugmentRowIDs(t *Table, ids []int64) []int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	ov := s.overlayFor(t)
	t.mu.RLock()
	s.mergeLocked(ov, t)
	t.mu.RUnlock()
	if len(ov.rows) == 0 {
		return ids
	}
	merged := make([]int64, 0, len(ids)+len(ov.rows))
	merged = append(merged, ids...)
	for id, r := range ov.rows {
		if r.existed {
			merged = append(merged, id)
		}
	}
	return sortDedupeIDs(merged)
}

func sortDedupeIDs(ids []int64) []int64 {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := ids[:0]
	var prev int64
	for i, id := range ids {
		if i > 0 && id == prev {
			continue
		}
		out = append(out, id)
		prev = id
	}
	return out
}
