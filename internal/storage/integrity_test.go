package storage

// Tests for Table.CheckIntegrity: a healthy table reports nothing, and each
// way the heap, the row index and the secondary B+-trees can disagree is
// reported. Tampering reaches into the private structures directly — these
// states are unreachable through the API, which is exactly why the check
// exists (a recovery or eviction bug would be how they arise in the field).

import (
	"strings"
	"testing"

	"bdbms/internal/heap"
	"bdbms/internal/value"
)

// integrityTable builds an indexed table with a few rows.
func integrityTable(t *testing.T) *Table {
	t.Helper()
	e := NewMemoryEngine()
	tbl, err := e.CreateTable(geneSchema("Gene"))
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateIndex("GName"); err != nil {
		t.Fatal(err)
	}
	for i, r := range []value.Row{
		geneRow("JW0080", "mraW", "ATGATGG"),
		geneRow("JW0082", "ftsI", "ATGAAAG"),
		geneRow("JW0090", "mraW", "CCGATTA"),
	} {
		if _, err := tbl.Insert(r); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	return tbl
}

func requireProblem(t *testing.T, problems []string, substr string) {
	t.Helper()
	for _, p := range problems {
		if strings.Contains(p, substr) {
			return
		}
	}
	t.Errorf("no problem mentioning %q in %q", substr, problems)
}

func TestCheckIntegrityClean(t *testing.T) {
	tbl := integrityTable(t)
	if problems := tbl.CheckIntegrity(); len(problems) != 0 {
		t.Fatalf("healthy table reports problems: %q", problems)
	}
}

func TestCheckIntegrityDetectsMissingRowIndexEntry(t *testing.T) {
	tbl := integrityTable(t)
	tbl.mu.Lock()
	delete(tbl.rowIndex, 2)
	tbl.mu.Unlock()
	requireProblem(t, tbl.CheckIntegrity(), "row index")
}

func TestCheckIntegrityDetectsDanglingRowIndexEntry(t *testing.T) {
	tbl := integrityTable(t)
	tbl.mu.Lock()
	tbl.rowIndex[99] = heap.RID{Page: 0, Slot: 999}
	tbl.mu.Unlock()
	requireProblem(t, tbl.CheckIntegrity(), "99")
}

func TestCheckIntegrityDetectsMissingIndexEntry(t *testing.T) {
	tbl := integrityTable(t)
	tbl.mu.Lock()
	tree := tbl.indexes["gname"]
	tbl.mu.Unlock()
	if tree == nil {
		t.Fatal("no gname index")
	}
	// Remove one heap row's posting from the secondary index.
	if err := tree.Delete(value.NewText("ftsI").EncodeKey(nil), rowIDBytes(2)); err != nil {
		t.Fatal(err)
	}
	requireProblem(t, tbl.CheckIntegrity(), "missing")
}

func TestCheckIntegrityDetectsStaleIndexEntry(t *testing.T) {
	tbl := integrityTable(t)
	tbl.mu.Lock()
	tree := tbl.indexes["gname"]
	tbl.mu.Unlock()
	// An entry pointing at a row that does not exist.
	tree.Insert(value.NewText("ghost").EncodeKey(nil), rowIDBytes(42))
	requireProblem(t, tbl.CheckIntegrity(), "42")
}

func TestCheckIntegrityDetectsWrongIndexKey(t *testing.T) {
	tbl := integrityTable(t)
	tbl.mu.Lock()
	tree := tbl.indexes["gname"]
	tbl.mu.Unlock()
	// Re-key row 2 under a value its heap row does not hold: the stale key
	// and the missing true key must both surface.
	if err := tree.Delete(value.NewText("ftsI").EncodeKey(nil), rowIDBytes(2)); err != nil {
		t.Fatal(err)
	}
	tree.Insert(value.NewText("WRONG").EncodeKey(nil), rowIDBytes(2))
	problems := tbl.CheckIntegrity()
	if len(problems) == 0 {
		t.Fatal("re-keyed index entry not detected")
	}
}

func TestCheckIntegrityDetectsNextRowTooLow(t *testing.T) {
	tbl := integrityTable(t)
	tbl.mu.Lock()
	tbl.nextRow = 2 // rows 1..3 exist, so the next insert would collide
	tbl.mu.Unlock()
	requireProblem(t, tbl.CheckIntegrity(), "next-RowID")
}
