package storage

// Per-scope write latches replace the old engine-wide exclusive statement
// lock. A scope is a name — usually a table name, plus two reserved scopes —
// and at most one Locker owns a scope at a time. Readers never appear here:
// SELECT cursors read MVCC snapshots (see mvcc.go) and take no latches at
// all. Writers latch exactly what they touch, so writes on disjoint tables
// only serialize where they genuinely conflict (the shared WAL frame).
//
// Deadlock strategy, two-layered:
//
//   - Statements that know their full scope set up front (auto-commit DML,
//     DDL) acquire it as one sorted batch, so they can never cycle with each
//     other.
//   - Explicit transactions latch incrementally, statement by statement, and
//     hold everything until commit (strict two-phase locking — this is what
//     keeps writer isolation serializable). Incremental acquisition can
//     cycle, so every wait runs a wait-for-graph walk first and the locker
//     that would close a cycle gets ErrDeadlock instead of blocking.

import (
	"errors"
	"sort"
	"sync"
)

// Reserved scope names. The \x00 prefix keeps them out of the table
// namespace and sorts them ahead of every table in batch acquisition.
const (
	// ScopeSchema serializes DDL: table create/drop and index builds latch it
	// alongside the table scope, so catalog shape changes are one-at-a-time.
	ScopeSchema = "\x00schema"
	// ScopeWAL serializes WAL transaction frames. The log's frame state is a
	// single slot (records carry no transaction ID), so the frame of one
	// writer — from its first logged mutation to its commit record — must
	// finish before another begins. Every mutating statement or transaction
	// acquires ScopeWAL before arming its frame and holds it until the frame
	// closes.
	ScopeWAL = "\x00wal"
)

// ErrDeadlock is returned when acquiring a scope would close a wait cycle
// between lockers. The statement that receives it fails (its transaction
// survives and still holds its latches); retrying after the conflicting
// transaction finishes succeeds.
var ErrDeadlock = errors.New("storage: deadlock detected between concurrent transactions")

// LockManager hands out named exclusive scopes and the "world" lock that
// maintenance operations (checkpoint, verify, backup) use to quiesce all
// writers at once.
type LockManager struct {
	mu     sync.Mutex
	cond   *sync.Cond
	owners map[string]*Locker
	// queues holds, per contended scope, the lockers waiting for it in
	// arrival order. Grants are FIFO: a freed scope goes to the queue head,
	// never to whichever waiter happens to wake first — without this, a
	// steady stream of writers can starve one unlucky transaction for
	// seconds (cond.Broadcast wakes all waiters and lets them barge).
	queues map[string][]*Locker

	// world is held shared by every locker for as long as it holds any
	// scope, and exclusively by Quiesce. Snapshot readers bypass it: they
	// coordinate with writers through row versions, not locks.
	world sync.RWMutex
}

// NewLockManager builds an empty lock manager.
func NewLockManager() *LockManager {
	lm := &LockManager{owners: make(map[string]*Locker), queues: make(map[string][]*Locker)}
	lm.cond = sync.NewCond(&lm.mu)
	return lm
}

// Quiesce blocks until every writer has released its scopes and keeps new
// writers out until Resume. Checkpoint, Verify and Backup run under it so
// they observe no half-applied statement.
func (lm *LockManager) Quiesce() { lm.world.Lock() }

// Resume lets writers back in after Quiesce.
func (lm *LockManager) Resume() { lm.world.Unlock() }

// Locker is one lock-holding actor: an auto-commit statement or an explicit
// transaction. Scopes accumulate across Acquire calls and are released all
// at once — strict two-phase locking.
type Locker struct {
	lm   *LockManager
	held map[string]bool
	// waiting is the scope this locker currently blocks on ("" when
	// running); it is the wait-for edge of the deadlock detector. Guarded by
	// lm.mu.
	waiting string
	world   bool // holds lm.world.RLock
}

// NewLocker creates a locker with no scopes.
func (lm *LockManager) NewLocker() *Locker {
	return &Locker{lm: lm, held: make(map[string]bool)}
}

// Acquire takes exclusive ownership of every scope, sorted so that batch
// acquirers cannot cycle with each other. Already-held scopes are skipped —
// re-latching within a transaction is a no-op. On ErrDeadlock nothing new
// was acquired beyond the scopes taken earlier in this same call; the locker
// keeps everything it held before the call (release is all-or-nothing at
// ReleaseAll).
func (l *Locker) Acquire(scopes ...string) error {
	lm := l.lm
	want := make([]string, 0, len(scopes))
	seen := make(map[string]bool, len(scopes))
	for _, s := range scopes {
		if s == "" || seen[s] || l.held[s] {
			continue
		}
		seen[s] = true
		want = append(want, s)
	}
	if len(want) == 0 {
		return nil
	}
	sort.Strings(want)
	if !l.world {
		// Taken before lm.mu: a pending Quiesce blocks new writers here
		// while current holders (which already hold the shared side) drain.
		lm.world.RLock()
		l.world = true
	}
	lm.mu.Lock()
	defer lm.mu.Unlock()
	for _, s := range want {
		lm.queues[s] = append(lm.queues[s], l)
		for {
			owner := lm.owners[s]
			if owner == l {
				lm.dequeue(s, l)
				break
			}
			if owner == nil && lm.queues[s][0] == l {
				lm.owners[s] = l
				l.held[s] = true
				lm.dequeue(s, l)
				break
			}
			// The locker blocking us is the current owner or — when the scope
			// is momentarily free but we are not at the head — the waiter the
			// grant belongs to. A queue head is never blocked on anything
			// else (a locker sits in at most one queue, the one it currently
			// waits on), so routing the deadlock walk through it is safe.
			blocker := owner
			if blocker == nil {
				blocker = lm.queues[s][0]
			}
			if lm.wouldDeadlock(l, blocker) {
				l.waiting = ""
				lm.dequeue(s, l)
				// Our departure may promote the waiter behind us to head.
				lm.cond.Broadcast()
				l.releaseWorldIfIdle()
				return ErrDeadlock
			}
			l.waiting = s
			lm.cond.Wait()
		}
		l.waiting = ""
	}
	return nil
}

// dequeue removes the locker from the scope's FIFO wait queue. Called with
// lm.mu held.
func (lm *LockManager) dequeue(s string, l *Locker) {
	q := lm.queues[s]
	for i, w := range q {
		if w == l {
			lm.queues[s] = append(q[:i], q[i+1:]...)
			break
		}
	}
	if len(lm.queues[s]) == 0 {
		delete(lm.queues, s)
	}
}

// wouldDeadlock walks the wait-for chain starting at owner and reports
// whether it leads back to me. Called with lm.mu held. Chains, not trees:
// each locker waits on at most one scope at a time, so the walk is a simple
// pointer chase with a visited set against concurrent-release artifacts.
func (lm *LockManager) wouldDeadlock(me, owner *Locker) bool {
	visited := make(map[*Locker]bool)
	for cur := owner; cur != nil && !visited[cur]; {
		if cur == me {
			return true
		}
		visited[cur] = true
		next := cur.waiting
		if next == "" {
			return false
		}
		cur = lm.owners[next]
	}
	return false
}

// releaseWorldIfIdle drops the shared world lock when no scopes are held, so
// a failed first Acquire does not pin maintenance out. Called with lm.mu
// held (safe: world is a different lock).
func (l *Locker) releaseWorldIfIdle() {
	if l.world && len(l.held) == 0 {
		l.lm.world.RUnlock()
		l.world = false
	}
}

// Holds reports whether the locker currently owns the scope.
func (l *Locker) Holds(scope string) bool {
	l.lm.mu.Lock()
	defer l.lm.mu.Unlock()
	return l.held[scope]
}

// HeldScopes returns the scopes currently owned, sorted. Diagnostic.
func (l *Locker) HeldScopes() []string {
	l.lm.mu.Lock()
	defer l.lm.mu.Unlock()
	out := make([]string, 0, len(l.held))
	for s := range l.held {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// ReleaseAll releases every held scope and the shared world lock, waking all
// waiters. Idempotent.
func (l *Locker) ReleaseAll() {
	lm := l.lm
	lm.mu.Lock()
	for s := range l.held {
		if lm.owners[s] == l {
			delete(lm.owners, s)
		}
		delete(l.held, s)
	}
	lm.cond.Broadcast()
	lm.mu.Unlock()
	if l.world {
		lm.world.RUnlock()
		l.world = false
	}
}
