package storage

import (
	"errors"
	"fmt"
	"testing"

	"bdbms/internal/catalog"
	"bdbms/internal/undo"
	"bdbms/internal/value"
	"bdbms/internal/wal"
)

func geneSchema(name string) *catalog.Schema {
	return &catalog.Schema{
		Name: name,
		Columns: []catalog.Column{
			{Name: "GID", Type: value.Text, NotNull: true},
			{Name: "GName", Type: value.Text},
			{Name: "GSequence", Type: value.Sequence},
		},
		PrimaryKey: "GID",
	}
}

func geneRow(id, name, seq string) value.Row {
	return value.Row{value.NewText(id), value.NewText(name), value.NewSequence(seq)}
}

func TestCreateTableAndInsert(t *testing.T) {
	e := NewMemoryEngine()
	tbl, err := e.CreateTable(geneSchema("Gene"))
	if err != nil {
		t.Fatal(err)
	}
	id1, err := tbl.Insert(geneRow("JW0080", "mraW", "ATGATGG"))
	if err != nil {
		t.Fatal(err)
	}
	id2, err := tbl.Insert(geneRow("JW0082", "ftsI", "ATGAAAG"))
	if err != nil {
		t.Fatal(err)
	}
	if id1 != 1 || id2 != 2 {
		t.Errorf("row IDs = %d, %d", id1, id2)
	}
	if tbl.RowCount() != 2 {
		t.Errorf("RowCount = %d", tbl.RowCount())
	}
	row, err := tbl.Get(id1)
	if err != nil {
		t.Fatal(err)
	}
	if row[0].Text() != "JW0080" || row[2].Text() != "ATGATGG" {
		t.Errorf("row = %v", row)
	}
	if _, err := tbl.Get(99); !errors.Is(err, ErrRowNotFound) {
		t.Errorf("missing row: %v", err)
	}
	if !e.HasTable("gene") || e.HasTable("nope") {
		t.Error("HasTable wrong")
	}
	if len(e.Tables()) != 1 {
		t.Error("Tables() wrong")
	}
}

func TestPrimaryKeyUniqueness(t *testing.T) {
	e := NewMemoryEngine()
	tbl, _ := e.CreateTable(geneSchema("Gene"))
	if _, err := tbl.Insert(geneRow("JW0080", "mraW", "ATG")); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Insert(geneRow("JW0080", "dup", "CCC")); !errors.Is(err, ErrDuplicateKey) {
		t.Errorf("duplicate pk: %v", err)
	}
	// Update to an existing key must also fail.
	id2, _ := tbl.Insert(geneRow("JW0090", "x", "GGG"))
	if err := tbl.Update(id2, geneRow("JW0080", "x", "GGG")); !errors.Is(err, ErrDuplicateKey) {
		t.Errorf("update to duplicate pk: %v", err)
	}
	// Updating a row keeping its own key is fine.
	if err := tbl.Update(id2, geneRow("JW0090", "renamed", "GGG")); err != nil {
		t.Fatal(err)
	}
	rowID, err := tbl.FindByPrimaryKey(value.NewText("JW0090"))
	if err != nil || rowID != id2 {
		t.Errorf("FindByPrimaryKey = %d, %v", rowID, err)
	}
	if _, err := tbl.FindByPrimaryKey(value.NewText("missing")); err == nil {
		t.Error("missing pk should fail")
	}
}

func TestSchemaValidationOnInsert(t *testing.T) {
	e := NewMemoryEngine()
	tbl, _ := e.CreateTable(geneSchema("Gene"))
	if _, err := tbl.Insert(value.Row{value.NewText("x")}); err == nil {
		t.Error("arity mismatch should fail")
	}
	if _, err := tbl.Insert(value.Row{value.NewNull(), value.NewText("n"), value.NewText("s")}); err == nil {
		t.Error("NOT NULL violation should fail")
	}
}

func TestUpdateAndDelete(t *testing.T) {
	e := NewMemoryEngine()
	tbl, _ := e.CreateTable(geneSchema("Gene"))
	id, _ := tbl.Insert(geneRow("JW0080", "mraW", "ATG"))
	if err := tbl.UpdateColumn(id, "GSequence", value.NewSequence("ATGCCC")); err != nil {
		t.Fatal(err)
	}
	v, err := tbl.GetColumn(id, "GSequence")
	if err != nil || v.Text() != "ATGCCC" {
		t.Fatalf("GetColumn = %v, %v", v, err)
	}
	if _, err := tbl.GetColumn(id, "Nope"); err == nil {
		t.Error("unknown column should fail")
	}
	if err := tbl.UpdateColumn(id, "Nope", value.NewInt(1)); err == nil {
		t.Error("unknown column update should fail")
	}
	if err := tbl.Delete(id); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Delete(id); !errors.Is(err, ErrRowNotFound) {
		t.Errorf("double delete: %v", err)
	}
	if err := tbl.Update(id, geneRow("JW0080", "x", "y")); !errors.Is(err, ErrRowNotFound) {
		t.Errorf("update deleted row: %v", err)
	}
	if tbl.RowCount() != 0 {
		t.Error("RowCount after delete")
	}
	// Primary key becomes reusable after delete.
	if _, err := tbl.Insert(geneRow("JW0080", "again", "AAA")); err != nil {
		t.Errorf("reinsert after delete: %v", err)
	}
}

func TestScanOrderAndEarlyStop(t *testing.T) {
	e := NewMemoryEngine()
	tbl, _ := e.CreateTable(geneSchema("Gene"))
	for i := 0; i < 100; i++ {
		if _, err := tbl.Insert(geneRow(fmt.Sprintf("JW%04d", i), "g", "ATG")); err != nil {
			t.Fatal(err)
		}
	}
	var ids []int64
	if err := tbl.Scan(func(rowID int64, row value.Row) bool {
		ids = append(ids, rowID)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(ids) != 100 {
		t.Fatalf("scanned %d rows", len(ids))
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatal("scan not in RowID order")
		}
	}
	count := 0
	tbl.Scan(func(int64, value.Row) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Errorf("early stop visited %d", count)
	}
}

func TestSecondaryIndexes(t *testing.T) {
	e := NewMemoryEngine()
	tbl, _ := e.CreateTable(geneSchema("Gene"))
	for i := 0; i < 50; i++ {
		name := "even"
		if i%2 == 1 {
			name = "odd"
		}
		tbl.Insert(geneRow(fmt.Sprintf("JW%04d", i), name, "ATG"))
	}
	if _, err := tbl.LookupEqual("GName", value.NewText("even")); !errors.Is(err, ErrNoIndex) {
		t.Errorf("lookup without index: %v", err)
	}
	if err := tbl.CreateIndex("GName"); err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateIndex("GName"); err != nil {
		t.Errorf("re-creating index should be a no-op: %v", err)
	}
	if err := tbl.CreateIndex("Missing"); err == nil {
		t.Error("index on missing column should fail")
	}
	if !tbl.HasIndex("gname") || tbl.HasIndex("gsequence") {
		t.Error("HasIndex wrong")
	}
	ids, err := tbl.LookupEqual("GName", value.NewText("even"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 25 {
		t.Errorf("LookupEqual found %d rows, want 25", len(ids))
	}
	// Index maintenance on update and delete.
	if err := tbl.UpdateColumn(ids[0], "GName", value.NewText("odd")); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Delete(ids[1]); err != nil {
		t.Fatal(err)
	}
	ids2, _ := tbl.LookupEqual("GName", value.NewText("even"))
	if len(ids2) != 23 {
		t.Errorf("after update+delete, even count = %d, want 23", len(ids2))
	}
	// Range lookup over the primary key.
	rangeIDs, err := tbl.LookupRange("GID", value.NewText("JW0000"), value.NewText("JW0010"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rangeIDs) != 9 { // JW0000..JW0009 excluding deleted JW0003? No: deleted row was an even index
		// Recompute expectation: rows JW0000..JW0009 exist except any deleted; ids[1] was the second
		// "even" row = JW0002.
		t.Logf("range ids = %v", rangeIDs)
	}
	if _, err := tbl.LookupRange("GSequence", value.NewNull(), value.NewNull()); !errors.Is(err, ErrNoIndex) {
		t.Errorf("range on unindexed column: %v", err)
	}
}

func TestWALRecordsMutations(t *testing.T) {
	e := NewMemoryEngine()
	tbl, _ := e.CreateTable(geneSchema("Gene"))
	id, _ := tbl.Insert(geneRow("JW0080", "mraW", "ATG"))
	tbl.UpdateColumn(id, "GName", value.NewText("renamed"))
	tbl.Delete(id)
	recs := e.WAL().Records()
	if len(recs) != 4 {
		t.Fatalf("WAL has %d records, want 4 (DDL + 3 mutations)", len(recs))
	}
	kinds := []wal.Kind{wal.KindCreateTable, wal.KindInsert, wal.KindUpdate, wal.KindDelete}
	for i, k := range kinds {
		if recs[i].Kind != k || recs[i].Table != "Gene" {
			t.Errorf("record %d = %v %s", i, recs[i].Kind, recs[i].Table)
		}
	}
}

func TestDropTable(t *testing.T) {
	e := NewMemoryEngine()
	e.CreateTable(geneSchema("Gene"))
	if err := e.DropTable("Gene"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Table("Gene"); err == nil {
		t.Error("dropped table still reachable")
	}
	if err := e.DropTable("Gene"); err == nil {
		t.Error("double drop should fail")
	}
}

func TestEngineStats(t *testing.T) {
	e := NewMemoryEngine()
	tbl, _ := e.CreateTable(geneSchema("Gene"))
	for i := 0; i < 200; i++ {
		tbl.Insert(geneRow(fmt.Sprintf("JW%04d", i), "g", "ATGATGATGATG"))
	}
	if e.PagerStats().Allocs == 0 {
		t.Error("expected page allocations")
	}
	if e.BufferStats().Misses == 0 {
		t.Error("expected buffer misses")
	}
	e.ResetPagerStats()
	if e.PagerStats().Reads != 0 {
		t.Error("ResetPagerStats failed")
	}
	if err := e.FlushAll(); err != nil {
		t.Fatal(err)
	}
}

func TestNextRowID(t *testing.T) {
	e := NewMemoryEngine()
	tbl, _ := e.CreateTable(geneSchema("Gene"))
	if tbl.NextRowID() != 1 {
		t.Error("fresh table NextRowID should be 1")
	}
	tbl.Insert(geneRow("JW0001", "a", "A"))
	if tbl.NextRowID() != 2 {
		t.Error("NextRowID should advance")
	}
}

func intSchema(name string) *catalog.Schema {
	return &catalog.Schema{
		Name: name,
		Columns: []catalog.Column{
			{Name: "ID", Type: value.Int, NotNull: true},
			{Name: "N", Type: value.Int},
		},
		PrimaryKey: "ID",
	}
}

func TestIndexLookupSorted(t *testing.T) {
	e := NewMemoryEngine()
	tbl, _ := e.CreateTable(intSchema("T"))
	if err := tbl.CreateIndex("N"); err != nil {
		t.Fatal(err)
	}
	// Insert duplicates of N=5 in non-ascending RowID-vs-key interleaving.
	for i, n := range []int64{5, 9, 5, 1, 5} {
		if _, err := tbl.Insert(value.Row{value.NewInt(int64(i + 1)), value.NewInt(n)}); err != nil {
			t.Fatal(err)
		}
	}
	ids, err := tbl.IndexLookup("N", value.NewInt(5))
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{1, 3, 5}
	if len(ids) != len(want) {
		t.Fatalf("IndexLookup = %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("IndexLookup = %v, want %v (sorted by RowID)", ids, want)
		}
	}
	if _, err := tbl.IndexLookup("NoSuch", value.NewInt(1)); !errors.Is(err, ErrNoIndex) {
		t.Errorf("IndexLookup on unindexed column: err = %v, want ErrNoIndex", err)
	}
}

func TestIndexRangeBounds(t *testing.T) {
	e := NewMemoryEngine()
	tbl, _ := e.CreateTable(intSchema("T"))
	for id := int64(1); id <= 9; id++ {
		if _, err := tbl.Insert(value.Row{value.NewInt(id), value.NewInt(id * 10)}); err != nil {
			t.Fatal(err)
		}
	}
	null := value.NewNull()
	cases := []struct {
		lo, hi             value.Value
		loStrict, hiStrict bool
		want               []int64
	}{
		{value.NewInt(3), null, false, false, []int64{3, 4, 5, 6, 7, 8, 9}}, // ID >= 3
		{value.NewInt(3), null, true, false, []int64{4, 5, 6, 7, 8, 9}},     // ID > 3
		{null, value.NewInt(3), false, false, []int64{1, 2, 3}},             // ID <= 3
		{null, value.NewInt(3), false, true, []int64{1, 2}},                 // ID < 3
		{value.NewInt(2), value.NewInt(5), false, false, []int64{2, 3, 4, 5}},
		{value.NewInt(2), value.NewInt(5), true, true, []int64{3, 4}},
		{value.NewInt(7), value.NewInt(3), false, false, nil}, // empty range
		{null, null, false, false, []int64{1, 2, 3, 4, 5, 6, 7, 8, 9}},
	}
	for _, tc := range cases {
		got, err := tbl.IndexRange("ID", tc.lo, tc.loStrict, tc.hi, tc.hiStrict)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(tc.want) {
			t.Errorf("IndexRange(%v/%v, %v/%v) = %v, want %v", tc.lo, tc.loStrict, tc.hi, tc.hiStrict, got, tc.want)
			continue
		}
		for i := range tc.want {
			if got[i] != tc.want[i] {
				t.Errorf("IndexRange(%v/%v, %v/%v) = %v, want %v", tc.lo, tc.loStrict, tc.hi, tc.hiStrict, got, tc.want)
				break
			}
		}
	}
}

func TestUpdatePayloadRoundTrip(t *testing.T) {
	oldRow := value.Row{value.NewText("a"), value.NewInt(1)}
	newRow := value.Row{value.NewText("b"), value.NewInt(2)}
	payload := EncodeUpdatePayload(7, oldRow, newRow)
	rowID, gotOld, gotNew, err := DecodeUpdatePayload(payload)
	if err != nil {
		t.Fatal(err)
	}
	if rowID != 7 {
		t.Errorf("rowID = %d", rowID)
	}
	if !gotOld[0].Equal(oldRow[0]) || !gotOld[1].Equal(oldRow[1]) {
		t.Errorf("before-image %v, want %v", gotOld, oldRow)
	}
	if !gotNew[0].Equal(newRow[0]) || !gotNew[1].Equal(newRow[1]) {
		t.Errorf("after-image %v, want %v", gotNew, newRow)
	}
	// Truncated or garbage payloads must error, not panic.
	for _, bad := range [][]byte{nil, {0x80}, payload[:3], payload[:len(payload)-2]} {
		if _, _, _, err := DecodeUpdatePayload(bad); err == nil {
			t.Errorf("DecodeUpdatePayload(%v) succeeded on malformed input", bad)
		}
	}
}

func TestEngineUndoHooksRevertMutations(t *testing.T) {
	eng := NewMemoryEngine()
	u := undo.New()
	eng.SetUndo(u)
	tbl, err := eng.CreateTable(geneSchema("Gene"))
	if err != nil {
		t.Fatal(err)
	}
	id, err := tbl.Insert(value.Row{value.NewText("JW1"), value.NewText("x"), value.NewSequence("AC")})
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Update(id, value.Row{value.NewText("JW1"), value.NewText("y"), value.NewSequence("GT")}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateIndex("GName"); err != nil {
		t.Fatal(err)
	}
	if err := u.Rollback(); err != nil {
		t.Fatal(err)
	}
	if eng.HasTable("Gene") {
		t.Error("undo did not revert CREATE TABLE")
	}
	// With the hook cleared, mutations stop pushing undo actions.
	eng.SetUndo(nil)
	if _, err := eng.CreateTable(geneSchema("Gene2")); err != nil {
		t.Fatal(err)
	}
	if u.Len() != 0 {
		t.Errorf("cleared undo hook still recorded %d actions", u.Len())
	}
}
