package storage

// Storage-level lifecycle of the planner statistics: lazy build on first
// Stats call, incremental maintenance through Insert/Update/Delete, drift-
// triggered rebuild, the recovery hooks (AdoptStats / FreshenStats), and the
// index-order enumeration the sort-elision plan relies on.

import (
	"errors"
	"fmt"
	"testing"

	"bdbms/internal/catalog"
	"bdbms/internal/stats"
	"bdbms/internal/value"
)

func scoreSchema(name string) *catalog.Schema {
	return &catalog.Schema{
		Name: name,
		Columns: []catalog.Column{
			{Name: "ID", Type: value.Int, NotNull: true},
			{Name: "Score", Type: value.Int},
		},
		PrimaryKey: "ID",
	}
}

func scoreRow(id int64, score any) value.Row {
	v := value.NewNull()
	if s, ok := score.(int); ok {
		v = value.NewInt(int64(s))
	}
	return value.Row{value.NewInt(id), v}
}

func TestStatsLazyBuildAndIncrementalMaintenance(t *testing.T) {
	e := NewMemoryEngine()
	tbl, err := e.CreateTable(scoreSchema("S"))
	if err != nil {
		t.Fatal(err)
	}
	if cur := tbl.CurrentStats(); cur != nil {
		t.Fatalf("statistics exist before first Stats call: %+v", cur)
	}
	for i := int64(1); i <= 10; i++ {
		if _, err := tbl.Insert(scoreRow(i, int(i%4))); err != nil {
			t.Fatal(err)
		}
	}
	st := tbl.Stats()
	if st == nil || st.Rows != 10 || st.Mods != 0 {
		t.Fatalf("first build: %+v", st)
	}
	if st.Cols[1].Distinct != 4 || !st.Cols[1].HasRange || st.Cols[1].Min != 0 || st.Cols[1].Max != 3 {
		t.Fatalf("Score column stats: %+v", st.Cols[1])
	}

	// Mutations maintain the exact fields and widen the range.
	id, err := tbl.Insert(scoreRow(11, 99))
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Update(id, scoreRow(11, nil)); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Delete(1); err != nil {
		t.Fatal(err)
	}
	cur := tbl.CurrentStats()
	if cur.Rows != 10 || cur.Mods != 4 {
		t.Fatalf("after insert+update+delete: %+v", cur)
	}
	if cur.Cols[1].Nulls != 1 || cur.Cols[1].Max != 99 {
		t.Fatalf("Score column after churn: %+v", cur.Cols[1])
	}

	// A non-drifted Stats call serves the cached snapshot unchanged.
	if again := tbl.Stats(); again.Mods != 4 {
		t.Fatalf("cached Stats rebuilt early: %+v", again)
	}

	// ComputeStats is a pure recompute: exact, and it must not touch the cache.
	exact, err := tbl.ComputeStats()
	if err != nil {
		t.Fatal(err)
	}
	if exact.Mods != 0 || exact.Rows != 10 {
		t.Fatalf("recompute: %+v", exact)
	}
	if tbl.CurrentStats().Mods != 4 {
		t.Fatal("ComputeStats mutated the cached statistics")
	}

	// Enough churn crosses the drift threshold and the next Stats rebuilds.
	for i := 0; i < 70; i++ {
		rid, err := tbl.Insert(scoreRow(int64(100+i), i))
		if err != nil {
			t.Fatal(err)
		}
		if err := tbl.Delete(rid); err != nil {
			t.Fatal(err)
		}
	}
	if !tbl.CurrentStats().Drifted() {
		t.Fatalf("140 mods on a 10-row base should drift: %+v", tbl.CurrentStats())
	}
	fresh := tbl.Stats()
	if fresh.Mods != 0 || fresh.Rows != 10 {
		t.Fatalf("drift-triggered rebuild: %+v", fresh)
	}
}

func TestStatsAdoptAndFreshen(t *testing.T) {
	e := NewMemoryEngine()
	tbl, err := e.CreateTable(scoreSchema("S"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Insert(scoreRow(1, 5)); err != nil {
		t.Fatal(err)
	}

	// A snapshot with the wrong arity is discarded, not installed.
	tbl.AdoptStats(&stats.Table{Rows: 1, Cols: []stats.Column{{}}})
	if tbl.CurrentStats() != nil {
		t.Fatal("mis-shaped snapshot was adopted")
	}
	tbl.AdoptStats(nil)
	if tbl.CurrentStats() != nil {
		t.Fatal("nil snapshot was adopted")
	}

	// FreshenStats without statistics (or without mods) is a no-op.
	tbl.FreshenStats()
	if tbl.CurrentStats() != nil {
		t.Fatal("FreshenStats invented statistics")
	}

	good := tbl.Stats()
	tbl.FreshenStats()
	if !tbl.CurrentStats().Equal(good) {
		t.Fatal("FreshenStats with zero mods rebuilt")
	}

	// Adopt a checkpoint snapshot with pending mods; freshening must leave
	// state equal to an exact recompute.
	snap := good.Clone()
	snap.Mods = 3
	snap.Cols[1].Distinct += 2
	tbl.AdoptStats(snap)
	tbl.FreshenStats()
	exact, err := tbl.ComputeStats()
	if err != nil {
		t.Fatal(err)
	}
	if !tbl.CurrentStats().Equal(exact) {
		t.Fatalf("freshened != exact:\n cur: %+v\nexact: %+v", tbl.CurrentStats(), exact)
	}
}

func TestIndexOrderedRowIDs(t *testing.T) {
	e := NewMemoryEngine()
	tbl, err := e.CreateTable(scoreSchema("S"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.IndexOrderedRowIDs("Score"); !errors.Is(err, ErrNoIndex) {
		t.Fatalf("unindexed column: %v", err)
	}
	if err := tbl.CreateIndex("Score"); err != nil {
		t.Fatal(err)
	}
	if !tbl.HasIndex("score") {
		t.Fatal("HasIndex(score) must be true (case-insensitive)")
	}
	// Insert out of key order, with a duplicate key to prove RowID-ascending
	// runs within equal keys.
	for i, score := range []int{30, 10, 20, 10} {
		if _, err := tbl.Insert(scoreRow(int64(i+1), score)); err != nil {
			t.Fatal(err)
		}
	}
	ids, err := tbl.IndexOrderedRowIDs("Score")
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{2, 4, 3, 1} // scores 10,10,20,30; ties by RowID
	if fmt.Sprint(ids) != fmt.Sprint(want) {
		t.Fatalf("index order = %v, want %v", ids, want)
	}
}
