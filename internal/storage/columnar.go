package storage

// Columnar scan cache: a column-major mirror of one table's heap, built
// lazily for the vectorized executor (internal/exec/batch.go) and usable only
// for scan shapes that read the table exactly as the current heap stores it.
//
// The cache is a pure acceleration structure — the heap stays the source of
// truth. Consistency is a two-part handshake:
//
//   - every heap mutation bumps Table.writeSeq and drops the cached pointer
//     (Table.noteWrite); a ColData carries the writeSeq observed under the
//     table's read lock while it was built, so ColData.WriteSeq ==
//     Table.WriteSeq() proves the cache still mirrors the current heap;
//   - the executor additionally asks the MVCC layer whether its snapshot
//     sees the current heap for the table (Snapshot.SeesCurrentHeap): a
//     non-empty overlay means some row must be read as a before-image, and
//     the scan falls back to the row-at-a-time path.
//
// Rows are sliced into chunks of ColChunkRows in ascending RowID order — the
// same order (and, by the handshake above, the same row set) the row scan
// produces. Within a chunk each column becomes a typed vector: INT and FLOAT
// columns as raw int64/float64 slices, TEXT/SEQUENCE columns either raw or
// dictionary-coded when the chunk holds few distinct strings, everything else
// as boxed values. The dictionary code vector and the NULL-validity vector
// are byte strings, and internal/rle compresses them per chunk whenever the
// run-length form is smaller — which is exactly the annotation-heavy /
// low-cardinality / mostly-non-NULL shapes the paper's workloads produce.

import (
	"bdbms/internal/catalog"
	"bdbms/internal/rle"
	"bdbms/internal/value"
)

// ColChunkRows is the number of rows per columnar chunk; the executor's batch
// size. Cache-resident vectors of this length keep a scan's working set in
// L1/L2 while amortizing per-batch overhead over ~1k rows.
const ColChunkRows = 1024

// colCacheMaxRows bounds the table size the cache will mirror: the columnar
// copy roughly doubles the table's resident footprint, which is the wrong
// trade for huge tables until chunks can page in and out.
const colCacheMaxRows = 4 << 20

// ColKind is the physical vector representation of one column.
type ColKind uint8

const (
	// ColInt stores int64 payloads in Ints.
	ColInt ColKind = iota
	// ColFloat stores float64 payloads in Floats.
	ColFloat
	// ColText stores strings: raw in Strs, or dictionary-coded in
	// Dict+Codes/CodesRLE when the chunk has at most 255 distinct values.
	ColText
	// ColOther stores boxed values verbatim (BOOL, TIMESTAMP).
	ColOther
)

// ColVec is one column of one chunk.
type ColVec struct {
	Kind ColKind
	// Type is the declared column type, so the executor can rebox payloads
	// as the exact value the row path would produce (TEXT vs SEQUENCE).
	Type value.Type

	Ints   []int64
	Floats []float64

	Strs []string // raw text payloads (nil when dictionary-coded)
	Dict []string // dictionary values, indexed by code
	// Codes holds one dictionary code per row; exactly one of Codes and
	// CodesRLE is set when Dict is. CodesRLE is chosen when the run-length
	// form is smaller (clustered or low-cardinality chunks).
	Codes    []byte
	CodesRLE *rle.Sequence

	Vals []value.Value // ColOther payloads

	// NULL validity: all three nil means every row is valid. Otherwise one
	// of Valid (raw, 1 = valid) or ValidRLE (run-length, for the common
	// mostly-valid chunks) is set.
	Valid    []byte
	ValidRLE *rle.Sequence
}

// DecodeCodes returns the chunk's dictionary codes as a flat byte vector,
// expanding the run-length form into dst when needed.
func (v *ColVec) DecodeCodes(dst []byte) []byte {
	if v.CodesRLE != nil {
		return v.CodesRLE.AppendDecoded(dst[:0])
	}
	return v.Codes
}

// DecodeValid returns the chunk's validity vector (1 = valid), or nil when
// every row is valid, expanding the run-length form into dst when needed.
func (v *ColVec) DecodeValid(dst []byte) []byte {
	if v.ValidRLE != nil {
		return v.ValidRLE.AppendDecoded(dst[:0])
	}
	return v.Valid
}

// ColChunk is up to ColChunkRows consecutive rows in column-major form.
type ColChunk struct {
	RowIDs []int64
	Cols   []ColVec
}

// Rows returns the number of rows in the chunk.
func (c *ColChunk) Rows() int { return len(c.RowIDs) }

// ColData is one table's columnar mirror: every live row, chunked, plus the
// writeSeq that proves (or disproves) its currency.
type ColData struct {
	WriteSeq uint64
	NumCols  int
	Chunks   []*ColChunk
}

// ColumnarData returns the table's columnar mirror, building (and caching) it
// from the current heap when missing or stale. It returns nil when the table
// is too large to mirror or a heap read fails; callers fall back to the row
// scan. The caller must still verify currency against its own snapshot — see
// the package comment.
func (t *Table) ColumnarData() *ColData {
	if cd := t.colCache.Load(); cd != nil && cd.WriteSeq == t.writeSeq.Load() {
		return cd
	}
	if t.RowCount() > colCacheMaxRows {
		return nil
	}
	t.colMu.Lock()
	defer t.colMu.Unlock()
	if cd := t.colCache.Load(); cd != nil && cd.WriteSeq == t.writeSeq.Load() {
		return cd
	}
	cd, err := t.buildColumnar()
	if err != nil || cd == nil {
		return nil
	}
	t.colCache.Store(cd)
	return cd
}

// buildColumnar scans the heap under the table's read lock — excluding
// writers, so the rows and the recorded writeSeq are one consistent cut —
// and lays every live row out column-major.
func (t *Table) buildColumnar() (*ColData, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	wseq := t.writeSeq.Load()
	ids := make([]int64, 0, len(t.rowIndex))
	for id := range t.rowIndex {
		ids = append(ids, id)
	}
	ids = sortDedupeIDs(ids)
	cols := t.schema.Columns
	cd := &ColData{WriteSeq: wseq, NumCols: len(cols)}
	for start := 0; start < len(ids); start += ColChunkRows {
		end := start + ColChunkRows
		if end > len(ids) {
			end = len(ids)
		}
		b := newChunkBuilder(t.schema, end-start)
		for _, rowID := range ids[start:end] {
			rec, err := t.file.Get(t.rowIndex[rowID])
			if err != nil {
				return nil, err
			}
			_, row, err := decodeStored(rec)
			if err != nil {
				return nil, err
			}
			b.add(rowID, row)
		}
		cd.Chunks = append(cd.Chunks, b.finish())
	}
	if len(ids) == 0 {
		// An empty table still gets a (chunkless) mirror so scans of it can
		// stay on the batched path.
		cd.Chunks = nil
	}
	return cd, nil
}

// chunkBuilder accumulates one chunk row-at-a-time and chooses each column's
// final encoding in finish.
type chunkBuilder struct {
	rowIDs []int64
	cols   []chunkCol
}

type chunkCol struct {
	typ   value.Type
	ints  []int64
	flts  []float64
	strs  []string
	vals  []value.Value
	valid []byte
	nulls int
}

func newChunkBuilder(schema *catalog.Schema, n int) *chunkBuilder {
	b := &chunkBuilder{rowIDs: make([]int64, 0, n), cols: make([]chunkCol, len(schema.Columns))}
	for i := range schema.Columns {
		c := &b.cols[i]
		typ := schema.Columns[i].Type
		c.typ = typ
		c.valid = make([]byte, 0, n)
		switch typ {
		case value.Int:
			c.ints = make([]int64, 0, n)
		case value.Float:
			c.flts = make([]float64, 0, n)
		case value.Text, value.Sequence:
			c.strs = make([]string, 0, n)
		default:
			c.vals = make([]value.Value, 0, n)
		}
	}
	return b
}

func (b *chunkBuilder) add(rowID int64, row value.Row) {
	b.rowIDs = append(b.rowIDs, rowID)
	for i := range b.cols {
		c := &b.cols[i]
		var v value.Value
		if i < len(row) {
			v = row[i]
		}
		if v.IsNull() {
			c.nulls++
			c.valid = append(c.valid, 0)
		} else {
			c.valid = append(c.valid, 1)
		}
		switch {
		case c.ints != nil:
			c.ints = append(c.ints, v.Int())
		case c.flts != nil:
			c.flts = append(c.flts, v.Float())
		case c.strs != nil:
			c.strs = append(c.strs, v.Text())
		default:
			c.vals = append(c.vals, v)
		}
	}
}

// maxDictSize bounds the per-chunk dictionary so codes fit one byte.
const maxDictSize = 255

func (b *chunkBuilder) finish() *ColChunk {
	ch := &ColChunk{RowIDs: b.rowIDs, Cols: make([]ColVec, len(b.cols))}
	for i := range b.cols {
		c := &b.cols[i]
		vec := &ch.Cols[i]
		vec.Type = c.typ
		switch {
		case c.ints != nil:
			vec.Kind, vec.Ints = ColInt, c.ints
		case c.flts != nil:
			vec.Kind, vec.Floats = ColFloat, c.flts
		case c.strs != nil:
			vec.Kind = ColText
			if dict, codes, ok := dictEncode(c.strs); ok {
				vec.Dict = dict
				vec.Codes, vec.CodesRLE = rleOrRaw(codes)
			} else {
				vec.Strs = c.strs
			}
		default:
			vec.Kind, vec.Vals = ColOther, c.vals
		}
		if c.nulls > 0 {
			vec.Valid, vec.ValidRLE = rleOrRaw(c.valid)
		}
	}
	return ch
}

// dictEncode builds a dictionary encoding of the chunk's strings when at most
// maxDictSize distinct values occur. The dictionary preserves first-seen
// order; comparisons always go through the decoded string, so the order
// within the dictionary carries no semantics.
func dictEncode(strs []string) (dict []string, codes []byte, ok bool) {
	idx := make(map[string]int, 16)
	codes = make([]byte, len(strs))
	for i, s := range strs {
		code, seen := idx[s]
		if !seen {
			if len(dict) >= maxDictSize {
				return nil, nil, false
			}
			code = len(dict)
			dict = append(dict, s)
			idx[s] = code
		}
		codes[i] = byte(code)
	}
	return dict, codes, true
}

// rleOrRaw keeps the byte vector raw or run-length encodes it, whichever is
// smaller (a Run costs ~16 resident bytes, so RLE only wins on real runs).
func rleOrRaw(raw []byte) ([]byte, *rle.Sequence) {
	seq := rle.Encode(string(raw))
	if seq.NumRuns()*16 < len(raw) {
		return nil, seq
	}
	return raw, nil
}

// SeesCurrentHeap reports whether the snapshot's view of the table is exactly
// the current heap — i.e. its overlay is empty after folding in every version
// entry. When true, a columnar mirror whose WriteSeq still matches the table
// was built from precisely the rows this snapshot must see.
func (s *Snapshot) SeesCurrentHeap(t *Table) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	ov := s.overlayFor(t)
	t.mu.RLock()
	s.mergeLocked(ov, t)
	t.mu.RUnlock()
	return len(ov.rows) == 0
}
