package storage

import (
	"fmt"
	"math/rand"
	"testing"

	"bdbms/internal/catalog"
	"bdbms/internal/value"
)

func columnarSchema(name string) *catalog.Schema {
	return &catalog.Schema{
		Name: name,
		Columns: []catalog.Column{
			{Name: "ID", Type: value.Int, NotNull: true},
			{Name: "N", Type: value.Int},
			{Name: "F", Type: value.Float},
			{Name: "T", Type: value.Text},
			{Name: "B", Type: value.Bool},
		},
		PrimaryKey: "ID",
	}
}

// randColumnarRow draws one row over a mix of encodings: low-cardinality text
// (dictionary + RLE candidates), occasional NULLs everywhere, and a boxed
// BOOL column.
func randColumnarRow(rng *rand.Rand, id int64) value.Row {
	maybeNull := func(v value.Value) value.Value {
		if rng.Intn(7) == 0 {
			return value.NewNull()
		}
		return v
	}
	return value.Row{
		value.NewInt(id),
		maybeNull(value.NewInt(rng.Int63n(1000) - 500)),
		maybeNull(value.NewFloat(float64(rng.Intn(100)) / 4)),
		maybeNull(value.NewText(fmt.Sprintf("tag%02d", rng.Intn(12)))),
		maybeNull(value.NewBool(rng.Intn(2) == 0)),
	}
}

// decodeColumnar reads every row back out of a mirror through the public
// vector surface (DecodeCodes/DecodeValid), reboxing values the way the
// executor does.
func decodeColumnar(t *testing.T, cd *ColData) map[int64]value.Row {
	t.Helper()
	out := make(map[int64]value.Row)
	for _, ch := range cd.Chunks {
		n := ch.Rows()
		for c := range ch.Cols {
			col := &ch.Cols[c]
			codes := col.DecodeCodes(nil)
			valid := col.DecodeValid(nil)
			if valid != nil && len(valid) != n {
				t.Fatalf("col %d: validity length %d, want %d", c, len(valid), n)
			}
			for i := 0; i < n; i++ {
				var v value.Value
				if valid == nil || valid[i] != 0 {
					switch col.Kind {
					case ColInt:
						v = value.NewInt(col.Ints[i])
					case ColFloat:
						v = value.NewFloat(col.Floats[i])
					case ColText:
						s := ""
						if col.Dict != nil {
							s = col.Dict[codes[i]]
						} else {
							s = col.Strs[i]
						}
						if col.Type == value.Sequence {
							v = value.NewSequence(s)
						} else {
							v = value.NewText(s)
						}
					default:
						v = col.Vals[i]
					}
				}
				rowID := ch.RowIDs[i]
				if out[rowID] == nil {
					out[rowID] = make(value.Row, len(ch.Cols))
				}
				out[rowID][c] = v
			}
		}
	}
	return out
}

// TestColumnarMirrorRoundTrip builds the columnar mirror of a randomly
// populated table and asserts every row decodes back identically to the heap
// — across INT/FLOAT/TEXT/BOOL columns, NULLs, dictionary and RLE encodings,
// and multiple chunks.
func TestColumnarMirrorRoundTrip(t *testing.T) {
	e := NewMemoryEngine()
	tbl, err := e.CreateTable(columnarSchema("Ev"))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	nRows := ColChunkRows*2 + 137 // three chunks, last one partial
	want := make(map[int64]value.Row, nRows)
	for i := 0; i < nRows; i++ {
		row := randColumnarRow(rng, int64(i+1))
		id, err := tbl.Insert(row)
		if err != nil {
			t.Fatal(err)
		}
		want[id] = row
	}
	cd := tbl.ColumnarData()
	if cd == nil {
		t.Fatal("ColumnarData returned nil for a small table")
	}
	if cd.WriteSeq != tbl.WriteSeq() {
		t.Fatalf("mirror WriteSeq %d != table WriteSeq %d", cd.WriteSeq, tbl.WriteSeq())
	}
	if len(cd.Chunks) != 3 {
		t.Fatalf("got %d chunks, want 3", len(cd.Chunks))
	}
	got := decodeColumnar(t, cd)
	if len(got) != nRows {
		t.Fatalf("decoded %d rows, want %d", len(got), nRows)
	}
	for id, wrow := range want {
		grow, ok := got[id]
		if !ok {
			t.Fatalf("row %d missing from mirror", id)
		}
		for c := range wrow {
			w, g := wrow[c], grow[c]
			if w.String() != g.String() || w.Type() != g.Type() {
				t.Fatalf("row %d col %d: mirror has %s (%v), heap has %s (%v)",
					id, c, g, g.Type(), w, w.Type())
			}
		}
	}
	// The dictionary column must actually have dictionary-coded: 12 distinct
	// tags over 1024 rows is far under the 255-entry bound.
	if dict := cd.Chunks[0].Cols[3].Dict; dict == nil {
		t.Error("low-cardinality text column was not dictionary-coded")
	}
}

// TestColumnarMirrorInvalidation pins the write-invalidation handshake: the
// mirror is cached while the heap is untouched, every mutation kind bumps
// WriteSeq and drops it, and the rebuilt mirror reflects the new heap.
func TestColumnarMirrorInvalidation(t *testing.T) {
	e := NewMemoryEngine()
	tbl, err := e.CreateTable(columnarSchema("Ev"))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	ids := make([]int64, 0, 50)
	for i := 0; i < 50; i++ {
		id, err := tbl.Insert(randColumnarRow(rng, int64(i+1)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	cd1 := tbl.ColumnarData()
	if cd2 := tbl.ColumnarData(); cd2 != cd1 {
		t.Error("mirror rebuilt with no intervening write")
	}
	seq := tbl.WriteSeq()
	if err := tbl.Update(ids[3], randColumnarRow(rng, 9001)); err != nil {
		t.Fatal(err)
	}
	if tbl.WriteSeq() == seq {
		t.Fatal("Update did not bump WriteSeq")
	}
	cd3 := tbl.ColumnarData()
	if cd3 == cd1 {
		t.Fatal("mirror not rebuilt after Update")
	}
	if cd3.WriteSeq != tbl.WriteSeq() {
		t.Fatalf("rebuilt mirror WriteSeq %d != table %d", cd3.WriteSeq, tbl.WriteSeq())
	}
	got := decodeColumnar(t, cd3)
	if got[ids[3]][0].Int() != 9001 {
		t.Errorf("rebuilt mirror missed the update: %s", got[ids[3]][0])
	}
	seq = tbl.WriteSeq()
	if err := tbl.Delete(ids[7]); err != nil {
		t.Fatal(err)
	}
	if tbl.WriteSeq() == seq {
		t.Fatal("Delete did not bump WriteSeq")
	}
	cd4 := tbl.ColumnarData()
	if _, ok := decodeColumnar(t, cd4)[ids[7]]; ok {
		t.Error("rebuilt mirror still holds the deleted row")
	}

	// Snapshot handshake: a snapshot opened now sees the current heap; after
	// one more committed write frame (the executor's auto-commit shape —
	// version entries are only recorded inside frames) it must not.
	snap := e.NewSnapshot()
	defer snap.Close()
	if !snap.SeesCurrentHeap(tbl) {
		t.Error("fresh snapshot does not see the current heap")
	}
	m := e.BeginWrite()
	if _, err := tbl.Insert(randColumnarRow(rng, 777)); err != nil {
		t.Fatal(err)
	}
	e.EndWrite(m)
	if snap.SeesCurrentHeap(tbl) {
		t.Error("snapshot still claims to see the heap after a newer committed write")
	}
}
