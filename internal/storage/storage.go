// Package storage ties the low-level substrates (pager, buffer pool, heap
// files, B+-tree indexes, WAL, catalog) into the relational engine bdbms is
// built on. It plays the role PostgreSQL played for the paper's prototype:
// tables addressed by name, rows addressed by a stable RowID, secondary
// indexes, and full scans feeding the A-SQL executor.
//
// RowIDs are monotonically increasing 64-bit integers assigned at insert
// time. They are the Y axis of the rectangle-based annotation scheme
// (Figure 5) and the row coordinate of the dependency manager's outdated
// bitmaps (Figure 10), so they are exposed throughout the public API.
package storage

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"bdbms/internal/btree"
	"bdbms/internal/buffer"
	"bdbms/internal/catalog"
	"bdbms/internal/heap"
	"bdbms/internal/pager"
	"bdbms/internal/stats"
	"bdbms/internal/undo"
	"bdbms/internal/value"
	"bdbms/internal/wal"
)

// Errors returned by the storage engine.
var (
	// ErrRowNotFound is returned when a RowID does not reference a live row.
	ErrRowNotFound = errors.New("storage: row not found")
	// ErrDuplicateKey is returned when inserting a duplicate primary key.
	ErrDuplicateKey = errors.New("storage: duplicate primary key")
	// ErrNoIndex is returned by index lookups on unindexed columns.
	ErrNoIndex = errors.New("storage: column is not indexed")
)

// Config controls engine construction.
type Config struct {
	// Pager is the backing page store; nil means a fresh in-memory pager.
	Pager pager.Pager
	// PoolSize is the buffer pool capacity in pages; <= 0 means 256.
	PoolSize int
	// Catalog is an existing catalog to adopt; nil means a fresh one.
	Catalog *catalog.Catalog
	// Log is the write-ahead log; nil means a fresh in-memory log.
	Log *wal.Log
}

// Engine is the storage engine: a set of named tables over one pager.
type Engine struct {
	mu     sync.RWMutex
	pgr    pager.Pager
	pool   *buffer.Pool
	cat    *catalog.Catalog
	log    *wal.Log
	tables map[string]*Table
	// version counts schema changes (table create/drop, index create); cached
	// query plans are invalidated when it moves.
	version atomic.Uint64
	// logging gates WAL appends. It is true in normal operation — every
	// mutation appends its logical record before the in-memory apply — and
	// switched off during recovery, when mutations are themselves replayed
	// from the log.
	logging atomic.Bool
	// undo, when non-nil, is the open write frame's undo log: every applied
	// mutation pushes its compensating action. Write frames are serialized
	// by the exclusive ScopeWAL latch (see lock.go), under which undo is
	// installed and cleared, so plain field access is race-free.
	undo *undo.Log

	// locks hands out the per-table write latches and the quiesce lock.
	locks *LockManager

	// MVCC state (see mvcc.go). mvccMu guards activeMarks and snaps and
	// orders snapshot creation against write-frame finish. Lock order:
	// a Table's t.mu may be held when taking mvccMu, never the reverse.
	mvccMu      sync.Mutex
	verSeq      atomic.Uint64
	activeMarks map[*WriteMark]bool
	snaps       map[*Snapshot]bool
	// curMark is the write frame currently applying mutations (nil outside
	// frames); mutations tag their version entries with it.
	curMark atomic.Pointer[WriteMark]
}

// Locks returns the engine's lock manager.
func (e *Engine) Locks() *LockManager { return e.locks }

// SetLogging switches WAL appends on or off. Recovery disables logging while
// replaying so replayed mutations are not re-appended to the log.
func (e *Engine) SetLogging(enabled bool) { e.logging.Store(enabled) }

// SetUndo installs (or, with nil, clears) the undo log of the open
// transaction. While installed, every mutation — row DML, DDL, index builds
// — pushes a compensating closure capturing its before-image, which is what
// ROLLBACK (and the implicit rollback of a failed auto-commit statement)
// runs. The caller must hold ScopeWAL, which serializes write frames.
func (e *Engine) SetUndo(u *undo.Log) { e.undo = u }

// pushUndo records a compensating action when a transaction is open.
func (e *Engine) pushUndo(fn func() error) {
	if e.undo != nil {
		e.undo.Push(fn)
	}
}

// appendLog writes one logical WAL record unless logging is disabled.
func (e *Engine) appendLog(kind wal.Kind, table string, payload []byte) error {
	if !e.logging.Load() {
		return nil
	}
	_, err := e.log.Append(kind, table, payload)
	return err
}

// SchemaVersion returns a counter that increases on every schema change
// (CREATE/DROP TABLE, CREATE INDEX). Prepared statements cache their physical
// plan against it and replan when it moves.
func (e *Engine) SchemaVersion() uint64 { return e.version.Load() }

// NewEngine builds an engine from cfg.
func NewEngine(cfg Config) *Engine {
	pgr := cfg.Pager
	if pgr == nil {
		pgr = pager.NewMem()
	}
	poolSize := cfg.PoolSize
	if poolSize <= 0 {
		poolSize = 256
	}
	cat := cfg.Catalog
	if cat == nil {
		cat = catalog.New()
	}
	log := cfg.Log
	if log == nil {
		log = wal.NewMemory()
	}
	e := &Engine{
		pgr:         pgr,
		pool:        buffer.New(pgr, poolSize),
		cat:         cat,
		log:         log,
		tables:      make(map[string]*Table),
		locks:       NewLockManager(),
		activeMarks: make(map[*WriteMark]bool),
		snaps:       make(map[*Snapshot]bool),
	}
	e.logging.Store(true)
	return e
}

// NewMemoryEngine returns an engine over a fresh in-memory pager with default
// settings; the constructor used by tests, examples and benchmarks.
func NewMemoryEngine() *Engine { return NewEngine(Config{}) }

// Catalog returns the engine's schema catalog.
func (e *Engine) Catalog() *catalog.Catalog { return e.cat }

// WAL returns the engine's write-ahead log.
func (e *Engine) WAL() *wal.Log { return e.log }

// PagerStats returns the physical I/O counters of the backing pager.
func (e *Engine) PagerStats() pager.Stats { return e.pgr.Stats() }

// ResetPagerStats zeroes the physical I/O counters.
func (e *Engine) ResetPagerStats() { e.pgr.ResetStats() }

// BufferStats returns the buffer pool counters.
func (e *Engine) BufferStats() buffer.Stats { return e.pool.Stats() }

// CreateTable registers schema in the catalog, logs the DDL to the WAL, and
// creates the table's heap storage. When the schema has a primary key, a
// unique index on it is created automatically.
func (e *Engine) CreateTable(schema *catalog.Schema) (*Table, error) {
	if err := e.cat.CreateTable(schema); err != nil {
		return nil, err
	}
	payload, err := json.Marshal(schema)
	if err != nil {
		_ = e.cat.DropTable(schema.Name)
		return nil, fmt.Errorf("storage: encode schema: %w", err)
	}
	if err := e.appendLog(wal.KindCreateTable, schema.Name, payload); err != nil {
		_ = e.cat.DropTable(schema.Name)
		return nil, err
	}
	t := e.newTable(schema)
	e.mu.Lock()
	e.tables[strings.ToLower(schema.Name)] = t
	e.mu.Unlock()
	e.version.Add(1)
	e.pushUndo(func() error { return e.RecoverDropTable(schema.Name) })
	return t, nil
}

// newTable builds an empty in-memory table over a fresh heap file.
func (e *Engine) newTable(schema *catalog.Schema) *Table {
	t := &Table{
		engine:   e,
		schema:   schema,
		file:     heap.New(e.pool),
		rowIndex: make(map[int64]heap.RID),
		indexes:  make(map[string]*btree.Tree),
		nextRow:  1,
	}
	if schema.PrimaryKey != "" {
		t.indexes[strings.ToLower(schema.PrimaryKey)] = btree.New(btree.DefaultOrder)
	}
	return t
}

// DropTable removes a table, its heap data reference and its indexes.
func (e *Engine) DropTable(name string) error {
	if !e.cat.HasTable(name) {
		return fmt.Errorf("%w: %s", catalog.ErrTableNotFound, name)
	}
	if err := e.appendLog(wal.KindDropTable, name, nil); err != nil {
		return err
	}
	if err := e.cat.DropTable(name); err != nil {
		return err
	}
	key := strings.ToLower(name)
	e.mu.Lock()
	dropped := e.tables[key]
	delete(e.tables, key)
	e.mu.Unlock()
	e.version.Add(1)
	if dropped != nil {
		// The Table object keeps its heap file and indexes alive, so undoing
		// the drop is just re-registering it (and its catalog entry).
		e.pushUndo(func() error { return e.reattach(dropped) })
	}
	return nil
}

// reattach restores a dropped table object — the undo of DropTable.
func (e *Engine) reattach(t *Table) error {
	if err := e.cat.CreateTable(t.schema); err != nil && !errors.Is(err, catalog.ErrTableExists) {
		return err
	}
	e.mu.Lock()
	e.tables[strings.ToLower(t.schema.Name)] = t
	e.mu.Unlock()
	e.version.Add(1)
	return nil
}

// Table returns the named table.
func (e *Engine) Table(name string) (*Table, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	t, ok := e.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("%w: %s", catalog.ErrTableNotFound, name)
	}
	return t, nil
}

// HasTable reports whether the named table exists.
func (e *Engine) HasTable(name string) bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	_, ok := e.tables[strings.ToLower(name)]
	return ok
}

// Tables returns all tables sorted by name.
func (e *Engine) Tables() []*Table {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]*Table, 0, len(e.tables))
	for _, t := range e.tables {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool {
		return strings.ToLower(out[i].schema.Name) < strings.ToLower(out[j].schema.Name)
	})
	return out
}

// FlushAll writes all dirty buffered pages back to the pager.
func (e *Engine) FlushAll() error { return e.pool.FlushAll() }

// SyncPager forces flushed pages to stable storage.
func (e *Engine) SyncPager() error { return e.pgr.Sync() }

// Pager returns the engine's backing pager. The verify scrub reads every
// page through it directly — bypassing the buffer pool — so on-disk
// corruption is observed even for pages with a clean cached copy.
func (e *Engine) Pager() pager.Pager { return e.pgr }

// Table is one relational table: a heap file of encoded rows plus optional
// B+-tree secondary indexes.
type Table struct {
	engine   *Engine
	mu       sync.RWMutex
	schema   *catalog.Schema
	file     *heap.File
	rowIndex map[int64]heap.RID
	indexes  map[string]*btree.Tree
	nextRow  int64

	// versions is the MVCC before-image list (see mvcc.go), guarded by mu.
	// versionsBase is the absolute index of versions[0]: pruning shifts the
	// slice but snapshot overlays address entries by absolute position.
	// versionsDead counts pruned entries still pinned by the backing array,
	// driving the amortized compaction in pruneVersions.
	versions     []versionEntry
	versionsBase uint64
	versionsDead int

	// writeSeq counts heap mutations of this table; the columnar scan cache
	// (columnar.go) is tagged with the count at build time and discarded the
	// moment it no longer matches. colMu serializes cache builds so two
	// concurrent analytic queries don't both pay the O(rows) construction.
	writeSeq atomic.Uint64
	colCache atomic.Pointer[ColData]
	colMu    sync.Mutex

	// stats is the planner's statistics snapshot, guarded by mu. It is nil
	// until the first Stats call (or checkpoint adoption) and maintained
	// incrementally by the mutation paths afterwards; Stats rebuilds it
	// exactly once the drift threshold is crossed.
	stats *stats.Table
}

// noteWrite invalidates the columnar scan cache after any heap mutation.
// It is called from every path that changes stored rows (insert, update,
// delete, and their recovery/undo appliers); writeSeq only ever advances, so
// a cache tagged with an older count can never be mistaken for current.
func (t *Table) noteWrite() {
	t.writeSeq.Add(1)
	t.colCache.Store(nil)
}

// WriteSeq exposes the mutation count so the executor can verify a columnar
// chunk set is still current at scan-build time.
func (t *Table) WriteSeq() uint64 { return t.writeSeq.Load() }

// Schema returns the table's schema.
func (t *Table) Schema() *catalog.Schema { return t.schema }

// Name returns the table name.
func (t *Table) Name() string { return t.schema.Name }

// RowCount returns the number of live rows.
func (t *Table) RowCount() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rowIndex)
}

// NextRowID returns the RowID the next insert will receive. Used by the
// annotation manager to translate "annotate the whole column" into a
// half-open rectangle.
func (t *Table) NextRowID() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.nextRow
}

// encodeStored prefixes the row with its RowID so heap records are
// self-describing.
func encodeStored(rowID int64, row value.Row) []byte {
	full := make(value.Row, 0, len(row)+1)
	full = append(full, value.NewInt(rowID))
	full = append(full, row...)
	return value.EncodeRow(full)
}

func decodeStored(rec []byte) (int64, value.Row, error) {
	full, err := value.DecodeRow(rec)
	if err != nil {
		return 0, nil, err
	}
	if len(full) == 0 || full[0].Type() != value.Int {
		return 0, nil, fmt.Errorf("storage: malformed stored row")
	}
	return full[0].Int(), full[1:], nil
}

// DecodeStoredRow decodes the self-describing row format used for heap
// records and row-mutation WAL payloads: the RowID followed by the row
// values. Recovery uses it to replay logged mutations.
func DecodeStoredRow(rec []byte) (int64, value.Row, error) { return decodeStored(rec) }

// EncodeUpdatePayload frames a KindUpdate WAL payload: the length-prefixed
// after-image followed by the before-image, both in the stored-row format.
// Redo needs the new values; transactional crash recovery needs the old ones
// to undo an uncommitted update whose page already reached disk.
func EncodeUpdatePayload(rowID int64, oldRow, newRow value.Row) []byte {
	newRec := encodeStored(rowID, newRow)
	oldRec := encodeStored(rowID, oldRow)
	out := binary.AppendUvarint(make([]byte, 0, len(newRec)+len(oldRec)+4), uint64(len(newRec)))
	out = append(out, newRec...)
	out = append(out, oldRec...)
	return out
}

// DecodeUpdatePayload parses a KindUpdate WAL payload into the RowID and the
// before- and after-images of the row.
func DecodeUpdatePayload(payload []byte) (rowID int64, oldRow, newRow value.Row, err error) {
	newLen, n := binary.Uvarint(payload)
	if n <= 0 || uint64(len(payload)-n) < newLen {
		return 0, nil, nil, fmt.Errorf("storage: malformed update payload")
	}
	rowID, newRow, err = decodeStored(payload[n : n+int(newLen)])
	if err != nil {
		return 0, nil, nil, err
	}
	oldID, oldRow, err := decodeStored(payload[n+int(newLen):])
	if err != nil {
		return 0, nil, nil, err
	}
	if oldID != rowID {
		return 0, nil, nil, fmt.Errorf("storage: update payload images disagree on RowID (%d vs %d)", rowID, oldID)
	}
	return rowID, oldRow, newRow, nil
}

func rowIDBytes(rowID int64) []byte {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(rowID))
	return buf[:]
}

func rowIDFromBytes(b []byte) int64 {
	return int64(binary.BigEndian.Uint64(b))
}

// Insert validates, coerces and stores a row, returning its RowID. The
// logical WAL record is appended after validation but before the in-memory
// apply (write-ahead order): a mutation is committed the moment it reaches
// the log, and recovery redoes it if the crash hits before the heap write.
func (t *Table) Insert(row value.Row) (int64, error) {
	coerced, err := t.schema.CoerceRow(row)
	if err != nil {
		return 0, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.schema.PrimaryKey != "" {
		pkIdx := t.schema.ColumnIndex(t.schema.PrimaryKey)
		pkTree := t.indexes[strings.ToLower(t.schema.PrimaryKey)]
		if pkTree != nil && !coerced[pkIdx].IsNull() {
			key := coerced[pkIdx].EncodeKey(nil)
			if pkTree.Contains(key) {
				return 0, fmt.Errorf("%w: %s = %s", ErrDuplicateKey, t.schema.PrimaryKey, coerced[pkIdx])
			}
		}
	}
	rowID := t.nextRow
	rec := encodeStored(rowID, coerced)
	// Every LOGICAL failure (schema mismatch, duplicate key, oversized
	// record) is ruled out before logging, so a WAL record never describes
	// a statement the caller saw rejected. A PHYSICAL failure during the
	// apply (a pager I/O error on eviction) can still follow the append;
	// the statement then errors, but the record stands and recovery redoes
	// it — logged means committed, exactly as if the process had crashed
	// between the append and the apply.
	if len(rec) > heap.MaxRecordSize {
		return 0, fmt.Errorf("%w: %d bytes", heap.ErrRecordTooLarge, len(rec))
	}
	if err := t.engine.appendLog(wal.KindInsert, t.schema.Name, rec); err != nil {
		return 0, err
	}
	if err := t.applyInsert(rowID, coerced); err != nil {
		return 0, err
	}
	t.appendVersion(rowID, nil, false)
	t.engine.pushUndo(func() error { return t.RecoverDelete(rowID) })
	return rowID, nil
}

// applyInsert stores coerced at rowID and maintains the indexes. The caller
// must hold t.mu and have validated the row.
func (t *Table) applyInsert(rowID int64, coerced value.Row) error {
	rid, err := t.file.Insert(encodeStored(rowID, coerced))
	if err != nil {
		return err
	}
	t.noteWrite()
	t.stats.NoteInsert(coerced)
	if rowID >= t.nextRow {
		t.nextRow = rowID + 1
	}
	t.rowIndex[rowID] = rid
	for col, tree := range t.indexes {
		idx := t.schema.ColumnIndex(col)
		if idx < 0 || coerced[idx].IsNull() {
			continue
		}
		tree.Insert(coerced[idx].EncodeKey(nil), rowIDBytes(rowID))
	}
	return nil
}

// Get returns the row with the given RowID. The read lock is held across
// the heap access: a concurrent Update may move the record to a new RID,
// and the heap file itself is only safe to read while no writer holds mu.
func (t *Table) Get(rowID int64) (value.Row, error) {
	t.mu.RLock()
	rid, ok := t.rowIndex[rowID]
	if !ok {
		t.mu.RUnlock()
		return nil, fmt.Errorf("%w: %s row %d", ErrRowNotFound, t.schema.Name, rowID)
	}
	rec, err := t.file.Get(rid)
	t.mu.RUnlock()
	if err != nil {
		return nil, err
	}
	_, row, err := decodeStored(rec)
	return row, err
}

// GetColumn returns a single cell.
func (t *Table) GetColumn(rowID int64, column string) (value.Value, error) {
	idx := t.schema.ColumnIndex(column)
	if idx < 0 {
		return value.Value{}, fmt.Errorf("%w: %s.%s", catalog.ErrColumnNotFound, t.schema.Name, column)
	}
	row, err := t.Get(rowID)
	if err != nil {
		return value.Value{}, err
	}
	return row[idx], nil
}

// Update replaces the row with the given RowID.
func (t *Table) Update(rowID int64, row value.Row) error {
	coerced, err := t.schema.CoerceRow(row)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	rid, ok := t.rowIndex[rowID]
	if !ok {
		return fmt.Errorf("%w: %s row %d", ErrRowNotFound, t.schema.Name, rowID)
	}
	rec, err := t.file.Get(rid)
	if err != nil {
		return err
	}
	_, old, err := decodeStored(rec)
	if err != nil {
		return err
	}
	if t.schema.PrimaryKey != "" {
		pkIdx := t.schema.ColumnIndex(t.schema.PrimaryKey)
		pkTree := t.indexes[strings.ToLower(t.schema.PrimaryKey)]
		if pkTree != nil && !coerced[pkIdx].IsNull() && !coerced[pkIdx].Equal(old[pkIdx]) {
			key := coerced[pkIdx].EncodeKey(nil)
			if pkTree.Contains(key) {
				return fmt.Errorf("%w: %s = %s", ErrDuplicateKey, t.schema.PrimaryKey, coerced[pkIdx])
			}
		}
	}
	newRec := encodeStored(rowID, coerced)
	if len(newRec) > heap.MaxRecordSize {
		return fmt.Errorf("%w: %d bytes", heap.ErrRecordTooLarge, len(newRec))
	}
	// The WAL payload carries the after-image AND the before-image: redo
	// replays the new values, and crash recovery rolls an uncommitted
	// update back from the old ones even when the dirtied page was flushed
	// by a buffer eviction before the crash.
	if err := t.engine.appendLog(wal.KindUpdate, t.schema.Name, EncodeUpdatePayload(rowID, old, coerced)); err != nil {
		return err
	}
	newRID, err := t.file.Update(rid, newRec)
	if err != nil {
		return err
	}
	t.noteWrite()
	t.stats.NoteUpdate(old, coerced)
	t.rowIndex[rowID] = newRID
	for col, tree := range t.indexes {
		idx := t.schema.ColumnIndex(col)
		if idx < 0 {
			continue
		}
		if !old[idx].IsNull() {
			_ = tree.Delete(old[idx].EncodeKey(nil), rowIDBytes(rowID))
		}
		if !coerced[idx].IsNull() {
			tree.Insert(coerced[idx].EncodeKey(nil), rowIDBytes(rowID))
		}
	}
	before := old.Clone()
	t.appendVersion(rowID, old.Clone(), true)
	t.engine.pushUndo(func() error { return t.RecoverUpdate(rowID, before) })
	return nil
}

// UpdateColumn updates a single cell, leaving the rest of the row unchanged.
func (t *Table) UpdateColumn(rowID int64, column string, v value.Value) error {
	idx := t.schema.ColumnIndex(column)
	if idx < 0 {
		return fmt.Errorf("%w: %s.%s", catalog.ErrColumnNotFound, t.schema.Name, column)
	}
	row, err := t.Get(rowID)
	if err != nil {
		return err
	}
	updated := row.Clone()
	updated[idx] = v
	return t.Update(rowID, updated)
}

// Delete removes the row with the given RowID.
func (t *Table) Delete(rowID int64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	rid, ok := t.rowIndex[rowID]
	if !ok {
		return fmt.Errorf("%w: %s row %d", ErrRowNotFound, t.schema.Name, rowID)
	}
	rec, err := t.file.Get(rid)
	if err != nil {
		return err
	}
	_, old, err := decodeStored(rec)
	if err != nil {
		return err
	}
	if err := t.engine.appendLog(wal.KindDelete, t.schema.Name, encodeStored(rowID, old)); err != nil {
		return err
	}
	if err := t.file.Delete(rid); err != nil {
		return err
	}
	t.noteWrite()
	t.stats.NoteDelete(old)
	delete(t.rowIndex, rowID)
	for col, tree := range t.indexes {
		idx := t.schema.ColumnIndex(col)
		if idx < 0 || old[idx].IsNull() {
			continue
		}
		_ = tree.Delete(old[idx].EncodeKey(nil), rowIDBytes(rowID))
	}
	before := old.Clone()
	t.appendVersion(rowID, old.Clone(), true)
	t.engine.pushUndo(func() error { return t.RecoverInsert(rowID, before) })
	return nil
}

// Scan calls fn for every live row in RowID order. Iteration stops early when
// fn returns false.
func (t *Table) Scan(fn func(rowID int64, row value.Row) bool) error {
	for _, rowID := range t.RowIDs() {
		row, err := t.Get(rowID)
		if errors.Is(err, ErrRowNotFound) || errors.Is(err, heap.ErrNotFound) {
			continue
		}
		if err != nil {
			return err
		}
		if !fn(rowID, row) {
			return nil
		}
	}
	return nil
}

// RowIDs returns the live RowIDs in ascending order.
func (t *Table) RowIDs() []int64 {
	t.mu.RLock()
	ids := make([]int64, 0, len(t.rowIndex))
	for id := range t.rowIndex {
		ids = append(ids, id)
	}
	t.mu.RUnlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// CreateIndex builds a B+-tree index on the named column, backfilling it from
// existing rows. Creating an index twice is a no-op.
func (t *Table) CreateIndex(column string) error {
	idx := t.schema.ColumnIndex(column)
	if idx < 0 {
		return fmt.Errorf("%w: %s.%s", catalog.ErrColumnNotFound, t.schema.Name, column)
	}
	key := strings.ToLower(column)
	t.mu.RLock()
	_, exists := t.indexes[key]
	t.mu.RUnlock()
	if exists {
		return nil
	}
	if err := t.engine.appendLog(wal.KindCreateIndex, t.schema.Name, []byte(column)); err != nil {
		return err
	}
	// Backfill into a private tree and only then install it: concurrent
	// snapshot readers probe t.indexes under the read lock, so a tree must
	// never become visible while still being built. No writer can run here —
	// DDL holds the table's write latch — so the scan sees every row.
	tree := btree.New(btree.DefaultOrder)
	if err := t.Scan(func(rowID int64, row value.Row) bool {
		if !row[idx].IsNull() {
			tree.Insert(row[idx].EncodeKey(nil), rowIDBytes(rowID))
		}
		return true
	}); err != nil {
		return err
	}
	t.mu.Lock()
	t.indexes[key] = tree
	t.mu.Unlock()
	t.engine.version.Add(1)
	t.engine.pushUndo(func() error { t.dropIndex(key); return nil })
	return nil
}

// dropIndex removes a secondary index — the undo of CreateIndex. The key is
// the lower-cased column name.
func (t *Table) dropIndex(key string) {
	t.mu.Lock()
	delete(t.indexes, key)
	t.mu.Unlock()
	t.engine.version.Add(1)
}

// HasIndex reports whether the column has an index.
func (t *Table) HasIndex(column string) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	_, ok := t.indexes[strings.ToLower(column)]
	return ok
}

// LookupEqual returns the RowIDs whose indexed column equals v. The read
// lock is held across the probe: B+-trees are mutated in place by writers
// holding the write lock.
func (t *Table) LookupEqual(column string, v value.Value) ([]int64, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	tree, ok := t.indexes[strings.ToLower(column)]
	if !ok {
		return nil, fmt.Errorf("%w: %s.%s", ErrNoIndex, t.schema.Name, column)
	}
	var out []int64
	for _, vb := range tree.Get(v.EncodeKey(nil)) {
		out = append(out, rowIDFromBytes(vb))
	}
	return out, nil
}

// LookupRange returns the RowIDs whose indexed column is in [lo, hi). A NULL
// hi means "to the end".
func (t *Table) LookupRange(column string, lo, hi value.Value) ([]int64, error) {
	return t.IndexRange(column, lo, false, hi, true)
}

// IndexLookup returns the RowIDs whose indexed column equals v, sorted
// ascending. The sort makes index-assisted scans emit rows in the same
// RowID order a heap scan would, which the query planner relies on to keep
// plan choice invisible in result ordering.
func (t *Table) IndexLookup(column string, v value.Value) ([]int64, error) {
	ids, err := t.LookupEqual(column, v)
	if err != nil {
		return nil, err
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

// IndexRange returns the RowIDs whose indexed column lies between lo and hi,
// sorted ascending. A NULL bound is unbounded on that side; loStrict and
// hiStrict exclude rows equal to the respective bound. Unlike LookupRange
// (half-open [lo, hi)), both bounds default to inclusive, which is what
// pushed-down >=, >, <=, < predicates need.
func (t *Table) IndexRange(column string, lo value.Value, loStrict bool, hi value.Value, hiStrict bool) ([]int64, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	tree, ok := t.indexes[strings.ToLower(column)]
	if !ok {
		return nil, fmt.Errorf("%w: %s.%s", ErrNoIndex, t.schema.Name, column)
	}
	var start, loKey, hiKey []byte
	if !lo.IsNull() {
		loKey = lo.EncodeKey(nil)
		start = loKey
	}
	if !hi.IsNull() {
		hiKey = hi.EncodeKey(nil)
	}
	var out []int64
	tree.AscendRange(start, nil, func(key []byte, values [][]byte) bool {
		if loStrict && loKey != nil && bytes.Equal(key, loKey) {
			return true
		}
		if hiKey != nil {
			c := bytes.Compare(key, hiKey)
			if c > 0 || (c == 0 && hiStrict) {
				return false
			}
		}
		for _, vb := range values {
			out = append(out, rowIDFromBytes(vb))
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// IndexOrderedRowIDs returns every live RowID ordered by the indexed column's
// value ascending (RowID-ascending within equal keys). Rows whose column is
// NULL are absent — B+-trees do not index NULLs — so callers must only rely
// on this order when the column cannot hold NULL. The planner uses it to
// elide sorts when an index already yields the requested order.
func (t *Table) IndexOrderedRowIDs(column string) ([]int64, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	tree, ok := t.indexes[strings.ToLower(column)]
	if !ok {
		return nil, fmt.Errorf("%w: %s.%s", ErrNoIndex, t.schema.Name, column)
	}
	out := make([]int64, 0, len(t.rowIndex))
	var perKey []int64
	tree.AscendRange(nil, nil, func(key []byte, values [][]byte) bool {
		perKey = perKey[:0]
		for _, vb := range values {
			perKey = append(perKey, rowIDFromBytes(vb))
		}
		sort.Slice(perKey, func(i, j int) bool { return perKey[i] < perKey[j] })
		out = append(out, perKey...)
		return true
	})
	return out, nil
}

// --- planner statistics -------------------------------------------------------

// computeStatsLocked rebuilds exact statistics by scanning the heap. Caller
// holds t.mu (either mode: the scan only reads).
func (t *Table) computeStatsLocked() (*stats.Table, error) {
	b := stats.NewBuilder(len(t.schema.Columns))
	var decodeErr error
	err := t.file.Scan(func(rid heap.RID, rec []byte) bool {
		_, row, decErr := decodeStored(rec)
		if decErr != nil {
			decodeErr = decErr
			return false
		}
		b.Add(row)
		return true
	})
	if err == nil {
		err = decodeErr
	}
	if err != nil {
		return nil, err
	}
	return b.Build(), nil
}

// Stats returns a snapshot of the table's planner statistics, building them
// from a heap scan on first use and rebuilding them once incremental drift
// crosses the threshold. Returns nil when the heap cannot be scanned — the
// planner treats missing stats as "fall back to defaults", never as an error.
func (t *Table) Stats() *stats.Table {
	t.mu.RLock()
	if t.stats != nil && !t.stats.Drifted() {
		s := t.stats.Clone()
		t.mu.RUnlock()
		return s
	}
	t.mu.RUnlock()
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.stats != nil && !t.stats.Drifted() {
		return t.stats.Clone()
	}
	s, err := t.computeStatsLocked()
	if err != nil {
		return nil
	}
	t.stats = s
	return s.Clone()
}

// CurrentStats returns the current statistics as-is — possibly drifted, nil
// if never built — without triggering a rebuild. Checkpoints snapshot this
// (rebuilding inside a checkpoint would penalize the commit path) and Verify
// reads it (Verify must not mutate the database it is scrubbing).
func (t *Table) CurrentStats() *stats.Table {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.stats.Clone()
}

// ComputeStats runs a pure exact recompute without touching the cached
// statistics. Verify compares it against CurrentStats.
func (t *Table) ComputeStats() (*stats.Table, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.computeStatsLocked()
}

// AdoptStats installs a checkpointed statistics snapshot during recovery.
// A snapshot whose column count disagrees with the schema is discarded
// (stats are advisory; a stale manifest must not wedge recovery).
func (t *Table) AdoptStats(s *stats.Table) {
	if s == nil || len(s.Cols) != len(t.schema.Columns) {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stats = s.Clone()
}

// FreshenStats rebuilds the statistics exactly if any mutations were applied
// on top of the last exact build. Recovery calls it after WAL replay so that
// reopened statistics are byte-equivalent to a fresh recompute.
func (t *Table) FreshenStats() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.stats == nil || t.stats.Mods == 0 {
		return
	}
	if s, err := t.computeStatsLocked(); err == nil {
		t.stats = s
	}
}

// --- durability: manifest accessors and recovery appliers ---------------------
//
// The methods below are the storage half of the crash-recovery path. A
// checkpoint records, per table, the heap page list, the next RowID and the
// indexed columns (HeapPages/NextRowID/IndexColumns); reopening a database
// reattaches each table to its pages (AttachTable) and then replays the WAL
// tail through the Recover* appliers, which are idempotent: heap pages may
// have been flushed after the checkpoint (buffer evictions happen at any
// time), so a replayed record may find its effect already on disk.

// HeapPages returns the page IDs backing the table's heap file, in order.
func (t *Table) HeapPages() []pager.PageID {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.file.Pages()
}

// IndexColumns returns the indexed column names, sorted.
func (t *Table) IndexColumns() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]string, 0, len(t.indexes))
	for col := range t.indexes {
		out = append(out, col)
	}
	sort.Strings(out)
	return out
}

// CheckIntegrity cross-checks the table's three views of its rows — the
// heap records, the row index, and every B+-tree — in both directions and
// returns a list of human-readable problems, empty when the table is
// consistent. It is the per-table half of the database verify scrub: the
// pager's checksums prove pages were stored faithfully; this proves the
// structures built on them agree with each other.
func (t *Table) CheckIntegrity() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var problems []string
	addf := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}

	// Heap pass: every record decodes, is unique, and is indexed at its RID.
	heapRows := make(map[int64]value.Row)
	scanErr := t.file.Scan(func(rid heap.RID, rec []byte) bool {
		rowID, row, err := decodeStored(rec)
		if err != nil {
			addf("heap record at %s does not decode: %v", rid, err)
			return true
		}
		if _, dup := heapRows[rowID]; dup {
			addf("row %d stored twice in the heap", rowID)
			return true
		}
		heapRows[rowID] = row
		if got, ok := t.rowIndex[rowID]; !ok {
			addf("heap row %d missing from the row index", rowID)
		} else if got != rid {
			addf("row index places row %d at %s, heap has it at %s", rowID, got, rid)
		}
		if rowID >= t.nextRow {
			addf("row %d is at or above the next-RowID counter %d", rowID, t.nextRow)
		}
		return true
	})
	if scanErr != nil {
		addf("heap scan failed: %v", scanErr)
	}
	for rowID := range t.rowIndex {
		if _, ok := heapRows[rowID]; !ok {
			addf("row index entry %d has no heap record", rowID)
		}
	}

	// Index pass: every tree entry points at a live row whose stored value
	// matches the key, and every non-NULL row value is findable in the tree.
	for col, tree := range t.indexes {
		idx := t.schema.ColumnIndex(col)
		if idx < 0 {
			addf("index %q is on a column missing from the schema", col)
			continue
		}
		entries := 0
		tree.AscendRange(nil, nil, func(key []byte, values [][]byte) bool {
			for _, vb := range values {
				entries++
				rowID := rowIDFromBytes(vb)
				row, ok := heapRows[rowID]
				if !ok {
					addf("index %q entry points at missing row %d", col, rowID)
					continue
				}
				if idx >= len(row) || row[idx].IsNull() {
					addf("index %q has an entry for row %d whose column is NULL", col, rowID)
					continue
				}
				if !bytes.Equal(row[idx].EncodeKey(nil), key) {
					addf("index %q entry for row %d disagrees with the stored value", col, rowID)
				}
			}
			return true
		})
		want := 0
		for rowID, row := range heapRows {
			if idx >= len(row) || row[idx].IsNull() {
				continue
			}
			want++
			found := false
			for _, vb := range tree.Get(row[idx].EncodeKey(nil)) {
				if rowIDFromBytes(vb) == rowID {
					found = true
					break
				}
			}
			if !found {
				addf("row %d missing from index %q", rowID, col)
			}
		}
		if entries != want {
			addf("index %q holds %d entries, want %d", col, entries, want)
		}
	}
	return problems
}

// AttachTable rebuilds a table from checkpointed state: the catalog schema,
// the heap pages that held its rows at checkpoint time, the persisted RowID
// counter and the indexed columns. The row index and every B+-tree are
// rebuilt by scanning the heap. The catalog entry must already exist (the
// catalog snapshot is loaded before tables are attached).
func (e *Engine) AttachTable(schema *catalog.Schema, pages []pager.PageID, nextRow int64, indexCols []string) (*Table, error) {
	file, err := heap.Open(e.pool, pages)
	if err != nil {
		return nil, fmt.Errorf("storage: attach %s: %w", schema.Name, err)
	}
	t := &Table{
		engine:   e,
		schema:   schema,
		file:     file,
		rowIndex: make(map[int64]heap.RID),
		indexes:  make(map[string]*btree.Tree),
		nextRow:  nextRow,
	}
	cols := append([]string(nil), indexCols...)
	if schema.PrimaryKey != "" {
		cols = append(cols, schema.PrimaryKey)
	}
	for _, col := range cols {
		key := strings.ToLower(col)
		if _, ok := t.indexes[key]; !ok {
			t.indexes[key] = btree.New(btree.DefaultOrder)
		}
	}
	scanErr := file.Scan(func(rid heap.RID, rec []byte) bool {
		rowID, row, decErr := decodeStored(rec)
		if decErr != nil {
			err = decErr
			return false
		}
		t.rowIndex[rowID] = rid
		if rowID >= t.nextRow {
			t.nextRow = rowID + 1
		}
		for col, tree := range t.indexes {
			idx := schema.ColumnIndex(col)
			if idx < 0 || idx >= len(row) || row[idx].IsNull() {
				continue
			}
			tree.Insert(row[idx].EncodeKey(nil), rowIDBytes(rowID))
		}
		return true
	})
	if scanErr != nil {
		return nil, scanErr
	}
	if err != nil {
		return nil, fmt.Errorf("storage: attach %s: %w", schema.Name, err)
	}
	e.mu.Lock()
	e.tables[strings.ToLower(schema.Name)] = t
	e.mu.Unlock()
	e.version.Add(1)
	return t, nil
}

// RecoverCreateTable replays a logged CREATE TABLE: it tolerates the catalog
// already knowing the schema (the catalog snapshot may be newer than the
// checkpoint manifest when a crash hit between the two writes).
func (e *Engine) RecoverCreateTable(schema *catalog.Schema) (*Table, error) {
	e.mu.RLock()
	existing, ok := e.tables[strings.ToLower(schema.Name)]
	e.mu.RUnlock()
	if ok {
		return existing, nil
	}
	if err := e.cat.CreateTable(schema); err != nil && !errors.Is(err, catalog.ErrTableExists) {
		return nil, err
	}
	t := e.newTable(schema)
	e.mu.Lock()
	e.tables[strings.ToLower(schema.Name)] = t
	e.mu.Unlock()
	e.version.Add(1)
	return t, nil
}

// RecoverDropTable replays a logged DROP TABLE, tolerating an already-absent
// table.
func (e *Engine) RecoverDropTable(name string) error {
	if err := e.cat.DropTable(name); err != nil && !errors.Is(err, catalog.ErrTableNotFound) {
		return err
	}
	e.mu.Lock()
	delete(e.tables, strings.ToLower(name))
	e.mu.Unlock()
	e.version.Add(1)
	return nil
}

// RecoverInsert replays a logged insertion at its original RowID. When the
// row is already present — its page was flushed after the record was logged
// — the stored values are overwritten with the logged ones instead.
func (t *Table) RecoverInsert(rowID int64, row value.Row) error {
	coerced, err := t.schema.CoerceRow(row)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.rowIndex[rowID]; ok {
		return t.applyUpdate(rowID, coerced)
	}
	return t.applyInsert(rowID, coerced)
}

// RecoverUpdate replays a logged update, inserting the row when the original
// version never reached the heap.
func (t *Table) RecoverUpdate(rowID int64, row value.Row) error {
	coerced, err := t.schema.CoerceRow(row)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.rowIndex[rowID]; !ok {
		return t.applyInsert(rowID, coerced)
	}
	return t.applyUpdate(rowID, coerced)
}

// applyUpdate rewrites the stored row at rowID with coerced and fixes up the
// indexes. The caller must hold t.mu; the row must exist.
func (t *Table) applyUpdate(rowID int64, coerced value.Row) error {
	rid := t.rowIndex[rowID]
	rec, err := t.file.Get(rid)
	if err != nil {
		return err
	}
	_, old, err := decodeStored(rec)
	if err != nil {
		return err
	}
	newRID, err := t.file.Update(rid, encodeStored(rowID, coerced))
	if err != nil {
		return err
	}
	t.noteWrite()
	t.stats.NoteUpdate(old, coerced)
	t.rowIndex[rowID] = newRID
	for col, tree := range t.indexes {
		idx := t.schema.ColumnIndex(col)
		if idx < 0 {
			continue
		}
		if idx < len(old) && !old[idx].IsNull() {
			_ = tree.Delete(old[idx].EncodeKey(nil), rowIDBytes(rowID))
		}
		if !coerced[idx].IsNull() {
			tree.Insert(coerced[idx].EncodeKey(nil), rowIDBytes(rowID))
		}
	}
	return nil
}

// RecoverDelete replays a logged deletion, tolerating an already-absent row.
func (t *Table) RecoverDelete(rowID int64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	rid, ok := t.rowIndex[rowID]
	if !ok {
		return nil
	}
	rec, err := t.file.Get(rid)
	if err != nil {
		return err
	}
	_, old, err := decodeStored(rec)
	if err != nil {
		return err
	}
	if err := t.file.Delete(rid); err != nil {
		return err
	}
	t.noteWrite()
	t.stats.NoteDelete(old)
	delete(t.rowIndex, rowID)
	for col, tree := range t.indexes {
		idx := t.schema.ColumnIndex(col)
		if idx < 0 || idx >= len(old) || old[idx].IsNull() {
			continue
		}
		_ = tree.Delete(old[idx].EncodeKey(nil), rowIDBytes(rowID))
	}
	return nil
}

// FindByPrimaryKey returns the RowID of the row whose primary key equals v,
// or ErrRowNotFound.
func (t *Table) FindByPrimaryKey(v value.Value) (int64, error) {
	if t.schema.PrimaryKey == "" {
		return 0, fmt.Errorf("storage: table %s has no primary key", t.schema.Name)
	}
	ids, err := t.LookupEqual(t.schema.PrimaryKey, v)
	if err != nil {
		return 0, err
	}
	if len(ids) == 0 {
		return 0, fmt.Errorf("%w: %s pk %s", ErrRowNotFound, t.schema.Name, v)
	}
	return ids[0], nil
}
