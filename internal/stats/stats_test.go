package stats

import (
	"math/rand"
	"testing"

	"bdbms/internal/value"
)

func row(vs ...any) value.Row {
	out := make(value.Row, len(vs))
	for i, v := range vs {
		switch x := v.(type) {
		case nil:
			out[i] = value.NewNull()
		case int:
			out[i] = value.NewInt(int64(x))
		case float64:
			out[i] = value.NewFloat(x)
		case string:
			out[i] = value.NewText(x)
		default:
			panic("bad test value")
		}
	}
	return out
}

func TestBuilderExactCounts(t *testing.T) {
	b := NewBuilder(3)
	b.Add(row(1, "a", nil))
	b.Add(row(2, "a", 3.5))
	b.Add(row(2, "b", nil))
	st := b.Build()
	if st.Rows != 3 || st.Mods != 0 || st.BaseRows != 3 {
		t.Fatalf("rows=%d mods=%d base=%d", st.Rows, st.Mods, st.BaseRows)
	}
	if st.Cols[0].Distinct != 2 || st.Cols[1].Distinct != 2 || st.Cols[2].Distinct != 1 {
		t.Fatalf("distinct: %+v", st.Cols)
	}
	if st.Cols[2].Nulls != 2 {
		t.Fatalf("nulls: %+v", st.Cols[2])
	}
	if !st.Cols[0].HasRange || st.Cols[0].Min != 1 || st.Cols[0].Max != 2 {
		t.Fatalf("int range: %+v", st.Cols[0])
	}
	if st.Cols[1].HasRange {
		t.Fatalf("text column grew a range: %+v", st.Cols[1])
	}
	if !st.Cols[2].HasRange || st.Cols[2].Min != 3.5 || st.Cols[2].Max != 3.5 {
		t.Fatalf("float range: %+v", st.Cols[2])
	}
}

func TestIncrementalMatchesExactWithinDriftBound(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	b := NewBuilder(2)
	var live []value.Row
	for i := 0; i < 200; i++ {
		rw := row(r.Intn(20), r.Intn(5))
		live = append(live, rw)
		b.Add(rw)
	}
	st := b.Build()

	// Random workload of inserts, deletes and updates through the Note hooks.
	for i := 0; i < 300; i++ {
		switch op := r.Intn(3); {
		case op == 0 || len(live) == 0:
			rw := row(r.Intn(25), r.Intn(6))
			live = append(live, rw)
			st.NoteInsert(rw)
		case op == 1:
			j := r.Intn(len(live))
			st.NoteDelete(live[j])
			live = append(live[:j], live[j+1:]...)
		default:
			j := r.Intn(len(live))
			nw := row(r.Intn(25), r.Intn(6))
			st.NoteUpdate(live[j], nw)
			live[j] = nw
		}
	}

	// Exact recompute over the surviving rows.
	eb := NewBuilder(2)
	for _, rw := range live {
		eb.Add(rw)
	}
	exact := eb.Build()

	if st.Rows != exact.Rows {
		t.Fatalf("Rows drifted: incremental %d, exact %d", st.Rows, exact.Rows)
	}
	for c := range st.Cols {
		ic, ec := st.Cols[c], exact.Cols[c]
		if ic.Nulls != ec.Nulls {
			t.Fatalf("col %d Nulls: incremental %d, exact %d", c, ic.Nulls, ec.Nulls)
		}
		if ec.HasRange && (!ic.HasRange || ic.Min > ec.Min || ic.Max < ec.Max) {
			t.Fatalf("col %d range not conservative: incremental [%v,%v], exact [%v,%v]",
				c, ic.Min, ic.Max, ec.Min, ec.Max)
		}
		drift := ic.Distinct - ec.Distinct
		if drift < 0 {
			drift = -drift
		}
		if drift > st.Mods {
			t.Fatalf("col %d distinct drift %d exceeds Mods %d", c, drift, st.Mods)
		}
	}
	if !st.Drifted() {
		t.Fatalf("300 mods on a 200-row base should cross the drift threshold (mods=%d)", st.Mods)
	}
}

func TestNilAndMismatchedArityAreIgnored(t *testing.T) {
	// Every entry point tolerates a nil receiver: statistics are advisory,
	// and the storage hooks fire whether or not stats were ever built.
	var nilT *Table
	if nilT.Clone() != nil {
		t.Fatal("Clone of nil must be nil")
	}
	if nilT.Drifted() {
		t.Fatal("nil stats cannot have drifted")
	}
	if !nilT.Equal(nil) {
		t.Fatal("nil == nil")
	}
	nilT.NoteInsert(row(1))
	nilT.NoteDelete(row(1))
	nilT.NoteUpdate(row(1), row(2))

	b := NewBuilder(2)
	b.Add(row(1, "a"))
	st := b.Build()
	if st.Equal(nil) || nilT.Equal(st) {
		t.Fatal("nil != non-nil")
	}

	// Rows of the wrong arity (schema changed under a stale snapshot) are
	// dropped rather than corrupting the counters.
	before := st.Clone()
	st.NoteInsert(row(1))
	st.NoteDelete(row(1, "a", "extra"))
	st.NoteUpdate(row(1), row(2))
	b.Add(row("too", "many", "cols"))
	if !st.Equal(before) {
		t.Fatalf("mismatched-arity mutation changed stats: %+v", st)
	}

	// Equal compares every field.
	mut := before.Clone()
	mut.Cols[1].Nulls++
	if before.Equal(mut) {
		t.Fatal("differing column stats compare equal")
	}
	mut = before.Clone()
	mut.BaseRows++
	if before.Equal(mut) {
		t.Fatal("differing BaseRows compare equal")
	}
	short := before.Clone()
	short.Cols = short.Cols[:1]
	if before.Equal(short) {
		t.Fatal("differing arity compares equal")
	}
}

func TestDriftThresholdScalesWithBase(t *testing.T) {
	small := &Table{BaseRows: 10, Mods: 64}
	if small.Drifted() {
		t.Fatal("64 mods is within the fixed floor")
	}
	small.Mods = 65
	if !small.Drifted() {
		t.Fatal("65 mods crosses the fixed floor")
	}
	big := &Table{BaseRows: 1000, Mods: 200}
	if big.Drifted() {
		t.Fatal("200 mods on 1000 base rows is within BaseRows/5")
	}
	big.Mods = 201
	if !big.Drifted() {
		t.Fatal("201 mods on 1000 base rows crosses BaseRows/5")
	}
}

func TestCloneAndEqual(t *testing.T) {
	b := NewBuilder(1)
	b.Add(row(1))
	st := b.Build()
	c := st.Clone()
	if !st.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.NoteInsert(row(2))
	if st.Equal(c) {
		t.Fatal("mutating the clone leaked into the original")
	}
	if st.Rows != 1 {
		t.Fatalf("original mutated: %+v", st)
	}
}
