// Package stats maintains per-table statistics for the cost-based query
// planner: an exact live row count plus, per column, the NULL count, the
// number of distinct values, and (for numeric columns) the value range.
//
// The lifecycle mirrors the paper's "keep it cheap, keep it honest" storage
// philosophy. A Table is built exactly by scanning the heap (Builder), then
// maintained incrementally by the storage layer's mutation hooks:
//
//   - Rows and Nulls are exact at all times (insert/delete/update adjust
//     them directly);
//   - Min/Max are widened on insert and update but never narrowed on
//     delete, so they stay conservative bounds on the true range;
//   - Distinct is frozen between exact rebuilds — a mutation can change the
//     true distinct count by at most one per Mods increment, so the drift
//     bound |Distinct - exact| <= Mods holds by construction.
//
// Mods counts the mutations applied since the last exact build. Once it
// crosses the drift threshold (Drifted), the owner rescans the heap and
// replaces the incremental state with a fresh exact build. The struct is
// plain data with JSON tags so checkpoints can snapshot it into the manifest
// and recovery can adopt it like every other durable structure.
package stats

import (
	"bdbms/internal/value"
)

// Column holds the statistics of one table column.
type Column struct {
	// Nulls is the exact number of NULL values in the column.
	Nulls int64 `json:"nulls"`
	// Distinct is the number of distinct non-NULL values as of the last
	// exact build. It is frozen between builds; the documented drift bound
	// is |Distinct - exact| <= Table.Mods.
	Distinct int64 `json:"distinct"`
	// HasRange reports whether Min/Max hold a meaningful numeric range.
	// Only INT and FLOAT columns track ranges.
	HasRange bool    `json:"has_range,omitempty"`
	Min      float64 `json:"min,omitempty"`
	Max      float64 `json:"max,omitempty"`
}

// Table holds the statistics of one table.
type Table struct {
	// Rows is the exact live row count.
	Rows int64 `json:"rows"`
	// Mods counts mutations since the last exact build: +1 per insert or
	// delete, +2 per update (an update removes one value and adds another,
	// so it can move a column's distinct count by up to two).
	Mods int64 `json:"mods"`
	// BaseRows is the row count at the last exact build; the drift
	// threshold scales with it.
	BaseRows int64    `json:"base_rows"`
	Cols     []Column `json:"cols"`
}

// Clone returns a deep copy.
func (t *Table) Clone() *Table {
	if t == nil {
		return nil
	}
	c := *t
	c.Cols = append([]Column(nil), t.Cols...)
	return &c
}

// Equal reports whether two statistics snapshots are identical.
func (t *Table) Equal(o *Table) bool {
	if t == nil || o == nil {
		return t == o
	}
	if t.Rows != o.Rows || t.Mods != o.Mods || t.BaseRows != o.BaseRows || len(t.Cols) != len(o.Cols) {
		return false
	}
	for i := range t.Cols {
		if t.Cols[i] != o.Cols[i] {
			return false
		}
	}
	return true
}

// Drifted reports whether enough mutations accumulated since the last exact
// build that the frozen Distinct counts (and the widened-only ranges) should
// be recomputed. The threshold is max(64, BaseRows/5): small tables tolerate
// a fixed amount of churn, large tables a fifth of their size.
func (t *Table) Drifted() bool {
	if t == nil {
		return false
	}
	limit := t.BaseRows / 5
	if limit < 64 {
		limit = 64
	}
	return t.Mods > limit
}

// numeric extracts the float64 ordering key of a numeric value; ok is false
// for every other type (ranges are tracked for INT and FLOAT columns only).
func numeric(v value.Value) (float64, bool) {
	switch v.Type() {
	case value.Int:
		return float64(v.Int()), true
	case value.Float:
		return v.Float(), true
	default:
		return 0, false
	}
}

// widen grows the column's range to cover v (numeric non-NULL values only).
func (c *Column) widen(v value.Value) {
	f, ok := numeric(v)
	if !ok {
		return
	}
	if !c.HasRange {
		c.HasRange = true
		c.Min, c.Max = f, f
		return
	}
	if f < c.Min {
		c.Min = f
	}
	if f > c.Max {
		c.Max = f
	}
}

// NoteInsert records one inserted row.
func (t *Table) NoteInsert(row value.Row) {
	if t == nil || len(row) != len(t.Cols) {
		return
	}
	t.Rows++
	t.Mods++
	for i := range row {
		if row[i].IsNull() {
			t.Cols[i].Nulls++
			continue
		}
		t.Cols[i].widen(row[i])
	}
}

// NoteDelete records one deleted row (its old values).
func (t *Table) NoteDelete(old value.Row) {
	if t == nil || len(old) != len(t.Cols) {
		return
	}
	t.Rows--
	t.Mods++
	for i := range old {
		if old[i].IsNull() {
			t.Cols[i].Nulls--
		}
		// Min/Max are never narrowed: they remain conservative bounds until
		// the next exact rebuild.
	}
}

// NoteUpdate records one updated row (old and new values).
func (t *Table) NoteUpdate(old, new value.Row) {
	if t == nil || len(old) != len(t.Cols) || len(new) != len(t.Cols) {
		return
	}
	t.Mods += 2
	for i := range new {
		if old[i].IsNull() {
			t.Cols[i].Nulls--
		}
		if new[i].IsNull() {
			t.Cols[i].Nulls++
			continue
		}
		t.Cols[i].widen(new[i])
	}
}

// Builder computes an exact statistics snapshot from a full scan.
type Builder struct {
	rows int64
	cols []Column
	sets []map[string]struct{}
}

// NewBuilder returns a builder for a table with numCols columns.
func NewBuilder(numCols int) *Builder {
	b := &Builder{
		cols: make([]Column, numCols),
		sets: make([]map[string]struct{}, numCols),
	}
	for i := range b.sets {
		b.sets[i] = make(map[string]struct{})
	}
	return b
}

// Add feeds one row to the builder.
func (b *Builder) Add(row value.Row) {
	if len(row) != len(b.cols) {
		return
	}
	b.rows++
	for i := range row {
		if row[i].IsNull() {
			b.cols[i].Nulls++
			continue
		}
		// EncodeKey is the order-preserving serialization the B+-trees use;
		// it distinguishes exactly the values the indexes distinguish.
		b.sets[i][string(row[i].EncodeKey(nil))] = struct{}{}
		b.cols[i].widen(row[i])
	}
}

// Build finalizes the exact snapshot: Mods is zero and BaseRows equals Rows,
// so Drifted starts false and the drift bound starts tight.
func (b *Builder) Build() *Table {
	t := &Table{Rows: b.rows, BaseRows: b.rows, Cols: append([]Column(nil), b.cols...)}
	for i := range t.Cols {
		t.Cols[i].Distinct = int64(len(b.sets[i]))
	}
	return t
}
