// Package rtree implements an in-memory R-tree over 2-D rectangles with
// quadratic-split insertion, range (window) search, deletion, and nearest
// neighbour search.
//
// In bdbms the R-tree plays three roles:
//   - the second level of the SBC-tree, standing in for the 3-sided range
//     structure exactly as the paper's own PostgreSQL prototype did;
//   - the multidimensional baseline that SP-GiST indexes are compared against
//     (experiment E4);
//   - the spatial store behind the compact, rectangle-based annotation
//     storage scheme of Figure 5 (columns on the X axis, tuples on the Y axis).
package rtree

import (
	"errors"
	"math"
	"sort"
	"sync/atomic"
)

// Rect is an axis-aligned rectangle with inclusive bounds.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// NewPoint returns a degenerate rectangle covering the single point (x, y).
func NewPoint(x, y float64) Rect { return Rect{MinX: x, MinY: y, MaxX: x, MaxY: y} }

// Valid reports whether the rectangle's bounds are ordered.
func (r Rect) Valid() bool { return r.MinX <= r.MaxX && r.MinY <= r.MaxY }

// Area returns the rectangle's area.
func (r Rect) Area() float64 { return (r.MaxX - r.MinX) * (r.MaxY - r.MinY) }

// Intersects reports whether r and o overlap (inclusive bounds).
func (r Rect) Intersects(o Rect) bool {
	return r.MinX <= o.MaxX && o.MinX <= r.MaxX && r.MinY <= o.MaxY && o.MinY <= r.MaxY
}

// Contains reports whether r fully contains o.
func (r Rect) Contains(o Rect) bool {
	return r.MinX <= o.MinX && o.MaxX <= r.MaxX && r.MinY <= o.MinY && o.MaxY <= r.MaxY
}

// ContainsPoint reports whether the point (x, y) lies inside r.
func (r Rect) ContainsPoint(x, y float64) bool {
	return r.MinX <= x && x <= r.MaxX && r.MinY <= y && y <= r.MaxY
}

// Union returns the smallest rectangle covering both r and o.
func (r Rect) Union(o Rect) Rect {
	return Rect{
		MinX: math.Min(r.MinX, o.MinX),
		MinY: math.Min(r.MinY, o.MinY),
		MaxX: math.Max(r.MaxX, o.MaxX),
		MaxY: math.Max(r.MaxY, o.MaxY),
	}
}

// enlargement returns how much r's area grows to cover o.
func (r Rect) enlargement(o Rect) float64 { return r.Union(o).Area() - r.Area() }

// distanceToPoint returns the minimum Euclidean distance from (x, y) to r.
func (r Rect) distanceToPoint(x, y float64) float64 {
	dx := math.Max(math.Max(r.MinX-x, 0), x-r.MaxX)
	dy := math.Max(math.Max(r.MinY-y, 0), y-r.MaxY)
	return math.Sqrt(dx*dx + dy*dy)
}

// Item is a rectangle with an opaque payload.
type Item struct {
	Rect Rect
	Data interface{}
}

// ErrInvalidRect is returned when inserting a rectangle with inverted bounds.
var ErrInvalidRect = errors.New("rtree: invalid rectangle")

const (
	maxEntries = 16
	minEntries = 4
)

type rnode struct {
	leaf     bool
	bounds   Rect
	items    []Item   // leaf
	children []*rnode // internal
}

// Tree is an R-tree. Not safe for concurrent mutation.
type Tree struct {
	root *rnode
	size int
	// reads counts node visits for simulated I/O accounting; atomic because
	// read-only searches run concurrently from parallel SELECT sessions.
	reads atomic.Uint64
}

// New returns an empty tree.
func New() *Tree { return &Tree{root: &rnode{leaf: true}} }

// Len returns the number of stored items.
func (t *Tree) Len() int { return t.size }

// NodeReads returns the number of node visits performed so far (simulated I/O).
func (t *Tree) NodeReads() uint64 { return t.reads.Load() }

// ResetStats zeroes the node visit counter.
func (t *Tree) ResetStats() { t.reads.Store(0) }

// Insert adds an item.
func (t *Tree) Insert(r Rect, data interface{}) error {
	if !r.Valid() {
		return ErrInvalidRect
	}
	item := Item{Rect: r, Data: data}
	left, right := t.insert(t.root, item)
	if right != nil {
		t.root = &rnode{
			leaf:     false,
			children: []*rnode{left, right},
			bounds:   left.bounds.Union(right.bounds),
		}
	}
	t.size++
	return nil
}

func (t *Tree) insert(n *rnode, item Item) (*rnode, *rnode) {
	t.reads.Add(1)
	if n.leaf {
		n.items = append(n.items, item)
		n.recomputeBounds()
		if len(n.items) > maxEntries {
			return n.splitLeaf()
		}
		return n, nil
	}
	best := t.chooseSubtree(n, item.Rect)
	left, right := t.insert(n.children[best], item)
	n.children[best] = left
	if right != nil {
		n.children = append(n.children, right)
	}
	n.recomputeBounds()
	if len(n.children) > maxEntries {
		return n.splitInternal()
	}
	return n, nil
}

func (t *Tree) chooseSubtree(n *rnode, r Rect) int {
	best, bestEnl, bestArea := 0, math.Inf(1), math.Inf(1)
	for i, c := range n.children {
		enl := c.bounds.enlargement(r)
		area := c.bounds.Area()
		if enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = i, enl, area
		}
	}
	return best
}

func (n *rnode) recomputeBounds() {
	if n.leaf {
		if len(n.items) == 0 {
			n.bounds = Rect{}
			return
		}
		b := n.items[0].Rect
		for _, it := range n.items[1:] {
			b = b.Union(it.Rect)
		}
		n.bounds = b
		return
	}
	if len(n.children) == 0 {
		n.bounds = Rect{}
		return
	}
	b := n.children[0].bounds
	for _, c := range n.children[1:] {
		b = b.Union(c.bounds)
	}
	n.bounds = b
}

// splitLeaf splits an overflowing leaf along the axis with the widest spread.
func (n *rnode) splitLeaf() (*rnode, *rnode) {
	items := n.items
	sortByX := spreadX(itemRects(items)) >= spreadY(itemRects(items))
	sort.Slice(items, func(i, j int) bool {
		if sortByX {
			return items[i].Rect.MinX < items[j].Rect.MinX
		}
		return items[i].Rect.MinY < items[j].Rect.MinY
	})
	mid := len(items) / 2
	if mid < minEntries {
		mid = minEntries
	}
	left := &rnode{leaf: true, items: append([]Item(nil), items[:mid]...)}
	right := &rnode{leaf: true, items: append([]Item(nil), items[mid:]...)}
	left.recomputeBounds()
	right.recomputeBounds()
	return left, right
}

func (n *rnode) splitInternal() (*rnode, *rnode) {
	children := n.children
	rects := make([]Rect, len(children))
	for i, c := range children {
		rects[i] = c.bounds
	}
	sortByX := spreadX(rects) >= spreadY(rects)
	sort.Slice(children, func(i, j int) bool {
		if sortByX {
			return children[i].bounds.MinX < children[j].bounds.MinX
		}
		return children[i].bounds.MinY < children[j].bounds.MinY
	})
	mid := len(children) / 2
	if mid < minEntries {
		mid = minEntries
	}
	left := &rnode{leaf: false, children: append([]*rnode(nil), children[:mid]...)}
	right := &rnode{leaf: false, children: append([]*rnode(nil), children[mid:]...)}
	left.recomputeBounds()
	right.recomputeBounds()
	return left, right
}

func itemRects(items []Item) []Rect {
	rs := make([]Rect, len(items))
	for i, it := range items {
		rs[i] = it.Rect
	}
	return rs
}

func spreadX(rs []Rect) float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, r := range rs {
		lo = math.Min(lo, r.MinX)
		hi = math.Max(hi, r.MaxX)
	}
	return hi - lo
}

func spreadY(rs []Rect) float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, r := range rs {
		lo = math.Min(lo, r.MinY)
		hi = math.Max(hi, r.MaxY)
	}
	return hi - lo
}

// Search calls fn for every item whose rectangle intersects query. Iteration
// stops early when fn returns false.
func (t *Tree) Search(query Rect, fn func(Item) bool) {
	t.search(t.root, query, fn)
}

func (t *Tree) search(n *rnode, query Rect, fn func(Item) bool) bool {
	t.reads.Add(1)
	if n.leaf {
		for _, it := range n.items {
			if query.Intersects(it.Rect) {
				if !fn(it) {
					return false
				}
			}
		}
		return true
	}
	for _, c := range n.children {
		if query.Intersects(c.bounds) {
			if !t.search(c, query, fn) {
				return false
			}
		}
	}
	return true
}

// SearchAll returns all items intersecting query.
func (t *Tree) SearchAll(query Rect) []Item {
	var out []Item
	t.Search(query, func(it Item) bool {
		out = append(out, it)
		return true
	})
	return out
}

// Delete removes the first item whose rectangle equals r and whose data
// satisfies match (a nil match removes the first rectangle-equal item). It
// returns true when something was removed.
func (t *Tree) Delete(r Rect, match func(data interface{}) bool) bool {
	removed := t.delete(t.root, r, match)
	if removed {
		t.size--
	}
	return removed
}

func (t *Tree) delete(n *rnode, r Rect, match func(data interface{}) bool) bool {
	t.reads.Add(1)
	if n.leaf {
		for i, it := range n.items {
			if it.Rect == r && (match == nil || match(it.Data)) {
				n.items = append(n.items[:i], n.items[i+1:]...)
				n.recomputeBounds()
				return true
			}
		}
		return false
	}
	for _, c := range n.children {
		if c.bounds.Intersects(r) || c.bounds.Contains(r) {
			if t.delete(c, r, match) {
				n.recomputeBounds()
				return true
			}
		}
	}
	return false
}

// Nearest returns the k items closest to point (x, y) by minimum distance
// between the point and the item rectangle, nearest first.
func (t *Tree) Nearest(x, y float64, k int) []Item {
	if k <= 0 || t.size == 0 {
		return nil
	}
	type cand struct {
		item Item
		dist float64
	}
	var cands []cand
	var walk func(n *rnode)
	walk = func(n *rnode) {
		t.reads.Add(1)
		if n.leaf {
			for _, it := range n.items {
				cands = append(cands, cand{item: it, dist: it.Rect.distanceToPoint(x, y)})
			}
			return
		}
		// Visit children ordered by distance; prune those that cannot beat the
		// current k-th best.
		order := make([]int, len(n.children))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			return n.children[order[a]].bounds.distanceToPoint(x, y) < n.children[order[b]].bounds.distanceToPoint(x, y)
		})
		for _, idx := range order {
			c := n.children[idx]
			if len(cands) >= k {
				sort.Slice(cands, func(a, b int) bool { return cands[a].dist < cands[b].dist })
				cands = cands[:k]
				if c.bounds.distanceToPoint(x, y) > cands[k-1].dist {
					continue
				}
			}
			walk(c)
		}
	}
	walk(t.root)
	sort.Slice(cands, func(a, b int) bool { return cands[a].dist < cands[b].dist })
	if len(cands) > k {
		cands = cands[:k]
	}
	out := make([]Item, len(cands))
	for i, c := range cands {
		out[i] = c.item
	}
	return out
}

// All returns every stored item (order unspecified).
func (t *Tree) All() []Item {
	var out []Item
	var walk func(n *rnode)
	walk = func(n *rnode) {
		if n.leaf {
			out = append(out, n.items...)
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	return out
}

// Validate checks that every node's bounds cover its contents.
func (t *Tree) Validate() error {
	var walk func(n *rnode) error
	walk = func(n *rnode) error {
		if n.leaf {
			for _, it := range n.items {
				if !n.bounds.Contains(it.Rect) {
					return errors.New("rtree: leaf bounds do not contain item")
				}
			}
			return nil
		}
		for _, c := range n.children {
			if !n.bounds.Contains(c.bounds) {
				return errors.New("rtree: node bounds do not contain child")
			}
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(t.root)
}
