package rtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestRectGeometry(t *testing.T) {
	a := Rect{0, 0, 10, 10}
	b := Rect{5, 5, 15, 15}
	c := Rect{11, 11, 12, 12}
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Error("a and b should intersect")
	}
	if a.Intersects(c) {
		t.Error("a and c should not intersect")
	}
	if !a.Contains(Rect{2, 2, 3, 3}) {
		t.Error("containment failed")
	}
	if a.Contains(b) {
		t.Error("a should not contain b")
	}
	u := a.Union(b)
	if u != (Rect{0, 0, 15, 15}) {
		t.Errorf("union = %+v", u)
	}
	if a.Area() != 100 {
		t.Errorf("area = %f", a.Area())
	}
	if !a.ContainsPoint(10, 10) || a.ContainsPoint(10.1, 10) {
		t.Error("ContainsPoint inclusive bounds wrong")
	}
	if !NewPoint(3, 4).Valid() || (Rect{1, 1, 0, 0}).Valid() {
		t.Error("Valid() wrong")
	}
}

func TestInsertSearchPoints(t *testing.T) {
	tr := New()
	for x := 0; x < 20; x++ {
		for y := 0; y < 20; y++ {
			if err := tr.Insert(NewPoint(float64(x), float64(y)), [2]int{x, y}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if tr.Len() != 400 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	got := tr.SearchAll(Rect{5, 5, 7, 7})
	if len(got) != 9 {
		t.Fatalf("window search returned %d, want 9", len(got))
	}
	// Early termination.
	count := 0
	tr.Search(Rect{0, 0, 19, 19}, func(Item) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Errorf("early stop visited %d", count)
	}
}

func TestInsertInvalidRect(t *testing.T) {
	tr := New()
	if err := tr.Insert(Rect{5, 5, 1, 1}, nil); err != ErrInvalidRect {
		t.Fatalf("expected ErrInvalidRect, got %v", err)
	}
}

func TestDelete(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		tr.Insert(NewPoint(float64(i), float64(i)), i)
	}
	if !tr.Delete(NewPoint(50, 50), nil) {
		t.Fatal("delete failed")
	}
	if tr.Len() != 99 {
		t.Errorf("Len = %d", tr.Len())
	}
	if got := tr.SearchAll(NewPoint(50, 50)); len(got) != 0 {
		t.Errorf("deleted point still found: %v", got)
	}
	if tr.Delete(NewPoint(50, 50), nil) {
		t.Error("second delete should fail")
	}
	// Delete with matcher.
	tr.Insert(NewPoint(1, 1), "a")
	tr.Insert(NewPoint(1, 1), "b")
	if !tr.Delete(NewPoint(1, 1), func(d interface{}) bool { return d == "b" }) {
		t.Fatal("matched delete failed")
	}
	found := tr.SearchAll(NewPoint(1, 1))
	for _, it := range found {
		if it.Data == "b" {
			t.Error("matched item not removed")
		}
	}
}

func TestNearest(t *testing.T) {
	tr := New()
	for x := 0; x < 10; x++ {
		for y := 0; y < 10; y++ {
			tr.Insert(NewPoint(float64(x), float64(y)), [2]int{x, y})
		}
	}
	got := tr.Nearest(4.1, 4.1, 1)
	if len(got) != 1 {
		t.Fatalf("nearest returned %d", len(got))
	}
	if got[0].Data != [2]int{4, 4} {
		t.Errorf("nearest = %v", got[0].Data)
	}
	got5 := tr.Nearest(0, 0, 5)
	if len(got5) != 5 {
		t.Fatalf("k=5 returned %d", len(got5))
	}
	// Distances must be non-decreasing.
	prev := -1.0
	for _, it := range got5 {
		d := it.Rect.distanceToPoint(0, 0)
		if d < prev {
			t.Error("nearest results not ordered")
		}
		prev = d
	}
	if tr.Nearest(0, 0, 0) != nil {
		t.Error("k=0 should return nil")
	}
	if New().Nearest(0, 0, 3) != nil {
		t.Error("empty tree should return nil")
	}
}

func TestNearestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr := New()
	type pt struct{ x, y float64 }
	pts := make([]pt, 500)
	for i := range pts {
		pts[i] = pt{rng.Float64() * 1000, rng.Float64() * 1000}
		tr.Insert(NewPoint(pts[i].x, pts[i].y), i)
	}
	for q := 0; q < 20; q++ {
		qx, qy := rng.Float64()*1000, rng.Float64()*1000
		got := tr.Nearest(qx, qy, 3)
		dists := make([]float64, len(pts))
		for i, p := range pts {
			dists[i] = math.Hypot(p.x-qx, p.y-qy)
		}
		sorted := append([]float64(nil), dists...)
		sort.Float64s(sorted)
		for i, it := range got {
			d := it.Rect.distanceToPoint(qx, qy)
			if math.Abs(d-sorted[i]) > 1e-9 {
				t.Fatalf("query %d: nearest[%d] dist %f, brute force %f", q, i, d, sorted[i])
			}
		}
	}
}

func TestSearchMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr := New()
	rects := make([]Rect, 300)
	for i := range rects {
		x, y := rng.Float64()*100, rng.Float64()*100
		rects[i] = Rect{x, y, x + rng.Float64()*10, y + rng.Float64()*10}
		tr.Insert(rects[i], i)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 25; q++ {
		x, y := rng.Float64()*100, rng.Float64()*100
		query := Rect{x, y, x + 15, y + 15}
		want := 0
		for _, r := range rects {
			if query.Intersects(r) {
				want++
			}
		}
		if got := len(tr.SearchAll(query)); got != want {
			t.Fatalf("query %d: got %d, want %d", q, got, want)
		}
	}
}

func TestAllAndStats(t *testing.T) {
	tr := New()
	for i := 0; i < 50; i++ {
		tr.Insert(NewPoint(float64(i), 0), i)
	}
	if len(tr.All()) != 50 {
		t.Errorf("All returned %d", len(tr.All()))
	}
	if tr.NodeReads() == 0 {
		t.Error("node reads not counted")
	}
	tr.ResetStats()
	if tr.NodeReads() != 0 {
		t.Error("ResetStats failed")
	}
}
