package server

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"bdbms"
	"bdbms/internal/errcode"
	"bdbms/internal/server/client"
	"bdbms/internal/server/wire"
)

// startServer launches a server for db on a random port and returns its
// address. Cleanup shuts the server down (bounded) and closes the db.
func startServer(t *testing.T, db *bdbms.DB, mutate func(*Config)) (*Server, string) {
	t.Helper()
	cfg := Config{DB: db, Logf: t.Logf}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve() }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		if err := <-serveDone; err != nil {
			t.Errorf("Serve returned %v", err)
		}
		db.Close()
	})
	return srv, srv.Addr().String()
}

func openTestDB(t *testing.T) *bdbms.DB {
	t.Helper()
	db := bdbms.Open()
	db.SetCredential("admin", "admin-secret")
	return db
}

func dial(t *testing.T, addr string) *client.Conn {
	t.Helper()
	c, err := client.Dial(addr, "admin", "admin-secret")
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestQueryRoundTrip(t *testing.T) {
	db := openTestDB(t)
	db.MustExec(`CREATE TABLE Gene (GID TEXT NOT NULL PRIMARY KEY, GSequence SEQUENCE)`)
	db.MustExec(`INSERT INTO Gene VALUES ('JW0080', 'ATGATGG')`)
	db.MustExec(`INSERT INTO Gene VALUES ('JW0082', 'CCGGTTA')`)
	_, addr := startServer(t, db, nil)

	c := dial(t, addr)
	if err := c.Ping(); err != nil {
		t.Fatalf("Ping: %v", err)
	}
	rows, err := c.Query(`SELECT GID, GSequence FROM Gene WHERE GID = ?`, "JW0080")
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if cols := rows.Columns(); len(cols) != 2 || cols[0] != "GID" {
		t.Fatalf("columns = %v", cols)
	}
	var got []string
	for rows.Next() {
		got = append(got, rows.Row()[0].Text()+"/"+rows.Row()[1].Text())
	}
	if err := rows.Close(); err != nil {
		t.Fatalf("rows: %v", err)
	}
	if len(got) != 1 || got[0] != "JW0080/ATGATGG" {
		t.Fatalf("rows = %v", got)
	}

	// DML through the network session.
	aff, _, err := c.Exec(`INSERT INTO Gene VALUES (?, ?)`, "JW0100", "TTTT")
	if err != nil || aff != 1 {
		t.Fatalf("insert: affected=%d err=%v", aff, err)
	}
	res := db.MustExec(`SELECT GID FROM Gene`)
	if len(res.Rows) != 3 {
		t.Fatalf("table has %d rows, want 3", len(res.Rows))
	}
}

func TestAnnotationsOverWire(t *testing.T) {
	db := openTestDB(t)
	db.MustExec(`CREATE TABLE Gene (GID TEXT NOT NULL PRIMARY KEY, GSequence SEQUENCE)`)
	db.MustExec(`INSERT INTO Gene VALUES ('JW0080', 'ATGATGG')`)
	db.MustExec(`CREATE ANNOTATION TABLE Curation ON Gene CATEGORY 'comment'`)
	db.MustExec(`ADD ANNOTATION TO Gene.Curation
		VALUE '<Annotation>low quality read</Annotation>'
		ON (SELECT GSequence FROM Gene WHERE GID = 'JW0080')`)
	_, addr := startServer(t, db, nil)

	c := dial(t, addr)
	rows, err := c.Query(`SELECT GID, GSequence FROM Gene ANNOTATION(Curation)`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if !rows.Next() {
		t.Fatalf("no rows: %v", rows.Err())
	}
	anns := rows.Annotations()
	var found *wire.Ann
	for _, cell := range anns {
		for i := range cell {
			found = &cell[i]
		}
	}
	if found == nil {
		t.Fatalf("no annotation crossed the wire: %+v", anns)
	}
	if found.AnnTable != "Curation" || found.PlainBody() != "low quality read" {
		t.Fatalf("annotation = %+v", *found)
	}
}

func TestPreparedStatementAndFetchPaging(t *testing.T) {
	db := openTestDB(t)
	db.MustExec(`CREATE TABLE T (ID INT NOT NULL PRIMARY KEY, V TEXT)`)
	_, addr := startServer(t, db, nil)

	c := dial(t, addr)
	ins, err := c.Prepare(`INSERT INTO T VALUES (?, ?)`)
	if err != nil {
		t.Fatal(err)
	}
	if ins.NumParams() != 2 {
		t.Fatalf("NumParams = %d", ins.NumParams())
	}
	const n = 57
	for i := 0; i < n; i++ {
		if _, _, err := ins.Exec(i, fmt.Sprintf("v%03d", i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	sel, err := c.Prepare(`SELECT ID FROM T`)
	if err != nil {
		t.Fatal(err)
	}
	// Page with a fetch size that doesn't divide n, exercising the
	// Suspended → Fetch → ... → Complete path and the final short batch.
	rows, err := sel.QueryBatch(10)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int64]bool{}
	for rows.Next() {
		seen[rows.Row()[0].Int()] = true
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != n {
		t.Fatalf("paged scan saw %d distinct ids, want %d", len(seen), n)
	}

	// Abandon a paged cursor mid-stream: Close must release it so a write
	// on the same connection proceeds.
	rows, err = sel.QueryBatch(10)
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatal("expected a row")
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ins.Exec(n, "after-close"); err != nil {
		t.Fatalf("write after abandoned cursor: %v", err)
	}
}

func TestAuthFailure(t *testing.T) {
	db := openTestDB(t)
	db.SetCredential("alice", "right")
	_, addr := startServer(t, db, nil)

	cases := []struct{ user, secret string }{
		{"alice", "wrong"},
		{"nobody", "x"},
		{"admin", ""},
	}
	for _, tc := range cases {
		_, err := client.Dial(addr, tc.user, tc.secret)
		var se *client.ServerError
		if !errors.As(err, &se) || se.Code != errcode.AuthFailed {
			t.Fatalf("Dial(%q,%q) = %v, want authz.auth_failed", tc.user, tc.secret, err)
		}
	}
	// And the good pair still works after the failures.
	c, err := client.Dial(addr, "alice", "right")
	if err != nil {
		t.Fatalf("valid login: %v", err)
	}
	c.Close()
}

func TestMalformedAndOversizedFrames(t *testing.T) {
	db := openTestDB(t)
	_, addr := startServer(t, db, nil)

	// A raw connection sending garbage instead of Hello.
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	wire.WriteFrame(nc, wire.TypeBind, []byte{0xFF, 0xFF}) // not a Hello
	typ, payload, err := wire.ReadFrame(nc, wire.MaxFrame)
	if err != nil || typ != wire.TypeError {
		t.Fatalf("reply = %c/%v, want error frame", typ, err)
	}
	if e, _ := wire.DecodeError(payload); e.Code != errcode.NetProtocol {
		t.Fatalf("code = %q, want net.protocol", e.Code)
	}
	assertClosed(t, nc)

	// A hostile length prefix: 1 GiB frame announced post-auth.
	c2 := dial(t, addr)
	if err := c2.Ping(); err != nil {
		t.Fatal(err)
	}
	nc2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	hello := wire.Hello{Version: wire.ProtocolVersion, User: "admin", Secret: "admin-secret"}
	wire.WriteFrame(nc2, wire.TypeHello, hello.Encode())
	if typ, _, err := wire.ReadFrame(nc2, wire.MaxFrame); err != nil || typ != wire.TypeAuthOK {
		t.Fatalf("handshake = %c/%v", typ, err)
	}
	nc2.Write([]byte{byte(wire.TypeParse), 0x40, 0x00, 0x00, 0x00}) // header claiming 1 GiB
	typ, payload, err = wire.ReadFrame(nc2, wire.MaxFrame)
	if err != nil || typ != wire.TypeError {
		t.Fatalf("oversized reply = %c/%v, want error frame", typ, err)
	}
	if e, _ := wire.DecodeError(payload); e.Code != errcode.NetFrameTooLarge {
		t.Fatalf("code = %q, want net.frame_too_large", e.Code)
	}
	assertClosed(t, nc2)

	// A malformed payload on an authenticated session also disconnects.
	nc3, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	wire.WriteFrame(nc3, wire.TypeHello, hello.Encode())
	wire.ReadFrame(nc3, wire.MaxFrame)
	wire.WriteFrame(nc3, wire.TypeParse, []byte{0x7F}) // truncated string
	typ, payload, err = wire.ReadFrame(nc3, wire.MaxFrame)
	if err != nil || typ != wire.TypeError {
		t.Fatalf("malformed reply = %c/%v", typ, err)
	}
	if e, _ := wire.DecodeError(payload); e.Code != errcode.NetProtocol {
		t.Fatalf("code = %q, want net.protocol", e.Code)
	}
	assertClosed(t, nc3)

	// The healthy session is unaffected throughout.
	if err := c2.Ping(); err != nil {
		t.Fatalf("healthy conn after sibling abuse: %v", err)
	}
}

// assertClosed waits for the server to hang up on nc.
func assertClosed(t *testing.T, nc net.Conn) {
	t.Helper()
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, _, err := wire.ReadFrame(nc, wire.MaxFrame); err == nil {
		t.Fatal("connection still open, want server-side close")
	}
	nc.Close()
}

func TestIdleTimeout(t *testing.T) {
	db := openTestDB(t)
	_, addr := startServer(t, db, func(c *Config) { c.IdleTimeout = 150 * time.Millisecond })

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	hello := wire.Hello{Version: wire.ProtocolVersion, User: "admin", Secret: "admin-secret"}
	wire.WriteFrame(nc, wire.TypeHello, hello.Encode())
	if typ, _, err := wire.ReadFrame(nc, wire.MaxFrame); err != nil || typ != wire.TypeAuthOK {
		t.Fatalf("handshake = %c/%v", typ, err)
	}
	// Say nothing; the server must notify and disconnect.
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	typ, payload, err := wire.ReadFrame(nc, wire.MaxFrame)
	if err != nil || typ != wire.TypeError {
		t.Fatalf("idle reply = %c/%v, want error frame", typ, err)
	}
	if e, _ := wire.DecodeError(payload); e.Code != errcode.NetIdleTimeout {
		t.Fatalf("code = %q, want net.idle_timeout", e.Code)
	}
	assertClosed(t, nc)
}

func TestClientVanishMidCursorReleasesResources(t *testing.T) {
	db := openTestDB(t)
	db.MustExec(`CREATE TABLE T (ID INT NOT NULL PRIMARY KEY)`)
	for i := 0; i < 100; i++ {
		db.MustExec(fmt.Sprintf(`INSERT INTO T VALUES (%d)`, i))
	}
	_, addr := startServer(t, db, func(c *Config) { c.IdleTimeout = 200 * time.Millisecond })

	// Open a paged cursor (the server keeps its MVCC snapshot pinned across
	// the suspension) and then vanish without closing anything.
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	hello := wire.Hello{Version: wire.ProtocolVersion, User: "admin", Secret: "admin-secret"}
	wire.WriteFrame(nc, wire.TypeHello, hello.Encode())
	wire.ReadFrame(nc, wire.MaxFrame)
	wire.WriteFrame(nc, wire.TypeParse, wire.Parse{SQL: `SELECT ID FROM T`}.Encode())
	wire.ReadFrame(nc, wire.MaxFrame)
	wire.WriteFrame(nc, wire.TypeBind, wire.Bind{}.Encode())
	wire.ReadFrame(nc, wire.MaxFrame)
	wire.WriteFrame(nc, wire.TypeExecute, wire.Execute{MaxRows: 5}.Encode())
	// Read the header and first row to be sure the cursor is live, then die.
	if typ, _, err := wire.ReadFrame(nc, wire.MaxFrame); err != nil || typ != wire.TypeRowHeader {
		t.Fatalf("header = %c/%v", typ, err)
	}
	nc.Close()

	// A write from another connection must succeed promptly — MVCC cursors
	// hold no locks, so the dead client cannot wedge it — and the server
	// must notice the dead client (teardown or idle reap) and close the
	// cursor, releasing its pinned snapshot so row versions are reclaimed.
	c := dial(t, addr)
	done := make(chan error, 1)
	go func() {
		_, _, err := c.Exec(`INSERT INTO T VALUES (1000)`)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("write after client vanished: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("write still blocked: vanished client's cursor was not reaped")
	}
}

func TestConnLimit(t *testing.T) {
	db := openTestDB(t)
	_, addr := startServer(t, db, func(c *Config) { c.MaxConns = 2 })

	c1, c2 := dial(t, addr), dial(t, addr)
	_, err := client.Dial(addr, "admin", "admin-secret")
	var se *client.ServerError
	if !errors.As(err, &se) || se.Code != errcode.NetConnLimit {
		t.Fatalf("third dial = %v, want net.conn_limit", err)
	}
	// Freeing a slot readmits.
	c1.Close()
	waitFor(t, 5*time.Second, func() bool {
		c, err := client.Dial(addr, "admin", "admin-secret")
		if err != nil {
			return false
		}
		c.Close()
		return true
	})
	_ = c2
}

func waitFor(t *testing.T, d time.Duration, f func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if f() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("condition not reached")
}

func TestTransactionsOverWire(t *testing.T) {
	db := openTestDB(t)
	db.MustExec(`CREATE TABLE Account (ID INT NOT NULL PRIMARY KEY, Balance INT)`)
	db.MustExec(`INSERT INTO Account VALUES (1, 100)`)
	db.MustExec(`INSERT INTO Account VALUES (2, 0)`)
	_, addr := startServer(t, db, nil)

	c := dial(t, addr)
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Exec(`UPDATE Account SET Balance = Balance - 10 WHERE ID = 1`); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Exec(`UPDATE Account SET Balance = Balance + 10 WHERE ID = 2`); err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	res := db.MustExec(`SELECT Balance FROM Account WHERE ID = 2`)
	if res.Rows[0].Values[0].Int() != 10 {
		t.Fatalf("committed balance = %v", res.Rows[0].Values[0])
	}

	// Rollback reverts.
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Exec(`UPDATE Account SET Balance = 9999 WHERE ID = 1`); err != nil {
		t.Fatal(err)
	}
	if err := c.Rollback(); err != nil {
		t.Fatal(err)
	}
	res = db.MustExec(`SELECT Balance FROM Account WHERE ID = 1`)
	if res.Rows[0].Values[0].Int() != 90 {
		t.Fatalf("rolled-back balance = %v", res.Rows[0].Values[0])
	}

	// Commit with no open transaction is a categorized statement error, and
	// the connection survives it.
	err := c.Commit()
	var se *client.ServerError
	if !errors.As(err, &se) || se.Code != errcode.TxNone {
		t.Fatalf("commit outside tx = %v, want tx.none", err)
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("conn after statement error: %v", err)
	}
}

func TestShutdownDrainsOpenTransaction(t *testing.T) {
	db := openTestDB(t)
	db.MustExec(`CREATE TABLE T (ID INT NOT NULL PRIMARY KEY)`)
	cfg := Config{DB: db, Logf: t.Logf}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve() }()
	addr := srv.Addr().String()

	c, err := client.Dial(addr, "admin", "admin-secret")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Exec(`INSERT INTO T VALUES (1)`); err != nil {
		t.Fatal(err)
	}

	// Shutdown with the transaction still open: the server must roll it
	// back (releasing the exclusive lock) and disconnect the client.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	c.Close()

	// The uncommitted insert is gone and the engine lock is free.
	res := db.MustExec(`SELECT ID FROM T`)
	if len(res.Rows) != 0 {
		t.Fatalf("uncommitted rows survived shutdown: %v", res.Rows)
	}
	db.Close()
}

func TestShutdownLetsInFlightStatementFinish(t *testing.T) {
	db := openTestDB(t)
	db.MustExec(`CREATE TABLE T (ID INT NOT NULL PRIMARY KEY)`)
	for i := 0; i < 2000; i++ {
		db.MustExec(fmt.Sprintf(`INSERT INTO T VALUES (%d)`, i))
	}
	srv, err := New(Config{DB: db, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve() }()

	c, err := client.Dial(srv.Addr().String(), "admin", "admin-secret")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Start a full-table scan and call Shutdown while the server is still
	// streaming it: the in-flight statement must complete — every row plus
	// the Complete frame delivered — before the connection is drained.
	started := make(chan struct{})
	scanned := make(chan error, 1)
	go func() {
		rows, err := c.Query(`SELECT ID FROM T`)
		if err != nil {
			close(started)
			scanned <- err
			return
		}
		close(started) // RowHeader received: the dispatch is in flight
		n := 0
		for rows.Next() {
			n++
		}
		if err := rows.Close(); err != nil {
			scanned <- err
			return
		}
		if n != 2000 {
			scanned <- fmt.Errorf("scan returned %d rows, want 2000", n)
			return
		}
		scanned <- nil
	}()
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if err := <-scanned; err != nil {
		t.Fatalf("in-flight scan: %v", err)
	}
	db.Close()
}

func TestPanicIsolation(t *testing.T) {
	db := openTestDB(t)
	auth := func(user, secret string) error {
		if user == "boom" {
			panic("auth hook exploded")
		}
		return db.Authenticate(user, secret)
	}
	_, addr := startServer(t, db, func(c *Config) { c.Auth = auth })

	// The panicking connection dies alone...
	if _, err := client.Dial(addr, "boom", "x"); err == nil {
		t.Fatal("panicking handshake reported success")
	}
	// ...and the server keeps serving.
	c := dial(t, addr)
	if err := c.Ping(); err != nil {
		t.Fatalf("server dead after sibling panic: %v", err)
	}
}

// TestE2EConcurrentClientsWithOracle is the acceptance e2e: 64 concurrent
// network clients run prepared point reads and transactional writes against
// a durable database while an embedded oracle tracks expected state; then
// the server shuts down gracefully, the process is checked for leaked
// goroutines, and the database reopens and verifies clean.
func TestE2EConcurrentClientsWithOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e is not -short")
	}
	dataFile := filepath.Join(t.TempDir(), "e2e.bdbms")
	db, err := bdbms.OpenWith(bdbms.Options{DataFile: dataFile})
	if err != nil {
		t.Fatal(err)
	}
	db.SetCredential("admin", "admin-secret")
	db.MustExec(`CREATE TABLE Counter (ID INT NOT NULL PRIMARY KEY, N INT)`)
	const slots = 8
	for i := 0; i < slots; i++ {
		db.MustExec(fmt.Sprintf(`INSERT INTO Counter VALUES (%d, 0)`, i))
	}

	baseline := runtime.NumGoroutine()
	srv, err := New(Config{DB: db, MaxConns: 256, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve() }()
	addr := srv.Addr().String()

	// Oracle: per-slot expected increment counts, updated only when the
	// server acknowledged the commit.
	var oracleMu sync.Mutex
	oracle := make([]int64, slots)

	const clients = 64
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			c, err := client.Dial(addr, "admin", "admin-secret")
			if err != nil {
				errCh <- fmt.Errorf("worker %d dial: %w", w, err)
				return
			}
			defer c.Close()
			read, err := c.Prepare(`SELECT N FROM Counter WHERE ID = ?`)
			if err != nil {
				errCh <- err
				return
			}
			for op := 0; op < 30; op++ {
				slot := rng.Intn(slots)
				if rng.Intn(3) == 0 {
					// Transactional increment, acknowledged before the oracle
					// learns of it.
					if err := c.Begin(); err != nil {
						errCh <- fmt.Errorf("worker %d begin: %w", w, err)
						return
					}
					if _, _, err := c.Exec(`UPDATE Counter SET N = N + 1 WHERE ID = ?`, slot); err != nil {
						errCh <- fmt.Errorf("worker %d update: %w", w, err)
						return
					}
					if err := c.Commit(); err != nil {
						errCh <- fmt.Errorf("worker %d commit: %w", w, err)
						return
					}
					oracleMu.Lock()
					oracle[slot]++
					oracleMu.Unlock()
				} else {
					// Prepared point read; the count can only be <= the final
					// oracle value, and must be a sane non-negative integer.
					rows, err := read.Query(slot)
					if err != nil {
						errCh <- fmt.Errorf("worker %d read: %w", w, err)
						return
					}
					if !rows.Next() {
						rows.Close()
						errCh <- fmt.Errorf("worker %d: slot %d missing", w, slot)
						return
					}
					if n := rows.Row()[0].Int(); n < 0 {
						rows.Close()
						errCh <- fmt.Errorf("worker %d: negative count %d", w, n)
						return
					}
					if err := rows.Close(); err != nil {
						errCh <- fmt.Errorf("worker %d close: %w", w, err)
						return
					}
				}
			}
			errCh <- nil
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Fatal(err)
		}
	}

	// Final state must equal the oracle exactly.
	c := dial(t, addr)
	rows, err := c.Query(`SELECT ID, N FROM Counter`)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]int64, slots)
	for rows.Next() {
		got[rows.Row()[0].Int()] = rows.Row()[1].Int()
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	c.Close()
	for i := 0; i < slots; i++ {
		if got[i] != oracle[i] {
			t.Fatalf("slot %d = %d, oracle says %d", i, got[i], oracle[i])
		}
	}

	// Graceful shutdown, then prove nothing leaked.
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	waitFor(t, 10*time.Second, func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= baseline+2
	})
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// The database reopens and verifies clean, with the oracle's state.
	db2, err := bdbms.OpenWith(bdbms.Options{DataFile: dataFile})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	report, err := db2.Verify()
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if len(report.Problems) != 0 {
		t.Fatalf("Verify found problems: %+v", report.Problems)
	}
	res := db2.MustExec(`SELECT ID, N FROM Counter`)
	for _, row := range res.Rows {
		id, n := row.Values[0].Int(), row.Values[1].Int()
		if n != oracle[id] {
			t.Fatalf("reopened slot %d = %d, oracle says %d", id, n, oracle[id])
		}
	}
}

func TestPermissionDeniedOverWire(t *testing.T) {
	db, err := bdbms.OpenWith(bdbms.Options{EnforceAuth: true})
	if err != nil {
		t.Fatal(err)
	}
	db.MustExec(`CREATE TABLE T (ID INT NOT NULL PRIMARY KEY)`)
	db.SetCredential("admin", "admin-secret")
	db.SetCredential("intern", "intern-secret")
	_, addr := startServer(t, db, nil)

	c, err := client.Dial(addr, "intern", "intern-secret")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Query(`SELECT ID FROM T`)
	var se *client.ServerError
	if !errors.As(err, &se) || se.Code != errcode.PermissionDenied {
		t.Fatalf("unprivileged select = %v, want authz.permission_denied", err)
	}

	// GRANT over the wire from the admin, then the intern can read.
	a := dial(t, addr)
	if _, _, err := a.Exec(`GRANT SELECT ON T TO intern`); err != nil {
		t.Fatal(err)
	}
	rows, err := c.Query(`SELECT ID FROM T`)
	if err != nil {
		t.Fatalf("post-grant select: %v", err)
	}
	for rows.Next() {
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestStatementErrorsCarryStableCodes(t *testing.T) {
	db := openTestDB(t)
	db.MustExec(`CREATE TABLE T (ID INT NOT NULL PRIMARY KEY)`)
	// A row to evaluate projections against: the unknown-column error is
	// raised when a row reaches the projector, not at parse time.
	db.MustExec(`INSERT INTO T VALUES (1)`)
	_, addr := startServer(t, db, nil)
	c := dial(t, addr)

	cases := []struct {
		sql  string
		code errcode.Code
	}{
		{`SELEKT banana`, errcode.Syntax},
		{`SELECT ID FROM NoSuchTable`, errcode.TableNotFound},
		{`SELECT Nope FROM T`, errcode.UnknownColumn},
	}
	for _, tc := range cases {
		// Exec drains the stream, so errors surface uniformly whether they
		// are raised at parse, plan, or first-row time.
		_, _, err := c.Exec(tc.sql)
		var se *client.ServerError
		if !errors.As(err, &se) || se.Code != tc.code {
			t.Errorf("%q -> %v, want code %q", tc.sql, err, tc.code)
		}
	}
	// Unknown statement / portal names.
	if err := c.Bind("p", "ghost"); err == nil {
		t.Fatal("bind to ghost statement succeeded")
	} else {
		var se *client.ServerError
		if !errors.As(err, &se) || se.Code != errcode.NetUnknownStmt {
			t.Fatalf("ghost bind = %v, want net.unknown_stmt", err)
		}
	}
	if _, err := c.Execute("ghost", 0); err == nil {
		t.Fatal("execute of ghost portal succeeded")
	} else {
		var se *client.ServerError
		if !errors.As(err, &se) || se.Code != errcode.NetUnknownPortal {
			t.Fatalf("ghost execute = %v, want net.unknown_portal", err)
		}
	}
	// Wrong arg count is caught at Bind time.
	if _, err := c.Parse("one", `SELECT ID FROM T WHERE ID = ?`); err != nil {
		t.Fatal(err)
	}
	err := c.Bind("p1", "one", 1, 2)
	var se *client.ServerError
	if !errors.As(err, &se) || se.Code != errcode.BadArgs {
		t.Fatalf("arity mismatch = %v, want exec.bad_args", err)
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("conn dead after statement errors: %v", err)
	}
}
