package server

import (
	"fmt"

	"bdbms"
	"bdbms/internal/errcode"
	"bdbms/internal/server/wire"
)

// session is the per-connection statement state: an engine session bound to
// the authenticated user, the named prepared statements, and the portals
// (bound statements, possibly mid-stream). Only the connection's handler
// goroutine touches it, so it needs no locking of its own.
type session struct {
	c     *conn
	user  string
	es    *bdbms.Session
	stmts map[string]*bdbms.Stmt
	ports map[string]*portal
}

// portal is a bound statement, and — once executed — its streaming cursor.
type portal struct {
	stmt     *bdbms.Stmt
	args     []any
	rows     *bdbms.Rows // non-nil while suspended mid-stream
	sentHdr  bool
	produced int // rows delivered so far across Execute+Fetch
}

func newSession(c *conn, user string) *session {
	return &session{
		c:     c,
		user:  user,
		es:    c.srv.cfg.DB.Session(user),
		stmts: make(map[string]*bdbms.Stmt),
		ports: make(map[string]*portal),
	}
}

// dispatch services one request frame; see conn.dispatch for the
// keep-vs-close contract of the return value.
func (s *session) dispatch(t wire.Type, payload []byte) bool {
	switch t {
	case wire.TypeParse:
		m, err := wire.DecodeParse(payload)
		if err != nil {
			return s.malformed("Parse", err)
		}
		return s.handleParse(m)
	case wire.TypeBind:
		m, err := wire.DecodeBind(payload)
		if err != nil {
			return s.malformed("Bind", err)
		}
		return s.handleBind(m)
	case wire.TypeExecute:
		m, err := wire.DecodeExecute(payload)
		if err != nil {
			return s.malformed("Execute", err)
		}
		return s.handleExecute(m)
	case wire.TypeFetch:
		m, err := wire.DecodeFetch(payload)
		if err != nil {
			return s.malformed("Fetch", err)
		}
		return s.handleFetch(m)
	case wire.TypeCloseStmt:
		m, err := wire.DecodeCloseTarget(payload)
		if err != nil {
			return s.malformed("CloseStmt", err)
		}
		delete(s.stmts, m.Name)
		return s.c.send(wire.TypeCloseOK, nil)
	case wire.TypeClosePortal:
		m, err := wire.DecodeCloseTarget(payload)
		if err != nil {
			return s.malformed("ClosePortal", err)
		}
		s.closePortal(m.Name)
		return s.c.send(wire.TypeCloseOK, nil)
	case wire.TypeBegin:
		return s.handleTxControl("BEGIN")
	case wire.TypeCommit:
		return s.handleTxControl("COMMIT")
	case wire.TypeRollback:
		return s.handleTxControl("ROLLBACK")
	case wire.TypePing:
		return s.c.send(wire.TypePong, nil)
	case wire.TypeTerminate:
		return false
	case wire.TypeHello:
		s.c.sendError(errcode.NetProtocol, "already authenticated")
		return false
	default:
		s.c.sendError(errcode.NetProtocol, fmt.Sprintf("unexpected frame type %q", byte(t)))
		return false
	}
}

// malformed reports an undecodable payload. The framing itself was intact,
// but a client that cannot encode its requests cannot be reasoned with —
// the connection closes.
func (s *session) malformed(what string, err error) bool {
	s.c.sendError(errcode.NetProtocol, fmt.Sprintf("malformed %s frame: %v", what, err))
	return false
}

// sendErr reports a statement-level failure with its stable code and keeps
// the connection alive.
func (s *session) sendErr(err error) bool {
	s.c.sendError(errcode.FromError(err), err.Error())
	return true
}

func (s *session) handleParse(m wire.Parse) bool {
	st, err := s.es.Prepare(m.SQL)
	if err != nil {
		return s.sendErr(err)
	}
	s.stmts[m.Name] = st
	return s.c.send(wire.TypeParseOK, wire.ParseOK{NumParams: st.NumParams()}.Encode())
}

func (s *session) handleBind(m wire.Bind) bool {
	st, ok := s.stmts[m.Stmt]
	if !ok {
		s.c.sendError(errcode.NetUnknownStmt, fmt.Sprintf("no prepared statement %q", m.Stmt))
		return true
	}
	if len(m.Args) != st.NumParams() {
		s.c.sendError(errcode.BadArgs,
			fmt.Sprintf("statement %q wants %d arguments, got %d", m.Stmt, st.NumParams(), len(m.Args)))
		return true
	}
	args := make([]any, len(m.Args))
	for i, v := range m.Args {
		args[i] = v
	}
	// Rebinding a name discards its previous incarnation, cursor included.
	s.closePortal(m.Portal)
	s.ports[m.Portal] = &portal{stmt: st, args: args}
	return s.c.send(wire.TypeBindOK, nil)
}

// quiesceExcept closes every open cursor except keep's. It runs before
// anything that executes a statement, enforcing the one-active-cursor
// policy. Cursors read MVCC snapshots and hold no locks, so an open cursor
// can no longer deadlock its own connection's writes or stall anyone else;
// the policy survives because each open cursor pins row versions engine-wide
// (and spill files on disk), and a protocol whose portals implicitly closed
// on the next Execute must keep doing so for existing clients. Clients that
// want interleaved result sets page them explicitly with Fetch.
func (s *session) quiesceExcept(keep *portal) {
	for _, p := range s.ports {
		if p != keep && p.rows != nil {
			p.rows.Close()
			p.rows = nil
		}
	}
}

func (s *session) handleExecute(m wire.Execute) bool {
	p, ok := s.ports[m.Portal]
	if !ok {
		s.c.sendError(errcode.NetUnknownPortal, fmt.Sprintf("no portal %q", m.Portal))
		return true
	}
	// Execute (re)starts the portal from scratch.
	if p.rows != nil {
		p.rows.Close()
		p.rows = nil
	}
	p.sentHdr, p.produced = false, 0
	s.quiesceExcept(p)
	rows, err := p.stmt.Query(s.c.ctx, p.args...)
	if err != nil {
		return s.sendErr(err)
	}
	p.rows = rows
	return s.stream(m.Portal, p, m.MaxRows)
}

func (s *session) handleFetch(m wire.Fetch) bool {
	p, ok := s.ports[m.Portal]
	if !ok {
		s.c.sendError(errcode.NetUnknownPortal, fmt.Sprintf("no portal %q", m.Portal))
		return true
	}
	if p.rows == nil {
		s.c.sendError(errcode.NetProtocol, fmt.Sprintf("portal %q is not executing; send Execute first", m.Portal))
		return true
	}
	return s.stream(m.Portal, p, m.MaxRows)
}

// stream sends the next batch of the portal's result: a RowHeader (first
// batch only), up to max Row frames (max <= 0 means all), then Suspended if
// the quota ran out or Complete when the cursor is exhausted. Exhaustion
// closes the cursor immediately — its MVCC snapshot is never kept pinned
// while waiting for the next client request unless rows genuinely remain.
func (s *session) stream(name string, p *portal, max int) bool {
	if !p.sentHdr {
		if !s.c.send(wire.TypeRowHeader, wire.RowHeader{Columns: p.rows.Columns()}.Encode()) {
			return false
		}
		p.sentHdr = true
	}
	sent := 0
	for max <= 0 || sent < max {
		if !p.rows.Next() {
			break
		}
		row := p.rows.Row()
		msg := wire.Row{Values: row.Values, Anns: flattenAnns(row)}
		if !s.c.send(wire.TypeRow, msg.Encode()) {
			return false
		}
		sent++
		p.produced++
	}
	if max > 0 && sent == max {
		// Quota reached with the cursor (and its pinned snapshot)
		// intentionally held open for the next Fetch.
		return s.c.send(wire.TypeSuspended, nil)
	}
	err := p.rows.Err()
	affected, message := p.rows.Affected(), p.rows.Message()
	p.rows.Close()
	p.rows = nil
	if err != nil {
		return s.sendErr(err)
	}
	return s.c.send(wire.TypeComplete, wire.Complete{
		Affected: affected,
		Message:  message,
		Rows:     p.produced,
	}.Encode())
}

// flattenAnns converts a row's per-cell annotation pointers to the wire
// representation.
func flattenAnns(row bdbms.Row) [][]wire.Ann {
	if len(row.Anns) == 0 {
		return nil
	}
	out := make([][]wire.Ann, len(row.Anns))
	for i, cell := range row.Anns {
		if len(cell) == 0 {
			continue
		}
		anns := make([]wire.Ann, len(cell))
		for j, a := range cell {
			anns[j] = wire.Ann{
				ID:       a.ID,
				AnnTable: a.AnnTable,
				Author:   a.Author,
				Body:     a.Body,
				Archived: a.Archived,
			}
		}
		out[i] = anns
	}
	return out
}

// handleTxControl runs BEGIN/COMMIT/ROLLBACK through the ordinary statement
// path, so wire transactions share every semantic of their A-SQL spelling
// (nesting errors, auto-rollback on close, savepoint interactions).
func (s *session) handleTxControl(sql string) bool {
	s.quiesceExcept(nil)
	rows, err := s.es.Query(s.c.ctx, sql)
	if err != nil {
		return s.sendErr(err)
	}
	message := rows.Message()
	rows.Close()
	return s.c.send(wire.TypeComplete, wire.Complete{Message: message}.Encode())
}

// closePortal closes one portal's cursor (if open) and forgets it.
func (s *session) closePortal(name string) {
	if p, ok := s.ports[name]; ok {
		if p.rows != nil {
			p.rows.Close()
		}
		delete(s.ports, name)
	}
}

// close releases everything the session holds: every open cursor (each
// Close releases its pinned MVCC snapshot — this is what lets the engine
// reclaim row versions when a client vanishes mid-stream), then the open
// transaction, rolled back (releasing its write latches). Runs on every
// disconnect path, graceful or not.
func (s *session) close() {
	for name := range s.ports {
		s.closePortal(name)
	}
	s.es.CloseTx()
}
