package client

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"bdbms"
	"bdbms/internal/errcode"
	"bdbms/internal/server"
	"bdbms/internal/value"
)

// startServer serves a fresh in-memory database with one credential
// (alice / wonder) and returns its address.
func startServer(t *testing.T) string {
	t.Helper()
	db := bdbms.Open()
	db.SetCredential("alice", "wonder")
	srv, err := server.New(server.Config{DB: db, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
		db.Close()
	})
	return srv.Addr().String()
}

func dial(t *testing.T, addr string) *Conn {
	t.Helper()
	c, err := Dial(addr, "alice", "wonder")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestDialHandshake(t *testing.T) {
	addr := startServer(t)
	c := dial(t, addr)
	if c.SessionID() == 0 {
		t.Error("SessionID = 0, want server-assigned id")
	}
	if !strings.Contains(c.ServerVersion(), "bdbms-server") {
		t.Errorf("ServerVersion = %q", c.ServerVersion())
	}
	if err := c.Ping(); err != nil {
		t.Errorf("Ping: %v", err)
	}
}

func TestDialAuthFailure(t *testing.T) {
	addr := startServer(t)
	_, err := Dial(addr, "alice", "nope")
	var se *ServerError
	if !errors.As(err, &se) || se.Code != errcode.AuthFailed {
		t.Fatalf("Dial with bad secret = %v, want ServerError[%s]", err, errcode.AuthFailed)
	}
}

func TestQueryExecRoundTrip(t *testing.T) {
	c := dial(t, startServer(t))
	if _, msg, err := c.Exec(`CREATE TABLE T (ID INT NOT NULL PRIMARY KEY, Name TEXT)`); err != nil {
		t.Fatal(err)
	} else if !strings.Contains(msg, "created") {
		t.Errorf("DDL message = %q", msg)
	}
	affected, _, err := c.Exec(`INSERT INTO T VALUES (1, 'ada'), (2, 'grace'), (3, 'edith')`)
	if err != nil {
		t.Fatal(err)
	}
	if affected != 3 {
		t.Errorf("affected = %d, want 3", affected)
	}

	rows, err := c.Query(`SELECT ID, Name FROM T WHERE ID >= ? ORDER BY ID`, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cols := rows.Columns(); len(cols) != 2 || cols[0] != "ID" || cols[1] != "Name" {
		t.Errorf("Columns = %v", cols)
	}
	var names []string
	for rows.Next() {
		row := rows.Row()
		names = append(names, row[1].String())
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(names, ","); got != "grace,edith" {
		t.Errorf("rows = %q, want %q", got, "grace,edith")
	}
	// The connection is reusable after a drained stream.
	if err := c.Ping(); err != nil {
		t.Errorf("Ping after Query: %v", err)
	}
}

func TestPreparedStatementPaging(t *testing.T) {
	c := dial(t, startServer(t))
	mustExec(t, c, `CREATE TABLE N (I INT NOT NULL PRIMARY KEY)`)
	ins, err := c.Prepare(`INSERT INTO N VALUES (?)`)
	if err != nil {
		t.Fatal(err)
	}
	if ins.NumParams() != 1 {
		t.Errorf("NumParams = %d, want 1", ins.NumParams())
	}
	for i := 0; i < 37; i++ {
		if _, _, err := ins.Exec(i); err != nil {
			t.Fatal(err)
		}
	}
	if err := ins.Close(); err != nil {
		t.Fatal(err)
	}

	sel, err := c.Prepare(`SELECT I FROM N ORDER BY I`)
	if err != nil {
		t.Fatal(err)
	}
	// fetchSize 5 forces transparent Fetch paging across 8 batches.
	rows, err := sel.QueryBatch(5)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for rows.Next() {
		count++
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if count != 37 {
		t.Errorf("paged scan saw %d rows, want 37", count)
	}
}

func TestRowsCloseReleasesSuspendedCursor(t *testing.T) {
	c := dial(t, startServer(t))
	mustExec(t, c, `CREATE TABLE N (I INT NOT NULL PRIMARY KEY)`)
	for i := 0; i < 20; i++ {
		mustExec(t, c, `INSERT INTO N VALUES (?)`, i)
	}
	sel, err := c.Prepare(`SELECT I FROM N`)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := sel.QueryBatch(4)
	if err != nil {
		t.Fatal(err)
	}
	// Read one batch and abandon at the suspend boundary: Close must issue
	// the ClosePortal that frees the server-side cursor.
	for i := 0; i < 4 && rows.Next(); i++ {
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	// The cursor's read lock is released: a write proceeds.
	mustExec(t, c, `INSERT INTO N VALUES (100)`)
}

func TestTransactions(t *testing.T) {
	c := dial(t, startServer(t))
	mustExec(t, c, `CREATE TABLE T (I INT NOT NULL PRIMARY KEY)`)
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	mustExec(t, c, `INSERT INTO T VALUES (1)`)
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	mustExec(t, c, `INSERT INTO T VALUES (2)`)
	if err := c.Rollback(); err != nil {
		t.Fatal(err)
	}
	if got := countRows(t, c, `SELECT I FROM T`); got != 1 {
		t.Errorf("after commit+rollback: %d rows, want 1", got)
	}
	// Commit with no open transaction is a categorized, non-fatal error.
	err := c.Commit()
	var se *ServerError
	if !errors.As(err, &se) || se.Code != errcode.TxNone {
		t.Fatalf("Commit outside tx = %v, want ServerError[%s]", err, errcode.TxNone)
	}
	if err := c.Ping(); err != nil {
		t.Errorf("conn unusable after tx error: %v", err)
	}
}

func TestStatementErrorCodes(t *testing.T) {
	c := dial(t, startServer(t))
	cases := []struct {
		sql  string
		want errcode.Code
	}{
		{`SELEKT 1`, errcode.Syntax},
		{`SELECT X FROM NoSuchTable`, errcode.TableNotFound},
	}
	for _, tc := range cases {
		_, _, err := c.Exec(tc.sql)
		var se *ServerError
		if !errors.As(err, &se) || se.Code != tc.want {
			t.Errorf("Exec(%q) = %v, want ServerError[%s]", tc.sql, err, tc.want)
		}
		if !strings.Contains(se.Error(), string(tc.want)) {
			t.Errorf("Error() = %q misses the code", se.Error())
		}
	}
	// Protocol-level name errors.
	if err := c.Bind("p", "no-such-stmt"); err == nil {
		t.Error("Bind to unknown statement succeeded")
	}
	if _, err := c.Execute("no-such-portal", 0); err == nil {
		t.Error("Execute of unknown portal succeeded")
	}
	if err := c.Ping(); err != nil {
		t.Errorf("conn unusable after statement errors: %v", err)
	}
}

func TestActiveRowsBlocksRequests(t *testing.T) {
	c := dial(t, startServer(t))
	mustExec(t, c, `CREATE TABLE T (I INT NOT NULL PRIMARY KEY)`)
	mustExec(t, c, `INSERT INTO T VALUES (1), (2)`)
	rows, err := c.Query(`SELECT I FROM T`)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Ping(); err == nil || !strings.Contains(err.Error(), "not closed") {
		t.Errorf("Ping with open Rows = %v, want not-closed error", err)
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Ping(); err != nil {
		t.Errorf("Ping after Close: %v", err)
	}
	// Close again is a no-op.
	if err := rows.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func TestBrokenConnIsSticky(t *testing.T) {
	addr := startServer(t)
	c, err := Dial(addr, "alice", "wonder")
	if err != nil {
		t.Fatal(err)
	}
	c.nc.Close() // sever the socket under the client
	if err := c.Ping(); err == nil {
		t.Fatal("Ping on severed conn succeeded")
	}
	if err := c.Ping(); !errors.Is(err, c.broken) {
		t.Errorf("second Ping = %v, want the sticky broken error", err)
	}
	c.Close()
}

func TestArgumentConversions(t *testing.T) {
	c := dial(t, startServer(t))
	mustExec(t, c, `CREATE TABLE V (I INT NOT NULL PRIMARY KEY, F FLOAT, T TEXT, B BOOL, TS TIMESTAMP)`)
	ts := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	args := []any{int64(1), float32(2.5), []byte("bytes"), true, ts}
	mustExec(t, c, `INSERT INTO V VALUES (?, ?, ?, ?, ?)`, args...)
	mustExec(t, c, `INSERT INTO V VALUES (?, ?, ?, ?, ?)`,
		int32(2), float64(3.5), "text", value.NewBool(false), nil)
	mustExec(t, c, `INSERT INTO V VALUES (?, ?, ?, ?, ?)`,
		uint32(3), nil, nil, nil, nil)
	if got := countRows(t, c, `SELECT I FROM V`); got != 3 {
		t.Errorf("rows = %d, want 3", got)
	}
	rows, err := c.Query(`SELECT T FROM V WHERE I = ?`, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatal("no row for I=1")
	}
	if got := rows.Row()[0].String(); got != "bytes" {
		t.Errorf("T = %q, want %q", got, "bytes")
	}
	rows.Close()

	// Unsupported argument types are rejected client-side.
	if _, err := c.Query(`SELECT I FROM V WHERE I = ?`, struct{}{}); err == nil ||
		!strings.Contains(err.Error(), "unsupported argument type") {
		t.Errorf("struct arg = %v, want unsupported-type error", err)
	}
	if err := c.Ping(); err != nil {
		t.Errorf("conn unusable after arg error: %v", err)
	}
}

func TestAnnotationsCrossTheWire(t *testing.T) {
	c := dial(t, startServer(t))
	mustExec(t, c, `CREATE TABLE Gene (ID INT NOT NULL PRIMARY KEY, Name TEXT)`)
	mustExec(t, c, `INSERT INTO Gene VALUES (1, 'BRCA1')`)
	mustExec(t, c, `CREATE ANNOTATION TABLE Curation ON Gene CATEGORY 'comment'`)
	mustExec(t, c, `ADD ANNOTATION TO Gene.Curation VALUE 'verified' ON (SELECT Name FROM Gene WHERE ID = 1)`)
	rows, err := c.Query(`SELECT Name FROM Gene ANNOTATION(Curation)`)
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatalf("no row: %v", rows.Err())
	}
	anns := rows.Annotations()
	if len(anns) != 1 || len(anns[0]) != 1 {
		t.Fatalf("Annotations = %v, want one annotation on the one column", anns)
	}
	if got := anns[0][0].PlainBody(); got != "verified" {
		t.Errorf("annotation body = %q, want %q", got, "verified")
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRowsFailOnSeveredConn(t *testing.T) {
	addr := startServer(t)
	c, err := Dial(addr, "alice", "wonder")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	mustExec(t, c, `CREATE TABLE N (I INT NOT NULL PRIMARY KEY)`)
	for i := 0; i < 10; i++ {
		mustExec(t, c, `INSERT INTO N VALUES (?)`, i)
	}
	sel, err := c.Prepare(`SELECT I FROM N`)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := sel.QueryBatch(3)
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatalf("first row: %v", rows.Err())
	}
	c.nc.Close() // sever mid-stream
	for rows.Next() {
	}
	if rows.Err() == nil {
		t.Error("Err = nil after severed stream")
	}
	if err := rows.Close(); err == nil {
		t.Error("Close = nil after severed stream")
	}
	if err := c.Ping(); err == nil {
		t.Error("conn usable after severed stream")
	}
}

func TestCloseTerminatesPolitely(t *testing.T) {
	addr := startServer(t)
	c, err := Dial(addr, "alice", "wonder")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	if err := c.Ping(); err == nil {
		t.Error("Ping after Close succeeded")
	}
}

func TestDialConnectionRefused(t *testing.T) {
	if _, err := DialTimeout("127.0.0.1:1", "u", "s", time.Second); err == nil {
		t.Fatal("Dial to closed port succeeded")
	}
}

func mustExec(t *testing.T, c *Conn, sql string, args ...any) {
	t.Helper()
	if _, _, err := c.Exec(sql, args...); err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
}

func countRows(t *testing.T, c *Conn, sql string) int {
	t.Helper()
	rows, err := c.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for rows.Next() {
		n++
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	return n
}
