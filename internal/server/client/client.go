// Package client is the Go client for the bdbms network server. It speaks
// the internal/server/wire protocol over one TCP connection and mirrors the
// embedded API's shape: Query returns a streaming *Rows, Prepare returns a
// *Stmt for repeated execution, Begin/Commit/Rollback control transactions.
//
// A connection is strictly synchronous: one request is in flight at a time,
// and a Rows must be drained or Closed before the next call. The client
// enforces this, so misuse surfaces as a clear error instead of protocol
// corruption. A Conn is NOT safe for concurrent use; open one per
// goroutine (they are cheap — one socket and two small buffers).
package client

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strconv"
	"time"

	"bdbms/internal/errcode"
	"bdbms/internal/server/wire"
	"bdbms/internal/value"
)

// ServerError is a statement or protocol failure reported by the server,
// carrying its stable categorized code (see internal/errcode).
type ServerError struct {
	Code    errcode.Code
	Message string
}

func (e *ServerError) Error() string {
	return fmt.Sprintf("server error [%s]: %s", e.Code, e.Message)
}

// errBroken poisons a connection after a protocol violation or I/O error:
// the stream position is unknown, so every later call fails fast.
var errBroken = errors.New("client: connection is broken")

// Conn is one client connection to a bdbms server.
type Conn struct {
	nc net.Conn
	br *bufio.Reader
	bw *bufio.Writer

	sessionID     uint64
	serverVersion string

	active *Rows // un-drained result set; blocks new requests
	broken error // sticky fatal error
	nextID int   // auto-generated statement/portal names
}

// Dial connects and authenticates. The returned connection is ready for
// queries as the given user, subject to the server's GRANT/REVOKE checks.
func Dial(addr, user, secret string) (*Conn, error) {
	return DialTimeout(addr, user, secret, 10*time.Second)
}

// DialTimeout is Dial with an explicit connect+handshake timeout.
func DialTimeout(addr, user, secret string, timeout time.Duration) (*Conn, error) {
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	c := &Conn{nc: nc, br: bufio.NewReaderSize(nc, 32<<10), bw: bufio.NewWriterSize(nc, 32<<10)}
	nc.SetDeadline(time.Now().Add(timeout))
	hello := wire.Hello{Version: wire.ProtocolVersion, User: user, Secret: secret}
	if err := c.request(wire.TypeHello, hello.Encode()); err != nil {
		nc.Close()
		return nil, err
	}
	t, payload, err := c.read()
	if err != nil {
		nc.Close()
		return nil, err
	}
	if t == wire.TypeError {
		nc.Close()
		e, derr := wire.DecodeError(payload)
		if derr != nil {
			return nil, derr
		}
		return nil, &ServerError{Code: e.Code, Message: e.Message}
	}
	if t != wire.TypeAuthOK {
		nc.Close()
		return nil, fmt.Errorf("client: unexpected handshake reply %q", byte(t))
	}
	ok, err := wire.DecodeAuthOK(payload)
	if err != nil {
		nc.Close()
		return nil, err
	}
	c.sessionID, c.serverVersion = ok.SessionID, ok.ServerVersion
	nc.SetDeadline(time.Time{})
	return c, nil
}

// SessionID returns the server-assigned connection ID.
func (c *Conn) SessionID() uint64 { return c.sessionID }

// ServerVersion returns the server's version banner.
func (c *Conn) ServerVersion() string { return c.serverVersion }

// Close terminates the session (politely, with a Terminate frame) and
// closes the socket.
func (c *Conn) Close() error {
	if c.broken == nil {
		wire.WriteFrame(c.bw, wire.TypeTerminate, nil)
		c.bw.Flush()
	}
	c.broken = errBroken
	return c.nc.Close()
}

// ready rejects calls while a Rows is un-drained or the conn is broken.
func (c *Conn) ready() error {
	if c.broken != nil {
		return c.broken
	}
	if c.active != nil {
		return errors.New("client: previous Rows not closed; drain or Close it first")
	}
	return nil
}

// request writes one frame and flushes it.
func (c *Conn) request(t wire.Type, payload []byte) error {
	if err := wire.WriteFrame(c.bw, t, payload); err != nil {
		c.broken = err
		return err
	}
	if err := c.bw.Flush(); err != nil {
		c.broken = err
		return err
	}
	return nil
}

// read receives one frame, poisoning the connection on I/O failure.
func (c *Conn) read() (wire.Type, []byte, error) {
	t, payload, err := wire.ReadFrame(c.br, wire.MaxFrame)
	if err != nil {
		c.broken = err
		return 0, nil, err
	}
	return t, payload, nil
}

// roundTrip sends a request and expects a single reply of type want,
// returning a *ServerError when the server answered with an error frame.
func (c *Conn) roundTrip(t wire.Type, payload []byte, want wire.Type) ([]byte, error) {
	if err := c.ready(); err != nil {
		return nil, err
	}
	if err := c.request(t, payload); err != nil {
		return nil, err
	}
	rt, rp, err := c.read()
	if err != nil {
		return nil, err
	}
	switch rt {
	case want:
		return rp, nil
	case wire.TypeError:
		e, derr := wire.DecodeError(rp)
		if derr != nil {
			c.broken = derr
			return nil, derr
		}
		return nil, &ServerError{Code: e.Code, Message: e.Message}
	default:
		c.broken = fmt.Errorf("client: unexpected reply %q to %q", byte(rt), byte(t))
		return nil, c.broken
	}
}

// Ping round-trips a heartbeat.
func (c *Conn) Ping() error {
	_, err := c.roundTrip(wire.TypePing, nil, wire.TypePong)
	return err
}

// Parse installs a named prepared statement on the server and returns its
// parameter count. An empty name is the unnamed statement, overwritten by
// the next Parse("").
func (c *Conn) Parse(name, sql string) (int, error) {
	rp, err := c.roundTrip(wire.TypeParse, wire.Parse{Name: name, SQL: sql}.Encode(), wire.TypeParseOK)
	if err != nil {
		return 0, err
	}
	ok, err := wire.DecodeParseOK(rp)
	if err != nil {
		c.broken = err
		return 0, err
	}
	return ok.NumParams, nil
}

// Bind creates (or replaces) a portal binding the named statement's `?`
// placeholders to args. Args may be value.Value or ordinary Go scalars
// (string, integers, floats, bool, time.Time, []byte, nil).
func (c *Conn) Bind(portal, stmt string, args ...any) error {
	row, err := toRow(args)
	if err != nil {
		return err
	}
	_, err = c.roundTrip(wire.TypeBind, wire.Bind{Portal: portal, Stmt: stmt, Args: row}.Encode(), wire.TypeBindOK)
	return err
}

// Execute runs a bound portal and returns its streaming result. fetchSize
// bounds each server batch: 0 streams every row in one burst; a positive
// size pages the cursor Fetch-by-Fetch transparently (Rows.Next issues the
// Fetches). The Rows must be drained or Closed before any other call.
func (c *Conn) Execute(portal string, fetchSize int) (*Rows, error) {
	if err := c.ready(); err != nil {
		return nil, err
	}
	if err := c.request(wire.TypeExecute, wire.Execute{Portal: portal, MaxRows: fetchSize}.Encode()); err != nil {
		return nil, err
	}
	return c.startRows(portal, fetchSize)
}

// startRows consumes the RowHeader (or error) opening a result stream.
func (c *Conn) startRows(portal string, fetchSize int) (*Rows, error) {
	t, payload, err := c.read()
	if err != nil {
		return nil, err
	}
	switch t {
	case wire.TypeRowHeader:
		h, derr := wire.DecodeRowHeader(payload)
		if derr != nil {
			c.broken = derr
			return nil, derr
		}
		r := &Rows{c: c, portal: portal, fetchSize: fetchSize, cols: h.Columns}
		c.active = r
		return r, nil
	case wire.TypeError:
		e, derr := wire.DecodeError(payload)
		if derr != nil {
			c.broken = derr
			return nil, derr
		}
		return nil, &ServerError{Code: e.Code, Message: e.Message}
	default:
		c.broken = fmt.Errorf("client: unexpected reply %q to Execute", byte(t))
		return nil, c.broken
	}
}

// CloseStmt forgets a named prepared statement on the server.
func (c *Conn) CloseStmt(name string) error {
	_, err := c.roundTrip(wire.TypeCloseStmt, wire.CloseTarget{Name: name}.Encode(), wire.TypeCloseOK)
	return err
}

// ClosePortal closes a portal (and any cursor it holds open server-side).
func (c *Conn) ClosePortal(name string) error {
	_, err := c.roundTrip(wire.TypeClosePortal, wire.CloseTarget{Name: name}.Encode(), wire.TypeCloseOK)
	return err
}

// txControl round-trips one transaction-control frame.
func (c *Conn) txControl(t wire.Type) error {
	rp, err := c.roundTrip(t, nil, wire.TypeComplete)
	if err != nil {
		return err
	}
	_, err = wire.DecodeComplete(rp)
	return err
}

// Begin opens an explicit transaction; the connection holds the engine's
// exclusive lock until Commit or Rollback, so end it promptly.
func (c *Conn) Begin() error { return c.txControl(wire.TypeBegin) }

// Commit commits the open transaction.
func (c *Conn) Commit() error { return c.txControl(wire.TypeCommit) }

// Rollback rolls back the open transaction.
func (c *Conn) Rollback() error { return c.txControl(wire.TypeRollback) }

// Query is the one-shot convenience: parse, bind and execute sql with args
// through the unnamed statement and portal, streaming all rows.
func (c *Conn) Query(sql string, args ...any) (*Rows, error) {
	if _, err := c.Parse("", sql); err != nil {
		return nil, err
	}
	if err := c.Bind("", "", args...); err != nil {
		return nil, err
	}
	return c.Execute("", 0)
}

// Exec runs sql with args and drains the result, returning the affected
// row count and status message.
func (c *Conn) Exec(sql string, args ...any) (affected int, message string, err error) {
	rows, err := c.Query(sql, args...)
	if err != nil {
		return 0, "", err
	}
	for rows.Next() {
	}
	if err := rows.Err(); err != nil {
		rows.Close()
		return 0, "", err
	}
	affected, message = rows.Affected(), rows.Message()
	return affected, message, rows.Close()
}

// Prepare installs sql under an auto-generated name and returns a Stmt
// bound to it.
func (c *Conn) Prepare(sql string) (*Stmt, error) {
	c.nextID++
	name := "s" + strconv.Itoa(c.nextID)
	n, err := c.Parse(name, sql)
	if err != nil {
		return nil, err
	}
	return &Stmt{c: c, name: name, numParams: n}, nil
}

// Stmt is a named prepared statement on the server.
type Stmt struct {
	c         *Conn
	name      string
	numParams int
}

// NumParams returns the number of `?` placeholders.
func (s *Stmt) NumParams() int { return s.numParams }

// Query executes the statement with args, streaming all rows through the
// statement's own portal.
func (s *Stmt) Query(args ...any) (*Rows, error) { return s.QueryBatch(0, args...) }

// QueryBatch executes the statement with args, paging the cursor in
// batches of fetchSize rows (0 = one burst).
func (s *Stmt) QueryBatch(fetchSize int, args ...any) (*Rows, error) {
	if err := s.c.Bind(s.name, s.name, args...); err != nil {
		return nil, err
	}
	return s.c.Execute(s.name, fetchSize)
}

// Exec executes the statement with args and drains the result.
func (s *Stmt) Exec(args ...any) (affected int, message string, err error) {
	rows, err := s.Query(args...)
	if err != nil {
		return 0, "", err
	}
	for rows.Next() {
	}
	if err := rows.Err(); err != nil {
		rows.Close()
		return 0, "", err
	}
	affected, message = rows.Affected(), rows.Message()
	return affected, message, rows.Close()
}

// Close forgets the statement server-side.
func (s *Stmt) Close() error { return s.c.CloseStmt(s.name) }

// Rows is a streaming result set. Iterate with Next, inspect the current
// row with Row/Annotations, and always Close (Close after exhaustion is a
// cheap no-op). While a Rows is open no other request may be sent on its
// connection.
type Rows struct {
	c         *Conn
	portal    string
	fetchSize int
	cols      []string

	cur     wire.Row
	err     error
	done    bool // Complete or Error received; stream is finished
	suspend bool // Suspended received; server holds the cursor open
	closed  bool

	affected int
	message  string
}

// Columns returns the result column names.
func (r *Rows) Columns() []string { return r.cols }

// Next advances to the next row, transparently issuing Fetch requests when
// the server suspended the cursor at the batch boundary. It returns false
// at the end of the stream or on error — check Err.
func (r *Rows) Next() bool {
	if r.done || r.closed || r.err != nil {
		return false
	}
	for {
		if r.suspend {
			// Batch exhausted; ask for the next one.
			r.suspend = false
			f := wire.Fetch{Portal: r.portal, MaxRows: r.fetchSize}
			if err := r.c.request(wire.TypeFetch, f.Encode()); err != nil {
				r.fail(err)
				return false
			}
		}
		t, payload, err := r.c.read()
		if err != nil {
			r.fail(err)
			return false
		}
		switch t {
		case wire.TypeRow:
			row, derr := wire.DecodeRowMsg(payload)
			if derr != nil {
				r.c.broken = derr
				r.fail(derr)
				return false
			}
			r.cur = row
			return true
		case wire.TypeSuspended:
			r.suspend = true
			// Loop around to fetch the next batch.
		case wire.TypeComplete:
			comp, derr := wire.DecodeComplete(payload)
			if derr != nil {
				r.c.broken = derr
				r.fail(derr)
				return false
			}
			r.affected, r.message = comp.Affected, comp.Message
			r.finish()
			return false
		case wire.TypeError:
			e, derr := wire.DecodeError(payload)
			if derr != nil {
				r.c.broken = derr
				r.fail(derr)
				return false
			}
			r.err = &ServerError{Code: e.Code, Message: e.Message}
			r.finish()
			return false
		default:
			r.c.broken = fmt.Errorf("client: unexpected frame %q in result stream", byte(t))
			r.fail(r.c.broken)
			return false
		}
	}
}

// fail records a fatal stream error.
func (r *Rows) fail(err error) {
	r.err = err
	r.done = true
	if r.c.active == r {
		r.c.active = nil
	}
}

// finish marks the stream cleanly ended and releases the connection.
func (r *Rows) finish() {
	r.done = true
	if r.c.active == r {
		r.c.active = nil
	}
}

// Row returns the current row's values.
func (r *Rows) Row() value.Row { return r.cur.Values }

// Annotations returns the current row's per-column annotations.
func (r *Rows) Annotations() [][]wire.Ann { return r.cur.Anns }

// Err returns the error that ended iteration, if any.
func (r *Rows) Err() error { return r.err }

// Affected returns the affected-row count (after the stream completes).
func (r *Rows) Affected() int { return r.affected }

// Message returns the statement's status message (after completion).
func (r *Rows) Message() string { return r.message }

// Close finishes the stream: any not-yet-read rows of the current burst
// are drained off the wire, and a cursor the server still holds suspended
// is closed (releasing its engine read lock). Safe to call twice.
func (r *Rows) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	// Drain the in-flight burst — the server has already sent (or is
	// sending) it; the stream must reach its terminator before the
	// connection is usable again. A stream paused at a batch boundary
	// (suspend set) has nothing in flight and must NOT read.
	for !r.done && !r.suspend && r.c.broken == nil {
		t, payload, err := r.c.read()
		if err != nil {
			r.fail(err)
			break
		}
		switch t {
		case wire.TypeRow:
			// discard
		case wire.TypeSuspended:
			r.suspend = true
			r.done = true
		case wire.TypeComplete:
			if comp, derr := wire.DecodeComplete(payload); derr == nil {
				r.affected, r.message = comp.Affected, comp.Message
			}
			r.done = true
		case wire.TypeError:
			if e, derr := wire.DecodeError(payload); derr == nil && r.err == nil {
				r.err = &ServerError{Code: e.Code, Message: e.Message}
			}
			r.done = true
		default:
			r.c.broken = fmt.Errorf("client: unexpected frame %q draining result", byte(t))
			r.fail(r.c.broken)
		}
	}
	if r.c.active == r {
		r.c.active = nil
	}
	// A suspended cursor still holds a read lock server-side; release it.
	if r.suspend && r.c.broken == nil {
		r.suspend = false
		if err := r.c.ClosePortal(r.portal); err != nil && r.err == nil {
			r.err = err
		}
	}
	return r.err
}

// toRow converts Go arguments to wire values, mirroring the embedded API's
// accepted types.
func toRow(args []any) (value.Row, error) {
	if len(args) == 0 {
		return nil, nil
	}
	row := make(value.Row, len(args))
	for i, a := range args {
		v, err := toValue(a)
		if err != nil {
			return nil, fmt.Errorf("client: arg %d: %w", i+1, err)
		}
		row[i] = v
	}
	return row, nil
}

func toValue(a any) (value.Value, error) {
	switch x := a.(type) {
	case nil:
		return value.NewNull(), nil
	case value.Value:
		return x, nil
	case string:
		return value.NewText(x), nil
	case []byte:
		return value.NewText(string(x)), nil
	case int:
		return value.NewInt(int64(x)), nil
	case int32:
		return value.NewInt(int64(x)), nil
	case int64:
		return value.NewInt(x), nil
	case uint32:
		return value.NewInt(int64(x)), nil
	case float32:
		return value.NewFloat(float64(x)), nil
	case float64:
		return value.NewFloat(x), nil
	case bool:
		return value.NewBool(x), nil
	case time.Time:
		return value.NewTimestamp(x), nil
	default:
		return value.Value{}, fmt.Errorf("unsupported argument type %T", a)
	}
}
