// Package wire defines bdbms's client/server protocol: a length-prefixed
// binary framing with typed messages for the connection handshake, named
// prepared statements, portal execution with Fetch-N cursor paging, and
// transaction control.
//
// # Framing
//
// Every message is one frame:
//
//	+------+----------------+------------------+
//	| type |  length (u32)  |  payload         |
//	| 1 B  |  big-endian    |  length bytes    |
//	+------+----------------+------------------+
//
// The length covers the payload only. A reader enforces MaxFrame and fails
// with ErrFrameTooLarge before allocating, so a corrupt or hostile length
// field cannot OOM the peer. Payload fields use the same primitives as the
// storage layer: uvarint-prefixed strings, varint integers, and the
// internal/value row codec for typed values — a row travels the network in
// exactly the bytes it occupies in a heap page.
//
// # Conversation
//
// The client speaks first: Hello carries the protocol version and a
// user/secret pair, answered by AuthOK or an Error frame. After that the
// protocol is synchronous request/response:
//
//	Parse{name, sql}            -> ParseOK{numParams}
//	Bind{portal, stmt, args}    -> BindOK
//	Execute{portal, maxRows}    -> RowHeader, Row*, (Suspended | Complete)
//	Fetch{portal, maxRows}      -> Row*, (Suspended | Complete)
//	CloseStmt{name}             -> CloseOK
//	ClosePortal{name}           -> CloseOK
//	Begin / Commit / Rollback   -> Complete
//	Ping                        -> Pong
//	Terminate                   -> (connection closes)
//
// Any request may instead be answered by Error{code, message}; the code is
// a stable errcode.Code so clients branch on failure classes without
// matching message strings.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strings"

	"bdbms/internal/errcode"
	"bdbms/internal/value"
)

// ProtocolVersion is the wire protocol revision this package implements.
// Hello carries the client's version; the server rejects mismatches.
const ProtocolVersion = 1

// MaxFrame is the default bound on a frame payload, applied by both ends.
// It comfortably fits any row the engine can store (the storage layer
// rejects rows over a page's capacity long before this) while keeping a
// hostile length field from allocating gigabytes.
const MaxFrame = 16 << 20

// Type tags one frame.
type Type byte

// Client-to-server message types.
const (
	TypeHello       Type = 'H' // Hello: version + credentials
	TypeParse       Type = 'P' // Parse: name a prepared statement
	TypeBind        Type = 'B' // Bind: portal = statement + arguments
	TypeExecute     Type = 'E' // Execute: run a portal, stream up to N rows
	TypeFetch       Type = 'F' // Fetch: continue a suspended portal
	TypeCloseStmt   Type = 'C' // CloseStmt: forget a prepared statement
	TypeClosePortal Type = 'c' // ClosePortal: close a portal and its cursor
	TypeBegin       Type = 'b' // Begin: open an explicit transaction
	TypeCommit      Type = 'm' // Commit the open transaction
	TypeRollback    Type = 'r' // Rollback the open transaction
	TypePing        Type = 'p' // Ping: liveness probe
	TypeTerminate   Type = 'X' // Terminate: orderly goodbye
)

// Server-to-client message types.
const (
	TypeAuthOK    Type = 'A' // AuthOK: handshake accepted
	TypeError     Type = '!' // Error: categorized failure
	TypeParseOK   Type = '1' // ParseOK: statement parsed and named
	TypeBindOK    Type = '2' // BindOK: portal created
	TypeCloseOK   Type = '3' // CloseOK: statement or portal closed
	TypeRowHeader Type = 'T' // RowHeader: result column names
	TypeRow       Type = 'D' // Row: one data row with annotations
	TypeSuspended Type = 's' // Suspended: fetch limit hit, more rows remain
	TypeComplete  Type = 'Z' // Complete: command finished
	TypePong      Type = 'o' // Pong: answer to Ping
)

// Errors returned by the codec.
var (
	// ErrFrameTooLarge is returned when a frame's length field exceeds the
	// reader's bound.
	ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")
	// ErrMalformed is returned when a payload does not decode as its type.
	ErrMalformed = errors.New("wire: malformed message payload")
)

// --- framing -------------------------------------------------------------------------------

const headerSize = 5

// WriteFrame writes one frame to w. The payload may be nil.
func WriteFrame(w io.Writer, t Type, payload []byte) error {
	var hdr [headerSize]byte
	hdr[0] = byte(t)
	if len(payload) > MaxFrame {
		return ErrFrameTooLarge
	}
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// ReadFrame reads one frame from r, enforcing max (<=0 selects MaxFrame).
// It returns the type and payload, io.EOF on a clean end of stream, and
// ErrFrameTooLarge without consuming the payload when the length field is
// over the bound.
func ReadFrame(r io.Reader, max int) (Type, []byte, error) {
	if max <= 0 {
		max = MaxFrame
	}
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, nil, io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if int(n) > max {
		return Type(hdr[0]), nil, fmt.Errorf("%w: %d bytes (max %d)", ErrFrameTooLarge, n, max)
	}
	if n == 0 {
		return Type(hdr[0]), nil, nil
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return Type(hdr[0]), nil, io.ErrUnexpectedEOF
	}
	return Type(hdr[0]), payload, nil
}

// --- payload primitives --------------------------------------------------------------------

func putString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func putBool(dst []byte, b bool) []byte {
	if b {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// dec is a cursor over a payload; its methods record the first error and
// become no-ops after it, so decoders can chain reads and check once.
type dec struct {
	buf []byte
	err error
}

func (d *dec) fail() {
	if d.err == nil {
		d.err = ErrMalformed
	}
}

func (d *dec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *dec) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *dec) string() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if uint64(len(d.buf)) < n {
		d.fail()
		return ""
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s
}

func (d *dec) bool() bool {
	if d.err != nil {
		return false
	}
	if len(d.buf) < 1 {
		d.fail()
		return false
	}
	b := d.buf[0]
	d.buf = d.buf[1:]
	return b != 0
}

// done fails unless the payload was consumed exactly.
func (d *dec) done() error {
	if d.err != nil {
		return d.err
	}
	if len(d.buf) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrMalformed, len(d.buf))
	}
	return nil
}

// --- handshake -----------------------------------------------------------------------------

// Hello opens the conversation: protocol version plus credentials.
type Hello struct {
	Version uint32
	User    string
	Secret  string
}

// Encode serializes the message payload.
func (m Hello) Encode() []byte {
	b := binary.AppendUvarint(nil, uint64(m.Version))
	b = putString(b, m.User)
	return putString(b, m.Secret)
}

// DecodeHello parses a Hello payload.
func DecodeHello(p []byte) (Hello, error) {
	d := &dec{buf: p}
	m := Hello{Version: uint32(d.uvarint())}
	m.User = d.string()
	m.Secret = d.string()
	return m, d.done()
}

// AuthOK accepts the handshake.
type AuthOK struct {
	// ServerVersion describes the server build, for banners and logs.
	ServerVersion string
	// SessionID identifies the connection server-side (log correlation).
	SessionID uint64
}

// Encode serializes the message payload.
func (m AuthOK) Encode() []byte {
	b := putString(nil, m.ServerVersion)
	return binary.AppendUvarint(b, m.SessionID)
}

// DecodeAuthOK parses an AuthOK payload.
func DecodeAuthOK(p []byte) (AuthOK, error) {
	d := &dec{buf: p}
	m := AuthOK{ServerVersion: d.string()}
	m.SessionID = d.uvarint()
	return m, d.done()
}

// --- statements and portals ----------------------------------------------------------------

// Parse names a prepared statement. An empty name is the unnamed statement,
// overwritten by the next unnamed Parse.
type Parse struct {
	Name string
	SQL  string
}

// Encode serializes the message payload.
func (m Parse) Encode() []byte {
	return putString(putString(nil, m.Name), m.SQL)
}

// DecodeParse parses a Parse payload.
func DecodeParse(p []byte) (Parse, error) {
	d := &dec{buf: p}
	m := Parse{Name: d.string(), SQL: d.string()}
	return m, d.done()
}

// ParseOK reports a successful Parse.
type ParseOK struct {
	// NumParams is the number of `?` placeholders in the statement.
	NumParams int
}

// Encode serializes the message payload.
func (m ParseOK) Encode() []byte {
	return binary.AppendUvarint(nil, uint64(m.NumParams))
}

// DecodeParseOK parses a ParseOK payload.
func DecodeParseOK(p []byte) (ParseOK, error) {
	d := &dec{buf: p}
	m := ParseOK{NumParams: int(d.uvarint())}
	return m, d.done()
}

// Bind creates a portal: a named statement plus bound arguments. An empty
// portal name is the unnamed portal.
type Bind struct {
	Portal string
	Stmt   string
	Args   value.Row
}

// Encode serializes the message payload.
func (m Bind) Encode() []byte {
	b := putString(nil, m.Portal)
	b = putString(b, m.Stmt)
	return append(b, value.EncodeRow(m.Args)...)
}

// DecodeBind parses a Bind payload.
func DecodeBind(p []byte) (Bind, error) {
	d := &dec{buf: p}
	m := Bind{Portal: d.string(), Stmt: d.string()}
	if d.err != nil {
		return m, d.err
	}
	row, used, err := decodeRowPrefix(d.buf)
	if err != nil {
		return m, err
	}
	if used != len(d.buf) {
		return m, fmt.Errorf("%w: trailing bytes after arguments", ErrMalformed)
	}
	m.Args = row
	return m, nil
}

// decodeRowPrefix decodes a value.EncodeRow blob from the front of buf and
// reports how many bytes it consumed.
func decodeRowPrefix(buf []byte) (value.Row, int, error) {
	n, w := binary.Uvarint(buf)
	if w <= 0 || n > uint64(len(buf)) {
		return nil, 0, fmt.Errorf("%w: bad row length", ErrMalformed)
	}
	off := w
	row := make(value.Row, 0, n)
	for i := uint64(0); i < n; i++ {
		v, used, err := value.DecodeValue(buf[off:])
		if err != nil {
			return nil, 0, fmt.Errorf("%w: %v", ErrMalformed, err)
		}
		row = append(row, v)
		off += used
	}
	return row, off, nil
}

// Execute runs a portal, streaming at most MaxRows rows (0 = all).
type Execute struct {
	Portal  string
	MaxRows int
}

// Encode serializes the message payload.
func (m Execute) Encode() []byte {
	return binary.AppendUvarint(putString(nil, m.Portal), uint64(m.MaxRows))
}

// DecodeExecute parses an Execute payload.
func DecodeExecute(p []byte) (Execute, error) {
	d := &dec{buf: p}
	m := Execute{Portal: d.string(), MaxRows: int(d.uvarint())}
	return m, d.done()
}

// Fetch continues a suspended portal. Fetch and Execute share a payload
// shape; they differ in that Fetch never re-runs the statement.
type Fetch = Execute

// DecodeFetch parses a Fetch payload.
func DecodeFetch(p []byte) (Fetch, error) { return DecodeExecute(p) }

// CloseTarget names a statement or portal to close (per the frame type).
type CloseTarget struct {
	Name string
}

// Encode serializes the message payload.
func (m CloseTarget) Encode() []byte { return putString(nil, m.Name) }

// DecodeCloseTarget parses a CloseStmt/ClosePortal payload.
func DecodeCloseTarget(p []byte) (CloseTarget, error) {
	d := &dec{buf: p}
	m := CloseTarget{Name: d.string()}
	return m, d.done()
}

// --- results -------------------------------------------------------------------------------

// RowHeader announces a result's columns; sent once per Execute before any
// Row. DML/DDL results have no columns.
type RowHeader struct {
	Columns []string
}

// Encode serializes the message payload.
func (m RowHeader) Encode() []byte {
	b := binary.AppendUvarint(nil, uint64(len(m.Columns)))
	for _, c := range m.Columns {
		b = putString(b, c)
	}
	return b
}

// DecodeRowHeader parses a RowHeader payload.
func DecodeRowHeader(p []byte) (RowHeader, error) {
	d := &dec{buf: p}
	n := d.uvarint()
	if d.err == nil && n > uint64(len(p)) {
		// A count larger than the payload itself cannot be honest; refuse
		// before allocating.
		d.fail()
	}
	m := RowHeader{}
	for i := uint64(0); i < n && d.err == nil; i++ {
		m.Columns = append(m.Columns, d.string())
	}
	return m, d.done()
}

// Ann is one annotation attached to a result cell, flattened for transport.
type Ann struct {
	ID       int64
	AnnTable string
	Author   string
	Body     string
	Archived bool
}

// PlainBody strips the conventional "<Annotation>...</Annotation>" XML
// wrapper from the body, mirroring annotation.Annotation.PlainBody so
// remote clients render annotations exactly like the embedded API.
func (a Ann) PlainBody() string {
	s := strings.TrimSpace(a.Body)
	s = strings.TrimPrefix(s, "<Annotation>")
	s = strings.TrimSuffix(s, "</Annotation>")
	return strings.TrimSpace(s)
}

// Row is one data row: typed values plus per-column annotations.
type Row struct {
	Values value.Row
	// Anns has one slice per column (may be nil when no column carries
	// annotations).
	Anns [][]Ann
}

// Encode serializes the message payload.
func (m Row) Encode() []byte {
	b := value.EncodeRow(m.Values)
	b = binary.AppendUvarint(b, uint64(len(m.Anns)))
	for _, cell := range m.Anns {
		b = binary.AppendUvarint(b, uint64(len(cell)))
		for _, a := range cell {
			b = binary.AppendVarint(b, a.ID)
			b = putString(b, a.AnnTable)
			b = putString(b, a.Author)
			b = putString(b, a.Body)
			b = putBool(b, a.Archived)
		}
	}
	return b
}

// DecodeRowMsg parses a Row payload.
func DecodeRowMsg(p []byte) (Row, error) {
	vals, used, err := decodeRowPrefix(p)
	if err != nil {
		return Row{}, err
	}
	d := &dec{buf: p[used:]}
	m := Row{Values: vals}
	nCols := d.uvarint()
	if d.err == nil && nCols > uint64(len(p)) {
		d.fail()
	}
	for i := uint64(0); i < nCols && d.err == nil; i++ {
		nAnns := d.uvarint()
		if d.err == nil && nAnns > uint64(len(p)) {
			d.fail()
		}
		var cell []Ann
		for j := uint64(0); j < nAnns && d.err == nil; j++ {
			a := Ann{ID: d.varint()}
			a.AnnTable = d.string()
			a.Author = d.string()
			a.Body = d.string()
			a.Archived = d.bool()
			cell = append(cell, a)
		}
		m.Anns = append(m.Anns, cell)
	}
	return m, d.done()
}

// Complete finishes a command: the statement ran to the end.
type Complete struct {
	// Affected is the DML row count (0 otherwise).
	Affected int
	// Message is the DDL/utility summary ("BEGIN", "Table created", ...).
	Message string
	// Rows is the number of data rows the portal produced in total.
	Rows int
}

// Encode serializes the message payload.
func (m Complete) Encode() []byte {
	b := binary.AppendUvarint(nil, uint64(m.Affected))
	b = putString(b, m.Message)
	return binary.AppendUvarint(b, uint64(m.Rows))
}

// DecodeComplete parses a Complete payload.
func DecodeComplete(p []byte) (Complete, error) {
	d := &dec{buf: p}
	m := Complete{Affected: int(d.uvarint())}
	m.Message = d.string()
	m.Rows = int(d.uvarint())
	return m, d.done()
}

// Error reports a categorized failure of the preceding request. The
// connection survives unless the error is fatal (handshake, protocol or
// framing errors), in which case the server closes after sending it.
type Error struct {
	Code    errcode.Code
	Message string
}

// Encode serializes the message payload.
func (m Error) Encode() []byte {
	return putString(putString(nil, string(m.Code)), m.Message)
}

// DecodeError parses an Error payload. An unrecognized code degrades to
// errcode.Internal so newer server codes do not break older clients.
func DecodeError(p []byte) (Error, error) {
	d := &dec{buf: p}
	m := Error{Code: errcode.Code(d.string())}
	m.Message = d.string()
	if err := d.done(); err != nil {
		return m, err
	}
	if !errcode.Valid(m.Code) {
		m.Code = errcode.Internal
	}
	return m, nil
}
