package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"

	"bdbms/internal/errcode"
	"bdbms/internal/value"
)

func roundTripFrame(t *testing.T, typ Type, payload []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteFrame(&buf, typ, payload); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	gotType, gotPayload, err := ReadFrame(&buf, 0)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	if gotType != typ {
		t.Fatalf("type = %c, want %c", gotType, typ)
	}
	return gotPayload
}

func TestFrameRoundTrip(t *testing.T) {
	p := roundTripFrame(t, TypeParse, []byte("hello"))
	if string(p) != "hello" {
		t.Fatalf("payload = %q", p)
	}
	if p := roundTripFrame(t, TypePing, nil); len(p) != 0 {
		t.Fatalf("empty payload round-trip = %q", p)
	}
}

func TestFrameTooLarge(t *testing.T) {
	var buf bytes.Buffer
	// Hand-craft a header claiming a 1 GiB payload.
	buf.Write([]byte{byte(TypeRow), 0x40, 0x00, 0x00, 0x00})
	if _, _, err := ReadFrame(&buf, 0); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("huge frame read = %v, want ErrFrameTooLarge", err)
	}
	if err := WriteFrame(io.Discard, TypeRow, make([]byte, MaxFrame+1)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("huge frame write = %v, want ErrFrameTooLarge", err)
	}
}

func TestFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, TypeParse, []byte("abcdef")); err != nil {
		t.Fatal(err)
	}
	// Chop the stream mid-payload: the reader must report an unexpected EOF,
	// not hand back a short payload.
	short := bytes.NewReader(buf.Bytes()[:buf.Len()-3])
	if _, _, err := ReadFrame(short, 0); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated read = %v, want ErrUnexpectedEOF", err)
	}
	// A clean close between frames is io.EOF.
	if _, _, err := ReadFrame(bytes.NewReader(nil), 0); !errors.Is(err, io.EOF) {
		t.Fatalf("empty stream = %v, want io.EOF", err)
	}
}

func TestMessageRoundTrips(t *testing.T) {
	hello := Hello{Version: ProtocolVersion, User: "alice", Secret: "s3cret"}
	if got, err := DecodeHello(hello.Encode()); err != nil || got != hello {
		t.Fatalf("Hello round-trip = %+v, %v", got, err)
	}
	auth := AuthOK{ServerVersion: "bdbms/1", SessionID: 42}
	if got, err := DecodeAuthOK(auth.Encode()); err != nil || got != auth {
		t.Fatalf("AuthOK round-trip = %+v, %v", got, err)
	}
	parse := Parse{Name: "q1", SQL: "SELECT * FROM Gene WHERE GID = ?"}
	if got, err := DecodeParse(parse.Encode()); err != nil || got != parse {
		t.Fatalf("Parse round-trip = %+v, %v", got, err)
	}
	pok := ParseOK{NumParams: 3}
	if got, err := DecodeParseOK(pok.Encode()); err != nil || got != pok {
		t.Fatalf("ParseOK round-trip = %+v, %v", got, err)
	}
	exec := Execute{Portal: "p0", MaxRows: 64}
	if got, err := DecodeExecute(exec.Encode()); err != nil || got != exec {
		t.Fatalf("Execute round-trip = %+v, %v", got, err)
	}
	ct := CloseTarget{Name: "q1"}
	if got, err := DecodeCloseTarget(ct.Encode()); err != nil || got != ct {
		t.Fatalf("CloseTarget round-trip = %+v, %v", got, err)
	}
	comp := Complete{Affected: 7, Message: "BEGIN", Rows: 123}
	if got, err := DecodeComplete(comp.Encode()); err != nil || got != comp {
		t.Fatalf("Complete round-trip = %+v, %v", got, err)
	}
	werr := Error{Code: errcode.TxDone, Message: "transaction over"}
	if got, err := DecodeError(werr.Encode()); err != nil || got != werr {
		t.Fatalf("Error round-trip = %+v, %v", got, err)
	}
}

func TestErrorUnknownCodeDegrades(t *testing.T) {
	raw := Error{Code: errcode.Code("future.fancy_code"), Message: "??"}.Encode()
	got, err := DecodeError(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Code != errcode.Internal {
		t.Fatalf("unknown code decoded to %q, want internal", got.Code)
	}
}

func TestBindRoundTrip(t *testing.T) {
	args := value.Row{
		value.NewText("JW0080"),
		value.NewInt(-12),
		value.NewFloat(3.5),
		value.NewBool(true),
		value.NewNull(),
		value.NewSequence("ATGATGG"),
		value.NewTimestamp(time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)),
	}
	b := Bind{Portal: "p1", Stmt: "ins", Args: args}
	got, err := DecodeBind(b.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Portal != "p1" || got.Stmt != "ins" || len(got.Args) != len(args) {
		t.Fatalf("Bind round-trip = %+v", got)
	}
	for i := range args {
		if !got.Args[i].Equal(args[i]) && !(args[i].IsNull() && got.Args[i].IsNull()) {
			t.Errorf("arg %d = %v, want %v", i, got.Args[i], args[i])
		}
	}
	// Trailing garbage after the argument row is a protocol violation.
	if _, err := DecodeBind(append(b.Encode(), 0xFF)); !errors.Is(err, ErrMalformed) {
		t.Fatalf("trailing garbage = %v, want ErrMalformed", err)
	}
}

func TestRowRoundTrip(t *testing.T) {
	r := Row{
		Values: value.Row{value.NewText("g1"), value.NewInt(9)},
		Anns: [][]Ann{
			{{ID: 3, AnnTable: "Ann", Author: "alice", Body: "<Annotation>x</Annotation>", Archived: false}},
			nil,
		},
	}
	got, err := DecodeRowMsg(r.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Values) != 2 || got.Values[0].Text() != "g1" || got.Values[1].Int() != 9 {
		t.Fatalf("values = %v", got.Values)
	}
	if len(got.Anns) != 2 || len(got.Anns[0]) != 1 || got.Anns[0][0] != r.Anns[0][0] {
		t.Fatalf("anns = %+v", got.Anns)
	}
	if len(got.Anns[1]) != 0 {
		t.Fatalf("empty cell decoded to %+v", got.Anns[1])
	}
}

func TestRowHeaderRoundTrip(t *testing.T) {
	h := RowHeader{Columns: []string{"GID", "GSequence"}}
	got, err := DecodeRowHeader(h.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Columns) != 2 || got.Columns[0] != "GID" || got.Columns[1] != "GSequence" {
		t.Fatalf("columns = %v", got.Columns)
	}
	empty, err := DecodeRowHeader(RowHeader{}.Encode())
	if err != nil || len(empty.Columns) != 0 {
		t.Fatalf("empty header = %+v, %v", empty, err)
	}
}

func TestMalformedPayloads(t *testing.T) {
	cases := []struct {
		name   string
		decode func([]byte) error
		bad    []byte
	}{
		{"hello-truncated", func(p []byte) error { _, err := DecodeHello(p); return err },
			Hello{User: "u", Secret: "s"}.Encode()[:2]},
		{"parse-short-string", func(p []byte) error { _, err := DecodeParse(p); return err },
			[]byte{0x05, 'a'}}, // claims 5 bytes, has 1
		{"execute-trailing", func(p []byte) error { _, err := DecodeExecute(p); return err },
			append(Execute{Portal: "p"}.Encode(), 0x00)},
		{"rowheader-hostile-count", func(p []byte) error { _, err := DecodeRowHeader(p); return err },
			[]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x0F}}, // ~4 billion columns
		{"row-garbage", func(p []byte) error { _, err := DecodeRowMsg(p); return err },
			[]byte{0x01, 0xEE}}, // one value with unknown type tag
		{"complete-empty", func(p []byte) error { _, err := DecodeComplete(p); return err },
			[]byte{}},
	}
	for _, c := range cases {
		if err := c.decode(c.bad); !errors.Is(err, ErrMalformed) {
			t.Errorf("%s: err = %v, want ErrMalformed", c.name, err)
		}
	}
}
