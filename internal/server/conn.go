package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime/debug"
	"sync"
	"time"

	"bdbms/internal/errcode"
	"bdbms/internal/server/wire"
)

// conn is one client connection: a handler goroutine reading frames,
// dispatching them against a session, and writing responses. The wire
// protocol is strictly synchronous (one request, one response burst), so a
// single goroutine per connection suffices and no response interleaving can
// occur.
type conn struct {
	srv *Server
	id  uint64
	nc  net.Conn
	br  *bufio.Reader
	bw  *bufio.Writer

	// ctx is canceled by forceClose; in-flight statements run under it, so a
	// hard shutdown aborts even a long scan mid-flight.
	ctx    context.Context
	cancel context.CancelFunc

	sess *session // nil until the Hello handshake succeeds

	mu       sync.Mutex
	busy     bool // a dispatch is in flight (between frame read and response)
	draining bool // Shutdown started: finish the current dispatch, then stop
	closed   bool // teardown ran
}

func newConn(s *Server, id uint64, nc net.Conn) *conn {
	ctx, cancel := context.WithCancel(context.Background())
	return &conn{
		srv:    s,
		id:     id,
		nc:     nc,
		br:     bufio.NewReaderSize(nc, 32<<10),
		bw:     bufio.NewWriterSize(nc, 32<<10),
		ctx:    ctx,
		cancel: cancel,
	}
}

// serve runs the connection to completion. It never lets a panic escape:
// one misbehaving statement (or a server bug it tickles) kills this
// connection, not the process and not its siblings.
func (c *conn) serve() {
	defer c.srv.forget(c)
	defer func() {
		if r := recover(); r != nil {
			c.srv.logf("conn %d: panic: %v\n%s", c.id, r, debug.Stack())
			// Best-effort notice; the write may fail if the panic came from a
			// broken socket, which teardown handles anyway.
			c.sendError(errcode.Internal, fmt.Sprintf("internal error: %v", r))
			c.teardown()
		}
	}()
	defer c.teardown()

	if !c.handshake() {
		return
	}
	for c.loopOnce() {
	}
}

// handshake authenticates the connection: the first frame must be a Hello
// with a known protocol version and valid credentials. Returns false when
// the connection should close (an error frame has been sent where useful).
func (c *conn) handshake() bool {
	c.nc.SetReadDeadline(time.Now().Add(c.srv.cfg.HandshakeTimeout))
	t, payload, err := wire.ReadFrame(c.br, wire.MaxFrame)
	if err != nil {
		return false
	}
	if t != wire.TypeHello {
		c.sendError(errcode.NetProtocol, "first frame must be Hello")
		return false
	}
	hello, err := wire.DecodeHello(payload)
	if err != nil {
		c.sendError(errcode.NetProtocol, "malformed Hello")
		return false
	}
	if hello.Version != wire.ProtocolVersion {
		c.sendError(errcode.NetProtocol,
			fmt.Sprintf("protocol version %d not supported (server speaks %d)", hello.Version, wire.ProtocolVersion))
		return false
	}
	if err := c.srv.cfg.Auth(hello.User, hello.Secret); err != nil {
		c.sendError(errcode.FromError(err), "authentication failed")
		return false
	}
	c.sess = newSession(c, hello.User)
	if !c.send(wire.TypeAuthOK, wire.AuthOK{ServerVersion: serverVersion, SessionID: c.id}.Encode()) {
		return false
	}
	return c.bw.Flush() == nil
}

// loopOnce reads and services one frame. Returns false when the connection
// is done (teardown has run or will run via serve's defer).
func (c *conn) loopOnce() bool {
	if c.checkDraining() {
		return false
	}
	c.nc.SetReadDeadline(time.Now().Add(c.srv.cfg.IdleTimeout))
	t, payload, err := wire.ReadFrame(c.br, wire.MaxFrame)
	if err != nil {
		c.readFailed(err)
		return false
	}
	if !c.setBusy() {
		// Drain began between the read and now; the frame is abandoned — the
		// client is told the server is shutting down rather than having its
		// statement half-serviced.
		c.sendError(errcode.NetShutdown, "server is shutting down")
		return false
	}
	ok := c.dispatch(t, payload)
	c.setIdle()
	return ok
}

// checkDraining reports (and services) a pending drain: the client gets a
// shutdown notice and the connection closes.
func (c *conn) checkDraining() bool {
	c.mu.Lock()
	d := c.draining
	c.mu.Unlock()
	if d {
		c.sendError(errcode.NetShutdown, "server is shutting down")
	}
	return d
}

// readFailed classifies a frame-read error and notifies the client when
// there is something useful to say.
func (c *conn) readFailed(err error) {
	var ne net.Error
	switch {
	case errors.As(err, &ne) && ne.Timeout():
		c.mu.Lock()
		d := c.draining
		c.mu.Unlock()
		if d {
			// beginDrain pokes idle readers with an immediate deadline; this
			// timeout is the drain, not inactivity.
			c.sendError(errcode.NetShutdown, "server is shutting down")
		} else {
			c.sendError(errcode.NetIdleTimeout,
				fmt.Sprintf("no request for %v; disconnecting", c.srv.cfg.IdleTimeout))
		}
	case errors.Is(err, wire.ErrFrameTooLarge):
		// The stream position is past a hostile length prefix; framing can't
		// be trusted afterwards, so tell the client and hang up.
		c.sendError(errcode.NetFrameTooLarge,
			fmt.Sprintf("frame exceeds %d byte limit", wire.MaxFrame))
	case errors.Is(err, io.EOF):
		// Clean disconnect between frames; nothing to say.
	default:
		// Torn frame, reset, forceClose — the socket is gone or garbage.
	}
}

// setBusy marks a dispatch in flight; returns false if draining won the
// race and the frame must not be serviced.
func (c *conn) setBusy() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.draining {
		return false
	}
	c.busy = true
	return true
}

func (c *conn) setIdle() {
	c.mu.Lock()
	c.busy = false
	c.mu.Unlock()
}

// dispatch services one request frame. It returns false when the
// connection must close (Terminate, malformed payload, or a dead socket).
// Statement-level failures — bad SQL, unknown names, permission denials —
// send an error frame and keep the connection: they are the client's
// problem, not the connection's.
func (c *conn) dispatch(t wire.Type, payload []byte) bool {
	// All writes of this response burst share one deadline: a client that
	// stopped reading trips it and is disconnected, releasing its locks.
	c.nc.SetWriteDeadline(time.Now().Add(c.srv.cfg.WriteTimeout))
	ok := c.sess.dispatch(t, payload)
	if !ok {
		return false
	}
	if err := c.bw.Flush(); err != nil {
		return false
	}
	return true
}

// send writes one frame through the buffered writer. The flush happens at
// the end of the dispatch; errors surface there or on the next write.
func (c *conn) send(t wire.Type, payload []byte) bool {
	return wire.WriteFrame(c.bw, t, payload) == nil
}

// sendError writes an error frame and flushes it immediately, so it
// reaches clients even on paths that close the connection right after.
func (c *conn) sendError(code errcode.Code, msg string) {
	c.nc.SetWriteDeadline(time.Now().Add(c.srv.cfg.WriteTimeout))
	if wire.WriteFrame(c.bw, wire.TypeError, wire.Error{Code: code, Message: msg}.Encode()) == nil {
		c.bw.Flush()
	}
}

// beginDrain asks the connection to stop: an idle connection is poked out
// of its blocking read via an immediate deadline; a busy one finishes its
// current dispatch and then sees the flag.
func (c *conn) beginDrain() {
	c.mu.Lock()
	c.draining = true
	busy := c.busy
	c.mu.Unlock()
	if !busy {
		c.nc.SetReadDeadline(time.Now())
	}
}

// forceClose abandons graceful drain: the statement context is canceled
// (aborting scans mid-flight) and the socket closed.
func (c *conn) forceClose() {
	c.cancel()
	c.nc.Close()
}

// teardown releases everything the connection holds, in dependency order:
// open cursors first (each Close releases its pinned MVCC snapshot), then
// the open transaction (rolled back, releasing its per-table write
// latches), then the socket. Idempotent — every exit path runs it.
func (c *conn) teardown() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()

	if c.sess != nil {
		c.sess.close()
	}
	c.bw.Flush()
	c.nc.Close()
	c.cancel()
}

// refuseConn tells a connection past MaxConns why it is being dropped.
func refuseConn(nc net.Conn, writeTimeout time.Duration) {
	nc.SetWriteDeadline(time.Now().Add(writeTimeout))
	wire.WriteFrame(nc, wire.TypeError, wire.Error{
		Code:    errcode.NetConnLimit,
		Message: "connection limit reached",
	}.Encode())
	nc.Close()
}
