// Package server exposes a bdbms database over TCP: a daemon speaking the
// length-prefixed binary protocol of internal/server/wire, with
// per-connection sessions mapped onto internal/authz users.
//
// The server is a classic listener/handler split. Serve accepts
// connections; each one runs in its own goroutine, authenticates with a
// user/secret Hello (checked against the authorization manager's
// credentials), and then services synchronous request/response commands:
// named prepared statements (Parse), portals (Bind/Execute with Fetch-N
// cursor paging), transaction control, Ping and Terminate. Statement
// execution rides the same exec.Session machinery as the embedded API, so
// GRANT/REVOKE enforcement, transactions, the plan cache and streaming
// cursors behave identically over the network.
//
// Robustness properties, each proven by a test in server_test.go:
//
//   - Per-connection deadlines: a connection idle past IdleTimeout is told
//     so and closed; a peer that stops reading its responses trips
//     WriteTimeout. Either way the connection's cursors and transaction are
//     released, so one dead client can never wedge the engine lock.
//   - Panic isolation: a panic while serving one connection tears down that
//     connection only.
//   - A connection limit: past MaxConns, new connections get a categorized
//     error frame and are closed before authentication.
//   - Graceful drain: Shutdown stops the listener, lets every in-flight
//     statement finish and send its response, then rolls back open
//     transactions, closes open cursors and disconnects — so a following
//     DB.Close checkpoints a quiesced engine. A drain deadline forces the
//     stragglers.
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"bdbms"
)

// Config configures a Server. DB is required; zero values elsewhere select
// the documented defaults.
type Config struct {
	// DB is the open database to serve. The server does not close it:
	// callers own the Close (after Shutdown returns).
	DB *bdbms.DB
	// MaxConns bounds concurrently served connections (default 1024).
	// Connections past the bound are refused with a net.conn_limit error.
	MaxConns int
	// IdleTimeout disconnects a session that sends no frame for this long
	// (default 5 minutes).
	IdleTimeout time.Duration
	// WriteTimeout bounds each network write (default 30 seconds). A client
	// that stops draining its responses is disconnected, which releases any
	// cursor (and engine read lock) its portal holds.
	WriteTimeout time.Duration
	// HandshakeTimeout bounds the wait for the Hello frame (default 10s).
	HandshakeTimeout time.Duration
	// Auth validates a user/secret pair. Nil uses the database's
	// authorization manager (bdbms.DB.Authenticate): users connect with the
	// secrets installed by SetCredential.
	Auth func(user, secret string) error
	// Logf, when set, receives server diagnostics (one line per call).
	Logf func(format string, args ...any)
}

// Server is a bdbms network daemon.
type Server struct {
	cfg Config

	mu       sync.Mutex
	ln       net.Listener
	conns    map[*conn]struct{}
	draining bool
	nextID   uint64

	wg sync.WaitGroup // one unit per live connection handler
}

// serverVersion is the banner sent in AuthOK.
const serverVersion = "bdbms-server/1"

// New validates the configuration and returns an unstarted server.
func New(cfg Config) (*Server, error) {
	if cfg.DB == nil {
		return nil, errors.New("server: Config.DB is required")
	}
	if cfg.MaxConns <= 0 {
		cfg.MaxConns = 1024
	}
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = 5 * time.Minute
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 30 * time.Second
	}
	if cfg.HandshakeTimeout <= 0 {
		cfg.HandshakeTimeout = 10 * time.Second
	}
	if cfg.Auth == nil {
		db := cfg.DB
		cfg.Auth = db.Authenticate
	}
	return &Server{cfg: cfg, conns: make(map[*conn]struct{})}, nil
}

// logf forwards to Config.Logf when set.
func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Listen binds the listener without serving yet, so callers can learn the
// bound address (addr ":0" selects a free port) before the first Accept.
func (s *Server) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		ln.Close()
		return errors.New("server: already shut down")
	}
	if s.ln != nil {
		ln.Close()
		return errors.New("server: already listening")
	}
	s.ln = ln
	return nil
}

// Addr returns the bound listener address (nil before Listen).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Serve accepts connections until Shutdown. It returns nil after a
// Shutdown-initiated stop, or the fatal Accept error otherwise.
func (s *Server) Serve() error {
	s.mu.Lock()
	ln := s.ln
	s.mu.Unlock()
	if ln == nil {
		return errors.New("server: Serve before Listen")
	}
	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return nil
			}
			return fmt.Errorf("server: accept: %w", err)
		}
		s.startConn(nc)
	}
}

// ListenAndServe binds addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	if err := s.Listen(addr); err != nil {
		return err
	}
	return s.Serve()
}

// startConn registers and launches a connection handler, enforcing the
// connection limit.
func (s *Server) startConn(nc net.Conn) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		nc.Close()
		return
	}
	over := len(s.conns) >= s.cfg.MaxConns
	var c *conn
	if !over {
		s.nextID++
		c = newConn(s, s.nextID, nc)
		s.conns[c] = struct{}{}
		s.wg.Add(1)
	}
	s.mu.Unlock()

	if over {
		// Refuse politely: a categorized error frame the client library can
		// surface, then close. Sent outside the lock — a slow reader must
		// not stall the accept path.
		refuseConn(nc, s.cfg.WriteTimeout)
		return
	}
	go c.serve()
}

// forget unregisters a finished connection.
func (s *Server) forget(c *conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	s.wg.Done()
}

// liveConns snapshots the current connections.
func (s *Server) liveConns() []*conn {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		out = append(out, c)
	}
	return out
}

// Shutdown gracefully stops the server: the listener closes (Serve
// returns), every connection finishes the statement it is currently
// executing and sends its response, and then each connection's open cursors
// are closed, its open transaction is rolled back, and the socket is
// closed. When ctx expires first, the remaining connections are
// force-closed (their in-flight statements are canceled through their
// context) and Shutdown returns ctx.Err().
//
// Shutdown does not close the database; call DB.Close after it returns —
// by then no statement is in flight and no lock is held.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range s.liveConns() {
		c.beginDrain()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		for _, c := range s.liveConns() {
			c.forceClose()
		}
		<-done
		return ctx.Err()
	}
}
