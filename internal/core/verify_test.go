package core

// Tests for the Verify scrub and online Backup: a clean database reports
// clean, every injected corruption class is found and attributed to its
// layer, and a backup taken from a live database reopens and verifies.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bdbms/internal/pager"
)

// buildVerifyDB runs the standard workload (including the DROP TABLE that
// orphans pages) on a fresh durable database in dir.
func buildVerifyDB(t *testing.T, dir string) *durableDB {
	t.Helper()
	db := openDurable(t, dir, 8)
	applyGoSurface(t, db.DB)
	runWorkload(t, db.DB, workloadStatements()[:5])
	addDependencyRule(t, db.DB)
	runWorkload(t, db.DB, workloadStatements()[5:])
	attachProvenance(t, db.DB)
	return db
}

func TestVerifyCleanDatabase(t *testing.T) {
	dir := t.TempDir()
	db := buildVerifyDB(t, dir)
	defer db.crash()

	rep, err := db.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("fresh database not clean:\n%s", rep)
	}
	// The report must prove coverage, not just absence of findings: Gene and
	// Protein each carry a primary-key index plus a secondary one.
	if rep.Pages == 0 || rep.Tables != 2 || rep.Rows == 0 || rep.Indexes != 4 || rep.Annotations == 0 {
		t.Errorf("coverage counters implausible: %+v", rep)
	}
	if !strings.Contains(rep.String(), "ok: no problems found") {
		t.Errorf("clean report renders as:\n%s", rep)
	}
}

func TestVerifyMemoryDatabase(t *testing.T) {
	db := MustOpen(Options{})
	runWorkload(t, db, workloadStatements())
	rep, err := db.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("memory database not clean:\n%s", rep)
	}
}

// orphanPage returns an allocated page no live table references — the DROP
// TABLE in the workload guarantees at least one exists after a checkpoint.
func orphanPage(t *testing.T, db *DB) pager.PageID {
	t.Helper()
	live := map[pager.PageID]bool{}
	for _, tbl := range db.Storage().Tables() {
		for _, pg := range tbl.HeapPages() {
			live[pg] = true
		}
	}
	for id := pager.PageID(0); uint64(id) < db.Storage().Pager().NumPages(); id++ {
		if !live[id] {
			return id
		}
	}
	t.Fatal("no orphaned page in the file; workload must include a DROP TABLE")
	return 0
}

// corruptPageOnDisk flips one payload byte of the page's on-disk frame.
func corruptPageOnDisk(t *testing.T, path string, id pager.PageID) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	off := pager.FrameOffset(id) + pager.PageHeaderSize + 37
	buf := make([]byte, 1)
	if _, err := f.ReadAt(buf, off); err != nil {
		t.Fatal(err)
	}
	buf[0] ^= 0x40
	if _, err := f.WriteAt(buf, off); err != nil {
		t.Fatal(err)
	}
}

// TestVerifyDetectsOrphanPageCorruption is the silent-rot case the scrub
// exists for: bit rot in a page no table reads anymore. Open succeeds,
// every query answers correctly — and Verify still finds the rot, both on
// the live database and after a reopen.
func TestVerifyDetectsOrphanPageCorruption(t *testing.T) {
	dir := t.TempDir()
	db := buildVerifyDB(t, dir)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	orphan := orphanPage(t, db.DB)
	corruptPageOnDisk(t, filepath.Join(dir, "data.db"), orphan)

	rep, err := db.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatal("corrupted orphan page not detected by the live scrub")
	}
	found := false
	for _, p := range rep.Problems {
		if p.Area == "page" && strings.Contains(p.Detail, "checksum") {
			found = true
		}
	}
	if !found {
		t.Errorf("no page-layer checksum finding in:\n%s", rep)
	}
	db.shutdown(t)

	// The database still opens (no live page is corrupt) and answers every
	// query correctly — and the scrub still reports the rot.
	re, err := tryOpenDurable(dir, 8)
	if err != nil {
		t.Fatalf("orphan-page corruption must not brick Open: %v", err)
	}
	defer re.crash()
	oracle := MustOpen(Options{})
	applyGoSurface(t, oracle)
	runWorkload(t, oracle, workloadStatements()[:5])
	addDependencyRule(t, oracle)
	runWorkload(t, oracle, workloadStatements()[5:])
	attachProvenance(t, oracle)
	queryBattery(t, "orphan corruption", oracle, re.DB)

	rep, err = re.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatal("corrupted orphan page not detected after reopen")
	}
}

// TestVerifyDetectsLivePageCorruption: rot in a LIVE heap page fails the
// scrub on the running database; after a reopen attempt it fails Open with
// a diagnostic naming the page — never a silent wrong answer.
func TestVerifyDetectsLivePageCorruption(t *testing.T) {
	dir := t.TempDir()
	db := buildVerifyDB(t, dir)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	var live pager.PageID
	for _, tbl := range db.Storage().Tables() {
		if pages := tbl.HeapPages(); len(pages) > 0 {
			live = pages[0]
			break
		}
	}
	corruptPageOnDisk(t, filepath.Join(dir, "data.db"), live)

	rep, err := db.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatal("corrupted live page not detected by the scrub")
	}
	db.crash()

	if re, err := tryOpenDurable(dir, 8); err == nil {
		re.crash()
		t.Fatal("Open succeeded on a database with a corrupt live page")
	} else if !strings.Contains(err.Error(), "page") {
		t.Errorf("open error does not name the page: %v", err)
	}
}

// TestVerifyDetectsManifestCorruption: garbage in the manifest is reported
// in the manifest layer by the live scrub, and the next checkpoint heals it.
func TestVerifyDetectsManifestCorruption(t *testing.T) {
	dir := t.TempDir()
	db := buildVerifyDB(t, dir)
	defer db.crash()
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "data.db.manifest"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err := db.Verify()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range rep.Problems {
		if p.Area == "manifest" {
			found = true
		}
	}
	if !found {
		t.Fatalf("manifest corruption not reported:\n%s", rep)
	}

	// Checkpoint rewrites the manifest; the database is clean again.
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	rep, err = db.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("checkpoint did not heal the manifest:\n%s", rep)
	}
}

// TestBackupAndRestore: a backup of a live database opens as an independent
// database with identical state, verifies clean, and does not see writes
// made to the source after the snapshot.
func TestBackupAndRestore(t *testing.T) {
	dir := t.TempDir()
	db := buildVerifyDB(t, dir)
	defer db.crash()
	want := dumpDB(t, db.DB)

	dest := filepath.Join(t.TempDir(), "snap")
	if err := db.Backup(dest); err != nil {
		t.Fatal(err)
	}

	// The source moves on; the snapshot must not.
	if _, err := db.Exec(`INSERT INTO Gene VALUES ('JW8888', 'postbackup', 5)`); err != nil {
		t.Fatal(err)
	}

	snap, err := tryOpenDurable(dest, 8)
	if err != nil {
		t.Fatalf("backup does not open: %v", err)
	}
	defer snap.crash()
	compareDumps(t, "backup", want, dumpDB(t, snap.DB))
	verifyIndexConsistency(t, snap.DB)
	rep, err := snap.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("backup does not verify:\n%s", rep)
	}
	if res, err := snap.Exec(`SELECT GID FROM Gene WHERE GID = 'JW8888'`); err != nil || len(res.Rows) != 0 {
		t.Errorf("post-snapshot write leaked into the backup (rows=%v, err=%v)", res, err)
	}
}

// TestBackupRequiresDurableDatabase: a memory database has no files to copy.
func TestBackupRequiresDurableDatabase(t *testing.T) {
	db := MustOpen(Options{})
	if err := db.Backup(t.TempDir()); err == nil {
		t.Fatal("backup of a memory database succeeded")
	}
}
