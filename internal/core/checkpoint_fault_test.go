package core

// Checkpoint-under-fault tests: a crash or I/O error at ANY point inside the
// checkpoint sequence — between the flush, the pager fsync, the catalog
// snapshot, the manifest rename (the commit point) and the WAL truncation —
// must leave a database that reopens to the exact committed state. A failed
// fsync must poison durability reporting: later checkpoints refuse to
// truncate the WAL and Close surfaces the error, so the database never
// claims durability it cannot prove.

import (
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"bdbms/internal/pager"
	"bdbms/internal/wal"
)

// faultDB is a durable database whose pager is wrapped in a FaultPager.
type faultDB struct {
	*DB
	fp   *pager.FaultPager
	file *pager.FilePager
	wlog *wal.Log
}

func openFaultDurable(t *testing.T, dir string, poolSize int) *faultDB {
	t.Helper()
	dataFile := filepath.Join(dir, "data.db")
	file, err := pager.OpenFile(dataFile)
	if err != nil {
		t.Fatal(err)
	}
	fp := pager.NewFaultPager(file)
	wlog, err := wal.Open(dataFile + ".wal")
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(Options{
		Pager:        fp,
		PoolSize:     poolSize,
		WAL:          wlog,
		CatalogPath:  dataFile + ".catalog",
		ManifestPath: dataFile + ".manifest",
		DataPath:     dataFile,
		WALPath:      dataFile + ".wal",
	})
	if err != nil {
		t.Fatal(err)
	}
	return &faultDB{DB: db, fp: fp, file: file, wlog: wlog}
}

// crash abandons the database without checkpointing.
func (d *faultDB) crash() {
	d.wlog.Close()
	d.file.Close()
}

// oracleDump runs the full crash script on a memory database and dumps it.
func oracleDump(t *testing.T) *dbDump {
	t.Helper()
	oracle := MustOpen(Options{})
	if _, err := runScript(oracle, crashScript()); err != nil {
		t.Fatal(err)
	}
	return dumpDB(t, oracle)
}

// TestCheckpointCrashAtEveryPoint simulates a crash between every two steps
// of the checkpoint sequence: the checkpoint call fails with the injected
// error, and the reopened database recovers the full committed state no
// matter which side of the manifest commit point the crash hit.
func TestCheckpointCrashAtEveryPoint(t *testing.T) {
	errInjected := errors.New("injected checkpoint fault")
	want := oracleDump(t)

	points := []string{"after-flush", "after-sync", "after-catalog", "after-manifest", "after-truncate"}
	for _, point := range points {
		point := point
		t.Run(point, func(t *testing.T) {
			dir := t.TempDir()
			db := openDurable(t, dir, 8)
			if _, err := runScript(db.DB, crashScript()); err != nil {
				t.Fatal(err)
			}

			checkpointFaultHook = func(p string) error {
				if p == point {
					return errInjected
				}
				return nil
			}
			defer func() { checkpointFaultHook = nil }()

			if err := db.Checkpoint(); !errors.Is(err, errInjected) {
				t.Fatalf("checkpoint = %v, want the injected fault at %s", err, point)
			}
			checkpointFaultHook = nil
			db.crash()

			re := openDurable(t, dir, 8)
			defer re.crash()
			compareDumps(t, "crash at "+point, want, dumpDB(t, re.DB))
			verifyIndexConsistency(t, re.DB)

			// The recovered database must also verify clean and be able to
			// complete the checkpoint the fault interrupted.
			rep, err := re.DB.Verify()
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Clean() {
				t.Errorf("recovered database not clean after crash at %s:\n%s", point, rep)
			}
			if err := re.Checkpoint(); err != nil {
				t.Errorf("checkpoint after recovery: %v", err)
			}
		})
	}
}

// TestCheckpointPagerFsyncPoisoning is the fsync-failure end-to-end case: a
// failed page-file fsync fails the checkpoint BEFORE the WAL is touched,
// every later checkpoint reports the poisoned pager, Close surfaces the
// error — and a reopen with fresh file handles recovers everything, because
// the WAL was never truncated.
func TestCheckpointPagerFsyncPoisoning(t *testing.T) {
	want := oracleDump(t)

	dir := t.TempDir()
	db := openFaultDurable(t, dir, 8)
	if _, err := runScript(db.DB, crashScript()); err != nil {
		t.Fatal(err)
	}
	walLen := db.wlog.Len()
	if walLen == 0 {
		t.Fatal("workload appended no WAL records; harness is vacuous")
	}

	db.fp.FailSyncAfter(0)
	if err := db.Checkpoint(); !errors.Is(err, pager.ErrInjectedSyncFailure) {
		t.Fatalf("checkpoint with failing fsync = %v, want injected sync failure", err)
	}
	if got := db.wlog.Len(); got != walLen {
		t.Fatalf("WAL truncated to %d records after a failed fsync (had %d) — committed state discarded on a lying disk", got, walLen)
	}

	// The pager is poisoned now: the disk may or may not hold what was
	// written, so no later checkpoint may claim durability either.
	if err := db.Checkpoint(); !errors.Is(err, pager.ErrSyncPoisoned) {
		t.Fatalf("checkpoint on poisoned pager = %v, want ErrSyncPoisoned", err)
	}
	if got := db.wlog.Len(); got != walLen {
		t.Fatalf("WAL truncated to %d records by a poisoned checkpoint", got)
	}
	if err := db.Close(); !errors.Is(err, pager.ErrSyncPoisoned) {
		t.Fatalf("Close on poisoned database = %v, want ErrSyncPoisoned surfaced", err)
	}
	db.crash()

	// Recovery path: fresh handles, intact WAL.
	re := openDurable(t, dir, 8)
	defer re.crash()
	compareDumps(t, "after poisoned fsync", want, dumpDB(t, re.DB))
	verifyIndexConsistency(t, re.DB)
	rep, err := re.DB.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Errorf("recovered database not clean:\n%s", rep)
	}
}

// TestCheckpointWALFsyncPoisoning poisons the WAL's own fsync: the first
// checkpoint fails at the final log sync, and the next checkpoint refuses
// to truncate the poisoned log instead of discarding records whose
// durability is unprovable.
func TestCheckpointWALFsyncPoisoning(t *testing.T) {
	dir := t.TempDir()
	db := openDurable(t, dir, 8)
	if _, err := runScript(db.DB, crashScript()); err != nil {
		t.Fatal(err)
	}

	db.wlog.FailSyncAfter(0)
	if err := db.Checkpoint(); !errors.Is(err, wal.ErrInjectedSyncFailure) {
		t.Fatalf("checkpoint with failing WAL fsync = %v, want injected sync failure", err)
	}
	// Appends after the failed checkpoint re-fill the log; the next
	// checkpoint must refuse to truncate it.
	if _, err := db.Session("admin").Exec(`INSERT INTO Gene VALUES ('JW9999', 'late', 1)`); err != nil {
		t.Fatal(err)
	}
	walLen := db.wlog.Len()
	if walLen == 0 {
		t.Fatal("insert appended no WAL records")
	}
	if err := db.Checkpoint(); !errors.Is(err, wal.ErrSyncPoisoned) {
		t.Fatalf("checkpoint on poisoned WAL = %v, want ErrSyncPoisoned", err)
	}
	if got := db.wlog.Len(); got != walLen {
		t.Fatalf("poisoned WAL truncated from %d to %d records", walLen, got)
	}
	db.crash()

	re := openDurable(t, dir, 8)
	defer re.crash()
	// Everything including the post-fault insert must be recovered: the
	// first checkpoint's manifest committed the pre-fault state and the
	// refused truncation kept the insert's records.
	oracle := MustOpen(Options{})
	if _, err := runScript(oracle, crashScript()); err != nil {
		t.Fatal(err)
	}
	if _, err := oracle.Exec(`INSERT INTO Gene VALUES ('JW9999', 'late', 1)`); err != nil {
		t.Fatal(err)
	}
	compareDumps(t, "after poisoned WAL fsync", dumpDB(t, oracle), dumpDB(t, re.DB))
	verifyIndexConsistency(t, re.DB)
}

// TestCheckpointEIORetry injects a sticky EIO into every page write of the
// checkpoint, one write at a time: each faulted checkpoint must fail with
// the injected error, a retry after the "disk recovers" must succeed, and
// the reopened database must hold the full committed state. This is the
// transient-EIO twin of TestCrashInjectionEveryPagerWrite, which kills the
// process instead of retrying.
func TestCheckpointEIORetry(t *testing.T) {
	steps := crashScript()

	// Golden run to count the page writes a checkpoint performs.
	goldenDir := t.TempDir()
	golden := openFaultDurable(t, goldenDir, 256)
	if _, err := runScript(golden.DB, steps); err != nil {
		t.Fatal(err)
	}
	before := golden.fp.WriteCount()
	if err := golden.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	writes := golden.fp.WriteCount() - before
	golden.crash()
	if writes == 0 {
		t.Fatal("checkpoint performed no page writes; harness is vacuous")
	}

	want := oracleDump(t)

	for w := 0; w < writes; w++ {
		w := w
		t.Run(fmt.Sprintf("fail-write-%02d", w), func(t *testing.T) {
			dir := t.TempDir()
			db := openFaultDurable(t, dir, 256) // no evictions: all writes at checkpoint
			if _, err := runScript(db.DB, steps); err != nil {
				t.Fatalf("workload should not touch the pager: %v", err)
			}
			db.fp.FailWriteAfter(w, pager.ErrInjectedEIO)
			if err := db.Checkpoint(); !errors.Is(err, pager.ErrInjectedEIO) {
				t.Fatalf("checkpoint = %v, want injected EIO at write %d", err, w)
			}
			// The disk recovers; the retried checkpoint must go through and
			// leave nothing behind from the failed attempt.
			db.fp.FailWriteAfter(-1, nil)
			if err := db.Checkpoint(); err != nil {
				t.Fatalf("retried checkpoint: %v", err)
			}
			if n := db.wlog.Len(); n != 0 {
				t.Fatalf("WAL holds %d records after successful checkpoint, want 0", n)
			}
			db.crash()

			re := openDurable(t, dir, 256)
			defer re.crash()
			compareDumps(t, fmt.Sprintf("EIO at write %d", w), want, dumpDB(t, re.DB))
			verifyIndexConsistency(t, re.DB)
		})
	}
}

// TestWorkloadEIOAtEveryWrite arms a sticky EIO before the Nth page write of
// the whole workload (a tiny pool makes evictions write mid-statement) and
// lets the workload run to completion, tolerating statement failures. The
// guarantee under test: after a crash and reopen, the database holds
// EXACTLY the effects of the statements that reported success — failed
// statements rolled back completely, no silent wrong results anywhere.
func TestWorkloadEIOAtEveryWrite(t *testing.T) {
	// crashScript alone fits in the pool; bulk inserts of wide rows push the
	// heap past it so evictions write mid-statement.
	steps := crashScript()
	for i := 0; i < 60; i++ {
		sql := fmt.Sprintf(`INSERT INTO Gene VALUES ('JWX%03d', '%s', %d)`,
			i, strings.Repeat("x", 300), 1000+i)
		steps = append(steps, crashStep{label: sql, sql: sql})
	}
	const pool = 3

	// Golden run with the same pool size to count the eviction writes the
	// workload itself performs.
	goldenDir := t.TempDir()
	golden := openFaultDurable(t, goldenDir, pool)
	if _, err := runScript(golden.DB, steps); err != nil {
		t.Fatal(err)
	}
	writes := golden.fp.WriteCount()
	golden.crash()
	if writes == 0 {
		t.Fatal("workload performed no page writes at this pool size; harness is vacuous")
	}

	// Cap the matrix: early write numbers bite mid-workload (the interesting
	// cases); past the workload's own writes nothing fires. Stride so the
	// matrix stays fast while still covering the whole range.
	stride := 1
	if writes > 40 {
		stride = writes/40 + 1
	}

	for w := 0; w < writes; w += stride {
		w := w
		t.Run(fmt.Sprintf("fail-write-%03d", w), func(t *testing.T) {
			dir := t.TempDir()
			db := openFaultDurable(t, dir, pool)
			db.fp.FailWriteAfter(w, pager.ErrInjectedEIO)

			// Run every step, recording which ones succeed. A step that
			// fails must fail loudly; its effects must not survive.
			s := db.Session("admin")
			var succeeded []crashStep
			tripped := false
			for _, step := range steps {
				var err error
				if step.sql != "" {
					_, err = s.Exec(step.sql)
				} else {
					err = step.fn(db.DB)
				}
				if err == nil {
					succeeded = append(succeeded, step)
				} else if errors.Is(err, pager.ErrInjectedEIO) {
					tripped = true
				} else if !tripped {
					// Before the fault fires, only the injected error is an
					// acceptable failure. After it fired, cascading logical
					// failures (a step depending on a failed CREATE) are fine.
					t.Fatalf("step %q failed with a non-injected error: %v", step.label, err)
				}
			}
			if !tripped && w < writes {
				// Legitimate: once early statements fail, later ones dirty
				// fewer pages, so the faulted run can perform fewer writes
				// than the golden run and never reach the armed number.
				t.Logf("write %d not reached by the faulted run", w)
			}
			db.crash()

			re := openDurable(t, dir, pool)
			defer re.crash()

			oracle := MustOpen(Options{})
			if _, err := runScript(oracle, succeeded); err != nil {
				t.Fatalf("oracle replay of successful steps: %v", err)
			}
			compareDumps(t, fmt.Sprintf("EIO armed at write %d", w), dumpDB(t, oracle), dumpDB(t, re.DB))
			verifyIndexConsistency(t, re.DB)
		})
	}
}
