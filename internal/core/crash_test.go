package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"bdbms/internal/annotation"
	"bdbms/internal/exec"
	"bdbms/internal/pager"
	"bdbms/internal/provenance"
	"bdbms/internal/wal"
)

// crashStep is one unit of the recorded crash workload: either an A-SQL
// statement or a Go-surface mutation.
type crashStep struct {
	label string
	sql   string
	fn    func(db *DB) error
}

// crashScript is the recorded workload of the crash-injection harness. Every
// step appends at least one WAL record, so statement boundaries and record
// boundaries can be cross-indexed.
func crashScript() []crashStep {
	var steps []crashStep
	steps = append(steps, crashStep{label: "register agents", fn: func(db *DB) error {
		db.Provenance().RegisterAgent("loader")
		db.Provenance().RegisterAgent("blast-tool")
		db.Provenance().UnregisterAgent("blast-tool")
		return nil
	}})
	stmts := workloadStatements()
	for _, s := range stmts[:5] {
		steps = append(steps, crashStep{label: s, sql: s})
	}
	steps = append(steps, crashStep{label: "add dependency rule", fn: func(db *DB) error {
		_, err := db.Dependencies().AddRule(depRule())
		return err
	}})
	for _, s := range stmts[5:] {
		steps = append(steps, crashStep{label: s, sql: s})
	}
	steps = append(steps, crashStep{label: "attach provenance", fn: func(db *DB) error {
		_, err := db.Provenance().Attach("loader", "Gene", provenance.Record{
			Source: "RegulonDB", Action: provenance.ActionCopy,
		}, []annotation.Region{annotation.CellRegion("Gene", 1, 2)})
		return err
	}})
	return steps
}

// runScript executes the script until a step fails (the simulated crash) and
// returns how many steps completed without error.
func runScript(db *DB, steps []crashStep) (completed int, firstErr error) {
	s := db.Session("admin")
	for i, step := range steps {
		var err error
		if step.sql != "" {
			_, err = s.Exec(step.sql)
		} else {
			err = step.fn(db)
		}
		if err != nil {
			return i, err
		}
	}
	return len(steps), nil
}

// expectedPrefix computes, from the golden record sequence, the record
// count a crash after n appends recovers to: an unclosed transaction frame
// at the tail is rolled back and truncated, everything else survives.
func expectedPrefix(golden []wal.Record, n int) int {
	open := -1
	for i := 0; i < n; i++ {
		switch golden[i].Kind {
		case wal.KindTxBegin:
			open = i
		case wal.KindTxCommit, wal.KindTxAbort:
			open = -1
		}
	}
	if open >= 0 {
		return open
	}
	return n
}

// bareDataIndexes marks the records that commit individually — data records
// appended outside any transaction frame (Go-surface manager calls). A
// crash between two of them leaves a state that is not any step boundary,
// so the dump comparison skips such windows.
func bareDataIndexes(golden []wal.Record) []bool {
	bare := make([]bool, len(golden))
	inFrame := false
	for i, rec := range golden {
		switch rec.Kind {
		case wal.KindTxBegin:
			inFrame = true
		case wal.KindTxCommit, wal.KindTxAbort:
			inFrame = false
		default:
			bare[i] = !inFrame && !rec.Kind.IsTxControl()
		}
	}
	return bare
}

// TestCrashInjectionEveryWALBoundary is the crash-injection harness of the
// issue: for every N in the recorded workload, the WAL "kills the process"
// after the Nth append; the reopened database must hold exactly the
// committed prefix. Statements are transactions now, so the assertion is
// all-or-nothing: at EVERY crash point inside a statement's frame the
// recovered state must equal the last completed step's oracle state (not
// just be internally consistent), and the unclosed frame must be gone from
// the recovered log. Only crash points between the bare records of
// Go-surface steps (agent registrations commit individually) skip the dump
// comparison.
func TestCrashInjectionEveryWALBoundary(t *testing.T) {
	steps := crashScript()

	// Golden run on a memory database: record the WAL record count and a
	// state snapshot after every step.
	golden := MustOpen(Options{})
	boundaries := make([]int, 0, len(steps)+1) // record count after k steps
	dumps := make([]*dbDump, 0, len(steps)+1)
	boundaries = append(boundaries, 0)
	dumps = append(dumps, dumpDB(t, golden))
	if _, err := runScriptStepwise(t, golden, steps, &boundaries, &dumps); err != nil {
		t.Fatalf("golden run: %v", err)
	}
	total := boundaries[len(boundaries)-1]
	if total < len(steps) {
		t.Fatalf("workload appended %d records for %d steps; every step must log", total, len(steps))
	}
	goldenRecs := golden.Storage().WAL().Records()
	if len(goldenRecs) != total {
		t.Fatalf("golden WAL holds %d records, boundaries say %d", len(goldenRecs), total)
	}
	bare := bareDataIndexes(goldenRecs)

	for n := 0; n <= total; n++ {
		n := n
		t.Run(fmt.Sprintf("fail-after-%03d", n), func(t *testing.T) {
			dir := t.TempDir()
			db := openDurable(t, dir, 8)
			db.wlog.FailAfter(n)
			_, err := runScript(db.DB, steps)
			if n < total && err == nil {
				t.Fatalf("fault point %d never tripped", n)
			}
			if n == total && err != nil {
				t.Fatalf("full run failed: %v", err)
			}
			db.crash()

			re := openDurable(t, dir, 8)
			defer re.crash()
			if got, want := re.wlog.Len(), expectedPrefix(goldenRecs, n); got != want {
				t.Fatalf("recovered WAL holds %d records, want the committed prefix %d (crash after %d)", got, want, n)
			}
			verifyIndexConsistency(t, re.DB)

			// All-or-nothing: unless the crash window contains individually
			// committed bare records, the recovered state must equal the
			// oracle after the last completed step.
			k := 0
			for j, b := range boundaries {
				if b <= n {
					k = j
				}
			}
			comparable := true
			for i := boundaries[k]; i < n; i++ {
				if bare[i] {
					comparable = false
					break
				}
			}
			if comparable {
				compareDumps(t, fmt.Sprintf("prefix of %d steps (crash after %d)", k, n), dumps[k], dumpDB(t, re.DB))
			}
		})
	}
}

// runScriptStepwise is runScript, additionally recording the WAL length and
// a state dump after every completed step.
func runScriptStepwise(t *testing.T, db *DB, steps []crashStep, boundaries *[]int, dumps *[]*dbDump) (int, error) {
	s := db.Session("admin")
	for i, step := range steps {
		var err error
		if step.sql != "" {
			_, err = s.Exec(step.sql)
		} else {
			err = step.fn(db)
		}
		if err != nil {
			return i, fmt.Errorf("step %q: %w", step.label, err)
		}
		*boundaries = append(*boundaries, db.Storage().WAL().Len())
		*dumps = append(*dumps, dumpDB(t, db))
	}
	return len(steps), nil
}

// --- crash injection inside open transactions --------------------------------

// txStep is one atomic unit of the transactional crash workload: either a
// bare auto-commit statement or a whole BEGIN..COMMIT/ROLLBACK transaction.
// Two pseudo-statements drive the adversarial parts: "\flush" forces every
// dirty page to disk mid-transaction (a deterministic stand-in for buffer
// evictions, so uncommitted row versions ARE on disk when the crash hits),
// and a "\fail " prefix marks a statement that must error (exercising the
// mid-transaction statement rollback and its TxStmtAbort marker).
type txStep struct {
	label string
	stmts []string
}

// txScript builds the transactional workload: committed transactions,
// savepoint rollbacks inside a committed transaction, a rolled-back
// transaction, a failed statement inside a committed transaction, DDL in a
// rolled-back transaction, and finally a transaction left open at the crash.
func txScript() []txStep {
	return []txStep{
		// Setup: one auto-commit statement per step, so every step boundary
		// is a frame boundary and the all-or-nothing assertion can run at
		// every single crash point.
		{label: "create acct", stmts: []string{`CREATE TABLE Acct (ID INT NOT NULL PRIMARY KEY, Bal INT, Note TEXT)`}},
		{label: "index acct", stmts: []string{`CREATE INDEX ON Acct (Bal)`}},
		{label: "seed acct", stmts: []string{`INSERT INTO Acct VALUES (1, 100, 'a'), (2, 100, 'b'), (3, 100, 'c'), (4, 100, 'd')`}},
		{label: "create audit", stmts: []string{`CREATE TABLE Audit (N INT, What TEXT)`}},
		{label: "committed transfer", stmts: []string{
			`BEGIN`,
			`UPDATE Acct SET Bal = Bal - 10 WHERE ID = 1`,
			`UPDATE Acct SET Bal = Bal + 10 WHERE ID = 2`,
			`INSERT INTO Audit VALUES (1, 'transfer')`,
			`COMMIT`,
		}},
		{label: "committed with savepoint rollback", stmts: []string{
			`BEGIN`,
			`INSERT INTO Acct VALUES (7, 70, 'g')`,
			`SAVEPOINT s1`,
			`UPDATE Acct SET Note = 'oops' WHERE ID < 4`,
			`DELETE FROM Acct WHERE ID = 7`,
			`\flush`,
			`ROLLBACK TO SAVEPOINT s1`,
			`UPDATE Acct SET Bal = 77 WHERE ID = 7`,
			`COMMIT`,
		}},
		{label: "rolled back after flush", stmts: []string{
			`BEGIN`,
			`DELETE FROM Acct WHERE ID > 2`,
			`UPDATE Acct SET Bal = 0 WHERE ID = 1`,
			`\flush`,
			`INSERT INTO Audit VALUES (2, 'doomed')`,
			`ROLLBACK`,
		}},
		{label: "committed despite failed statement", stmts: []string{
			`BEGIN`,
			`INSERT INTO Acct VALUES (8, 80, 'h')`,
			`\fail INSERT INTO Acct VALUES (9, 90, 'i'), (1, 0, 'dup pk')`,
			`UPDATE Acct SET Bal = 88 WHERE ID = 8`,
			`COMMIT`,
		}},
		{label: "ddl rolled back", stmts: []string{
			`BEGIN`,
			`CREATE TABLE Temp (X INT)`,
			`INSERT INTO Temp VALUES (1), (2)`,
			`\flush`,
			`ROLLBACK`,
		}},
		{label: "final bare statement", stmts: []string{
			`UPDATE Acct SET Note = 'done' WHERE ID = 1`,
		}},
		{label: "uncommitted tail", stmts: []string{
			`BEGIN`,
			`UPDATE Acct SET Bal = 0 WHERE ID < 100`,
			`DELETE FROM Acct WHERE ID = 8`,
			`\flush`,
			`INSERT INTO Audit VALUES (9, 'never committed')`,
			// no COMMIT: the crash (or the end of the run) hits here.
		}},
	}
}

// runTxScript executes the transactional workload, honoring the pseudo-
// statements, until a statement fails unexpectedly (the injected crash).
func runTxScript(db *DB, steps []txStep) error {
	s := db.Session("admin")
	for _, step := range steps {
		for _, stmt := range step.stmts {
			switch {
			case stmt == `\flush`:
				if err := db.eng.FlushAll(); err != nil {
					return fmt.Errorf("step %q: flush: %w", step.label, err)
				}
			case strings.HasPrefix(stmt, `\fail `):
				if _, err := s.Exec(strings.TrimPrefix(stmt, `\fail `)); err == nil {
					return fmt.Errorf("step %q: statement %q succeeded, want error", step.label, stmt)
				} else if errors.Is(err, wal.ErrInjectedFailure) || errors.Is(err, exec.ErrTxDone) {
					// The injected crash, not the expected logical error.
					return err
				}
			default:
				if _, err := s.Exec(stmt); err != nil {
					return fmt.Errorf("step %q: %q: %w", step.label, stmt, err)
				}
			}
		}
	}
	return nil
}

// TestCrashInjectionInsideTransactions kills the WAL at every record
// boundary inside the transactional workload — mid-frame, on savepoint and
// rollback markers, on the commit record itself — with dirty pages of
// uncommitted transactions deliberately flushed to disk. After reopening,
// the database must hold exactly the effects of the transactions whose
// COMMIT made it into the log prefix, nothing of any other (all-or-nothing),
// matching a step-indexed oracle that only ran committed steps.
func TestCrashInjectionInsideTransactions(t *testing.T) {
	steps := txScript()

	// Golden run on a memory database: a dump at every step boundary plus
	// the full record sequence (the uncommitted tail included).
	golden := MustOpen(Options{})
	boundaries := []int{0}
	dumps := []*dbDump{dumpDB(t, golden)}
	for _, step := range steps[:len(steps)-1] {
		if err := runTxScript(golden, []txStep{step}); err != nil {
			t.Fatalf("golden step %q: %v", step.label, err)
		}
		boundaries = append(boundaries, golden.Storage().WAL().Len())
		dumps = append(dumps, dumpDB(t, golden))
	}
	if err := runTxScript(golden, steps[len(steps)-1:]); err != nil {
		t.Fatalf("golden tail: %v", err)
	}
	goldenRecs := golden.Storage().WAL().Records()
	total := len(goldenRecs)
	if total <= boundaries[len(boundaries)-1] {
		t.Fatal("uncommitted tail appended no records; harness is vacuous")
	}

	sawMidFrame := false
	for n := 0; n <= total; n++ {
		n := n
		t.Run(fmt.Sprintf("fail-after-%03d", n), func(t *testing.T) {
			dir := t.TempDir()
			db := openDurable(t, dir, 8)
			db.wlog.FailAfter(n)
			err := runTxScript(db.DB, steps)
			if n < total && err == nil {
				t.Fatalf("fault point %d never tripped", n)
			}
			if n == total && err != nil {
				t.Fatalf("full run failed: %v", err)
			}
			// Abandoned transaction + crash: drop everything on the floor.
			db.crash()

			re := openDurable(t, dir, 8)
			defer re.crash()
			if got, want := re.wlog.Len(), expectedPrefix(goldenRecs, n); got != want {
				t.Fatalf("recovered WAL holds %d records, want committed prefix %d (crash after %d)", got, want, n)
			}
			verifyIndexConsistency(t, re.DB)

			// Every record of this workload is framed, so EVERY crash point
			// must recover to the last committed step boundary exactly.
			k := 0
			for j, b := range boundaries {
				if b <= n {
					k = j
				}
			}
			if n != boundaries[k] {
				sawMidFrame = true
			}
			compareDumps(t, fmt.Sprintf("committed prefix of %d tx steps (crash after %d)", k, n), dumps[k], dumpDB(t, re.DB))

			// Crash the recovered database immediately — no checkpoint, no
			// further writes — and open a THIRD time. Recovery's rollback of
			// the unclosed frame must itself be durable (pages flushed
			// before the frame is truncated); if it only lived in the
			// buffer pool, the rolled-back rows would resurrect here.
			re.crash()
			re2 := openDurable(t, dir, 8)
			defer re2.crash()
			compareDumps(t, fmt.Sprintf("after second crash (crash after %d)", n), dumps[k], dumpDB(t, re2.DB))
			verifyIndexConsistency(t, re2.DB)
		})
	}
	if !sawMidFrame {
		t.Error("no crash point landed inside an open frame; harness is vacuous")
	}
}

// TestRecoveryImplicitAbortOnLostAbortMarker covers the lost-abort-marker
// window: a statement's commit AND abort appends both fail (transient WAL
// error), the log recovers, a later statement commits normally, then the
// process crashes. The WAL holds an unclosed frame followed by another
// frame; replay must treat the second TxBegin as an implicit abort of the
// first — undoing any of its effects — instead of rejecting the log.
func TestRecoveryImplicitAbortOnLostAbortMarker(t *testing.T) {
	dir := t.TempDir()
	db := openDurable(t, dir, 8)
	s := db.Session("admin")
	if _, err := s.Exec(`CREATE TABLE T (N INT NOT NULL PRIMARY KEY)`); err != nil {
		t.Fatal(err)
	}
	// TxBegin + the row record append, then the commit marker fails — and so
	// does the abort marker.
	db.wlog.FailAfter(2)
	if _, err := s.Exec(`INSERT INTO T VALUES (1)`); err == nil {
		t.Fatal("INSERT with failing commit marker succeeded")
	}
	db.wlog.FailAfter(-1)
	if _, err := s.Exec(`INSERT INTO T VALUES (2)`); err != nil {
		t.Fatal(err)
	}
	db.crash()

	re, err := tryOpenDurable(dir, 8)
	if err != nil {
		t.Fatalf("lost abort marker bricked recovery: %v", err)
	}
	defer re.crash()
	res, err := re.Exec(`SELECT N FROM T`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0].Values[0].Int() != 2 {
		t.Fatalf("recovered rows %v, want only the committed second insert", res.Rows)
	}
	verifyIndexConsistency(t, re.DB)
}

// faultPager wraps a pager and fails every Write after the first failAfter
// ones, simulating a crash during page flushing.
type faultPager struct {
	pager.Pager
	remaining int
	tripped   bool
}

var errPagerFault = errors.New("pager: injected write failure (simulated crash)")

func (p *faultPager) Write(id pager.PageID, data []byte) error {
	if p.tripped {
		return errPagerFault
	}
	if p.remaining == 0 {
		p.tripped = true
		return errPagerFault
	}
	p.remaining--
	return p.Pager.Write(id, data)
}

// TestCrashInjectionEveryPagerWrite crashes checkpointing at every page
// write: the WAL survives untouched, so no matter where the flush dies the
// reopened database must recover the full committed state, and the
// half-written data file must never poison it.
func TestCrashInjectionEveryPagerWrite(t *testing.T) {
	steps := crashScript()

	// Golden durable run to count the page writes a checkpoint performs.
	goldenDir := t.TempDir()
	golden := openDurable(t, goldenDir, 256)
	if _, err := runScript(golden.DB, steps); err != nil {
		t.Fatalf("golden run: %v", err)
	}
	before := golden.pgr.Stats().Writes
	if err := golden.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	writes := int(golden.pgr.Stats().Writes - before)
	golden.crash()
	if writes == 0 {
		t.Fatal("checkpoint performed no page writes; harness is vacuous")
	}

	oracle := MustOpen(Options{})
	if _, err := runScript(oracle, steps); err != nil {
		t.Fatal(err)
	}
	want := dumpDB(t, oracle)

	for w := 0; w < writes; w++ {
		w := w
		t.Run(fmt.Sprintf("fail-write-%02d", w), func(t *testing.T) {
			dir := t.TempDir()
			dataFile := dir + "/data.db"
			fp, err := pager.OpenFile(dataFile)
			if err != nil {
				t.Fatal(err)
			}
			fpFault := &faultPager{Pager: fp, remaining: w}
			wlog, err := wal.Open(dataFile + ".wal")
			if err != nil {
				t.Fatal(err)
			}
			db, err := Open(Options{
				Pager:        fpFault,
				PoolSize:     256, // no evictions: all page writes happen at checkpoint
				WAL:          wlog,
				CatalogPath:  dataFile + ".catalog",
				ManifestPath: dataFile + ".manifest",
			})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := runScript(db, steps); err != nil {
				t.Fatalf("workload should not touch the pager: %v", err)
			}
			if err := db.Checkpoint(); !errors.Is(err, errPagerFault) {
				t.Fatalf("checkpoint = %v, want injected pager fault", err)
			}
			wlog.Close()
			fp.Close()

			re := openDurable(t, dir, 256)
			defer re.crash()
			compareDumps(t, "post pager fault", want, dumpDB(t, re.DB))
			verifyIndexConsistency(t, re.DB)
		})
	}
}
