package core

import (
	"errors"
	"fmt"
	"testing"

	"bdbms/internal/annotation"
	"bdbms/internal/pager"
	"bdbms/internal/provenance"
	"bdbms/internal/wal"
)

// crashStep is one unit of the recorded crash workload: either an A-SQL
// statement or a Go-surface mutation.
type crashStep struct {
	label string
	sql   string
	fn    func(db *DB) error
}

// crashScript is the recorded workload of the crash-injection harness. Every
// step appends at least one WAL record, so statement boundaries and record
// boundaries can be cross-indexed.
func crashScript() []crashStep {
	var steps []crashStep
	steps = append(steps, crashStep{label: "register agents", fn: func(db *DB) error {
		db.Provenance().RegisterAgent("loader")
		db.Provenance().RegisterAgent("blast-tool")
		db.Provenance().UnregisterAgent("blast-tool")
		return nil
	}})
	stmts := workloadStatements()
	for _, s := range stmts[:5] {
		steps = append(steps, crashStep{label: s, sql: s})
	}
	steps = append(steps, crashStep{label: "add dependency rule", fn: func(db *DB) error {
		_, err := db.Dependencies().AddRule(depRule())
		return err
	}})
	for _, s := range stmts[5:] {
		steps = append(steps, crashStep{label: s, sql: s})
	}
	steps = append(steps, crashStep{label: "attach provenance", fn: func(db *DB) error {
		_, err := db.Provenance().Attach("loader", "Gene", provenance.Record{
			Source: "RegulonDB", Action: provenance.ActionCopy,
		}, []annotation.Region{annotation.CellRegion("Gene", 1, 2)})
		return err
	}})
	return steps
}

// runScript executes the script until a step fails (the simulated crash) and
// returns how many steps completed without error.
func runScript(db *DB, steps []crashStep) (completed int, firstErr error) {
	s := db.Session("admin")
	for i, step := range steps {
		var err error
		if step.sql != "" {
			_, err = s.Exec(step.sql)
		} else {
			err = step.fn(db)
		}
		if err != nil {
			return i, err
		}
	}
	return len(steps), nil
}

// TestCrashInjectionEveryWALBoundary is the crash-injection harness of the
// issue: for every N in the recorded workload, the WAL "kills the process"
// after the Nth append; the reopened database must hold exactly the
// committed prefix — when N lands on a step boundary the recovered state
// must equal the oracle state after that many steps, and at every N (torn
// mid-statement included) rows, indexes, annotations and outdated marks
// must be mutually consistent.
func TestCrashInjectionEveryWALBoundary(t *testing.T) {
	steps := crashScript()

	// Golden run on a memory database: record the WAL record count and a
	// state snapshot after every step.
	golden := MustOpen(Options{})
	boundaries := make([]int, 0, len(steps)+1) // record count after k steps
	dumps := make([]*dbDump, 0, len(steps)+1)
	boundaries = append(boundaries, 0)
	dumps = append(dumps, dumpDB(t, golden))
	if _, err := runScriptStepwise(t, golden, steps, &boundaries, &dumps); err != nil {
		t.Fatalf("golden run: %v", err)
	}
	total := boundaries[len(boundaries)-1]
	if total < len(steps) {
		t.Fatalf("workload appended %d records for %d steps; every step must log", total, len(steps))
	}

	// boundaryStep[n] = k when exactly k steps complete within the first n
	// records.
	boundaryStep := map[int]int{}
	for k, n := range boundaries {
		boundaryStep[n] = k
	}

	for n := 0; n <= total; n++ {
		n := n
		t.Run(fmt.Sprintf("fail-after-%03d", n), func(t *testing.T) {
			dir := t.TempDir()
			db := openDurable(t, dir, 8)
			db.wlog.FailAfter(n)
			_, err := runScript(db.DB, steps)
			if n < total && err == nil {
				t.Fatalf("fault point %d never tripped", n)
			}
			if n == total && err != nil {
				t.Fatalf("full run failed: %v", err)
			}
			db.crash()

			re := openDurable(t, dir, 8)
			defer re.crash()
			if got := re.wlog.Len(); got != n {
				t.Fatalf("recovered WAL holds %d records, want the committed prefix %d", got, n)
			}
			// Internal consistency holds at every record boundary, torn
			// statements included.
			verifyIndexConsistency(t, re.DB)
			if k, ok := boundaryStep[n]; ok {
				compareDumps(t, fmt.Sprintf("prefix of %d steps", k), dumps[k], dumpDB(t, re.DB))
			}
		})
	}
}

// runScriptStepwise is runScript, additionally recording the WAL length and
// a state dump after every completed step.
func runScriptStepwise(t *testing.T, db *DB, steps []crashStep, boundaries *[]int, dumps *[]*dbDump) (int, error) {
	s := db.Session("admin")
	for i, step := range steps {
		var err error
		if step.sql != "" {
			_, err = s.Exec(step.sql)
		} else {
			err = step.fn(db)
		}
		if err != nil {
			return i, fmt.Errorf("step %q: %w", step.label, err)
		}
		*boundaries = append(*boundaries, db.Storage().WAL().Len())
		*dumps = append(*dumps, dumpDB(t, db))
	}
	return len(steps), nil
}

// faultPager wraps a pager and fails every Write after the first failAfter
// ones, simulating a crash during page flushing.
type faultPager struct {
	pager.Pager
	remaining int
	tripped   bool
}

var errPagerFault = errors.New("pager: injected write failure (simulated crash)")

func (p *faultPager) Write(id pager.PageID, data []byte) error {
	if p.tripped {
		return errPagerFault
	}
	if p.remaining == 0 {
		p.tripped = true
		return errPagerFault
	}
	p.remaining--
	return p.Pager.Write(id, data)
}

// TestCrashInjectionEveryPagerWrite crashes checkpointing at every page
// write: the WAL survives untouched, so no matter where the flush dies the
// reopened database must recover the full committed state, and the
// half-written data file must never poison it.
func TestCrashInjectionEveryPagerWrite(t *testing.T) {
	steps := crashScript()

	// Golden durable run to count the page writes a checkpoint performs.
	goldenDir := t.TempDir()
	golden := openDurable(t, goldenDir, 256)
	if _, err := runScript(golden.DB, steps); err != nil {
		t.Fatalf("golden run: %v", err)
	}
	before := golden.pgr.Stats().Writes
	if err := golden.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	writes := int(golden.pgr.Stats().Writes - before)
	golden.crash()
	if writes == 0 {
		t.Fatal("checkpoint performed no page writes; harness is vacuous")
	}

	oracle := MustOpen(Options{})
	if _, err := runScript(oracle, steps); err != nil {
		t.Fatal(err)
	}
	want := dumpDB(t, oracle)

	for w := 0; w < writes; w++ {
		w := w
		t.Run(fmt.Sprintf("fail-write-%02d", w), func(t *testing.T) {
			dir := t.TempDir()
			dataFile := dir + "/data.db"
			fp, err := pager.OpenFile(dataFile)
			if err != nil {
				t.Fatal(err)
			}
			fpFault := &faultPager{Pager: fp, remaining: w}
			wlog, err := wal.Open(dataFile + ".wal")
			if err != nil {
				t.Fatal(err)
			}
			db, err := Open(Options{
				Pager:        fpFault,
				PoolSize:     256, // no evictions: all page writes happen at checkpoint
				WAL:          wlog,
				CatalogPath:  dataFile + ".catalog",
				ManifestPath: dataFile + ".manifest",
			})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := runScript(db, steps); err != nil {
				t.Fatalf("workload should not touch the pager: %v", err)
			}
			if err := db.Checkpoint(); !errors.Is(err, errPagerFault) {
				t.Fatalf("checkpoint = %v, want injected pager fault", err)
			}
			wlog.Close()
			fp.Close()

			re := openDurable(t, dir, 256)
			defer re.crash()
			compareDumps(t, "post pager fault", want, dumpDB(t, re.DB))
			verifyIndexConsistency(t, re.DB)
		})
	}
}
