package core

// Planner-statistics invariants: the incrementally-maintained per-table
// statistics must stay within their documented drift bounds under arbitrary
// live DML, must be flagged by Verify when they lie, and must come back from
// a crash at ANY WAL record boundary equal — field for field — to a fresh
// recompute over the recovered heap (recovery adopts the checkpoint snapshot
// and freshens any table the replay touched).

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"bdbms/internal/stats"
	"bdbms/internal/storage"
)

// checkStatsInvariants asserts the live-drift contract of one table's
// statistics against a fresh recompute: exact row and NULL counts, a range
// that contains the true range, and distinct counts within Mods of exact.
func checkStatsInvariants(t *testing.T, tbl *storage.Table, when string) {
	t.Helper()
	cur := tbl.CurrentStats()
	if cur == nil {
		t.Fatalf("%s: table %s has no statistics", when, tbl.Name())
	}
	exact, err := tbl.ComputeStats()
	if err != nil {
		t.Fatalf("%s: recompute %s: %v", when, tbl.Name(), err)
	}
	if cur.Rows != exact.Rows {
		t.Errorf("%s: %s row count %d, exact %d", when, tbl.Name(), cur.Rows, exact.Rows)
	}
	for i := range cur.Cols {
		cc, ec := cur.Cols[i], exact.Cols[i]
		if cc.Nulls != ec.Nulls {
			t.Errorf("%s: %s col %d NULL count %d, exact %d", when, tbl.Name(), i, cc.Nulls, ec.Nulls)
		}
		if ec.HasRange && (!cc.HasRange || cc.Min > ec.Min || cc.Max < ec.Max) {
			t.Errorf("%s: %s col %d range [%v,%v] does not contain exact [%v,%v]",
				when, tbl.Name(), i, cc.Min, cc.Max, ec.Min, ec.Max)
		}
		drift := cc.Distinct - ec.Distinct
		if drift < 0 {
			drift = -drift
		}
		if drift > cur.Mods {
			t.Errorf("%s: %s col %d distinct drift %d exceeds Mods %d", when, tbl.Name(), i, drift, cur.Mods)
		}
	}
}

// TestStatsInvariantUnderRandomDML hammers one table with seeded random
// inserts, updates and deletes, checking the drift contract continuously and
// that Verify agrees; at the end the lazily-rebuilt statistics (Stats
// freshens once drift crosses the threshold — here forced via FreshenStats)
// must equal a recompute exactly.
func TestStatsInvariantUnderRandomDML(t *testing.T) {
	db := MustOpen(Options{})
	s := db.Session("admin")
	if _, err := s.Exec(`CREATE TABLE S (ID INT NOT NULL PRIMARY KEY, G INT, W TEXT)`); err != nil {
		t.Fatal(err)
	}
	tbl, err := db.Storage().Table("S")
	if err != nil {
		t.Fatal(err)
	}
	tbl.Stats() // build the initial snapshot
	r := rand.New(rand.NewSource(99))
	live := map[int]bool{}
	next := 1
	for i := 0; i < 400; i++ {
		switch op := r.Intn(3); {
		case op == 0 || len(live) < 5:
			g := fmt.Sprint(r.Intn(20))
			if r.Intn(8) == 0 {
				g = "NULL"
			}
			if _, err := s.Exec(fmt.Sprintf(
				`INSERT INTO S VALUES (%d, %s, 'w%d')`, next, g, r.Intn(9))); err != nil {
				t.Fatal(err)
			}
			live[next] = true
			next++
		case op == 1:
			id := anyKey(r, live)
			if _, err := s.Exec(fmt.Sprintf(
				`UPDATE S SET G = %d, W = 'u%d' WHERE ID = %d`, r.Intn(20), r.Intn(9), id)); err != nil {
				t.Fatal(err)
			}
		default:
			id := anyKey(r, live)
			if _, err := s.Exec(fmt.Sprintf(`DELETE FROM S WHERE ID = %d`, id)); err != nil {
				t.Fatal(err)
			}
			delete(live, id)
		}
		if i%50 == 49 {
			checkStatsInvariants(t, tbl, fmt.Sprintf("after %d ops", i+1))
			rep, err := db.Verify()
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range rep.Problems {
				if strings.HasPrefix(p.Area, "stats:") {
					t.Errorf("after %d ops: Verify: %s", i+1, p)
				}
			}
		}
	}
	tbl.FreshenStats()
	exact, err := tbl.ComputeStats()
	if err != nil {
		t.Fatal(err)
	}
	if cur := tbl.CurrentStats(); !cur.Equal(exact) {
		t.Errorf("freshened statistics differ from recompute:\n cur: %+v\nexact: %+v", cur, exact)
	}
}

func anyKey(r *rand.Rand, live map[int]bool) int {
	ks := make([]int, 0, len(live))
	for k := range live {
		ks = append(ks, k)
	}
	if len(ks) == 0 {
		return -1
	}
	// map iteration is random; sort-free determinism via min-offset pick
	min := ks[0]
	for _, k := range ks {
		if k < min {
			min = k
		}
	}
	return min + r.Intn(len(ks)) // may miss; DML on absent keys is harmless
}

// statsWorkload is the crash workload: DDL, a statistics build mid-stream
// (the SELECT plans and computes them), a checkpoint that snapshots the
// statistics into the manifest, and post-checkpoint churn that must be
// replayed into them on recovery.
func statsWorkload(db *DB, upTo int) error {
	s := db.Session("admin")
	stmts := []string{
		`CREATE TABLE S (ID INT NOT NULL PRIMARY KEY, G INT, W TEXT)`,
		`INSERT INTO S VALUES (1, 4, 'a'), (2, 4, 'b'), (3, NULL, 'c'), (4, 9, 'a')`,
		`SELECT * FROM S WHERE G = 4`, // plans: builds the statistics snapshot
		`\checkpoint`,                 // manifest now carries the snapshot
		`INSERT INTO S VALUES (5, 12, 'd'), (6, 1, 'e')`,
		`UPDATE S SET G = 7 WHERE ID = 2`,
		`DELETE FROM S WHERE ID = 1`,
		`SELECT * FROM S WHERE G > 3`,
		`INSERT INTO S VALUES (7, 30, NULL)`,
	}
	for i, stmt := range stmts {
		if upTo >= 0 && i >= upTo {
			return nil
		}
		if stmt == `\checkpoint` {
			if err := db.Checkpoint(); err != nil {
				return err
			}
			continue
		}
		if _, err := s.Exec(stmt); err != nil {
			return err
		}
	}
	return nil
}

// TestStatsCrashRecoveryEquivalence crashes the WAL after every record of
// the statistics workload. Whatever prefix survives, the reopened database's
// statistics must equal a fresh recompute over the recovered heap exactly —
// the adopted checkpoint snapshot plus replay freshening leaves no residue —
// and Verify must be clean on the stats layer.
func TestStatsCrashRecoveryEquivalence(t *testing.T) {
	// Golden run to size the WAL.
	goldenDir := t.TempDir()
	golden := openDurable(t, goldenDir, 8)
	if err := statsWorkload(golden.DB, -1); err != nil {
		t.Fatal(err)
	}
	// The fault counter counts APPENDS, and the mid-workload checkpoint
	// truncates the log, so Len() undercounts; LSNs are monotonic across
	// truncation, so NextLSN-1 is the true append count.
	total := int(golden.wlog.NextLSN() - 1)
	golden.crash()
	if total == 0 {
		t.Fatal("workload appended no WAL records; harness is vacuous")
	}

	for n := 0; n <= total; n++ {
		n := n
		t.Run(fmt.Sprintf("fail-after-%02d", n), func(t *testing.T) {
			dir := t.TempDir()
			db := openDurable(t, dir, 8)
			db.wlog.FailAfter(n)
			err := statsWorkload(db.DB, -1)
			if n < total && err == nil {
				t.Fatalf("fault point %d never tripped", n)
			}
			if n == total && err != nil {
				t.Fatal(err)
			}
			db.crash()

			re := openDurable(t, dir, 8)
			defer re.crash()
			for _, tbl := range re.Storage().Tables() {
				cur := tbl.CurrentStats()
				if cur == nil {
					continue // never built before the crash: a valid state
				}
				exact, err := tbl.ComputeStats()
				if err != nil {
					t.Fatalf("recompute %s: %v", tbl.Name(), err)
				}
				if !statsEqualIgnoringMods(cur, exact) {
					t.Errorf("recovered statistics of %s differ from recompute\n cur: %+v\nexact: %+v",
						tbl.Name(), cur, exact)
				}
			}
			rep, err := re.Verify()
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range rep.Problems {
				if strings.HasPrefix(p.Area, "stats:") {
					t.Errorf("Verify after recovery: %s", p)
				}
			}
		})
	}
}

// statsEqualIgnoringMods compares recovered statistics to a recompute. A
// fresh recompute always has Mods == 0 and BaseRows == Rows; the recovered
// snapshot is allowed a zero mod counter from a different base, so only the
// observable planner inputs are compared.
func statsEqualIgnoringMods(cur, exact *stats.Table) bool {
	c := cur.Clone()
	c.Mods, c.BaseRows = exact.Mods, exact.BaseRows
	return c.Equal(exact)
}

// TestVerifyFlagsCorruptStats corrupts each statistics field in turn and
// asserts the stats layer of Verify reports it.
func TestVerifyFlagsCorruptStats(t *testing.T) {
	db := MustOpen(Options{})
	s := db.Session("admin")
	if _, err := s.Exec(`CREATE TABLE S (ID INT NOT NULL PRIMARY KEY, G INT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec(`INSERT INTO S VALUES (1, 5), (2, 7), (3, NULL)`); err != nil {
		t.Fatal(err)
	}
	tbl, err := db.Storage().Table("S")
	if err != nil {
		t.Fatal(err)
	}
	good := tbl.Stats()
	if good == nil {
		t.Fatal("no statistics built")
	}
	corruptions := []struct {
		name   string
		mutate func(st *stats.Table)
	}{
		{"row count", func(st *stats.Table) { st.Rows += 3 }},
		{"null count", func(st *stats.Table) { st.Cols[1].Nulls++ }},
		{"narrowed range", func(st *stats.Table) { st.Cols[1].Min = st.Cols[1].Max }},
		{"distinct drift", func(st *stats.Table) { st.Cols[0].Distinct += st.Mods + 10 }},
	}
	for _, c := range corruptions {
		t.Run(c.name, func(t *testing.T) {
			bad := good.Clone()
			c.mutate(bad)
			tbl.AdoptStats(bad)
			defer tbl.AdoptStats(good.Clone())
			rep, err := db.Verify()
			if err != nil {
				t.Fatal(err)
			}
			found := false
			for _, p := range rep.Problems {
				if strings.HasPrefix(p.Area, "stats:S") {
					found = true
				}
			}
			if !found {
				t.Errorf("Verify missed the corrupted %s; report:\n%s", c.name, rep)
			}
		})
	}
	// And with honest statistics the layer stays quiet.
	rep, err := db.Verify()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range rep.Problems {
		if strings.HasPrefix(p.Area, "stats:") {
			t.Errorf("clean database flagged: %s", p)
		}
	}
}
