package core

import (
	"strings"
	"testing"

	"bdbms/internal/annotation"
	"bdbms/internal/pager"
)

func TestOpenWiresAllManagers(t *testing.T) {
	db := MustOpen(Options{})
	defer db.Close()
	if db.Storage() == nil || db.Annotations() == nil || db.Provenance() == nil ||
		db.Dependencies() == nil || db.Authorization() == nil {
		t.Fatal("managers not wired")
	}
	if db.Annotations().StoreName() != "rectangle" {
		t.Errorf("default store = %s", db.Annotations().StoreName())
	}
	if _, err := db.Exec("CREATE TABLE Gene (GID TEXT NOT NULL PRIMARY KEY, GSequence SEQUENCE)"); err != nil {
		t.Fatal(err)
	}
	results, err := db.ExecAll("INSERT INTO Gene VALUES ('JW0080', 'ATG'); SELECT * FROM Gene;")
	if err != nil || len(results) != 2 {
		t.Fatalf("ExecAll: %v", err)
	}
	if len(results[1].Rows) != 1 {
		t.Error("query result wrong")
	}
}

func TestOpenWithCustomStoreAndPager(t *testing.T) {
	db := MustOpen(Options{
		Pager:           pager.NewMem(),
		PoolSize:        16,
		AnnotationStore: annotation.NewCellStore(),
		EnforceAuth:     true,
	})
	defer db.Close()
	if db.Annotations().StoreName() != "cell" {
		t.Errorf("store = %s", db.Annotations().StoreName())
	}
	db.Authorization().MakeAdmin("admin")
	if _, err := db.Exec("CREATE TABLE G (a INT)"); err != nil {
		t.Fatal(err)
	}
	// EnforceAuth propagates to sessions: an unknown user is denied.
	bob := db.Session("bob")
	if _, err := bob.Exec("SELECT a FROM G"); err == nil || !strings.Contains(err.Error(), "permission") {
		t.Errorf("enforcement not propagated: %v", err)
	}
}

func TestResolverAdapters(t *testing.T) {
	db := MustOpen(Options{})
	defer db.Close()
	db.Exec("CREATE TABLE Gene (GID TEXT NOT NULL PRIMARY KEY, GName TEXT)")
	db.Exec("INSERT INTO Gene VALUES ('JW0080', 'mraW')")
	r := resolver{eng: db.Storage()}
	if n, err := r.ColumnCount("Gene"); err != nil || n != 2 {
		t.Errorf("ColumnCount = %d, %v", n, err)
	}
	if m, err := r.MaxRowID("Gene"); err != nil || m != 1 {
		t.Errorf("MaxRowID = %d, %v", m, err)
	}
	if _, err := r.ColumnCount("missing"); err == nil {
		t.Error("missing table should fail")
	}
	if _, err := r.MaxRowID("missing"); err == nil {
		t.Error("missing table should fail")
	}
}
