// Verification and online backup.
//
// Verify is the full-database scrub behind `bdbms-cli verify`: it reads
// every page through the pager (checksums catch bit rot, torn frames and
// misdirected writes — including in pages no live table references), cross-
// checks each table's heap against its row index and B+-trees, validates
// the checkpoint manifest and catalog against the live engine, and proves
// every annotation is reachable through the annotation store's spatial
// index. Backup is the consistent-snapshot half: checkpoint with all
// writers quiesced, then copy the four files.
package core

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"bdbms/internal/annotation"
	"bdbms/internal/pager"
	"bdbms/internal/storage"
)

// VerifyProblem is one finding of the scrub.
type VerifyProblem struct {
	// Area names the layer the problem was found in: "page", "table:<name>",
	// "stats:<name>", "manifest", "catalog" or "annotation".
	Area string
	// Detail is the human-readable description.
	Detail string
}

func (p VerifyProblem) String() string { return p.Area + ": " + p.Detail }

// VerifyReport summarises a scrub: what was covered and what failed.
type VerifyReport struct {
	// Pages is the number of pages scrubbed (every allocated page).
	Pages uint64
	// Tables, Rows and Indexes count the cross-checked logical structures.
	Tables  int
	Rows    int
	Indexes int
	// Annotations is the number of annotations probed for reachability.
	Annotations int
	// Problems is every finding; an empty slice means the database is clean.
	Problems []VerifyProblem
}

// Clean reports whether the scrub found no problems.
func (r *VerifyReport) Clean() bool { return len(r.Problems) == 0 }

// String renders the report in the format `bdbms-cli verify` prints.
func (r *VerifyReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scrubbed %d pages, %d tables (%d rows, %d indexes), %d annotations\n",
		r.Pages, r.Tables, r.Rows, r.Indexes, r.Annotations)
	if r.Clean() {
		b.WriteString("ok: no problems found")
		return b.String()
	}
	fmt.Fprintf(&b, "FAILED: %d problem(s)", len(r.Problems))
	for _, p := range r.Problems {
		b.WriteString("\n  " + p.String())
	}
	return b.String()
}

func (r *VerifyReport) addf(area, format string, args ...any) {
	r.Problems = append(r.Problems, VerifyProblem{Area: area, Detail: fmt.Sprintf(format, args...)})
}

// Verify scrubs the whole database and returns a report of everything it
// found. It quiesces the engine's lock manager — concurrent writers drain
// and wait, none are observed half-applied — and flushes dirty pages first
// so the on-disk scrub sees current content. The returned error covers
// operational failures only (the flush); integrity findings, including
// unreadable pages, are reported as Problems.
func (db *DB) Verify() (*VerifyReport, error) {
	locks := db.eng.Locks()
	locks.Quiesce()
	defer locks.Resume()
	rep := &VerifyReport{}

	if err := db.eng.FlushAll(); err != nil {
		return nil, fmt.Errorf("core: verify flush: %w", err)
	}

	// Layer 1 — physical: every allocated page must read back verified.
	// Reading through the pager (not the buffer pool) means a stale cache
	// cannot mask on-disk rot, and orphaned pages (e.g. from dropped
	// tables) are scrubbed too even though no table would ever read them.
	pgr := db.eng.Pager()
	rep.Pages = pgr.NumPages()
	for id := pager.PageID(0); uint64(id) < rep.Pages; id++ {
		if _, err := pgr.Read(id); err != nil {
			rep.addf("page", "%v", err)
		}
	}

	// Layer 2 — logical: heap ↔ row index ↔ B+-trees, per table, plus
	// no page claimed by two tables.
	owner := make(map[pager.PageID]string)
	for _, tbl := range db.eng.Tables() {
		area := "table:" + tbl.Name()
		rep.Tables++
		rep.Rows += tbl.RowCount()
		rep.Indexes += len(tbl.IndexColumns())
		for _, p := range tbl.CheckIntegrity() {
			rep.addf(area, "%s", p)
		}
		for _, pg := range tbl.HeapPages() {
			if uint64(pg) >= rep.Pages {
				rep.addf(area, "heap page %d is beyond the file (%d pages)", pg, rep.Pages)
			}
			if prev, taken := owner[pg]; taken {
				rep.addf(area, "heap page %d is also claimed by table %s", pg, prev)
			}
			owner[pg] = tbl.Name()
		}
		db.verifyStats(rep, tbl)
	}

	// Layer 3 — checkpoint metadata: the manifest must parse and only
	// reference pages the file has; the catalog snapshot and the live
	// engine must agree on which tables exist.
	if db.durable() {
		db.verifyManifest(rep)
		for _, schema := range db.eng.Catalog().Tables() {
			if !db.eng.HasTable(schema.Name) {
				rep.addf("catalog", "table %s has a catalog entry but no attached storage", schema.Name)
			}
		}
		for _, tbl := range db.eng.Tables() {
			if !db.eng.Catalog().HasTable(tbl.Name()) {
				rep.addf("catalog", "table %s is attached but missing from the catalog", tbl.Name())
			}
		}
	}

	// Layer 4 — annotations: every annotation (archived included) must be
	// reachable back through the spatial store by each of its regions.
	anns, _ := db.ann.Snapshot()
	probe := annotation.Filter{IncludeArchived: true}
	for _, a := range anns {
		rep.Annotations++
		for _, reg := range a.Regions {
			found := false
			for _, got := range db.ann.ForRegion(reg, probe) {
				if got.ID == a.ID {
					found = true
					break
				}
			}
			if !found {
				rep.addf("annotation", "annotation %d (%s on %s) is not reachable through region %+v", a.ID, a.AnnTable, a.UserTable, reg)
			}
		}
	}
	return rep, nil
}

// verifyStats cross-checks a table's incrementally-maintained planner
// statistics against a from-scratch recompute: row and NULL counts must be
// exact, the widened-only range must contain the true range, and the frozen
// distinct counts must sit within the documented drift bound |Distinct -
// exact| <= Mods. Tables whose statistics were never built are skipped —
// absent statistics are a valid planner state, not a defect. Neither side of
// the comparison mutates the database (CurrentStats does not rebuild,
// ComputeStats is pure).
func (db *DB) verifyStats(rep *VerifyReport, tbl *storage.Table) {
	cur := tbl.CurrentStats()
	if cur == nil {
		return
	}
	area := "stats:" + tbl.Name()
	exact, err := tbl.ComputeStats()
	if err != nil {
		rep.addf(area, "recompute failed: %v", err)
		return
	}
	if cur.Rows != exact.Rows {
		rep.addf(area, "row count %d, exact %d", cur.Rows, exact.Rows)
	}
	if len(cur.Cols) != len(exact.Cols) {
		rep.addf(area, "%d column entries, schema has %d columns", len(cur.Cols), len(exact.Cols))
		return
	}
	for i := range cur.Cols {
		cc, ec := cur.Cols[i], exact.Cols[i]
		col := tbl.Schema().Columns[i].Name
		if cc.Nulls != ec.Nulls {
			rep.addf(area, "column %s: NULL count %d, exact %d", col, cc.Nulls, ec.Nulls)
		}
		if ec.HasRange && (!cc.HasRange || cc.Min > ec.Min || cc.Max < ec.Max) {
			rep.addf(area, "column %s: range [%v, %v] does not contain the true range [%v, %v]",
				col, cc.Min, cc.Max, ec.Min, ec.Max)
		}
		drift := cc.Distinct - ec.Distinct
		if drift < 0 {
			drift = -drift
		}
		if drift > cur.Mods {
			rep.addf(area, "column %s: distinct drift %d exceeds the mod counter %d", col, drift, cur.Mods)
		}
	}
}

// verifyManifest checks the on-disk manifest: it must parse, reference only
// pages inside the file, and not claim one page for two tables.
func (db *DB) verifyManifest(rep *VerifyReport) {
	m, err := loadManifest(db.manifestPath)
	if err != nil {
		rep.addf("manifest", "%v", err)
		return
	}
	if m == nil {
		return // no checkpoint yet: an empty WAL-only database is fine
	}
	numPages := db.eng.Pager().NumPages()
	owner := make(map[uint64]string)
	for _, mt := range m.Tables {
		for _, pg := range mt.Pages {
			if pg >= numPages {
				rep.addf("manifest", "table %s references page %d beyond the file (%d pages)", mt.Name, pg, numPages)
			}
			if prev, taken := owner[pg]; taken {
				rep.addf("manifest", "page %d is claimed by both %s and %s", pg, prev, mt.Name)
			}
			owner[pg] = mt.Name
		}
	}
	if next := db.wal.NextLSN(); m.CheckpointLSN >= next {
		rep.addf("manifest", "checkpoint LSN %d is not below the next LSN %d", m.CheckpointLSN, next)
	}
}

// Backup takes a consistent online snapshot of a durable database into
// destDir: it checkpoints with the lock manager quiesced (so the page
// file alone carries the full committed state and the WAL is empty) and
// copies the four files, fsyncing each. The copy set opens as a normal
// database — restore is `bdbms.OpenWith(DataFile: destDir/<name>)` — and
// passes Verify. Concurrent writers block for the duration; snapshot
// readers do not.
func (db *DB) Backup(destDir string) error {
	locks := db.eng.Locks()
	locks.Quiesce()
	defer locks.Resume()
	if !db.durable() || db.dataPath == "" {
		return errors.New("core: backup requires a file-backed database")
	}
	if err := db.checkpointLocked(); err != nil {
		return fmt.Errorf("core: backup checkpoint: %w", err)
	}
	if err := os.MkdirAll(destDir, 0o755); err != nil {
		return fmt.Errorf("core: backup: %w", err)
	}
	for _, src := range []string{db.dataPath, db.walPath, db.catalogPath, db.manifestPath} {
		if src == "" {
			continue
		}
		if err := copyFileSync(src, filepath.Join(destDir, filepath.Base(src))); err != nil {
			return fmt.Errorf("core: backup %s: %w", src, err)
		}
	}
	if d, err := os.Open(destDir); err == nil {
		_ = d.Sync() // best-effort: make the new directory entries durable
		d.Close()
	}
	return nil
}

// copyFileSync copies src to dst and fsyncs the copy.
func copyFileSync(src, dst string) error {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := os.OpenFile(dst, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err = io.Copy(out, in); err == nil {
		err = out.Sync()
	}
	if cerr := out.Close(); err == nil {
		err = cerr
	}
	return err
}
