// Durability: checkpointing and crash recovery.
//
// A file-backed database is three files next to each other: the page file
// (heap pages), the write-ahead log, and a checkpoint pair — the catalog
// snapshot plus a manifest tying everything together. Every mutation appends
// a logical WAL record before its in-memory apply, so the committed state is
// exactly "last checkpoint + WAL tail". A checkpoint flushes dirty pages,
// snapshots the catalog and the memory-resident structures (annotation set,
// outdated bitmaps, provenance agents, per-table page lists and counters)
// and then truncates the WAL; reopening loads the snapshot, reattaches every
// table to its heap pages, and redoes the WAL tail through idempotent
// appliers — pages may have been flushed after a record was logged (buffer
// evictions happen at any time), so replay tolerates effects that already
// reached disk.
package core

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"bdbms/internal/annotation"
	"bdbms/internal/catalog"
	"bdbms/internal/dependency"
	"bdbms/internal/pager"
	"bdbms/internal/provenance"
	"bdbms/internal/stats"
	"bdbms/internal/storage"
	"bdbms/internal/wal"
)

// manifestTable is the checkpointed storage state of one table.
type manifestTable struct {
	// Name is the table name (matches a catalog snapshot entry).
	Name string `json:"name"`
	// Pages are the heap page IDs backing the table, in file order.
	Pages []uint64 `json:"pages"`
	// NextRow is the RowID counter at checkpoint time.
	NextRow int64 `json:"next_row"`
	// Indexes are the indexed column names (the trees are rebuilt by scan).
	Indexes []string `json:"indexes,omitempty"`
	// Stats is the planner-statistics snapshot as of the checkpoint, possibly
	// drifted (checkpoints never pay for a rebuild). Absent when statistics
	// were never built.
	Stats *stats.Table `json:"stats,omitempty"`
}

// manifest is the checkpoint manifest: everything beyond heap pages and the
// catalog that reopening needs.
type manifest struct {
	// CheckpointLSN is the highest LSN covered by this checkpoint; recovery
	// replays only records with a greater LSN.
	CheckpointLSN uint64 `json:"checkpoint_lsn"`
	// NextLSN restores the WAL's LSN counter after a truncation.
	NextLSN uint64 `json:"next_lsn"`
	// Tables is the per-table storage state.
	Tables []manifestTable `json:"tables"`
	// Annotations is the full annotation set (archived included).
	Annotations []*annotation.Annotation `json:"annotations,omitempty"`
	// NextAnnotationID restores the annotation ID counter.
	NextAnnotationID int64 `json:"next_annotation_id"`
	// Outdated is the set cells of the dependency outdated bitmaps.
	Outdated []dependency.Cell `json:"outdated,omitempty"`
	// Agents are the registered provenance agents.
	Agents []string `json:"agents,omitempty"`
}

// saveManifest writes m to path atomically: temp file, fsync, rename. The
// fsync matters — the WAL is truncated right after the rename, so the
// manifest content must be on stable storage before the old recovery source
// disappears.
func saveManifest(path string, m *manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("core: encode manifest: %w", err)
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("core: write manifest: %w", err)
	}
	if _, err := f.Write(data); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("core: write manifest: %w", err)
	}
	return os.Rename(tmp, path)
}

// loadManifest reads a manifest; a missing file returns (nil, nil).
func loadManifest(path string) (*manifest, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("core: read manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("core: decode manifest %s: %w", path, err)
	}
	return &m, nil
}

// Checkpoint makes the current committed state self-contained on disk and
// truncates the WAL: dirty pages are flushed and synced, the catalog and the
// memory-resident structures are snapshotted, and only then is the log
// emptied. The engine's lock manager is quiesced — every writer drains and
// new ones wait — so a checkpoint never observes a half-applied statement.
// On a memory-backed database Checkpoint degrades to FlushAll.
func (db *DB) Checkpoint() error {
	locks := db.eng.Locks()
	locks.Quiesce()
	defer locks.Resume()
	return db.checkpointLocked()
}

// checkpointFaultHook, when set by tests, runs at the named points inside
// checkpointLocked; returning an error aborts the checkpoint right there,
// simulating a crash or EIO between two checkpoint steps. The points, in
// order: "after-flush", "after-sync", "after-catalog", "after-manifest"
// (the manifest rename — the commit point — has happened, the WAL still
// holds the tail), "after-truncate".
var checkpointFaultHook func(point string) error

func checkpointFault(point string) error {
	if checkpointFaultHook != nil {
		return checkpointFaultHook(point)
	}
	return nil
}

func (db *DB) checkpointLocked() error {
	if err := db.eng.FlushAll(); err != nil {
		return fmt.Errorf("core: checkpoint flush: %w", err)
	}
	if err := checkpointFault("after-flush"); err != nil {
		return err
	}
	if !db.durable() {
		// Memory databases still log every mutation (the WAL doubles as the
		// audit surface), so a checkpoint's job of bounding log growth
		// applies to them too — there is just no snapshot to write first.
		return db.wal.Truncate()
	}
	if err := db.eng.SyncPager(); err != nil {
		return fmt.Errorf("core: checkpoint sync: %w", err)
	}
	if err := checkpointFault("after-sync"); err != nil {
		return err
	}
	m := &manifest{
		CheckpointLSN: db.wal.NextLSN() - 1,
		NextLSN:       db.wal.NextLSN(),
	}
	for _, tbl := range db.eng.Tables() {
		mt := manifestTable{
			Name:    tbl.Name(),
			NextRow: tbl.NextRowID(),
			Indexes: tbl.IndexColumns(),
			Stats:   tbl.CurrentStats(),
		}
		for _, id := range tbl.HeapPages() {
			mt.Pages = append(mt.Pages, uint64(id))
		}
		m.Tables = append(m.Tables, mt)
	}
	m.Annotations, m.NextAnnotationID = db.ann.Snapshot()
	m.Outdated = db.dep.Snapshot()
	m.Agents = db.prov.Agents()

	if err := db.eng.Catalog().SaveFile(db.catalogPath); err != nil {
		return fmt.Errorf("core: checkpoint catalog: %w", err)
	}
	if err := checkpointFault("after-catalog"); err != nil {
		return err
	}
	// The manifest rename is the commit point: a crash before it leaves the
	// previous checkpoint plus an intact WAL; a crash after it leaves the new
	// checkpoint, and replaying the not-yet-truncated WAL is harmless because
	// recovery skips records at or below CheckpointLSN.
	if err := saveManifest(db.manifestPath, m); err != nil {
		return err
	}
	if err := checkpointFault("after-manifest"); err != nil {
		return err
	}
	// Truncate refuses on a sync-poisoned log, so a WAL whose durability is
	// in doubt is never discarded (see wal.ErrSyncPoisoned).
	if err := db.wal.Truncate(); err != nil {
		return err
	}
	if err := checkpointFault("after-truncate"); err != nil {
		return err
	}
	return db.wal.Sync()
}

// durable reports whether this database has a checkpoint location.
func (db *DB) durable() bool {
	return db.wal != nil && db.catalogPath != "" && db.manifestPath != ""
}

// recover rebuilds the database from its on-disk state: catalog + manifest
// snapshot first (when one exists), then a redo pass over the WAL tail.
// Engine logging is off for the duration so replayed mutations are not
// re-appended.
func (db *DB) recover() error {
	db.eng.SetLogging(false)
	defer db.eng.SetLogging(true)

	var ckptLSN uint64
	m, err := loadManifest(db.manifestPath)
	if err != nil {
		return err
	}
	if m != nil {
		for _, mt := range m.Tables {
			schema, err := db.eng.Catalog().Table(mt.Name)
			if errors.Is(err, catalog.ErrTableNotFound) {
				// The catalog snapshot is newer than the manifest: a crash
				// hit between the two checkpoint writes, after a DROP TABLE.
				// The drop is the committed truth, so skip the stale entry
				// (its WAL row records are skipped the same way below).
				continue
			}
			if err != nil {
				return fmt.Errorf("core: manifest table %s: %w", mt.Name, err)
			}
			pages := make([]pager.PageID, len(mt.Pages))
			for i, id := range mt.Pages {
				pages[i] = pager.PageID(id)
			}
			tbl, err := db.eng.AttachTable(schema, pages, mt.NextRow, mt.Indexes)
			if err != nil {
				return err
			}
			tbl.AdoptStats(mt.Stats)
		}
		db.ann.RestoreSnapshot(m.Annotations, m.NextAnnotationID)
		db.dep.RestoreSnapshot(m.Outdated)
		for _, agent := range m.Agents {
			db.prov.RecoverAgent(agent, true)
		}
		db.wal.EnsureNextLSN(m.NextLSN)
		ckptLSN = m.CheckpointLSN
	}

	if err := db.replayRecords(db.wal.Since(ckptLSN)); err != nil {
		return err
	}
	// WAL replay maintained the adopted statistics incrementally; rebuild any
	// that picked up mutations so a reopened database carries statistics
	// byte-equivalent to a fresh recompute.
	for _, tbl := range db.eng.Tables() {
		tbl.FreshenStats()
	}
	return nil
}

// replayRecords is the redo/undo pass over the WAL tail. Records outside a
// transaction frame are individually committed and redone in order. A frame
// (TxBegin..TxCommit/TxAbort) is replayed as a unit:
//
//   - committed frames are redone, honoring savepoint structure: records
//     discarded by a logged ROLLBACK TO SAVEPOINT (or a TxStmtAbort from a
//     failed mid-transaction statement) are not redone, and row records
//     among them are compensated from their before-images — a buffer
//     eviction may have flushed their effects before the rollback;
//   - aborted frames are undone in reverse: row records are reverted from
//     their before-images (idempotent whether or not the effect reached
//     disk), and memory-resident records (annotations, marks, agents, DDL)
//     are simply skipped — they live in the checkpoint manifest, not in
//     heap pages, so nothing of them can have leaked;
//   - an unclosed frame at the log tail — the crash hit mid-transaction —
//     is undone the same way and then truncated from the log, so the
//     reopened database appends after the committed prefix.
func (db *DB) replayRecords(recs []wal.Record) error {
	for i := 0; i < len(recs); {
		rec := recs[i]
		if rec.Kind == wal.KindTxBegin {
			end, closed, err := db.replayFrame(recs, i)
			if err != nil {
				return err
			}
			if !closed {
				// Unclosed tail frame: its effects are undone; drop its
				// records so the log holds exactly the committed state.
				// The undo so far lives only in the buffer pool, and the
				// frame's records are its ONLY recovery source — flush and
				// sync the pages BEFORE destroying it, or a second crash
				// between here and the next checkpoint would durably
				// resurrect the rolled-back rows.
				if err := db.eng.FlushAll(); err != nil {
					return fmt.Errorf("core: flush before tail truncation: %w", err)
				}
				if err := db.eng.SyncPager(); err != nil {
					return fmt.Errorf("core: sync before tail truncation: %w", err)
				}
				return db.wal.TruncateFrom(rec.LSN)
			}
			i = end
			continue
		}
		if rec.Kind.IsTxControl() {
			// A stray control record outside a frame (e.g. the TxBegin was
			// consumed by an earlier checkpoint window) carries no state.
			i++
			continue
		}
		if err := db.redoRecord(rec); err != nil {
			return err
		}
		i++
	}
	return nil
}

// frameEntry is one buffered data record of a frame being replayed, plus
// the replay decision for it.
type frameEntry struct {
	rec  wal.Record
	dead bool // discarded by a savepoint rollback or statement abort
	comp bool // synthesized compensation: apply the record's undo
}

// replayFrame replays one transaction frame starting at the TxBegin at
// recs[start]. It returns the index of the first record after the frame and
// whether the frame was closed by a TxCommit/TxAbort.
func (db *DB) replayFrame(recs []wal.Record, start int) (end int, closed bool, err error) {
	var entries []*frameEntry
	var stack []*frameEntry // live (non-dead) data records, in order
	type frameSave struct {
		name string
		mark int
	}
	var saves []frameSave
	// popTo discards the live records above mark; row records get a
	// compensation entry so effects that already reached disk are reverted.
	popTo := func(mark int) {
		if mark < 0 {
			mark = 0
		}
		for len(stack) > mark {
			e := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			e.dead = true
			if isRowKind(e.rec.Kind) {
				entries = append(entries, &frameEntry{rec: e.rec, comp: true})
			}
		}
	}

	i := start + 1
	for ; i < len(recs); i++ {
		rec := recs[i]
		switch rec.Kind {
		case wal.KindTxCommit:
			for _, e := range entries {
				switch {
				case e.comp:
					if err := db.undoRecord(e.rec); err != nil {
						return 0, false, fmt.Errorf("core: compensate LSN %d (%s %s): %w", e.rec.LSN, e.rec.Kind, e.rec.Table, err)
					}
				case !e.dead:
					if err := db.redoRecord(e.rec); err != nil {
						return 0, false, err
					}
				}
			}
			return i + 1, true, nil
		case wal.KindTxAbort:
			if err := db.undoFrame(recs[start+1 : i]); err != nil {
				return 0, false, err
			}
			return i + 1, true, nil
		case wal.KindTxBegin:
			// A new frame opening inside this one means this frame's abort
			// marker was lost (the append failed along with the commit).
			// Frames never nest live, so the open frame is implicitly
			// aborted: undo it and let the caller restart at the new TxBegin.
			if err := db.undoFrame(recs[start+1 : i]); err != nil {
				return 0, false, err
			}
			return i, true, nil
		case wal.KindTxSavepoint:
			saves = append(saves, frameSave{name: string(rec.Payload), mark: len(stack)})
		case wal.KindTxRollbackTo:
			name := string(rec.Payload)
			idx := -1
			for j := len(saves) - 1; j >= 0; j-- {
				if saves[j].name == name {
					idx = j
					break
				}
			}
			if idx < 0 {
				return 0, false, fmt.Errorf("core: replay LSN %d: unknown savepoint %q", rec.LSN, name)
			}
			popTo(saves[idx].mark)
			saves = saves[:idx+1]
		case wal.KindTxStmtAbort:
			n, ok := binary.Uvarint(rec.Payload)
			if ok <= 0 || n > uint64(len(stack)) {
				return 0, false, fmt.Errorf("core: replay LSN %d: bad statement-abort count", rec.LSN)
			}
			popTo(len(stack) - int(n))
		default:
			e := &frameEntry{rec: rec}
			entries = append(entries, e)
			stack = append(stack, e)
		}
	}
	// The frame never closed: the crash hit mid-transaction. Undo whatever
	// may have reached disk; the caller truncates the records.
	if err := db.undoFrame(recs[start+1:]); err != nil {
		return 0, false, err
	}
	return i, false, nil
}

// undoFrame reverts an aborted or unclosed frame: its row records are
// undone from their before-images, newest first. Undoing every row record —
// including ones a savepoint rollback already reverted live — is safe: each
// undo overwrites the row with its before-image, and walking backwards ends
// at the pre-transaction values.
func (db *DB) undoFrame(frame []wal.Record) error {
	for i := len(frame) - 1; i >= 0; i-- {
		if err := db.undoRecord(frame[i]); err != nil {
			return fmt.Errorf("core: undo LSN %d (%s %s): %w", frame[i].LSN, frame[i].Kind, frame[i].Table, err)
		}
	}
	return nil
}

// redoRecord applies one committed record, tolerating records whose table
// did not survive recovery.
func (db *DB) redoRecord(rec wal.Record) error {
	err := db.applyRecord(rec)
	if errors.Is(err, catalog.ErrTableNotFound) {
		// Redo is tolerant of records for tables that do not survive
		// recovery: a table dropped in the replayed window (or dropped
		// right before a crash-torn checkpoint) leaves earlier row
		// records with nowhere to apply, and their effects are moot.
		return nil
	}
	if err != nil {
		return fmt.Errorf("core: replay LSN %d (%s %s): %w", rec.LSN, rec.Kind, rec.Table, err)
	}
	return nil
}

// isRowKind reports whether the record mutates heap rows — the only record
// class whose effects can reach disk (through buffer evictions) before its
// transaction commits, and therefore the only class needing compensation.
// Everything else (annotations, outdated marks, agents, catalog DDL) is
// memory-resident and persists only through checkpoint snapshots, which
// never run mid-transaction.
func isRowKind(k wal.Kind) bool {
	return k == wal.KindInsert || k == wal.KindUpdate || k == wal.KindDelete
}

// undoRecord reverts the effect of one row record from the before-image its
// payload carries. It is idempotent and tolerant: a missing table (created
// by the same doomed transaction) or an effect that never reached disk
// leaves state unchanged. Non-row records are no-ops here.
func (db *DB) undoRecord(rec wal.Record) error {
	if !isRowKind(rec.Kind) {
		return nil
	}
	tbl, err := db.eng.Table(rec.Table)
	if errors.Is(err, catalog.ErrTableNotFound) {
		return nil
	}
	if err != nil {
		return err
	}
	switch rec.Kind {
	case wal.KindInsert:
		rowID, _, err := storage.DecodeStoredRow(rec.Payload)
		if err != nil {
			return err
		}
		return tbl.RecoverDelete(rowID)
	case wal.KindUpdate:
		rowID, oldRow, _, err := storage.DecodeUpdatePayload(rec.Payload)
		if err != nil {
			return err
		}
		return tbl.RecoverUpdate(rowID, oldRow)
	case wal.KindDelete:
		rowID, oldRow, err := storage.DecodeStoredRow(rec.Payload)
		if err != nil {
			return err
		}
		return tbl.RecoverInsert(rowID, oldRow)
	}
	return nil
}

// applyRecord redoes one logical WAL record.
func (db *DB) applyRecord(rec wal.Record) error {
	switch rec.Kind {
	case wal.KindCreateTable:
		var schema catalog.Schema
		if err := json.Unmarshal(rec.Payload, &schema); err != nil {
			return err
		}
		_, err := db.eng.RecoverCreateTable(&schema)
		return err
	case wal.KindDropTable:
		return db.eng.RecoverDropTable(rec.Table)
	case wal.KindCreateIndex:
		tbl, err := db.eng.Table(rec.Table)
		if err != nil {
			return err
		}
		return tbl.CreateIndex(string(rec.Payload))
	case wal.KindInsert:
		tbl, err := db.eng.Table(rec.Table)
		if err != nil {
			return err
		}
		rowID, row, err := storage.DecodeStoredRow(rec.Payload)
		if err != nil {
			return err
		}
		return tbl.RecoverInsert(rowID, row)
	case wal.KindUpdate:
		tbl, err := db.eng.Table(rec.Table)
		if err != nil {
			return err
		}
		rowID, _, newRow, err := storage.DecodeUpdatePayload(rec.Payload)
		if err != nil {
			return err
		}
		return tbl.RecoverUpdate(rowID, newRow)
	case wal.KindDelete:
		tbl, err := db.eng.Table(rec.Table)
		if err != nil {
			return err
		}
		rowID, _, err := storage.DecodeStoredRow(rec.Payload)
		if err != nil {
			return err
		}
		return tbl.RecoverDelete(rowID)
	case wal.KindAnnotation:
		a, err := annotation.DecodeAnnotationPayload(rec.Payload)
		if err != nil {
			return err
		}
		db.ann.RecoverAnnotation(a)
		return nil
	case wal.KindAnnArchive:
		ids, archived, at, err := annotation.DecodeArchivePayload(rec.Payload)
		if err != nil {
			return err
		}
		db.ann.RecoverArchive(ids, archived, at)
		return nil
	case wal.KindCreateAnnTable:
		var def catalog.AnnotationTable
		if err := json.Unmarshal(rec.Payload, &def); err != nil {
			return err
		}
		return db.ann.RecoverCreateAnnotationTable(&def)
	case wal.KindDropAnnTable:
		var def catalog.AnnotationTable
		if err := json.Unmarshal(rec.Payload, &def); err != nil {
			return err
		}
		return db.ann.RecoverDropAnnotationTable(def.UserTable, def.Name)
	case wal.KindDepMark:
		table, rowID, col, set, err := dependency.DecodeMarkPayload(rec.Payload)
		if err != nil {
			return err
		}
		db.dep.RecoverMark(table, rowID, col, set)
		return nil
	case wal.KindProvAgent:
		name, register, err := provenance.DecodeAgentPayload(rec.Payload)
		if err != nil {
			return err
		}
		db.prov.RecoverAgent(name, register)
		return nil
	case wal.KindApproval, wal.KindCheckpoint:
		// Approval workflow state is session-scoped (see the package docs of
		// bdbms); its log records are audit-only.
		return nil
	default:
		return fmt.Errorf("unknown record kind %d", rec.Kind)
	}
}
