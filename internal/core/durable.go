// Durability: checkpointing and crash recovery.
//
// A file-backed database is three files next to each other: the page file
// (heap pages), the write-ahead log, and a checkpoint pair — the catalog
// snapshot plus a manifest tying everything together. Every mutation appends
// a logical WAL record before its in-memory apply, so the committed state is
// exactly "last checkpoint + WAL tail". A checkpoint flushes dirty pages,
// snapshots the catalog and the memory-resident structures (annotation set,
// outdated bitmaps, provenance agents, per-table page lists and counters)
// and then truncates the WAL; reopening loads the snapshot, reattaches every
// table to its heap pages, and redoes the WAL tail through idempotent
// appliers — pages may have been flushed after a record was logged (buffer
// evictions happen at any time), so replay tolerates effects that already
// reached disk.
package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"bdbms/internal/annotation"
	"bdbms/internal/catalog"
	"bdbms/internal/dependency"
	"bdbms/internal/pager"
	"bdbms/internal/provenance"
	"bdbms/internal/storage"
	"bdbms/internal/wal"
)

// manifestTable is the checkpointed storage state of one table.
type manifestTable struct {
	// Name is the table name (matches a catalog snapshot entry).
	Name string `json:"name"`
	// Pages are the heap page IDs backing the table, in file order.
	Pages []uint64 `json:"pages"`
	// NextRow is the RowID counter at checkpoint time.
	NextRow int64 `json:"next_row"`
	// Indexes are the indexed column names (the trees are rebuilt by scan).
	Indexes []string `json:"indexes,omitempty"`
}

// manifest is the checkpoint manifest: everything beyond heap pages and the
// catalog that reopening needs.
type manifest struct {
	// CheckpointLSN is the highest LSN covered by this checkpoint; recovery
	// replays only records with a greater LSN.
	CheckpointLSN uint64 `json:"checkpoint_lsn"`
	// NextLSN restores the WAL's LSN counter after a truncation.
	NextLSN uint64 `json:"next_lsn"`
	// Tables is the per-table storage state.
	Tables []manifestTable `json:"tables"`
	// Annotations is the full annotation set (archived included).
	Annotations []*annotation.Annotation `json:"annotations,omitempty"`
	// NextAnnotationID restores the annotation ID counter.
	NextAnnotationID int64 `json:"next_annotation_id"`
	// Outdated is the set cells of the dependency outdated bitmaps.
	Outdated []dependency.Cell `json:"outdated,omitempty"`
	// Agents are the registered provenance agents.
	Agents []string `json:"agents,omitempty"`
}

// saveManifest writes m to path atomically: temp file, fsync, rename. The
// fsync matters — the WAL is truncated right after the rename, so the
// manifest content must be on stable storage before the old recovery source
// disappears.
func saveManifest(path string, m *manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("core: encode manifest: %w", err)
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("core: write manifest: %w", err)
	}
	if _, err := f.Write(data); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("core: write manifest: %w", err)
	}
	return os.Rename(tmp, path)
}

// loadManifest reads a manifest; a missing file returns (nil, nil).
func loadManifest(path string) (*manifest, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("core: read manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("core: decode manifest %s: %w", path, err)
	}
	return &m, nil
}

// Checkpoint makes the current committed state self-contained on disk and
// truncates the WAL: dirty pages are flushed and synced, the catalog and the
// memory-resident structures are snapshotted, and only then is the log
// emptied. The statement lock is taken exclusively, so a checkpoint never
// observes a half-applied statement. On a memory-backed database Checkpoint
// degrades to FlushAll.
func (db *DB) Checkpoint() error {
	db.stmtMu.Lock()
	defer db.stmtMu.Unlock()
	return db.checkpointLocked()
}

func (db *DB) checkpointLocked() error {
	if err := db.eng.FlushAll(); err != nil {
		return fmt.Errorf("core: checkpoint flush: %w", err)
	}
	if !db.durable() {
		// Memory databases still log every mutation (the WAL doubles as the
		// audit surface), so a checkpoint's job of bounding log growth
		// applies to them too — there is just no snapshot to write first.
		return db.wal.Truncate()
	}
	if err := db.eng.SyncPager(); err != nil {
		return fmt.Errorf("core: checkpoint sync: %w", err)
	}
	m := &manifest{
		CheckpointLSN: db.wal.NextLSN() - 1,
		NextLSN:       db.wal.NextLSN(),
	}
	for _, tbl := range db.eng.Tables() {
		mt := manifestTable{
			Name:    tbl.Name(),
			NextRow: tbl.NextRowID(),
			Indexes: tbl.IndexColumns(),
		}
		for _, id := range tbl.HeapPages() {
			mt.Pages = append(mt.Pages, uint64(id))
		}
		m.Tables = append(m.Tables, mt)
	}
	m.Annotations, m.NextAnnotationID = db.ann.Snapshot()
	m.Outdated = db.dep.Snapshot()
	m.Agents = db.prov.Agents()

	if err := db.eng.Catalog().SaveFile(db.catalogPath); err != nil {
		return fmt.Errorf("core: checkpoint catalog: %w", err)
	}
	// The manifest rename is the commit point: a crash before it leaves the
	// previous checkpoint plus an intact WAL; a crash after it leaves the new
	// checkpoint, and replaying the not-yet-truncated WAL is harmless because
	// recovery skips records at or below CheckpointLSN.
	if err := saveManifest(db.manifestPath, m); err != nil {
		return err
	}
	if err := db.wal.Truncate(); err != nil {
		return err
	}
	return db.wal.Sync()
}

// durable reports whether this database has a checkpoint location.
func (db *DB) durable() bool {
	return db.wal != nil && db.catalogPath != "" && db.manifestPath != ""
}

// recover rebuilds the database from its on-disk state: catalog + manifest
// snapshot first (when one exists), then a redo pass over the WAL tail.
// Engine logging is off for the duration so replayed mutations are not
// re-appended.
func (db *DB) recover() error {
	db.eng.SetLogging(false)
	defer db.eng.SetLogging(true)

	var ckptLSN uint64
	m, err := loadManifest(db.manifestPath)
	if err != nil {
		return err
	}
	if m != nil {
		for _, mt := range m.Tables {
			schema, err := db.eng.Catalog().Table(mt.Name)
			if errors.Is(err, catalog.ErrTableNotFound) {
				// The catalog snapshot is newer than the manifest: a crash
				// hit between the two checkpoint writes, after a DROP TABLE.
				// The drop is the committed truth, so skip the stale entry
				// (its WAL row records are skipped the same way below).
				continue
			}
			if err != nil {
				return fmt.Errorf("core: manifest table %s: %w", mt.Name, err)
			}
			pages := make([]pager.PageID, len(mt.Pages))
			for i, id := range mt.Pages {
				pages[i] = pager.PageID(id)
			}
			if _, err := db.eng.AttachTable(schema, pages, mt.NextRow, mt.Indexes); err != nil {
				return err
			}
		}
		db.ann.RestoreSnapshot(m.Annotations, m.NextAnnotationID)
		db.dep.RestoreSnapshot(m.Outdated)
		for _, agent := range m.Agents {
			db.prov.RecoverAgent(agent, true)
		}
		db.wal.EnsureNextLSN(m.NextLSN)
		ckptLSN = m.CheckpointLSN
	}

	for _, rec := range db.wal.Since(ckptLSN) {
		err := db.applyRecord(rec)
		if errors.Is(err, catalog.ErrTableNotFound) {
			// Redo is tolerant of records for tables that do not survive
			// recovery: a table dropped in the replayed window (or dropped
			// right before a crash-torn checkpoint) leaves earlier row
			// records with nowhere to apply, and their effects are moot.
			continue
		}
		if err != nil {
			return fmt.Errorf("core: replay LSN %d (%s %s): %w", rec.LSN, rec.Kind, rec.Table, err)
		}
	}
	return nil
}

// applyRecord redoes one logical WAL record.
func (db *DB) applyRecord(rec wal.Record) error {
	switch rec.Kind {
	case wal.KindCreateTable:
		var schema catalog.Schema
		if err := json.Unmarshal(rec.Payload, &schema); err != nil {
			return err
		}
		_, err := db.eng.RecoverCreateTable(&schema)
		return err
	case wal.KindDropTable:
		return db.eng.RecoverDropTable(rec.Table)
	case wal.KindCreateIndex:
		tbl, err := db.eng.Table(rec.Table)
		if err != nil {
			return err
		}
		return tbl.CreateIndex(string(rec.Payload))
	case wal.KindInsert:
		tbl, err := db.eng.Table(rec.Table)
		if err != nil {
			return err
		}
		rowID, row, err := storage.DecodeStoredRow(rec.Payload)
		if err != nil {
			return err
		}
		return tbl.RecoverInsert(rowID, row)
	case wal.KindUpdate:
		tbl, err := db.eng.Table(rec.Table)
		if err != nil {
			return err
		}
		rowID, row, err := storage.DecodeStoredRow(rec.Payload)
		if err != nil {
			return err
		}
		return tbl.RecoverUpdate(rowID, row)
	case wal.KindDelete:
		tbl, err := db.eng.Table(rec.Table)
		if err != nil {
			return err
		}
		rowID, _, err := storage.DecodeStoredRow(rec.Payload)
		if err != nil {
			return err
		}
		return tbl.RecoverDelete(rowID)
	case wal.KindAnnotation:
		a, err := annotation.DecodeAnnotationPayload(rec.Payload)
		if err != nil {
			return err
		}
		db.ann.RecoverAnnotation(a)
		return nil
	case wal.KindAnnArchive:
		ids, archived, at, err := annotation.DecodeArchivePayload(rec.Payload)
		if err != nil {
			return err
		}
		db.ann.RecoverArchive(ids, archived, at)
		return nil
	case wal.KindCreateAnnTable:
		var def catalog.AnnotationTable
		if err := json.Unmarshal(rec.Payload, &def); err != nil {
			return err
		}
		return db.ann.RecoverCreateAnnotationTable(&def)
	case wal.KindDropAnnTable:
		var def catalog.AnnotationTable
		if err := json.Unmarshal(rec.Payload, &def); err != nil {
			return err
		}
		return db.ann.RecoverDropAnnotationTable(def.UserTable, def.Name)
	case wal.KindDepMark:
		table, rowID, col, set, err := dependency.DecodeMarkPayload(rec.Payload)
		if err != nil {
			return err
		}
		db.dep.RecoverMark(table, rowID, col, set)
		return nil
	case wal.KindProvAgent:
		name, register, err := provenance.DecodeAgentPayload(rec.Payload)
		if err != nil {
			return err
		}
		db.prov.RecoverAgent(name, register)
		return nil
	case wal.KindApproval, wal.KindCheckpoint:
		// Approval workflow state is session-scoped (see the package docs of
		// bdbms); its log records are audit-only.
		return nil
	default:
		return fmt.Errorf("unknown record kind %d", rec.Kind)
	}
}
