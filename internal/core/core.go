// Package core wires the bdbms subsystems — the storage engine, the
// annotation, provenance, dependency and authorization managers, and the
// A-SQL executor — into a single database object. The public root package
// bdbms is a thin facade over this package.
package core

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"

	"bdbms/internal/annotation"
	"bdbms/internal/authz"
	"bdbms/internal/catalog"
	"bdbms/internal/dependency"
	"bdbms/internal/exec"
	"bdbms/internal/pager"
	"bdbms/internal/provenance"
	"bdbms/internal/storage"
	"bdbms/internal/wal"
)

// Options configures a database instance.
type Options struct {
	// Pager is the backing page store; nil means in-memory.
	Pager pager.Pager
	// PoolSize is the buffer pool capacity in pages; <= 0 uses the default.
	PoolSize int
	// AnnotationStore selects the annotation storage scheme; nil means the
	// compact rectangle scheme.
	AnnotationStore annotation.Store
	// EnforceAuth enables GRANT/REVOKE checks on sessions by default.
	EnforceAuth bool
	// SpillBudget bounds, in bytes, the resident working set of each
	// blocking query operator (grouped aggregation, DISTINCT, UNION,
	// external sort) before it spills to a temp file; 0 uses the executor
	// default.
	SpillBudget int
	// SyncOnCommit makes every commit wait for the WAL to be fsynced
	// through its last record before returning, upgrading durability from
	// at-last-checkpoint to at-commit. Concurrent commits share one fsync
	// (group commit). Off by default: the baseline contract is that a crash
	// loses at most the work since the last checkpoint.
	SyncOnCommit bool
	// WAL is the write-ahead log; nil means a fresh in-memory log.
	WAL *wal.Log
	// CatalogPath is where checkpoints snapshot the catalog. Together with
	// ManifestPath and a file-backed WAL it makes the database durable:
	// Open recovers from these files and Checkpoint/Close update them.
	CatalogPath string
	// ManifestPath is where checkpoints write the recovery manifest.
	ManifestPath string
	// DataPath is the path of the file behind Pager, when file-backed.
	// Backup copies the file by this path; Verify names it in reports.
	DataPath string
	// WALPath is the path of the file behind WAL, when file-backed.
	// Backup copies the log by this path.
	WALPath string
}

// DB is an open bdbms database.
type DB struct {
	eng  *storage.Engine
	ann  *annotation.Manager
	prov *provenance.Manager
	dep  *dependency.Manager
	auth *authz.Manager
	opts Options
	// wal is the engine's write-ahead log (shared with eng).
	wal *wal.Log
	// catalogPath / manifestPath locate the checkpoint files ("" = memory);
	// dataPath / walPath locate the page file and the log for Backup.
	catalogPath  string
	manifestPath string
	dataPath     string
	walPath      string
	// openTxMu guards openTxs, the transactions currently open across every
	// session of this database. Close rolls them back before checkpointing
	// — a leaked transaction holds per-table write latches, and the
	// checkpoint's quiesce would deadlock on them forever otherwise.
	openTxMu sync.Mutex
	openTxs  map[*exec.Tx]struct{}
}

// trackTx / untrackTx are the transaction-lifecycle hooks wired into every
// session.
func (db *DB) trackTx(tx *exec.Tx) {
	db.openTxMu.Lock()
	db.openTxs[tx] = struct{}{}
	db.openTxMu.Unlock()
}

func (db *DB) untrackTx(tx *exec.Tx) {
	db.openTxMu.Lock()
	delete(db.openTxs, tx)
	db.openTxMu.Unlock()
}

// leakedTxs snapshots the currently open transactions.
func (db *DB) leakedTxs() []*exec.Tx {
	db.openTxMu.Lock()
	defer db.openTxMu.Unlock()
	out := make([]*exec.Tx, 0, len(db.openTxs))
	for tx := range db.openTxs {
		out = append(out, tx)
	}
	return out
}

// resolver adapts the storage engine to annotation.TableResolver.
type resolver struct{ eng *storage.Engine }

// ColumnCount implements annotation.TableResolver.
func (r resolver) ColumnCount(table string) (int, error) {
	tbl, err := r.eng.Table(table)
	if err != nil {
		return 0, err
	}
	return len(tbl.Schema().Columns), nil
}

// MaxRowID implements annotation.TableResolver.
func (r resolver) MaxRowID(table string) (int64, error) {
	tbl, err := r.eng.Table(table)
	if err != nil {
		return 0, err
	}
	return tbl.NextRowID() - 1, nil
}

// Open creates a database with the given options. When the options name a
// write-ahead log and checkpoint files (a durable database), the on-disk
// state is recovered before the database is handed out: the catalog and
// manifest snapshots are loaded, every table is reattached to its heap
// pages, and the WAL tail is replayed to the exact committed pre-crash
// state.
func Open(opts Options) (*DB, error) {
	log := opts.WAL
	if log == nil {
		log = wal.NewMemory()
	}
	log.SetSyncOnCommit(opts.SyncOnCommit)
	cat := catalog.New()
	durable := opts.WAL != nil && opts.CatalogPath != "" && opts.ManifestPath != ""
	if durable {
		if loaded, err := catalog.LoadFile(opts.CatalogPath); err == nil {
			cat = loaded
		} else if !errors.Is(err, os.ErrNotExist) {
			return nil, err
		}
	}
	eng := storage.NewEngine(storage.Config{
		Pager:    opts.Pager,
		PoolSize: opts.PoolSize,
		Catalog:  cat,
		Log:      log,
	})
	var annOpts []annotation.Option
	if opts.AnnotationStore != nil {
		annOpts = append(annOpts, annotation.WithStore(opts.AnnotationStore))
	}
	ann := annotation.NewManager(eng.Catalog(), resolver{eng: eng}, annOpts...)
	db := &DB{
		eng:     eng,
		ann:     ann,
		prov:    provenance.NewManager(ann),
		dep:     dependency.NewManager(eng),
		auth:    authz.NewManager(eng),
		opts:    opts,
		wal:     log,
		openTxs: make(map[*exec.Tx]struct{}),
	}
	if durable {
		db.catalogPath = opts.CatalogPath
		db.manifestPath = opts.ManifestPath
		db.dataPath = opts.DataPath
		db.walPath = opts.WALPath
		if err := db.recover(); err != nil {
			return nil, err
		}
	}
	// Wire the managers to the log only after recovery, so replayed
	// mutations are not re-appended.
	db.ann.SetLogger(log)
	db.dep.SetLogger(log)
	db.prov.SetLogger(log)
	return db, nil
}

// MustOpen is Open for callers that cannot hit a recovery error, i.e. every
// memory-backed configuration; it panics on error.
func MustOpen(opts Options) *DB {
	db, err := Open(opts)
	if err != nil {
		panic(fmt.Sprintf("core: open: %v", err))
	}
	return db
}

// Storage returns the storage engine.
func (db *DB) Storage() *storage.Engine { return db.eng }

// Annotations returns the annotation manager.
func (db *DB) Annotations() *annotation.Manager { return db.ann }

// Provenance returns the provenance manager.
func (db *DB) Provenance() *provenance.Manager { return db.prov }

// Dependencies returns the dependency manager.
func (db *DB) Dependencies() *dependency.Manager { return db.dep }

// Authorization returns the authorization manager.
func (db *DB) Authorization() *authz.Manager { return db.auth }

// Session creates an A-SQL execution session for the given user. Sessions
// of one DB run concurrently from multiple goroutines: SELECT cursors read
// MVCC snapshots without locking, and mutating statements coordinate
// through the engine's per-table write latches.
func (db *DB) Session(user string) *exec.Session {
	return &exec.Session{
		Eng:         db.eng,
		Ann:         db.ann,
		Prov:        db.prov,
		Dep:         db.dep,
		Auth:        db.auth,
		User:        user,
		EnforceAuth: db.opts.EnforceAuth,
		SpillBudget: db.opts.SpillBudget,
		OnTxBegin:   db.trackTx,
		OnTxEnd:     db.untrackTx,
	}
}

// Exec runs a single statement as the built-in admin user.
func (db *DB) Exec(sql string) (*exec.Result, error) {
	return db.Session("admin").Exec(sql)
}

// ExecAll runs a semicolon-separated script as the built-in admin user.
func (db *DB) ExecAll(sql string) ([]*exec.Result, error) {
	return db.Session("admin").ExecAll(sql)
}

// Query runs one statement as the built-in admin user and returns a cursor
// over its result; SELECTs of streamable shape are served lazily.
func (db *DB) Query(ctx context.Context, sql string, args ...any) (*exec.Rows, error) {
	return db.Session("admin").Query(ctx, sql, args...)
}

// Prepare parses (and for streamable SELECTs, plans) a statement once for
// repeated execution as the built-in admin user.
func (db *DB) Prepare(sql string) (*exec.Stmt, error) {
	return db.Session("admin").Prepare(sql)
}

// Begin opens an explicit multi-statement transaction as the built-in admin
// user. The transaction accumulates per-table write latches statement by
// statement and holds them until Commit or Rollback; canceling ctx rolls an
// abandoned transaction back, latches released.
func (db *DB) Begin(ctx context.Context) (*exec.Tx, error) {
	return db.Session("admin").Begin(ctx)
}

// Close checkpoints the database (flush + catalog/manifest snapshot + WAL
// truncation for durable databases, a plain flush otherwise). Transactions
// still open at Close — typically leaked on an error path without
// Commit/Rollback — are rolled back first: they hold write latches, and
// the checkpoint's quiesce would otherwise block on them forever.
// The pager and the WAL are owned by the caller when supplied in Options.
func (db *DB) Close() error {
	for _, tx := range db.leakedTxs() {
		// ErrTxDone when the transaction raced Close with its own ending.
		_ = tx.Rollback()
	}
	if err := db.Checkpoint(); err != nil {
		return fmt.Errorf("core: checkpoint on close: %w", err)
	}
	return nil
}
