// Package core wires the bdbms subsystems — the storage engine, the
// annotation, provenance, dependency and authorization managers, and the
// A-SQL executor — into a single database object. The public root package
// bdbms is a thin facade over this package.
package core

import (
	"context"
	"fmt"
	"sync"

	"bdbms/internal/annotation"
	"bdbms/internal/authz"
	"bdbms/internal/dependency"
	"bdbms/internal/exec"
	"bdbms/internal/pager"
	"bdbms/internal/provenance"
	"bdbms/internal/storage"
)

// Options configures a database instance.
type Options struct {
	// Pager is the backing page store; nil means in-memory.
	Pager pager.Pager
	// PoolSize is the buffer pool capacity in pages; <= 0 uses the default.
	PoolSize int
	// AnnotationStore selects the annotation storage scheme; nil means the
	// compact rectangle scheme.
	AnnotationStore annotation.Store
	// EnforceAuth enables GRANT/REVOKE checks on sessions by default.
	EnforceAuth bool
}

// DB is an open bdbms database.
type DB struct {
	eng  *storage.Engine
	ann  *annotation.Manager
	prov *provenance.Manager
	dep  *dependency.Manager
	auth *authz.Manager
	opts Options
	// stmtMu is the engine-wide statement lock shared by every session:
	// SELECTs take it shared (and a streaming cursor holds it until closed),
	// mutating statements take it exclusive. This is what makes concurrent
	// sessions safe.
	stmtMu sync.RWMutex
}

// resolver adapts the storage engine to annotation.TableResolver.
type resolver struct{ eng *storage.Engine }

// ColumnCount implements annotation.TableResolver.
func (r resolver) ColumnCount(table string) (int, error) {
	tbl, err := r.eng.Table(table)
	if err != nil {
		return 0, err
	}
	return len(tbl.Schema().Columns), nil
}

// MaxRowID implements annotation.TableResolver.
func (r resolver) MaxRowID(table string) (int64, error) {
	tbl, err := r.eng.Table(table)
	if err != nil {
		return 0, err
	}
	return tbl.NextRowID() - 1, nil
}

// Open creates a database with the given options.
func Open(opts Options) *DB {
	eng := storage.NewEngine(storage.Config{Pager: opts.Pager, PoolSize: opts.PoolSize})
	var annOpts []annotation.Option
	if opts.AnnotationStore != nil {
		annOpts = append(annOpts, annotation.WithStore(opts.AnnotationStore))
	}
	ann := annotation.NewManager(eng.Catalog(), resolver{eng: eng}, annOpts...)
	db := &DB{
		eng:  eng,
		ann:  ann,
		prov: provenance.NewManager(ann),
		dep:  dependency.NewManager(eng),
		auth: authz.NewManager(eng),
		opts: opts,
	}
	return db
}

// Storage returns the storage engine.
func (db *DB) Storage() *storage.Engine { return db.eng }

// Annotations returns the annotation manager.
func (db *DB) Annotations() *annotation.Manager { return db.ann }

// Provenance returns the provenance manager.
func (db *DB) Provenance() *provenance.Manager { return db.prov }

// Dependencies returns the dependency manager.
func (db *DB) Dependencies() *dependency.Manager { return db.dep }

// Authorization returns the authorization manager.
func (db *DB) Authorization() *authz.Manager { return db.auth }

// Session creates an A-SQL execution session for the given user. Every
// session shares the database's statement lock, so sessions of one DB may
// run concurrently from multiple goroutines.
func (db *DB) Session(user string) *exec.Session {
	return &exec.Session{
		Eng:         db.eng,
		Ann:         db.ann,
		Prov:        db.prov,
		Dep:         db.dep,
		Auth:        db.auth,
		User:        user,
		EnforceAuth: db.opts.EnforceAuth,
		Mu:          &db.stmtMu,
	}
}

// Exec runs a single statement as the built-in admin user.
func (db *DB) Exec(sql string) (*exec.Result, error) {
	return db.Session("admin").Exec(sql)
}

// ExecAll runs a semicolon-separated script as the built-in admin user.
func (db *DB) ExecAll(sql string) ([]*exec.Result, error) {
	return db.Session("admin").ExecAll(sql)
}

// Query runs one statement as the built-in admin user and returns a cursor
// over its result; SELECTs of streamable shape are served lazily.
func (db *DB) Query(ctx context.Context, sql string, args ...any) (*exec.Rows, error) {
	return db.Session("admin").Query(ctx, sql, args...)
}

// Prepare parses (and for streamable SELECTs, plans) a statement once for
// repeated execution as the built-in admin user.
func (db *DB) Prepare(sql string) (*exec.Stmt, error) {
	return db.Session("admin").Prepare(sql)
}

// Close flushes buffered pages. The pager itself is owned by the caller when
// one was supplied in Options.
func (db *DB) Close() error {
	if err := db.eng.FlushAll(); err != nil {
		return fmt.Errorf("core: flush on close: %w", err)
	}
	return nil
}
