package core

import (
	"fmt"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"bdbms/internal/annotation"
	"bdbms/internal/dependency"
	"bdbms/internal/exec"
	"bdbms/internal/pager"
	"bdbms/internal/provenance"
	"bdbms/internal/value"
	"bdbms/internal/wal"
)

// durableDB bundles a durable core DB with the file handles a real process
// would own, so tests can simulate a crash (drop everything without
// checkpointing) or a clean shutdown.
type durableDB struct {
	*DB
	pgr  *pager.FilePager
	wlog *wal.Log
}

// openDurable opens (or reopens) the durable database living in dir.
func openDurable(t *testing.T, dir string, poolSize int) *durableDB {
	t.Helper()
	db, err := tryOpenDurable(dir, poolSize)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func tryOpenDurable(dir string, poolSize int) (*durableDB, error) {
	dataFile := filepath.Join(dir, "data.db")
	pgr, err := pager.OpenFile(dataFile)
	if err != nil {
		return nil, err
	}
	wlog, err := wal.Open(dataFile + ".wal")
	if err != nil {
		pgr.Close()
		return nil, err
	}
	db, err := Open(Options{
		Pager:        pgr,
		PoolSize:     poolSize,
		WAL:          wlog,
		CatalogPath:  dataFile + ".catalog",
		ManifestPath: dataFile + ".manifest",
		DataPath:     dataFile,
		WALPath:      dataFile + ".wal",
	})
	if err != nil {
		wlog.Close()
		pgr.Close()
		return nil, err
	}
	return &durableDB{DB: db, pgr: pgr, wlog: wlog}, nil
}

// crash abandons the database without checkpointing: buffered state is
// dropped on the floor and only the file handles are released, exactly what
// a killed process leaves behind.
func (d *durableDB) crash() {
	d.wlog.Close()
	d.pgr.Close()
}

// shutdown closes the database cleanly (checkpoint + close files).
func (d *durableDB) shutdown(t *testing.T) {
	t.Helper()
	if err := d.DB.Close(); err != nil {
		t.Fatal(err)
	}
	d.wlog.Close()
	d.pgr.Close()
}

// timeRe matches the wall-clock element of provenance bodies; the oracle
// database runs at a different instant, so comparisons normalize it away.
// (The recovered database preserves the ORIGINAL timestamp — replay carries
// it in the WAL record — which is exactly why it differs from the oracle's.)
var timeRe = regexp.MustCompile(`<Time>[^<]*</Time>`)

func normalizeBody(s string) string { return timeRe.ReplaceAllString(s, "<Time/>") }

// dbDump is a canonical rendering of everything durability must preserve.
type dbDump struct {
	tables    map[string]map[int64]string // table -> rowID -> row values
	indexes   map[string][]string         // table -> indexed columns
	annTables map[string][]string         // user table -> annotation table defs
	anns      []string                    // canonical annotation records
	outdated  []dependency.Cell
	agents    []string
}

func dumpDB(t *testing.T, db *DB) *dbDump {
	t.Helper()
	d := &dbDump{
		tables:    map[string]map[int64]string{},
		indexes:   map[string][]string{},
		annTables: map[string][]string{},
		agents:    db.Provenance().Agents(),
		outdated:  db.Dependencies().OutdatedCells(),
	}
	for _, tbl := range db.Storage().Tables() {
		name := strings.ToLower(tbl.Name())
		rows := map[int64]string{}
		err := tbl.Scan(func(rowID int64, row value.Row) bool {
			parts := make([]string, len(row))
			for i, v := range row {
				parts[i] = v.String()
			}
			rows[rowID] = strings.Join(parts, "|")
			return true
		})
		if err != nil {
			t.Fatalf("scan %s: %v", tbl.Name(), err)
		}
		d.tables[name] = rows
		d.indexes[name] = tbl.IndexColumns()
		for _, def := range db.Storage().Catalog().AnnotationTables(tbl.Name()) {
			d.annTables[name] = append(d.annTables[name],
				fmt.Sprintf("%s|%s|%v", strings.ToLower(def.Name), def.Category, def.SystemManaged))
		}
		sort.Strings(d.annTables[name])
	}
	anns, _ := db.Annotations().Snapshot()
	for _, a := range anns {
		d.anns = append(d.anns, fmt.Sprintf("%d|%s|%s|%s|%s|%v|%v",
			a.ID, strings.ToLower(a.AnnTable), strings.ToLower(a.UserTable),
			a.Author, normalizeBody(a.Body), a.Archived, a.Regions))
	}
	sort.Strings(d.anns)
	return d
}

func compareDumps(t *testing.T, label string, want, got *dbDump) {
	t.Helper()
	if len(want.tables) != len(got.tables) {
		t.Fatalf("%s: table count %d != %d", label, len(got.tables), len(want.tables))
	}
	for name, wantRows := range want.tables {
		gotRows, ok := got.tables[name]
		if !ok {
			t.Fatalf("%s: table %s missing", label, name)
		}
		if len(wantRows) != len(gotRows) {
			t.Fatalf("%s: %s has %d rows, want %d", label, name, len(gotRows), len(wantRows))
		}
		for id, w := range wantRows {
			if g := gotRows[id]; g != w {
				t.Errorf("%s: %s row %d = %q, want %q", label, name, id, g, w)
			}
		}
		if w, g := strings.Join(want.indexes[name], ","), strings.Join(got.indexes[name], ","); w != g {
			t.Errorf("%s: %s indexes = %q, want %q", label, name, g, w)
		}
		if w, g := strings.Join(want.annTables[name], ";"), strings.Join(got.annTables[name], ";"); w != g {
			t.Errorf("%s: %s annotation tables = %q, want %q", label, name, g, w)
		}
	}
	if w, g := strings.Join(want.anns, "\n"), strings.Join(got.anns, "\n"); w != g {
		t.Errorf("%s: annotations differ\n got: %s\nwant: %s", label, g, w)
	}
	if w, g := fmt.Sprint(want.outdated), fmt.Sprint(got.outdated); w != g {
		t.Errorf("%s: outdated cells = %s, want %s", label, g, w)
	}
	if w, g := strings.Join(want.agents, ","), strings.Join(got.agents, ","); w != g {
		t.Errorf("%s: agents = %q, want %q", label, g, w)
	}
}

// verifyIndexConsistency cross-checks every secondary index against a heap
// scan: each live non-NULL cell must be probeable, and the index must hold
// no stale entries.
func verifyIndexConsistency(t *testing.T, db *DB) {
	t.Helper()
	for _, tbl := range db.Storage().Tables() {
		schema := tbl.Schema()
		for _, col := range tbl.IndexColumns() {
			idx := schema.ColumnIndex(col)
			if idx < 0 {
				t.Fatalf("%s: indexed column %s not in schema", tbl.Name(), col)
			}
			var wantIDs []int64
			err := tbl.Scan(func(rowID int64, row value.Row) bool {
				if row[idx].IsNull() {
					return true
				}
				wantIDs = append(wantIDs, rowID)
				ids, err := tbl.LookupEqual(col, row[idx])
				if err != nil {
					t.Fatalf("%s.%s lookup: %v", tbl.Name(), col, err)
				}
				found := false
				for _, id := range ids {
					if id == rowID {
						found = true
						break
					}
				}
				if !found {
					t.Errorf("%s.%s: row %d missing from index", tbl.Name(), col, rowID)
				}
				return true
			})
			if err != nil {
				t.Fatal(err)
			}
			gotIDs, err := tbl.IndexRange(col, value.NewNull(), false, value.NewNull(), false)
			if err != nil {
				t.Fatal(err)
			}
			sort.Slice(wantIDs, func(i, j int) bool { return wantIDs[i] < wantIDs[j] })
			if fmt.Sprint(wantIDs) != fmt.Sprint(gotIDs) {
				t.Errorf("%s.%s: index rows %v, heap rows %v", tbl.Name(), col, gotIDs, wantIDs)
			}
		}
	}
}

// workloadStatements is a full exercise of the durable surface: DDL, DML,
// secondary indexes, annotation tables, annotations, archiving, and a
// dropped table.
func workloadStatements() []string {
	stmts := []string{
		`CREATE TABLE Gene (GID TEXT NOT NULL PRIMARY KEY, GName TEXT, GLen INT)`,
		`CREATE TABLE Protein (PID TEXT NOT NULL PRIMARY KEY, GID TEXT, PFunction TEXT)`,
		`CREATE TABLE Scratch (N INT)`,
		`CREATE INDEX ON Gene (GName)`,
		`CREATE INDEX ON Protein (GID)`,
	}
	for i := 0; i < 12; i++ {
		stmts = append(stmts,
			fmt.Sprintf(`INSERT INTO Gene VALUES ('JW%04d', 'gene%d', %d)`, i, i%5, 50+i*17),
			fmt.Sprintf(`INSERT INTO Protein VALUES ('P%04d', 'JW%04d', 'func%d')`, i, i, i%3),
		)
	}
	stmts = append(stmts,
		`INSERT INTO Scratch VALUES (1), (2), (3)`,
		`CREATE ANNOTATION TABLE Comments ON Gene`,
		`CREATE ANNOTATION TABLE Lab ON Protein`,
		`ADD ANNOTATION TO Gene.Comments VALUE 'long gene, curated' ON (SELECT GID FROM Gene WHERE GLen > 150)`,
		`ADD ANNOTATION TO Protein.Lab VALUE 'verified by mass-spec' ON (SELECT PFunction FROM Protein WHERE GID = 'JW0003')`,
		`UPDATE Gene SET GName = 'renamed' WHERE GID = 'JW0002'`,
		`UPDATE Protein SET PFunction = 'unknown' WHERE GID = 'JW0004'`,
		`DELETE FROM Gene WHERE GID = 'JW0007'`,
		`ADD ANNOTATION TO Gene.Comments VALUE 'second pass' ON (SELECT * FROM Gene WHERE GLen < 100)`,
		`ARCHIVE ANNOTATION FROM Gene.Comments ON (SELECT * FROM Gene)`,
		`DELETE FROM Protein WHERE PID = 'P0009'`,
		`DROP TABLE Scratch`,
		`UPDATE Gene SET GLen = 999 WHERE GID = 'JW0001'`,
	)
	return stmts
}

// applyGoSurface exercises the Go-level mutations (provenance agents and a
// dependency rule whose marks must survive) before the SQL workload runs.
func applyGoSurface(t *testing.T, db *DB) {
	t.Helper()
	db.Provenance().RegisterAgent("loader")
	db.Provenance().RegisterAgent("blast-tool")
	db.Provenance().UnregisterAgent("blast-tool")
}

// depRule links Gene.GLen -> Protein.PFunction via GID so UPDATEs on Gene
// mark Protein cells outdated. Rules are Go values and must be re-registered
// after reopen; the marks themselves are durable.
func depRule() dependency.Rule {
	return dependency.Rule{
		Sources: []dependency.ColumnRef{{Table: "Gene", Column: "GLen"}},
		Targets: []dependency.ColumnRef{{Table: "Protein", Column: "PFunction"}},
		Proc:    dependency.Procedure{Name: "length-to-function", Executable: false},
		Link:    &dependency.Link{SourceColumn: "GID", TargetColumn: "GID"},
	}
}

func addDependencyRule(t *testing.T, db *DB) {
	t.Helper()
	if _, err := db.Dependencies().AddRule(depRule()); err != nil {
		t.Fatal(err)
	}
}

// attachProvenance records a provenance entry through the registered agent.
func attachProvenance(t *testing.T, db *DB) {
	t.Helper()
	_, err := db.Provenance().Attach("loader", "Gene", provenance.Record{
		Source: "RegulonDB", Action: provenance.ActionCopy,
	}, []annotation.Region{annotation.CellRegion("Gene", 1, 2)})
	if err != nil {
		t.Fatal(err)
	}
}

func runWorkload(t *testing.T, db *DB, stmts []string) {
	t.Helper()
	s := db.Session("admin")
	for _, stmt := range stmts {
		if _, err := s.Exec(stmt); err != nil {
			t.Fatalf("workload %q: %v", stmt, err)
		}
	}
}

// queryBattery compares a set of SELECTs (with annotation propagation)
// between two databases, statement by statement, row by row.
func queryBattery(t *testing.T, label string, want, got *DB) {
	t.Helper()
	queries := []string{
		`SELECT GID, GName, GLen FROM Gene`,
		`SELECT GID, GLen FROM Gene WHERE GLen > 150`,
		`SELECT GID FROM Gene WHERE GName = 'gene1'`, // index probe
		`SELECT Gene.GID, Protein.PFunction FROM Gene, Protein WHERE Gene.GID = Protein.GID`,
		`SELECT GID, GLen FROM Gene ANNOTATION(*) WHERE GLen < 200`,
		`SELECT PID, PFunction FROM Protein ANNOTATION(Lab)`,
		`SELECT GName, COUNT(*) FROM Gene GROUP BY GName ORDER BY GName`,
	}
	for _, q := range queries {
		wr, err := want.Exec(q)
		if err != nil {
			t.Fatalf("%s: oracle %q: %v", label, q, err)
		}
		gr, err := got.Exec(q)
		if err != nil {
			t.Fatalf("%s: recovered %q: %v", label, q, err)
		}
		if w, g := renderResult(wr), renderResult(gr); w != g {
			t.Errorf("%s: %q differs\n got: %s\nwant: %s", label, q, g, w)
		}
	}
}

func renderResult(res *exec.Result) string {
	var b strings.Builder
	b.WriteString(strings.Join(res.Columns, ","))
	for _, row := range res.Rows {
		b.WriteString("\n")
		parts := make([]string, len(row.Values))
		for i, v := range row.Values {
			parts[i] = v.String()
		}
		b.WriteString(strings.Join(parts, "|"))
		var anns []string
		for _, a := range row.AnnotationsFlat() {
			anns = append(anns, fmt.Sprintf("[%s/%s/%s]", a.AnnTable, a.Author, normalizeBody(a.Body)))
		}
		sort.Strings(anns)
		b.WriteString(" " + strings.Join(anns, ""))
	}
	return b.String()
}

// TestReopenAfterCleanClose is the acceptance scenario: a full workload
// (DDL + DML + annotations + provenance + dependency marks + index builds)
// closed and reopened must answer every query identically to a database
// that never closed.
func TestReopenAfterCleanClose(t *testing.T) {
	dir := t.TempDir()
	db := openDurable(t, dir, 8) // tiny pool: evictions flush pages mid-run
	applyGoSurface(t, db.DB)
	runWorkload(t, db.DB, workloadStatements()[:5])
	addDependencyRule(t, db.DB)
	runWorkload(t, db.DB, workloadStatements()[5:])
	attachProvenance(t, db.DB)
	db.shutdown(t)

	reopened := openDurable(t, dir, 8)
	defer reopened.crash()

	oracle := MustOpen(Options{})
	applyGoSurface(t, oracle)
	runWorkload(t, oracle, workloadStatements()[:5])
	addDependencyRule(t, oracle)
	runWorkload(t, oracle, workloadStatements()[5:])
	attachProvenance(t, oracle)

	compareDumps(t, "clean close", dumpDB(t, oracle), dumpDB(t, reopened.DB))
	verifyIndexConsistency(t, reopened.DB)
	queryBattery(t, "clean close", oracle, reopened.DB)

	// A clean close checkpoints, so reopening needs no replay.
	if n := reopened.wlog.Len(); n != 0 {
		t.Errorf("WAL holds %d records after clean close, want 0", n)
	}
}

// TestReopenAfterCrash drops the database without any checkpoint: the whole
// state must come back from the WAL alone.
func TestReopenAfterCrash(t *testing.T) {
	dir := t.TempDir()
	db := openDurable(t, dir, 8)
	applyGoSurface(t, db.DB)
	runWorkload(t, db.DB, workloadStatements()[:5])
	addDependencyRule(t, db.DB)
	runWorkload(t, db.DB, workloadStatements()[5:])
	attachProvenance(t, db.DB)
	db.crash()

	reopened := openDurable(t, dir, 8)
	defer reopened.crash()

	oracle := MustOpen(Options{})
	applyGoSurface(t, oracle)
	runWorkload(t, oracle, workloadStatements()[:5])
	addDependencyRule(t, oracle)
	runWorkload(t, oracle, workloadStatements()[5:])
	attachProvenance(t, oracle)

	compareDumps(t, "crash", dumpDB(t, oracle), dumpDB(t, reopened.DB))
	verifyIndexConsistency(t, reopened.DB)
	queryBattery(t, "crash", oracle, reopened.DB)
}

// TestReopenAfterTornCheckpointWithDrop simulates the checkpoint crash
// window between the catalog save and the manifest save, with a DROP TABLE
// in the replayed WAL: the manifest still lists the dropped table, the newer
// catalog does not. Recovery must treat the drop as the committed truth and
// open cleanly.
func TestReopenAfterTornCheckpointWithDrop(t *testing.T) {
	dir := t.TempDir()
	db := openDurable(t, dir, 8)
	runWorkload(t, db.DB, []string{
		`CREATE TABLE Keep (N INT NOT NULL PRIMARY KEY, T TEXT)`,
		`CREATE TABLE Doomed (N INT)`,
		`INSERT INTO Keep VALUES (1, 'a'), (2, 'b')`,
		`INSERT INTO Doomed VALUES (7), (8)`,
	})
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	runWorkload(t, db.DB, []string{
		`INSERT INTO Keep VALUES (3, 'c')`,
		`DROP TABLE Doomed`,
	})
	// The torn checkpoint: the catalog snapshot is written (no Doomed), then
	// the "process dies" before the manifest and the WAL truncation.
	if err := db.eng.Catalog().SaveFile(db.catalogPath); err != nil {
		t.Fatal(err)
	}
	db.crash()

	re, err := tryOpenDurable(dir, 8)
	if err != nil {
		t.Fatalf("torn checkpoint bricked the database: %v", err)
	}
	defer re.crash()
	if re.DB.Storage().HasTable("Doomed") {
		t.Error("dropped table resurrected")
	}
	res, err := re.DB.Exec(`SELECT N, T FROM Keep`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Errorf("Keep has %d rows, want 3", len(res.Rows))
	}
	verifyIndexConsistency(t, re.DB)
}

// TestReopenAfterMidWorkloadCheckpoint splits the workload across a manual
// checkpoint and then crashes: recovery must combine the snapshot with the
// replayed tail.
func TestReopenAfterMidWorkloadCheckpoint(t *testing.T) {
	dir := t.TempDir()
	stmts := workloadStatements()
	db := openDurable(t, dir, 8)
	applyGoSurface(t, db.DB)
	runWorkload(t, db.DB, stmts[:5])
	addDependencyRule(t, db.DB)
	mid := 5 + len(stmts[5:])/2
	runWorkload(t, db.DB, stmts[5:mid])
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	runWorkload(t, db.DB, stmts[mid:])
	attachProvenance(t, db.DB)
	db.crash()

	reopened := openDurable(t, dir, 8)
	defer reopened.crash()

	oracle := MustOpen(Options{})
	applyGoSurface(t, oracle)
	runWorkload(t, oracle, stmts[:5])
	addDependencyRule(t, oracle)
	runWorkload(t, oracle, stmts[5:])
	attachProvenance(t, oracle)

	compareDumps(t, "mid checkpoint", dumpDB(t, oracle), dumpDB(t, reopened.DB))
	verifyIndexConsistency(t, reopened.DB)
	queryBattery(t, "mid checkpoint", oracle, reopened.DB)
}
