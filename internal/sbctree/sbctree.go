// Package sbctree implements the SBC-tree (String B-tree for Compressed
// sequences) of the paper's Section 7.2: a two-level index over
// Run-Length-Encoded sequences that supports substring, prefix and range
// search without decompressing the data.
//
// Level one is a B+-tree over the run-boundary suffixes of the RLE form: a
// sequence with r runs contributes only r entries (versus one per character
// for the String B-tree baseline), which is where the order-of-magnitude
// storage reduction and the insertion I/O savings come from. Level two is an
// R-tree over (character, run length) points, standing in for the paper's
// 3-sided range structure exactly as the authors' own PostgreSQL prototype
// did; it answers single-run queries and the "preceding run at least this
// long" filter.
package sbctree

import (
	"encoding/binary"
	"sort"

	"bdbms/internal/btree"
	"bdbms/internal/rle"
	"bdbms/internal/rtree"
)

// MaxKeyRuns is the number of runs encoded into a suffix key; longer suffixes
// are truncated and verified against the stored compressed sequence.
const MaxKeyRuns = 8

// Match is one matching sequence with the first occurrence position of the
// query pattern (positions refer to the decompressed text).
type Match struct {
	SeqID int64
	Pos   int
}

// entry locates a run within a sequence.
type entry struct {
	seqID  int64
	runIdx int
}

// Index is an SBC-tree over a collection of sequences.
type Index struct {
	suffixes *btree.Tree
	runs     *rtree.Tree
	seqs     map[int64]*rle.Sequence
	useRTree bool
}

// New returns an empty SBC-tree.
func New() *Index {
	return &Index{
		suffixes: btree.New(btree.DefaultOrder),
		runs:     rtree.New(),
		seqs:     make(map[int64]*rle.Sequence),
		useRTree: true,
	}
}

// NewWithoutSecondLevel returns an SBC-tree that skips the R-tree second
// level and answers single-run queries by scanning run lists instead. Used by
// the ablation benchmark.
func NewWithoutSecondLevel() *Index {
	ix := New()
	ix.useRTree = false
	return ix
}

// Len returns the number of indexed sequences.
func (ix *Index) Len() int { return len(ix.seqs) }

// NumEntries returns the number of run-boundary suffix entries.
func (ix *Index) NumEntries() int { return ix.suffixes.Len() }

// StorageBytes returns the bytes stored across both index levels, the storage
// measure of experiment E1.
func (ix *Index) StorageBytes() int {
	secondLevel := 0
	if ix.useRTree {
		secondLevel = ix.runs.Len() * 13 // point (char, len) + payload
	}
	return ix.suffixes.KeyBytes() + secondLevel
}

// EstimatePages estimates the index footprint in pages of the given size.
func (ix *Index) EstimatePages(pageSize int) int {
	if pageSize <= 0 {
		pageSize = 4096
	}
	pages := ix.StorageBytes() / pageSize
	if ix.StorageBytes()%pageSize != 0 {
		pages++
	}
	if pages == 0 {
		pages = 1
	}
	return pages
}

// IOStats returns the simulated node I/O counters of the suffix B+-tree.
func (ix *Index) IOStats() btree.IOStats { return ix.suffixes.Stats() }

// ResetIOStats zeroes the I/O counters.
func (ix *Index) ResetIOStats() {
	ix.suffixes.ResetStats()
	ix.runs.ResetStats()
}

// Sequence returns the stored compressed sequence for id.
func (ix *Index) Sequence(id int64) (*rle.Sequence, bool) {
	s, ok := ix.seqs[id]
	return s, ok
}

// CompressionRatio returns the average compression ratio of the indexed
// sequences (decompressed bytes per compressed byte).
func (ix *Index) CompressionRatio() float64 {
	if len(ix.seqs) == 0 {
		return 1
	}
	total := 0.0
	for _, s := range ix.seqs {
		total += s.CompressionRatio()
	}
	return total / float64(len(ix.seqs))
}

func suffixKey(seq *rle.Sequence, runIdx int) []byte {
	n := seq.NumRuns() - runIdx
	if n > MaxKeyRuns {
		n = MaxKeyRuns
	}
	key := make([]byte, 0, n*5)
	for i := 0; i < n; i++ {
		r := seq.Run(runIdx + i)
		key = append(key, r.Char)
		key = binary.BigEndian.AppendUint32(key, uint32(r.Len))
	}
	return key
}

func payload(e entry) []byte {
	buf := make([]byte, 12)
	binary.BigEndian.PutUint64(buf[:8], uint64(e.seqID))
	binary.BigEndian.PutUint32(buf[8:], uint32(e.runIdx))
	return buf
}

func decodePayload(b []byte) entry {
	return entry{
		seqID:  int64(binary.BigEndian.Uint64(b[:8])),
		runIdx: int(binary.BigEndian.Uint32(b[8:])),
	}
}

// Insert compresses s with RLE and indexes its run-boundary suffixes under id.
func (ix *Index) Insert(id int64, s string) {
	ix.InsertCompressed(id, rle.Encode(s))
}

// InsertCompressed indexes an already-compressed sequence.
func (ix *Index) InsertCompressed(id int64, seq *rle.Sequence) {
	ix.seqs[id] = seq
	for runIdx := 0; runIdx < seq.NumRuns(); runIdx++ {
		ix.suffixes.Insert(suffixKey(seq, runIdx), payload(entry{seqID: id, runIdx: runIdx}))
		if ix.useRTree {
			r := seq.Run(runIdx)
			ix.runs.Insert(rtree.NewPoint(float64(r.Char), float64(r.Len)), entry{seqID: id, runIdx: runIdx})
		}
	}
}

// runStart returns the decompressed offset where run runIdx begins.
func runStart(seq *rle.Sequence, runIdx int) int {
	pos := 0
	for i := 0; i < runIdx; i++ {
		pos += seq.Run(i).Len
	}
	return pos
}

// SubstringSearch returns, for every sequence containing pattern, a Match
// with the first occurrence position — all computed over the compressed form.
func (ix *Index) SubstringSearch(pattern string) []Match {
	if pattern == "" {
		return nil
	}
	p := rle.Encode(pattern)
	best := make(map[int64]int)
	record := func(id int64, pos int) {
		if cur, ok := best[id]; !ok || pos < cur {
			best[id] = pos
		}
	}
	if p.NumRuns() == 1 {
		ix.singleRunCandidates(p.Run(0), func(e entry) {
			seq := ix.seqs[e.seqID]
			r := seq.Run(e.runIdx)
			if r.Char == p.Run(0).Char && r.Len >= p.Run(0).Len {
				record(e.seqID, runStart(seq, e.runIdx))
			}
		})
	} else {
		// Prefix over the suffix tree: runs 1..n-2 exact, last run char only.
		probe := make([]byte, 0, p.NumRuns()*5)
		inner := p.Runs()[1 : p.NumRuns()-1]
		if len(inner) > MaxKeyRuns-1 {
			inner = inner[:MaxKeyRuns-1]
		}
		for _, r := range inner {
			probe = append(probe, r.Char)
			probe = binary.BigEndian.AppendUint32(probe, uint32(r.Len))
		}
		if len(inner) == p.NumRuns()-2 && len(inner) < MaxKeyRuns {
			probe = append(probe, p.Run(p.NumRuns()-1).Char)
		}
		ix.suffixes.AscendPrefix(probe, func(_ []byte, values [][]byte) bool {
			for _, v := range values {
				e := decodePayload(v)
				if m, ok := ix.verifyMultiRun(e, p); ok {
					record(e.seqID, m)
				}
			}
			return true
		})
	}
	out := make([]Match, 0, len(best))
	for id, pos := range best {
		out = append(out, Match{SeqID: id, Pos: pos})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].SeqID < out[j].SeqID })
	return out
}

// singleRunCandidates feeds every run with the query character and at least
// the query length to fn, using the R-tree second level when enabled.
func (ix *Index) singleRunCandidates(q rle.Run, fn func(entry)) {
	if ix.useRTree {
		query := rtree.Rect{
			MinX: float64(q.Char), MaxX: float64(q.Char),
			MinY: float64(q.Len), MaxY: 1 << 30,
		}
		ix.runs.Search(query, func(it rtree.Item) bool {
			fn(it.Data.(entry))
			return true
		})
		return
	}
	for id, seq := range ix.seqs {
		for runIdx := 0; runIdx < seq.NumRuns(); runIdx++ {
			r := seq.Run(runIdx)
			if r.Char == q.Char && r.Len >= q.Len {
				fn(entry{seqID: id, runIdx: runIdx})
			}
		}
	}
}

// verifyMultiRun checks a candidate suffix (starting at the run matching the
// pattern's second run) against a multi-run pattern, returning the match
// position when it holds.
func (ix *Index) verifyMultiRun(e entry, p *rle.Sequence) (int, bool) {
	seq, ok := ix.seqs[e.seqID]
	if !ok || e.runIdx == 0 {
		return 0, false
	}
	nRuns := p.NumRuns()
	// The candidate's suffix must have enough runs for pattern runs 1..n-1.
	if e.runIdx+nRuns-1 > seq.NumRuns() {
		return 0, false
	}
	first := p.Run(0)
	prev := seq.Run(e.runIdx - 1)
	if prev.Char != first.Char || prev.Len < first.Len {
		return 0, false
	}
	// Inner runs must match exactly.
	for j := 1; j < nRuns-1; j++ {
		r := seq.Run(e.runIdx + j - 1)
		pr := p.Run(j)
		if r.Char != pr.Char || r.Len != pr.Len {
			return 0, false
		}
	}
	// The last pattern run must be a prefix of the corresponding sequence run.
	last := p.Run(nRuns - 1)
	lr := seq.Run(e.runIdx + nRuns - 2)
	if lr.Char != last.Char || lr.Len < last.Len {
		return 0, false
	}
	return runStart(seq, e.runIdx) - first.Len, true
}

// PrefixSearch returns the IDs of sequences whose decompressed text starts
// with pattern, sorted.
func (ix *Index) PrefixSearch(pattern string) []int64 {
	if pattern == "" {
		ids := make([]int64, 0, len(ix.seqs))
		for id := range ix.seqs {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		return ids
	}
	p := rle.Encode(pattern)
	var out []int64
	if p.NumRuns() == 1 {
		ix.singleRunCandidates(p.Run(0), func(e entry) {
			if e.runIdx != 0 {
				return
			}
			seq := ix.seqs[e.seqID]
			if seq.HasPrefix(pattern) {
				out = append(out, e.seqID)
			}
		})
	} else {
		// Runs 0..n-2 exact, last run char only.
		probe := make([]byte, 0, p.NumRuns()*5)
		lead := p.Runs()[:p.NumRuns()-1]
		if len(lead) > MaxKeyRuns-1 {
			lead = lead[:MaxKeyRuns-1]
		}
		for _, r := range lead {
			probe = append(probe, r.Char)
			probe = binary.BigEndian.AppendUint32(probe, uint32(r.Len))
		}
		if len(lead) == p.NumRuns()-1 && len(lead) < MaxKeyRuns {
			probe = append(probe, p.Run(p.NumRuns()-1).Char)
		}
		ix.suffixes.AscendPrefix(probe, func(_ []byte, values [][]byte) bool {
			for _, v := range values {
				e := decodePayload(v)
				if e.runIdx != 0 {
					continue
				}
				if seq := ix.seqs[e.seqID]; seq != nil && seq.HasPrefix(pattern) {
					out = append(out, e.seqID)
				}
			}
			return true
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return dedupe(out)
}

// RangeSearch returns the IDs of sequences whose decompressed text is in
// [lo, hi), compared without decompression. An empty hi means "no upper
// bound".
func (ix *Index) RangeSearch(lo, hi string) []int64 {
	loSeq := rle.Encode(lo)
	var hiSeq *rle.Sequence
	if hi != "" {
		hiSeq = rle.Encode(hi)
	}
	var out []int64
	for id, seq := range ix.seqs {
		if rle.CompareCompressed(seq, loSeq) < 0 {
			continue
		}
		if hiSeq != nil && rle.CompareCompressed(seq, hiSeq) >= 0 {
			continue
		}
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ContainsSequence reports whether any indexed sequence contains pattern.
func (ix *Index) ContainsSequence(pattern string) bool {
	return len(ix.SubstringSearch(pattern)) > 0
}

func dedupe(ids []int64) []int64 {
	if len(ids) <= 1 {
		return ids
	}
	out := ids[:1]
	for _, id := range ids[1:] {
		if id != out[len(out)-1] {
			out = append(out, id)
		}
	}
	return out
}
