package sbctree

import (
	"math/rand"
	"strings"
	"testing"

	"bdbms/internal/biogen"
	"bdbms/internal/rle"
	"bdbms/internal/stringbtree"
)

func figure12Sequences() map[int64]string {
	// Short secondary-structure-like strings with long runs, as in Figure 12.
	return map[int64]string{
		1: "LLLEEEEEEEHHHHHHHHHHHHHHHHHHHHHHEEEEEELLEEELHHHHHHHHHHLL",
		2: "LLLLLLLLHHHHHHHHHHHHHHHHLLLLEEEEEEEHHHHHHHHHHHHEEEEEEEEEE",
		3: "LLLLHHHHHHHLLLLHHHHHHHHHHHHHHEEEEEEEEEEHHHHHHHEEEEEEEEHH",
		4: "HHHHHHHHHHEEEELEEEEEEEEEELLLEEEEEEEELLLLHHHHHHHHHHHHHHHEEEE",
		5: "EELLEEEELLLLLLLLHHHHHHHHHHHHHHHHHHHHEEEELEEEEEEEEEELEEEEEL",
	}
}

func buildIndex(t *testing.T, seqs map[int64]string) *Index {
	t.Helper()
	ix := New()
	for id, s := range seqs {
		ix.Insert(id, s)
	}
	return ix
}

func TestInsertAndAccounting(t *testing.T) {
	seqs := figure12Sequences()
	ix := buildIndex(t, seqs)
	if ix.Len() != len(seqs) {
		t.Fatalf("Len = %d", ix.Len())
	}
	totalRuns := 0
	for _, s := range seqs {
		totalRuns += rle.Encode(s).NumRuns()
	}
	if ix.NumEntries() != totalRuns {
		t.Errorf("entries = %d, want %d (one per run)", ix.NumEntries(), totalRuns)
	}
	if ix.StorageBytes() == 0 || ix.EstimatePages(4096) < 1 {
		t.Error("storage accounting missing")
	}
	if ix.CompressionRatio() <= 1 {
		t.Errorf("compression ratio = %f", ix.CompressionRatio())
	}
	if seq, ok := ix.Sequence(1); !ok || seq.Decode() != seqs[1] {
		t.Error("Sequence lookup wrong")
	}
	if _, ok := ix.Sequence(99); ok {
		t.Error("missing sequence found")
	}
	if New().CompressionRatio() != 1 {
		t.Error("empty index ratio should be 1")
	}
	if ix.EstimatePages(0) < 1 {
		t.Error("EstimatePages with zero page size")
	}
}

func TestSubstringSearchMatchesReference(t *testing.T) {
	seqs := figure12Sequences()
	ix := buildIndex(t, seqs)
	patterns := []string{
		"LLL", "EEEH", "HHLL", "HHHHHHHHHH", "EL", "LEEEL", "EEEEEELL",
		"H", "L", "E", "XYZ", "HEL", "LLEE", "EEEELEEE",
	}
	for _, p := range patterns {
		got := ix.SubstringSearch(p)
		gotIDs := map[int64]int{}
		for _, m := range got {
			gotIDs[m.SeqID] = m.Pos
		}
		for id, s := range seqs {
			wantPos := strings.Index(s, p)
			pos, found := gotIDs[id]
			if (wantPos >= 0) != found {
				t.Errorf("pattern %q seq %d: found=%v, want %v", p, id, found, wantPos >= 0)
				continue
			}
			if found && pos != wantPos {
				t.Errorf("pattern %q seq %d: pos=%d, want %d", p, id, pos, wantPos)
			}
		}
	}
	if ix.SubstringSearch("") != nil {
		t.Error("empty pattern should return nil")
	}
	if !ix.ContainsSequence("LLL") || ix.ContainsSequence("XQZ") {
		t.Error("ContainsSequence wrong")
	}
}

func TestPrefixSearch(t *testing.T) {
	seqs := figure12Sequences()
	ix := buildIndex(t, seqs)
	for _, p := range []string{"LLL", "LLLL", "LLLE", "HHHH", "EE", "EELL", "X", "LLLLLLLLH"} {
		var want []int64
		for id, s := range seqs {
			if strings.HasPrefix(s, p) {
				want = append(want, id)
			}
		}
		got := ix.PrefixSearch(p)
		if len(got) != len(want) {
			t.Errorf("prefix %q: got %v, want %d sequences", p, got, len(want))
			continue
		}
		for _, id := range got {
			if !strings.HasPrefix(seqs[id], p) {
				t.Errorf("prefix %q: false positive %d", p, id)
			}
		}
	}
	if got := ix.PrefixSearch(""); len(got) != len(seqs) {
		t.Errorf("empty prefix = %v", got)
	}
}

func TestRangeSearch(t *testing.T) {
	ix := New()
	ix.Insert(1, "AAAA")
	ix.Insert(2, "BBBB")
	ix.Insert(3, "CCCC")
	if got := ix.RangeSearch("AAAA", "CCCC"); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("range = %v", got)
	}
	if got := ix.RangeSearch("B", ""); len(got) != 2 {
		t.Errorf("open range = %v", got)
	}
}

func TestAgainstStringBTreeOnRandomWorkload(t *testing.T) {
	// The SBC-tree and the String B-tree must agree on which sequences
	// contain which patterns (E3's correctness premise).
	gen := biogen.New(17)
	structures := gen.SecondaryStructures(60, 100, 300, 10)
	sbc := New()
	sbt := stringbtree.New()
	for i, s := range structures {
		sbc.Insert(int64(i+1), s)
		sbt.Insert(int64(i+1), s)
	}
	rng := rand.New(rand.NewSource(4))
	for q := 0; q < 60; q++ {
		src := structures[rng.Intn(len(structures))]
		start := rng.Intn(len(src) - 12)
		pattern := src[start : start+4+rng.Intn(8)]

		sbcIDs := map[int64]bool{}
		for _, m := range sbc.SubstringSearch(pattern) {
			sbcIDs[m.SeqID] = true
		}
		sbtIDs := map[int64]bool{}
		for _, m := range sbt.SubstringSearch(pattern) {
			sbtIDs[m.SeqID] = true
		}
		if len(sbcIDs) != len(sbtIDs) {
			t.Fatalf("pattern %q: SBC found %d sequences, String B-tree %d", pattern, len(sbcIDs), len(sbtIDs))
		}
		for id := range sbtIDs {
			if !sbcIDs[id] {
				t.Fatalf("pattern %q: SBC missed sequence %d", pattern, id)
			}
		}
	}
}

func TestStorageReductionVsStringBTree(t *testing.T) {
	// E1's shape: indexing RLE-compressed secondary structures takes roughly
	// an order of magnitude less space than indexing the uncompressed text.
	gen := biogen.New(23)
	structures := gen.SecondaryStructures(40, 200, 400, 15)
	sbc := New()
	sbt := stringbtree.New()
	for i, s := range structures {
		sbc.Insert(int64(i+1), s)
		sbt.Insert(int64(i+1), s)
	}
	ratio := float64(sbt.StorageBytes()) / float64(sbc.StorageBytes())
	if ratio < 4 {
		t.Errorf("storage reduction ratio = %.1fx; expected well above 4x", ratio)
	}
	ioRatio := float64(sbt.IOStats().NodeWrites) / float64(sbc.IOStats().NodeWrites)
	if ioRatio < 1.3 {
		t.Errorf("insertion write ratio = %.2fx; SBC should need at least 30%% fewer writes", ioRatio)
	}
}

func TestWithoutSecondLevelAgrees(t *testing.T) {
	seqs := figure12Sequences()
	with := New()
	without := NewWithoutSecondLevel()
	for id, s := range seqs {
		with.Insert(id, s)
		without.Insert(id, s)
	}
	for _, p := range []string{"H", "LLL", "HHHHHHHHHH", "EEEH"} {
		a := with.SubstringSearch(p)
		b := without.SubstringSearch(p)
		if len(a) != len(b) {
			t.Fatalf("pattern %q: with=%d without=%d", p, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("pattern %q: match %d differs: %v vs %v", p, i, a[i], b[i])
			}
		}
	}
	for _, p := range []string{"LLL", "EE"} {
		a := with.PrefixSearch(p)
		b := without.PrefixSearch(p)
		if len(a) != len(b) {
			t.Fatalf("prefix %q: with=%d without=%d", p, len(a), len(b))
		}
	}
	// The second level contributes storage.
	if with.StorageBytes() <= without.StorageBytes() {
		t.Error("second level should add storage")
	}
	with.ResetIOStats()
	if with.IOStats().NodeReads != 0 {
		t.Error("ResetIOStats failed")
	}
}

func TestInsertCompressedDirectly(t *testing.T) {
	ix := New()
	seq, err := rle.Parse("L3E7H22")
	if err != nil {
		t.Fatal(err)
	}
	ix.InsertCompressed(7, seq)
	got := ix.SubstringSearch("EEEH")
	if len(got) != 1 || got[0].SeqID != 7 {
		t.Errorf("search = %v", got)
	}
}
