package spgist

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"bdbms/internal/biogen"
)

func insertPoints(t *testing.T, tr *Tree, pts [][2]float64) {
	t.Helper()
	for i, p := range pts {
		tr.Insert(Point{X: p[0], Y: p[1]}, i)
	}
}

func testPointOpClass(t *testing.T, ops OpClass) {
	t.Helper()
	gen := biogen.New(3)
	pts := gen.Points(2000, 1000)
	tr := New(ops)
	insertPoints(t, tr, pts)
	if tr.Len() != 2000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	st := tr.Stats()
	if st.Keys != 2000 || st.Leaves == 0 || st.Depth < 2 {
		t.Errorf("stats = %+v", st)
	}

	// Exact search finds exactly the inserted point.
	for i := 0; i < 50; i++ {
		p := pts[i]
		got := tr.Exact(Point{X: p[0], Y: p[1]})
		found := false
		for _, item := range got {
			if item.Data == i {
				found = true
			}
		}
		if !found {
			t.Fatalf("exact search lost point %d", i)
		}
	}
	if got := tr.Exact(Point{X: -1, Y: -1}); len(got) != 0 {
		t.Errorf("absent point found: %v", got)
	}

	// Range search matches brute force.
	rng := rand.New(rand.NewSource(1))
	for q := 0; q < 20; q++ {
		x, y := rng.Float64()*900, rng.Float64()*900
		query := RangeQuery{MinX: x, MinY: y, MaxX: x + 100, MaxY: y + 100}
		want := 0
		for _, p := range pts {
			if p[0] >= query.MinX && p[0] <= query.MaxX && p[1] >= query.MinY && p[1] <= query.MaxY {
				want++
			}
		}
		if got := len(tr.Search(query)); got != want {
			t.Fatalf("%s range query %d: got %d, want %d", ops.Name(), q, got, want)
		}
	}

	// KNN matches brute force.
	for q := 0; q < 10; q++ {
		qx, qy := rng.Float64()*1000, rng.Float64()*1000
		got, err := tr.KNN(Point{X: qx, Y: qy}, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 5 {
			t.Fatalf("KNN returned %d items", len(got))
		}
		dists := make([]float64, len(pts))
		for i, p := range pts {
			dists[i] = math.Hypot(p[0]-qx, p[1]-qy)
		}
		sort.Float64s(dists)
		for i, item := range got {
			p := item.Key.(Point)
			d := math.Hypot(p.X-qx, p.Y-qy)
			if math.Abs(d-dists[i]) > 1e-9 {
				t.Fatalf("%s KNN[%d] dist %f, brute force %f", ops.Name(), i, d, dists[i])
			}
		}
	}
	if got, err := tr.KNN(Point{}, 0); err != nil || got != nil {
		t.Error("k=0 should return nil")
	}
	if tr.NodeReads() == 0 {
		t.Error("node reads not counted")
	}
	tr.ResetStats()
	if tr.NodeReads() != 0 {
		t.Error("ResetStats failed")
	}
}

func TestKDTreeOpClass(t *testing.T)   { testPointOpClass(t, KDTreeOps{}) }
func TestQuadtreeOpClass(t *testing.T) { testPointOpClass(t, QuadtreeOps{}) }

func TestOpClassNames(t *testing.T) {
	if (KDTreeOps{}).Name() != "kd-tree" || (QuadtreeOps{}).Name() != "point-quadtree" || (TrieOps{}).Name() != "trie" {
		t.Error("op-class names wrong")
	}
	if New(TrieOps{}).OpClassName() != "trie" {
		t.Error("OpClassName wrong")
	}
}

func TestTrieExactAndPrefix(t *testing.T) {
	gen := biogen.New(9)
	words := gen.Keywords(3000, 12)
	tr := New(TrieOps{})
	for i, w := range words {
		tr.Insert(w, i)
	}
	if tr.Len() != 3000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	// Exact match.
	for i := 0; i < 100; i++ {
		got := tr.Exact(words[i])
		ok := false
		for _, item := range got {
			if item.Data == i {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("exact match lost %q", words[i])
		}
	}
	if len(tr.Exact("notaword!")) != 0 {
		t.Error("absent word found")
	}
	// Prefix match against brute force.
	prefixes := []string{"MA", "AC", "GH", words[0][:2], words[1][:3], ""}
	for _, p := range prefixes {
		want := 0
		for _, w := range words {
			if strings.HasPrefix(w, p) {
				want++
			}
		}
		got := len(tr.Search(PrefixQuery{Prefix: p}))
		if got != want {
			t.Fatalf("prefix %q: got %d, want %d", p, got, want)
		}
	}
	// KNN is unsupported on the trie.
	if _, err := tr.KNN(Point{}, 3); err != ErrKNNUnsupported {
		t.Errorf("trie KNN: %v", err)
	}
}

func TestTrieDuplicateKeys(t *testing.T) {
	tr := New(TrieOps{})
	for i := 0; i < 100; i++ {
		tr.Insert("SAMEKEY", i)
	}
	tr.Insert("OTHER", -1)
	if got := len(tr.Exact("SAMEKEY")); got != 100 {
		t.Errorf("duplicate key search = %d", got)
	}
}

func TestMatchSimpleRegex(t *testing.T) {
	cases := []struct {
		pattern, s string
		want       bool
	}{
		{"ABC", "ABC", true},
		{"ABC", "ABCD", false},
		{"A.C", "ABC", true},
		{"A.C", "AXC", true},
		{"A.C", "AC", false},
		{"A*", "", true},
		{"A*", "AAAA", true},
		{"A*B", "B", true},
		{"A*B", "AAB", true},
		{"A*B", "AABA", false},
		{".*", "anything", true},
		{"H.*L", "HEEL", true},
		{"H.*L", "HEEK", false},
		{"", "", true},
		{"", "x", false},
	}
	for _, c := range cases {
		if got := MatchSimpleRegex(c.pattern, c.s); got != c.want {
			t.Errorf("Match(%q, %q) = %v, want %v", c.pattern, c.s, got, c.want)
		}
	}
}

func TestTrieRegexSearch(t *testing.T) {
	words := []string{"HELLO", "HELP", "HEAP", "HEEL", "WORLD", "HALLO", "HE"}
	tr := New(TrieOps{})
	for i, w := range words {
		tr.Insert(w, i)
	}
	check := func(pattern string) {
		t.Helper()
		want := map[string]bool{}
		for _, w := range words {
			if MatchSimpleRegex(pattern, w) {
				want[w] = true
			}
		}
		got := tr.Search(RegexQuery{Pattern: pattern})
		if len(got) != len(want) {
			t.Fatalf("regex %q: got %d results, want %d", pattern, len(got), len(want))
		}
		for _, item := range got {
			if !want[item.Key.(string)] {
				t.Fatalf("regex %q: unexpected match %q", pattern, item.Key)
			}
		}
	}
	for _, p := range []string{"HE.*", "H.L*LO", "HE", ".*L.*", "HEL.", "W.*"} {
		check(p)
	}
}

func TestTrieRegexLargeAgainstBruteForce(t *testing.T) {
	gen := biogen.New(21)
	words := gen.Keywords(2000, 8)
	tr := New(TrieOps{})
	for i, w := range words {
		tr.Insert(w, i)
	}
	patterns := []string{"A.*", "M.C.*", ".*K", "AC.*D", "..G.*"}
	for _, p := range patterns {
		want := 0
		for _, w := range words {
			if MatchSimpleRegex(p, w) {
				want++
			}
		}
		got := len(tr.Search(RegexQuery{Pattern: p}))
		if got != want {
			t.Fatalf("regex %q: got %d, want %d", p, got, want)
		}
	}
}

func TestDegenerateInsertions(t *testing.T) {
	// Identical points must not cause infinite splitting.
	tr := New(KDTreeOps{})
	for i := 0; i < 500; i++ {
		tr.Insert(Point{X: 1, Y: 1}, i)
	}
	if tr.Len() != 500 {
		t.Fatal("lost keys")
	}
	if got := len(tr.Exact(Point{X: 1, Y: 1})); got != 500 {
		t.Errorf("exact on duplicates = %d", got)
	}
	// Same for the quadtree.
	qt := New(QuadtreeOps{})
	for i := 0; i < 500; i++ {
		qt.Insert(Point{X: 2, Y: 2}, i)
	}
	if got := len(qt.Exact(Point{X: 2, Y: 2})); got != 500 {
		t.Errorf("quadtree exact on duplicates = %d", got)
	}
}

func TestStatsShape(t *testing.T) {
	tr := New(KDTreeOps{})
	gen := biogen.New(2)
	for i, p := range gen.Points(5000, 100) {
		tr.Insert(Point{X: p[0], Y: p[1]}, i)
	}
	st := tr.Stats()
	if st.Keys != 5000 {
		t.Errorf("keys = %d", st.Keys)
	}
	if st.Depth < 4 || st.Depth > 64 {
		t.Errorf("depth = %d", st.Depth)
	}
	if st.Nodes <= st.Leaves {
		t.Errorf("nodes %d, leaves %d", st.Nodes, st.Leaves)
	}
}

func TestExactQueryStringFormatting(t *testing.T) {
	// Guard against accidental fmt.Stringer interference in Item keys.
	tr := New(TrieOps{})
	tr.Insert("ABC", 1)
	items := tr.Search(ExactQuery{Key: "ABC"})
	if len(items) != 1 || fmt.Sprintf("%v", items[0].Key) != "ABC" {
		t.Errorf("items = %v", items)
	}
}
