// Package spgist implements an extensible index framework for
// space-partitioning trees, modelled on SP-GiST (Section 7.1 of the paper).
// The framework manages the tree structure, insertion, matching and
// nearest-neighbour traversal; pluggable operator classes (OpClass) supply
// the partitioning logic. Three op-classes are provided, mirroring the
// instantiations the paper lists: a character trie, a kd-tree and a point
// quadtree.
package spgist

import (
	"container/heap"
	"errors"
)

// Key is an indexed key. Op-classes define the concrete type they accept
// (Point for the kd-tree and quadtree, string for the trie).
type Key interface{}

// Predicate is the partitioning predicate stored in an inner node (split
// plane, centroid, prefix depth, ...). Its concrete type is op-class private.
type Predicate interface{}

// Query is a search predicate. The built-in queries are ExactQuery,
// RangeQuery, PrefixQuery and RegexQuery; op-classes declare which they
// support via Consistent/LeafConsistent.
type Query interface{}

// Point is a 2-D point key used by the kd-tree and quadtree op-classes.
type Point struct {
	X, Y float64
}

// ExactQuery matches keys equal to Key.
type ExactQuery struct {
	Key Key
}

// RangeQuery matches points inside the inclusive rectangle.
type RangeQuery struct {
	MinX, MinY, MaxX, MaxY float64
}

// PrefixQuery matches strings having the given prefix.
type PrefixQuery struct {
	Prefix string
}

// RegexQuery matches strings against a limited regular-expression syntax
// supporting literals, '.', '*' on single characters, and anchors implied at
// both ends (the operations highlighted in the paper's SP-GiST work).
type RegexQuery struct {
	Pattern string
}

// Item is a search result.
type Item struct {
	Key  Key
	Data interface{}
}

// OpClass supplies the partitioning behaviour of one index type.
type OpClass interface {
	// Name identifies the op-class.
	Name() string
	// Choose returns the child index (0..fanout-1) the key descends into at an
	// inner node with the given predicate.
	Choose(pred Predicate, key Key) int
	// PickSplit partitions overflowing leaf keys: it returns the new inner
	// node's predicate, the fan-out, and for each key the child it moves to.
	PickSplit(keys []Key) (pred Predicate, fanout int, assignment []int)
	// Consistent reports whether child i of an inner node with the given
	// predicate can contain keys matching q.
	Consistent(pred Predicate, child int, q Query) bool
	// LeafConsistent reports whether a leaf key matches q.
	LeafConsistent(key Key, q Query) bool
}

// Distancer is implemented by op-classes that support nearest-neighbour
// search over Point keys.
type Distancer interface {
	// LowerBound returns a lower bound on the distance from q to any key in
	// child i of an inner node with the given predicate.
	LowerBound(pred Predicate, child int, q Point) float64
	// Distance returns the distance from q to a leaf key.
	Distance(key Key, q Point) float64
}

// ErrKNNUnsupported is returned by KNN for op-classes without Distancer.
var ErrKNNUnsupported = errors.New("spgist: op-class does not support nearest-neighbour search")

// DefaultLeafCapacity is the number of keys a leaf holds before it is split.
const DefaultLeafCapacity = 32

type node struct {
	leaf     bool
	keys     []Key
	datas    []interface{}
	pred     Predicate
	children []*node
}

// Tree is an SP-GiST index instance.
type Tree struct {
	ops      OpClass
	root     *node
	leafCap  int
	size     int
	reads    uint64 // node visits, simulated I/O
	maxDepth int
}

// New creates an empty index using the given op-class.
func New(ops OpClass) *Tree {
	return &Tree{ops: ops, root: &node{leaf: true}, leafCap: DefaultLeafCapacity, maxDepth: 128}
}

// Len returns the number of indexed keys.
func (t *Tree) Len() int { return t.size }

// OpClassName returns the name of the op-class in use.
func (t *Tree) OpClassName() string { return t.ops.Name() }

// NodeReads returns the node visits performed so far (simulated I/O).
func (t *Tree) NodeReads() uint64 { return t.reads }

// ResetStats zeroes the node visit counter.
func (t *Tree) ResetStats() { t.reads = 0 }

// Insert adds a key with its payload.
func (t *Tree) Insert(key Key, data interface{}) {
	t.insert(t.root, key, data, 0)
	t.size++
}

func (t *Tree) insert(n *node, key Key, data interface{}, depth int) {
	t.reads++
	if !n.leaf {
		child := t.ops.Choose(n.pred, key)
		if child < 0 || child >= len(n.children) {
			child = 0
		}
		if n.children[child] == nil {
			n.children[child] = &node{leaf: true}
		}
		t.insert(n.children[child], key, data, depth+1)
		return
	}
	n.keys = append(n.keys, key)
	n.datas = append(n.datas, data)
	if len(n.keys) <= t.leafCap || depth >= t.maxDepth {
		return
	}
	// Split the leaf using the op-class's PickSplit.
	pred, fanout, assignment := t.ops.PickSplit(n.keys)
	if fanout < 2 {
		return
	}
	// Guard against degenerate splits that put every key in one child.
	first := assignment[0]
	allSame := true
	for _, a := range assignment {
		if a != first {
			allSame = false
			break
		}
	}
	if allSame {
		return
	}
	children := make([]*node, fanout)
	for i, k := range n.keys {
		c := assignment[i]
		if c < 0 || c >= fanout {
			c = 0
		}
		if children[c] == nil {
			children[c] = &node{leaf: true}
		}
		children[c].keys = append(children[c].keys, k)
		children[c].datas = append(children[c].datas, n.datas[i])
	}
	n.leaf = false
	n.keys = nil
	n.datas = nil
	n.pred = pred
	n.children = children
}

// Search returns every item matching q.
func (t *Tree) Search(q Query) []Item {
	var out []Item
	t.search(t.root, q, &out)
	return out
}

func (t *Tree) search(n *node, q Query, out *[]Item) {
	if n == nil {
		return
	}
	t.reads++
	if n.leaf {
		for i, k := range n.keys {
			if t.ops.LeafConsistent(k, q) {
				*out = append(*out, Item{Key: k, Data: n.datas[i]})
			}
		}
		return
	}
	for i, c := range n.children {
		if c == nil {
			continue
		}
		if t.ops.Consistent(n.pred, i, q) {
			t.search(c, q, out)
		}
	}
}

// Exact returns items whose key equals key.
func (t *Tree) Exact(key Key) []Item { return t.Search(ExactQuery{Key: key}) }

// knnCandidate is an entry in the best-first priority queue.
type knnCandidate struct {
	node *node
	item *Item
	dist float64
}

type knnQueue []knnCandidate

func (q knnQueue) Len() int            { return len(q) }
func (q knnQueue) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q knnQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *knnQueue) Push(x interface{}) { *q = append(*q, x.(knnCandidate)) }
func (q *knnQueue) Pop() interface{} {
	old := *q
	n := len(old)
	item := old[n-1]
	*q = old[:n-1]
	return item
}

// KNN returns the k keys nearest to q using best-first traversal. The
// op-class must implement Distancer.
func (t *Tree) KNN(q Point, k int) ([]Item, error) {
	d, ok := t.ops.(Distancer)
	if !ok {
		return nil, ErrKNNUnsupported
	}
	if k <= 0 || t.size == 0 {
		return nil, nil
	}
	pq := &knnQueue{{node: t.root, dist: 0}}
	heap.Init(pq)
	var out []Item
	for pq.Len() > 0 && len(out) < k {
		cand := heap.Pop(pq).(knnCandidate)
		if cand.item != nil {
			out = append(out, *cand.item)
			continue
		}
		n := cand.node
		if n == nil {
			continue
		}
		t.reads++
		if n.leaf {
			for i, key := range n.keys {
				item := Item{Key: key, Data: n.datas[i]}
				heap.Push(pq, knnCandidate{item: &item, dist: d.Distance(key, q)})
			}
			continue
		}
		for i, c := range n.children {
			if c == nil {
				continue
			}
			heap.Push(pq, knnCandidate{node: c, dist: d.LowerBound(n.pred, i, q)})
		}
	}
	return out, nil
}

// Stats describes the structure of the tree, for tests and diagnostics.
type Stats struct {
	Nodes  int
	Leaves int
	Keys   int
	Depth  int
}

// Stats computes structural statistics.
func (t *Tree) Stats() Stats {
	var s Stats
	var walk func(n *node, depth int)
	walk = func(n *node, depth int) {
		if n == nil {
			return
		}
		s.Nodes++
		if depth > s.Depth {
			s.Depth = depth
		}
		if n.leaf {
			s.Leaves++
			s.Keys += len(n.keys)
			return
		}
		for _, c := range n.children {
			walk(c, depth+1)
		}
	}
	walk(t.root, 1)
	return s
}
