package spgist

import (
	"math"
	"sort"
	"strings"
)

// --- kd-tree op-class ------------------------------------------------------------

// kdPredicate is the split plane of a kd-tree inner node.
type kdPredicate struct {
	dim   int // 0 = X, 1 = Y
	value float64
}

// KDTreeOps is the kd-tree op-class over Point keys: inner nodes split on
// alternating dimensions at the median.
type KDTreeOps struct{}

// Name implements OpClass.
func (KDTreeOps) Name() string { return "kd-tree" }

func pointCoord(p Point, dim int) float64 {
	if dim == 0 {
		return p.X
	}
	return p.Y
}

// Choose implements OpClass.
func (KDTreeOps) Choose(pred Predicate, key Key) int {
	kp := pred.(kdPredicate)
	p := key.(Point)
	if pointCoord(p, kp.dim) < kp.value {
		return 0
	}
	return 1
}

// PickSplit implements OpClass: split at the median of the dimension with the
// larger spread.
func (KDTreeOps) PickSplit(keys []Key) (Predicate, int, []int) {
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, k := range keys {
		p := k.(Point)
		minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
		minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
	}
	dim := 0
	if maxY-minY > maxX-minX {
		dim = 1
	}
	coords := make([]float64, len(keys))
	for i, k := range keys {
		coords[i] = pointCoord(k.(Point), dim)
	}
	sort.Float64s(coords)
	median := coords[len(coords)/2]
	pred := kdPredicate{dim: dim, value: median}
	assignment := make([]int, len(keys))
	for i, k := range keys {
		if pointCoord(k.(Point), dim) < median {
			assignment[i] = 0
		} else {
			assignment[i] = 1
		}
	}
	return pred, 2, assignment
}

// Consistent implements OpClass for ExactQuery and RangeQuery.
func (KDTreeOps) Consistent(pred Predicate, child int, q Query) bool {
	kp := pred.(kdPredicate)
	switch query := q.(type) {
	case ExactQuery:
		p := query.Key.(Point)
		if child == 0 {
			return pointCoord(p, kp.dim) < kp.value
		}
		return pointCoord(p, kp.dim) >= kp.value
	case RangeQuery:
		lo, hi := query.MinX, query.MaxX
		if kp.dim == 1 {
			lo, hi = query.MinY, query.MaxY
		}
		if child == 0 {
			return lo < kp.value
		}
		return hi >= kp.value
	default:
		return true
	}
}

// LeafConsistent implements OpClass.
func (KDTreeOps) LeafConsistent(key Key, q Query) bool {
	p := key.(Point)
	switch query := q.(type) {
	case ExactQuery:
		qp := query.Key.(Point)
		return p.X == qp.X && p.Y == qp.Y
	case RangeQuery:
		return p.X >= query.MinX && p.X <= query.MaxX && p.Y >= query.MinY && p.Y <= query.MaxY
	default:
		return false
	}
}

// LowerBound implements Distancer: distance from q to the half-plane.
func (KDTreeOps) LowerBound(pred Predicate, child int, q Point) float64 {
	kp := pred.(kdPredicate)
	c := pointCoord(q, kp.dim)
	if child == 0 {
		if c < kp.value {
			return 0
		}
		return c - kp.value
	}
	if c >= kp.value {
		return 0
	}
	return kp.value - c
}

// Distance implements Distancer.
func (KDTreeOps) Distance(key Key, q Point) float64 {
	p := key.(Point)
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// --- point quadtree op-class -------------------------------------------------------

// quadPredicate is the centroid of a quadtree inner node.
type quadPredicate struct {
	cx, cy float64
}

// QuadtreeOps is the point-quadtree op-class over Point keys: inner nodes
// split space into four quadrants around a centroid.
type QuadtreeOps struct{}

// Name implements OpClass.
func (QuadtreeOps) Name() string { return "point-quadtree" }

func quadrant(pred quadPredicate, p Point) int {
	q := 0
	if p.X >= pred.cx {
		q |= 1
	}
	if p.Y >= pred.cy {
		q |= 2
	}
	return q
}

// Choose implements OpClass.
func (QuadtreeOps) Choose(pred Predicate, key Key) int {
	return quadrant(pred.(quadPredicate), key.(Point))
}

// PickSplit implements OpClass: the centroid of the keys becomes the predicate.
func (QuadtreeOps) PickSplit(keys []Key) (Predicate, int, []int) {
	var sx, sy float64
	for _, k := range keys {
		p := k.(Point)
		sx += p.X
		sy += p.Y
	}
	pred := quadPredicate{cx: sx / float64(len(keys)), cy: sy / float64(len(keys))}
	assignment := make([]int, len(keys))
	for i, k := range keys {
		assignment[i] = quadrant(pred, k.(Point))
	}
	return pred, 4, assignment
}

// Consistent implements OpClass.
func (QuadtreeOps) Consistent(pred Predicate, child int, q Query) bool {
	qp := pred.(quadPredicate)
	switch query := q.(type) {
	case ExactQuery:
		return quadrant(qp, query.Key.(Point)) == child
	case RangeQuery:
		// Quadrant bounds.
		xOK := false
		if child&1 == 0 {
			xOK = query.MinX < qp.cx
		} else {
			xOK = query.MaxX >= qp.cx
		}
		yOK := false
		if child&2 == 0 {
			yOK = query.MinY < qp.cy
		} else {
			yOK = query.MaxY >= qp.cy
		}
		return xOK && yOK
	default:
		return true
	}
}

// LeafConsistent implements OpClass.
func (QuadtreeOps) LeafConsistent(key Key, q Query) bool {
	return KDTreeOps{}.LeafConsistent(key, q)
}

// LowerBound implements Distancer: distance from q to the quadrant.
func (QuadtreeOps) LowerBound(pred Predicate, child int, q Point) float64 {
	qp := pred.(quadPredicate)
	var dx, dy float64
	if child&1 == 0 { // x < cx
		if q.X >= qp.cx {
			dx = q.X - qp.cx
		}
	} else { // x >= cx
		if q.X < qp.cx {
			dx = qp.cx - q.X
		}
	}
	if child&2 == 0 { // y < cy
		if q.Y >= qp.cy {
			dy = q.Y - qp.cy
		}
	} else {
		if q.Y < qp.cy {
			dy = qp.cy - q.Y
		}
	}
	return math.Hypot(dx, dy)
}

// Distance implements Distancer.
func (QuadtreeOps) Distance(key Key, q Point) float64 {
	return KDTreeOps{}.Distance(key, q)
}

// --- trie op-class ------------------------------------------------------------------

// triePredicate records the byte position inner-node children discriminate on.
type triePredicate struct {
	depth int
}

// trieFanout is 256 byte values plus one child for strings that end at depth.
const trieFanout = 257

// TrieOps is the character-trie op-class over string keys. It supports exact
// match, prefix match and the limited regular-expression match of RegexQuery.
type TrieOps struct{}

// Name implements OpClass.
func (TrieOps) Name() string { return "trie" }

// Choose implements OpClass.
func (TrieOps) Choose(pred Predicate, key Key) int {
	tp := pred.(triePredicate)
	s := key.(string)
	if len(s) <= tp.depth {
		return 256
	}
	return int(s[tp.depth])
}

// PickSplit implements OpClass: discriminate on the first byte position where
// the keys differ.
func (TrieOps) PickSplit(keys []Key) (Predicate, int, []int) {
	// Find the length of the longest common prefix of all keys.
	first := keys[0].(string)
	lcp := len(first)
	for _, k := range keys[1:] {
		s := k.(string)
		i := 0
		for i < lcp && i < len(s) && s[i] == first[i] {
			i++
		}
		if i < lcp {
			lcp = i
		}
	}
	pred := triePredicate{depth: lcp}
	assignment := make([]int, len(keys))
	for i, k := range keys {
		s := k.(string)
		if len(s) <= lcp {
			assignment[i] = 256
		} else {
			assignment[i] = int(s[lcp])
		}
	}
	return pred, trieFanout, assignment
}

// Consistent implements OpClass.
func (TrieOps) Consistent(pred Predicate, child int, q Query) bool {
	tp := pred.(triePredicate)
	switch query := q.(type) {
	case ExactQuery:
		s := query.Key.(string)
		if len(s) <= tp.depth {
			return child == 256
		}
		return child == int(s[tp.depth])
	case PrefixQuery:
		if len(query.Prefix) <= tp.depth {
			// Every child can contain strings extending the prefix; the
			// end-of-string child can too (a key equal to the prefix).
			return true
		}
		return child == int(query.Prefix[tp.depth])
	case RegexQuery:
		return regexChildConsistent(query.Pattern, tp.depth, child)
	default:
		return true
	}
}

// LeafConsistent implements OpClass.
func (TrieOps) LeafConsistent(key Key, q Query) bool {
	s := key.(string)
	switch query := q.(type) {
	case ExactQuery:
		return s == query.Key.(string)
	case PrefixQuery:
		return strings.HasPrefix(s, query.Prefix)
	case RegexQuery:
		return MatchSimpleRegex(query.Pattern, s)
	default:
		return false
	}
}

// --- limited regular expressions -----------------------------------------------------

// MatchSimpleRegex matches s against a limited anchored regular expression
// supporting literal characters, '.' (any single character) and 'c*' / '.*'
// (zero or more of the preceding element).
func MatchSimpleRegex(pattern, s string) bool {
	return matchRegexAt(pattern, s, 0, 0)
}

func matchRegexAt(p, s string, pi, si int) bool {
	if pi == len(p) {
		return si == len(s)
	}
	star := pi+1 < len(p) && p[pi+1] == '*'
	if star {
		// Zero occurrences.
		if matchRegexAt(p, s, pi+2, si) {
			return true
		}
		// One or more occurrences.
		for si < len(s) && (p[pi] == '.' || s[si] == p[pi]) {
			si++
			if matchRegexAt(p, s, pi+2, si) {
				return true
			}
		}
		return false
	}
	if si < len(s) && (p[pi] == '.' || s[si] == p[pi]) {
		return matchRegexAt(p, s, pi+1, si+1)
	}
	return false
}

// regexChildConsistent conservatively decides whether strings whose byte at
// position depth equals child (or that end before depth, child == 256) can
// match the pattern. It computes the set of characters the pattern allows at
// the given position; patterns with '*' are treated as allowing anything from
// that point on.
func regexChildConsistent(pattern string, depth, child int) bool {
	pos := 0
	pi := 0
	for pi < len(pattern) {
		star := pi+1 < len(pattern) && pattern[pi+1] == '*'
		if star {
			// From here on any character (or end) is possible.
			return true
		}
		if pos == depth {
			if child == 256 {
				return false // pattern still requires a character here
			}
			return pattern[pi] == '.' || int(pattern[pi]) == child
		}
		pos++
		pi++
	}
	// Pattern consumed before reaching depth: only end-of-string child or
	// nothing can match — strings longer than the pattern cannot match an
	// anchored pattern without '*'.
	return child == 256 && depth >= pos
}
