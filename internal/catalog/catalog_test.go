package catalog

import (
	"path/filepath"
	"testing"

	"bdbms/internal/value"
)

func geneSchema() *Schema {
	return &Schema{
		Name: "DB1_Gene",
		Columns: []Column{
			{Name: "GID", Type: value.Text, NotNull: true},
			{Name: "GName", Type: value.Text},
			{Name: "GSequence", Type: value.Sequence},
		},
		PrimaryKey: "GID",
	}
}

func TestCreateAndLookupTable(t *testing.T) {
	c := New()
	if err := c.CreateTable(geneSchema()); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateTable(geneSchema()); err == nil {
		t.Error("duplicate create should fail")
	}
	s, err := c.Table("db1_gene") // case-insensitive
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "DB1_Gene" {
		t.Errorf("schema name %q", s.Name)
	}
	if !c.HasTable("DB1_GENE") || c.HasTable("nope") {
		t.Error("HasTable wrong")
	}
	if _, err := c.Table("missing"); err == nil {
		t.Error("missing table should fail")
	}
	if len(c.Tables()) != 1 {
		t.Error("Tables() count wrong")
	}
}

func TestCreateTableValidation(t *testing.T) {
	c := New()
	if err := c.CreateTable(nil); err == nil {
		t.Error("nil schema should fail")
	}
	if err := c.CreateTable(&Schema{Name: "t"}); err == nil {
		t.Error("no columns should fail")
	}
	if err := c.CreateTable(&Schema{Name: "t", Columns: []Column{{Name: "a"}, {Name: "A"}}}); err == nil {
		t.Error("duplicate columns should fail")
	}
	if err := c.CreateTable(&Schema{Name: "t", Columns: []Column{{Name: "a"}}, PrimaryKey: "zz"}); err == nil {
		t.Error("unknown primary key should fail")
	}
}

func TestDropTable(t *testing.T) {
	c := New()
	c.CreateTable(geneSchema())
	c.CreateAnnotationTable(&AnnotationTable{Name: "GAnnotation", UserTable: "DB1_Gene"})
	if err := c.DropTable("DB1_Gene"); err != nil {
		t.Fatal(err)
	}
	if err := c.DropTable("DB1_Gene"); err == nil {
		t.Error("dropping missing table should fail")
	}
	if len(c.AnnotationTables("DB1_Gene")) != 0 {
		t.Error("annotation tables should be dropped with the table")
	}
}

func TestColumnIndexAndNames(t *testing.T) {
	s := geneSchema()
	if s.ColumnIndex("gsequence") != 2 {
		t.Error("case-insensitive column lookup failed")
	}
	if s.ColumnIndex("absent") != -1 {
		t.Error("absent column should be -1")
	}
	names := s.ColumnNames()
	if len(names) != 3 || names[0] != "GID" {
		t.Errorf("ColumnNames = %v", names)
	}
}

func TestValidateRow(t *testing.T) {
	s := geneSchema()
	good := value.Row{value.NewText("JW0080"), value.NewText("mraW"), value.NewSequence("ATG")}
	if err := s.ValidateRow(good); err != nil {
		t.Fatal(err)
	}
	if err := s.ValidateRow(value.Row{value.NewText("x")}); err == nil {
		t.Error("arity mismatch should fail")
	}
	if err := s.ValidateRow(value.Row{value.NewNull(), value.NewText("a"), value.NewText("b")}); err == nil {
		t.Error("NULL in NOT NULL column should fail")
	}
	if err := s.ValidateRow(value.Row{value.NewInt(3), value.NewText("a"), value.NewText("b")}); err == nil {
		t.Error("type mismatch should fail")
	}
	// Text is assignable to Sequence columns.
	mixed := value.Row{value.NewText("JW1"), value.NewNull(), value.NewText("ATG")}
	if err := s.ValidateRow(mixed); err != nil {
		t.Errorf("text->sequence assignability: %v", err)
	}
}

func TestCoerceRow(t *testing.T) {
	s := &Schema{Name: "m", Columns: []Column{
		{Name: "id", Type: value.Int},
		{Name: "score", Type: value.Float},
		{Name: "seq", Type: value.Sequence},
	}}
	row, err := s.CoerceRow(value.Row{value.NewText("7"), value.NewInt(3), value.NewText("ATG")})
	if err != nil {
		t.Fatal(err)
	}
	if row[0].Type() != value.Int || row[0].Int() != 7 {
		t.Errorf("coerced id = %v", row[0])
	}
	if row[1].Type() != value.Float || row[1].Float() != 3 {
		t.Errorf("coerced score = %v", row[1])
	}
	if row[2].Type() != value.Sequence {
		t.Errorf("coerced seq type = %v", row[2].Type())
	}
	if _, err := s.CoerceRow(value.Row{value.NewText("x"), value.NewInt(1), value.NewText("A")}); err == nil {
		t.Error("uncoercible value should fail")
	}
	if _, err := s.CoerceRow(value.Row{value.NewInt(1)}); err == nil {
		t.Error("arity mismatch should fail")
	}
}

func TestAnnotationTables(t *testing.T) {
	c := New()
	c.CreateTable(geneSchema())
	def := &AnnotationTable{Name: "GAnnotation", UserTable: "DB1_Gene", Category: "comment"}
	if err := c.CreateAnnotationTable(def); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateAnnotationTable(def); err == nil {
		t.Error("duplicate annotation table should fail")
	}
	if err := c.CreateAnnotationTable(&AnnotationTable{Name: "x", UserTable: "missing"}); err == nil {
		t.Error("annotation table on missing user table should fail")
	}
	if err := c.CreateAnnotationTable(&AnnotationTable{Name: "", UserTable: ""}); err == nil {
		t.Error("incomplete definition should fail")
	}
	prov := &AnnotationTable{Name: "GProvenance", UserTable: "DB1_Gene", Category: "provenance", SystemManaged: true}
	if err := c.CreateAnnotationTable(prov); err != nil {
		t.Fatal(err)
	}
	got, err := c.AnnotationTable("db1_gene", "gannotation")
	if err != nil || got.Category != "comment" {
		t.Fatalf("lookup: %v %v", got, err)
	}
	all := c.AnnotationTables("DB1_Gene")
	if len(all) != 2 || all[0].Name != "GAnnotation" {
		t.Errorf("AnnotationTables = %v", all)
	}
	if err := c.DropAnnotationTable("DB1_Gene", "GAnnotation"); err != nil {
		t.Fatal(err)
	}
	if err := c.DropAnnotationTable("DB1_Gene", "GAnnotation"); err == nil {
		t.Error("double drop should fail")
	}
	if err := c.DropAnnotationTable("missing", "x"); err == nil {
		t.Error("drop on missing user table should fail")
	}
	if _, err := c.AnnotationTable("DB1_Gene", "GAnnotation"); err == nil {
		t.Error("dropped annotation table still visible")
	}
	if _, err := c.AnnotationTable("missing", "x"); err == nil {
		t.Error("lookup on missing user table should fail")
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	c := New()
	c.CreateTable(geneSchema())
	c.CreateTable(&Schema{Name: "Protein", Columns: []Column{
		{Name: "PName", Type: value.Text},
		{Name: "GID", Type: value.Text},
		{Name: "PSequence", Type: value.Sequence},
		{Name: "PFunction", Type: value.Text},
	}})
	c.CreateAnnotationTable(&AnnotationTable{Name: "GAnnotation", UserTable: "DB1_Gene", Category: "comment"})
	c.CreateAnnotationTable(&AnnotationTable{Name: "GProvenance", UserTable: "DB1_Gene", Category: "provenance", SystemManaged: true})

	path := filepath.Join(t.TempDir(), "catalog.json")
	if err := c.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Tables()) != 2 {
		t.Errorf("loaded %d tables", len(loaded.Tables()))
	}
	ann := loaded.AnnotationTables("DB1_Gene")
	if len(ann) != 2 {
		t.Errorf("loaded %d annotation tables", len(ann))
	}
	got, err := loaded.AnnotationTable("DB1_Gene", "GProvenance")
	if err != nil || !got.SystemManaged {
		t.Errorf("provenance table lost flags: %+v %v", got, err)
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("loading missing file should fail")
	}
}
