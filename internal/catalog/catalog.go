// Package catalog maintains the schema metadata of a bdbms database: user
// tables and their columns, the annotation tables attached to each user table
// (Section 3.1 of the paper), and content-approval settings. The catalog can
// be serialised to JSON so a database directory survives restarts.
package catalog

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"

	"bdbms/internal/value"
)

// Errors returned by the catalog.
var (
	// ErrTableExists is returned when creating a table that already exists.
	ErrTableExists = errors.New("catalog: table already exists")
	// ErrTableNotFound is returned when referencing an unknown table.
	ErrTableNotFound = errors.New("catalog: table not found")
	// ErrColumnNotFound is returned when referencing an unknown column.
	ErrColumnNotFound = errors.New("catalog: column not found")
	// ErrAnnotationTableExists is returned when creating a duplicate annotation table.
	ErrAnnotationTableExists = errors.New("catalog: annotation table already exists")
	// ErrAnnotationTableNotFound is returned when referencing an unknown annotation table.
	ErrAnnotationTableNotFound = errors.New("catalog: annotation table not found")
	// ErrSchemaMismatch is returned when a row does not match its table schema.
	ErrSchemaMismatch = errors.New("catalog: row does not match schema")
)

// Column describes one column of a user table.
type Column struct {
	// Name is the column name (case-insensitive for lookups, stored as given).
	Name string `json:"name"`
	// Type is the column's value type.
	Type value.Type `json:"type"`
	// NotNull forbids NULL values when true.
	NotNull bool `json:"not_null,omitempty"`
}

// Schema describes a user table.
type Schema struct {
	// Name is the table name.
	Name string `json:"name"`
	// Columns are the table's columns in declaration order.
	Columns []Column `json:"columns"`
	// PrimaryKey is the name of the primary key column ("" when none).
	PrimaryKey string `json:"primary_key,omitempty"`
}

// ColumnIndex returns the position of the named column, or -1.
// Lookup is case-insensitive.
func (s *Schema) ColumnIndex(name string) int {
	for i, c := range s.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// ColumnNames returns the names of all columns in order.
func (s *Schema) ColumnNames() []string {
	out := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		out[i] = c.Name
	}
	return out
}

// ValidateRow checks that row matches the schema: arity, NOT NULL constraints
// and value types (Int/Float are mutually assignable; Text/Sequence likewise).
func (s *Schema) ValidateRow(row value.Row) error {
	if len(row) != len(s.Columns) {
		return fmt.Errorf("%w: table %s expects %d columns, got %d",
			ErrSchemaMismatch, s.Name, len(s.Columns), len(row))
	}
	for i, col := range s.Columns {
		v := row[i]
		if v.IsNull() {
			if col.NotNull {
				return fmt.Errorf("%w: column %s.%s is NOT NULL", ErrSchemaMismatch, s.Name, col.Name)
			}
			continue
		}
		if !typeAssignable(v.Type(), col.Type) {
			return fmt.Errorf("%w: column %s.%s expects %s, got %s",
				ErrSchemaMismatch, s.Name, col.Name, col.Type, v.Type())
		}
	}
	return nil
}

// CoerceRow casts each value of row to the column type where an implicit
// conversion exists, returning the coerced row.
func (s *Schema) CoerceRow(row value.Row) (value.Row, error) {
	if len(row) != len(s.Columns) {
		return nil, fmt.Errorf("%w: table %s expects %d columns, got %d",
			ErrSchemaMismatch, s.Name, len(s.Columns), len(row))
	}
	out := make(value.Row, len(row))
	for i, col := range s.Columns {
		v := row[i]
		if v.IsNull() || v.Type() == col.Type {
			out[i] = v
			continue
		}
		cast, err := v.Cast(col.Type)
		if err != nil {
			return nil, fmt.Errorf("%w: column %s.%s: %v", ErrSchemaMismatch, s.Name, col.Name, err)
		}
		out[i] = cast
	}
	if err := s.ValidateRow(out); err != nil {
		return nil, err
	}
	return out, nil
}

func typeAssignable(got, want value.Type) bool {
	if got == want {
		return true
	}
	num := func(t value.Type) bool { return t == value.Int || t == value.Float }
	str := func(t value.Type) bool { return t == value.Text || t == value.Sequence }
	return (num(got) && num(want)) || (str(got) && str(want))
}

// AnnotationTable describes one annotation table attached to a user table
// (the CREATE ANNOTATION TABLE command of Figure 4). Separate annotation
// tables let users categorise annotations (provenance vs. comments).
type AnnotationTable struct {
	// Name is the annotation table's name, unique per user table.
	Name string `json:"name"`
	// UserTable is the user table the annotations attach to.
	UserTable string `json:"user_table"`
	// Category is a free-form label ("comment", "provenance", ...).
	Category string `json:"category,omitempty"`
	// SystemManaged marks annotation tables only the system may write to
	// (provenance, Section 4).
	SystemManaged bool `json:"system_managed,omitempty"`
}

// Catalog is the in-memory schema registry. All methods are safe for
// concurrent use.
type Catalog struct {
	mu        sync.RWMutex
	tables    map[string]*Schema
	annTables map[string]map[string]*AnnotationTable // user table -> ann table name -> def
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{
		tables:    make(map[string]*Schema),
		annTables: make(map[string]map[string]*AnnotationTable),
	}
}

func key(name string) string { return strings.ToLower(name) }

// CreateTable registers a new table schema.
func (c *Catalog) CreateTable(s *Schema) error {
	if s == nil || s.Name == "" {
		return errors.New("catalog: empty schema")
	}
	if len(s.Columns) == 0 {
		return fmt.Errorf("catalog: table %s has no columns", s.Name)
	}
	seen := map[string]bool{}
	for _, col := range s.Columns {
		k := key(col.Name)
		if seen[k] {
			return fmt.Errorf("catalog: duplicate column %s in table %s", col.Name, s.Name)
		}
		seen[k] = true
	}
	if s.PrimaryKey != "" && s.ColumnIndex(s.PrimaryKey) < 0 {
		return fmt.Errorf("%w: primary key %s", ErrColumnNotFound, s.PrimaryKey)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[key(s.Name)]; ok {
		return fmt.Errorf("%w: %s", ErrTableExists, s.Name)
	}
	c.tables[key(s.Name)] = s
	return nil
}

// DropTable removes a table and all its annotation tables.
func (c *Catalog) DropTable(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[key(name)]; !ok {
		return fmt.Errorf("%w: %s", ErrTableNotFound, name)
	}
	delete(c.tables, key(name))
	delete(c.annTables, key(name))
	return nil
}

// Table returns the schema of the named table.
func (c *Catalog) Table(name string) (*Schema, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	s, ok := c.tables[key(name)]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrTableNotFound, name)
	}
	return s, nil
}

// HasTable reports whether the named table exists.
func (c *Catalog) HasTable(name string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, ok := c.tables[key(name)]
	return ok
}

// Tables returns all table schemas sorted by name.
func (c *Catalog) Tables() []*Schema {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Schema, 0, len(c.tables))
	for _, s := range c.tables {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return key(out[i].Name) < key(out[j].Name) })
	return out
}

// CreateAnnotationTable registers an annotation table over a user table.
func (c *Catalog) CreateAnnotationTable(def *AnnotationTable) error {
	if def == nil || def.Name == "" || def.UserTable == "" {
		return errors.New("catalog: incomplete annotation table definition")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[key(def.UserTable)]; !ok {
		return fmt.Errorf("%w: %s", ErrTableNotFound, def.UserTable)
	}
	m, ok := c.annTables[key(def.UserTable)]
	if !ok {
		m = make(map[string]*AnnotationTable)
		c.annTables[key(def.UserTable)] = m
	}
	if _, ok := m[key(def.Name)]; ok {
		return fmt.Errorf("%w: %s on %s", ErrAnnotationTableExists, def.Name, def.UserTable)
	}
	m[key(def.Name)] = def
	return nil
}

// DropAnnotationTable removes an annotation table definition.
func (c *Catalog) DropAnnotationTable(userTable, name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.annTables[key(userTable)]
	if !ok {
		return fmt.Errorf("%w: %s on %s", ErrAnnotationTableNotFound, name, userTable)
	}
	if _, ok := m[key(name)]; !ok {
		return fmt.Errorf("%w: %s on %s", ErrAnnotationTableNotFound, name, userTable)
	}
	delete(m, key(name))
	return nil
}

// AnnotationTable returns the definition of the named annotation table on the
// given user table.
func (c *Catalog) AnnotationTable(userTable, name string) (*AnnotationTable, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	m, ok := c.annTables[key(userTable)]
	if !ok {
		return nil, fmt.Errorf("%w: %s on %s", ErrAnnotationTableNotFound, name, userTable)
	}
	def, ok := m[key(name)]
	if !ok {
		return nil, fmt.Errorf("%w: %s on %s", ErrAnnotationTableNotFound, name, userTable)
	}
	return def, nil
}

// AnnotationTables returns all annotation tables attached to a user table,
// sorted by name.
func (c *Catalog) AnnotationTables(userTable string) []*AnnotationTable {
	c.mu.RLock()
	defer c.mu.RUnlock()
	m := c.annTables[key(userTable)]
	out := make([]*AnnotationTable, 0, len(m))
	for _, def := range m {
		out = append(out, def)
	}
	sort.Slice(out, func(i, j int) bool { return key(out[i].Name) < key(out[j].Name) })
	return out
}

// --- persistence -------------------------------------------------------------

type catalogJSON struct {
	Tables           []*Schema          `json:"tables"`
	AnnotationTables []*AnnotationTable `json:"annotation_tables"`
}

// MarshalJSON serialises the catalog deterministically.
func (c *Catalog) MarshalJSON() ([]byte, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	doc := catalogJSON{}
	for _, s := range c.tables {
		doc.Tables = append(doc.Tables, s)
	}
	sort.Slice(doc.Tables, func(i, j int) bool { return key(doc.Tables[i].Name) < key(doc.Tables[j].Name) })
	for _, m := range c.annTables {
		for _, def := range m {
			doc.AnnotationTables = append(doc.AnnotationTables, def)
		}
	}
	sort.Slice(doc.AnnotationTables, func(i, j int) bool {
		a, b := doc.AnnotationTables[i], doc.AnnotationTables[j]
		if a.UserTable != b.UserTable {
			return key(a.UserTable) < key(b.UserTable)
		}
		return key(a.Name) < key(b.Name)
	})
	return json.MarshalIndent(doc, "", "  ")
}

// UnmarshalJSON restores a catalog serialised by MarshalJSON.
func (c *Catalog) UnmarshalJSON(data []byte) error {
	var doc catalogJSON
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("catalog: decode: %w", err)
	}
	c.mu.Lock()
	c.tables = make(map[string]*Schema)
	c.annTables = make(map[string]map[string]*AnnotationTable)
	c.mu.Unlock()
	for _, s := range doc.Tables {
		if err := c.CreateTable(s); err != nil {
			return err
		}
	}
	for _, def := range doc.AnnotationTables {
		if err := c.CreateAnnotationTable(def); err != nil {
			return err
		}
	}
	return nil
}

// SaveFile writes the catalog to path atomically (write to a temporary
// file, fsync, then rename): a crash — or power loss — mid-checkpoint
// leaves either the old or the new snapshot, never a torn one.
func (c *Catalog) SaveFile(path string) error {
	data, err := c.MarshalJSON()
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFile reads a catalog previously written by SaveFile.
func LoadFile(path string) (*Catalog, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("catalog: read %s: %w", path, err)
	}
	c := New()
	if err := c.UnmarshalJSON(data); err != nil {
		return nil, err
	}
	return c, nil
}
