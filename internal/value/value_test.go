package value

import (
	"bytes"
	"math"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestTypeString(t *testing.T) {
	cases := map[Type]string{
		Null: "NULL", Int: "INT", Float: "FLOAT", Text: "TEXT",
		Bool: "BOOL", Sequence: "SEQUENCE", Timestamp: "TIMESTAMP",
	}
	for typ, want := range cases {
		if got := typ.String(); got != want {
			t.Errorf("Type(%d).String() = %q, want %q", typ, got, want)
		}
	}
}

func TestParseType(t *testing.T) {
	cases := map[string]Type{
		"int": Int, "INTEGER": Int, "bigint": Int,
		"float": Float, "DOUBLE": Float, "real": Float,
		"text": Text, "VARCHAR": Text, "string": Text,
		"bool": Bool, "BOOLEAN": Bool,
		"sequence": Sequence, "SEQ": Sequence,
		"timestamp": Timestamp, "datetime": Timestamp,
	}
	for name, want := range cases {
		got, err := ParseType(name)
		if err != nil {
			t.Fatalf("ParseType(%q): %v", name, err)
		}
		if got != want {
			t.Errorf("ParseType(%q) = %v, want %v", name, got, want)
		}
	}
	if _, err := ParseType("blob"); err == nil {
		t.Error("ParseType(blob) should fail")
	}
}

func TestCompareNumeric(t *testing.T) {
	a, b := NewInt(3), NewFloat(3.5)
	c, err := a.Compare(b)
	if err != nil || c != -1 {
		t.Fatalf("3 vs 3.5 = %d, %v; want -1, nil", c, err)
	}
	c, err = b.Compare(a)
	if err != nil || c != 1 {
		t.Fatalf("3.5 vs 3 = %d, %v; want 1, nil", c, err)
	}
	c, err = NewInt(7).Compare(NewInt(7))
	if err != nil || c != 0 {
		t.Fatalf("7 vs 7 = %d, %v; want 0, nil", c, err)
	}
}

func TestCompareStrings(t *testing.T) {
	c, err := NewText("ATG").Compare(NewSequence("ATT"))
	if err != nil || c != -1 {
		t.Fatalf("ATG vs ATT = %d, %v", c, err)
	}
}

func TestCompareNulls(t *testing.T) {
	c, _ := NewNull().Compare(NewInt(0))
	if c != -1 {
		t.Errorf("NULL vs 0 = %d, want -1", c)
	}
	c, _ = NewInt(0).Compare(NewNull())
	if c != 1 {
		t.Errorf("0 vs NULL = %d, want 1", c)
	}
	c, _ = NewNull().Compare(NewNull())
	if c != 0 {
		t.Errorf("NULL vs NULL = %d, want 0", c)
	}
}

func TestCompareTypeMismatch(t *testing.T) {
	if _, err := NewInt(1).Compare(NewText("x")); err == nil {
		t.Error("INT vs TEXT should be an error")
	}
	if _, err := NewBool(true).Compare(NewFloat(1)); err == nil {
		t.Error("BOOL vs FLOAT should be an error")
	}
}

func TestEqualNullSemantics(t *testing.T) {
	if NewNull().Equal(NewNull()) {
		t.Error("NULL = NULL must be false under SQL equality")
	}
	if !NewInt(4).Equal(NewFloat(4)) {
		t.Error("4 = 4.0 must be true")
	}
}

func TestCastRoundTrips(t *testing.T) {
	v, err := NewText("42").Cast(Int)
	if err != nil || v.Int() != 42 {
		t.Fatalf("cast text->int: %v %v", v, err)
	}
	v, err = NewText("2.5").Cast(Float)
	if err != nil || v.Float() != 2.5 {
		t.Fatalf("cast text->float: %v %v", v, err)
	}
	v, err = NewInt(1).Cast(Bool)
	if err != nil || !v.Bool() {
		t.Fatalf("cast int->bool: %v %v", v, err)
	}
	v, err = NewFloat(3.9).Cast(Int)
	if err != nil || v.Int() != 3 {
		t.Fatalf("cast float->int: %v %v", v, err)
	}
	v, err = NewText("hello").Cast(Sequence)
	if err != nil || v.Type() != Sequence {
		t.Fatalf("cast text->sequence: %v %v", v, err)
	}
	if _, err = NewBool(true).Cast(Timestamp); err == nil {
		t.Error("bool->timestamp should fail")
	}
	v, err = NewText("2026-06-16").Cast(Timestamp)
	if err != nil || v.Time().Year() != 2026 {
		t.Fatalf("cast text->timestamp: %v %v", v, err)
	}
}

func TestCastNullPassthrough(t *testing.T) {
	v, err := NewNull().Cast(Int)
	if err != nil || !v.IsNull() {
		t.Fatalf("NULL cast should stay NULL, got %v %v", v, err)
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{NewInt(-5), "-5"},
		{NewFloat(1.25), "1.25"},
		{NewText("abc"), "abc"},
		{NewBool(true), "true"},
		{NewBool(false), "false"},
		{NewNull(), "NULL"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestEncodeDecodeValueRoundTrip(t *testing.T) {
	now := time.Now().UTC().Truncate(time.Microsecond)
	vals := []Value{
		NewNull(), NewInt(0), NewInt(-1), NewInt(math.MaxInt64),
		NewFloat(3.14159), NewFloat(-0.001), NewText(""), NewText("hello world"),
		NewSequence("ATGCATGC"), NewBool(true), NewBool(false), NewTimestamp(now),
	}
	for _, v := range vals {
		buf := v.Encode(nil)
		got, n, err := DecodeValue(buf)
		if err != nil {
			t.Fatalf("decode %v: %v", v, err)
		}
		if n != len(buf) {
			t.Errorf("decode %v consumed %d of %d bytes", v, n, len(buf))
		}
		if got.Type() != v.Type() || got.String() != v.String() {
			t.Errorf("round trip %v -> %v", v, got)
		}
	}
}

func TestEncodeDecodeRow(t *testing.T) {
	row := Row{NewInt(1), NewText("gene"), NewSequence("ATG"), NewNull(), NewFloat(0.5)}
	buf := EncodeRow(row)
	got, err := DecodeRow(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(row) {
		t.Fatalf("row length %d, want %d", len(got), len(row))
	}
	for i := range row {
		if got[i].Type() != row[i].Type() || got[i].String() != row[i].String() {
			t.Errorf("col %d: %v != %v", i, got[i], row[i])
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := DecodeValue(nil); err == nil {
		t.Error("decoding empty buffer should fail")
	}
	if _, _, err := DecodeValue([]byte{byte(Int), 1, 2}); err == nil {
		t.Error("truncated int should fail")
	}
	if _, err := DecodeRow([]byte{}); err == nil {
		t.Error("decoding empty row should fail")
	}
	if _, _, err := DecodeValue([]byte{200}); err == nil {
		t.Error("unknown tag should fail")
	}
}

func TestRowCloneAndEqual(t *testing.T) {
	r := Row{NewInt(1), NewText("a"), NewNull()}
	c := r.Clone()
	if !r.Equal(c) {
		t.Fatal("clone must equal original")
	}
	c[0] = NewInt(2)
	if r.Equal(c) {
		t.Fatal("mutated clone must differ")
	}
	if r.Equal(Row{NewInt(1)}) {
		t.Fatal("rows of different length must differ")
	}
}

func TestEncodeKeyPreservesIntOrder(t *testing.T) {
	ints := []int64{math.MinInt64, -100, -1, 0, 1, 42, math.MaxInt64}
	keys := make([][]byte, len(ints))
	for i, n := range ints {
		keys[i] = NewInt(n).EncodeKey(nil)
	}
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return bytes.Compare(keys[i], keys[j]) < 0 }) {
		t.Fatal("EncodeKey must preserve integer ordering")
	}
}

func TestEncodeKeyPreservesFloatOrder(t *testing.T) {
	fs := []float64{-1e10, -2.5, -0.0001, 0, 0.0001, 2.5, 1e10}
	keys := make([][]byte, len(fs))
	for i, f := range fs {
		keys[i] = NewFloat(f).EncodeKey(nil)
	}
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return bytes.Compare(keys[i], keys[j]) < 0 }) {
		t.Fatal("EncodeKey must preserve float ordering")
	}
}

// Property: the binary codec round-trips arbitrary ints, floats and strings.
func TestQuickValueCodecRoundTrip(t *testing.T) {
	f := func(i int64, fl float64, s string, b bool) bool {
		if math.IsNaN(fl) {
			fl = 0
		}
		row := Row{NewInt(i), NewFloat(fl), NewText(s), NewBool(b), NewSequence(s)}
		got, err := DecodeRow(EncodeRow(row))
		if err != nil || len(got) != len(row) {
			return false
		}
		return got[0].Int() == i && got[1].Float() == fl && got[2].Text() == s &&
			got[3].Bool() == b && got[4].Text() == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: EncodeKey ordering for ints matches numeric ordering.
func TestQuickEncodeKeyOrder(t *testing.T) {
	f := func(a, b int64) bool {
		ka := NewInt(a).EncodeKey(nil)
		kb := NewInt(b).EncodeKey(nil)
		switch {
		case a < b:
			return bytes.Compare(ka, kb) < 0
		case a > b:
			return bytes.Compare(ka, kb) > 0
		default:
			return bytes.Equal(ka, kb)
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: text key encoding preserves order for strings without NUL bytes.
func TestQuickTextKeyOrder(t *testing.T) {
	clean := func(s string) string {
		out := make([]byte, 0, len(s))
		for i := 0; i < len(s); i++ {
			if s[i] != 0 {
				out = append(out, s[i])
			}
		}
		return string(out)
	}
	f := func(a, b string) bool {
		a, b = clean(a), clean(b)
		ka := NewText(a).EncodeKey(nil)
		kb := NewText(b).EncodeKey(nil)
		cmp := bytes.Compare(ka, kb)
		switch {
		case a < b:
			return cmp < 0
		case a > b:
			return cmp > 0
		default:
			return cmp == 0
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeKeyNegativeZero(t *testing.T) {
	neg := NewFloat(math.Copysign(0, -1))
	pos := NewFloat(0)
	if c, err := neg.Compare(pos); err != nil || c != 0 {
		t.Fatalf("Compare(-0.0, +0.0) = %d, %v", c, err)
	}
	if !bytes.Equal(neg.EncodeKey(nil), pos.EncodeKey(nil)) {
		t.Errorf("EncodeKey(-0.0) != EncodeKey(+0.0): values that Compare equal must share a key")
	}
}
