// Package value defines the typed value and row model shared by the storage
// engine, the A-SQL executor, and the bdbms managers.
//
// A Value is a dynamically typed scalar (integer, float, text, boolean,
// biological sequence, or timestamp). Rows are ordered slices of values that
// match a table schema. The package also provides a stable binary codec so
// rows can be stored in heap pages and index keys can be compared bytewise.
package value

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Type identifies the dynamic type of a Value.
type Type uint8

// Supported value types.
const (
	// Null is the type of the SQL NULL value.
	Null Type = iota
	// Int is a 64-bit signed integer.
	Int
	// Float is a 64-bit IEEE-754 floating point number.
	Float
	// Text is an arbitrary UTF-8 string.
	Text
	// Bool is a boolean.
	Bool
	// Sequence is a biological sequence (gene, protein, or secondary
	// structure). It is stored like Text but carries a distinct type so the
	// engine can route it to sequence-aware indexes (SBC-tree).
	Sequence
	// Timestamp is a point in time with nanosecond precision.
	Timestamp
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case Null:
		return "NULL"
	case Int:
		return "INT"
	case Float:
		return "FLOAT"
	case Text:
		return "TEXT"
	case Bool:
		return "BOOL"
	case Sequence:
		return "SEQUENCE"
	case Timestamp:
		return "TIMESTAMP"
	default:
		return fmt.Sprintf("TYPE(%d)", uint8(t))
	}
}

// ParseType maps a type name (as written in A-SQL DDL) to a Type.
func ParseType(name string) (Type, error) {
	switch strings.ToUpper(strings.TrimSpace(name)) {
	case "INT", "INTEGER", "BIGINT":
		return Int, nil
	case "FLOAT", "DOUBLE", "REAL", "NUMERIC":
		return Float, nil
	case "TEXT", "VARCHAR", "STRING", "CHAR":
		return Text, nil
	case "BOOL", "BOOLEAN":
		return Bool, nil
	case "SEQUENCE", "SEQ":
		return Sequence, nil
	case "TIMESTAMP", "DATETIME", "TIME":
		return Timestamp, nil
	default:
		return Null, fmt.Errorf("value: unknown type %q", name)
	}
}

// Value is a dynamically typed scalar.
type Value struct {
	typ Type
	i   int64
	f   float64
	s   string
	b   bool
	t   time.Time
}

// Errors returned by the value package.
var (
	// ErrTypeMismatch is returned when two values of incompatible types are
	// compared or combined.
	ErrTypeMismatch = errors.New("value: type mismatch")
	// ErrBadEncoding is returned when a binary row or value cannot be decoded.
	ErrBadEncoding = errors.New("value: bad encoding")
)

// NewNull returns the NULL value.
func NewNull() Value { return Value{typ: Null} }

// NewInt returns an Int value.
func NewInt(v int64) Value { return Value{typ: Int, i: v} }

// NewFloat returns a Float value.
func NewFloat(v float64) Value { return Value{typ: Float, f: v} }

// NewText returns a Text value.
func NewText(v string) Value { return Value{typ: Text, s: v} }

// NewBool returns a Bool value.
func NewBool(v bool) Value { return Value{typ: Bool, b: v} }

// NewSequence returns a Sequence value.
func NewSequence(v string) Value { return Value{typ: Sequence, s: v} }

// NewTimestamp returns a Timestamp value.
func NewTimestamp(v time.Time) Value { return Value{typ: Timestamp, t: v.UTC()} }

// Type returns the dynamic type of v.
func (v Value) Type() Type { return v.typ }

// IsNull reports whether v is the NULL value.
func (v Value) IsNull() bool { return v.typ == Null }

// Int returns the integer payload. It is only meaningful when Type() == Int.
func (v Value) Int() int64 { return v.i }

// Float returns the float payload, converting from Int when necessary.
func (v Value) Float() float64 {
	if v.typ == Int {
		return float64(v.i)
	}
	return v.f
}

// Text returns the string payload for Text and Sequence values.
func (v Value) Text() string { return v.s }

// Bool returns the boolean payload.
func (v Value) Bool() bool { return v.b }

// Time returns the timestamp payload.
func (v Value) Time() time.Time { return v.t }

// String renders the value for display and for the CLI grid.
func (v Value) String() string {
	switch v.typ {
	case Null:
		return "NULL"
	case Int:
		return strconv.FormatInt(v.i, 10)
	case Float:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case Text, Sequence:
		return v.s
	case Bool:
		if v.b {
			return "true"
		}
		return "false"
	case Timestamp:
		return v.t.Format(time.RFC3339Nano)
	default:
		return fmt.Sprintf("<%s>", v.typ)
	}
}

// Equal reports whether two values are equal. NULL never equals anything,
// matching SQL semantics used by the executor's equality predicate.
func (v Value) Equal(o Value) bool {
	if v.typ == Null || o.typ == Null {
		return false
	}
	c, err := v.Compare(o)
	return err == nil && c == 0
}

// numeric reports whether the type participates in numeric comparisons.
func (t Type) numeric() bool { return t == Int || t == Float }

// stringy reports whether the type is compared as a string.
func (t Type) stringy() bool { return t == Text || t == Sequence }

// Compare orders v relative to o: -1 if v < o, 0 if equal, +1 if v > o.
// NULL compares before every non-NULL value; two NULLs compare equal. An
// error is returned when the types are incomparable (e.g. INT vs TEXT).
func (v Value) Compare(o Value) (int, error) {
	if v.typ == Null || o.typ == Null {
		switch {
		case v.typ == Null && o.typ == Null:
			return 0, nil
		case v.typ == Null:
			return -1, nil
		default:
			return 1, nil
		}
	}
	switch {
	case v.typ.numeric() && o.typ.numeric():
		a, b := v.Float(), o.Float()
		switch {
		case a < b:
			return -1, nil
		case a > b:
			return 1, nil
		default:
			return 0, nil
		}
	case v.typ.stringy() && o.typ.stringy():
		return strings.Compare(v.s, o.s), nil
	case v.typ == Bool && o.typ == Bool:
		switch {
		case !v.b && o.b:
			return -1, nil
		case v.b && !o.b:
			return 1, nil
		default:
			return 0, nil
		}
	case v.typ == Timestamp && o.typ == Timestamp:
		switch {
		case v.t.Before(o.t):
			return -1, nil
		case v.t.After(o.t):
			return 1, nil
		default:
			return 0, nil
		}
	default:
		return 0, fmt.Errorf("%w: cannot compare %s with %s", ErrTypeMismatch, v.typ, o.typ)
	}
}

// Cast converts v to the target type when a lossless or conventional
// conversion exists (Int<->Float, Text<->Sequence, Text->numeric parsing).
func (v Value) Cast(target Type) (Value, error) {
	if v.typ == target {
		return v, nil
	}
	if v.typ == Null {
		return NewNull(), nil
	}
	switch target {
	case Int:
		switch v.typ {
		case Float:
			return NewInt(int64(v.f)), nil
		case Text:
			i, err := strconv.ParseInt(strings.TrimSpace(v.s), 10, 64)
			if err != nil {
				return Value{}, fmt.Errorf("%w: %q is not an INT", ErrTypeMismatch, v.s)
			}
			return NewInt(i), nil
		case Bool:
			if v.b {
				return NewInt(1), nil
			}
			return NewInt(0), nil
		}
	case Float:
		switch v.typ {
		case Int:
			return NewFloat(float64(v.i)), nil
		case Text:
			f, err := strconv.ParseFloat(strings.TrimSpace(v.s), 64)
			if err != nil {
				return Value{}, fmt.Errorf("%w: %q is not a FLOAT", ErrTypeMismatch, v.s)
			}
			return NewFloat(f), nil
		}
	case Text:
		return NewText(v.String()), nil
	case Sequence:
		if v.typ == Text {
			return NewSequence(v.s), nil
		}
	case Bool:
		switch v.typ {
		case Int:
			return NewBool(v.i != 0), nil
		case Text:
			b, err := strconv.ParseBool(strings.ToLower(strings.TrimSpace(v.s)))
			if err != nil {
				return Value{}, fmt.Errorf("%w: %q is not a BOOL", ErrTypeMismatch, v.s)
			}
			return NewBool(b), nil
		}
	case Timestamp:
		if v.typ == Text {
			t, err := time.Parse(time.RFC3339Nano, v.s)
			if err != nil {
				t, err = time.Parse("2006-01-02 15:04:05", v.s)
			}
			if err != nil {
				t, err = time.Parse("2006-01-02", v.s)
			}
			if err != nil {
				return Value{}, fmt.Errorf("%w: %q is not a TIMESTAMP", ErrTypeMismatch, v.s)
			}
			return NewTimestamp(t), nil
		}
	}
	return Value{}, fmt.Errorf("%w: cannot cast %s to %s", ErrTypeMismatch, v.typ, target)
}

// Row is an ordered list of values matching a table schema.
type Row []Value

// Clone returns a deep copy of the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// String renders the row as a comma-separated list, used by tests and the CLI.
func (r Row) String() string {
	parts := make([]string, len(r))
	for i, v := range r {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Equal reports element-wise equality of two rows, treating NULL == NULL as
// true (rows are compared structurally, not with SQL ternary logic).
func (r Row) Equal(o Row) bool {
	if len(r) != len(o) {
		return false
	}
	for i := range r {
		a, b := r[i], o[i]
		if a.typ == Null && b.typ == Null {
			continue
		}
		c, err := a.Compare(b)
		if err != nil || c != 0 {
			return false
		}
	}
	return true
}

// --- binary codec -----------------------------------------------------------

// Encode appends the binary representation of v to dst and returns the
// extended slice. The format is a one-byte type tag followed by a
// type-specific payload; strings are length-prefixed with a uvarint.
func (v Value) Encode(dst []byte) []byte {
	dst = append(dst, byte(v.typ))
	switch v.typ {
	case Null:
	case Int:
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], uint64(v.i))
		dst = append(dst, buf[:]...)
	case Float:
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], math.Float64bits(v.f))
		dst = append(dst, buf[:]...)
	case Text, Sequence:
		dst = binary.AppendUvarint(dst, uint64(len(v.s)))
		dst = append(dst, v.s...)
	case Bool:
		if v.b {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	case Timestamp:
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], uint64(v.t.UnixNano()))
		dst = append(dst, buf[:]...)
	}
	return dst
}

// DecodeValue decodes a single value from buf, returning the value and the
// number of bytes consumed.
func DecodeValue(buf []byte) (Value, int, error) {
	if len(buf) == 0 {
		return Value{}, 0, ErrBadEncoding
	}
	typ := Type(buf[0])
	rest := buf[1:]
	switch typ {
	case Null:
		return NewNull(), 1, nil
	case Int:
		if len(rest) < 8 {
			return Value{}, 0, ErrBadEncoding
		}
		return NewInt(int64(binary.BigEndian.Uint64(rest[:8]))), 9, nil
	case Float:
		if len(rest) < 8 {
			return Value{}, 0, ErrBadEncoding
		}
		return NewFloat(math.Float64frombits(binary.BigEndian.Uint64(rest[:8]))), 9, nil
	case Text, Sequence:
		n, w := binary.Uvarint(rest)
		if w <= 0 || uint64(len(rest)-w) < n {
			return Value{}, 0, ErrBadEncoding
		}
		s := string(rest[w : w+int(n)])
		if typ == Sequence {
			return NewSequence(s), 1 + w + int(n), nil
		}
		return NewText(s), 1 + w + int(n), nil
	case Bool:
		if len(rest) < 1 {
			return Value{}, 0, ErrBadEncoding
		}
		return NewBool(rest[0] != 0), 2, nil
	case Timestamp:
		if len(rest) < 8 {
			return Value{}, 0, ErrBadEncoding
		}
		ns := int64(binary.BigEndian.Uint64(rest[:8]))
		return NewTimestamp(time.Unix(0, ns).UTC()), 9, nil
	default:
		return Value{}, 0, fmt.Errorf("%w: unknown type tag %d", ErrBadEncoding, typ)
	}
}

// EncodeRow serialises a row with its value count prefix.
func EncodeRow(r Row) []byte {
	buf := binary.AppendUvarint(nil, uint64(len(r)))
	for _, v := range r {
		buf = v.Encode(buf)
	}
	return buf
}

// DecodeRow deserialises a row produced by EncodeRow.
func DecodeRow(buf []byte) (Row, error) {
	n, w := binary.Uvarint(buf)
	if w <= 0 {
		return nil, ErrBadEncoding
	}
	buf = buf[w:]
	row := make(Row, 0, n)
	for i := uint64(0); i < n; i++ {
		v, used, err := DecodeValue(buf)
		if err != nil {
			return nil, err
		}
		row = append(row, v)
		buf = buf[used:]
	}
	return row, nil
}

// EncodeKey produces an order-preserving byte encoding of v, suitable as a
// B+-tree key: comparing encoded keys bytewise matches Compare for values of
// the same type. Ints are offset so negative values sort before positive.
func (v Value) EncodeKey(dst []byte) []byte {
	dst = append(dst, byte(v.typ))
	switch v.typ {
	case Null:
	case Int:
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], uint64(v.i)^(1<<63))
		dst = append(dst, buf[:]...)
	case Float:
		f := v.f
		if f == 0 {
			// Canonicalize -0.0: Compare treats it as equal to +0.0, so the
			// two must encode to the same key.
			f = 0
		}
		bits := math.Float64bits(f)
		if f >= 0 {
			bits ^= 1 << 63
		} else {
			bits = ^bits
		}
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], bits)
		dst = append(dst, buf[:]...)
	case Text, Sequence:
		dst = append(dst, v.s...)
		dst = append(dst, 0)
	case Bool:
		if v.b {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	case Timestamp:
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], uint64(v.t.UnixNano())^(1<<63))
		dst = append(dst, buf[:]...)
	}
	return dst
}
