// Package authz implements bdbms's authorization manager (Section 6 of the
// paper). It combines the classical identity-based GRANT/REVOKE model with
// the paper's content-based approval: update operations on monitored tables
// are applied immediately (so users can see pending data) but logged together
// with an automatically generated inverse statement; an approver later
// approves the change or disapproves it, in which case the inverse statement
// is executed to remove its effect.
package authz

import (
	"crypto/subtle"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"bdbms/internal/storage"
	"bdbms/internal/undo"
	"bdbms/internal/value"
	"bdbms/internal/wal"
)

// Privilege is an identity-based right on a table.
type Privilege string

// Privileges of the GRANT/REVOKE model.
const (
	PrivSelect Privilege = "SELECT"
	PrivInsert Privilege = "INSERT"
	PrivUpdate Privilege = "UPDATE"
	PrivDelete Privilege = "DELETE"
	// PrivAll expands to every privilege.
	PrivAll Privilege = "ALL"
)

// OpKind is the kind of a logged update operation.
type OpKind string

// Update operation kinds.
const (
	OpInsert OpKind = "INSERT"
	OpUpdate OpKind = "UPDATE"
	OpDelete OpKind = "DELETE"
)

// Status of a logged operation in the content-approval workflow.
type Status string

// Operation statuses.
const (
	StatusPending     Status = "PENDING"
	StatusApproved    Status = "APPROVED"
	StatusDisapproved Status = "DISAPPROVED"
)

// Errors returned by the authorization manager.
var (
	// ErrPermissionDenied is returned when an identity lacks a privilege.
	ErrPermissionDenied = errors.New("authz: permission denied")
	// ErrNotApprover is returned when a non-approver decides an operation.
	ErrNotApprover = errors.New("authz: user is not an approver for this table")
	// ErrAlreadyDecided is returned when deciding an operation twice.
	ErrAlreadyDecided = errors.New("authz: operation already decided")
	// ErrOpNotFound is returned for unknown operation IDs.
	ErrOpNotFound = errors.New("authz: operation not found")
	// ErrNoApproval is returned when content approval is not enabled on a table.
	ErrNoApproval = errors.New("authz: content approval not enabled")
	// ErrAuthFailed is returned when a user/secret pair does not authenticate.
	// The message never says whether the user or the secret was wrong.
	ErrAuthFailed = errors.New("authz: authentication failed")
)

// Operation is one logged update under content-based approval.
type Operation struct {
	// ID identifies the operation in the log.
	ID int64
	// User issued the operation.
	User string
	// Time is when the operation was issued.
	Time time.Time
	// Table is the affected user table.
	Table string
	// Kind is INSERT, UPDATE or DELETE.
	Kind OpKind
	// RowID is the affected row.
	RowID int64
	// OldRow is the row image before the operation (nil for INSERT).
	OldRow value.Row
	// NewRow is the row image after the operation (nil for DELETE).
	NewRow value.Row
	// Statement is a rendering of the original operation.
	Statement string
	// Inverse is the automatically generated inverse statement.
	Inverse string
	// Status is the approval status.
	Status Status
	// Approver is who decided the operation ("" while pending).
	Approver string
	// DecidedAt is when the decision happened.
	DecidedAt time.Time
}

// ApprovalConfig is the configuration installed by START CONTENT APPROVAL
// (Figure 11).
type ApprovalConfig struct {
	// Table is the monitored user table.
	Table string
	// Columns restricts monitoring to these columns (empty = whole table).
	Columns []string
	// Approver is the user or group allowed to approve/disapprove.
	Approver string
}

// MonitorsColumn reports whether the config covers the named column.
func (c *ApprovalConfig) MonitorsColumn(column string) bool {
	if len(c.Columns) == 0 {
		return true
	}
	for _, col := range c.Columns {
		if strings.EqualFold(col, column) {
			return true
		}
	}
	return false
}

// Manager is the authorization manager.
type Manager struct {
	mu        sync.RWMutex
	eng       *storage.Engine
	log       *wal.Log
	users     map[string]map[string]bool // user -> set of groups
	secrets   map[string]string          // user -> login secret (network auth)
	admins    map[string]bool
	grants    map[string]map[Privilege]bool // principal|table -> privileges
	approvals map[string]*ApprovalConfig    // table (lower) -> config
	ops       map[int64]*Operation
	order     []int64
	nextOp    int64
	undo      *undo.Log
	clock     func() time.Time
}

// SetUndo installs (or, with nil, clears) the open transaction's undo log:
// recorded approval operations and approval decisions then push their
// inverse, so rolling back a monitored DML statement also retracts its
// pending-operation entry. Only touched under the engine-wide exclusive
// statement lock.
func (m *Manager) SetUndo(u *undo.Log) { m.undo = u }

// NewManager builds an authorization manager over the storage engine. The
// operation log is mirrored into the engine's WAL.
func NewManager(eng *storage.Engine) *Manager {
	return &Manager{
		eng:       eng,
		log:       eng.WAL(),
		users:     make(map[string]map[string]bool),
		secrets:   make(map[string]string),
		admins:    make(map[string]bool),
		grants:    make(map[string]map[Privilege]bool),
		approvals: make(map[string]*ApprovalConfig),
		ops:       make(map[int64]*Operation),
		nextOp:    1,
		clock:     time.Now,
	}
}

// SetClock overrides the time source (tests).
func (m *Manager) SetClock(clock func() time.Time) { m.clock = clock }

// --- identity model ------------------------------------------------------------

// CreateUser registers a user.
func (m *Manager) CreateUser(name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	key := strings.ToLower(name)
	if _, ok := m.users[key]; !ok {
		m.users[key] = make(map[string]bool)
	}
}

// MakeAdmin marks a user as a database administrator: admins pass every
// privilege check and may approve anything.
func (m *Manager) MakeAdmin(name string) {
	m.CreateUser(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.admins[strings.ToLower(name)] = true
}

// AddToGroup puts a user in a group, creating both as needed.
func (m *Manager) AddToGroup(user, group string) {
	m.CreateUser(user)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.users[strings.ToLower(user)][strings.ToLower(group)] = true
}

// UserExists reports whether the user is registered.
func (m *Manager) UserExists(name string) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	_, ok := m.users[strings.ToLower(name)]
	return ok
}

// SetSecret installs (or, with "", removes) the user's login secret for
// network authentication, registering the user if needed. Secrets are
// session-scoped configuration like GRANT state: they are not persisted and
// must be re-installed after reopening a durable database.
func (m *Manager) SetSecret(user, secret string) {
	m.CreateUser(user)
	m.mu.Lock()
	defer m.mu.Unlock()
	key := strings.ToLower(user)
	if secret == "" {
		delete(m.secrets, key)
		return
	}
	m.secrets[key] = secret
}

// Authenticate checks a user/secret pair for network login. It fails with
// ErrAuthFailed for an unknown user, a wrong secret, or a user with no
// secret installed — a user becomes connectable only by an explicit
// SetSecret. The comparison is constant-time.
func (m *Manager) Authenticate(user, secret string) error {
	m.mu.RLock()
	stored, ok := m.secrets[strings.ToLower(user)]
	m.mu.RUnlock()
	if !ok {
		// Burn the comparison anyway so an attacker cannot time-probe which
		// user names exist.
		subtle.ConstantTimeCompare([]byte(secret), []byte(secret))
		return ErrAuthFailed
	}
	if subtle.ConstantTimeCompare([]byte(stored), []byte(secret)) != 1 {
		return ErrAuthFailed
	}
	return nil
}

// MemberOf reports whether the user belongs to the group.
func (m *Manager) MemberOf(user, group string) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	groups, ok := m.users[strings.ToLower(user)]
	return ok && groups[strings.ToLower(group)]
}

func grantKey(principal, table string) string {
	return strings.ToLower(principal) + "|" + strings.ToLower(table)
}

// Grant gives the principal (user or group) privileges on a table.
func (m *Manager) Grant(principal, table string, privs ...Privilege) {
	m.mu.Lock()
	defer m.mu.Unlock()
	k := grantKey(principal, table)
	set, ok := m.grants[k]
	if !ok {
		set = make(map[Privilege]bool)
		m.grants[k] = set
	}
	for _, p := range privs {
		if p == PrivAll {
			set[PrivSelect], set[PrivInsert], set[PrivUpdate], set[PrivDelete] = true, true, true, true
			continue
		}
		set[p] = true
	}
}

// Revoke removes privileges from a principal on a table.
func (m *Manager) Revoke(principal, table string, privs ...Privilege) {
	m.mu.Lock()
	defer m.mu.Unlock()
	set, ok := m.grants[grantKey(principal, table)]
	if !ok {
		return
	}
	for _, p := range privs {
		if p == PrivAll {
			delete(set, PrivSelect)
			delete(set, PrivInsert)
			delete(set, PrivUpdate)
			delete(set, PrivDelete)
			continue
		}
		delete(set, p)
	}
}

// Check reports whether the user holds the privilege on the table, directly,
// via any of their groups, or as an admin.
func (m *Manager) Check(user, table string, priv Privilege) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	key := strings.ToLower(user)
	if m.admins[key] {
		return true
	}
	if set, ok := m.grants[grantKey(user, table)]; ok && set[priv] {
		return true
	}
	for group := range m.users[key] {
		if set, ok := m.grants[grantKey(group, table)]; ok && set[priv] {
			return true
		}
	}
	return false
}

// Require returns ErrPermissionDenied unless Check passes.
func (m *Manager) Require(user, table string, priv Privilege) error {
	if m.Check(user, table, priv) {
		return nil
	}
	return fmt.Errorf("%w: %s needs %s on %s", ErrPermissionDenied, user, priv, table)
}

// --- content-based approval ------------------------------------------------------

// StartContentApproval enables content-based approval on a table
// (START CONTENT APPROVAL, Figure 11).
func (m *Manager) StartContentApproval(table string, columns []string, approver string) error {
	if _, err := m.eng.Table(table); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.approvals[strings.ToLower(table)] = &ApprovalConfig{
		Table:    table,
		Columns:  append([]string(nil), columns...),
		Approver: approver,
	}
	return nil
}

// StopContentApproval disables content-based approval on a table
// (STOP CONTENT APPROVAL). When columns are given, only those columns stop
// being monitored; monitoring of the rest continues.
func (m *Manager) StopContentApproval(table string, columns []string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	key := strings.ToLower(table)
	cfg, ok := m.approvals[key]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoApproval, table)
	}
	if len(columns) == 0 || len(cfg.Columns) == 0 {
		delete(m.approvals, key)
		return nil
	}
	var kept []string
	for _, col := range cfg.Columns {
		remove := false
		for _, stop := range columns {
			if strings.EqualFold(col, stop) {
				remove = true
				break
			}
		}
		if !remove {
			kept = append(kept, col)
		}
	}
	if len(kept) == 0 {
		delete(m.approvals, key)
	} else {
		cfg.Columns = kept
	}
	return nil
}

// ApprovalConfigFor returns the approval configuration of a table, or nil.
func (m *Manager) ApprovalConfigFor(table string) *ApprovalConfig {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.approvals[strings.ToLower(table)]
}

// Monitored reports whether updates to the table (and, when given, the
// specific columns) are subject to content approval.
func (m *Manager) Monitored(table string, columns ...string) bool {
	cfg := m.ApprovalConfigFor(table)
	if cfg == nil {
		return false
	}
	if len(columns) == 0 {
		return true
	}
	for _, col := range columns {
		if cfg.MonitorsColumn(col) {
			return true
		}
	}
	return false
}

// RecordOperation logs an already-applied update operation for later
// approval. It returns the pending operation, with the automatically
// generated inverse statement.
func (m *Manager) RecordOperation(user string, kind OpKind, table string, rowID int64, oldRow, newRow value.Row) (*Operation, error) {
	tbl, err := m.eng.Table(table)
	if err != nil {
		return nil, err
	}
	if m.ApprovalConfigFor(table) == nil {
		return nil, fmt.Errorf("%w: %s", ErrNoApproval, table)
	}
	op := &Operation{
		User:   user,
		Time:   m.clock(),
		Table:  tbl.Name(),
		Kind:   kind,
		RowID:  rowID,
		OldRow: cloneRow(oldRow),
		NewRow: cloneRow(newRow),
		Status: StatusPending,
	}
	op.Statement = renderStatement(tbl, op)
	op.Inverse = renderInverse(tbl, op)

	m.mu.Lock()
	op.ID = m.nextOp
	m.nextOp++
	m.ops[op.ID] = op
	m.order = append(m.order, op.ID)
	m.mu.Unlock()

	payload := fmt.Sprintf("op=%d user=%s kind=%s table=%s row=%d inverse=%q",
		op.ID, user, kind, table, rowID, op.Inverse)
	if _, err := m.log.Append(wal.KindApproval, table, []byte(payload)); err != nil {
		return nil, err
	}
	if m.undo != nil {
		m.undo.Push(func() error { m.removeOperation(op.ID); return nil })
	}
	return op, nil
}

// removeOperation retracts a recorded operation — the undo of
// RecordOperation when the statement that produced it rolls back.
func (m *Manager) removeOperation(id int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.ops, id)
	kept := m.order[:0]
	for _, other := range m.order {
		if other != id {
			kept = append(kept, other)
		}
	}
	m.order = kept
}

func cloneRow(r value.Row) value.Row {
	if r == nil {
		return nil
	}
	return r.Clone()
}

// Operations returns the logged operations for a table (all tables when
// table == ""), optionally filtered by status ("" = any), in log order.
func (m *Manager) Operations(table string, status Status) []*Operation {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []*Operation
	for _, id := range m.order {
		op := m.ops[id]
		if table != "" && !strings.EqualFold(op.Table, table) {
			continue
		}
		if status != "" && op.Status != status {
			continue
		}
		out = append(out, op)
	}
	return out
}

// Pending returns the pending operations for a table.
func (m *Manager) Pending(table string) []*Operation { return m.Operations(table, StatusPending) }

// Operation returns the logged operation with the given ID.
func (m *Manager) Operation(id int64) (*Operation, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	op, ok := m.ops[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrOpNotFound, id)
	}
	return op, nil
}

// canApprove reports whether the user may decide operations on the table.
func (m *Manager) canApprove(user, table string) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.admins[strings.ToLower(user)] {
		return true
	}
	cfg := m.approvals[strings.ToLower(table)]
	if cfg == nil {
		return false
	}
	if strings.EqualFold(cfg.Approver, user) {
		return true
	}
	groups := m.users[strings.ToLower(user)]
	return groups[strings.ToLower(cfg.Approver)]
}

// Approve marks a pending operation approved.
func (m *Manager) Approve(opID int64, approver string) error {
	op, err := m.Operation(opID)
	if err != nil {
		return err
	}
	if !m.canApprove(approver, op.Table) {
		return fmt.Errorf("%w: %s on %s", ErrNotApprover, approver, op.Table)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if op.Status != StatusPending {
		return fmt.Errorf("%w: operation %d is %s", ErrAlreadyDecided, opID, op.Status)
	}
	op.Status = StatusApproved
	op.Approver = approver
	op.DecidedAt = m.clock()
	if m.undo != nil {
		m.undo.Push(func() error { m.revertDecision(op.ID); return nil })
	}
	return nil
}

// revertDecision returns a decided operation to pending — the undo of
// Approve/Disapprove. (A disapproval's inverse DML is undone separately by
// the storage engine's own undo entries.)
func (m *Manager) revertDecision(id int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if op, ok := m.ops[id]; ok {
		op.Status = StatusPending
		op.Approver = ""
		op.DecidedAt = time.Time{}
	}
}

// Disapprove marks a pending operation disapproved and executes its inverse
// statement against the storage engine, removing the operation's effect. The
// affected cells are returned so the dependency manager can re-run its
// cascade over them.
func (m *Manager) Disapprove(opID int64, approver string) ([]int64, error) {
	op, err := m.Operation(opID)
	if err != nil {
		return nil, err
	}
	if !m.canApprove(approver, op.Table) {
		return nil, fmt.Errorf("%w: %s on %s", ErrNotApprover, approver, op.Table)
	}
	m.mu.Lock()
	if op.Status != StatusPending {
		m.mu.Unlock()
		return nil, fmt.Errorf("%w: operation %d is %s", ErrAlreadyDecided, opID, op.Status)
	}
	op.Status = StatusDisapproved
	op.Approver = approver
	op.DecidedAt = m.clock()
	m.mu.Unlock()
	if m.undo != nil {
		m.undo.Push(func() error { m.revertDecision(op.ID); return nil })
	}

	tbl, err := m.eng.Table(op.Table)
	if err != nil {
		return nil, err
	}
	var affected []int64
	switch op.Kind {
	case OpInsert:
		// Inverse of INSERT is DELETE.
		if err := tbl.Delete(op.RowID); err != nil && !errors.Is(err, storage.ErrRowNotFound) {
			return nil, err
		}
		affected = append(affected, op.RowID)
	case OpDelete:
		// Inverse of DELETE is INSERT of the old row (it gets a fresh RowID).
		newID, err := tbl.Insert(op.OldRow)
		if err != nil {
			return nil, err
		}
		affected = append(affected, newID)
	case OpUpdate:
		// Inverse of UPDATE restores the old values.
		if err := tbl.Update(op.RowID, op.OldRow); err != nil {
			return nil, err
		}
		affected = append(affected, op.RowID)
	}
	payload := fmt.Sprintf("op=%d disapproved-by=%s inverse-executed=%q", op.ID, approver, op.Inverse)
	if _, err := m.log.Append(wal.KindApproval, op.Table, []byte(payload)); err != nil {
		return nil, err
	}
	return affected, nil
}

// --- statement rendering ---------------------------------------------------------

func renderRowValues(tbl *storage.Table, row value.Row) string {
	if row == nil {
		return "()"
	}
	parts := make([]string, len(row))
	for i, v := range row {
		parts[i] = renderValue(v)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

func renderValue(v value.Value) string {
	switch v.Type() {
	case value.Text, value.Sequence, value.Timestamp:
		return "'" + strings.ReplaceAll(v.String(), "'", "''") + "'"
	default:
		return v.String()
	}
}

func renderSetClause(tbl *storage.Table, row value.Row) string {
	cols := tbl.Schema().Columns
	parts := make([]string, 0, len(cols))
	for i, col := range cols {
		if i < len(row) {
			parts = append(parts, fmt.Sprintf("%s = %s", col.Name, renderValue(row[i])))
		}
	}
	return strings.Join(parts, ", ")
}

func renderStatement(tbl *storage.Table, op *Operation) string {
	switch op.Kind {
	case OpInsert:
		return fmt.Sprintf("INSERT INTO %s VALUES %s", op.Table, renderRowValues(tbl, op.NewRow))
	case OpDelete:
		return fmt.Sprintf("DELETE FROM %s WHERE _rowid = %d", op.Table, op.RowID)
	case OpUpdate:
		return fmt.Sprintf("UPDATE %s SET %s WHERE _rowid = %d", op.Table, renderSetClause(tbl, op.NewRow), op.RowID)
	default:
		return ""
	}
}

// renderInverse generates the inverse statement the paper's log stores: a
// DELETE for an INSERT, an INSERT for a DELETE, and an UPDATE restoring the
// old values for an UPDATE.
func renderInverse(tbl *storage.Table, op *Operation) string {
	switch op.Kind {
	case OpInsert:
		return fmt.Sprintf("DELETE FROM %s WHERE _rowid = %d", op.Table, op.RowID)
	case OpDelete:
		return fmt.Sprintf("INSERT INTO %s VALUES %s", op.Table, renderRowValues(tbl, op.OldRow))
	case OpUpdate:
		return fmt.Sprintf("UPDATE %s SET %s WHERE _rowid = %d", op.Table, renderSetClause(tbl, op.OldRow), op.RowID)
	default:
		return ""
	}
}

// Summary returns per-status counts of the operation log for a table (all
// tables when table == ""), for the CLI and the experiments.
func (m *Manager) Summary(table string) map[Status]int {
	out := map[Status]int{}
	for _, op := range m.Operations(table, "") {
		out[op.Status]++
	}
	return out
}

// Approvers returns the distinct approver principals configured across tables.
func (m *Manager) Approvers() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	seen := map[string]bool{}
	var out []string
	for _, cfg := range m.approvals {
		k := strings.ToLower(cfg.Approver)
		if !seen[k] {
			seen[k] = true
			out = append(out, cfg.Approver)
		}
	}
	sort.Strings(out)
	return out
}
