package authz

import (
	"errors"
	"strings"
	"testing"

	"bdbms/internal/catalog"
	"bdbms/internal/storage"
	"bdbms/internal/value"
	"bdbms/internal/wal"
)

func newEngine(t *testing.T) (*storage.Engine, *storage.Table) {
	t.Helper()
	eng := storage.NewMemoryEngine()
	tbl, err := eng.CreateTable(&catalog.Schema{
		Name: "Gene",
		Columns: []catalog.Column{
			{Name: "GID", Type: value.Text, NotNull: true},
			{Name: "GName", Type: value.Text},
			{Name: "GSequence", Type: value.Sequence},
		},
		PrimaryKey: "GID",
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng, tbl
}

func geneRow(id, name, seq string) value.Row {
	return value.Row{value.NewText(id), value.NewText(name), value.NewSequence(seq)}
}

func TestGrantRevokeCheck(t *testing.T) {
	eng, _ := newEngine(t)
	m := NewManager(eng)
	m.CreateUser("alice")
	if m.Check("alice", "Gene", PrivSelect) {
		t.Error("no grant yet")
	}
	m.Grant("alice", "Gene", PrivSelect, PrivInsert)
	if !m.Check("alice", "Gene", PrivSelect) || !m.Check("alice", "Gene", PrivInsert) {
		t.Error("direct grant failed")
	}
	if m.Check("alice", "Gene", PrivDelete) {
		t.Error("ungranted privilege")
	}
	if err := m.Require("alice", "Gene", PrivDelete); !errors.Is(err, ErrPermissionDenied) {
		t.Errorf("Require: %v", err)
	}
	if err := m.Require("alice", "Gene", PrivSelect); err != nil {
		t.Errorf("Require granted: %v", err)
	}
	m.Revoke("alice", "Gene", PrivSelect)
	if m.Check("alice", "Gene", PrivSelect) {
		t.Error("revoke failed")
	}
	// Revoking something never granted is a no-op.
	m.Revoke("bob", "Gene", PrivAll)

	// Group grants.
	m.AddToGroup("bob", "labmembers")
	m.Grant("labmembers", "Gene", PrivAll)
	for _, p := range []Privilege{PrivSelect, PrivInsert, PrivUpdate, PrivDelete} {
		if !m.Check("bob", "Gene", p) {
			t.Errorf("group grant missing %s", p)
		}
	}
	m.Revoke("labmembers", "Gene", PrivAll)
	if m.Check("bob", "Gene", PrivSelect) {
		t.Error("group revoke failed")
	}
	if !m.MemberOf("bob", "labmembers") || m.MemberOf("alice", "labmembers") {
		t.Error("MemberOf wrong")
	}
	if !m.UserExists("alice") || m.UserExists("carol") {
		t.Error("UserExists wrong")
	}

	// Admins bypass checks.
	m.MakeAdmin("root")
	if !m.Check("root", "Gene", PrivDelete) {
		t.Error("admin should pass all checks")
	}
}

func TestStartStopContentApproval(t *testing.T) {
	eng, _ := newEngine(t)
	m := NewManager(eng)
	if err := m.StartContentApproval("NoTable", nil, "admin"); err == nil {
		t.Error("unknown table should fail")
	}
	if err := m.StartContentApproval("Gene", []string{"GSequence"}, "labadmin"); err != nil {
		t.Fatal(err)
	}
	if !m.Monitored("Gene") || !m.Monitored("Gene", "GSequence") {
		t.Error("monitoring not active")
	}
	if m.Monitored("Gene", "GName") {
		t.Error("GName is not monitored")
	}
	cfg := m.ApprovalConfigFor("gene")
	if cfg == nil || cfg.Approver != "labadmin" {
		t.Errorf("config = %+v", cfg)
	}
	if len(m.Approvers()) != 1 || m.Approvers()[0] != "labadmin" {
		t.Errorf("Approvers = %v", m.Approvers())
	}
	// Stop one column of a column-scoped config removes just that column.
	if err := m.StopContentApproval("Gene", []string{"GSequence"}); err != nil {
		t.Fatal(err)
	}
	if m.Monitored("Gene") {
		t.Error("no monitored columns left; approval should be off")
	}
	if err := m.StopContentApproval("Gene", nil); !errors.Is(err, ErrNoApproval) {
		t.Errorf("stop when off: %v", err)
	}
	// Whole-table monitoring and stop.
	m.StartContentApproval("Gene", nil, "labadmin")
	if !m.Monitored("Gene", "GName") {
		t.Error("whole-table config monitors all columns")
	}
	if err := m.StopContentApproval("Gene", nil); err != nil {
		t.Fatal(err)
	}
	if m.Monitored("Gene") {
		t.Error("stop-all failed")
	}
	// Partial stop on a multi-column config keeps the rest.
	m.StartContentApproval("Gene", []string{"GName", "GSequence"}, "labadmin")
	if err := m.StopContentApproval("Gene", []string{"GName"}); err != nil {
		t.Fatal(err)
	}
	if !m.Monitored("Gene", "GSequence") || m.Monitored("Gene", "GName") {
		t.Error("partial stop wrong")
	}
}

func TestRecordOperationGeneratesInverse(t *testing.T) {
	eng, tbl := newEngine(t)
	m := NewManager(eng)
	m.StartContentApproval("Gene", nil, "labadmin")

	rowID, _ := tbl.Insert(geneRow("JW0080", "mraW", "ATG"))
	op, err := m.RecordOperation("alice", OpInsert, "Gene", rowID, nil, geneRow("JW0080", "mraW", "ATG"))
	if err != nil {
		t.Fatal(err)
	}
	if op.Status != StatusPending || op.ID != 1 {
		t.Errorf("op = %+v", op)
	}
	if !strings.Contains(op.Statement, "INSERT INTO Gene") {
		t.Errorf("statement = %q", op.Statement)
	}
	if !strings.Contains(op.Inverse, "DELETE FROM Gene") {
		t.Errorf("inverse = %q", op.Inverse)
	}

	oldRow, _ := tbl.Get(rowID)
	newRow := geneRow("JW0080", "mraW", "ATGCCC")
	tbl.Update(rowID, newRow)
	opU, err := m.RecordOperation("alice", OpUpdate, "Gene", rowID, oldRow, newRow)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(opU.Inverse, "UPDATE Gene SET") || !strings.Contains(opU.Inverse, "'ATG'") {
		t.Errorf("update inverse = %q", opU.Inverse)
	}

	delRow, _ := tbl.Get(rowID)
	tbl.Delete(rowID)
	opD, err := m.RecordOperation("alice", OpDelete, "Gene", rowID, delRow, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(opD.Inverse, "INSERT INTO Gene VALUES") {
		t.Errorf("delete inverse = %q", opD.Inverse)
	}

	// The operation log is mirrored in the WAL.
	approvalRecords := 0
	for _, rec := range eng.WAL().Records() {
		if rec.Kind == wal.KindApproval {
			approvalRecords++
		}
	}
	if approvalRecords != 3 {
		t.Errorf("WAL approval records = %d", approvalRecords)
	}

	// Errors.
	if _, err := m.RecordOperation("alice", OpInsert, "NoTable", 1, nil, nil); err == nil {
		t.Error("unknown table should fail")
	}
	eng.CreateTable(&catalog.Schema{Name: "Free", Columns: []catalog.Column{{Name: "x", Type: value.Int}}})
	if _, err := m.RecordOperation("alice", OpInsert, "Free", 1, nil, nil); !errors.Is(err, ErrNoApproval) {
		t.Errorf("unmonitored table: %v", err)
	}
}

func TestApproveDisapproveWorkflow(t *testing.T) {
	eng, tbl := newEngine(t)
	m := NewManager(eng)
	m.StartContentApproval("Gene", nil, "labadmins")
	m.AddToGroup("drsmith", "labadmins")
	m.CreateUser("mallory")

	// Pending data is visible immediately (the paper allows viewing pending
	// data); approval only confirms it, disapproval rolls it back.
	rowID, _ := tbl.Insert(geneRow("JW0080", "mraW", "ATG"))
	op, _ := m.RecordOperation("alice", OpInsert, "Gene", rowID, nil, geneRow("JW0080", "mraW", "ATG"))

	if len(m.Pending("Gene")) != 1 {
		t.Fatal("expected one pending op")
	}
	if err := m.Approve(op.ID, "mallory"); !errors.Is(err, ErrNotApprover) {
		t.Errorf("non-approver approve: %v", err)
	}
	if err := m.Approve(op.ID, "drsmith"); err != nil {
		t.Fatal(err)
	}
	if err := m.Approve(op.ID, "drsmith"); !errors.Is(err, ErrAlreadyDecided) {
		t.Errorf("double approve: %v", err)
	}
	if got, _ := m.Operation(op.ID); got.Status != StatusApproved || got.Approver != "drsmith" {
		t.Errorf("op after approve = %+v", got)
	}
	if _, err := m.Operation(999); !errors.Is(err, ErrOpNotFound) {
		t.Errorf("missing op: %v", err)
	}

	// Disapproval of an UPDATE restores the old values.
	oldRow, _ := tbl.Get(rowID)
	tbl.UpdateColumn(rowID, "GSequence", value.NewSequence("ATGCCCGGG"))
	newRow, _ := tbl.Get(rowID)
	opU, _ := m.RecordOperation("alice", OpUpdate, "Gene", rowID, oldRow, newRow)
	affected, err := m.Disapprove(opU.ID, "drsmith")
	if err != nil {
		t.Fatal(err)
	}
	if len(affected) != 1 || affected[0] != rowID {
		t.Errorf("affected = %v", affected)
	}
	v, _ := tbl.GetColumn(rowID, "GSequence")
	if v.Text() != "ATG" {
		t.Errorf("update not rolled back: %q", v.Text())
	}
	if _, err := m.Disapprove(opU.ID, "drsmith"); !errors.Is(err, ErrAlreadyDecided) {
		t.Errorf("double disapprove: %v", err)
	}

	// Disapproval of an INSERT deletes the row.
	rowID2, _ := tbl.Insert(geneRow("JW0090", "yabP", "GGG"))
	opI, _ := m.RecordOperation("bob", OpInsert, "Gene", rowID2, nil, geneRow("JW0090", "yabP", "GGG"))
	if _, err := m.Disapprove(opI.ID, "drsmith"); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Get(rowID2); err == nil {
		t.Error("disapproved insert should be gone")
	}

	// Disapproval of a DELETE re-inserts the old row.
	delRow, _ := tbl.Get(rowID)
	tbl.Delete(rowID)
	opD, _ := m.RecordOperation("bob", OpDelete, "Gene", rowID, delRow, nil)
	affected, err = m.Disapprove(opD.ID, "drsmith")
	if err != nil {
		t.Fatal(err)
	}
	if len(affected) != 1 {
		t.Fatalf("affected = %v", affected)
	}
	restored, err := tbl.Get(affected[0])
	if err != nil {
		t.Fatal(err)
	}
	if restored[0].Text() != "JW0080" {
		t.Errorf("restored row = %v", restored)
	}

	// Admins can decide anything.
	m.MakeAdmin("root")
	rowID3, _ := tbl.Insert(geneRow("JW0100", "x", "C"))
	opA, _ := m.RecordOperation("bob", OpInsert, "Gene", rowID3, nil, geneRow("JW0100", "x", "C"))
	if err := m.Approve(opA.ID, "root"); err != nil {
		t.Errorf("admin approve: %v", err)
	}

	// Summary counts statuses.
	sum := m.Summary("Gene")
	if sum[StatusApproved] != 2 || sum[StatusDisapproved] != 3 {
		t.Errorf("summary = %v", sum)
	}
	if len(m.Operations("", "")) != 5 {
		t.Errorf("all ops = %d", len(m.Operations("", "")))
	}
	// Approve/Disapprove of unknown op.
	if err := m.Approve(999, "root"); !errors.Is(err, ErrOpNotFound) {
		t.Errorf("approve missing: %v", err)
	}
	if _, err := m.Disapprove(999, "root"); !errors.Is(err, ErrOpNotFound) {
		t.Errorf("disapprove missing: %v", err)
	}
	// Non-approver cannot disapprove.
	rowID4, _ := tbl.Insert(geneRow("JW0110", "y", "T"))
	opN, _ := m.RecordOperation("bob", OpInsert, "Gene", rowID4, nil, geneRow("JW0110", "y", "T"))
	if _, err := m.Disapprove(opN.ID, "mallory"); !errors.Is(err, ErrNotApprover) {
		t.Errorf("non-approver disapprove: %v", err)
	}
}

func TestMonitorsColumn(t *testing.T) {
	cfg := &ApprovalConfig{Table: "Gene", Columns: []string{"GSequence"}}
	if !cfg.MonitorsColumn("gsequence") || cfg.MonitorsColumn("GName") {
		t.Error("MonitorsColumn wrong")
	}
	all := &ApprovalConfig{Table: "Gene"}
	if !all.MonitorsColumn("anything") {
		t.Error("empty column list monitors everything")
	}
}

func TestCredentials(t *testing.T) {
	eng, _ := newEngine(t)
	m := NewManager(eng)

	// No secret installed: nobody authenticates, not even with "".
	if err := m.Authenticate("alice", ""); !errors.Is(err, ErrAuthFailed) {
		t.Errorf("no-secret auth = %v, want ErrAuthFailed", err)
	}

	m.SetSecret("alice", "s3cret")
	if err := m.Authenticate("alice", "s3cret"); err != nil {
		t.Errorf("valid auth = %v", err)
	}
	// Usernames are case-insensitive like the rest of authz; secrets not.
	if err := m.Authenticate("ALICE", "s3cret"); err != nil {
		t.Errorf("case-insensitive user = %v", err)
	}
	if err := m.Authenticate("alice", "S3CRET"); !errors.Is(err, ErrAuthFailed) {
		t.Errorf("wrong-case secret = %v, want ErrAuthFailed", err)
	}
	if err := m.Authenticate("alice", "wrong"); !errors.Is(err, ErrAuthFailed) {
		t.Errorf("wrong secret = %v, want ErrAuthFailed", err)
	}
	if err := m.Authenticate("nobody", "s3cret"); !errors.Is(err, ErrAuthFailed) {
		t.Errorf("unknown user = %v, want ErrAuthFailed", err)
	}

	// SetSecret registers the user for GRANT purposes.
	if !m.UserExists("alice") {
		t.Error("SetSecret did not register the user")
	}

	// Rotation: the old secret stops working, the new one starts.
	m.SetSecret("alice", "rotated")
	if err := m.Authenticate("alice", "s3cret"); !errors.Is(err, ErrAuthFailed) {
		t.Errorf("stale secret = %v, want ErrAuthFailed", err)
	}
	if err := m.Authenticate("alice", "rotated"); err != nil {
		t.Errorf("rotated secret = %v", err)
	}

	// Removal: "" uninstalls and the user becomes unconnectable again.
	m.SetSecret("alice", "")
	if err := m.Authenticate("alice", "rotated"); !errors.Is(err, ErrAuthFailed) {
		t.Errorf("removed secret = %v, want ErrAuthFailed", err)
	}
}
