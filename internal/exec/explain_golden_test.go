package exec

// EXPLAIN goldens: the rendered plan of a representative statement per
// planner feature, pinned byte-for-byte under testdata/explain. The fixture
// is fully deterministic (seeded data, lazy stats over a fixed heap), so any
// diff is a real plan or renderer change. Regenerate intentionally with
//
//	go test ./internal/exec -run TestExplainGoldens -update
//
// and review the diff like code.

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGoldens = flag.Bool("update", false, "rewrite the EXPLAIN goldens under testdata/explain")

// runExplain executes an EXPLAIN statement through the full statement path
// (parse, dispatch, render) and joins the plan rows.
func runExplain(t *testing.T, s *Session, sql string) string {
	t.Helper()
	res := mustExec(t, s, sql)
	if len(res.Columns) != 1 || res.Columns[0] != "plan" {
		t.Fatalf("EXPLAIN columns = %v, want [plan]", res.Columns)
	}
	var lines []string
	for _, r := range res.Rows {
		lines = append(lines, r.Values[0].Text())
	}
	return strings.Join(lines, "\n") + "\n"
}

func TestExplainGoldens(t *testing.T) {
	s := newSession(t)
	buildJoinFixture(t, s, 40, 120)
	cases := []struct {
		name    string
		sql     string
		noStats bool
	}{
		// Point lookup through the primary key index.
		{"point_lookup", `EXPLAIN SELECT * FROM Gene WHERE GID = 'G001'`, false},
		// Range predicate on a secondary index, estimated from Min/Max.
		{"index_range", `EXPLAIN SELECT GName FROM Gene WHERE Score > 3 AND Score < 9`, false},
		// Ascending ORDER BY on an indexed NOT NULL column: no Sort operator.
		{"sort_elision", `EXPLAIN SELECT GID, Score FROM Gene ORDER BY GID`, false},
		// ORDER BY + small LIMIT on an unindexed column: bounded heap.
		{"topn", `EXPLAIN SELECT * FROM Gene ORDER BY GName LIMIT 3`, false},
		// LIMIT that keeps everything: the full sort wins over the heap.
		{"sort_wide_limit", `EXPLAIN SELECT * FROM Gene ORDER BY GName LIMIT 500`, false},
		// Unselective equi-join: both sides stay large, so the hash join
		// keeps its build side (the smaller, already-filtered right input).
		{"join_hash", `EXPLAIN SELECT g.GName, p.PLen FROM Gene g, Protein p WHERE g.GID = p.GID AND p.PLen < 100`, false},
		// Three-way join with a selective probe: the cost-based order starts
		// from the one-row Protein lookup, not the syntactic Lab scan, and
		// restores the syntactic row order above the joins.
		{"join_build_side", `EXPLAIN SELECT g.GName FROM Lab l, Gene g, Protein p WHERE l.GID = g.GID AND g.GID = p.GID AND p.PID = 'P003'`, false},
		// Same join without statistics: raw row counts, default
		// selectivities, [no stats] markers.
		{"stats_missing", `EXPLAIN SELECT g.GName FROM Lab l, Gene g, Protein p WHERE l.GID = g.GID AND g.GID = p.GID AND p.PID = 'P003'`, true},
		// Mutations render the access path their row probe would use.
		{"delete_range", `EXPLAIN DELETE FROM Gene WHERE Score > 40`, false},
		{"update_point", `EXPLAIN UPDATE Gene SET GName = 'x' WHERE GID = 'G001'`, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s.NoStats = tc.noStats
			defer func() { s.NoStats = false }()
			got := runExplain(t, s, tc.sql)
			path := filepath.Join("testdata", "explain", tc.name+".golden")
			if *updateGoldens {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("EXPLAIN output drifted from %s\n--- got ---\n%s--- want ---\n%s", path, got, want)
			}
		})
	}
}
