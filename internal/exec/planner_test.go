package exec

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"bdbms/internal/sqlparse"
)

// buildJoinFixture creates a three-table schema with primary keys, a
// secondary index, annotations on two tables and dependency-outdated marks,
// so equivalence runs cover every decoration path.
func buildJoinFixture(t *testing.T, s *Session, genes, proteins int) {
	t.Helper()
	mustExec(t, s, `CREATE TABLE Gene (GID TEXT NOT NULL PRIMARY KEY, GName TEXT, Score INT)`)
	mustExec(t, s, `CREATE TABLE Protein (PID TEXT NOT NULL PRIMARY KEY, GID TEXT, PLen INT)`)
	mustExec(t, s, `CREATE TABLE Lab (LID INT NOT NULL PRIMARY KEY, GID TEXT)`)
	mustExec(t, s, `CREATE INDEX ON Protein (GID)`)
	mustExec(t, s, `CREATE INDEX ON Gene (Score)`)
	mustExec(t, s, `CREATE ANNOTATION TABLE Curation ON Gene`)
	mustExec(t, s, `CREATE ANNOTATION TABLE Source ON Protein`)

	rng := rand.New(rand.NewSource(42))
	for i := 0; i < genes; i++ {
		mustExec(t, s, fmt.Sprintf(`INSERT INTO Gene VALUES ('G%03d', 'name%d', %d)`,
			i, i%7, rng.Intn(50)))
	}
	for i := 0; i < proteins; i++ {
		gid := fmt.Sprintf("G%03d", rng.Intn(genes+3)) // some dangling GIDs
		mustExec(t, s, fmt.Sprintf(`INSERT INTO Protein VALUES ('P%03d', '%s', %d)`,
			i, gid, rng.Intn(200)))
	}
	for i := 0; i < genes/2; i++ {
		mustExec(t, s, fmt.Sprintf(`INSERT INTO Lab VALUES (%d, 'G%03d')`, i, rng.Intn(genes)))
	}
	mustExec(t, s, `ADD ANNOTATION TO Gene.Curation VALUE '<Annotation>curated set</Annotation>'
		ON (SELECT GName FROM Gene WHERE Score >= 25)`)
	mustExec(t, s, `ADD ANNOTATION TO Protein.Source VALUE '<Annotation>from pipeline X</Annotation>'
		ON (SELECT * FROM Protein WHERE PLen < 100)`)
	// Outdated marks through the dependency manager's bitmap.
	s.Dep.Bitmap("Gene").Set(3, 2)
	s.Dep.Bitmap("Gene").Set(7, 1)
	s.Dep.Bitmap("Protein").Set(2, 0)
}

// fingerprint renders a result deterministically: column names, then one
// line per row with typed values and, per cell, the sorted set of attached
// annotations.
func fingerprint(res *Result) string {
	var b strings.Builder
	b.WriteString(strings.Join(res.Columns, ","))
	b.WriteByte('\n')
	for _, r := range res.Rows {
		for i, v := range r.Values {
			if i > 0 {
				b.WriteByte('|')
			}
			b.WriteString(v.Type().String())
			b.WriteByte(':')
			b.WriteString(v.String())
		}
		for c, cell := range r.Anns {
			if len(cell) == 0 {
				continue
			}
			var anns []string
			for _, a := range cell {
				anns = append(anns, fmt.Sprintf("%s/%s/%s", a.AnnTable, a.Author, a.PlainBody()))
			}
			sort.Strings(anns)
			fmt.Fprintf(&b, " [c%d: %s]", c, strings.Join(anns, ";"))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// equivalenceQueries is the property-test corpus: every supported WHERE shape
// the planner can rewrite, plus controls it must leave alone.
var equivalenceQueries = []string{
	// Index point and range scans.
	`SELECT * FROM Gene WHERE GID = 'G007'`,
	`SELECT GName, Score FROM Gene WHERE Score = 25`,
	`SELECT * FROM Gene WHERE Score > 30`,
	`SELECT * FROM Gene WHERE Score >= 10 AND Score < 20`,
	`SELECT * FROM Gene WHERE 25 <= Score AND Score <= 40 AND GName LIKE 'name%'`,
	`SELECT * FROM Gene WHERE Score > 10.5`,
	`SELECT * FROM Gene WHERE Score = 12.0`,
	`SELECT * FROM Gene WHERE Score = 12.5`,
	`SELECT * FROM Gene WHERE GID = 'ZZZ'`,
	// Non-indexed pushdown.
	`SELECT * FROM Gene WHERE GName = 'name3'`,
	`SELECT * FROM Gene WHERE GName = 'name3' OR Score < 5`,
	`SELECT * FROM Protein WHERE GID IS NOT NULL AND PLen > 150`,
	// Hash equi-joins.
	`SELECT Gene.GID, PID FROM Gene, Protein WHERE Gene.GID = Protein.GID`,
	`SELECT Gene.GID, PID, PLen FROM Gene, Protein WHERE Gene.GID = Protein.GID AND Score > 20 AND PLen < 120`,
	`SELECT g.GID, p.PID FROM Gene g, Protein p WHERE p.GID = g.GID AND g.GName = 'name1'`,
	// Three-way join: hash keys chain across the prefix.
	`SELECT g.GID, p.PID, l.LID FROM Gene g, Protein p, Lab l
	   WHERE g.GID = p.GID AND l.GID = g.GID AND g.Score >= 5`,
	// Cross join fallback and non-equi join predicates.
	`SELECT g.GID, l.LID FROM Gene g, Lab l WHERE g.Score > 40 AND l.LID < 3`,
	`SELECT g.GID, p.PID FROM Gene g, Protein p WHERE g.Score < p.PLen AND p.PLen < 30`,
	// Annotations propagated through joins, AWHERE, PROMOTE, FILTER.
	`SELECT GID, GName FROM Gene ANNOTATION(Curation) WHERE Score >= 25`,
	`SELECT g.GID, p.PID FROM Gene ANNOTATION(*) g, Protein ANNOTATION(Source) p
	   WHERE g.GID = p.GID`,
	`SELECT g.GID, p.PID FROM Gene ANNOTATION(Curation) g, Protein ANNOTATION(Source) p
	   WHERE g.GID = p.GID AWHERE ANN.AUTHOR = 'alice'`,
	`SELECT GID PROMOTE (GName, Score) FROM Gene ANNOTATION(Curation) WHERE Score >= 25`,
	`SELECT GID, GName FROM Gene ANNOTATION(Curation) WHERE Score >= 20
	   FILTER ANN.TABLE = 'Curation'`,
	// Grouping, distinct, ordering, set ops, limits.
	`SELECT GName, COUNT(*) FROM Gene WHERE Score > 10 GROUP BY GName`,
	`SELECT DISTINCT GName FROM Gene WHERE Score >= 15`,
	`SELECT GID FROM Gene WHERE Score > 30 ORDER BY GID DESC LIMIT 5`,
	`SELECT GID FROM Gene WHERE Score > 40 UNION SELECT GID FROM Gene WHERE Score < 5`,
	`SELECT g.GID FROM Gene g, Protein p WHERE g.GID = p.GID
	   INTERSECT SELECT GID FROM Gene WHERE Score >= 0`,
	// Rows carrying outdated marks must decorate identically.
	`SELECT * FROM Gene WHERE Score >= 0`,
	`SELECT g.GID, p.PID FROM Gene g, Protein p WHERE g.GID = p.GID AND p.PLen >= 0`,
}

// TestPlanEquivalence asserts the planned pipeline (index scans, pushdown,
// hash joins, lazy decoration) returns byte-identical results — rows,
// ordering and propagated annotations — to the naive cross-product executor.
func TestPlanEquivalence(t *testing.T) {
	s := newSession(t)
	buildJoinFixture(t, s, 40, 60)
	for _, q := range equivalenceQueries {
		s.NoOptimize = true
		naive, err := s.Exec(q)
		if err != nil {
			t.Fatalf("naive Exec(%q): %v", q, err)
		}
		s.NoOptimize = false
		planned, err := s.Exec(q)
		if err != nil {
			t.Fatalf("planned Exec(%q): %v", q, err)
		}
		if got, want := fingerprint(planned), fingerprint(naive); got != want {
			t.Errorf("plan mismatch for %q:\nplanned:\n%s\nnaive:\n%s", q, got, want)
		}
	}
}

// TestPlanEquivalenceRandomPointQueries fuzzes point/range lookups across the
// whole key space, including misses.
func TestPlanEquivalenceRandomPointQueries(t *testing.T) {
	s := newSession(t)
	buildJoinFixture(t, s, 30, 45)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 60; i++ {
		var q string
		switch i % 4 {
		case 0:
			q = fmt.Sprintf(`SELECT * FROM Gene WHERE GID = 'G%03d'`, rng.Intn(40))
		case 1:
			q = fmt.Sprintf(`SELECT * FROM Gene WHERE Score >= %d AND Score <= %d`, rng.Intn(30), rng.Intn(30)+15)
		case 2:
			q = fmt.Sprintf(`SELECT * FROM Protein WHERE GID = 'G%03d' AND PLen > %d`, rng.Intn(35), rng.Intn(100))
		default:
			q = fmt.Sprintf(`SELECT g.GID, p.PID FROM Gene g, Protein p
				WHERE g.GID = p.GID AND g.Score > %d`, rng.Intn(45))
		}
		s.NoOptimize = true
		naive, err := s.Exec(q)
		if err != nil {
			t.Fatalf("naive Exec(%q): %v", q, err)
		}
		s.NoOptimize = false
		planned, err := s.Exec(q)
		if err != nil {
			t.Fatalf("planned Exec(%q): %v", q, err)
		}
		if got, want := fingerprint(planned), fingerprint(naive); got != want {
			t.Errorf("plan mismatch for %q:\nplanned:\n%s\nnaive:\n%s", q, got, want)
		}
	}
}

// TestPlanShapes asserts the planner picks the intended physical operators —
// otherwise the equivalence suite could pass trivially with every query
// falling back to scans.
func TestPlanShapes(t *testing.T) {
	s := newSession(t)
	// Pin the syntactic order and the syntactic operator choice: this test
	// asserts the shapes the non-cost-based planner produces (the cost-based
	// choices have their own coverage in the EXPLAIN goldens and the
	// join-order fuzzer).
	s.NoReorder = true
	buildJoinFixture(t, s, 10, 10)
	cases := []struct {
		sql  string
		want []string
	}{
		{`SELECT * FROM Gene WHERE GID = 'G001'`, []string{"IndexScan(Gene.GID =)"}},
		{`SELECT * FROM Gene WHERE Score > 3 AND Score < 9`, []string{"IndexScan(Gene.Score range)"}},
		{`SELECT * FROM Gene WHERE GName = 'name1'`, []string{"SeqScan(Gene) filter"}},
		{`SELECT * FROM Gene, Protein WHERE Gene.GID = Protein.GID`, []string{"HashJoin(Protein)"}},
		{`SELECT * FROM Gene, Protein WHERE Gene.GID = Protein.GID AND Protein.PID = 'P003'`,
			[]string{"HashJoin(Protein via IndexScan(Protein.PID =))", "SeqScan(Gene)"}},
		{`SELECT * FROM Gene, Lab WHERE Score > 40`, []string{"NestedLoop(Lab)"}},
		{`SELECT g.GID FROM Gene g, Protein p WHERE g.Score < p.PLen`,
			[]string{"NestedLoop(Protein) filter"}},
		{`SELECT * FROM Gene WHERE COUNT(*) = 1`, []string{"SeqScan(Gene)", "Residual"}},
	}
	for _, tc := range cases {
		stmt, err := sqlparse.Parse(tc.sql)
		if err != nil {
			t.Fatalf("parse %q: %v", tc.sql, err)
		}
		desc, err := s.explainSelect(stmt.(*sqlparse.SelectStmt))
		if err != nil {
			t.Fatalf("explain %q: %v", tc.sql, err)
		}
		for _, want := range tc.want {
			if !strings.Contains(desc, want) {
				t.Errorf("plan for %q = %q, want it to contain %q", tc.sql, desc, want)
			}
		}
	}
}

// TestIndexScanAfterMutations ensures index-assisted plans see updates and
// deletes (the B+-tree is maintained by DML, but plan correctness after
// churn is what users observe).
func TestIndexScanAfterMutations(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `CREATE TABLE T (ID INT NOT NULL PRIMARY KEY, V TEXT)`)
	for i := 0; i < 20; i++ {
		mustExec(t, s, fmt.Sprintf(`INSERT INTO T VALUES (%d, 'v%d')`, i, i))
	}
	mustExec(t, s, `DELETE FROM T WHERE ID = 7`)
	mustExec(t, s, `UPDATE T SET ID = 107 WHERE ID = 9`)

	res := mustExec(t, s, `SELECT V FROM T WHERE ID = 7`)
	if len(res.Rows) != 0 {
		t.Errorf("deleted row still visible via index: %v", res.Rows)
	}
	res = mustExec(t, s, `SELECT V FROM T WHERE ID = 107`)
	if len(res.Rows) != 1 || res.Rows[0].Values[0].Text() != "v9" {
		t.Errorf("updated key not visible via index: %v", res.Rows)
	}
	res = mustExec(t, s, `SELECT V FROM T WHERE ID >= 18`)
	if len(res.Rows) != 3 { // 18, 19, 107
		t.Errorf("range after churn = %d rows, want 3", len(res.Rows))
	}
}
