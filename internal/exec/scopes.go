package exec

// Latch-scope extraction: which per-table write latches a statement must
// hold. Scopes are lower-cased table names plus the reserved
// storage.ScopeSchema for DDL; storage.ScopeWAL is NOT included here — it is
// acquired separately, after the table scopes, when the write frame is
// armed (see execAutoCommit and Tx.armFrameLocked). Acquiring tables first
// and the shared WAL scope last means two writers touching the same table
// serialize on the table latch before either reaches the WAL, which keeps
// the common single-table workloads cycle-free; genuinely cyclic
// acquisitions are caught by the lock manager's deadlock detector.
//
// The extracted set errs on the side of inclusion: a mutating statement
// latches the tables it reads as well as the tables it writes (an
// ADD ANNOTATION latches its ON (SELECT ...) sources), so every statement
// observes a stable state of everything it touches — writer isolation stays
// serializable.

import (
	"strings"

	"bdbms/internal/sqlparse"
	"bdbms/internal/storage"
)

// writeScopes returns the latch scopes of one mutating statement. Bare
// SELECT and SHOW PENDING never reach here — reads go through MVCC
// snapshots (or, inside a transaction, through selectScopes + the
// transaction's latches).
func (s *Session) writeScopes(stmt sqlparse.Statement) []string {
	set := make(map[string]bool)
	add := func(table string) {
		if table != "" {
			set[strings.ToLower(table)] = true
		}
	}
	switch st := stmt.(type) {
	case *sqlparse.InsertStmt:
		add(st.Table)
	case *sqlparse.UpdateStmt:
		add(st.Table)
	case *sqlparse.DeleteStmt:
		add(st.Table)
	case *sqlparse.CreateTableStmt:
		add(st.Table)
		set[storage.ScopeSchema] = true
	case *sqlparse.DropTableStmt:
		add(st.Table)
		set[storage.ScopeSchema] = true
	case *sqlparse.CreateIndexStmt:
		add(st.Table)
		set[storage.ScopeSchema] = true
	case *sqlparse.CreateAnnotationTableStmt:
		add(st.UserTable)
	case *sqlparse.DropAnnotationTableStmt:
		add(st.UserTable)
	case *sqlparse.AddAnnotationStmt:
		for _, t := range st.Targets {
			add(t.UserTable)
		}
		selectScopes(st.On, set)
	case *sqlparse.ArchiveAnnotationStmt:
		for _, t := range st.Targets {
			add(t.UserTable)
		}
		selectScopes(st.On, set)
	case *sqlparse.StartContentApprovalStmt:
		add(st.Table)
	case *sqlparse.StopContentApprovalStmt:
		add(st.Table)
	case *sqlparse.GrantStmt:
		add(st.Table)
	case *sqlparse.ApproveStmt:
		// A disapproval executes the operation's inverse statement against
		// the operation's table; resolve it up front from the approval log.
		// Unknown operation: latch nothing extra — the statement will fail
		// its lookup under ScopeWAL anyway.
		if s.Auth != nil {
			if op, err := s.Auth.Operation(st.OpID); err == nil {
				add(op.Table)
			}
		}
	}
	out := make([]string, 0, len(set))
	for scope := range set {
		out = append(out, scope)
	}
	return out
}

// selectScopes collects, into set, the lower-cased names of every table a
// SELECT reads — FROM entries plus set-operation operands, recursively.
func selectScopes(sel *sqlparse.SelectStmt, set map[string]bool) {
	for sel != nil {
		for _, ref := range sel.From {
			if ref.Table != "" {
				set[strings.ToLower(ref.Table)] = true
			}
		}
		sel = sel.SetRight
	}
}

// selectScopeList is selectScopes in slice form, for transaction statements
// that latch their read set.
func selectScopeList(sel *sqlparse.SelectStmt) []string {
	set := make(map[string]bool)
	selectScopes(sel, set)
	out := make([]string, 0, len(set))
	for scope := range set {
		out = append(out, scope)
	}
	return out
}
