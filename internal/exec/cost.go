package exec

// Cost-based join planning: cardinality estimation from table statistics
// (internal/stats), exhaustive join-order search for small FROM lists with a
// greedy fallback for large ones, and the nested-loop-when-cheaper rule for
// keyed joins with tiny prefixes.
//
// The search operates on the syntactic plan's raw material — per-source
// estimates and the analyzed multi-table conjuncts — and compiles the chosen
// order into join steps whose prefix-side slots live in the EXECUTION row
// layout (sources concatenated in execution order). Pushed single-table
// predicates need no remapping: the scan evaluates them at the source's own
// syntactic offset regardless of where the source sits in the pipeline. When
// the chosen order differs from the syntactic one, restoreIter permutes the
// output back to the syntactic layout and order, so every stage above the
// joins (residual filters, decoration, projection, ordering) is oblivious to
// the reordering. The syntactic order is evaluated first and replaced only by
// a strictly cheaper candidate, so it wins every tie and the plan-shape tests
// stay deterministic.

import (
	"math"
	"sort"
	"sync/atomic"

	"bdbms/internal/sqlparse"
	"bdbms/internal/stats"
	"bdbms/internal/storage"
	"bdbms/internal/value"
)

// plansReordered counts plans whose execution order differs from the
// syntactic FROM order. The join-order fuzzer asserts it moves: otherwise
// the reorder search could degenerate to always keeping the syntactic order
// and the equivalence suite would pass trivially.
var plansReordered atomic.Int64

const (
	// defaultSelectivity is assumed for predicates the estimator cannot
	// analyze (non-comparisons, placeholders, columns without statistics).
	defaultSelectivity = 1.0 / 3
	// eqSelectivityNoStats is assumed for an equality against a constant on
	// a column with no distinct count available.
	eqSelectivityNoStats = 0.1
	// maxExhaustiveSources bounds the exhaustive permutation search (5! =
	// 120 candidate orders); larger FROM lists use the greedy search.
	maxExhaustiveSources = 5
)

// tableStats returns the planner's statistics snapshot for a table, or nil
// when the session disabled statistics. Stats rebuilds lazily once the
// incremental counters drift past the threshold, so the first plan after
// heavy churn pays one heap scan and every later plan reads the cache.
func (s *Session) tableStats(tbl *storage.Table) *stats.Table {
	if s.NoStats {
		return nil
	}
	return tbl.Stats()
}

// costModel holds the per-source cardinality estimates of one SELECT while
// the join order is chosen and its steps compiled.
type costModel struct {
	s          *Session
	sources    []*sourcePlan
	slotSource []int
	tstats     []*stats.Table // nil entries: no statistics available
	base       []float64      // raw row count per source
	est        []float64      // post-predicate estimate per source
}

func (s *Session) newCostModel(sources []*sourcePlan, slotSource []int) *costModel {
	m := &costModel{
		s:          s,
		sources:    sources,
		slotSource: slotSource,
		tstats:     make([]*stats.Table, len(sources)),
		base:       make([]float64, len(sources)),
		est:        make([]float64, len(sources)),
	}
	for i, src := range sources {
		st := s.tableStats(src.tbl)
		m.tstats[i] = st
		if st != nil {
			m.base[i] = float64(st.Rows)
		} else {
			m.base[i] = float64(src.tbl.RowCount())
		}
		m.est[i] = m.sourceEstimate(src, st, m.base[i])
	}
	return m
}

// sourceEstimate multiplies the base row count by the selectivity of every
// pushed predicate, floored at one row.
func (m *costModel) sourceEstimate(src *sourcePlan, st *stats.Table, base float64) float64 {
	rows := base
	for _, p := range src.preds {
		rows *= m.predSelectivity(src, st, p.expr)
	}
	if rows < 1 {
		rows = 1
	}
	return rows
}

// predSelectivity estimates the fraction of rows one pushed conjunct keeps:
// 1/distinct for constant equalities, the covered fraction of [Min, Max] for
// numeric range comparisons, defaultSelectivity for everything else.
func (m *costModel) predSelectivity(src *sourcePlan, st *stats.Table, e sqlparse.Expr) float64 {
	col, ce, op, ok := comparisonParts(e)
	if !ok {
		return defaultSelectivity
	}
	ci := src.tbl.Schema().ColumnIndex(col.Column)
	if ci < 0 {
		return defaultSelectivity
	}
	if op == "=" {
		if d := columnDistinct(st, ci); d > 0 {
			return 1 / d
		}
		return eqSelectivityNoStats
	}
	if st == nil || ci >= len(st.Cols) || !st.Cols[ci].HasRange || containsPlaceholder(ce) {
		return defaultSelectivity
	}
	cv, err := m.s.evalConst(ce, nil)
	if err != nil {
		return defaultSelectivity
	}
	f, numeric := numericBound(cv)
	if !numeric {
		return defaultSelectivity
	}
	c := st.Cols[ci]
	width := c.Max - c.Min
	if width <= 0 {
		// Single-valued (or never rebuilt) range: a comparison against it
		// keeps either everything or nothing; split the difference.
		return 0.5
	}
	var frac float64
	switch op {
	case "<", "<=":
		frac = (f - c.Min) / width
	case ">", ">=":
		frac = (c.Max - f) / width
	default:
		return defaultSelectivity
	}
	return math.Min(math.Max(frac, 0), 1)
}

func numericBound(v value.Value) (float64, bool) {
	switch v.Type() {
	case value.Int:
		return float64(v.Int()), true
	case value.Float:
		return v.Float(), true
	default:
		return 0, false
	}
}

func columnDistinct(st *stats.Table, ci int) float64 {
	if st == nil || ci < 0 || ci >= len(st.Cols) {
		return 0
	}
	return float64(st.Cols[ci].Distinct)
}

// slotDistinct estimates the distinct count of the column behind a syntactic
// value slot, falling back to a tenth of the source's estimated rows.
func (m *costModel) slotDistinct(slot int) float64 {
	si := m.slotSource[slot]
	if d := columnDistinct(m.tstats[si], slot-m.sources[si].offset); d > 0 {
		return d
	}
	d := m.est[si] / 10
	if d < 1 {
		d = 1
	}
	return d
}

// readCost is the cost of producing a source's rows once: a full scan reads
// the whole table, an index probe reads only the estimated survivors.
func (m *costModel) readCost(si int) float64 {
	if m.sources[si].access.kind == accessFullScan {
		return m.base[si]
	}
	return m.est[si]
}

// identity returns the syntactic execution order.
func (m *costModel) identity() []int {
	order := make([]int, len(m.sources))
	for i := range order {
		order[i] = i
	}
	return order
}

// equiParts recognizes `a.col = b.col` conjuncts where one side resolves to
// the step's right source and the other to an already-joined source, and
// returns the two syntactic slots (prefix side first). The two columns'
// declared types must share a comparison class: hash lookup silently returns
// "no match" where the naive `=` would raise a type error, so incomparable
// pairs stay as post-join filters to preserve error behavior.
func equiParts(ac analyzedConjunct, sources []*sourcePlan, slotSource []int, rightIdx int) (prefixSlot, rightSlot int, ok bool) {
	bin, isBin := ac.expr.(*sqlparse.BinaryExpr)
	if !isBin || bin.Op != "=" || len(ac.sources) != 2 {
		return 0, 0, false
	}
	lcol, lok := bin.Left.(*sqlparse.ColumnExpr)
	rcol, rok := bin.Right.(*sqlparse.ColumnExpr)
	if !lok || !rok {
		return 0, 0, false
	}
	lslot, rslot := ac.slots[lcol], ac.slots[rcol]
	if slotSource[lslot] == slotSource[rslot] {
		return 0, 0, false
	}
	if slotSource[lslot] == rightIdx {
		lslot, rslot = rslot, lslot
	}
	if slotSource[rslot] != rightIdx {
		return 0, 0, false
	}
	lClass := classOf(columnTypeAt(sources, slotSource, lslot))
	rClass := classOf(columnTypeAt(sources, slotSource, rslot))
	if lClass != rClass || lClass == classOther {
		return 0, 0, false
	}
	return lslot, rslot, true
}

// stepConjuncts are the multi-table conjuncts completed at one join step,
// split into hash-key candidates and post-join filters.
type stepConjuncts struct {
	equi []analyzedConjunct
	post []analyzedConjunct
}

// assignConjuncts places every multi-table conjunct at the earliest step of
// the candidate order where all its sources are joined. By construction the
// step's new (right) source is one of the conjunct's sources, so two-source
// equalities are always eligible as hash keys of that step.
func (m *costModel) assignConjuncts(order []int, multi []analyzedConjunct) []stepConjuncts {
	pos := make([]int, len(m.sources))
	for p, si := range order {
		pos[si] = p
	}
	steps := make([]stepConjuncts, len(order)-1)
	for _, ac := range multi {
		maxPos := 0
		for si := range ac.sources {
			if pos[si] > maxPos {
				maxPos = pos[si]
			}
		}
		if _, _, ok := equiParts(ac, m.sources, m.slotSource, order[maxPos]); ok {
			steps[maxPos-1].equi = append(steps[maxPos-1].equi, ac)
		} else {
			steps[maxPos-1].post = append(steps[maxPos-1].post, ac)
		}
	}
	return steps
}

// stepSelectivity estimates the fraction of prefix×right combinations one
// join step keeps: 1/max(distinct) per equi-key, defaultSelectivity per
// post filter, 1 for a pure cross join.
func (m *costModel) stepSelectivity(sc stepConjuncts, rightIdx int) float64 {
	sel := 1.0
	for _, ac := range sc.equi {
		lslot, rslot, _ := equiParts(ac, m.sources, m.slotSource, rightIdx)
		sel /= math.Max(m.slotDistinct(lslot), m.slotDistinct(rslot))
	}
	for range sc.post {
		sel *= defaultSelectivity
	}
	return sel
}

// orderCost estimates the total cost of executing the sources in the given
// order. Per step: the right side is read and materialized once; a hash join
// then costs build(right) + probe(prefix), a nested loop prefix × right;
// emitting the surviving combinations is charged either way. Keyed steps are
// costed at whichever of the two is cheaper, matching the choice buildSteps
// compiles.
func (m *costModel) orderCost(order []int, multi []analyzedConjunct) float64 {
	steps := m.assignConjuncts(order, multi)
	rows := m.est[order[0]]
	cost := m.readCost(order[0])
	for i := range steps {
		r := order[i+1]
		out := rows * m.est[r] * m.stepSelectivity(steps[i], r)
		if out < 1 {
			out = 1
		}
		hash := 2*m.est[r] + rows
		nl := rows * m.est[r]
		join := hash
		if len(steps[i].equi) == 0 || nl < hash {
			join = nl
		}
		cost += m.readCost(r) + join + out
		rows = out
	}
	return cost
}

// chooseOrder picks the cheapest execution order: exhaustively for small
// FROM lists, greedily beyond maxExhaustiveSources. The syntactic order is
// the baseline and survives unless a candidate is strictly cheaper.
func (m *costModel) chooseOrder(multi []analyzedConjunct) []int {
	best := m.identity()
	bestCost := m.orderCost(best, multi)
	consider := func(cand []int) {
		if c := m.orderCost(cand, multi); c < bestCost {
			bestCost = c
			copy(best, cand)
		}
	}
	if len(m.sources) <= maxExhaustiveSources {
		permute(m.identity(), 0, consider)
	} else {
		consider(m.greedyOrder(multi))
	}
	return best
}

// permute enumerates every permutation of p[k:] in a deterministic order,
// calling fn with the full slice for each.
func permute(p []int, k int, fn func([]int)) {
	if k == len(p) {
		fn(p)
		return
	}
	for i := k; i < len(p); i++ {
		p[k], p[i] = p[i], p[k]
		permute(p, k+1, fn)
		p[k], p[i] = p[i], p[k]
	}
}

// greedyOrder starts from the smallest estimated source and repeatedly
// appends the candidate that minimizes the cost of the order completed with
// the remaining sources in syntactic position.
func (m *costModel) greedyOrder(multi []analyzedConjunct) []int {
	n := len(m.sources)
	used := make([]bool, n)
	start := 0
	for i := 1; i < n; i++ {
		if m.est[i] < m.est[start] {
			start = i
		}
	}
	order := []int{start}
	used[start] = true
	for len(order) < n {
		bestNext, bestCost := -1, math.Inf(1)
		for r := 0; r < n; r++ {
			if used[r] {
				continue
			}
			cand := append(append([]int(nil), order...), r)
			for i := 0; i < n; i++ {
				if !used[i] && i != r {
					cand = append(cand, i)
				}
			}
			if c := m.orderCost(cand, multi); c < bestCost {
				bestCost, bestNext = c, r
			}
		}
		order = append(order, bestNext)
		used[bestNext] = true
	}
	return order
}

// buildSteps compiles the join steps of the chosen order. Prefix-side slots
// (hash keys and post-filter column references) are remapped from the
// syntactic value-slot layout into the execution layout — the concatenation
// of the sources' column blocks in execution order — because that is the
// layout of the rows flowing through the join pipeline. Right-side key slots
// stay local to the right source. With costBased set, a keyed step whose
// prefix is estimated smaller than the hash build cost is compiled as a
// nested loop instead: the equality conjuncts run as post-join filters,
// which is semantically identical (key extraction requires a shared
// comparison class, so `=` never errors, and a NULL key matches under
// neither strategy).
//
// It returns the steps, the estimated rows after each step, and the
// estimated rows out of the whole join pipeline.
func (m *costModel) buildSteps(order []int, multi []analyzedConjunct, costBased bool) ([]joinStep, []float64, float64) {
	execOff := make([]int, len(order))
	pos := make([]int, len(m.sources))
	off := 0
	for p, si := range order {
		execOff[p] = off
		pos[si] = p
		off += m.sources[si].numCols
	}
	toExec := func(slot int) int {
		si := m.slotSource[slot]
		return execOff[pos[si]] + (slot - m.sources[si].offset)
	}
	remap := func(ac analyzedConjunct) compiledPred {
		slots := make(map[*sqlparse.ColumnExpr]int, len(ac.slots))
		for col, slot := range ac.slots {
			slots[col] = toExec(slot)
		}
		return compiledPred{expr: ac.expr, slots: slots}
	}
	assigned := m.assignConjuncts(order, multi)
	steps := make([]joinStep, len(order)-1)
	stepRows := make([]float64, len(steps))
	rows := m.est[order[0]]
	for i := range steps {
		r := order[i+1]
		right := m.sources[r]
		step := joinStep{right: right}
		for _, ac := range assigned[i].equi {
			lslot, rslot, _ := equiParts(ac, m.sources, m.slotSource, r)
			step.leftKey = append(step.leftKey, joinKeyCol{
				slot:  toExec(lslot),
				class: classOf(columnTypeAt(m.sources, m.slotSource, lslot)),
			})
			step.rightKey = append(step.rightKey, joinKeyCol{
				slot:  rslot - right.offset,
				class: classOf(columnTypeAt(m.sources, m.slotSource, rslot)),
			})
		}
		for _, ac := range assigned[i].post {
			step.post = append(step.post, remap(ac))
		}
		if costBased && len(step.leftKey) > 0 && rows*m.est[r] < 2*m.est[r]+rows {
			step.leftKey, step.rightKey = nil, nil
			for _, ac := range assigned[i].equi {
				step.post = append(step.post, remap(ac))
			}
		}
		out := rows * m.est[r] * m.stepSelectivity(assigned[i], r)
		if out < 1 {
			out = 1
		}
		steps[i] = step
		stepRows[i] = out
		rows = out
	}
	return steps, stepRows, rows
}

// topNWins decides the physical sort operator for an ordered, limited
// SELECT: a bounded heap of limit rows when the limit undercuts the
// estimated input size, a full sort otherwise (a LIMIT that keeps nearly
// everything gains nothing from heap maintenance). A zero estimate means the
// plan has no cardinality information (e.g. no FROM sources); the historical
// choice — Top-N whenever a LIMIT is present — is kept there.
func topNWins(limit int, phys *physicalPlan) bool {
	if limit < 0 {
		return false
	}
	return phys.estRows <= 0 || float64(limit) < phys.estRows
}

// restoreIter sits above a reordered join pipeline and makes the reordering
// invisible to everything downstream: each row's values and origins are
// permuted from the execution layout back to the syntactic layout, and the
// rows are re-emitted in the order the syntactic pipeline would produce —
// ascending by the tuple of origin RowIDs in syntactic FROM order, which is
// exactly the left-major order the scans and joins stream in (both emit
// matches in ascending RowID order). Origin tuples are unique per output
// row (a join emits each base-row combination at most once), so the sort is
// deterministic. The operator is blocking: it materializes the join output,
// trading memory for a plan that only exists because it filters early.
type restoreIter struct {
	in   rowIter
	plan *physicalPlan
	rows []execRow
	pos  int
	done bool
}

func (it *restoreIter) Next() (execRow, bool, error) {
	if !it.done {
		it.done = true
		srcs := it.plan.sources
		order := it.plan.execOrder()
		for {
			r, ok, err := it.in.Next()
			if err != nil {
				return execRow{}, false, err
			}
			if !ok {
				break
			}
			vals := make(value.Row, len(r.values))
			origins := make([]origin, len(srcs))
			off := 0
			for p, si := range order {
				src := srcs[si]
				copy(vals[src.offset:src.offset+src.numCols], r.values[off:off+src.numCols])
				origins[si] = r.origins[p]
				off += src.numCols
			}
			it.rows = append(it.rows, execRow{values: vals, origins: origins})
		}
		sort.Slice(it.rows, func(a, b int) bool {
			ra, rb := it.rows[a].origins, it.rows[b].origins
			for k := range ra {
				if ra[k].rowID != rb[k].rowID {
					return ra[k].rowID < rb[k].rowID
				}
			}
			return false
		})
	}
	if it.pos >= len(it.rows) {
		return execRow{}, false, nil
	}
	r := it.rows[it.pos]
	it.pos++
	return r, true, nil
}
