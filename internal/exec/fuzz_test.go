package exec

// Property-based SQL equivalence fuzzing: a seeded generator produces random
// schemas, data and SELECTs (filters, joins, GROUP BY, ORDER BY, set
// operations, ANNOTATION/AWHERE/FILTER clauses) and asserts that the three
// execution paths — the planned iterator pipeline, the prepared-statement
// path with `?` parameters, and the NoOptimize naive reference — return
// identical rows AND identical propagated annotations. Seeds are fixed, so
// the suite is deterministic in CI; a failure prints the full reproducing
// A-SQL script.

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// fuzzColumn describes one generated column.
type fuzzColumn struct {
	name string
	typ  string // INT, FLOAT, TEXT, BOOL
}

// fuzzTable describes one generated table.
type fuzzTable struct {
	name    string
	cols    []fuzzColumn
	pk      string
	indexed []string
	annTabs []string
	rows    int
}

func (ft *fuzzTable) colsOfType(typ string) []string {
	var out []string
	for _, c := range ft.cols {
		if c.typ == typ {
			out = append(out, c.name)
		}
	}
	return out
}

// fuzzCase is one generated database plus its workload.
type fuzzCase struct {
	setup  []string
	tables []*fuzzTable
}

var fuzzTexts = []string{"alpha", "beta", "gamma", "delta", "omega"}

func pick[T any](r *rand.Rand, xs []T) T { return xs[r.Intn(len(xs))] }

// genCase generates the schema, data and annotations of one fuzz database.
func genCase(r *rand.Rand) *fuzzCase {
	fc := &fuzzCase{}
	t1 := &fuzzTable{
		name: "T1",
		cols: []fuzzColumn{
			{"A", "INT"}, {"B", "INT"}, {"C", "TEXT"}, {"D", "FLOAT"}, {"E", "BOOL"},
		},
		rows: 15 + r.Intn(25),
	}
	if r.Intn(2) == 0 {
		t1.pk = "A"
	}
	t2 := &fuzzTable{
		name: "T2",
		cols: []fuzzColumn{{"K", "INT"}, {"R", "INT"}, {"S", "TEXT"}},
		pk:   "K",
		rows: 10 + r.Intn(20),
	}
	fc.tables = []*fuzzTable{t1, t2}

	for _, ft := range fc.tables {
		var defs []string
		for _, c := range ft.cols {
			def := c.name + " " + c.typ
			if c.name == ft.pk {
				def += " NOT NULL PRIMARY KEY"
			}
			defs = append(defs, def)
		}
		fc.setup = append(fc.setup, fmt.Sprintf("CREATE TABLE %s (%s)", ft.name, strings.Join(defs, ", ")))
	}
	// Random secondary indexes so the planner's index probes get exercised.
	for _, cand := range []struct{ tbl, col string }{
		{"T1", "B"}, {"T1", "C"}, {"T1", "D"}, {"T2", "R"}, {"T2", "S"},
	} {
		if r.Intn(2) == 0 {
			fc.setup = append(fc.setup, fmt.Sprintf("CREATE INDEX ON %s (%s)", cand.tbl, cand.col))
			for _, ft := range fc.tables {
				if ft.name == cand.tbl {
					ft.indexed = append(ft.indexed, cand.col)
				}
			}
		}
	}

	// Data: small value domains so filters, joins and groups actually match.
	genValue := func(ft *fuzzTable, c fuzzColumn, i int) string {
		if c.name == ft.pk {
			return fmt.Sprint(i + 1)
		}
		if r.Intn(10) == 0 {
			return "NULL"
		}
		switch c.typ {
		case "INT":
			return fmt.Sprint(r.Intn(10))
		case "FLOAT":
			return pick(r, []string{"-2.5", "0.0", "1.25", "3.5", "7.75"})
		case "TEXT":
			return "'" + pick(r, fuzzTexts) + "'"
		default:
			return pick(r, []string{"TRUE", "FALSE"})
		}
	}
	for _, ft := range fc.tables {
		for i := 0; i < ft.rows; i++ {
			vals := make([]string, len(ft.cols))
			for j, c := range ft.cols {
				vals[j] = genValue(ft, c, i)
			}
			fc.setup = append(fc.setup,
				fmt.Sprintf("INSERT INTO %s VALUES (%s)", ft.name, strings.Join(vals, ", ")))
		}
	}

	// Annotation tables and a few annotations over random regions.
	t1.annTabs = []string{"Notes", "Tags"}
	t2.annTabs = []string{"Notes"}
	for _, ft := range fc.tables {
		for _, at := range ft.annTabs {
			fc.setup = append(fc.setup,
				fmt.Sprintf("CREATE ANNOTATION TABLE %s ON %s", at, ft.name))
		}
	}
	for i := 0; i < 2+r.Intn(3); i++ {
		ft := pick(r, fc.tables)
		at := pick(r, ft.annTabs)
		col := pick(r, ft.cols)
		var where string
		switch col.typ {
		case "INT":
			where = fmt.Sprintf("%s < %d", col.name, 2+r.Intn(8))
		case "FLOAT":
			where = fmt.Sprintf("%s > 0.5", col.name)
		case "TEXT":
			where = fmt.Sprintf("%s = '%s'", col.name, pick(r, fuzzTexts))
		default:
			where = col.name + " = TRUE"
		}
		proj := pick(r, ft.cols).name
		if r.Intn(3) == 0 {
			proj = "*"
		}
		fc.setup = append(fc.setup, fmt.Sprintf(
			"ADD ANNOTATION TO %s.%s VALUE 'fuzz note %d' ON (SELECT %s FROM %s WHERE %s)",
			ft.name, at, i, proj, ft.name, where))
	}
	return fc
}

// queryGen accumulates one generated query in both inline-literal and
// prepared (`?` placeholder) forms. Placeholders are emitted left to right,
// so args line up with the prepared statement's numbering.
type queryGen struct {
	r    *rand.Rand
	args []any
}

// literal renders v inline and, with probability 1/2, as a placeholder in
// the prepared text.
func (g *queryGen) literal(inline string, v any) (string, string) {
	if g.r.Intn(2) == 0 {
		g.args = append(g.args, v)
		return inline, "?"
	}
	return inline, inline
}

// comparison generates one type-correct predicate leaf over table ft
// (qualified when qual is set). It returns inline and prepared renderings.
func (g *queryGen) comparison(ft *fuzzTable, qual bool) (string, string) {
	col := pick(g.r, ft.cols)
	name := col.name
	if qual {
		name = ft.name + "." + name
	}
	switch g.r.Intn(6) {
	case 0:
		return name + " IS NULL", name + " IS NULL"
	case 1:
		return name + " IS NOT NULL", name + " IS NOT NULL"
	}
	switch col.typ {
	case "INT":
		op := pick(g.r, []string{"=", "<>", "<", "<=", ">", ">="})
		n := g.r.Intn(10)
		in, prep := g.literal(fmt.Sprint(n), int64(n))
		return fmt.Sprintf("%s %s %s", name, op, in), fmt.Sprintf("%s %s %s", name, op, prep)
	case "FLOAT":
		op := pick(g.r, []string{"<", "<=", ">", ">=", "=", "<>"})
		f := pick(g.r, []string{"-2.5", "0.0", "1.25", "3.5", "7.75"})
		var fv float64
		fmt.Sscanf(f, "%g", &fv)
		in, prep := g.literal(f, fv)
		return fmt.Sprintf("%s %s %s", name, op, in), fmt.Sprintf("%s %s %s", name, op, prep)
	case "TEXT":
		if g.r.Intn(4) == 0 {
			pat := "'%" + pick(g.r, []string{"a", "e", "mm", "lt"}) + "%'"
			return name + " LIKE " + pat, name + " LIKE " + pat
		}
		op := pick(g.r, []string{"=", "<>", "<", ">"})
		s := pick(g.r, fuzzTexts)
		in, prep := g.literal("'"+s+"'", s)
		return fmt.Sprintf("%s %s %s", name, op, in), fmt.Sprintf("%s %s %s", name, op, prep)
	default:
		lit := pick(g.r, []string{"TRUE", "FALSE"})
		return name + " = " + lit, name + " = " + lit
	}
}

// boolExpr generates a boolean expression tree of the given depth.
func (g *queryGen) boolExpr(ft *fuzzTable, qual bool, depth int) (string, string) {
	if depth <= 0 || g.r.Intn(3) == 0 {
		return g.comparison(ft, qual)
	}
	switch g.r.Intn(3) {
	case 0:
		li, lp := g.boolExpr(ft, qual, depth-1)
		ri, rp := g.boolExpr(ft, qual, depth-1)
		op := pick(g.r, []string{"AND", "OR"})
		return fmt.Sprintf("(%s %s %s)", li, op, ri), fmt.Sprintf("(%s %s %s)", lp, op, rp)
	case 1:
		ei, ep := g.boolExpr(ft, qual, depth-1)
		return "NOT " + ei, "NOT " + ep
	default:
		return g.comparison(ft, qual)
	}
}

// fromClause renders one FROM entry, sometimes propagating annotations.
func (g *queryGen) fromClause(ft *fuzzTable) string {
	if len(ft.annTabs) > 0 && g.r.Intn(5) < 2 {
		if g.r.Intn(2) == 0 {
			return ft.name + " ANNOTATION(*)"
		}
		return fmt.Sprintf("%s ANNOTATION(%s)", ft.name, pick(g.r, ft.annTabs))
	}
	return ft.name
}

// genQuery builds one SELECT in inline and prepared forms.
func (g *queryGen) genQuery(fc *fuzzCase) (string, string) {
	t1, t2 := fc.tables[0], fc.tables[1]
	switch g.r.Intn(8) {
	case 0, 1: // single-table with filters, maybe DISTINCT/ORDER/LIMIT
		ft := pick(g.r, fc.tables)
		cols := []string{}
		for _, c := range ft.cols {
			if g.r.Intn(2) == 0 {
				cols = append(cols, c.name)
			}
		}
		proj := "*"
		var allCols []string
		for _, c := range ft.cols {
			allCols = append(allCols, c.name)
		}
		if len(cols) > 0 && g.r.Intn(4) > 0 {
			proj = strings.Join(cols, ", ")
		} else {
			cols = allCols
		}
		distinct := ""
		if g.r.Intn(5) == 0 {
			distinct = "DISTINCT "
		}
		wi, wp := g.boolExpr(ft, false, 2)
		// Ordering may reference non-projected columns (rejected with
		// DISTINCT — the error-equivalence path covers those draws).
		tail, _ := g.orderLimit(cols, allCols)
		from := g.fromClause(ft)
		inline := fmt.Sprintf("SELECT %s%s FROM %s WHERE %s%s", distinct, proj, from, wi, tail)
		prep := fmt.Sprintf("SELECT %s%s FROM %s WHERE %s%s", distinct, proj, from, wp, tail)
		return inline, prep
	case 2, 3: // equi-join between T1 and T2
		joinCol1, joinCol2 := "B", "R" // INT = INT
		if g.r.Intn(3) == 0 {
			joinCol1, joinCol2 = "C", "S" // TEXT = TEXT
		}
		w1i, w1p := g.boolExpr(t1, true, 1)
		w2i, w2p := g.boolExpr(t2, true, 1)
		proj := "T1." + pick(g.r, t1.cols).name + ", T2." + pick(g.r, t2.cols).name
		base := fmt.Sprintf("SELECT %s FROM %s, %s WHERE T1.%s = T2.%s AND %%s AND %%s",
			proj, g.fromClause(t1), g.fromClause(t2), joinCol1, joinCol2)
		return fmt.Sprintf(base, w1i, w2i), fmt.Sprintf(base, w1p, w2p)
	case 4: // GROUP BY with aggregates, maybe HAVING
		ft := pick(g.r, fc.tables)
		groupCol := pick(g.r, ft.colsOfType("TEXT"))
		intCol := pick(g.r, ft.colsOfType("INT"))
		agg := pick(g.r, []string{
			"COUNT(*)",
			fmt.Sprintf("SUM(%s)", intCol),
			fmt.Sprintf("MIN(%s)", intCol),
			fmt.Sprintf("MAX(%s)", intCol),
			fmt.Sprintf("AVG(%s)", intCol),
		})
		having := ""
		if g.r.Intn(2) == 0 {
			having = fmt.Sprintf(" HAVING COUNT(*) >= %d", 1+g.r.Intn(3))
		}
		wi, wp := g.boolExpr(ft, false, 1)
		order := fmt.Sprintf(" ORDER BY %s", groupCol)
		inline := fmt.Sprintf("SELECT %s, %s FROM %s WHERE %s GROUP BY %s%s%s",
			groupCol, agg, ft.name, wi, groupCol, having, order)
		prep := fmt.Sprintf("SELECT %s, %s FROM %s WHERE %s GROUP BY %s%s%s",
			groupCol, agg, ft.name, wp, groupCol, having, order)
		return inline, prep
	case 5: // set operation over type-compatible projections
		op := pick(g.r, []string{"UNION", "INTERSECT", "EXCEPT"})
		w1i, w1p := g.boolExpr(t1, false, 1)
		w2i, w2p := g.boolExpr(t2, false, 1)
		base := "SELECT C FROM T1 WHERE %s " + op + " SELECT S FROM T2 WHERE %s"
		tail, _ := g.orderLimit([]string{"C"}, nil)
		return fmt.Sprintf(base, w1i, w2i) + tail, fmt.Sprintf(base, w1p, w2p) + tail
	case 6: // annotation-aware query with AWHERE / FILTER
		ft := pick(g.r, fc.tables)
		wi, wp := g.boolExpr(ft, false, 1)
		annClause := pick(g.r, []string{
			" AWHERE ANN.AUTHOR = 'admin'",
			" AWHERE ANN.VALUE LIKE '%note%'",
			fmt.Sprintf(" FILTER ANN.TABLE = '%s'", pick(g.r, ft.annTabs)),
		})
		inline := fmt.Sprintf("SELECT * FROM %s ANNOTATION(*) WHERE %s%s", ft.name, wi, annClause)
		prep := fmt.Sprintf("SELECT * FROM %s ANNOTATION(*) WHERE %s%s", ft.name, wp, annClause)
		return inline, prep
	default: // indexed point/range query shape (planner fast path)
		ft := pick(g.r, fc.tables)
		col := ""
		if len(ft.indexed) > 0 {
			col = pick(g.r, ft.indexed)
		} else if ft.pk != "" {
			col = ft.pk
		} else {
			col = ft.cols[0].name
		}
		var typ string
		for _, c := range ft.cols {
			if c.name == col {
				typ = c.typ
			}
		}
		var in, prep string
		switch typ {
		case "TEXT":
			s := pick(g.r, fuzzTexts)
			li, lp := g.literal("'"+s+"'", s)
			in, prep = fmt.Sprintf("%s = %s", col, li), fmt.Sprintf("%s = %s", col, lp)
		case "FLOAT":
			in, prep = col+" >= 1.25", col+" >= 1.25"
		default:
			n := g.r.Intn(12)
			li, lp := g.literal(fmt.Sprint(n), int64(n))
			op := pick(g.r, []string{"=", ">=", "<"})
			in, prep = fmt.Sprintf("%s %s %s", col, op, li), fmt.Sprintf("%s %s %s", col, op, lp)
		}
		inline := fmt.Sprintf("SELECT * FROM %s WHERE %s", ft.name, in)
		return inline, fmt.Sprintf("SELECT * FROM %s WHERE %s", ft.name, prep)
	}
}

// orderLimit renders an optional ORDER BY and LIMIT tail. Keys usually come
// from the output columns; when allCols is non-nil a key is occasionally
// drawn from the full source column list instead, exercising ORDER BY on
// non-projected columns (and its rejection under DISTINCT).
func (g *queryGen) orderLimit(cols, allCols []string) (string, bool) {
	var tail string
	ordered := false
	if len(cols) > 0 && g.r.Intn(3) == 0 {
		pool := cols
		if len(allCols) > 0 && g.r.Intn(4) == 0 {
			pool = allCols
		}
		keys := 1 + g.r.Intn(2)
		var parts []string
		for i := 0; i < keys; i++ {
			col := pick(g.r, pool)
			dir := ""
			if g.r.Intn(2) == 0 {
				dir = " DESC"
			}
			parts = append(parts, col+dir)
		}
		tail += " ORDER BY " + strings.Join(parts, ", ")
		ordered = true
	}
	if g.r.Intn(4) == 0 {
		tail += fmt.Sprintf(" LIMIT %d", 1+g.r.Intn(20))
	}
	return tail, ordered
}

// canonResult renders a result for comparison: columns, then each row's
// values with its annotations (sorted per row for stability).
func canonResult(res *Result) string {
	var b strings.Builder
	b.WriteString(strings.Join(res.Columns, ","))
	for _, row := range res.Rows {
		b.WriteString("\n")
		parts := make([]string, len(row.Values))
		for i, v := range row.Values {
			parts[i] = v.String()
		}
		b.WriteString(strings.Join(parts, "|"))
		var anns []string
		for _, a := range row.AnnotationsFlat() {
			anns = append(anns, fmt.Sprintf("[%s~%s~%s]", a.AnnTable, a.Author, a.PlainBody()))
		}
		sort.Strings(anns)
		b.WriteString(strings.Join(anns, ""))
	}
	return b.String()
}

// reproScript renders the full reproducing script for a failure report.
func reproScript(fc *fuzzCase, query string) string {
	var b strings.Builder
	for _, s := range fc.setup {
		b.WriteString(s)
		b.WriteString(";\n")
	}
	b.WriteString(query)
	b.WriteString(";\n")
	return b.String()
}

// TestSQLEquivalenceFuzz is the property-based equivalence suite: for a set
// of fixed seeds, planned, prepared and naive execution must agree on every
// generated query.
func TestSQLEquivalenceFuzz(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	queriesPerSeed := 40
	if testing.Short() {
		seeds = seeds[:3]
		queriesPerSeed = 15
	}
	batchScans.Store(0)
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			fuzzSeed(t, seed, queriesPerSeed, 0)
		})
	}
	if batchScans.Load() == 0 {
		t.Error("no generated query ran the vectorized scan; the batched path is untested")
	}
}

// TestSQLEquivalenceFuzzSpill re-runs equivalence seeds with a one-byte
// spill budget, so every blocking operator (grouped aggregation, DISTINCT,
// UNION, external sort) takes its spill path on every query — proving
// planned == naive for the spilled operators too. The generated FLOAT
// domain is exactly representable in binary, so spill-order-dependent
// summation cannot introduce rounding differences.
func TestSQLEquivalenceFuzzSpill(t *testing.T) {
	seeds := []int64{11, 12, 13}
	queriesPerSeed := 25
	if testing.Short() {
		seeds = seeds[:1]
		queriesPerSeed = 10
	}
	spillEvents.Store(0)
	batchScans.Store(0)
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed-%d-spill", seed), func(t *testing.T) {
			fuzzSeed(t, seed, queriesPerSeed, 1)
		})
	}
	if spillEvents.Load() == 0 {
		t.Error("spill-forcing seeds never spilled")
	}
	if batchScans.Load() == 0 {
		t.Error("spill-forcing seeds never ran the vectorized scan; batched aggregation never spilled")
	}
}

// fuzzSeed runs one generated database + workload with the given spill
// budget (0 = default).
func fuzzSeed(t *testing.T, seed int64, queriesPerSeed, spillBudget int) {
	r := rand.New(rand.NewSource(seed))
	fc := genCase(r)
	s := newSession(t)
	s.User = "admin"
	s.SpillBudget = spillBudget
	for _, stmt := range fc.setup {
		if _, err := s.Exec(stmt); err != nil {
			t.Fatalf("setup %q: %v", stmt, err)
		}
	}
	rejected := 0
	for q := 0; q < queriesPerSeed; q++ {
		g := &queryGen{r: r}
		inline, prepared := g.genQuery(fc)

		s.NoOptimize = true
		naive, naiveErr := s.Exec(inline)
		s.NoOptimize = false
		planned, plannedErr := s.Exec(inline)
		// Third way: the planned pipeline with vectorization disabled, so the
		// batched scan/filter/aggregate path and the row-at-a-time path are
		// held to identical results on every query.
		s.NoVectorize = true
		rowPath, rowErr := s.Exec(inline)
		s.NoVectorize = false
		if naiveErr != nil {
			// The generator can produce statements the engine
			// rejects (e.g. ORDER BY over a set operation). The
			// property still holds: every path must reject them.
			if plannedErr == nil {
				t.Fatalf("seed %d query %d: naive rejects (%v) but planned accepts\nquery: %s\nrepro script:\n%s",
					seed, q, naiveErr, inline, reproScript(fc, inline))
			}
			if rowErr == nil {
				t.Fatalf("seed %d query %d: naive rejects (%v) but NoVectorize planned accepts\nquery: %s\nrepro script:\n%s",
					seed, q, naiveErr, inline, reproScript(fc, inline))
			}
			if stmt, err := s.Prepare(prepared); err == nil {
				if _, err := stmt.Exec(g.args...); err == nil {
					t.Fatalf("seed %d query %d: naive rejects (%v) but prepared accepts\nquery: %s\nrepro script:\n%s",
						seed, q, naiveErr, prepared, reproScript(fc, prepared))
				}
			}
			rejected++
			continue
		}
		if plannedErr != nil {
			t.Fatalf("seed %d query %d: planned %q: %v\nrepro script:\n%s",
				seed, q, inline, plannedErr, reproScript(fc, inline))
		}
		stmt, err := s.Prepare(prepared)
		if err != nil {
			t.Fatalf("seed %d query %d: prepare %q: %v", seed, q, prepared, err)
		}
		prepRes, err := stmt.Exec(g.args...)
		if err != nil {
			t.Fatalf("seed %d query %d: prepared exec %q args %v: %v", seed, q, prepared, g.args, err)
		}

		if rowErr != nil {
			t.Fatalf("seed %d query %d: NoVectorize planned %q: %v\nrepro script:\n%s",
				seed, q, inline, rowErr, reproScript(fc, inline))
		}
		want := canonResult(naive)
		if got := canonResult(planned); got != want {
			t.Fatalf("seed %d query %d: planned != naive\nquery: %s\n got: %s\nwant: %s\nrepro script:\n%s",
				seed, q, inline, got, want, reproScript(fc, inline))
		}
		if got := canonResult(rowPath); got != want {
			t.Fatalf("seed %d query %d: NoVectorize planned != naive\nquery: %s\n got: %s\nwant: %s\nrepro script:\n%s",
				seed, q, inline, got, want, reproScript(fc, inline))
		}
		if got := canonResult(prepRes); got != want {
			t.Fatalf("seed %d query %d: prepared != naive\nquery: %s\nargs: %v\n got: %s\nwant: %s\nrepro script:\n%s",
				seed, q, prepared, g.args, got, want, reproScript(fc, prepared))
		}
		// Re-execute the prepared statement to exercise the plan
		// cache (second run must hit the cached physical plan).
		prepRes2, err := stmt.Exec(g.args...)
		if err != nil {
			t.Fatalf("seed %d query %d: prepared re-exec: %v", seed, q, err)
		}
		if got := canonResult(prepRes2); got != want {
			t.Fatalf("seed %d query %d: cached plan diverges\nquery: %s\nrepro script:\n%s",
				seed, q, prepared, reproScript(fc, prepared))
		}
	}
	if rejected > queriesPerSeed/2 {
		t.Errorf("seed %d: %d/%d queries rejected; generator has drifted from the grammar",
			seed, rejected, queriesPerSeed)
	}
}

// --- join-order fuzzing -------------------------------------------------------

// genJoinCase generates a 3-5 table star/chain schema for join-order fuzzing:
// every table has an INT primary key, two join columns over small shared
// domains (occasionally NULL, so key-match semantics under both join
// strategies are exercised), and a payload column for selective filters. Row
// counts differ by an order of magnitude and some tables draw their join
// column heavily skewed, so the cost-based planner has real cardinality
// differences to exploit; indexes are created at random so plans mix indexed
// and unindexed access.
func genJoinCase(r *rand.Rand) *fuzzCase {
	fc := &fuzzCase{}
	n := 3 + r.Intn(3)
	rows := make([]int, n)
	product := 1
	for i := range rows {
		rows[i] = pick(r, []int{3, 6, 12, 25, 50})
		product *= rows[i]
	}
	// The naive reference evaluates the full cross product; cap its size so
	// the suite stays fast while the spread between small and large tables
	// (what the cost-based search exploits) is preserved.
	for product > 200_000 {
		max := 0
		for i, n := range rows {
			if n > rows[max] {
				max = i
			}
		}
		product = product / rows[max] * (rows[max] / 2)
		rows[max] /= 2
	}
	for i := 0; i < n; i++ {
		ft := &fuzzTable{
			name: fmt.Sprintf("J%d", i+1),
			cols: []fuzzColumn{{"ID", "INT"}, {"G", "INT"}, {"H", "INT"}, {"V", "INT"}},
			pk:   "ID",
			rows: rows[i],
		}
		fc.tables = append(fc.tables, ft)
		fc.setup = append(fc.setup, fmt.Sprintf(
			"CREATE TABLE %s (ID INT NOT NULL PRIMARY KEY, G INT, H INT, V INT)", ft.name))
		for _, col := range []string{"G", "H"} {
			if r.Intn(2) == 0 {
				fc.setup = append(fc.setup, fmt.Sprintf("CREATE INDEX ON %s (%s)", ft.name, col))
				ft.indexed = append(ft.indexed, col)
			}
		}
	}
	for _, ft := range fc.tables {
		skewed := r.Intn(3) == 0
		for i := 0; i < ft.rows; i++ {
			g := fmt.Sprint(r.Intn(5))
			if skewed && r.Intn(4) > 0 {
				g = "0"
			}
			h := fmt.Sprint(r.Intn(10))
			if r.Intn(10) == 0 {
				g = "NULL"
			}
			if r.Intn(10) == 0 {
				h = "NULL"
			}
			fc.setup = append(fc.setup, fmt.Sprintf(
				"INSERT INTO %s VALUES (%d, %s, %s, %d)", ft.name, i+1, g, h, r.Intn(100)))
		}
	}
	// Annotations on the first table: the decorator indexes row origins by
	// syntactic source position, so propagation through a REORDERED join
	// pipeline is exactly what must stay invisible.
	fc.tables[0].annTabs = []string{"Notes"}
	fc.setup = append(fc.setup, "CREATE ANNOTATION TABLE Notes ON J1")
	fc.setup = append(fc.setup,
		"ADD ANNOTATION TO J1.Notes VALUE 'join fuzz' ON (SELECT * FROM J1 WHERE V < 50)")
	return fc
}

// genJoinQuery builds one multi-way equi-join over a random permutation of
// the case's tables: a random spanning tree of join edges (so the join graph
// is connected but its shape varies), random selective single-table
// predicates, and an optional ORDER BY/LIMIT tail. Inline and prepared forms
// are returned like genQuery's.
func (g *queryGen) genJoinQuery(fc *fuzzCase) (string, string) {
	perm := g.r.Perm(len(fc.tables))
	var from []string
	for _, ti := range perm {
		ft := fc.tables[ti]
		if len(ft.annTabs) > 0 && g.r.Intn(3) == 0 {
			from = append(from, ft.name+" ANNOTATION(*)")
		} else {
			from = append(from, ft.name)
		}
	}
	var condsIn, condsPrep []string
	joinCols := []string{"G", "H"}
	for i := 1; i < len(perm); i++ {
		left := fc.tables[perm[g.r.Intn(i)]].name
		right := fc.tables[perm[i]].name
		cond := fmt.Sprintf("%s.%s = %s.%s", left, pick(g.r, joinCols), right, pick(g.r, joinCols))
		condsIn = append(condsIn, cond)
		condsPrep = append(condsPrep, cond)
	}
	for _, ti := range perm {
		if g.r.Intn(2) != 0 {
			continue
		}
		ft := fc.tables[ti]
		col := pick(g.r, []string{"V", "G", "ID"})
		op := pick(g.r, []string{"=", "<", "<=", ">", ">="})
		bound := g.r.Intn(100)
		if col != "V" {
			bound = g.r.Intn(10)
		}
		in, prep := g.literal(fmt.Sprint(bound), int64(bound))
		condsIn = append(condsIn, fmt.Sprintf("%s.%s %s %s", ft.name, col, op, in))
		condsPrep = append(condsPrep, fmt.Sprintf("%s.%s %s %s", ft.name, col, op, prep))
	}
	var proj []string
	for _, ti := range perm {
		if g.r.Intn(2) == 0 {
			proj = append(proj, fc.tables[ti].name+"."+pick(g.r, []string{"V", "G", "ID"}))
		}
	}
	if len(proj) == 0 {
		proj = append(proj, fc.tables[perm[0]].name+".ID")
	}
	tail := ""
	if g.r.Intn(3) == 0 {
		tail = " ORDER BY " + fc.tables[perm[g.r.Intn(len(perm))]].name + ".V"
		if g.r.Intn(2) == 0 {
			tail += " DESC"
		}
		if g.r.Intn(2) == 0 {
			tail += fmt.Sprintf(" LIMIT %d", 1+g.r.Intn(15))
		}
	}
	head := "SELECT " + strings.Join(proj, ", ") + " FROM " + strings.Join(from, ", ") + " WHERE "
	return head + strings.Join(condsIn, " AND ") + tail,
		head + strings.Join(condsPrep, " AND ") + tail
}

// TestJoinOrderEquivalenceFuzz is the join-order property suite: on every
// generated multi-way join, the cost-based plan, the order-pinned
// (NoReorder) plan, the prepared cost-based plan and the naive reference
// must return identical rows — including row ORDER and propagated
// annotations, which is what proves restoreIter makes reordering invisible.
// The plansReordered canary then asserts the search actually changed some
// execution orders; without it the suite would pass trivially if the
// planner always kept the syntactic order.
func TestJoinOrderEquivalenceFuzz(t *testing.T) {
	seeds := []int64{21, 22, 23, 24}
	queriesPerSeed := 25
	if testing.Short() {
		seeds = seeds[:2]
		queriesPerSeed = 10
	}
	before := plansReordered.Load()
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("join-seed-%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			fc := genJoinCase(r)
			s := newSession(t)
			s.User = "admin"
			for _, stmt := range fc.setup {
				if _, err := s.Exec(stmt); err != nil {
					t.Fatalf("setup %q: %v", stmt, err)
				}
			}
			for q := 0; q < queriesPerSeed; q++ {
				g := &queryGen{r: r}
				inline, prepared := g.genJoinQuery(fc)

				s.NoOptimize = true
				naive, err := s.Exec(inline)
				s.NoOptimize = false
				if err != nil {
					t.Fatalf("seed %d query %d: naive %q: %v\nrepro script:\n%s",
						seed, q, inline, err, reproScript(fc, inline))
				}
				want := canonResult(naive)

				planned, err := s.Exec(inline)
				if err != nil {
					t.Fatalf("seed %d query %d: planned %q: %v\nrepro script:\n%s",
						seed, q, inline, err, reproScript(fc, inline))
				}
				if got := canonResult(planned); got != want {
					t.Fatalf("seed %d query %d: cost-based != naive\nquery: %s\n got: %s\nwant: %s\nrepro script:\n%s",
						seed, q, inline, got, want, reproScript(fc, inline))
				}

				s.NoReorder = true
				pinned, err := s.Exec(inline)
				s.NoReorder = false
				if err != nil {
					t.Fatalf("seed %d query %d: NoReorder planned %q: %v\nrepro script:\n%s",
						seed, q, inline, err, reproScript(fc, inline))
				}
				if got := canonResult(pinned); got != want {
					t.Fatalf("seed %d query %d: NoReorder != naive\nquery: %s\n got: %s\nwant: %s\nrepro script:\n%s",
						seed, q, inline, got, want, reproScript(fc, inline))
				}

				stmt, err := s.Prepare(prepared)
				if err != nil {
					t.Fatalf("seed %d query %d: prepare %q: %v", seed, q, prepared, err)
				}
				for run := 0; run < 2; run++ { // second run hits the plan cache
					prepRes, err := stmt.Exec(g.args...)
					if err != nil {
						t.Fatalf("seed %d query %d run %d: prepared exec %q args %v: %v",
							seed, q, run, prepared, g.args, err)
					}
					if got := canonResult(prepRes); got != want {
						t.Fatalf("seed %d query %d run %d: prepared != naive\nquery: %s\nargs: %v\n got: %s\nwant: %s\nrepro script:\n%s",
							seed, q, run, prepared, g.args, got, want, reproScript(fc, prepared))
					}
				}
			}
		})
	}
	if plansReordered.Load() == before {
		t.Error("no generated join was reordered; the cost-based search is not changing any execution orders")
	}
}
