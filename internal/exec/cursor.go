package exec

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"bdbms/internal/annotation"
	"bdbms/internal/authz"
	"bdbms/internal/sqlparse"
	"bdbms/internal/storage"
	"bdbms/internal/value"
)

// This file is the cursor layer of the executor: the Go-database-idiom
// surface (Query / Prepare / Rows / Stmt) over the streaming SELECT
// pipeline. Every SELECT shape executes through the iterator pipeline:
//
//	scan/join (iterator.go) -> decorate + AWHERE -> [group/HAVING/AHAVING]
//	  -> FILTER -> project -> [DISTINCT] -> [set op] -> [sort | top-N]
//
// Fully per-row shapes (no grouping, duplicate elimination, ordering or set
// operation) stream one row per Rows.Next: the full result set is never
// materialized and the first row of an indexed point query costs a handful
// of allocations regardless of table size. Blocking operators — grouped
// aggregation (group.go), DISTINCT and set operations (setop.go), and
// ordering (sort.go) — consume their input on the first Next but hold only
// budget-bounded state: they spill to temp files (spill.go) instead of
// materializing, and ORDER BY + LIMIT runs through a Top-N heap whose
// resident cost is O(LIMIT). There is no eager fallback path.
//
// Prepared statements parse once and plan once: the physical plan is cached
// on the Stmt and revalidated against the storage engine's schema version,
// so re-executions skip both the parser and the planner and only re-bind the
// `?` parameters.

// Query runs one A-SQL statement and returns a cursor over its result. args
// bind the statement's `?` placeholders (left to right) and must match their
// count. The context is checked inside the scan and join iterators, so
// canceling it aborts a long-running query with ctx.Err(). DML honors the
// context while matching rows AND between row writes: a bare statement runs
// in an implicit transaction, so cancellation (like any mid-statement
// error) rolls its partial writes back before the error is returned.
// Transaction-control statements (BEGIN/COMMIT/ROLLBACK/SAVEPOINT) drive
// the session's transaction state — see Session.Begin — and while a
// transaction is open every statement routes through it.
//
// A streaming cursor takes no locks: it pins an MVCC snapshot of the
// committed state at Query time and reads through it, so concurrent writers
// proceed unhindered and never shear the scan. Always close the returned
// Rows (Close is idempotent, and exhausting the cursor releases the
// snapshot as well) — an open snapshot pins row versions engine-wide.
// Cursors can be held open across any other statement, including mutations
// from the same or other goroutines and nested Queries inside a Next loop;
// the cursor keeps reporting its snapshot, unaffected by what commits
// meanwhile.
func (s *Session) Query(ctx context.Context, sql string, args ...any) (*Rows, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	params, err := bindArgs(sqlparse.CountPlaceholders(stmt), args)
	if err != nil {
		return nil, err
	}
	return s.queryStmt(ctx, stmt, params, nil)
}

// Prepare parses the statement once and returns a Stmt that re-binds its `?`
// placeholders per execution. For streamable SELECTs the physical plan is
// additionally cached across executions (invalidated by DDL), so a prepared
// point query skips parsing and planning entirely.
func (s *Session) Prepare(sql string) (*Stmt, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	return &Stmt{
		sess:      s,
		text:      sql,
		stmt:      stmt,
		numParams: sqlparse.CountPlaceholders(stmt),
	}, nil
}

// Stmt is a prepared statement: parsed once, re-bound per execution. A Stmt
// is safe for concurrent use by multiple goroutines.
type Stmt struct {
	sess      *Session
	text      string
	stmt      sqlparse.Statement
	numParams int

	mu   sync.Mutex
	plan *stmtPlan
}

// stmtPlan is the cached physical plan of a prepared streamable SELECT,
// valid while the schema version is unchanged.
type stmtPlan struct {
	version  uint64
	sources  []*sourcePlan
	bindings []binding
	phys     *physicalPlan
	items    []planItem
}

// Text returns the statement's A-SQL source.
func (st *Stmt) Text() string { return st.text }

// NumParams returns the number of `?` placeholders in the statement.
func (st *Stmt) NumParams() int { return st.numParams }

// Query executes the prepared statement with the given arguments and returns
// a cursor over its result.
func (st *Stmt) Query(ctx context.Context, args ...any) (*Rows, error) {
	params, err := bindArgs(st.numParams, args)
	if err != nil {
		return nil, err
	}
	return st.sess.queryStmt(ctx, st.stmt, params, st)
}

// Exec executes the prepared statement and drains the cursor into a
// materialized Result; the convenient form for DML.
func (st *Stmt) Exec(args ...any) (*Result, error) {
	rows, err := st.Query(context.Background(), args...)
	if err != nil {
		return nil, err
	}
	return rows.materialize()
}

// cachedPlan returns the statement's physical plan, replanning when the
// schema version moved. DDL can run concurrently with this check; a plan
// cached against a version that moves immediately afterwards is still safe
// to execute — it holds direct table references (dropped tables stay
// readable through open snapshots) and index probes only ever produce
// candidate supersets that the scan re-filters — it is merely stale, and the
// next execution replans.
func (st *Stmt) cachedPlan(s *Session, sel *sqlparse.SelectStmt) (*stmtPlan, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	v := s.Eng.SchemaVersion()
	if st.plan != nil && st.plan.version == v {
		return st.plan, nil
	}
	plan, err := s.planFor(sel)
	if err != nil {
		return nil, err
	}
	st.plan = plan
	return plan, nil
}

// planFor resolves sources and builds the physical plan and projection
// layout of a SELECT.
func (s *Session) planFor(sel *sqlparse.SelectStmt) (*stmtPlan, error) {
	sources, bindings, slotSource, err := s.resolveSources(sel.From)
	if err != nil {
		return nil, err
	}
	return &stmtPlan{
		version:  s.Eng.SchemaVersion(),
		sources:  sources,
		bindings: bindings,
		phys:     s.planSelect(sel, sources, bindings, slotSource),
		items:    resolveItems(sel, bindings),
	}, nil
}

// queryStmt routes a bound statement: transaction control goes to the
// session's transaction state; statements inside an open transaction run
// under it (reading current state under the transaction's latches); bare
// SELECTs stream from an MVCC snapshot, latch-free (every shape — blocking
// operators spill rather than materialize); everything else executes inside
// an implicit auto-commit transaction under per-table write latches and is
// wrapped in a materialized cursor. A NoOptimize session routes SELECTs
// through the naive reference executor instead.
func (s *Session) queryStmt(ctx context.Context, stmt sqlparse.Statement, params value.Row, prep *Stmt) (*Rows, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if sqlparse.IsTxControl(stmt) {
		msg, err := s.execTxControl(ctx, stmt)
		if err != nil {
			return nil, err
		}
		return &Rows{message: msg, limit: -1}, nil
	}
	if tx := s.openTx(); tx != nil {
		return tx.queryStmt(ctx, stmt, params, prep)
	}
	if sel, ok := stmt.(*sqlparse.SelectStmt); ok && !s.NoOptimize {
		return s.queryStream(ctx, sel, params, prep)
	}
	res, err := s.execAutoCommit(ctx, stmt, params)
	if err != nil {
		return nil, err
	}
	return &Rows{
		cols:     res.Columns,
		rows:     res.Rows,
		affected: res.Affected,
		message:  res.Message,
		limit:    -1,
	}, nil
}

// queryStream builds the lazy pipeline of a streamable SELECT. An MVCC
// snapshot is pinned here and held until the cursor is closed or exhausted:
// the cursor reads the committed state as of this moment, concurrent
// writers notwithstanding, and holds no locks while doing so.
func (s *Session) queryStream(ctx context.Context, sel *sqlparse.SelectStmt, params value.Row, prep *Stmt) (*Rows, error) {
	snap := s.Eng.NewSnapshot()
	rows, err := s.buildStream(ctx, sel, params, prep, snap)
	if err != nil {
		snap.Close()
		return nil, err
	}
	rows.unlock = snap.Close
	return rows, nil
}

// buildStream assembles the cursor over one SELECT. snap, when non-nil, is
// the MVCC snapshot every table read goes through; transaction cursors pass
// nil and read the current state under the transaction's latches.
func (s *Session) buildStream(ctx context.Context, sel *sqlparse.SelectStmt, params value.Row, prep *Stmt, snap *storage.Snapshot) (*Rows, error) {
	// The top level's LIMIT is enforced lazily by Rows.limit (so an
	// unordered LIMIT stops pulling early); nested operands apply theirs
	// inside buildSelectIter.
	ait, cols, closers, err := s.buildSelectIter(ctx, sel, params, prep, false, snap)
	if err != nil {
		for _, c := range closers {
			c()
		}
		return nil, err
	}
	return &Rows{
		cols:    cols,
		ait:     ait,
		limit:   sel.Limit,
		closers: closers,
	}, nil
}

// limitIter caps a nested operand's output at n rows, stopping its pulls
// once the cap is reached (consistent with the cursor's lazy top-level
// LIMIT).
type limitIter struct {
	in aRowIter
	n  int
}

func (it *limitIter) Next() (ARow, bool, error) {
	if it.n <= 0 {
		return ARow{}, false, nil
	}
	row, ok, err := it.in.Next()
	if err != nil || !ok {
		return ARow{}, false, err
	}
	it.n--
	return row, true, nil
}

// buildSelectIter assembles the full lazy pipeline of one SELECT (including
// the right operand of a set operation, recursively). It returns the output
// iterator, the output column names and the cleanup hooks of any spill files
// the blocking operators may create. applyLimit is set for nested operands,
// whose LIMIT binds to their own level (a trailing LIMIT in a compound
// statement parses into the rightmost SELECT); the top level leaves it to
// the cursor.
func (s *Session) buildSelectIter(ctx context.Context, sel *sqlparse.SelectStmt, params value.Row, prep *Stmt, applyLimit bool, snap *storage.Snapshot) (aRowIter, []string, []func(), error) {
	for _, ref := range sel.From {
		if err := s.require(ref.Table, authz.PrivSelect); err != nil {
			return nil, nil, nil, err
		}
	}
	var plan *stmtPlan
	var err error
	if prep != nil {
		plan, err = prep.cachedPlan(s, sel)
	} else {
		plan, err = s.planFor(sel)
	}
	if err != nil {
		return nil, nil, nil, err
	}
	// Projection layout and order plan are resolved before the pipeline is
	// built: unknown-column errors surface from Query itself (like the
	// reference executor's), and the sort-elision check below needs the
	// resolved order keys to decide the scan order.
	proj := newProjector(s, plan.items, plan.bindings, params)
	outputOnly := sel.Distinct || sel.SetOp != sqlparse.SetNone
	var orderKeys []orderKey
	if len(sel.OrderBy) > 0 {
		orderKeys, err = buildOrderPlan(sel.OrderBy, proj.cols, plan.bindings, outputOnly)
		if err != nil {
			return nil, nil, nil, err
		}
	}

	// Sort elision: a single-source full scan ordered by one ascending
	// NOT NULL indexed column can stream the heap in index order instead of
	// sorting. Only snapshot cursors elide — the ordered RowID list is read
	// from the live index, so it is valid exactly when the snapshot still
	// sees the current heap; the IDs are captured BEFORE that check so a
	// concurrent writer between the two steps makes the check fail rather
	// than the list lie. Transaction cursors (snap == nil) keep sorting.
	var orderedIDs []int64
	sortElided := false
	if len(orderKeys) > 0 && !outputOnly && snap != nil {
		if col, ok := sortElisionColumn(sel, plan.phys, proj, orderKeys); ok {
			src := plan.phys.sources[0]
			ids, idErr := src.tbl.IndexOrderedRowIDs(col)
			if idErr == nil && snap.SeesCurrentHeap(src.tbl) {
				orderedIDs = ids
				sortElided = true
			}
		}
	}

	var closers []func()
	it, err := s.buildPipeline(ctx, plan.phys, plan.bindings, params, snap, orderedIDs)
	if err != nil {
		return nil, nil, nil, err
	}
	it = &decorateIter{
		in:     it,
		dec:    s.newDecorator(plan.sources),
		awhere: sel.AWhere,
		params: params,
	}

	// Grouped aggregation, HAVING and AHAVING — the same clause order the
	// reference executor applies.
	if len(sel.GroupBy) > 0 || hasAggregate(sel.Items) || sel.Having != nil {
		sf := &spillFile{}
		closers = append(closers, sf.Close)
		g, err := newGroupAggIter(s, it, sel, plan.bindings, sf)
		if err != nil {
			return nil, nil, closers, err
		}
		// Vectorized aggregation: when the input is the batch scan adapter and
		// nothing between scan and aggregation does per-row work (no
		// annotation decoration, no AWHERE), consume column vectors directly.
		if d, ok := it.(*decorateIter); ok && !d.dec.anyWork && d.awhere == nil {
			if b, ok := d.in.(*batchRowsIter); ok {
				g.batches = b.src
				g.annWidth = d.dec.totalCols
			}
		}
		it = g
		if sel.Having != nil {
			it = &havingIter{s: s, in: it, expr: sel.Having, bindings: plan.bindings, params: params}
		}
	}
	if sel.AHaving != nil {
		it = &annMatchIter{in: it, expr: sel.AHaving, params: params}
	}
	if sel.Filter != nil {
		it = &annFilterIter{in: it, expr: sel.Filter, params: params}
	}

	// Projection, duplicate elimination, set operation and ordering.
	sortStage := func(in keyedIter) aRowIter {
		// Top-N beats a full sort when the limit undercuts the estimated
		// input size; a LIMIT that would keep (nearly) everything sorts
		// once instead of maintaining a same-sized heap.
		if topNWins(sel.Limit, plan.phys) {
			return newTopNIter(in, orderKeys, sel.Limit)
		}
		sf := &spillFile{}
		closers = append(closers, sf.Close)
		return newSortIter(in, orderKeys, s.spillBudget(), sf)
	}

	var a aRowIter
	if sortElided {
		// The scan already streams in the requested order; project and done.
		a = &projectIter{in: it, proj: proj}
	} else if len(orderKeys) > 0 && !outputOnly {
		// Plain ordered SELECT: sort keys may reference non-projected
		// columns, extracted from the pre-projection row.
		a = sortStage(&projectKeyIter{in: it, proj: proj, keys: orderKeys})
	} else {
		a = &projectIter{in: it, proj: proj}
		if sel.Distinct {
			sf := &spillFile{}
			closers = append(closers, sf.Close)
			a = newDistinctIter(a, s.spillBudget(), sf)
		}
		if sel.SetOp != sqlparse.SetNone {
			right, _, rightClosers, err := s.buildSelectIter(ctx, sel.SetRight, params, nil, true, snap)
			closers = append(closers, rightClosers...)
			if err != nil {
				return nil, nil, closers, err
			}
			switch sel.SetOp {
			case sqlparse.SetUnion:
				sf := &spillFile{}
				closers = append(closers, sf.Close)
				a = newDistinctIter(newConcatIter(a, right), s.spillBudget(), sf)
			case sqlparse.SetIntersect:
				a = newSetOpIter(true, a, right)
			case sqlparse.SetExcept:
				a = newSetOpIter(false, a, right)
			}
		}
		if len(orderKeys) > 0 {
			a = sortStage(&outColKeyIter{in: a, keys: orderKeys})
		}
	}
	if applyLimit && sel.Limit >= 0 {
		a = &limitIter{in: a, n: sel.Limit}
	}
	return a, proj.cols, closers, nil
}

// decorateIter attaches annotations and outdated marks to each surviving
// row, then applies AWHERE: a row survives only when one of its annotations
// satisfies the condition. (FILTER runs later, above grouping, so AHAVING
// observes unfiltered annotation sets — the reference clause order.)
type decorateIter struct {
	in     rowIter
	dec    *decorator
	awhere sqlparse.Expr
	params value.Row
}

func (it *decorateIter) Next() (execRow, bool, error) {
	for {
		r, ok, err := it.in.Next()
		if err != nil || !ok {
			return execRow{}, false, err
		}
		it.dec.decorate(&r)
		if it.awhere != nil {
			match, err := annRowMatches(it.awhere, &r, it.params)
			if err != nil {
				return execRow{}, false, err
			}
			if !match {
				continue
			}
		}
		return r, true, nil
	}
}

// --- argument binding ----------------------------------------------------------------------

// bindArgs converts the Go argument list into a parameter row, type-checking
// the count against the statement's placeholders.
func bindArgs(numParams int, args []any) (value.Row, error) {
	if len(args) != numParams {
		return nil, fmt.Errorf("%w: statement has %d placeholder(s), got %d argument(s)",
			ErrBadArgs, numParams, len(args))
	}
	if numParams == 0 {
		return nil, nil
	}
	params := make(value.Row, numParams)
	for i, a := range args {
		v, err := argValue(a)
		if err != nil {
			return nil, fmt.Errorf("%w: argument %d: %v", ErrBadArgs, i+1, err)
		}
		params[i] = v
	}
	return params, nil
}

// argValue converts one Go argument to a typed value.
func argValue(a any) (value.Value, error) {
	switch v := a.(type) {
	case nil:
		return value.NewNull(), nil
	case value.Value:
		return v, nil
	case string:
		return value.NewText(v), nil
	case []byte:
		return value.NewText(string(v)), nil
	case bool:
		return value.NewBool(v), nil
	case int:
		return value.NewInt(int64(v)), nil
	case int8:
		return value.NewInt(int64(v)), nil
	case int16:
		return value.NewInt(int64(v)), nil
	case int32:
		return value.NewInt(int64(v)), nil
	case int64:
		return value.NewInt(v), nil
	case uint:
		if uint64(v) > math.MaxInt64 {
			return value.Value{}, fmt.Errorf("uint value %d overflows INT", v)
		}
		return value.NewInt(int64(v)), nil
	case uint8:
		return value.NewInt(int64(v)), nil
	case uint16:
		return value.NewInt(int64(v)), nil
	case uint32:
		return value.NewInt(int64(v)), nil
	case uint64:
		if v > math.MaxInt64 {
			return value.Value{}, fmt.Errorf("uint64 value %d overflows INT", v)
		}
		return value.NewInt(int64(v)), nil
	case float32:
		return value.NewFloat(float64(v)), nil
	case float64:
		return value.NewFloat(v), nil
	case time.Time:
		return value.NewTimestamp(v), nil
	default:
		return value.Value{}, fmt.Errorf("unsupported argument type %T", a)
	}
}

// --- Rows ----------------------------------------------------------------------------------

// Rows is a cursor over a statement's result, modeled on database/sql: call
// Next until it returns false, read the current row with Scan / Row /
// Annotations, then check Err and Close. A streaming Rows (every SELECT)
// pins an MVCC snapshot until closed or exhausted; a materialized
// Rows (DML/DDL results) holds nothing. Blocking operators inside the
// pipeline (grouping, DISTINCT, set operations, ordering) consume their
// input on the first Next; their spill files are released when the cursor
// finishes.
type Rows struct {
	cols []string

	// Streaming state (ait != nil): the assembled SELECT pipeline, already
	// projected.
	ait aRowIter
	// closers release the spill files of blocking operators; run once by
	// finish (end of stream, error, or Close).
	closers []func()

	// Materialized state (ait == nil).
	rows []ARow
	pos  int

	limit    int // rows still to emit; -1 = unlimited
	cur      ARow
	valid    bool
	ended    bool // iteration finished (exhausted, errored or closed)
	err      error
	closed   bool
	affected int
	message  string
	unlock   func()

	// Transaction-end invalidation: killErr is written before killed is
	// set, so a Next observing killed also observes the error. Only these
	// two fields may be touched from another goroutine (the transaction's
	// context watcher); everything else is single-goroutine.
	killErr error
	killed  atomic.Bool
	// txmu, set on cursors opened inside a transaction, is the owning
	// transaction's mutex: Next holds it for the duration of each pull so
	// the context watcher's auto-rollback cannot rewrite heap pages and
	// B-trees underneath an in-flight iteration — the rollback waits for
	// the current Next, which then observes killed and stops.
	txmu *sync.Mutex
}

// invalidate kills a cursor whose transaction ended: the next Next returns
// false and Err reports err. A cursor that already finished iterating keeps
// its original outcome.
func (r *Rows) invalidate(err error) {
	if r.killed.Load() {
		return
	}
	r.killErr = err
	r.killed.Store(true)
}

// Columns returns the output column names (empty for DML/DDL results).
func (r *Rows) Columns() []string { return r.cols }

// Affected returns the number of rows affected when the statement was DML.
func (r *Rows) Affected() int { return r.affected }

// Message returns the DDL/utility summary message, if any.
func (r *Rows) Message() string { return r.message }

// Next advances to the next row. It returns false at end of stream, on
// error (check Err), after Close, and once a LIMIT is exhausted.
func (r *Rows) Next() bool {
	if r.txmu != nil {
		r.txmu.Lock()
		defer r.txmu.Unlock()
	}
	if r.killed.Load() && !r.ended {
		r.err = r.killErr
		r.finish()
		r.closed = true
		return false
	}
	if r.closed || r.err != nil {
		r.valid = false
		return false
	}
	if r.limit == 0 {
		r.finish()
		return false
	}
	if r.ait != nil {
		row, ok, err := r.ait.Next()
		if err != nil {
			r.err = err
			r.finish()
			return false
		}
		if !ok {
			r.finish()
			return false
		}
		r.cur = row
	} else {
		if r.pos >= len(r.rows) {
			r.finish()
			return false
		}
		r.cur = r.rows[r.pos]
		r.pos++
	}
	if r.limit > 0 {
		r.limit--
	}
	r.valid = true
	return true
}

// Row returns the current row (valid after a true Next).
func (r *Rows) Row() ARow { return r.cur }

// Annotations returns the per-column annotations of the current row.
func (r *Rows) Annotations() [][]*annotation.Annotation { return r.cur.Anns }

// Err returns the error that terminated iteration, if any.
func (r *Rows) Err() error { return r.err }

// Close releases the cursor (and the MVCC snapshot a streaming cursor
// pins). It is idempotent and safe to call at any point.
func (r *Rows) Close() error {
	r.finish()
	r.closed = true
	r.valid = false
	return nil
}

// finish releases resources once; the cursor may still serve Err/Columns.
func (r *Rows) finish() {
	r.valid = false
	r.ended = true
	for _, c := range r.closers {
		c()
	}
	r.closers = nil
	if r.unlock != nil {
		r.unlock()
		r.unlock = nil
	}
}

// Scan copies the current row's values into dest, which must contain one
// pointer per output column. Supported targets: *string, *int, *int64,
// *float64, *bool, *time.Time, *value.Value and *any.
func (r *Rows) Scan(dest ...any) error {
	if !r.valid {
		return fmt.Errorf("exec: Scan called without a successful Next")
	}
	if len(dest) != len(r.cur.Values) {
		return fmt.Errorf("exec: Scan expects %d destination(s), got %d", len(r.cur.Values), len(dest))
	}
	for i, d := range dest {
		if err := scanValue(r.cur.Values[i], d); err != nil {
			return fmt.Errorf("exec: Scan column %d (%s): %w", i, r.colName(i), err)
		}
	}
	return nil
}

func (r *Rows) colName(i int) string {
	if i < len(r.cols) {
		return r.cols[i]
	}
	return "?"
}

func scanValue(v value.Value, dest any) error {
	switch d := dest.(type) {
	case *value.Value:
		*d = v
		return nil
	case *any:
		*d = nativeValue(v)
		return nil
	case *string:
		if v.IsNull() {
			*d = ""
			return nil
		}
		*d = v.String()
		return nil
	case *int64:
		switch v.Type() {
		case value.Int:
			*d = v.Int()
		case value.Float:
			*d = int64(v.Float())
		case value.Null:
			*d = 0
		default:
			return fmt.Errorf("cannot scan %s into *int64", v.Type())
		}
		return nil
	case *int:
		var x int64
		if err := scanValue(v, &x); err != nil {
			return fmt.Errorf("cannot scan %s into *int", v.Type())
		}
		*d = int(x)
		return nil
	case *float64:
		switch v.Type() {
		case value.Int, value.Float:
			*d = v.Float()
		case value.Null:
			*d = 0
		default:
			return fmt.Errorf("cannot scan %s into *float64", v.Type())
		}
		return nil
	case *bool:
		if v.Type() != value.Bool {
			return fmt.Errorf("cannot scan %s into *bool", v.Type())
		}
		*d = v.Bool()
		return nil
	case *time.Time:
		if v.Type() != value.Timestamp {
			return fmt.Errorf("cannot scan %s into *time.Time", v.Type())
		}
		*d = v.Time()
		return nil
	default:
		return fmt.Errorf("unsupported Scan destination %T", dest)
	}
}

// nativeValue unboxes a typed value into its natural Go representation.
func nativeValue(v value.Value) any {
	switch v.Type() {
	case value.Null:
		return nil
	case value.Int:
		return v.Int()
	case value.Float:
		return v.Float()
	case value.Bool:
		return v.Bool()
	case value.Timestamp:
		return v.Time()
	default:
		return v.String()
	}
}

// materialize drains the cursor into a Result; the compatibility shim behind
// Session.Exec and Stmt.Exec.
func (r *Rows) materialize() (*Result, error) {
	res := &Result{Columns: r.cols}
	if r.ait == nil && r.pos == 0 {
		res.Rows = r.rows
	} else {
		for r.Next() {
			res.Rows = append(res.Rows, r.cur)
		}
	}
	r.Close()
	if r.err != nil {
		return nil, r.err
	}
	res.Affected = r.affected
	res.Message = r.message
	return res, nil
}

// annRowMatches reports whether any annotation attached to the row satisfies
// the AWHERE / AHAVING condition.
func annRowMatches(e sqlparse.Expr, r *execRow, params value.Row) (bool, error) {
	for _, cell := range r.anns {
		for _, a := range cell {
			ok, err := evalAnnBool(e, a, params)
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
		}
	}
	return false, nil
}

// filterRowAnns drops the row's annotations that fail the FILTER condition.
func filterRowAnns(e sqlparse.Expr, r *execRow, params value.Row) error {
	for c, cell := range r.anns {
		var kept []*annotation.Annotation
		for _, a := range cell {
			ok, err := evalAnnBool(e, a, params)
			if err != nil {
				return err
			}
			if ok {
				kept = append(kept, a)
			}
		}
		r.anns[c] = kept
	}
	return nil
}
