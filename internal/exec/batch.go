package exec

// Vectorized (batch-at-a-time) execution for the scan -> filter -> hash-agg
// prefix of the pipeline, MonetDB/X100 style. Rows travel in column-major
// batches of storage.ColChunkRows, read straight out of the table's columnar
// mirror (internal/storage/columnar.go): no per-row heap fetch, no per-row
// value.Row decode, and constant comparisons run as typed kernels
// (kernels.go) that narrow a selection vector instead of pulling rows one
// interface call at a time.
//
// Everything downstream keeps its row-at-a-time contract: batchRowsIter
// adapts batches back to execRow (values + origins, exactly what scanIter
// emits), so joins, sorts, set ops, spill and annotation decoration are
// untouched. Grouped aggregation additionally consumes batches directly when
// no decoration work intervenes (group.go).
//
// The planner falls back to the row scan transparently whenever batching
// does not apply — see tryBatchScan for the exact rules.

import (
	"context"
	"strconv"
	"sync/atomic"

	"bdbms/internal/storage"
	"bdbms/internal/value"
)

// batchScans counts scans that actually ran vectorized; the equivalence
// fuzzer asserts it moved, so the batched path cannot silently stop being
// exercised.
var batchScans atomic.Int64

// bvec is the executor's view of one chunk column: the storage vector with
// dictionary codes and validity expanded into flat byte vectors.
type bvec struct {
	kind  storage.ColKind
	typ   value.Type
	ints  []int64
	flts  []float64
	strs  []string
	dict  []string
	codes []byte
	valid []byte // nil = every row valid; else 1 = valid
	vals  []value.Value
}

// null reports whether row i holds SQL NULL.
func (v *bvec) null(i int32) bool { return v.valid != nil && v.valid[i] == 0 }

// str returns the text payload of row i (dictionary-decoded when needed).
// Only meaningful for ColText vectors with a valid row.
func (v *bvec) str(i int32) string {
	if v.dict != nil {
		return v.dict[v.codes[i]]
	}
	return v.strs[i]
}

// valueAt boxes row i as the exact value.Value the row-at-a-time scan would
// have produced.
func (v *bvec) valueAt(i int32) value.Value {
	if v.null(i) {
		return value.Value{}
	}
	switch v.kind {
	case storage.ColInt:
		return value.NewInt(v.ints[i])
	case storage.ColFloat:
		return value.NewFloat(v.flts[i])
	case storage.ColText:
		if v.typ == value.Sequence {
			return value.NewSequence(v.str(i))
		}
		return value.NewText(v.str(i))
	default:
		return v.vals[i]
	}
}

// appendKeyString appends the Value.String() rendering of row i — the group
// key fragment — without boxing for the common kinds.
func (v *bvec) appendKeyString(dst []byte, i int32) []byte {
	if v.null(i) {
		return append(dst, "NULL"...)
	}
	switch v.kind {
	case storage.ColInt:
		return strconv.AppendInt(dst, v.ints[i], 10)
	case storage.ColFloat:
		return strconv.AppendFloat(dst, v.flts[i], 'g', -1, 64)
	case storage.ColText:
		return append(dst, v.str(i)...)
	default:
		return append(dst, v.vals[i].String()...)
	}
}

// batch is one chunk plus the selection vector the filter kernels narrowed.
type batch struct {
	rowIDs []int64
	vecs   []bvec
	sel    []int32 // surviving row indexes, ascending
}

// rowValues materializes row i as a fresh value.Row (downstream operators
// retain row references, so the slice cannot be reused).
func (b *batch) rowValues(i int32) value.Row {
	vals := make(value.Row, len(b.vecs))
	for c := range b.vecs {
		vals[c] = b.vecs[c].valueAt(i)
	}
	return vals
}

// batchScanIter streams a table's columnar mirror chunk by chunk, applying
// kernel predicates to the selection vector and the remaining pushed
// predicates row-wise against a scratch row.
type batchScanIter struct {
	ctx      context.Context
	src      *sourcePlan
	cd       *storage.ColData
	kernels  []kernelPred
	rowPreds []compiledPred
	params   value.Row
	never    bool // a NULL comparison constant: nothing can match

	ci int // next chunk

	// reused scratch
	b        batch
	sel      []int32
	selAlt   []int32
	codesBuf [][]byte
	validBuf [][]byte
	scratch  value.Row
}

// nextBatch returns the next non-empty batch of surviving rows.
func (it *batchScanIter) nextBatch() (*batch, bool, error) {
	for it.ci < len(it.cd.Chunks) {
		if err := it.ctx.Err(); err != nil {
			return nil, false, err
		}
		chunk := it.cd.Chunks[it.ci]
		it.ci++
		if it.never {
			continue
		}
		it.loadChunk(chunk)
		sel := it.fullSelection(chunk.Rows())
		for k := range it.kernels {
			sel = applyKernel(&it.b.vecs[it.kernels[k].slot], &it.kernels[k], sel, it.otherSel(sel))
			if len(sel) == 0 {
				break
			}
		}
		if len(sel) > 0 && len(it.rowPreds) > 0 {
			var err error
			sel, err = it.applyRowPreds(sel)
			if err != nil {
				return nil, false, err
			}
		}
		if len(sel) == 0 {
			continue
		}
		it.b.sel = sel
		return &it.b, true, nil
	}
	return nil, false, nil
}

// loadChunk points the batch's vectors at the chunk, expanding compressed
// dictionary codes and validity into per-column scratch buffers.
func (it *batchScanIter) loadChunk(chunk *storage.ColChunk) {
	if it.b.vecs == nil {
		it.b.vecs = make([]bvec, len(chunk.Cols))
		it.codesBuf = make([][]byte, len(chunk.Cols))
		it.validBuf = make([][]byte, len(chunk.Cols))
	}
	it.b.rowIDs = chunk.RowIDs
	for c := range chunk.Cols {
		col := &chunk.Cols[c]
		v := &it.b.vecs[c]
		*v = bvec{
			kind: col.Kind,
			typ:  col.Type,
			ints: col.Ints,
			flts: col.Floats,
			strs: col.Strs,
			dict: col.Dict,
			vals: col.Vals,
		}
		if col.Dict != nil {
			it.codesBuf[c] = col.DecodeCodes(it.codesBuf[c])
			v.codes = it.codesBuf[c]
		}
		if col.Valid != nil || col.ValidRLE != nil {
			it.validBuf[c] = col.DecodeValid(it.validBuf[c])
			v.valid = it.validBuf[c]
		}
	}
}

func (it *batchScanIter) fullSelection(n int) []int32 {
	if cap(it.sel) < n {
		it.sel = make([]int32, n)
	}
	it.sel = it.sel[:n]
	for i := range it.sel {
		it.sel[i] = int32(i)
	}
	return it.sel
}

// otherSel returns the spare selection buffer so a kernel can write its
// output without clobbering its input.
func (it *batchScanIter) otherSel(cur []int32) []int32 {
	n := cap(cur)
	if &cur[:1][0] == &it.sel[:1][0] {
		if cap(it.selAlt) < n {
			it.selAlt = make([]int32, 0, n)
		}
		return it.selAlt[:0]
	}
	if cap(it.sel) < n {
		it.sel = make([]int32, 0, n)
	}
	return it.sel[:0]
}

// applyRowPreds evaluates the non-kernelable pushed predicates exactly like
// the row scan: full-row materialization into a reused scratch row, then
// compiledPred.eval at the source offset.
func (it *batchScanIter) applyRowPreds(sel []int32) ([]int32, error) {
	if it.scratch == nil {
		it.scratch = make(value.Row, len(it.b.vecs))
	}
	out := sel[:0]
	for _, i := range sel {
		for c := range it.b.vecs {
			it.scratch[c] = it.b.vecs[c].valueAt(i)
		}
		ok, err := evalPreds(it.rowPreds, it.scratch, it.src.offset, it.params)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, i)
		}
	}
	return out, nil
}

// tryBatchScan decides whether the plan's single source can run vectorized
// and builds the batch scan when it can. The fallback rules, checked here in
// order:
//
//   - the session has not disabled vectorization (NoVectorize);
//   - the query runs under an MVCC snapshot (cursors inside explicit
//     transactions read the live heap and stay on the row path);
//   - the source is a full scan (index probes produce row subsets);
//   - the table has a columnar mirror (small enough, no build error);
//   - the snapshot sees the current heap for the table AND the mirror is
//     still current — the two-sided handshake described in
//     internal/storage/columnar.go.
//
// Pushed predicates never block batching: constant comparisons on
// INT/FLOAT/TEXT/SEQUENCE columns become typed kernels, everything else
// evaluates row-wise per batch with identical semantics.
func (s *Session) tryBatchScan(ctx context.Context, src *sourcePlan, params value.Row, snap *storage.Snapshot) *batchScanIter {
	if s.NoVectorize || snap == nil || src.access.kind != accessFullScan {
		return nil
	}
	cd := src.tbl.ColumnarData()
	if cd == nil || !snap.SeesCurrentHeap(src.tbl) || cd.WriteSeq != src.tbl.WriteSeq() {
		return nil
	}
	batchScans.Add(1)
	it := &batchScanIter{ctx: ctx, src: src, cd: cd, params: params}
	schema := src.tbl.Schema()
	for _, p := range src.preds {
		k, kind := compileKernel(s, p, src, schema, params)
		switch kind {
		case kernelYes:
			it.kernels = append(it.kernels, k)
		case kernelNever:
			it.never = true
		default:
			it.rowPreds = append(it.rowPreds, p)
		}
	}
	return it
}

// batchRowsIter adapts batches back to the row-at-a-time contract: it emits
// exactly what scanIter would — the decoded row values plus a (table, RowID)
// origin — so every downstream operator works unchanged.
type batchRowsIter struct {
	src *batchScanIter
	b   *batch
	pos int
}

func (a *batchRowsIter) Next() (execRow, bool, error) {
	// Surface cancellation per emitted row, like scanIter: a buffered batch
	// must not keep a canceled cursor streaming for up to 1024 more rows.
	if err := a.src.ctx.Err(); err != nil {
		return execRow{}, false, err
	}
	for {
		if a.b == nil || a.pos >= len(a.b.sel) {
			b, ok, err := a.src.nextBatch()
			if err != nil || !ok {
				return execRow{}, false, err
			}
			a.b, a.pos = b, 0
		}
		i := a.b.sel[a.pos]
		a.pos++
		return execRow{
			values:  a.b.rowValues(i),
			origins: []origin{{table: a.src.src.tbl.Name(), rowID: a.b.rowIDs[i]}},
		}, true, nil
	}
}
