package exec

import (
	"context"
	"errors"
	"math"
	"testing"
)

func TestUintOverflowArg(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `CREATE TABLE T (A INT)`)
	if _, err := s.Query(context.Background(), `SELECT A FROM T WHERE A = ?`, uint64(math.MaxInt64)+1); !errors.Is(err, ErrBadArgs) {
		t.Errorf("uint64 overflow: %v", err)
	}
	if _, err := s.Query(context.Background(), `SELECT A FROM T WHERE A = ?`, uint64(7)); err != nil {
		t.Errorf("small uint64: %v", err)
	}
}
