package exec

// Tests for multi-statement transactions: commit/rollback semantics,
// savepoints, statement-level atomicity inside a transaction, the
// auto-commit rollback of failed or canceled bare statements (the PR 2
// known gap), transaction misuse, and lock release of abandoned
// transactions.

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"bdbms/internal/dependency"
	"bdbms/internal/storage"
)

// newLockedSession builds a session the way core wires real databases.
// (Historically this attached the engine-wide statement lock; concurrency
// control now lives in the engine — MVCC snapshots plus per-table latches —
// so there is nothing extra to wire, but the name stays on the many tests
// that exercise transactional behavior through it.)
func newLockedSession(t *testing.T) *Session {
	t.Helper()
	return newSession(t)
}

// sameEngineSession returns a second session over the same engine.
func sameEngineSession(s *Session, user string) *Session {
	return &Session{
		Eng: s.Eng, Ann: s.Ann, Prov: s.Prov, Dep: s.Dep, Auth: s.Auth,
		User: user,
	}
}

func setupAccounts(t *testing.T, s *Session) {
	t.Helper()
	mustExec(t, s, `CREATE TABLE Acct (ID INT NOT NULL PRIMARY KEY, Bal INT)`)
	mustExec(t, s, `INSERT INTO Acct VALUES (1, 100), (2, 100), (3, 100)`)
}

func balances(t *testing.T, s *Session) string {
	t.Helper()
	res := mustExec(t, s, `SELECT ID, Bal FROM Acct ORDER BY ID`)
	var parts []string
	for _, row := range res.Rows {
		parts = append(parts, fmt.Sprintf("%s=%s", row.Values[0], row.Values[1]))
	}
	return strings.Join(parts, ",")
}

func TestTxCommitMakesWritesVisible(t *testing.T) {
	s := newLockedSession(t)
	setupAccounts(t, s)

	tx, err := s.Begin(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(`UPDATE Acct SET Bal = Bal - 30 WHERE ID = 1`); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(`UPDATE Acct SET Bal = Bal + 30 WHERE ID = 2`); err != nil {
		t.Fatal(err)
	}
	// The transaction reads its own writes.
	res, err := tx.Exec(`SELECT Bal FROM Acct WHERE ID = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0].Values[0].Int(); got != 70 {
		t.Fatalf("tx sees Bal=%d, want its own write 70", got)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if got, want := balances(t, s), "1=70,2=130,3=100"; got != want {
		t.Fatalf("after commit: %s, want %s", got, want)
	}
}

func TestTxRollbackRevertsEverything(t *testing.T) {
	s := newLockedSession(t)
	setupAccounts(t, s)
	mustExec(t, s, `CREATE ANNOTATION TABLE Notes ON Acct`)
	before := balances(t, s)

	tx, err := s.Begin(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	stmts := []string{
		`INSERT INTO Acct VALUES (4, 400)`,
		`UPDATE Acct SET Bal = 0 WHERE ID = 2`,
		`DELETE FROM Acct WHERE ID = 3`,
		`ADD ANNOTATION TO Acct.Notes VALUE 'doomed' ON (SELECT * FROM Acct WHERE ID = 1)`,
		`CREATE TABLE Temp (X INT)`,
		`INSERT INTO Temp VALUES (1)`,
		`CREATE INDEX ON Acct (Bal)`,
	}
	for _, stmt := range stmts {
		if _, err := tx.Exec(stmt); err != nil {
			t.Fatalf("%s: %v", stmt, err)
		}
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if got := balances(t, s); got != before {
		t.Fatalf("after rollback: %s, want %s", got, before)
	}
	if s.Eng.HasTable("Temp") {
		t.Error("rolled-back CREATE TABLE survived")
	}
	tbl, err := s.Eng.Table("Acct")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.HasIndex("Bal") {
		t.Error("rolled-back CREATE INDEX survived")
	}
	if n := s.Ann.Count("Acct"); n != 0 {
		t.Errorf("rolled-back annotation survived (%d)", n)
	}
}

func TestTxSavepointRollbackKeepsEarlierWork(t *testing.T) {
	s := newLockedSession(t)
	setupAccounts(t, s)

	tx, err := s.Begin(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	mustTxExec := func(sql string) {
		t.Helper()
		if _, err := tx.Exec(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	mustTxExec(`UPDATE Acct SET Bal = 50 WHERE ID = 1`)
	mustTxExec(`SAVEPOINT sp1`)
	mustTxExec(`UPDATE Acct SET Bal = 999 WHERE ID = 2`)
	mustTxExec(`SAVEPOINT sp2`)
	mustTxExec(`DELETE FROM Acct WHERE ID = 3`)
	mustTxExec(`ROLLBACK TO SAVEPOINT sp1`)
	// sp2 was released by the rollback past it.
	if _, err := tx.Exec(`ROLLBACK TO SAVEPOINT sp2`); !errors.Is(err, ErrNoSavepoint) {
		t.Fatalf("rollback to released savepoint = %v, want ErrNoSavepoint", err)
	}
	// sp1 survives and can be rolled back to again.
	mustTxExec(`UPDATE Acct SET Bal = 777 WHERE ID = 2`)
	mustTxExec(`ROLLBACK TO SAVEPOINT sp1`)
	mustTxExec(`UPDATE Acct SET Bal = 60 WHERE ID = 3`)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if got, want := balances(t, s), "1=50,2=100,3=60"; got != want {
		t.Fatalf("after savepoint dance: %s, want %s", got, want)
	}
}

func TestTxFailedStatementRollsBackStatementOnly(t *testing.T) {
	s := newLockedSession(t)
	setupAccounts(t, s)

	tx, err := s.Begin(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(`UPDATE Acct SET Bal = 42 WHERE ID = 1`); err != nil {
		t.Fatal(err)
	}
	// The second row of the multi-row INSERT violates the primary key: the
	// whole statement must roll back (row 9 included), the transaction must
	// survive.
	if _, err := tx.Exec(`INSERT INTO Acct VALUES (9, 900), (1, 0)`); !errors.Is(err, storage.ErrDuplicateKey) {
		t.Fatalf("dup-pk insert = %v, want ErrDuplicateKey", err)
	}
	if _, err := tx.Exec(`UPDATE Acct SET Bal = 43 WHERE ID = 2`); err != nil {
		t.Fatalf("transaction did not survive failed statement: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if got, want := balances(t, s), "1=42,2=43,3=100"; got != want {
		t.Fatalf("after commit: %s, want %s", got, want)
	}
}

func TestAutoCommitStatementRollsBackOnError(t *testing.T) {
	// The PR 2 known gap, reproduced: a multi-row INSERT failing on a later
	// row used to leave the earlier rows applied ("writes run to
	// completion"). Now the implicit transaction rolls the statement back.
	s := newLockedSession(t)
	setupAccounts(t, s)
	before := balances(t, s)

	if _, err := s.Exec(`INSERT INTO Acct VALUES (10, 1), (11, 2), (1, 0)`); !errors.Is(err, storage.ErrDuplicateKey) {
		t.Fatalf("dup-pk insert = %v, want ErrDuplicateKey", err)
	}
	if got := balances(t, s); got != before {
		t.Fatalf("half-applied INSERT survived: %s, want %s", got, before)
	}
	// Same for UPDATE: the first matching row rewrites cleanly (ID 1 -> -1),
	// the second divides by zero, yielding NULL for the NOT NULL primary
	// key — the statement errors after a row was already written.
	if _, err := s.Exec(`UPDATE Acct SET ID = ID / (ID - 2) WHERE ID < 3`); err == nil {
		t.Fatal("NOT NULL violating UPDATE succeeded, want error")
	}
	if got := balances(t, s); got != before {
		t.Fatalf("half-applied UPDATE survived: %s, want %s", got, before)
	}
}

// countdownCtx is a context whose Err() starts reporting Canceled after a
// fixed number of polls — a deterministic stand-in for "the caller cancels
// while the statement is writing".
type countdownCtx struct {
	context.Context
	polls atomic.Int64
	after int64
}

func (c *countdownCtx) Err() error {
	if c.polls.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

func TestAutoCommitStatementRollsBackOnCancel(t *testing.T) {
	s := newLockedSession(t)
	mustExec(t, s, `CREATE TABLE Big (N INT NOT NULL PRIMARY KEY, T TEXT)`)
	var values []string
	for i := 0; i < 100; i++ {
		values = append(values, fmt.Sprintf("(%d, 'row%d')", i, i))
	}
	mustExec(t, s, `INSERT INTO Big VALUES `+strings.Join(values, ", "))

	// Cancel mid-write: the UPDATE's write loop polls the context per row.
	ctx := &countdownCtx{Context: context.Background(), after: 25}
	rows, err := s.Query(ctx, `UPDATE Big SET T = 'changed' WHERE N >= 0`)
	if rows != nil {
		rows.Close()
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled UPDATE = %v, want context.Canceled", err)
	}
	res := mustExec(t, s, `SELECT N FROM Big WHERE T = 'changed'`)
	if got := len(res.Rows); got != 0 {
		t.Fatalf("%d rows kept the canceled UPDATE's write, want 0 (rolled back)", got)
	}
	res = mustExec(t, s, `SELECT COUNT(*) FROM Big`)
	if got := res.Rows[0].Values[0].Int(); got != 100 {
		t.Fatalf("table holds %d rows after rollback, want 100", got)
	}
}

func TestAutoCommitSurvivesTransientCommitFailure(t *testing.T) {
	// Regression: when the commit marker of an auto-commit statement fails
	// to append, the frame must be closed as aborted — a transient WAL
	// failure must not wedge every later statement on "frame already open".
	s := newLockedSession(t)
	mustExec(t, s, `CREATE TABLE T (N INT NOT NULL PRIMARY KEY)`)
	log := s.Eng.WAL()
	// Allow exactly TxBegin + the row record; the TxCommit append fails.
	log.FailAfter(2)
	if _, err := s.Exec(`INSERT INTO T VALUES (1)`); err == nil {
		t.Fatal("INSERT with failing commit marker succeeded")
	}
	log.FailAfter(-1) // the "disk" recovers
	if _, err := s.Exec(`INSERT INTO T VALUES (2)`); err != nil {
		t.Fatalf("statement after transient commit failure: %v", err)
	}
	res := mustExec(t, s, `SELECT N FROM T`)
	if len(res.Rows) != 1 || res.Rows[0].Values[0].Int() != 2 {
		t.Fatalf("table holds %v, want only the second insert", res.Rows)
	}
}

func TestTxMisuse(t *testing.T) {
	s := newLockedSession(t)
	setupAccounts(t, s)

	tx, err := s.Begin(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Nested Begin on the same session.
	if _, err := s.Begin(context.Background()); !errors.Is(err, ErrTxOpen) {
		t.Fatalf("nested Begin = %v, want ErrTxOpen", err)
	}
	if _, err := s.Exec(`BEGIN`); !errors.Is(err, ErrTxOpen) {
		t.Fatalf("nested BEGIN statement = %v, want ErrTxOpen", err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	// Commit after Rollback.
	if err := tx.Commit(); !errors.Is(err, ErrTxDone) {
		t.Fatalf("Commit after Rollback = %v, want ErrTxDone", err)
	}
	if err := tx.Rollback(); !errors.Is(err, ErrTxDone) {
		t.Fatalf("double Rollback = %v, want ErrTxDone", err)
	}
	if _, err := tx.Exec(`SELECT * FROM Acct`); !errors.Is(err, ErrTxDone) {
		t.Fatalf("Exec on ended tx = %v, want ErrTxDone", err)
	}
	// Transaction control without a transaction.
	if _, err := s.Exec(`COMMIT`); !errors.Is(err, ErrNoTx) {
		t.Fatalf("bare COMMIT = %v, want ErrNoTx", err)
	}
	if _, err := s.Exec(`ROLLBACK`); !errors.Is(err, ErrNoTx) {
		t.Fatalf("bare ROLLBACK = %v, want ErrNoTx", err)
	}
	if _, err := s.Exec(`SAVEPOINT sp`); !errors.Is(err, ErrNoTx) {
		t.Fatalf("bare SAVEPOINT = %v, want ErrNoTx", err)
	}
	// Savepoint errors inside a live transaction.
	tx2, err := s.Begin(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer tx2.Rollback()
	if _, err := tx2.Exec(`ROLLBACK TO SAVEPOINT nope`); !errors.Is(err, ErrNoSavepoint) {
		t.Fatalf("rollback to unknown savepoint = %v, want ErrNoSavepoint", err)
	}
}

func TestTxCursorInvalidatedWhenTxEnds(t *testing.T) {
	s := newLockedSession(t)
	setupAccounts(t, s)

	tx, err := s.Begin(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rows, err := tx.Query(context.Background(), `SELECT ID, Bal FROM Acct`)
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatalf("first Next failed: %v", rows.Err())
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// The cursor outlived its transaction: it must die, not read unlocked.
	if rows.Next() {
		t.Fatal("Next succeeded on a cursor whose transaction ended")
	}
	if !errors.Is(rows.Err(), ErrTxDone) {
		t.Fatalf("cursor Err = %v, want ErrTxDone", rows.Err())
	}
}

func TestAbandonedTxReleasesLockOnCancel(t *testing.T) {
	s := newLockedSession(t)
	setupAccounts(t, s)

	ctx, cancel := context.WithCancel(context.Background())
	tx, err := s.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(`UPDATE Acct SET Bal = 0 WHERE ID = 1`); err != nil {
		t.Fatal(err)
	}
	// Abandon the transaction (no Commit/Rollback) and cancel its context:
	// the watcher must roll it back and release every latch it holds, or a
	// later writer on the table blocks forever. (Snapshot readers would not
	// even notice — they never see the uncommitted write — so the probe
	// below is a writer.) Wait for the watcher before asserting.
	cancel()
	deadline := time.Now().Add(5 * time.Second)
	for s.InTx() {
		if time.Now().After(deadline) {
			t.Fatal("abandoned transaction was not auto-rolled back after 5s")
		}
		time.Sleep(time.Millisecond)
	}

	other := sameEngineSession(s, "bob")
	done := make(chan string, 1)
	go func() {
		if _, err := other.Exec(`UPDATE Acct SET Bal = Bal + 0 WHERE ID = 1`); err != nil {
			done <- err.Error()
			return
		}
		res, err := other.Exec(`SELECT Bal FROM Acct WHERE ID = 1`)
		if err != nil {
			done <- err.Error()
			return
		}
		done <- res.Rows[0].Values[0].String()
	}()
	select {
	case got := <-done:
		// The abandoned transaction's write must have been rolled back.
		if got != "100" {
			t.Fatalf("writer+reader saw Bal=%s, want the rolled-back 100", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("abandoned transaction still holds its table latch after 5s")
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxDone) {
		t.Fatalf("Commit after auto-rollback = %v, want ErrTxDone", err)
	}
}

func TestTxCursorRacesWatcherRollback(t *testing.T) {
	// -race regression: the context watcher's auto-rollback rewrites heap
	// pages and B-trees; an in-flight Next of the transaction's own cursor
	// must serialize against it (each pull holds the transaction mutex),
	// not read torn structures.
	s := newLockedSession(t)
	mustExec(t, s, `CREATE TABLE Big (N INT NOT NULL PRIMARY KEY, T TEXT)`)
	var values []string
	for i := 0; i < 500; i++ {
		values = append(values, fmt.Sprintf("(%d, 'x')", i))
	}
	mustExec(t, s, `INSERT INTO Big VALUES `+strings.Join(values, ", "))

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	tx, err := s.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(`UPDATE Big SET T = 'dirty' WHERE N < 250`); err != nil {
		t.Fatal(err)
	}
	rows, err := tx.Query(context.Background(), `SELECT N, T FROM Big`)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for rows.Next() {
		if n == 10 {
			cancel() // the watcher rolls the transaction back mid-iteration
		}
		n++
	}
	if err := rows.Err(); err != nil && !errors.Is(err, ErrTxDone) {
		t.Fatalf("cursor Err = %v, want nil or ErrTxDone", err)
	}
	// Whatever the interleaving, the rollback must have completed cleanly.
	if err := tx.Rollback(); err != nil && !errors.Is(err, ErrTxDone) {
		t.Fatal(err)
	}
	res := mustExec(t, s, `SELECT N FROM Big WHERE T = 'dirty'`)
	if len(res.Rows) != 0 {
		t.Fatalf("%d dirty rows survived the rollback", len(res.Rows))
	}
}

func TestTxRollsBackDependencyMarksAndApprovalOps(t *testing.T) {
	s := newLockedSession(t)
	mustExec(t, s, `CREATE TABLE Gene (GID TEXT NOT NULL PRIMARY KEY, GLen INT)`)
	mustExec(t, s, `CREATE TABLE Protein (PID TEXT NOT NULL PRIMARY KEY, GID TEXT, PFunc TEXT)`)
	mustExec(t, s, `INSERT INTO Gene VALUES ('g1', 10)`)
	mustExec(t, s, `INSERT INTO Protein VALUES ('p1', 'g1', 'f')`)
	if _, err := s.Dep.AddRule(dependency.Rule{
		Sources: []dependency.ColumnRef{{Table: "Gene", Column: "GLen"}},
		Targets: []dependency.ColumnRef{{Table: "Protein", Column: "PFunc"}},
		Proc:    dependency.Procedure{Name: "len-to-func", Executable: false},
		Link:    &dependency.Link{SourceColumn: "GID", TargetColumn: "GID"},
	}); err != nil {
		t.Fatal(err)
	}
	mustExec(t, s, `START CONTENT APPROVAL ON Gene APPROVED BY alice`)

	tx, err := s.Begin(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(`UPDATE Gene SET GLen = 99 WHERE GID = 'g1'`); err != nil {
		t.Fatal(err)
	}
	if !s.Dep.IsOutdated("Protein", 1, "PFunc") {
		t.Fatal("dependency cascade did not mark inside tx")
	}
	if n := len(s.Auth.Pending("Gene")); n != 1 {
		t.Fatalf("%d pending ops inside tx, want 1", n)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if s.Dep.IsOutdated("Protein", 1, "PFunc") {
		t.Error("rolled-back transaction left an outdated mark")
	}
	if n := len(s.Auth.Pending("Gene")); n != 0 {
		t.Errorf("rolled-back transaction left %d pending approval ops", n)
	}
	res := mustExec(t, s, `SELECT GLen FROM Gene WHERE GID = 'g1'`)
	if got := res.Rows[0].Values[0].Int(); got != 10 {
		t.Errorf("GLen = %d after rollback, want 10", got)
	}
}

func TestTxSQLScriptDrivesSessionState(t *testing.T) {
	// The CLI path: BEGIN/COMMIT/ROLLBACK arrive as plain statements on a
	// session. ExecAll runs them with the session's transaction state.
	s := newLockedSession(t)
	setupAccounts(t, s)
	if _, err := s.ExecAll(`BEGIN; UPDATE Acct SET Bal = 1 WHERE ID = 1; ROLLBACK;`); err != nil {
		t.Fatal(err)
	}
	if got, want := balances(t, s), "1=100,2=100,3=100"; got != want {
		t.Fatalf("after scripted rollback: %s, want %s", got, want)
	}
	if _, err := s.ExecAll(`BEGIN; UPDATE Acct SET Bal = 1 WHERE ID = 1; COMMIT;`); err != nil {
		t.Fatal(err)
	}
	if got, want := balances(t, s), "1=1,2=100,3=100"; got != want {
		t.Fatalf("after scripted commit: %s, want %s", got, want)
	}
	// A session abandoned mid-transaction is cleaned up by CloseTx.
	if _, err := s.ExecAll(`BEGIN; UPDATE Acct SET Bal = 2 WHERE ID = 1;`); err != nil {
		t.Fatal(err)
	}
	if !s.InTx() {
		t.Fatal("InTx = false with a scripted transaction open")
	}
	if err := s.CloseTx(); err != nil {
		t.Fatal(err)
	}
	if s.InTx() {
		t.Fatal("InTx = true after CloseTx")
	}
	if got, want := balances(t, s), "1=1,2=100,3=100"; got != want {
		t.Fatalf("after CloseTx: %s, want %s", got, want)
	}
	if err := s.CloseTx(); err != nil {
		t.Fatalf("CloseTx without tx = %v, want nil", err)
	}
}
