package exec

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// sumTable drains `SELECT <col> FROM <tbl>` through a streaming cursor and
// returns the sum — the reader side of every snapshot-consistency check here.
func sumTable(t *testing.T, s *Session, tbl, col string) int64 {
	t.Helper()
	rows, err := s.Query(context.Background(), fmt.Sprintf(`SELECT %s FROM %s`, col, tbl))
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	var total, v int64
	for rows.Next() {
		if err := rows.Scan(&v); err != nil {
			t.Fatal(err)
		}
		total += v
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	return total
}

// TestSnapshotReadsAreStable pins the snapshot-isolation contract for
// streaming SELECTs: a query never observes a transaction half-applied —
// not mid-transaction, not from a cursor opened mid-transaction and drained
// after commit, not across repeated transfer rounds.
func TestSnapshotReadsAreStable(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `CREATE TABLE Acc (ID INT NOT NULL PRIMARY KEY, Bal INT)`)
	mustExec(t, s, `INSERT INTO Acc VALUES (1, 100), (2, 100)`)

	check := func(tag string) {
		t.Helper()
		if got := sumTable(t, s, "Acc", "Bal"); got != 200 {
			t.Errorf("%s: sum=%d want 200", tag, got)
		}
	}

	w := sameEngineSession(s, "w")
	tx, err := w.Begin(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	check("before any write")
	if _, err := tx.Exec(`UPDATE Acc SET Bal = 93 WHERE ID = 1`); err != nil {
		t.Fatal(err)
	}
	check("mid-tx after debit")

	// A cursor opened mid-transaction must keep seeing the old state even
	// when the transaction commits while the cursor is still open.
	rows, err := s.Query(context.Background(), `SELECT Bal FROM Acc`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(`UPDATE Acc SET Bal = 107 WHERE ID = 2`); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	var total, v int64
	for rows.Next() {
		if err := rows.Scan(&v); err != nil {
			t.Fatal(err)
		}
		total += v
	}
	rows.Close()
	if total != 200 {
		t.Errorf("cursor opened mid-tx, drained after commit: sum=%d want 200", total)
	}
	check("after commit")

	// Transfers with a fresh snapshot at every stage, including rollbacks.
	for i := 0; i < 25; i++ {
		tx, err := w.Begin(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tx.Exec(fmt.Sprintf(`UPDATE Acc SET Bal = %d WHERE ID = 1`, 93-i)); err != nil {
			t.Fatal(err)
		}
		check(fmt.Sprintf("iter %d mid", i))
		if _, err := tx.Exec(fmt.Sprintf(`UPDATE Acc SET Bal = %d WHERE ID = 2`, 107+i)); err != nil {
			t.Fatal(err)
		}
		if i%3 == 2 {
			if err := tx.Rollback(); err != nil {
				t.Fatal(err)
			}
		} else if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		check(fmt.Sprintf("iter %d post", i))
	}
}

// TestCursorWriterNestedQueryNoDeadlock is the regression test for the
// deadlock the engine-wide RWMutex design documented and this design fixes:
// session A holds a cursor open, a writer on another session runs (it used to
// queue behind the cursor's read lock), and A issues a nested Query inside
// its Next loop (which used to queue behind the queued writer — deadlock,
// since the outer cursor's lock was never released). With MVCC snapshots the
// writer never waits on readers and the nested query takes its own snapshot,
// so the whole dance completes. The timeout guard turns a regression back
// into a test failure instead of a hung test binary.
func TestCursorWriterNestedQueryNoDeadlock(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `CREATE TABLE T (ID INT NOT NULL PRIMARY KEY, V INT)`)
	for i := 1; i <= 8; i++ {
		mustExec(t, s, fmt.Sprintf(`INSERT INTO T VALUES (%d, %d)`, i, i))
	}

	done := make(chan error, 1)
	go func() {
		done <- func() error {
			rows, err := s.Query(context.Background(), `SELECT ID, V FROM T`)
			if err != nil {
				return err
			}
			defer rows.Close()
			w := sameEngineSession(s, "w")
			n := 0
			var outerSum int64
			for rows.Next() {
				var id, v int64
				if err := rows.Scan(&id, &v); err != nil {
					return err
				}
				outerSum += v
				n++
				if n == 2 {
					// A writer mutating the scanned table completes while
					// the cursor is open: readers hold no latch to queue on.
					if _, err := w.Exec(`UPDATE T SET V = V + 100`); err != nil {
						return fmt.Errorf("writer while cursor open: %w", err)
					}
					// A nested query inside the Next loop sees the writer's
					// committed state on its own fresh snapshot.
					nested, err := s.Query(context.Background(), `SELECT V FROM T WHERE ID = 1`)
					if err != nil {
						return fmt.Errorf("nested query: %w", err)
					}
					var nv int64
					for nested.Next() {
						if err := nested.Scan(&nv); err != nil {
							return err
						}
					}
					nested.Close()
					if nv != 101 {
						return fmt.Errorf("nested query saw V=%d, want 101", nv)
					}
				}
			}
			if err := rows.Err(); err != nil {
				return err
			}
			// The outer cursor's snapshot predates the writer: 1+..+8 = 36.
			if n != 8 || outerSum != 36 {
				return fmt.Errorf("outer cursor saw n=%d sum=%d, want 8 rows summing 36", n, outerSum)
			}
			return nil
		}()
	}()

	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("deadlock: cursor + writer + nested query did not complete")
	}
}

// TestReadersProgressWhileWriterStreams asserts the headline property of the
// MVCC design: readers make progress while a writer streams inserts. Each
// reader must finish a fixed number of snapshot point reads while the writer
// is still running — under the old engine-wide RWMutex every one of those
// reads would queue behind the insert stream's write lock. Point reads (not
// full scans) keep each read's cost independent of how far the writer got,
// so the test asserts progress, not scan throughput.
func TestReadersProgressWhileWriterStreams(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `CREATE TABLE Feed (ID INT NOT NULL PRIMARY KEY, V INT)`)
	mustExec(t, s, `INSERT INTO Feed VALUES (0, 42)`)

	const readers = 4
	const readsPerReader = 50
	stopWriter := make(chan struct{})
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		w := sameEngineSession(s, "writer")
		for i := 1; ; i++ {
			select {
			case <-stopWriter:
				return
			default:
			}
			if _, err := w.Exec(fmt.Sprintf(`INSERT INTO Feed VALUES (%d, %d)`, i, i)); err != nil {
				t.Errorf("writer: %v", err)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rs := sameEngineSession(s, fmt.Sprintf("reader%d", r))
			for i := 0; i < readsPerReader; i++ {
				rows, err := rs.Query(context.Background(), `SELECT V FROM Feed WHERE ID = 0`)
				if err != nil {
					t.Errorf("reader%d: %v", r, err)
					return
				}
				var v int64
				for rows.Next() {
					if err := rows.Scan(&v); err != nil {
						t.Errorf("reader%d: %v", r, err)
					}
				}
				if err := rows.Err(); err != nil {
					t.Errorf("reader%d: %v", r, err)
				}
				rows.Close()
				if v != 42 {
					t.Errorf("reader%d: read V=%d, want 42", r, v)
					return
				}
			}
		}(r)
	}

	readersDone := make(chan struct{})
	go func() { wg.Wait(); close(readersDone) }()
	select {
	case <-readersDone:
	case <-time.After(60 * time.Second):
		t.Fatal("readers did not complete while writer streamed inserts")
	}
	close(stopWriter)
	<-writerDone
}
