package exec

// Tests for the streaming SELECT operators added for the fully-streaming
// pipeline: grouped aggregation with spill, external merge sort, the Top-N
// heap, streaming DISTINCT/set operations, and ORDER BY on non-projected
// columns. The NoOptimize naive executor remains the semantic oracle.

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"bdbms/internal/annotation"
	"bdbms/internal/value"
)

// naiveVsPlanned runs sql on both paths and asserts identical canonical
// results (rows, order, annotations).
func naiveVsPlanned(t *testing.T, s *Session, sql string) *Result {
	t.Helper()
	s.NoOptimize = true
	naive, naiveErr := s.Exec(sql)
	s.NoOptimize = false
	planned, plannedErr := s.Exec(sql)
	if naiveErr != nil {
		if plannedErr == nil {
			t.Fatalf("%s: naive rejects (%v), planned accepts", sql, naiveErr)
		}
		return nil
	}
	if plannedErr != nil {
		t.Fatalf("%s: planned: %v", sql, plannedErr)
	}
	if got, want := canonResult(planned), canonResult(naive); got != want {
		t.Fatalf("%s:\nplanned: %s\nnaive:   %s", sql, got, want)
	}
	return planned
}

// loadSpillTable creates a table with enough rows, duplicates and
// annotations that a tiny budget forces every blocking operator to spill.
func loadSpillTable(t *testing.T, s *Session, rows int) {
	t.Helper()
	mustExec(t, s, `CREATE TABLE Big (ID INT NOT NULL PRIMARY KEY, Grp TEXT, Score INT, W FLOAT)`)
	mustExec(t, s, `CREATE ANNOTATION TABLE Note ON Big`)
	ins, err := s.Prepare(`INSERT INTO Big VALUES (?, ?, ?, ?)`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		if _, err := ins.Exec(i, fmt.Sprintf("g%02d", i%13), i%101, float64(i%7)+0.25); err != nil {
			t.Fatal(err)
		}
	}
	mustExec(t, s, `ADD ANNOTATION TO Big.Note VALUE 'low scores need review' ON (SELECT Score FROM Big WHERE Score < 20)`)
}

func TestSpillForcedEquivalence(t *testing.T) {
	s := newSession(t)
	s.SpillBudget = 1 // every blocking operator spills on its first row
	loadSpillTable(t, s, 800)
	spillEvents.Store(0)
	queries := []string{
		`SELECT Grp, COUNT(*), SUM(Score), AVG(Score), MIN(Score), MAX(W) FROM Big GROUP BY Grp`,
		`SELECT Grp, COUNT(*) FROM Big WHERE Score > 10 GROUP BY Grp HAVING COUNT(*) >= 3`,
		`SELECT Grp, SUM(W) FROM Big ANNOTATION(Note) GROUP BY Grp`,
		`SELECT DISTINCT Grp, Score FROM Big`,
		`SELECT DISTINCT Score FROM Big ANNOTATION(Note)`,
		`SELECT ID, Score FROM Big ORDER BY Score DESC, ID`,
		`SELECT Grp FROM Big ORDER BY Grp`,
		`SELECT Grp FROM Big WHERE Score < 50 UNION SELECT Grp FROM Big WHERE Score > 60`,
		`SELECT Grp, COUNT(*) FROM Big GROUP BY Grp ORDER BY Grp DESC`,
		`SELECT ID FROM Big WHERE Score < 30 INTERSECT SELECT ID FROM Big WHERE W < 4.0`,
		`SELECT ID FROM Big WHERE Score < 30 EXCEPT SELECT ID FROM Big WHERE W < 2.0`,
	}
	for _, sql := range queries {
		naiveVsPlanned(t, s, sql)
	}
	if spillEvents.Load() == 0 {
		t.Fatal("budget of 1 byte never spilled: the spill path was not exercised")
	}
}

// TestSpillLargeValuesRoundTrip pushes rows whose encoded size exceeds a
// page through the spill file (run records span pages).
func TestSpillLargeValuesRoundTrip(t *testing.T) {
	s := newSession(t)
	s.SpillBudget = 1
	mustExec(t, s, `CREATE TABLE Seq (ID INT NOT NULL PRIMARY KEY, Body TEXT)`)
	// ~3.6 KB: near the heap-page record limit for the base table, and big
	// enough that a spilled (seq, key, row) record spans run-file pages.
	long := strings.Repeat("ACGT", 900)
	for i := 0; i < 10; i++ {
		mustExec(t, s, fmt.Sprintf(`INSERT INTO Seq VALUES (%d, '%s%d')`, i, long, i%3))
	}
	naiveVsPlanned(t, s, `SELECT Body FROM Seq ORDER BY ID DESC`)
	naiveVsPlanned(t, s, `SELECT DISTINCT Body FROM Seq`)
	naiveVsPlanned(t, s, `SELECT Body, COUNT(*) FROM Seq GROUP BY Body`)
}

func TestOrderByUnprojectedColumn(t *testing.T) {
	s := newSession(t)
	loadGenes(t, s, 50)
	// Sort by a column that is not in the SELECT list.
	res := naiveVsPlanned(t, s, `SELECT GID FROM Gene ORDER BY Score DESC, GID LIMIT 5`)
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	prev := int64(1 << 60)
	for _, r := range res.Rows {
		var score int64
		mustScoreOf(t, s, r.Values[0].Text(), &score)
		if score > prev {
			t.Fatalf("not sorted by unprojected Score: %d after %d", score, prev)
		}
		prev = score
	}
	// Qualified reference and mixed projected/unprojected keys.
	naiveVsPlanned(t, s, `SELECT GName FROM Gene ORDER BY Gene.Score, GName DESC`)
	// Unknown column still errors.
	naiveVsPlanned(t, s, `SELECT GID FROM Gene ORDER BY NoSuch`)
	// DISTINCT and set operations require the key in the SELECT list.
	naiveVsPlanned(t, s, `SELECT DISTINCT GName FROM Gene ORDER BY Score`)
	naiveVsPlanned(t, s, `SELECT GID FROM Gene UNION SELECT GName FROM Gene ORDER BY Score`)
	s.NoOptimize = false
	if _, err := s.Exec(`SELECT DISTINCT GName FROM Gene ORDER BY Score`); err == nil {
		t.Fatal("DISTINCT + unprojected ORDER BY must be rejected")
	}
}

func mustScoreOf(t *testing.T, s *Session, gid string, out *int64) {
	t.Helper()
	rows, err := s.Query(context.Background(), `SELECT Score FROM Gene WHERE GID = ?`, gid)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if !rows.Next() {
		t.Fatalf("no score for %s", gid)
	}
	if err := rows.Scan(out); err != nil {
		t.Fatal(err)
	}
}

// TestOrderByAnnotatedColumn checks annotations survive the sort and Top-N
// codecs, including ordering by an annotation-decorated unprojected column.
func TestOrderByAnnotatedColumn(t *testing.T) {
	s := newSession(t)
	s.SpillBudget = 1
	loadGenes(t, s, 40)
	mustExec(t, s, `CREATE ANNOTATION TABLE Curation ON Gene`)
	mustExec(t, s, `ADD ANNOTATION TO Gene.Curation VALUE 'verified' ON (SELECT Score FROM Gene WHERE Score > 20)`)
	res := naiveVsPlanned(t, s, `SELECT GID, Score FROM Gene ANNOTATION(Curation) ORDER BY Score DESC`)
	foundAnn := false
	for _, r := range res.Rows {
		if len(r.AnnotationsFlat()) > 0 {
			foundAnn = true
		}
	}
	if !foundAnn {
		t.Fatal("annotations lost through the sort pipeline")
	}
	// Same but with the annotated sort column unprojected, via Top-N.
	naiveVsPlanned(t, s, `SELECT GID FROM Gene ANNOTATION(Curation) ORDER BY Score DESC LIMIT 7`)
}

// TestTopNHeapBounded proves the Top-N operator's resident state is O(limit)
// while consuming a large input.
func TestTopNHeapBounded(t *testing.T) {
	const n, k = 100000, 10
	src := &synthKeyedIter{n: n}
	top := newTopNIter(src, []orderKey{{outIdx: 0, slot: -1}}, k)
	src.top = top
	var got []int64
	for {
		row, ok, err := top.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		got = append(got, row.Values[0].Int())
	}
	if len(got) != k {
		t.Fatalf("emitted %d rows", len(got))
	}
	for i, v := range got {
		if v != int64(i) {
			t.Fatalf("row %d = %d, want %d", i, v, i)
		}
	}
	if src.maxHeap > k {
		t.Fatalf("heap grew to %d entries for LIMIT %d", src.maxHeap, k)
	}
}

// synthKeyedIter feeds n descending keys and snoops the consumer's heap size.
type synthKeyedIter struct {
	n       int
	i       int
	top     *topNIter
	maxHeap int
}

func (s *synthKeyedIter) Next() (keyedRow, bool, error) {
	if s.top != nil && len(s.top.h) > s.maxHeap {
		s.maxHeap = len(s.top.h)
	}
	if s.i >= s.n {
		return keyedRow{}, false, nil
	}
	v := value.NewInt(int64(s.n - 1 - s.i)) // descending: worst case for the heap
	s.i++
	row := ARow{Values: value.Row{v}, Anns: make([][]*annotation.Annotation, 1)}
	return keyedRow{row: row, key: value.Row{v}}, true, nil
}

// TestGroupAggSpillMatchesSmallCase is a direct, human-checkable case.
func TestGroupAggSpillMatchesSmallCase(t *testing.T) {
	s := newSession(t)
	s.SpillBudget = 1
	mustExec(t, s, `CREATE TABLE T (G TEXT, V INT)`)
	mustExec(t, s, `INSERT INTO T VALUES ('b', 1), ('a', 2), ('b', 3), ('a', 4), ('c', NULL), ('b', NULL)`)
	res, err := s.Exec(`SELECT G, COUNT(*), COUNT(V), SUM(V), AVG(V), MIN(V), MAX(V) FROM T GROUP BY G`)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{
		// first-seen group order; SUM over all-NULL is 0 (FLOAT), AVG NULL
		{"b", "3", "2", "4", "2", "1", "3"},
		{"a", "2", "2", "6", "3", "2", "4"},
		{"c", "1", "0", "0", "NULL", "NULL", "NULL"},
	}
	if len(res.Rows) != len(want) {
		t.Fatalf("groups = %d", len(res.Rows))
	}
	for i, w := range want {
		for c, cell := range w {
			if got := res.Rows[i].Values[c].String(); got != cell {
				t.Errorf("row %d col %d = %s, want %s", i, c, got, cell)
			}
		}
	}
}

// TestSetOpRightOperandLimit: a trailing LIMIT (with or without ORDER BY)
// in a compound statement parses into the RIGHT operand and must truncate
// that operand before the set operation — regression for the streaming
// pipeline dropping a nested LIMIT that had no ORDER BY attached.
func TestSetOpRightOperandLimit(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `CREATE TABLE L (V TEXT)`)
	mustExec(t, s, `CREATE TABLE R (V TEXT)`)
	mustExec(t, s, `INSERT INTO L VALUES ('a')`)
	mustExec(t, s, `INSERT INTO R VALUES ('w'), ('x'), ('y'), ('z'), ('a')`)
	for _, sql := range []string{
		`SELECT V FROM L UNION SELECT V FROM R LIMIT 2`,
		`SELECT V FROM L UNION SELECT V FROM R ORDER BY V LIMIT 2`,
		`SELECT V FROM L INTERSECT SELECT V FROM R LIMIT 3`,
		`SELECT V FROM L EXCEPT SELECT V FROM R LIMIT 3`,
		`SELECT V FROM R UNION SELECT V FROM R LIMIT 1 UNION SELECT V FROM R LIMIT 2`,
	} {
		naiveVsPlanned(t, s, sql)
	}
	// The documented shape of the bug: right side truncated to 2 rows, so
	// the union has exactly 1 + 2 rows.
	res, err := s.Exec(`SELECT V FROM L UNION SELECT V FROM R LIMIT 2`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("union with right-side LIMIT 2 returned %d rows, want 3", len(res.Rows))
	}
}

// TestStreamingLimitShortCircuitsBlockingOps: LIMIT after a blocking
// operator still terminates (the operator consumed its input once).
func TestStreamingLimitStopsAfterBlockingOp(t *testing.T) {
	s := newSession(t)
	loadGenes(t, s, 100)
	rows, err := s.Query(context.Background(), `SELECT DISTINCT Score FROM Gene LIMIT 3`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	n := 0
	for rows.Next() {
		n++
	}
	if rows.Err() != nil || n != 3 {
		t.Fatalf("n=%d err=%v", n, rows.Err())
	}
}

// TestCursorCtxCancelBlockingOp: cancellation propagates out of a blocking
// operator's consume loop via the scan iterators underneath.
func TestCursorCtxCancelBlockingOp(t *testing.T) {
	s := newSession(t)
	loadGenes(t, s, 100)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rows, err := s.Query(ctx, `SELECT GName, COUNT(*) FROM Gene GROUP BY GName ORDER BY GName`)
	if err != nil {
		if err != context.Canceled {
			t.Fatalf("err = %v", err)
		}
		return
	}
	defer rows.Close()
	for rows.Next() {
	}
	if rows.Err() != context.Canceled {
		t.Fatalf("Err = %v, want context.Canceled", rows.Err())
	}
}
