package exec

import (
	"context"
	"encoding/binary"
	"errors"

	"bdbms/internal/heap"
	"bdbms/internal/sqlparse"
	"bdbms/internal/storage"
	"bdbms/internal/value"
)

// This file implements the physical operators of the streaming SELECT
// executor. Each operator is a Volcano-style pull iterator: rows flow one at
// a time from table scans through filters and joins, so a query never
// materializes the cross product of its FROM tables the way the naive
// executor does. Rows carry only values and origins while inside the
// pipeline; annotations and outdated marks are attached lazily, after
// filtering, by Session.decorateRows (or per row by decorateIter when the
// query streams through a cursor).
//
// Scan and join iterators check the query context on every Next call, so a
// canceled context aborts a long-running scan or join with ctx.Err()
// (typically context.Canceled) instead of running to completion.

// rowIter is the iterator interface every physical operator implements.
type rowIter interface {
	// Next returns the next row; ok is false at end of stream.
	Next() (row execRow, ok bool, err error)
}

// --- predicates ----------------------------------------------------------------------------

// compiledPred is one WHERE conjunct with every column reference resolved to
// its global value-slot index at plan time, so per-row evaluation is a slice
// index instead of a name lookup. Placeholders stay unresolved in the
// expression and are bound from params at evaluation time, which is what lets
// a prepared statement reuse the compiled predicate across executions.
type compiledPred struct {
	expr  sqlparse.Expr
	slots map[*sqlparse.ColumnExpr]int
}

// eval evaluates the predicate against a row whose values start at the given
// global slot offset (0 for post-join rows, the source offset for rows still
// inside a single-table scan).
func (p compiledPred) eval(vals value.Row, offset int, params value.Row) (bool, error) {
	v, err := evalExpr(p.expr, func(col *sqlparse.ColumnExpr) (value.Value, error) {
		slot, ok := p.slots[col]
		if !ok {
			return value.Value{}, errUnresolvedSlot
		}
		return vals[slot-offset], nil
	}, nil, params)
	if err != nil {
		return false, err
	}
	return v.Type() == value.Bool && v.Bool(), nil
}

func evalPreds(preds []compiledPred, vals value.Row, offset int, params value.Row) (bool, error) {
	for _, p := range preds {
		ok, err := p.eval(vals, offset, params)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// --- scan ----------------------------------------------------------------------------------

// scanIter streams one table in ascending RowID order, applying the pushed
// single-table predicates before a row leaves the scan. The RowID list comes
// either from the heap (full scan) or from a B+-tree probe (index scan); in
// both cases it is sorted, so downstream operators see the same order.
//
// When snap is non-nil, every row fetch goes through the MVCC snapshot: the
// scan sees the committed state at cursor-open time no matter what writers
// do meanwhile. A nil snap reads the current heap — that is the mode for
// cursors inside an explicit transaction, whose latches exclude writers.
type scanIter struct {
	ctx    context.Context
	src    *sourcePlan
	ids    []int64
	params value.Row
	snap   *storage.Snapshot
	pos    int
}

func (it *scanIter) Next() (execRow, bool, error) {
	if err := it.ctx.Err(); err != nil {
		return execRow{}, false, err
	}
	for it.pos < len(it.ids) {
		// Re-check cancellation periodically inside the loop: a selective
		// predicate can reject long stretches of rows within one Next call.
		if it.pos&1023 == 1023 {
			if err := it.ctx.Err(); err != nil {
				return execRow{}, false, err
			}
		}
		rowID := it.ids[it.pos]
		it.pos++
		var vals value.Row
		var err error
		if it.snap != nil {
			vals, err = it.snap.Get(it.src.tbl, rowID)
		} else {
			vals, err = it.src.tbl.Get(rowID)
		}
		if errors.Is(err, storage.ErrRowNotFound) || errors.Is(err, heap.ErrNotFound) {
			// Row deleted between listing and fetch; mirror Table.Scan.
			continue
		}
		if err != nil {
			return execRow{}, false, err
		}
		ok, err := evalPreds(it.src.preds, vals, it.src.offset, it.params)
		if err != nil {
			return execRow{}, false, err
		}
		if !ok {
			continue
		}
		return execRow{
			values:  vals,
			origins: []origin{{table: it.src.tbl.Name(), rowID: rowID}},
		}, true, nil
	}
	return execRow{}, false, nil
}

// drainIter materializes the remainder of an iterator.
func drainIter(it rowIter) ([]execRow, error) {
	var out []execRow
	for {
		r, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, r)
	}
}

// --- filter --------------------------------------------------------------------------------

// filterIter applies post-join conjuncts to rows covering a prefix of the
// FROM sources (offset 0).
type filterIter struct {
	in     rowIter
	preds  []compiledPred
	params value.Row
}

func (it *filterIter) Next() (execRow, bool, error) {
	for {
		r, ok, err := it.in.Next()
		if err != nil || !ok {
			return execRow{}, false, err
		}
		keep, err := evalPreds(it.preds, r.values, 0, it.params)
		if err != nil {
			return execRow{}, false, err
		}
		if keep {
			return r, true, nil
		}
	}
}

// residualIter evaluates conjuncts the planner could not compile (aggregates,
// late-resolving references) exactly like the naive executor evaluates WHERE,
// but one row at a time so the streaming cursor stays lazy.
type residualIter struct {
	s        *Session
	in       rowIter
	exprs    []sqlparse.Expr
	bindings []binding
	params   value.Row
}

func (it *residualIter) Next() (execRow, bool, error) {
	for {
		r, ok, err := it.in.Next()
		if err != nil || !ok {
			return execRow{}, false, err
		}
		keep := true
		for _, e := range it.exprs {
			ok, err := it.s.evalBool(e, it.bindings, r, nil, it.params)
			if err != nil {
				return execRow{}, false, err
			}
			if !ok {
				keep = false
				break
			}
		}
		if keep {
			return r, true, nil
		}
	}
}

// --- joins ---------------------------------------------------------------------------------

// combineRows concatenates two partial rows into a fresh execRow. Values and
// origins are copied so joined rows never alias their inputs.
func combineRows(left, right execRow) execRow {
	vals := make(value.Row, 0, len(left.values)+len(right.values))
	vals = append(vals, left.values...)
	vals = append(vals, right.values...)
	origins := make([]origin, 0, len(left.origins)+len(right.origins))
	origins = append(origins, left.origins...)
	origins = append(origins, right.origins...)
	return execRow{values: vals, origins: origins}
}

// joinKeyCol is one column of an equi-join key: the value-slot index and the
// comparison class used to normalize the value before hashing.
type joinKeyCol struct {
	slot  int
	class compareClass
}

// appendJoinKey appends the hash-key encoding of v to dst. The encoding is
// normalized per comparison class so that two values for which Compare
// returns 0 (e.g. INT 1 and FLOAT 1.0, TEXT and SEQUENCE with equal bytes)
// produce identical keys — hash equality must agree exactly with the
// semantics of the `=` operator the join replaces. Each part is
// length-prefixed so composite keys cannot collide across boundaries.
// ok is false for NULL, which never joins.
func appendJoinKey(dst []byte, v value.Value, class compareClass) ([]byte, bool) {
	if v.IsNull() {
		return dst, false
	}
	switch class {
	case classNumeric:
		v = value.NewFloat(v.Float())
	case classString:
		v = value.NewText(v.Text())
	}
	k := v.EncodeKey(nil)
	dst = binary.AppendUvarint(dst, uint64(len(k)))
	return append(dst, k...), true
}

func joinKey(buf []byte, vals value.Row, cols []joinKeyCol) ([]byte, bool) {
	buf = buf[:0]
	for _, kc := range cols {
		var ok bool
		buf, ok = appendJoinKey(buf, vals[kc.slot], kc.class)
		if !ok {
			return buf, false
		}
	}
	return buf, true
}

// hashJoinIter joins the streaming left input against a materialized build
// table over the right source. For each left row, matches are emitted in
// right-scan (RowID) order, so the output order equals what the naive
// filtered cross product produces.
type hashJoinIter struct {
	ctx      context.Context
	left     rowIter
	build    map[string][]execRow
	leftKey  []joinKeyCol // slots are global (into the left prefix row)
	cur      execRow
	matches  []execRow
	mpos     int
	keyBuf   []byte
	haveLeft bool
}

// newHashJoinIter builds the hash table over the right rows. rightKey slots
// are local to the right source's columns.
func newHashJoinIter(ctx context.Context, left rowIter, rightRows []execRow, leftKey, rightKey []joinKeyCol) *hashJoinIter {
	build := make(map[string][]execRow, len(rightRows))
	var buf []byte
	for _, r := range rightRows {
		var ok bool
		buf, ok = joinKey(buf, r.values, rightKey)
		if !ok {
			continue // NULL key never matches
		}
		build[string(buf)] = append(build[string(buf)], r)
	}
	return &hashJoinIter{ctx: ctx, left: left, build: build, leftKey: leftKey}
}

func (it *hashJoinIter) Next() (execRow, bool, error) {
	if len(it.build) == 0 {
		// Empty build side: no left row can match, so don't drain the left
		// input (e.g. after an index point-miss on the right table).
		return execRow{}, false, nil
	}
	if err := it.ctx.Err(); err != nil {
		return execRow{}, false, err
	}
	for {
		if it.haveLeft && it.mpos < len(it.matches) {
			right := it.matches[it.mpos]
			it.mpos++
			return combineRows(it.cur, right), true, nil
		}
		l, ok, err := it.left.Next()
		if err != nil || !ok {
			return execRow{}, false, err
		}
		it.cur = l
		it.haveLeft = true
		it.mpos = 0
		var keyOK bool
		it.keyBuf, keyOK = joinKey(it.keyBuf, l.values, it.leftKey)
		if !keyOK {
			it.matches = nil
			continue
		}
		it.matches = it.build[string(it.keyBuf)]
	}
}

// crossJoinIter is the block nested-loop fallback when no equi-join conjunct
// connects the next source: the right side is materialized once and replayed
// per left row.
type crossJoinIter struct {
	ctx      context.Context
	left     rowIter
	right    []execRow
	cur      execRow
	rpos     int
	haveLeft bool
}

func (it *crossJoinIter) Next() (execRow, bool, error) {
	if err := it.ctx.Err(); err != nil {
		return execRow{}, false, err
	}
	for {
		if it.haveLeft && it.rpos < len(it.right) {
			right := it.right[it.rpos]
			it.rpos++
			return combineRows(it.cur, right), true, nil
		}
		if len(it.right) == 0 {
			return execRow{}, false, nil
		}
		l, ok, err := it.left.Next()
		if err != nil || !ok {
			return execRow{}, false, err
		}
		it.cur = l
		it.haveLeft = true
		it.rpos = 0
	}
}
