package exec

// Fault-injection tests for the spill surface: a query whose temp file hits
// ENOSPC/EIO mid-spill must fail with a categorized error, remove the temp
// file, and leave the session fully usable.

import (
	"errors"
	"fmt"
	"os"
	"testing"

	"bdbms/internal/pager"
)

// redirectSpill points openSpillPager at dir and passes each created pager
// through wrap, restoring the original hook when the test ends.
func redirectSpill(t *testing.T, dir string, wrap func(*pager.FilePager) (pager.Pager, error)) {
	t.Helper()
	orig := openSpillPager
	openSpillPager = func() (pager.Pager, error) {
		p, err := pager.OpenTemp(dir)
		if err != nil {
			return nil, err
		}
		return wrap(p)
	}
	t.Cleanup(func() { openSpillPager = orig })
}

// requireNoSpillFiles asserts every temp file in dir was removed.
func requireNoSpillFiles(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("%d spill file(s) left behind after failed query: %v", len(entries), entries)
	}
}

func loadSpillFaultTable(t *testing.T, s *Session) {
	t.Helper()
	mustExec(t, s, `CREATE TABLE Big (ID INT NOT NULL PRIMARY KEY, Grp TEXT, Score INT)`)
	ins, err := s.Prepare(`INSERT INTO Big VALUES (?, ?, ?)`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if _, err := ins.Exec(i, fmt.Sprintf("g%02d", i%17), i%101); err != nil {
			t.Fatal(err)
		}
	}
}

// checkSessionUsable proves the engine survived the failed query: the same
// spilling query succeeds once the disk recovers, and writes still work.
func checkSessionUsable(t *testing.T, s *Session, sql string) {
	t.Helper()
	res, err := s.Exec(sql)
	if err != nil {
		t.Fatalf("session unusable after spill fault, %q: %v", sql, err)
	}
	if len(res.Rows) == 0 {
		t.Fatalf("session returned no rows for %q after spill fault", sql)
	}
	mustExec(t, s, `INSERT INTO Big VALUES (9999, 'gXX', 1)`)
	mustExec(t, s, `DELETE FROM Big WHERE ID = 9999`)
}

func TestSpillWriteENOSPCFailsQueryCleanly(t *testing.T) {
	dir := t.TempDir()
	queries := []string{
		`SELECT Grp, COUNT(*), SUM(Score) FROM Big GROUP BY Grp`, // spilling hash aggregation
		`SELECT ID, Score FROM Big ORDER BY Score DESC, ID`,      // external sort
		`SELECT DISTINCT Grp FROM Big`,                           // spilling distinct
	}
	for _, sql := range queries {
		t.Run(sql, func(t *testing.T) {
			s := newSession(t)
			s.SpillBudget = 1
			loadSpillFaultTable(t, s)

			faulty := true
			redirectSpill(t, dir, func(p *pager.FilePager) (pager.Pager, error) {
				fp := pager.NewFaultPager(p)
				if faulty {
					fp.FailWriteAfter(2, pager.ErrInjectedENOSPC)
				}
				return fp, nil
			})

			_, err := s.Exec(sql)
			if err == nil {
				t.Fatal("query with failing spill writes succeeded")
			}
			if !errors.Is(err, ErrSpill) {
				t.Fatalf("error not categorized as ErrSpill: %v", err)
			}
			if !errors.Is(err, pager.ErrInjectedENOSPC) {
				t.Fatalf("underlying ENOSPC lost: %v", err)
			}
			requireNoSpillFiles(t, dir)

			faulty = false
			checkSessionUsable(t, s, sql)
			requireNoSpillFiles(t, dir)
		})
	}
}

// TestSpillAllocateENOSPC fails the very first page allocation of the run
// file — the earliest point a full disk can bite.
func TestSpillAllocateENOSPC(t *testing.T) {
	dir := t.TempDir()
	s := newSession(t)
	s.SpillBudget = 1
	loadSpillFaultTable(t, s)

	faulty := true
	redirectSpill(t, dir, func(p *pager.FilePager) (pager.Pager, error) {
		fp := pager.NewFaultPager(p)
		if faulty {
			fp.FailAllocateAfter(0, pager.ErrInjectedENOSPC)
		}
		return fp, nil
	})

	sql := `SELECT Grp, COUNT(*) FROM Big GROUP BY Grp`
	_, err := s.Exec(sql)
	if !errors.Is(err, ErrSpill) || !errors.Is(err, pager.ErrInjectedENOSPC) {
		t.Fatalf("allocate fault = %v, want ErrSpill wrapping ENOSPC", err)
	}
	requireNoSpillFiles(t, dir)
	faulty = false
	checkSessionUsable(t, s, sql)
}

// TestSpillOpenFailure fails creating the temp file itself (ENOSPC or a
// bad TMPDIR at open time).
func TestSpillOpenFailure(t *testing.T) {
	s := newSession(t)
	s.SpillBudget = 1
	loadSpillFaultTable(t, s)

	faulty := true
	orig := openSpillPager
	openSpillPager = func() (pager.Pager, error) {
		if faulty {
			return nil, pager.ErrInjectedENOSPC
		}
		return orig()
	}
	t.Cleanup(func() { openSpillPager = orig })

	sql := `SELECT DISTINCT Grp FROM Big`
	_, err := s.Exec(sql)
	if !errors.Is(err, ErrSpill) || !errors.Is(err, pager.ErrInjectedENOSPC) {
		t.Fatalf("open fault = %v, want ErrSpill wrapping ENOSPC", err)
	}
	faulty = false
	checkSessionUsable(t, s, sql)
}

// readFaultPager fails Read once its countdown expires; writes and
// allocations pass through. It drives the merge phase (reading runs back)
// into EIO after the spill writes succeeded.
type readFaultPager struct {
	pager.Pager
	remaining int
	armed     bool
}

func (p *readFaultPager) Read(id pager.PageID) ([]byte, error) {
	if p.armed {
		if p.remaining == 0 {
			return nil, pager.ErrInjectedEIO
		}
		p.remaining--
	}
	return p.Pager.Read(id)
}

// TestSpillReadEIO: EIO while reading runs back during the merge phase must
// also surface as a categorized failure with the temp file removed.
func TestSpillReadEIO(t *testing.T) {
	dir := t.TempDir()
	s := newSession(t)
	s.SpillBudget = 1
	loadSpillFaultTable(t, s)

	faulty := true
	redirectSpill(t, dir, func(p *pager.FilePager) (pager.Pager, error) {
		return &readFaultPager{Pager: p, remaining: 4, armed: faulty}, nil
	})

	sql := `SELECT ID, Score FROM Big ORDER BY Score, ID`
	_, err := s.Exec(sql)
	if !errors.Is(err, ErrSpill) || !errors.Is(err, pager.ErrInjectedEIO) {
		t.Fatalf("read fault = %v, want ErrSpill wrapping EIO", err)
	}
	requireNoSpillFiles(t, dir)
	faulty = false
	checkSessionUsable(t, s, sql)
	requireNoSpillFiles(t, dir)
}
