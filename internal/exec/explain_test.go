package exec

// EXPLAIN coverage beyond the goldens: the rendered shape of every statement
// class (plannable and not), the decoration/aggregation/set-operation stages,
// the greedy join-ordering path for wide FROM lists, and the failure modes.

import (
	"strings"
	"testing"
)

// explainText runs EXPLAIN and returns the joined plan lines.
func explainText(t *testing.T, s *Session, sql string) string {
	t.Helper()
	res := mustExec(t, s, sql)
	var lines []string
	for _, r := range res.Rows {
		lines = append(lines, r.Values[0].Text())
	}
	return strings.Join(lines, "\n")
}

func TestExplainStatementClasses(t *testing.T) {
	s := newSession(t)
	buildJoinFixture(t, s, 20, 40)
	cases := []struct {
		sql  string
		want string
	}{
		// INSERT renders its row count, never an access path.
		{`EXPLAIN INSERT INTO Gene VALUES ('X1', 'a', 1), ('X2', 'b', 2)`, "Insert(Gene) rows=2"},
		// EXPLAIN EXPLAIN unwraps to the innermost target.
		{`EXPLAIN EXPLAIN INSERT INTO Gene VALUES ('X3', 'c', 3)`, "Insert(Gene) rows=1"},
		// Non-plannable statements render a generic Execute line...
		{`EXPLAIN CREATE TABLE T2 (ID INT NOT NULL PRIMARY KEY)`, "Execute(CREATE TABLE)"},
		{`EXPLAIN CREATE INDEX ON Gene (GName)`, "Execute(CREATE INDEX)"},
		{`EXPLAIN DROP TABLE Lab`, "Execute(DROP TABLE)"},
		{`EXPLAIN CREATE ANNOTATION TABLE Extra ON Gene`, "Execute(CREATE ANNOTATION TABLE)"},
		{`EXPLAIN DROP ANNOTATION TABLE Curation ON Gene`, "Execute(DROP ANNOTATION TABLE)"},
		{`EXPLAIN ADD ANNOTATION TO Gene.Curation VALUE 'x' ON (SELECT * FROM Gene)`, "Execute(ADD ANNOTATION)"},
		{`EXPLAIN ARCHIVE ANNOTATION FROM Gene.Curation ON (SELECT * FROM Gene)`, "Execute(ARCHIVE/RESTORE ANNOTATION)"},
		{`EXPLAIN START CONTENT APPROVAL ON Gene COLUMNS (Score) APPROVED BY admin`, "Execute(START CONTENT APPROVAL)"},
		{`EXPLAIN STOP CONTENT APPROVAL ON Gene`, "Execute(STOP CONTENT APPROVAL)"},
		{`EXPLAIN GRANT SELECT ON Gene TO alice`, "Execute(GRANT/REVOKE)"},
		{`EXPLAIN APPROVE OPERATION 1`, "Execute(APPROVE)"},
		{`EXPLAIN SHOW PENDING OPERATIONS FOR Gene`, "Execute(SHOW PENDING)"},
		{`EXPLAIN BEGIN`, "Execute(BEGIN)"},
		{`EXPLAIN COMMIT`, "Execute(COMMIT)"},
		{`EXPLAIN ROLLBACK`, "Execute(ROLLBACK)"},
		{`EXPLAIN SAVEPOINT sp1`, "Execute(SAVEPOINT)"},
	}
	for _, tc := range cases {
		if got := explainText(t, s, tc.sql); got != tc.want {
			t.Errorf("%s\n got: %q\nwant: %q", tc.sql, got, tc.want)
		}
	}
	// ...and none of them execute: the tables and annotations survive, the
	// explained INSERTs inserted nothing.
	if res := mustExec(t, s, `SELECT GID FROM Gene WHERE GID = 'X1' OR GID = 'X2' OR GID = 'X3'`); len(res.Rows) != 0 {
		t.Error("EXPLAIN INSERT executed its target")
	}
	mustExec(t, s, `SELECT LID FROM Lab`)               // DROP TABLE not executed
	mustExec(t, s, `SELECT * FROM Gene ORDER BY GName`) // CREATE INDEX not executed: still sorts
}

func TestExplainDecorationAndSetStages(t *testing.T) {
	s := newSession(t)
	buildJoinFixture(t, s, 20, 40)

	// AWHERE renders between the scan and the projection.
	got := explainText(t, s, `EXPLAIN SELECT GID FROM Gene ANNOTATION(Curation) AWHERE ANN.AUTHOR = 'admin'`)
	if !strings.Contains(got, "AWhere") {
		t.Errorf("AWHERE stage missing:\n%s", got)
	}
	// FILTER renders after aggregation stages.
	got = explainText(t, s, `EXPLAIN SELECT GID FROM Gene ANNOTATION(Curation) FILTER ANN.VALUE LIKE '%curated%'`)
	if !strings.Contains(got, "AnnFilter") {
		t.Errorf("FILTER stage missing:\n%s", got)
	}
	// GROUP BY + HAVING + AHAVING.
	got = explainText(t, s, `EXPLAIN SELECT GName, COUNT(*) FROM Gene ANNOTATION(Curation)
		GROUP BY GName HAVING COUNT(*) > 1 AHAVING ANN.VALUE LIKE '%curated%'`)
	for _, stage := range []string{"Aggregate", "Having", "AHaving"} {
		if !strings.Contains(got, stage) {
			t.Errorf("%s stage missing:\n%s", stage, got)
		}
	}
	// DISTINCT and set operations; the right operand is indented.
	got = explainText(t, s, `EXPLAIN SELECT DISTINCT GName FROM Gene UNION SELECT PID FROM Protein WHERE PLen < 50`)
	if !strings.Contains(got, "Distinct") || !strings.Contains(got, "Union:") {
		t.Errorf("Distinct/Union stages missing:\n%s", got)
	}
	if !strings.Contains(got, "\n  ") {
		t.Errorf("set-operation right operand not indented:\n%s", got)
	}
	got = explainText(t, s, `EXPLAIN SELECT GName FROM Gene INTERSECT SELECT GName FROM Gene WHERE Score > 10`)
	if !strings.Contains(got, "Intersect:") {
		t.Errorf("Intersect stage missing:\n%s", got)
	}
	got = explainText(t, s, `EXPLAIN SELECT GName FROM Gene EXCEPT SELECT GName FROM Gene WHERE Score > 10`)
	if !strings.Contains(got, "Except:") {
		t.Errorf("Except stage missing:\n%s", got)
	}
	// A qualified DESC order key renders table-qualified with the direction.
	got = explainText(t, s, `EXPLAIN SELECT g.GID FROM Gene g, Protein p WHERE g.GID = p.GID ORDER BY g.Score DESC, g.GID`)
	if !strings.Contains(got, "g.Score DESC, g.GID") {
		t.Errorf("ORDER BY rendering:\n%s", got)
	}
	// Placeholders render as `?` in the access path.
	st, err := s.Prepare(`EXPLAIN SELECT * FROM Gene WHERE GID = ?`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.Exec("G001")
	if err != nil {
		t.Fatal(err)
	}
	if want := "IndexScan(Gene.GID = ?)"; !strings.Contains(res.Rows[0].Values[0].Text(), want) {
		t.Errorf("prepared EXPLAIN access path = %q, want %s", res.Rows[0].Values[0].Text(), want)
	}
}

func TestExplainErrors(t *testing.T) {
	s := newSession(t)
	for _, sql := range []string{
		`EXPLAIN SELECT * FROM Missing`,
		`EXPLAIN DELETE FROM Missing`,
		`EXPLAIN UPDATE Missing SET X = 1`,
	} {
		if _, err := s.Exec(sql); err == nil {
			t.Errorf("%s succeeded on a missing table", sql)
		}
	}
}

// TestGreedyJoinOrderBeyondExhaustiveLimit plans a six-way join — past
// maxExhaustiveSources — so ordering goes through the greedy path, and
// cross-checks the result against the pinned syntactic order.
func TestGreedyJoinOrderBeyondExhaustiveLimit(t *testing.T) {
	s := newSession(t)
	for i := 1; i <= 6; i++ {
		mustExec(t, s, strings.ReplaceAll(
			`CREATE TABLE T@ (ID INT NOT NULL PRIMARY KEY, K INT)`, "@", string(rune('0'+i))))
	}
	sizes := []int{9, 3, 12, 5, 2, 7}
	for ti, n := range sizes {
		for i := 0; i < n; i++ {
			mustExec(t, s, strings.ReplaceAll(
				`INSERT INTO T@ VALUES (`+itoa(int64(i))+`, `+itoa(int64(i%3))+`)`, "@", string(rune('1'+ti))))
		}
	}
	query := `SELECT t1.ID FROM T1 t1, T2 t2, T3 t3, T4 t4, T5 t5, T6 t6
		WHERE t1.K = t2.K AND t2.K = t3.K AND t3.K = t4.K AND t4.K = t5.K AND t5.K = t6.K
		ORDER BY t1.ID`
	// Build stats so the greedy path has estimates to order by.
	for i := 1; i <= 6; i++ {
		mustExec(t, s, strings.ReplaceAll(`SELECT COUNT(*) FROM T@ WHERE K = -1`, "@", string(rune('0'+i))))
	}
	planned := fingerprint(mustExec(t, s, query))
	if txt := explainText(t, s, "EXPLAIN "+query); !strings.Contains(txt, "Join") {
		t.Fatalf("six-way plan has no joins:\n%s", txt)
	}
	s.NoReorder = true
	pinned := fingerprint(mustExec(t, s, query))
	s.NoReorder = false
	if planned != pinned {
		t.Errorf("greedy-ordered plan disagrees with syntactic order:\nplanned:\n%s\npinned:\n%s", planned, pinned)
	}
}
