package exec

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"bdbms/internal/annotation"
	"bdbms/internal/authz"
	"bdbms/internal/dependency"
	"bdbms/internal/sqlparse"
	"bdbms/internal/storage"
	"bdbms/internal/value"
)

// origin records which base-table row contributed to an intermediate row.
type origin struct {
	table string
	rowID int64
}

// execRow is an intermediate row flowing through the SELECT pipeline: the
// concatenated values of the FROM tables, per-value annotation sets, and the
// originating (table, RowID) pairs.
type execRow struct {
	values  value.Row
	anns    [][]*annotation.Annotation
	origins []origin
	// group holds the member rows when this row represents a GROUP BY group
	// built by the reference executor's groupRows.
	group []execRow
	// aggVals holds the pre-computed aggregate results when this row was
	// built by the streaming groupAggIter, which accumulates aggregates
	// incrementally instead of retaining group members. Expression
	// evaluation resolves AggregateExpr nodes from here when set.
	aggVals map[*sqlparse.AggregateExpr]value.Value
}

// binding describes one value slot of an execRow.
type binding struct {
	table  string // real table name
	alias  string
	column string
	colIdx int // ordinal within the source table
}

// planItem is one resolved projection item.
type planItem struct {
	star        bool
	name        string
	expr        sqlparse.Expr
	promote     []sqlparse.ColumnExpr
	sourceTable string
	sourceCol   int
}

// selectPlan carries the intermediate state of one SELECT evaluation.
type selectPlan struct {
	bindings []binding
	rows     []execRow
	items    []planItem
}

// execSelect evaluates an A-SQL SELECT and produces the final result.
func (s *Session) execSelect(ctx context.Context, st *sqlparse.SelectStmt, params value.Row) (*Result, error) {
	plan, err := s.buildSelect(ctx, st, params)
	if err != nil {
		return nil, err
	}
	cols, rows, err := s.project(st, plan, params)
	if err != nil {
		return nil, err
	}
	if st.Distinct {
		rows = dedupeRows(rows)
	}
	if st.SetOp != sqlparse.SetNone {
		rightRes, err := s.execSelect(ctx, st.SetRight, params)
		if err != nil {
			return nil, err
		}
		rows, err = applySetOp(st.SetOp, rows, rightRes.Rows)
		if err != nil {
			return nil, err
		}
	}
	if len(st.OrderBy) > 0 {
		// Ordering resolves output columns first, then (without DISTINCT or
		// a set operation, which discard the pre-projection rows) the FROM
		// bindings — the same plan the streaming sort operators use.
		outputOnly := st.Distinct || st.SetOp != sqlparse.SetNone
		keys, err := buildOrderPlan(st.OrderBy, cols, plan.bindings, outputOnly)
		if err != nil {
			return nil, err
		}
		keyRows := make([]value.Row, len(rows))
		for i := range rows {
			kr := make(value.Row, len(keys))
			for j, k := range keys {
				if k.outIdx >= 0 {
					kr[j] = rows[i].Values[k.outIdx]
				} else {
					// rows align 1:1 with the pre-projection plan rows here:
					// binding keys are rejected when DISTINCT or a set
					// operation changed the row set.
					kr[j] = plan.rows[i].values[k.slot]
				}
			}
			keyRows[i] = kr
		}
		perm := make([]int, len(rows))
		for i := range perm {
			perm[i] = i
		}
		sort.SliceStable(perm, func(a, b int) bool {
			return compareKeyRows(keyRows[perm[a]], keyRows[perm[b]], keys) < 0
		})
		sorted := make([]ARow, len(rows))
		for i, p := range perm {
			sorted[i] = rows[p]
		}
		rows = sorted
	}
	if st.Limit >= 0 && len(rows) > st.Limit {
		rows = rows[:st.Limit]
	}
	return &Result{Columns: cols, Rows: rows}, nil
}

// buildSelect evaluates FROM / WHERE / AWHERE / GROUP BY / HAVING / AHAVING /
// FILTER, leaving projection to the caller (the annotation commands reuse the
// pre-projection rows to compute regions).
//
// FROM and WHERE normally run through the planner and the streaming iterator
// pipeline (planner.go / iterator.go): single-table WHERE conjuncts are
// pushed into the scans, indexed conjuncts probe the B+-tree, and equi-join
// conjuncts drive hash joins. Session.NoOptimize forces the naive
// materialize-then-filter path, kept as the semantic reference for the
// plan-equivalence tests.
func (s *Session) buildSelect(ctx context.Context, st *sqlparse.SelectStmt, params value.Row) (*selectPlan, error) {
	plan := &selectPlan{}

	// FROM: resolve sources and the global value-slot layout.
	for _, ref := range st.From {
		if err := s.require(ref.Table, authz.PrivSelect); err != nil {
			return nil, err
		}
	}
	sources, bindings, slotSource, err := s.resolveSources(st.From)
	if err != nil {
		return nil, err
	}
	plan.bindings = bindings

	var rows []execRow
	if s.NoOptimize {
		rows, err = s.buildRowsNaive(ctx, st, plan.bindings, sources, params)
	} else {
		phys := s.planSelect(st, sources, plan.bindings, slotSource)
		rows, err = s.runPlan(ctx, phys, plan.bindings, params)
		if err == nil {
			s.decorateRows(rows, sources)
		}
	}
	if err != nil {
		return nil, err
	}

	// AWHERE: a tuple passes when at least one of its annotations satisfies
	// the condition.
	if st.AWhere != nil {
		var kept []execRow
		for _, r := range rows {
			match, err := annRowMatches(st.AWhere, &r, params)
			if err != nil {
				return nil, err
			}
			if match {
				kept = append(kept, r)
			}
		}
		rows = kept
	}

	// GROUP BY: combine member tuples into one row per group, unioning their
	// annotations (the paper's semantics for grouping operators).
	needsGrouping := len(st.GroupBy) > 0 || hasAggregate(st.Items) || st.Having != nil
	if needsGrouping {
		grouped, err := s.groupRows(st, plan.bindings, rows)
		if err != nil {
			return nil, err
		}
		rows = grouped
	}
	if st.Having != nil {
		var kept []execRow
		for _, r := range rows {
			ok, err := s.evalBool(st.Having, plan.bindings, r, r.group, params)
			if err != nil {
				return nil, err
			}
			if ok {
				kept = append(kept, r)
			}
		}
		rows = kept
	}
	if st.AHaving != nil {
		var kept []execRow
		for _, r := range rows {
			match, err := annRowMatches(st.AHaving, &r, params)
			if err != nil {
				return nil, err
			}
			if match {
				kept = append(kept, r)
			}
		}
		rows = kept
	}

	// FILTER: keep every tuple but drop annotations failing the condition.
	if st.Filter != nil {
		for i := range rows {
			if err := filterRowAnns(st.Filter, &rows[i], params); err != nil {
				return nil, err
			}
		}
	}

	plan.rows = rows
	// Resolve projection items (used both by project and by selectRegions).
	plan.items = resolveItems(st, plan.bindings)
	return plan, nil
}

// resolveItems resolves the SELECT list against the binding layout. It is
// shared by the materializing path (buildSelect) and the streaming cursor,
// so both project identically.
func resolveItems(st *sqlparse.SelectStmt, bindings []binding) []planItem {
	var items []planItem
	for _, item := range st.Items {
		pi := planItem{star: item.Star, expr: item.Expr, promote: item.Promote, name: item.Alias, sourceCol: -1}
		if col, ok := item.Expr.(*sqlparse.ColumnExpr); ok && !item.Star {
			if _, b, err := resolveColumn(bindings, col); err == nil {
				pi.sourceTable = b.table
				pi.sourceCol = b.colIdx
				if pi.name == "" {
					pi.name = b.column
				}
			}
		}
		if pi.name == "" && !item.Star {
			pi.name = exprName(item.Expr)
		}
		items = append(items, pi)
	}
	return items
}

// buildRowsNaive is the reference FROM/WHERE implementation: load every
// table with annotations attached eagerly, materialize the full cross
// product, then filter. The planner-driven pipeline must return exactly the
// same rows, annotations and ordering; the plan-equivalence tests compare
// the two paths.
func (s *Session) buildRowsNaive(ctx context.Context, st *sqlparse.SelectStmt, bindings []binding, sources []*sourcePlan, params value.Row) ([]execRow, error) {
	rows := []execRow{{}}
	for _, src := range sources {
		srcRows, err := s.loadTable(ctx, src.tbl, src.ref)
		if err != nil {
			return nil, err
		}
		var next []execRow
		for _, left := range rows {
			for _, right := range srcRows {
				combined := execRow{
					values:  append(append(value.Row{}, left.values...), right.values...),
					anns:    append(append([][]*annotation.Annotation{}, left.anns...), right.anns...),
					origins: append(append([]origin{}, left.origins...), right.origins...),
				}
				next = append(next, combined)
			}
		}
		rows = next
	}
	if len(sources) == 0 {
		rows = nil
	}
	if st.Where != nil {
		var kept []execRow
		for _, r := range rows {
			ok, err := s.evalBool(st.Where, bindings, r, nil, params)
			if err != nil {
				return nil, err
			}
			if ok {
				kept = append(kept, r)
			}
		}
		rows = kept
	}
	return rows, nil
}

// loadTable scans a table into execRows, attaching the requested annotations
// and any outdated marks from the dependency manager. A canceled context
// aborts the scan.
func (s *Session) loadTable(ctx context.Context, tbl *storage.Table, ref sqlparse.TableRef) ([]execRow, error) {
	wantAnnotations := len(ref.Annotations) > 0
	filter := annotation.Filter{}
	if wantAnnotations && ref.Annotations[0] != "*" {
		filter.AnnTables = ref.Annotations
	}
	numCols := len(tbl.Schema().Columns)
	// Fetch the outdated bitmap once per scan (not once per cell) and skip
	// the per-cell probing entirely when the table has no tracked
	// dependencies.
	var bm *dependency.Bitmap
	if s.Dep != nil {
		if b := s.Dep.Bitmap(tbl.Name()); b.Any() {
			bm = b
		}
	}
	var out []execRow
	ctxErr := error(nil)
	err := tbl.Scan(func(rowID int64, row value.Row) bool {
		if err := ctx.Err(); err != nil {
			ctxErr = err
			return false
		}
		r := execRow{
			values:  row.Clone(),
			anns:    make([][]*annotation.Annotation, numCols),
			origins: []origin{{table: tbl.Name(), rowID: rowID}},
		}
		if wantAnnotations {
			for c := 0; c < numCols; c++ {
				r.anns[c] = s.Ann.ForCell(tbl.Name(), rowID, c, filter)
			}
		}
		if bm != nil && bm.RowOutdated(rowID) {
			for c := 0; c < numCols; c++ {
				if bm.IsSet(rowID, c) {
					r.anns[c] = append(r.anns[c], &annotation.Annotation{
						AnnTable:  OutdatedAnnTable,
						UserTable: tbl.Name(),
						Author:    "system:dependency-tracker",
						Body: fmt.Sprintf("<Annotation>OUTDATED: %s.%s of row %d needs re-verification</Annotation>",
							tbl.Name(), tbl.Schema().Columns[c].Name, rowID),
						Regions: []annotation.Region{annotation.CellRegion(tbl.Name(), rowID, c)},
					})
				}
			}
		}
		out = append(out, r)
		return true
	})
	if err == nil {
		err = ctxErr
	}
	return out, err
}

// groupRows groups rows by the GROUP BY columns (or into a single group when
// none are given), unioning annotations column-wise across group members.
func (s *Session) groupRows(st *sqlparse.SelectStmt, bindings []binding, rows []execRow) ([]execRow, error) {
	var keyIdx []int
	for _, col := range st.GroupBy {
		idx, _, err := resolveColumn(bindings, &col)
		if err != nil {
			return nil, err
		}
		keyIdx = append(keyIdx, idx)
	}
	groups := map[string]*execRow{}
	var order []string
	for _, r := range rows {
		var keyParts []string
		for _, idx := range keyIdx {
			keyParts = append(keyParts, r.values[idx].String())
		}
		key := strings.Join(keyParts, "\x00")
		g, ok := groups[key]
		if !ok {
			copyRow := execRow{
				values:  r.values.Clone(),
				anns:    make([][]*annotation.Annotation, len(r.anns)),
				origins: append([]origin{}, r.origins...),
			}
			for c := range r.anns {
				copyRow.anns[c] = append([]*annotation.Annotation{}, r.anns[c]...)
			}
			g = &copyRow
			groups[key] = g
			order = append(order, key)
		} else {
			for c := range r.anns {
				g.anns[c] = unionAnnotations(g.anns[c], r.anns[c])
			}
			g.origins = append(g.origins, r.origins...)
		}
		g.group = append(g.group, r)
	}
	var out []execRow
	for _, key := range order {
		out = append(out, *groups[key])
	}
	return out, nil
}

// outCol is one output column of a projector: a star-expanded value slot
// (index >= 0) or a projected expression item (index == -1).
type outCol struct {
	item  *planItem
	index int
}

// projector turns pipeline rows into result rows. The column layout is
// resolved once at construction, so projecting a row is allocation-lean —
// the streaming cursor projects one row per Next call with it.
type projector struct {
	s        *Session
	cols     []string
	outCols  []outCol
	bindings []binding
	params   value.Row
}

// newProjector resolves the projection layout (including PROMOTE and *) of
// the given items against the binding list.
func newProjector(s *Session, items []planItem, bindings []binding, params value.Row) *projector {
	p := &projector{s: s, bindings: bindings, params: params}
	for i := range items {
		item := &items[i]
		if item.star {
			for idx, b := range bindings {
				p.cols = append(p.cols, b.column)
				p.outCols = append(p.outCols, outCol{item: item, index: idx})
			}
			continue
		}
		p.cols = append(p.cols, item.name)
		p.outCols = append(p.outCols, outCol{item: item, index: -1})
	}
	return p
}

// row projects one pipeline row into a result row.
func (p *projector) row(r execRow) (ARow, error) {
	out := ARow{
		Values: make(value.Row, 0, len(p.outCols)),
		Anns:   make([][]*annotation.Annotation, 0, len(p.outCols)),
	}
	for _, oc := range p.outCols {
		if oc.index >= 0 { // star expansion: direct value copy
			out.Values = append(out.Values, r.values[oc.index])
			out.Anns = append(out.Anns, append([]*annotation.Annotation{}, r.anns[oc.index]...))
			continue
		}
		v, err := p.s.evalValue(oc.item.expr, p.bindings, r, r.group, p.params)
		if err != nil {
			return ARow{}, err
		}
		out.Values = append(out.Values, v)
		// Annotation propagation: a projected column keeps the annotations
		// of its source cell; PROMOTE copies annotations from other columns.
		var anns []*annotation.Annotation
		if col, ok := oc.item.expr.(*sqlparse.ColumnExpr); ok {
			if idx, _, err := resolveColumn(p.bindings, col); err == nil {
				anns = append(anns, r.anns[idx]...)
			}
		}
		for _, pcol := range oc.item.promote {
			if idx, _, err := resolveColumn(p.bindings, &pcol); err == nil {
				anns = unionAnnotations(anns, r.anns[idx])
			}
		}
		out.Anns = append(out.Anns, anns)
	}
	return out, nil
}

// project applies the projection items (including PROMOTE and *) and returns
// the output column names and rows.
func (s *Session) project(st *sqlparse.SelectStmt, plan *selectPlan, params value.Row) ([]string, []ARow, error) {
	proj := newProjector(s, plan.items, plan.bindings, params)
	var rows []ARow
	for _, r := range plan.rows {
		out, err := proj.row(r)
		if err != nil {
			return nil, nil, err
		}
		rows = append(rows, out)
	}
	return proj.cols, rows, nil
}

// --- set operations, distinct, order -----------------------------------------------------

// appendRowKey appends a distinctness key for the row to buf and returns the
// extended buffer. Callers reuse one buffer across rows so keying a row costs
// a single string allocation (the map key) instead of a string per cell plus
// a join.
func appendRowKey(buf []byte, r ARow) []byte {
	for i, v := range r.Values {
		if i > 0 {
			buf = append(buf, 0)
		}
		buf = append(buf, v.Type().String()...)
		buf = append(buf, ':')
		buf = append(buf, v.String()...)
	}
	return buf
}

func rowKey(r ARow) string {
	return string(appendRowKey(nil, r))
}

func dedupeRows(rows []ARow) []ARow {
	seen := make(map[string]int, len(rows))
	var out []ARow
	var buf []byte
	for _, r := range rows {
		buf = appendRowKey(buf[:0], r)
		key := string(buf)
		if idx, ok := seen[key]; ok {
			// Duplicate elimination unions the annotations of the combined
			// tuples (Section 3.4).
			for c := range out[idx].Anns {
				if c < len(r.Anns) {
					out[idx].Anns[c] = unionAnnotations(out[idx].Anns[c], r.Anns[c])
				}
			}
			continue
		}
		seen[key] = len(out)
		out = append(out, r)
	}
	return out
}

func applySetOp(op sqlparse.SetOp, left, right []ARow) ([]ARow, error) {
	if len(left) > 0 && len(right) > 0 && len(left[0].Values) != len(right[0].Values) {
		return nil, fmt.Errorf("%w: set operands have different column counts", ErrUnsupported)
	}
	rightByKey := make(map[string][]ARow, len(right))
	var buf []byte
	for _, r := range right {
		buf = appendRowKey(buf[:0], r)
		key := string(buf)
		rightByKey[key] = append(rightByKey[key], r)
	}
	switch op {
	case sqlparse.SetIntersect:
		var out []ARow
		seen := map[string]bool{}
		for _, l := range left {
			key := rowKey(l)
			if seen[key] {
				continue
			}
			matches, ok := rightByKey[key]
			if !ok {
				continue
			}
			seen[key] = true
			merged := l
			for _, m := range matches {
				for c := range merged.Anns {
					if c < len(m.Anns) {
						merged.Anns[c] = unionAnnotations(merged.Anns[c], m.Anns[c])
					}
				}
			}
			out = append(out, merged)
		}
		return out, nil
	case sqlparse.SetUnion:
		return dedupeRows(append(append([]ARow{}, left...), right...)), nil
	case sqlparse.SetExcept:
		var out []ARow
		seen := map[string]bool{}
		for _, l := range left {
			key := rowKey(l)
			if _, inRight := rightByKey[key]; inRight || seen[key] {
				continue
			}
			seen[key] = true
			out = append(out, l)
		}
		return out, nil
	default:
		return left, nil
	}
}

// --- expression evaluation ---------------------------------------------------------------

// resolveColumn finds the value index and binding of a column reference.
func resolveColumn(bindings []binding, col *sqlparse.ColumnExpr) (int, binding, error) {
	matches := -1
	var matched binding
	count := 0
	for i, b := range bindings {
		if !strings.EqualFold(b.column, col.Column) {
			continue
		}
		if col.Table != "" && !strings.EqualFold(col.Table, b.alias) && !strings.EqualFold(col.Table, b.table) {
			continue
		}
		matches = i
		matched = b
		count++
		if col.Table != "" {
			// Qualified references are unambiguous once matched.
			return matches, matched, nil
		}
	}
	if count == 0 {
		return 0, binding{}, fmt.Errorf("%w: %s", ErrUnknownColumn, col.Column)
	}
	if count > 1 {
		return 0, binding{}, fmt.Errorf("%w: %s", ErrAmbiguousColumn, col.Column)
	}
	return matches, matched, nil
}

func exprName(e sqlparse.Expr) string {
	switch ex := e.(type) {
	case *sqlparse.ColumnExpr:
		return ex.Column
	case *sqlparse.AggregateExpr:
		if ex.Star {
			return strings.ToLower(ex.Func) + "_all"
		}
		return strings.ToLower(ex.Func) + "_" + ex.Column.Column
	default:
		return "expr"
	}
}

func hasAggregate(items []sqlparse.SelectItem) bool {
	for _, it := range items {
		if _, ok := it.Expr.(*sqlparse.AggregateExpr); ok {
			return true
		}
	}
	return false
}

// evalValue evaluates an expression over an execRow (with optional group
// members for aggregates).
func (s *Session) evalValue(e sqlparse.Expr, bindings []binding, r execRow, group []execRow, params value.Row) (value.Value, error) {
	colFn := func(col *sqlparse.ColumnExpr) (value.Value, error) {
		idx, _, err := resolveColumn(bindings, col)
		if err != nil {
			return value.Value{}, err
		}
		return r.values[idx], nil
	}
	aggFn := func(agg *sqlparse.AggregateExpr) (value.Value, error) {
		if r.aggVals != nil {
			v, ok := r.aggVals[agg]
			if !ok {
				return value.Value{}, fmt.Errorf("%w: internal: unregistered aggregate %s", ErrUnsupported, agg.Func)
			}
			return v, nil
		}
		members := group
		if members == nil {
			members = []execRow{r}
		}
		return evalAggregate(agg, bindings, members)
	}
	return evalExpr(e, colFn, aggFn, params)
}

func (s *Session) evalBool(e sqlparse.Expr, bindings []binding, r execRow, group []execRow, params value.Row) (bool, error) {
	v, err := s.evalValue(e, bindings, r, group, params)
	if err != nil {
		return false, err
	}
	return v.Type() == value.Bool && v.Bool(), nil
}

func evalAggregate(agg *sqlparse.AggregateExpr, bindings []binding, members []execRow) (value.Value, error) {
	if agg.Star {
		if agg.Func != "COUNT" {
			return value.Value{}, fmt.Errorf("%w: %s(*)", ErrUnsupported, agg.Func)
		}
		return value.NewInt(int64(len(members))), nil
	}
	idx, _, err := resolveColumn(bindings, agg.Column)
	if err != nil {
		return value.Value{}, err
	}
	// The reference executor folds through the same aggState accumulator the
	// streaming grouped path uses, so the two (and the spill codec between
	// them) share one implementation of aggregate semantics — including the
	// exact-int64 SUM/AVG path with overflow promotion to float.
	var kind aggKind
	switch agg.Func {
	case "COUNT":
		kind = aggCount
	case "SUM":
		kind = aggSum
	case "AVG":
		kind = aggAvg
	case "MIN":
		kind = aggMin
	case "MAX":
		kind = aggMax
	default:
		return value.Value{}, fmt.Errorf("%w: aggregate %s", ErrUnsupported, agg.Func)
	}
	var a aggState
	for _, m := range members {
		if err := a.update(kind, m.values[idx]); err != nil {
			return value.Value{}, err
		}
	}
	return a.final(kind), nil
}

type colResolver func(*sqlparse.ColumnExpr) (value.Value, error)
type aggResolver func(*sqlparse.AggregateExpr) (value.Value, error)

// evalExpr evaluates an expression with the given column and aggregate
// resolvers. params carry the bound placeholder arguments; a `?` marker
// resolves to params[index].
func evalExpr(e sqlparse.Expr, col colResolver, agg aggResolver, params value.Row) (value.Value, error) {
	switch ex := e.(type) {
	case *sqlparse.LiteralExpr:
		return ex.Value, nil
	case *sqlparse.PlaceholderExpr:
		if ex.Index < 0 || ex.Index >= len(params) {
			return value.Value{}, fmt.Errorf("%w: placeholder ?%d evaluated with %d bound argument(s)",
				ErrBadArgs, ex.Index+1, len(params))
		}
		return params[ex.Index], nil
	case *sqlparse.ColumnExpr:
		return col(ex)
	case *sqlparse.AggregateExpr:
		if agg == nil {
			return value.Value{}, fmt.Errorf("%w: aggregate outside grouping context", ErrUnsupported)
		}
		return agg(ex)
	case *sqlparse.UnaryExpr:
		v, err := evalExpr(ex.Expr, col, agg, params)
		if err != nil {
			return value.Value{}, err
		}
		switch ex.Op {
		case "NOT":
			return value.NewBool(!(v.Type() == value.Bool && v.Bool())), nil
		case "-":
			if v.Type() == value.Int {
				return value.NewInt(-v.Int()), nil
			}
			return value.NewFloat(-v.Float()), nil
		default:
			return value.Value{}, fmt.Errorf("%w: unary %s", ErrUnsupported, ex.Op)
		}
	case *sqlparse.IsNullExpr:
		v, err := evalExpr(ex.Expr, col, agg, params)
		if err != nil {
			return value.Value{}, err
		}
		isNull := v.IsNull()
		if ex.Negate {
			isNull = !isNull
		}
		return value.NewBool(isNull), nil
	case *sqlparse.BinaryExpr:
		return evalBinary(ex, col, agg, params)
	default:
		return value.Value{}, fmt.Errorf("%w: expression %T", ErrUnsupported, e)
	}
}

func evalBinary(ex *sqlparse.BinaryExpr, col colResolver, agg aggResolver, params value.Row) (value.Value, error) {
	left, err := evalExpr(ex.Left, col, agg, params)
	if err != nil {
		return value.Value{}, err
	}
	// Short-circuit boolean operators.
	switch ex.Op {
	case "AND":
		if !(left.Type() == value.Bool && left.Bool()) {
			return value.NewBool(false), nil
		}
		right, err := evalExpr(ex.Right, col, agg, params)
		if err != nil {
			return value.Value{}, err
		}
		return value.NewBool(right.Type() == value.Bool && right.Bool()), nil
	case "OR":
		if left.Type() == value.Bool && left.Bool() {
			return value.NewBool(true), nil
		}
		right, err := evalExpr(ex.Right, col, agg, params)
		if err != nil {
			return value.Value{}, err
		}
		return value.NewBool(right.Type() == value.Bool && right.Bool()), nil
	}
	right, err := evalExpr(ex.Right, col, agg, params)
	if err != nil {
		return value.Value{}, err
	}
	switch ex.Op {
	case "=", "<>", "<", "<=", ">", ">=":
		if left.IsNull() || right.IsNull() {
			return value.NewBool(false), nil
		}
		c, err := left.Compare(right)
		if err != nil {
			return value.Value{}, err
		}
		var ok bool
		switch ex.Op {
		case "=":
			ok = c == 0
		case "<>":
			ok = c != 0
		case "<":
			ok = c < 0
		case "<=":
			ok = c <= 0
		case ">":
			ok = c > 0
		case ">=":
			ok = c >= 0
		}
		return value.NewBool(ok), nil
	case "LIKE":
		return value.NewBool(likeMatch(right.Text(), left.String())), nil
	case "+", "-", "*", "/":
		if left.IsNull() || right.IsNull() {
			return value.NewNull(), nil
		}
		lf, rf := left.Float(), right.Float()
		var res float64
		switch ex.Op {
		case "+":
			res = lf + rf
		case "-":
			res = lf - rf
		case "*":
			res = lf * rf
		case "/":
			if rf == 0 {
				return value.NewNull(), nil
			}
			res = lf / rf
		}
		if left.Type() == value.Int && right.Type() == value.Int && ex.Op != "/" {
			return value.NewInt(int64(res)), nil
		}
		return value.NewFloat(res), nil
	default:
		return value.Value{}, fmt.Errorf("%w: operator %s", ErrUnsupported, ex.Op)
	}
}

// likeMatch implements SQL LIKE with % (any run) and _ (any single character).
func likeMatch(pattern, s string) bool {
	return likeMatchAt(pattern, s, 0, 0)
}

func likeMatchAt(p, s string, pi, si int) bool {
	for pi < len(p) {
		switch p[pi] {
		case '%':
			// Collapse consecutive %.
			for pi < len(p) && p[pi] == '%' {
				pi++
			}
			if pi == len(p) {
				return true
			}
			for k := si; k <= len(s); k++ {
				if likeMatchAt(p, s, pi, k) {
					return true
				}
			}
			return false
		case '_':
			if si >= len(s) {
				return false
			}
			pi++
			si++
		default:
			if si >= len(s) || s[si] != p[pi] {
				return false
			}
			pi++
			si++
		}
	}
	return si == len(s)
}

// evalAnnBool evaluates an AWHERE / AHAVING / FILTER condition against one
// annotation. The pseudo-columns ANN.VALUE, ANN.TABLE, ANN.AUTHOR and
// ANN.ARCHIVED resolve to the annotation's fields.
func evalAnnBool(e sqlparse.Expr, a *annotation.Annotation, params value.Row) (bool, error) {
	colFn := func(col *sqlparse.ColumnExpr) (value.Value, error) {
		name := strings.ToUpper(col.Column)
		if col.Table != "" && !strings.EqualFold(col.Table, "ANN") {
			return value.Value{}, fmt.Errorf("%w: %s.%s in annotation condition", ErrUnknownColumn, col.Table, col.Column)
		}
		switch name {
		case "VALUE", "BODY":
			return value.NewText(a.PlainBody()), nil
		case "TABLE", "ANNTABLE":
			return value.NewText(a.AnnTable), nil
		case "AUTHOR":
			return value.NewText(a.Author), nil
		case "ARCHIVED":
			return value.NewBool(a.Archived), nil
		case "CREATED":
			return value.NewTimestamp(a.CreatedAt), nil
		default:
			return value.Value{}, fmt.Errorf("%w: annotation attribute %s", ErrUnknownColumn, col.Column)
		}
	}
	v, err := evalExpr(e, colFn, nil, params)
	if err != nil {
		return false, err
	}
	return v.Type() == value.Bool && v.Bool(), nil
}

func unionAnnotations(a, b []*annotation.Annotation) []*annotation.Annotation {
	seen := map[int64]bool{}
	var out []*annotation.Annotation
	appendAll := func(list []*annotation.Annotation) {
		for _, ann := range list {
			// Synthetic annotations (outdated marks) have ID 0; keep them all.
			if ann.ID != 0 && seen[ann.ID] {
				continue
			}
			if ann.ID != 0 {
				seen[ann.ID] = true
			}
			out = append(out, ann)
		}
	}
	appendAll(a)
	appendAll(b)
	return out
}
